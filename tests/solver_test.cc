#include "solver/solver.h"

#include <gtest/gtest.h>

#include <string>

#include "analysis/atom_dependency_graph.h"
#include "test_support.h"
#include "wfs/wfs.h"
#include "workload/generators.h"

namespace gsls {
namespace {

using testing::Fixture;
using testing::MustGround;

TruthValue ValueOf(const GroundProgram& gp, const WfsModel& model,
                   TermStore& store, std::string_view atom_src) {
  const Term* atom = MustParseTerm(store, atom_src);
  auto id = gp.FindAtom(atom);
  if (!id.has_value()) return TruthValue::kFalse;
  return model.model.Value(*id);
}

/// SolveWfs must agree atom-for-atom with all three reference fixpoints.
void ExpectAgreesWithReference(const GroundProgram& gp,
                               const std::string& src) {
  WfsModel scc = SolveWfs(gp);
  WfsModel alternating = ComputeWfsAlternating(gp);
  EXPECT_EQ(scc.model, alternating.model)
      << "SolveWfs vs alternating fixpoint on:\n"
      << src << "diff:\n"
      << DescribeModelDifference(gp, scc.model, alternating.model);
  WfsModel wp = ComputeWfs(gp);
  EXPECT_EQ(scc.model, wp.model)
      << "SolveWfs vs W_P iteration on:\n"
      << src << "diff:\n"
      << DescribeModelDifference(gp, scc.model, wp.model);
  WfsStages stages = ComputeWfsStages(gp);
  EXPECT_EQ(scc.model, stages.model)
      << "SolveWfs vs V_P stages on:\n"
      << src << "diff:\n"
      << DescribeModelDifference(gp, scc.model, stages.model);
}

TEST(SolverTest, FactsChainAndNegation) {
  Fixture f("p. q :- p. r :- not s.");
  GroundProgram gp = MustGround(f.program);
  WfsModel m = SolveWfs(gp);
  EXPECT_EQ(ValueOf(gp, m, f.store, "p"), TruthValue::kTrue);
  EXPECT_EQ(ValueOf(gp, m, f.store, "q"), TruthValue::kTrue);
  EXPECT_EQ(ValueOf(gp, m, f.store, "r"), TruthValue::kTrue);
  EXPECT_EQ(ValueOf(gp, m, f.store, "s"), TruthValue::kFalse);
  EXPECT_TRUE(m.model.IsTotal());
}

TEST(SolverTest, PositiveLoopIsFalse) {
  Fixture f("p :- q. q :- p. r :- p.");
  GroundProgram gp = MustGround(f.program);
  WfsModel m = SolveWfs(gp);
  EXPECT_EQ(ValueOf(gp, m, f.store, "p"), TruthValue::kFalse);
  EXPECT_EQ(ValueOf(gp, m, f.store, "q"), TruthValue::kFalse);
  EXPECT_EQ(ValueOf(gp, m, f.store, "r"), TruthValue::kFalse);
}

TEST(SolverTest, SelfNegationIsUndefined) {
  Fixture f("p :- not p.");
  GroundProgram gp = MustGround(f.program);
  WfsModel m = SolveWfs(gp);
  EXPECT_EQ(ValueOf(gp, m, f.store, "p"), TruthValue::kUndefined);
}

TEST(SolverTest, NegativeTwoCycleWithEscape) {
  Fixture f("p :- not q. q :- not p. q. t :- p. u :- not p.");
  GroundProgram gp = MustGround(f.program);
  WfsModel m = SolveWfs(gp);
  EXPECT_EQ(ValueOf(gp, m, f.store, "q"), TruthValue::kTrue);
  EXPECT_EQ(ValueOf(gp, m, f.store, "p"), TruthValue::kFalse);
  EXPECT_EQ(ValueOf(gp, m, f.store, "t"), TruthValue::kFalse);
  EXPECT_EQ(ValueOf(gp, m, f.store, "u"), TruthValue::kTrue);
}

TEST(SolverTest, MixedLoopThroughPositiveBodyIsUndefined) {
  // p <- c, not p with c true: p can neither fire nor be unfounded.
  Fixture f("c. p :- c, not p.");
  GroundProgram gp = MustGround(f.program);
  WfsModel m = SolveWfs(gp);
  EXPECT_EQ(ValueOf(gp, m, f.store, "c"), TruthValue::kTrue);
  EXPECT_EQ(ValueOf(gp, m, f.store, "p"), TruthValue::kUndefined);
}

TEST(SolverTest, PaperExample32Model) {
  // Example 3.2: M_WF = {s, not p, not q, not r}.
  Fixture f(workload::Example32Program());
  GroundProgram gp = MustGround(f.program);
  WfsModel m = SolveWfs(gp);
  EXPECT_EQ(ValueOf(gp, m, f.store, "p"), TruthValue::kFalse);
  EXPECT_EQ(ValueOf(gp, m, f.store, "q"), TruthValue::kFalse);
  EXPECT_EQ(ValueOf(gp, m, f.store, "r"), TruthValue::kFalse);
  EXPECT_EQ(ValueOf(gp, m, f.store, "s"), TruthValue::kTrue);
  EXPECT_TRUE(m.model.IsTotal());
  ExpectAgreesWithReference(gp, workload::Example32Program());
}

TEST(SolverTest, PaperExample33Model) {
  // Example 3.3: s true, q false. (On the full program the p(f^k(a))
  // family is undefined; the depth-bounded grounding truncates that
  // infinite regress, so only the determined literals are checked here —
  // the point of this test is agreement on the exact same grounding.)
  Fixture f(workload::Example33Program());
  GroundProgram gp = MustGround(f.program, /*term_depth=*/5);
  WfsModel m = SolveWfs(gp);
  EXPECT_EQ(ValueOf(gp, m, f.store, "s"), TruthValue::kTrue);
  EXPECT_EQ(ValueOf(gp, m, f.store, "q"), TruthValue::kFalse);
  ExpectAgreesWithReference(gp, workload::Example33Program());
}

TEST(SolverTest, VanGelderProgramAgreement) {
  // Example 3.1 on a bounded universe: the model is total, every w true
  // and every u false (see PaperExamples.Ex31...).
  Fixture f(workload::VanGelderProgram());
  GroundProgram gp = MustGround(f.program, /*term_depth=*/6);
  WfsModel m = SolveWfs(gp);
  EXPECT_TRUE(m.model.IsTotal());
  EXPECT_EQ(ValueOf(gp, m, f.store, "w(s(0))"), TruthValue::kTrue);
  EXPECT_EQ(ValueOf(gp, m, f.store, "u(s(s(0)))"), TruthValue::kFalse);
  ExpectAgreesWithReference(gp, workload::VanGelderProgram());
}

TEST(SolverTest, WinChainValues) {
  // n1 -> ... -> n6: alternating lost/won from the dead end backwards.
  Fixture f(workload::GameChain(6));
  GroundProgram gp = MustGround(f.program);
  WfsModel m = SolveWfs(gp);
  EXPECT_EQ(ValueOf(gp, m, f.store, "win(n6)"), TruthValue::kFalse);
  EXPECT_EQ(ValueOf(gp, m, f.store, "win(n5)"), TruthValue::kTrue);
  EXPECT_EQ(ValueOf(gp, m, f.store, "win(n4)"), TruthValue::kFalse);
  EXPECT_EQ(ValueOf(gp, m, f.store, "win(n1)"), TruthValue::kTrue);
  ExpectAgreesWithReference(gp, workload::GameChain(6));
}

TEST(SolverTest, WinCycleWithTailIsPartiallyDrawn) {
  std::string src = workload::GameCycleWithTail(9, 8);
  Fixture f(src);
  GroundProgram gp = MustGround(f.program);
  ExpectAgreesWithReference(gp, src);
  // The odd cycle positions draw (undefined); the tail end is determined.
  WfsModel m = SolveWfs(gp);
  EXPECT_EQ(ValueOf(gp, m, f.store, "win(t8)"), TruthValue::kFalse);
  EXPECT_FALSE(m.model.IsTotal());
}

TEST(SolverTest, GridAndReachabilityFamilies) {
  Rng rng(20260728);
  {
    std::string src = workload::GameGrid(6, 6);
    Fixture f(src);
    ExpectAgreesWithReference(MustGround(f.program), src);
  }
  {
    std::string src = workload::ReachabilityWithNegation(rng, 9, 25);
    Fixture f(src);
    ExpectAgreesWithReference(MustGround(f.program), src);
  }
}

TEST(SolverTest, RandomPropositionalAgreement) {
  // The headline property: SolveWfs == ComputeWfsAlternating on hundreds
  // of random normal programs covering positive, negative, and mixed
  // recursion.
  Rng rng(0x5CC0u);
  for (int trial = 0; trial < 300; ++trial) {
    std::string src = testing::RandomPropositionalProgram(
        rng, /*num_preds=*/8, /*num_rules=*/14, /*max_body=*/4);
    Fixture f(src);
    GroundProgram gp = MustGround(f.program);
    WfsModel scc = SolveWfs(gp);
    WfsModel alternating = ComputeWfsAlternating(gp);
    ASSERT_EQ(scc.model, alternating.model)
        << "trial " << trial << ":\n"
        << src << "diff:\n"
        << DescribeModelDifference(gp, scc.model, alternating.model);
  }
}

TEST(SolverTest, RandomGameAgreement) {
  Rng rng(0x6A3Eu);
  for (int trial = 0; trial < 120; ++trial) {
    std::string src = workload::RandomGame(rng, 8, 30);
    Fixture f(src);
    GroundProgram gp = MustGround(f.program);
    WfsModel scc = SolveWfs(gp);
    WfsModel alternating = ComputeWfsAlternating(gp);
    ASSERT_EQ(scc.model, alternating.model)
        << "trial " << trial << ":\n"
        << src << "diff:\n"
        << DescribeModelDifference(gp, scc.model, alternating.model);
  }
}

TEST(SolverTest, ChainDiagnosticsAreStratified) {
  Fixture f(workload::GameChain(64));
  GroundProgram gp = MustGround(f.program);
  SolverDiagnostics diag;
  WfsModel m = SolveWfs(gp, &diag);
  EXPECT_TRUE(m.model.IsTotal());
  // Every win(ni) and move fact is its own non-recursive component: the
  // whole chain solves by direct evaluation, no floods, no iteration.
  EXPECT_EQ(diag.component_count, gp.atom_count());
  EXPECT_EQ(diag.max_component_size, 1u);
  EXPECT_EQ(diag.recursive_components, 0u);
  EXPECT_EQ(diag.negation_components, 0u);
  EXPECT_EQ(diag.unfounded_floods, 0u);
  EXPECT_EQ(diag.alternating_rounds, 0u);
  EXPECT_GE(diag.rules_visited, gp.rule_count());
}

TEST(SolverTest, CycleDiagnosticsShowNegationComponent) {
  Fixture f(workload::GameCycleWithTail(6, 4));
  GroundProgram gp = MustGround(f.program);
  SolverDiagnostics diag;
  SolveWfs(gp, &diag);
  // The win-atoms of the cycle form one SCC that recurses through
  // negation; the tail stays non-recursive.
  EXPECT_EQ(diag.negation_components, 1u);
  EXPECT_GE(diag.max_component_size, 6u);
  EXPECT_LT(diag.recursive_components, diag.component_count);
}

TEST(SolverTest, PurePositiveLoopNeedsNoFlood) {
  // Unfounded at initialization, before any propagation: no flood runs.
  // (The relevant grounder would prune the loop outright, so instantiate
  // the brute-force fragment.)
  Fixture f("p :- q. q :- p.");
  GroundingOptions opts;
  Result<GroundProgram> gp = FullyInstantiate(f.program, opts);
  ASSERT_TRUE(gp.ok());
  ASSERT_EQ(gp->atom_count(), 2u);
  SolverDiagnostics diag;
  WfsModel m = SolveWfs(gp.value(), &diag);
  EXPECT_TRUE(m.model.IsTotal());
  EXPECT_EQ(m.model.true_set().Count(), 0u);
  EXPECT_EQ(diag.unfounded_floods, 0u);
  EXPECT_EQ(diag.unfounded_falsified, 2u);
}

TEST(AtomDependencyGraphTest, ComponentsAreInDependencyOrder) {
  Rng rng(0xDA67u);
  for (int trial = 0; trial < 50; ++trial) {
    std::string src = testing::RandomPropositionalProgram(rng, 7, 12, 3);
    Fixture f(src);
    GroundProgram gp = MustGround(f.program);
    AtomDependencyGraph graph(gp);
    for (const GroundRule& r : gp.rules()) {
      for (AtomId b : r.pos) {
        EXPECT_LE(graph.ComponentOf(b), graph.ComponentOf(r.head)) << src;
      }
      for (AtomId b : r.neg) {
        EXPECT_LE(graph.ComponentOf(b), graph.ComponentOf(r.head)) << src;
      }
    }
  }
}

TEST(AtomDependencyGraphTest, MembersMatchComponentIds) {
  Fixture f(workload::GameCycleWithTail(5, 3));
  GroundProgram gp = MustGround(f.program);
  AtomDependencyGraph graph(gp);
  size_t seen = 0;
  for (uint32_t c = 0; c < graph.component_count(); ++c) {
    std::span<const AtomId> atoms = graph.Atoms(c);
    seen += atoms.size();
    for (uint32_t i = 0; i < atoms.size(); ++i) {
      EXPECT_EQ(graph.ComponentOf(atoms[i]), c);
      EXPECT_EQ(graph.LocalIndexOf(atoms[i]), i);
    }
  }
  EXPECT_EQ(seen, gp.atom_count());
}

TEST(AtomDependencyGraphTest, StratificationFlagsMatchGroundProgram) {
  Rng rng(0xF1A6u);
  for (int trial = 0; trial < 40; ++trial) {
    std::string src = testing::RandomPropositionalProgram(rng, 6, 9, 3);
    Fixture f(src);
    GroundProgram gp = MustGround(f.program);
    AtomDependencyGraph graph(gp);
    EXPECT_EQ(graph.IsLocallyStratified(), gp.IsLocallyStratified()) << src;
    EXPECT_EQ(graph.IsAcyclic(), gp.IsAtomAcyclic()) << src;
  }
}

}  // namespace
}  // namespace gsls
