// End-to-end flows across every layer: parse -> analyze -> transform ->
// ground -> fixpoints -> both query engines -> baselines.

#include <gtest/gtest.h>

#include "analysis/dependency_graph.h"
#include "core/engine.h"
#include "core/global_tree.h"
#include "core/tabled.h"
#include "lang/transforms.h"
#include "sldnf/sldnf.h"
#include "stable/stable.h"
#include "test_support.h"
#include "wfs/perfect.h"
#include "wfs/wfs.h"
#include "workload/generators.h"

namespace gsls {
namespace {

using testing::Fixture;

TEST(IntegrationTest, FullPipelineOnGameProgram) {
  Fixture f(workload::GameCycleWithTail(4, 3));
  // Analysis: recursion through negation at predicate level.
  EXPECT_FALSE(Stratify(f.program).stratified);
  // Grounding + fixpoints.
  GroundProgram gp = testing::MustGround(f.program);
  WfsModel wfs = ComputeWfs(gp);
  WfsModel alt = ComputeWfsAlternating(gp);
  EXPECT_EQ(wfs.model, alt.model);
  // Both engines agree with the model on every atom.
  GlobalSlsEngine search(f.program);
  Result<TabledEngine> tabled = TabledEngine::Create(f.program);
  ASSERT_TRUE(tabled.ok());
  for (AtomId a = 0; a < gp.atom_count(); ++a) {
    const Term* atom = gp.AtomTerm(a);
    EXPECT_EQ(search.StatusOf(atom), tabled->StatusOf(atom))
        << f.store.ToString(atom);
  }
}

TEST(IntegrationTest, VanGelderExampleEndToEnd) {
  Fixture f(workload::VanGelderProgram());
  // Not stratified, has function symbols.
  EXPECT_FALSE(Stratify(f.program).stratified);
  EXPECT_FALSE(f.program.IsFunctionFree());
  // Search engine determines w(i)/u(i) for finite i.
  EngineOptions opts;
  opts.max_negation_depth = 40;
  GlobalSlsEngine engine(f.program, opts);
  for (int i = 1; i <= 5; ++i) {
    std::string wi = "w(" + workload::IntTerm(i) + ")";
    std::string ui = "u(" + workload::IntTerm(i) + ")";
    EXPECT_EQ(engine.StatusOf(MustParseTerm(f.store, wi)),
              GoalStatus::kSuccessful)
        << wi;
    EXPECT_EQ(engine.StatusOf(MustParseTerm(f.store, ui)),
              GoalStatus::kFailed)
        << ui;
  }
  // Depth-bounded tabled evaluation agrees on goals within the bound.
  TabledOptions topts;
  topts.grounding.universe.max_term_depth = 10;
  Result<TabledEngine> tabled = TabledEngine::Create(f.program, topts);
  ASSERT_TRUE(tabled.ok());
  for (int i = 1; i <= 3; ++i) {
    std::string wi = "w(" + workload::IntTerm(i) + ")";
    EXPECT_EQ(tabled->StatusOf(MustParseTerm(f.store, wi)),
              GoalStatus::kSuccessful)
        << wi;
  }
}

TEST(IntegrationTest, GuardedProgramNeverFlounders) {
  Fixture f("p(X) :- not q(X). q(a). r(b).");
  Program guarded = AddTermGuard(f.program);
  GlobalSlsEngine engine(guarded);
  Goal goal = GuardGoal(guarded, f.store, MustParseQuery(f.store, "p(X)"));
  QueryResult r = engine.Solve(goal);
  EXPECT_EQ(r.status, GoalStatus::kSuccessful);
  EXPECT_FALSE(r.floundered_somewhere);
  EXPECT_EQ(r.answers.size(), 1u);  // X = b
}

TEST(IntegrationTest, StratifiedPipelineAllModelCharacterizationsAgree) {
  Rng rng(0xF00D);
  std::string src = workload::ReachabilityWithNegation(rng, 6, 30);
  Fixture f(src);
  Stratification strat = Stratify(f.program);
  ASSERT_TRUE(strat.stratified);
  GroundProgram gp = testing::MustGround(f.program);
  WfsModel wfs = ComputeWfs(gp);
  ASSERT_TRUE(wfs.model.IsTotal());
  Result<Interpretation> perfect = ComputePerfectModel(gp, strat);
  ASSERT_TRUE(perfect.ok());
  EXPECT_EQ(wfs.model, perfect.value());
  if (gp.atom_count() <= 24) {
    Result<std::vector<DenseBitset>> stable = EnumerateStableModels(gp);
    ASSERT_TRUE(stable.ok());
    ASSERT_EQ(stable->size(), 1u);
    for (AtomId a = 0; a < gp.atom_count(); ++a) {
      EXPECT_EQ(stable->front().Test(a), wfs.model.IsTrue(a));
    }
  }
}

TEST(IntegrationTest, SldnfAgreesWithSlsOnAcyclicPrograms) {
  Fixture f(
      "a :- b, not c.\n"
      "b :- d.\n"
      "c :- not d.\n"
      "d.\n"
      "e :- not a.\n");
  EXPECT_TRUE(DependencyGraph(f.program).IsAcyclic());
  GlobalSlsEngine sls(f.program);
  SldnfEngine sldnf(f.program);
  GroundProgram gp = testing::MustGround(f.program);
  for (AtomId x = 0; x < gp.atom_count(); ++x) {
    const Term* atom = gp.AtomTerm(x);
    EXPECT_EQ(sls.StatusOf(atom), sldnf.SolveAtom(atom).status)
        << f.store.ToString(atom);
  }
}

TEST(IntegrationTest, GlobalTreeAndEngineAndModelAgreeOnExample32) {
  Fixture f(workload::Example32Program());
  GroundProgram gp = testing::MustGround(f.program);
  WfsModel wfs = ComputeWfs(gp);
  GlobalSlsEngine engine(f.program);
  for (AtomId a = 0; a < gp.atom_count(); ++a) {
    const Term* atom = gp.AtomTerm(a);
    GlobalTree tree = GlobalTree::Build(f.program, Goal{Literal::Pos(atom)});
    GoalStatus expect = wfs.model.IsTrue(a)    ? GoalStatus::kSuccessful
                        : wfs.model.IsFalse(a) ? GoalStatus::kFailed
                                               : GoalStatus::kIndeterminate;
    EXPECT_EQ(engine.StatusOf(atom), expect) << f.store.ToString(atom);
    EXPECT_EQ(tree.status(), expect) << f.store.ToString(atom);
  }
}

TEST(IntegrationTest, LargeChainScalesLinearly) {
  Fixture f(workload::GameChain(400));
  Result<TabledEngine> tabled = TabledEngine::Create(f.program);
  ASSERT_TRUE(tabled.ok());
  // n400 is terminal (lost); n1 is 399 moves away — odd distance wins.
  EXPECT_EQ(tabled->StatusOf(MustParseTerm(f.store, "win(n1)")),
            GoalStatus::kSuccessful);
  // Levels come from the SCC stage reconstruction now (no V_P iteration):
  // the chain's root literal settles at the deepest stage.
  std::optional<Ordinal> level =
      tabled->LevelOf(MustParseTerm(f.store, "win(n1)"));
  ASSERT_TRUE(level.has_value());
  EXPECT_EQ(*level, Ordinal::Finite(400));
}

TEST(IntegrationTest, AugmentationPreservesOriginalAtoms) {
  Rng rng(0x1DEA);
  for (int t = 0; t < 10; ++t) {
    std::string src = workload::RandomGame(rng, 4, 40);
    Fixture f(src);
    Program aug = AugmentProgram(f.program);
    Result<TabledEngine> base = TabledEngine::Create(f.program);
    Result<TabledEngine> augmented = TabledEngine::Create(aug);
    ASSERT_TRUE(base.ok());
    ASSERT_TRUE(augmented.ok());
    const GroundProgram& gp = base->ground();
    for (AtomId a = 0; a < gp.atom_count(); ++a) {
      const Term* atom = gp.AtomTerm(a);
      EXPECT_EQ(base->ValueOf(atom), augmented->ValueOf(atom))
          << f.store.ToString(atom) << " in\n" << src;
    }
  }
}

}  // namespace
}  // namespace gsls
