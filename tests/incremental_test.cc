#include "solver/incremental.h"

#include <gtest/gtest.h>

#include <string>

#include "core/engine.h"
#include "core/tabled.h"
#include "solver/solver.h"
#include "test_support.h"
#include "wfs/wfs.h"
#include "workload/generators.h"

namespace gsls {
namespace {

using testing::Fixture;
using testing::MustGround;

/// Independent reference: a fresh `GroundProgram` holding exactly the
/// enabled rules, solved by the alternating fixpoint — no incremental or
/// SCC machinery involved. Atoms are interned in the same order, so ids
/// (and hence interpretations) are directly comparable.
GroundProgram RebuildEnabled(const IncrementalSolver& inc, TermStore& store) {
  const GroundProgram& gp = inc.program();
  GroundProgram out(&store);
  for (AtomId a = 0; a < gp.atom_count(); ++a) out.InternAtom(gp.AtomTerm(a));
  for (RuleId r = 0; r < gp.rule_count(); ++r) {
    if (inc.RuleEnabled(r)) out.AddRule(gp.rules()[r]);
  }
  return out;
}

/// After-every-delta invariant: the incremental model equals both a fresh
/// masked solve and the independent alternating-fixpoint reference.
void ExpectAgreesWithFresh(IncrementalSolver& inc, TermStore& store,
                           const std::string& context) {
  const WfsModel& incremental = inc.Model();
  WfsModel fresh = inc.SolveFresh();
  ASSERT_EQ(incremental.model, fresh.model)
      << context << "\nincremental vs fresh SolveWfs diff:\n"
      << DescribeModelDifference(inc.program(), incremental.model,
                                 fresh.model);
  GroundProgram rebuilt = RebuildEnabled(inc, store);
  WfsModel reference = ComputeWfsAlternating(rebuilt);
  ASSERT_EQ(incremental.model, reference.model)
      << context << "\nincremental vs alternating-fixpoint reference diff:\n"
      << DescribeModelDifference(inc.program(), incremental.model,
                                 reference.model);
}

TruthValue ValueOf(IncrementalSolver& inc, TermStore& store,
                   std::string_view atom_src) {
  return inc.ValueOf(MustParseTerm(store, atom_src));
}

TEST(IncrementalTest, RetractingSoleSupportFalsifiesPositiveLoop) {
  // p and q lean on each other; the loop's only external support is e.
  Fixture f("e. p :- q. p :- e. q :- p.");
  IncrementalSolver inc(MustGround(f.program));
  EXPECT_EQ(ValueOf(inc, f.store, "p"), TruthValue::kTrue);
  EXPECT_EQ(ValueOf(inc, f.store, "q"), TruthValue::kTrue);

  ASSERT_TRUE(inc.Retract(MustParseTerm(f.store, "e")));
  EXPECT_EQ(ValueOf(inc, f.store, "e"), TruthValue::kFalse);
  // The loop is now unfounded: falsified wholesale, not left undefined.
  EXPECT_EQ(ValueOf(inc, f.store, "p"), TruthValue::kFalse);
  EXPECT_EQ(ValueOf(inc, f.store, "q"), TruthValue::kFalse);
  ExpectAgreesWithFresh(inc, f.store, "retract sole support");
}

TEST(IncrementalTest, AssertingFactDecidesUndefinedNegativeLoop) {
  Fixture f("p :- not q. q :- not p. r :- p.");
  IncrementalSolver inc(MustGround(f.program));
  EXPECT_EQ(ValueOf(inc, f.store, "p"), TruthValue::kUndefined);
  EXPECT_EQ(ValueOf(inc, f.store, "q"), TruthValue::kUndefined);
  EXPECT_EQ(ValueOf(inc, f.store, "r"), TruthValue::kUndefined);

  // Asserting q falsifies the previously-undefined loop partner p — and
  // r, above the loop, follows.
  ASSERT_TRUE(inc.Assert(MustParseTerm(f.store, "q")));
  EXPECT_EQ(ValueOf(inc, f.store, "q"), TruthValue::kTrue);
  EXPECT_EQ(ValueOf(inc, f.store, "p"), TruthValue::kFalse);
  EXPECT_EQ(ValueOf(inc, f.store, "r"), TruthValue::kFalse);
  ExpectAgreesWithFresh(inc, f.store, "assert into negative loop");
}

TEST(IncrementalTest, DeleteThenReassertRoundTripsToIdenticalModel) {
  std::string src = workload::GameCycleWithTail(9, 8);
  Fixture f(src);
  IncrementalSolver inc(MustGround(f.program));
  Interpretation before = inc.Model().model;
  ASSERT_FALSE(before.IsTotal());  // odd cycle: some positions drawn

  const Term* fact = MustParseTerm(f.store, "move(t4, t5)");
  ASSERT_TRUE(inc.Retract(fact));
  ExpectAgreesWithFresh(inc, f.store, "cycle+tail after retract");
  ASSERT_TRUE(inc.Assert(fact));
  ExpectAgreesWithFresh(inc, f.store, "cycle+tail after reassert");
  EXPECT_EQ(inc.Model().model, before);

  // Same round-trip through a fact feeding the negative cycle itself.
  const Term* cycle_fact = MustParseTerm(f.store, "move(c1, c2)");
  ASSERT_TRUE(inc.Retract(cycle_fact));
  ExpectAgreesWithFresh(inc, f.store, "cycle fact retracted");
  ASSERT_TRUE(inc.Assert(cycle_fact));
  EXPECT_EQ(inc.Model().model, before);
}

TEST(IncrementalTest, AssertNewAtomRegistersAndRetracts) {
  Fixture f("p :- not q.");
  IncrementalSolver inc(MustGround(f.program));
  inc.Model();  // initial full solve, so the rebuild below is observable
  size_t atoms_before = inc.program().atom_count();

  const Term* fresh = MustParseTerm(f.store, "brand_new");
  EXPECT_EQ(inc.ValueOf(fresh), TruthValue::kFalse);  // unregistered
  ASSERT_TRUE(inc.Assert(fresh));
  EXPECT_EQ(inc.ValueOf(fresh), TruthValue::kTrue);
  EXPECT_EQ(inc.program().atom_count(), atoms_before + 1);
  EXPECT_EQ(inc.stats().graph_rebuilds, 1u);  // new node: lazy rebuild
  ExpectAgreesWithFresh(inc, f.store, "assert new atom");

  // Registered but factless after retraction: false, not undefined.
  ASSERT_TRUE(inc.Retract(fresh));
  EXPECT_EQ(inc.ValueOf(fresh), TruthValue::kFalse);
  EXPECT_EQ(inc.stats().graph_rebuilds, 1u);  // no new node: no rebuild
  ExpectAgreesWithFresh(inc, f.store, "retract new atom");
}

TEST(IncrementalTest, RedundantDeltasReportNoChange) {
  Fixture f("e. p :- e.");
  IncrementalSolver inc(MustGround(f.program));
  const Term* e = MustParseTerm(f.store, "e");
  EXPECT_FALSE(inc.Assert(e));  // already an enabled fact
  ASSERT_TRUE(inc.Retract(e));
  EXPECT_FALSE(inc.Retract(e));  // already retracted
  EXPECT_FALSE(inc.Retract(MustParseTerm(f.store, "p")));  // derived, no fact
  ExpectAgreesWithFresh(inc, f.store, "redundant deltas");
}

TEST(IncrementalTest, UpConeIsChangePruned) {
  // chain(64): win(n1) is already won, so asserting it as a fact re-solves
  // exactly one component — the cone is cut before any dependent.
  Fixture f(workload::GameChain(64));
  IncrementalSolver inc(MustGround(f.program));
  ASSERT_EQ(inc.Model().model.Value(
                *inc.program().FindAtom(MustParseTerm(f.store, "win(n1)"))),
            TruthValue::kTrue);
  uint64_t resolved_before = inc.stats().components_resolved;
  ASSERT_TRUE(inc.Assert(MustParseTerm(f.store, "win(n1)")));
  inc.Model();
  EXPECT_EQ(inc.stats().components_resolved, resolved_before + 1);
  EXPECT_EQ(inc.stats().cone_cutoffs, 1u);
  EXPECT_GT(inc.stats().components_reused, 0u);
  ExpectAgreesWithFresh(inc, f.store, "assert already-true win");
}

TEST(IncrementalTest, RandomizedChurnAgreesWithFreshSolve) {
  // The headline property, and most of the >= 400 delta trials: after
  // every single delta the incremental model equals a fresh solve and the
  // independent alternating-fixpoint reference.
  int deltas_checked = 0;
  {
    Rng prng(0xD317Au);
    for (int trial = 0; trial < 25; ++trial) {
      std::string src = testing::RandomPropositionalProgram(
          prng, /*num_preds=*/8, /*num_rules=*/14, /*max_body=*/4);
      Fixture f(src);
      IncrementalSolver inc(MustGround(f.program));
      inc.Model();
      for (int d = 0; d < 10; ++d) {
        AtomId a = static_cast<AtomId>(prng.UniformInt(
            0, static_cast<int>(inc.program().atom_count()) - 1));
        if (inc.HasFact(a)) {
          inc.RetractAtom(a);
        } else {
          inc.AssertAtom(a);
        }
        ExpectAgreesWithFresh(
            inc, f.store,
            StrCat("prop trial ", trial, " delta ", d, "\n", src));
        ++deltas_checked;
      }
    }
  }
  {
    Rng grng(0xD317Bu);
    for (int trial = 0; trial < 18; ++trial) {
      std::string src = workload::RandomGame(grng, 8, 30);
      Fixture f(src);
      IncrementalSolver inc(MustGround(f.program));
      inc.Model();
      for (int d = 0; d < 10; ++d) {
        AtomId a = static_cast<AtomId>(grng.UniformInt(
            0, static_cast<int>(inc.program().atom_count()) - 1));
        if (inc.HasFact(a)) {
          inc.RetractAtom(a);
        } else {
          inc.AssertAtom(a);
        }
        ExpectAgreesWithFresh(
            inc, f.store,
            StrCat("game trial ", trial, " delta ", d, "\n", src));
        ++deltas_checked;
      }
    }
  }
  EXPECT_GE(deltas_checked, 400);
}

TEST(IncrementalTest, TabledEngineWithoutStagesMatchesStagedEngine) {
  Rng rng(0x7AB1Du);
  for (int trial = 0; trial < 20; ++trial) {
    std::string src = workload::RandomGame(rng, 7, 30);
    Fixture f(src);
    TabledOptions fast;
    fast.compute_stages = false;
    Result<TabledEngine> staged = TabledEngine::Create(f.program);
    Result<TabledEngine> modelonly = TabledEngine::Create(f.program, fast);
    ASSERT_TRUE(staged.ok());
    ASSERT_TRUE(modelonly.ok());
    const GroundProgram& gp = staged->ground();
    for (AtomId a = 0; a < gp.atom_count(); ++a) {
      const Term* atom = gp.AtomTerm(a);
      EXPECT_EQ(staged->ValueOf(atom), modelonly->ValueOf(atom)) << src;
      EXPECT_EQ(staged->StatusOf(atom), modelonly->StatusOf(atom)) << src;
    }
    // Query answering agrees up to levels (the model-only engine reports
    // approximate levels, never wrong statuses or answer sets).
    QueryResult qa = staged->Solve(MustParseQuery(f.store, "win(X)"));
    QueryResult qb = modelonly->Solve(MustParseQuery(f.store, "win(X)"));
    EXPECT_EQ(qa.status, qb.status) << src;
    EXPECT_EQ(qa.answers.size(), qb.answers.size()) << src;
  }
}

TEST(IncrementalTest, TabledEngineFactDeltas) {
  Fixture f("win(X) :- move(X, Y), not win(Y). move(a, b). move(b, c).");
  TabledOptions fast;
  fast.compute_stages = false;
  Result<TabledEngine> engine = TabledEngine::Create(f.program, fast);
  ASSERT_TRUE(engine.ok());
  const Term* win_a = MustParseTerm(f.store, "win(a)");
  const Term* win_b = MustParseTerm(f.store, "win(b)");
  // b -> c (dead end): win(b) holds, so win(a) fails.
  EXPECT_EQ(engine->ValueOf(win_a), TruthValue::kFalse);
  EXPECT_EQ(engine->ValueOf(win_b), TruthValue::kTrue);

  // Retracting move(b, c) strands b, flipping win(a).
  ASSERT_TRUE(engine->RetractFact(MustParseTerm(f.store, "move(b, c)")));
  // No-op deltas report no change.
  EXPECT_FALSE(engine->RetractFact(MustParseTerm(f.store, "move(b, c)")));
  EXPECT_FALSE(engine->RetractFact(MustParseTerm(f.store, "win(a)")));
  EXPECT_EQ(engine->ValueOf(win_a), TruthValue::kTrue);
  EXPECT_EQ(engine->ValueOf(win_b), TruthValue::kFalse);
  // Levels are unavailable without stages; statuses still exact.
  EXPECT_EQ(engine->StatusOf(win_a), GoalStatus::kSuccessful);
  EXPECT_FALSE(engine->LevelOf(win_a).has_value());

  // A staged engine takes the same deltas and keeps its levels fresh
  // (regression: this used to be a silent no-op returning false). The full
  // delta/level matrix lives in stages_test.cc.
  Result<TabledEngine> staged = TabledEngine::Create(f.program);
  ASSERT_TRUE(staged.ok());
  EXPECT_TRUE(staged->RetractFact(MustParseTerm(f.store, "move(b, c)")));
  EXPECT_FALSE(staged->RetractFact(MustParseTerm(f.store, "move(b, c)")));
  EXPECT_EQ(staged->ValueOf(win_a), TruthValue::kTrue);
  EXPECT_TRUE(staged->LevelOf(win_a).has_value());
}

TEST(IncrementalTest, EngineOracleIsReusedAcrossMemoClears) {
  Fixture f(workload::GameChain(24));
  GlobalSlsEngine engine(f.program);
  QueryResult first = engine.Solve(MustParseQuery(f.store, "win(n1)"));
  EXPECT_EQ(first.status, GoalStatus::kSuccessful);
  ASSERT_NE(engine.oracle_solver(), nullptr);
  const IncrementalSolver* oracle = engine.oracle_solver();
  EXPECT_EQ(oracle->stats().full_solves, 1u);

  engine.ClearMemo();
  QueryResult second = engine.Solve(MustParseQuery(f.store, "win(n1)"));
  EXPECT_EQ(second.status, GoalStatus::kSuccessful);
  // Same incremental instance, and no re-solve happened: the cached model
  // was reused to refill the memo.
  EXPECT_EQ(engine.oracle_solver(), oracle);
  EXPECT_EQ(oracle->stats().full_solves, 1u);
  EXPECT_EQ(oracle->stats().incremental_solves, 0u);
}

TEST(IncrementalTest, EngineOracleRebuildsAfterProgramMutation) {
  // Growing the program and clearing the memo must not answer from the
  // stale oracle model.
  Fixture f("p :- not q.");
  GlobalSlsEngine engine(f.program);
  EXPECT_EQ(engine.StatusOf(MustParseTerm(f.store, "p")),
            GoalStatus::kSuccessful);

  Program extra = MustParseProgram(f.store, "q.");
  f.program.AddClause(extra.clauses()[0]);
  engine.ClearMemo();
  EXPECT_EQ(engine.StatusOf(MustParseTerm(f.store, "q")),
            GoalStatus::kSuccessful);
  EXPECT_EQ(engine.StatusOf(MustParseTerm(f.store, "p")),
            GoalStatus::kFailed);
}

}  // namespace
}  // namespace gsls
