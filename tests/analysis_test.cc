#include "analysis/dependency_graph.h"

#include <gtest/gtest.h>

#include "test_support.h"

namespace gsls {
namespace {

using testing::Fixture;

FunctorId Pred(Fixture& f, std::string_view name, uint32_t arity) {
  return f.store.symbols().FindFunctor(name, arity);
}

TEST(DependencyGraphTest, EdgesCarrySigns) {
  Fixture f("p :- q, not r.");
  DependencyGraph g(f.program);
  ASSERT_EQ(g.edges().size(), 2u);
  EXPECT_TRUE(g.edges()[0].positive);
  EXPECT_FALSE(g.edges()[1].positive);
  EXPECT_EQ(g.predicates().size(), 3u);
}

TEST(DependencyGraphTest, SccGroupsMutualRecursion) {
  Fixture f(
      "p :- q. q :- p.\n"
      "r :- p.\n");
  DependencyGraph g(f.program);
  auto comps = g.StronglyConnectedComponents();
  auto ids = g.ComponentIds();
  EXPECT_EQ(ids[Pred(f, "p", 0)], ids[Pred(f, "q", 0)]);
  EXPECT_NE(ids[Pred(f, "p", 0)], ids[Pred(f, "r", 0)]);
  // Reverse topological: callees first.
  EXPECT_LT(ids[Pred(f, "p", 0)], ids[Pred(f, "r", 0)]);
}

TEST(DependencyGraphTest, NegativeCycleDetection) {
  Fixture f1("p :- not q. q :- p.");
  EXPECT_TRUE(DependencyGraph(f1.program).HasNegativeCycle());
  Fixture f2("p :- not q. q :- r.");
  EXPECT_FALSE(DependencyGraph(f2.program).HasNegativeCycle());
}

TEST(DependencyGraphTest, AcyclicityChecks) {
  Fixture chain("p :- q. q :- r. r.");
  EXPECT_TRUE(DependencyGraph(chain.program).IsAcyclic());
  Fixture self("p :- p.");
  EXPECT_FALSE(DependencyGraph(self.program).IsAcyclic());
  Fixture rec("t(X, Y) :- e(X, Z), t(Z, Y).");
  EXPECT_FALSE(DependencyGraph(rec.program).IsAcyclic());
}

TEST(DependencyGraphTest, Reachability) {
  Fixture f(
      "p :- q. q :- r. s :- t.\n"
      "r. t.\n");
  DependencyGraph g(f.program);
  auto reach = g.ReachableFrom({Pred(f, "p", 0)});
  EXPECT_TRUE(reach.count(Pred(f, "q", 0)));
  EXPECT_TRUE(reach.count(Pred(f, "r", 0)));
  EXPECT_FALSE(reach.count(Pred(f, "s", 0)));
  EXPECT_FALSE(reach.count(Pred(f, "t", 0)));
}

TEST(StratifyTest, StratifiedProgramGetsLayers) {
  Fixture f(
      "e(a, b).\n"
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- e(X, Z), t(Z, Y).\n"
      "nt(X, Y) :- v(X), v(Y), not t(X, Y).\n"
      "v(a). v(b).\n");
  Stratification s = Stratify(f.program);
  ASSERT_TRUE(s.stratified);
  EXPECT_EQ(s.strata[Pred(f, "e", 2)], 0);
  EXPECT_EQ(s.strata[Pred(f, "t", 2)], 0);
  EXPECT_EQ(s.strata[Pred(f, "nt", 2)], 1);
  EXPECT_EQ(s.stratum_count, 2);
}

TEST(StratifyTest, RecursionThroughNegationRejected) {
  Fixture f("win(X) :- move(X, Y), not win(Y). move(a, b).");
  Stratification s = Stratify(f.program);
  EXPECT_FALSE(s.stratified);
}

TEST(StratifyTest, MultiLayerStrata) {
  Fixture f(
      "a.\n"
      "b :- not a.\n"
      "c :- not b.\n"
      "d :- not c, b.\n");
  Stratification s = Stratify(f.program);
  ASSERT_TRUE(s.stratified);
  EXPECT_EQ(s.strata[Pred(f, "a", 0)], 0);
  EXPECT_EQ(s.strata[Pred(f, "b", 0)], 1);
  EXPECT_EQ(s.strata[Pred(f, "c", 0)], 2);
  EXPECT_EQ(s.strata[Pred(f, "d", 0)], 3);
  EXPECT_EQ(s.stratum_count, 4);
}

TEST(StratifyTest, PositiveRecursionStaysInOneStratum) {
  Fixture f("t(X,Y) :- e(X,Y). t(X,Y) :- e(X,Z), t(Z,Y). e(a,b).");
  Stratification s = Stratify(f.program);
  ASSERT_TRUE(s.stratified);
  EXPECT_EQ(s.stratum_count, 1);
}

TEST(GroundAnalysisTest, LocalStratificationOnGroundPrograms) {
  // Stratified at the atom level even though predicate-level analysis says
  // no: even/odd alternation on a finite chain.
  Fixture f(
      "even(z).\n"
      "even(s(X)) :- not even(X).\n");
  Stratification s = Stratify(f.program);
  EXPECT_FALSE(s.stratified);  // predicate-level: even depends on not even
  GroundProgram gp = testing::MustGround(f.program, /*term_depth=*/4);
  EXPECT_TRUE(gp.IsLocallyStratified());  // atom-level: even(s(x)) < even(x)
}

TEST(GroundAnalysisTest, NegativeAtomCycleNotLocallyStratified) {
  Fixture f("p :- not q. q :- not p.");
  GroundProgram gp = testing::MustGround(f.program);
  EXPECT_FALSE(gp.IsLocallyStratified());
}

TEST(GroundAnalysisTest, AtomAcyclicity) {
  Fixture chain("p :- q. q :- r. r.");
  EXPECT_TRUE(testing::MustGround(chain.program).IsAtomAcyclic());
  // The loops below need a seed fact: the relevant grounder drops rules
  // whose positive bodies can never be derived.
  Fixture loop("p :- q. q :- p. p.");
  EXPECT_FALSE(testing::MustGround(loop.program).IsAtomAcyclic());
  Fixture self("p :- p. p.");
  EXPECT_FALSE(testing::MustGround(self.program).IsAtomAcyclic());
  // Brute-force instantiation keeps underivable rules and sees the cycle.
  Fixture pure_loop("p :- q. q :- p.");
  Result<GroundProgram> full =
      FullyInstantiate(pure_loop.program, GroundingOptions{});
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->IsAtomAcyclic());
}

}  // namespace
}  // namespace gsls
