#include <gtest/gtest.h>

#include <vector>

#include "util/arena.h"
#include "util/bitset.h"
#include "util/csr.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"

namespace gsls {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad token");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kFailedPrecondition, StatusCode::kResourceExhausted,
        StatusCode::kUnimplemented, StatusCode::kInternal}) {
    EXPECT_NE(std::string(StatusCodeName(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(ok.ValueOr(7), 42);
  Result<int> err(Status::NotFound("nope"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.ValueOr(7), 7);
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(ArenaTest, BumpAllocationAndAccounting) {
  Arena arena(1024);
  void* a = arena.Allocate(100);
  void* b = arena.Allocate(100);
  EXPECT_NE(a, b);
  EXPECT_GE(arena.bytes_allocated(), 200u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_allocated());
}

TEST(ArenaTest, LargeAllocationsGetOwnBlocks) {
  Arena arena(256);
  void* big = arena.Allocate(10000);
  EXPECT_NE(big, nullptr);
  EXPECT_GE(arena.bytes_reserved(), 10000u);
}

TEST(ArenaTest, AlignmentRespected) {
  Arena arena;
  arena.Allocate(1);
  void* p = arena.Allocate(8, 64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 64, 0u);
}

TEST(BitsetTest, SetTestReset) {
  DenseBitset b(130);
  EXPECT_FALSE(b.Test(0));
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_EQ(b.Count(), 3u);
  b.Reset(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
  EXPECT_FALSE(b.Test(500));  // out of range reads false
}

TEST(BitsetTest, SetAlgebra) {
  DenseBitset a(100), b(100);
  a.Set(3);
  a.Set(70);
  b.Set(3);
  b.Set(70);
  b.Set(99);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.Intersects(b));
  a.UnionWith(b);
  EXPECT_TRUE(b.IsSubsetOf(a));
  DenseBitset empty(100);
  EXPECT_TRUE(empty.None());
  EXPECT_FALSE(empty.Intersects(a));
  EXPECT_TRUE(empty.IsSubsetOf(a));
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int v = rng.UniformInt(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(StringsTest, StrCatAndJoin) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(StrJoin(parts, ", "), "x, y, z");
  EXPECT_EQ(StrJoin(std::vector<std::string>{}, ","), "");
}

TEST(StringsTest, Split) {
  auto out = StrSplit("a,b,,c", ',');
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], "a");
  EXPECT_EQ(out[2], "");
  EXPECT_EQ(StrSplit("", ',').size(), 1u);
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(CsrTest, TwoPassBuildPartitionsPayloadByRow) {
  // (row, value) items in arbitrary order; per-row Fill order must hold.
  const std::pair<uint32_t, int> items[] = {
      {2, 10}, {0, 1}, {2, 11}, {3, 20}, {0, 2}, {2, 12}};
  Csr<int> csr;
  csr.Reset(4);
  for (const auto& [row, _] : items) csr.CountAt(row);
  csr.FinishCounting();
  for (const auto& [row, value] : items) csr.Fill(row, value);
  csr.FinishFilling();

  EXPECT_EQ(csr.rows(), 4u);
  EXPECT_EQ(csr.size(), 6u);
  EXPECT_EQ(std::vector<int>(csr.Row(0).begin(), csr.Row(0).end()),
            (std::vector<int>{1, 2}));
  EXPECT_TRUE(csr.Row(1).empty());
  EXPECT_EQ(std::vector<int>(csr.Row(2).begin(), csr.Row(2).end()),
            (std::vector<int>{10, 11, 12}));
  EXPECT_EQ(std::vector<int>(csr.Row(3).begin(), csr.Row(3).end()),
            (std::vector<int>{20}));
}

TEST(CsrTest, ResetReusesStorageAcrossBuilds) {
  Csr<uint32_t> csr;
  for (int build = 0; build < 3; ++build) {
    csr.Reset(2);
    csr.AddCount(1, 2);
    csr.FinishCounting();
    csr.Fill(1, 7u + build);
    csr.Fill(1, 9u + build);
    csr.FinishFilling();
    ASSERT_EQ(csr.Row(0).size(), 0u);
    ASSERT_EQ(csr.Row(1).size(), 2u);
    EXPECT_EQ(csr.Row(1)[0], 7u + build);
    EXPECT_EQ(csr.Row(1)[1], 9u + build);
  }
}

}  // namespace
}  // namespace gsls
