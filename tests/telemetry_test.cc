// The observability layer (src/obs/): histogram percentile edge cases,
// lock-free counter exactness under the work-stealing pool, trace-JSON
// well-formedness, and — the property the whole registry design leans on —
// telemetry invariance of the incremental solver across thread counts.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "obs/histogram.h"
#include "obs/trace.h"
#include "solver/incremental.h"
#include "solver/solver.h"
#include "test_support.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/generators.h"

namespace gsls {
namespace {

using testing::Fixture;
using testing::MustGround;

// ---------------------------------------------------------------------------
// Histograms

TEST(HistogramTest, EmptyPercentilesAreZero) {
  obs::LocalHistogram h;
  EXPECT_EQ(h.count, 0u);
  EXPECT_EQ(h.p50(), 0u);
  EXPECT_EQ(h.p90(), 0u);
  EXPECT_EQ(h.p99(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, SingleSampleIsExactAtEveryPercentile) {
  for (uint64_t v : {0ull, 1ull, 7ull, 1000ull, 123456789ull}) {
    obs::LocalHistogram h;
    h.Record(v);
    EXPECT_EQ(h.p50(), v) << v;
    EXPECT_EQ(h.p90(), v) << v;
    EXPECT_EQ(h.p99(), v) << v;
    EXPECT_EQ(h.min, v);
    EXPECT_EQ(h.max, v);
  }
}

TEST(HistogramTest, ConstantStreamIsExact) {
  obs::LocalHistogram h;
  for (int i = 0; i < 1000; ++i) h.Record(42);
  // All samples share a bucket whose clamped upper bound is [min, max].
  EXPECT_EQ(h.p50(), 42u);
  EXPECT_EQ(h.p99(), 42u);
  EXPECT_EQ(h.mean(), 42.0);
}

TEST(HistogramTest, BucketBoundariesAtPowersOfTwo) {
  // 2^k and 2^k - 1 must land in different buckets (bit_width bucketing):
  // a stream of the two values keeps them distinguishable at the ends.
  obs::LocalHistogram h;
  h.Record(127);  // bucket upper 127
  h.Record(128);  // bucket upper 255
  EXPECT_EQ(h.p50(), 127u);
  // Rank-2 percentiles resolve to the second bucket, clamped to max.
  EXPECT_EQ(h.p99(), 128u);
  EXPECT_EQ(h.min, 127u);
  EXPECT_EQ(h.max, 128u);
}

TEST(HistogramTest, PercentilesAreMonotoneAndClamped) {
  obs::LocalHistogram h;
  Rng rng(7);
  uint64_t lo = UINT64_MAX, hi = 0;
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.Uniform(1u << 20);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    h.Record(v);
  }
  EXPECT_LE(h.p50(), h.p90());
  EXPECT_LE(h.p90(), h.p99());
  EXPECT_GE(h.p50(), lo);
  EXPECT_LE(h.p99(), hi);
}

TEST(HistogramTest, LocalMergeEqualsCombinedRecording) {
  obs::LocalHistogram a, b, all;
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    uint64_t v = rng.Uniform(1 << 12);
    ((i % 2 == 0) ? a : b).Record(v);
    all.Record(v);
  }
  a.MergeFrom(b);
  EXPECT_EQ(a.count, all.count);
  EXPECT_EQ(a.sum, all.sum);
  EXPECT_EQ(a.min, all.min);
  EXPECT_EQ(a.max, all.max);
  EXPECT_EQ(a.p50(), all.p50());
  EXPECT_EQ(a.p99(), all.p99());
}

TEST(HistogramTest, AtomicSnapshotMatchesLocalTwin) {
  obs::Histogram atomic;
  obs::LocalHistogram local;
  Rng rng(13);
  for (int i = 0; i < 300; ++i) {
    uint64_t v = rng.Uniform(1 << 16);
    atomic.Record(v);
    local.Record(v);
  }
  obs::LocalHistogram snap = atomic.Snapshot();
  EXPECT_EQ(snap.count, local.count);
  EXPECT_EQ(snap.sum, local.sum);
  EXPECT_EQ(snap.p50(), local.p50());
  EXPECT_EQ(snap.p99(), local.p99());
}

// ---------------------------------------------------------------------------
// Registry under concurrency

TEST(MetricsRegistryTest, InternedPointersAreStable) {
  obs::MetricsRegistry m;
  obs::Counter* c = m.GetCounter("x");
  EXPECT_EQ(c, m.GetCounter("x"));
  EXPECT_NE(static_cast<void*>(c), static_cast<void*>(m.GetGauge("x")));
}

TEST(MetricsRegistryTest, CountersAreExactUnderThePool) {
  // Every worker hammers the same counter and histogram; at the Run
  // barrier the totals must be exact (and the test body TSan-clean).
  obs::MetricsRegistry m;
  obs::Counter* c = m.GetCounter("pool.increments");
  obs::Histogram* h = m.GetHistogram("pool.values");
  constexpr uint32_t kTasks = 64;
  constexpr int kPerTask = 1000;
  WorkStealingPool pool(4);
  std::vector<uint32_t> seeds(kTasks);
  std::iota(seeds.begin(), seeds.end(), 0u);
  pool.Run(seeds, [&](unsigned, uint32_t task) {
    for (int i = 0; i < kPerTask; ++i) {
      c->Add(1);
      h->Record(task);
    }
  });
  EXPECT_EQ(c->value(), uint64_t{kTasks} * kPerTask);
  obs::LocalHistogram snap = h->Snapshot();
  EXPECT_EQ(snap.count, uint64_t{kTasks} * kPerTask);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, kTasks - 1);
}

TEST(MetricsRegistryTest, JsonExportHasAllSections) {
  obs::MetricsRegistry m;
  m.GetCounter("a.count")->Add(3);
  m.GetGauge("b.gauge")->Set(-5);
  m.GetHistogram("c.hist")->Record(9);
  std::ostringstream os;
  m.WriteJson(os);
  std::string json = os.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a.count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"b.gauge\":-5"), std::string::npos);
  EXPECT_NE(json.find("\"c.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace JSON well-formedness

/// Minimal JSON well-formedness checker (objects, arrays, strings with
/// escapes, numbers, literals) — enough to certify the Chrome trace
/// exporter's output parses, without a JSON dependency.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}
  bool Valid() {
    i_ = 0;
    return Value() && (SkipWs(), i_ == s_.size());
  }

 private:
  void SkipWs() {
    while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[i_]))) {
      ++i_;
    }
  }
  bool Literal(const char* lit) {
    size_t n = std::string(lit).size();
    if (s_.compare(i_, n, lit) != 0) return false;
    i_ += n;
    return true;
  }
  bool String() {
    if (s_[i_] != '"') return false;
    for (++i_; i_ < s_.size(); ++i_) {
      if (s_[i_] == '\\') {
        ++i_;
      } else if (s_[i_] == '"') {
        ++i_;
        return true;
      }
    }
    return false;
  }
  bool Number() {
    size_t start = i_;
    if (i_ < s_.size() && s_[i_] == '-') ++i_;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) ||
            s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E' ||
            s_[i_] == '+' || s_[i_] == '-')) {
      ++i_;
    }
    return i_ > start;
  }
  bool Value() {
    SkipWs();
    if (i_ >= s_.size()) return false;
    switch (s_[i_]) {
      case '{': return Members();
      case '[': return Elements();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Members() {
    ++i_;  // '{'
    SkipWs();
    if (i_ < s_.size() && s_[i_] == '}') return ++i_, true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (i_ >= s_.size() || s_[i_] != ':') return false;
      ++i_;
      if (!Value()) return false;
      SkipWs();
      if (i_ < s_.size() && s_[i_] == ',') {
        ++i_;
        continue;
      }
      break;
    }
    if (i_ >= s_.size() || s_[i_] != '}') return false;
    ++i_;
    return true;
  }
  bool Elements() {
    ++i_;  // '['
    SkipWs();
    if (i_ < s_.size() && s_[i_] == ']') return ++i_, true;
    while (true) {
      if (!Value()) return false;
      SkipWs();
      if (i_ < s_.size() && s_[i_] == ',') {
        ++i_;
        continue;
      }
      break;
    }
    if (i_ >= s_.size() || s_[i_] != ']') return false;
    ++i_;
    return true;
  }

  const std::string& s_;
  size_t i_ = 0;
};

TEST(JsonCheckerTest, SelfCheck) {
  EXPECT_TRUE(JsonChecker(R"({"a":[1,2.5,{"b":"c\"d"}],"e":null})").Valid());
  EXPECT_FALSE(JsonChecker(R"({"a":1)").Valid());
  EXPECT_FALSE(JsonChecker(R"({"a":1}x)").Valid());
  EXPECT_FALSE(JsonChecker(R"([1,])").Valid());
}

TEST(TraceTest, ChromeTraceIsWellFormedJson) {
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  rec.Enable(/*ring_capacity=*/64);
  // Wrap the ring first to cover the oldest-first re-ordering path; the
  // spans recorded after it are the newest events and survive the wrap.
  for (int i = 0; i < 200; ++i) GSLS_TRACE_INSTANT("test.wrap", i);
  {
    GSLS_TRACE_SPAN("test.outer", 1);
    GSLS_TRACE_SPAN("test.inner", 2);
    GSLS_TRACE_INSTANT("test.mark", 3);
  }
  rec.Disable();
  std::ostringstream os;
  rec.WriteChromeTrace(os);
  std::string json = os.str();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_GT(rec.dropped_count(), 0u);  // the wrap loop overflowed the ring
  rec.Clear();
}

TEST(TraceTest, DisabledRecorderBuffersNothing) {
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  rec.Clear();
  ASSERT_FALSE(rec.enabled());
  size_t before = rec.event_count();
  {
    GSLS_TRACE_SPAN("test.disabled", 0);
    GSLS_TRACE_INSTANT("test.disabled", 0);
  }
  EXPECT_EQ(rec.event_count(), before);
}

// ---------------------------------------------------------------------------
// Telemetry invariance of the incremental solver across thread counts

/// Runs the same churn stream at `threads`, returns the solver's telemetry
/// plus a model digest via out-params.
struct ChurnResult {
  SolverDiagnostics diag;
  IncrementalStats stats;
  obs::LocalHistogram resolved_components;
  obs::LocalHistogram resolved_atoms;
  uint64_t delta_count = 0;
  Interpretation model;
};

ChurnResult RunChurn(const std::string& src, unsigned threads) {
  Fixture f(src);
  obs::Telemetry telemetry;
  SolverOptions sopts;
  sopts.num_threads = threads;
  sopts.telemetry = &telemetry;
  IncrementalSolver inc(MustGround(f.program), sopts);
  inc.Model();

  std::vector<AtomId> facts;
  for (AtomId a = 0; a < inc.program().atom_count(); ++a) {
    if (inc.program().FindUnitRule(a).has_value()) facts.push_back(a);
  }
  EXPECT_FALSE(facts.empty());

  Rng rng(0x7E1Eu);
  for (int d = 0; d < 40; ++d) {
    // Multi-fact batches engage the parallel cone when threaded.
    for (int b = 0; b < 3; ++b) {
      AtomId a = facts[rng.Uniform(facts.size())];
      if (inc.HasFact(a)) {
        inc.RetractAtom(a);
      } else {
        inc.AssertAtom(a);
      }
    }
    inc.Model();
  }

  ChurnResult out;
  out.diag = inc.diagnostics();
  out.stats = inc.stats();
  obs::MetricsRegistry& m = telemetry.metrics;
  out.resolved_components =
      m.GetHistogram("incremental.delta.resolved_components")->Snapshot();
  out.resolved_atoms =
      m.GetHistogram("incremental.delta.resolved_atoms")->Snapshot();
  out.delta_count = m.GetHistogram("incremental.delta.latency_us")->count();
  out.model = inc.Model().model;
  return out;
}

TEST(TelemetryInvarianceTest, ChurnTelemetryIsThreadCountInvariant) {
  const std::string src = workload::GameGrid(12, 12);
  ChurnResult base = RunChurn(src, 1);
  ASSERT_EQ(base.delta_count, 40u);
  for (unsigned threads : {2u, 4u}) {
    ChurnResult got = RunChurn(src, threads);
    EXPECT_EQ(got.model, base.model) << "threads=" << threads;
    // The change-pruned re-solve set is schedule-independent: the heap
    // and the parallel cone re-solve exactly the components whose inputs
    // moved, so the per-delta histograms agree sample-for-sample.
    EXPECT_EQ(got.resolved_components.count, base.resolved_components.count);
    EXPECT_EQ(got.resolved_components.sum, base.resolved_components.sum);
    EXPECT_EQ(got.resolved_atoms.sum, base.resolved_atoms.sum);
    EXPECT_EQ(got.delta_count, base.delta_count);
    EXPECT_EQ(got.stats.components_resolved, base.stats.components_resolved);
    EXPECT_EQ(got.stats.cone_cutoffs, base.stats.cone_cutoffs);
    // Pipeline diagnostics merged at the barrier equal a sequential run's.
    EXPECT_EQ(got.diag.rules_visited, base.diag.rules_visited);
    EXPECT_EQ(got.diag.unfounded_floods, base.diag.unfounded_floods);
    EXPECT_EQ(got.diag.unfounded_falsified, base.diag.unfounded_falsified);
    EXPECT_EQ(got.diag.alternating_rounds, base.diag.alternating_rounds);
    EXPECT_EQ(got.diag.flood_sizes.count, base.diag.flood_sizes.count);
    EXPECT_EQ(got.diag.flood_sizes.sum, base.diag.flood_sizes.sum);
  }
}

TEST(TelemetryTest, DumpTelemetryMentionsEveryLayer) {
  Fixture f(workload::GameChain(64));
  obs::Telemetry telemetry;
  SolverOptions sopts;
  sopts.telemetry = &telemetry;
  IncrementalSolver inc(MustGround(f.program), sopts);
  inc.Model();
  inc.AssertRule(GroundRule{0, {1}, {}});  // force a condensation repair
  inc.Model();
  std::ostringstream os;
  inc.DumpTelemetry(os);
  std::string dump = os.str();
  EXPECT_NE(dump.find("incremental:"), std::string::npos);
  EXPECT_NE(dump.find("diagnostics:"), std::string::npos);
  EXPECT_NE(dump.find("condensation:"), std::string::npos);
  EXPECT_NE(dump.find("incremental.delta.latency_us"), std::string::npos);
  EXPECT_NE(dump.find("solver.diag.components"), std::string::npos);
}

TEST(TelemetryTest, SolveWfsPublishesDiagnostics) {
  Fixture f(workload::GameChain(32));
  GroundProgram gp = MustGround(f.program);
  obs::Telemetry telemetry;
  SolverOptions sopts;
  sopts.telemetry = &telemetry;
  SolverDiagnostics diag;
  SolveWfs(gp, sopts, &diag);
  EXPECT_EQ(static_cast<uint64_t>(
                telemetry.metrics.GetGauge("solver.diag.rules_visited")
                    ->value()),
            diag.rules_visited);
  EXPECT_GT(telemetry.metrics.GetGauge("solver.diag.components")->value(), 0);
}

}  // namespace
}  // namespace gsls
