#include "wfs/wfs.h"

#include <gtest/gtest.h>

#include "analysis/dependency_graph.h"
#include "test_support.h"
#include "wfs/perfect.h"

namespace gsls {
namespace {

using testing::Fixture;
using testing::MustGround;

TruthValue ValueOf(const GroundProgram& gp, const WfsModel& model,
                   TermStore& store, std::string_view atom_src) {
  const Term* atom = MustParseTerm(store, atom_src);
  auto id = gp.FindAtom(atom);
  if (!id.has_value()) return TruthValue::kFalse;
  return model.model.Value(*id);
}

TEST(WfsTest, FactsAreTrue) {
  Fixture f("p. q :- p.");
  GroundProgram gp = MustGround(f.program);
  WfsModel m = ComputeWfs(gp);
  EXPECT_EQ(ValueOf(gp, m, f.store, "p"), TruthValue::kTrue);
  EXPECT_EQ(ValueOf(gp, m, f.store, "q"), TruthValue::kTrue);
  EXPECT_TRUE(m.model.IsTotal());
}

TEST(WfsTest, UnprovableAtomIsFalse) {
  Fixture f("p :- q. r.");
  GroundProgram gp = MustGround(f.program);
  WfsModel m = ComputeWfs(gp);
  EXPECT_EQ(ValueOf(gp, m, f.store, "p"), TruthValue::kFalse);
  EXPECT_EQ(ValueOf(gp, m, f.store, "r"), TruthValue::kTrue);
}

TEST(WfsTest, NegationAsFailure) {
  Fixture f("p :- not q.");
  GroundProgram gp = MustGround(f.program);
  WfsModel m = ComputeWfs(gp);
  EXPECT_EQ(ValueOf(gp, m, f.store, "p"), TruthValue::kTrue);
  EXPECT_EQ(ValueOf(gp, m, f.store, "q"), TruthValue::kFalse);
}

TEST(WfsTest, SelfNegationIsUndefined) {
  Fixture f("p :- not p.");
  GroundProgram gp = MustGround(f.program);
  WfsModel m = ComputeWfs(gp);
  EXPECT_EQ(ValueOf(gp, m, f.store, "p"), TruthValue::kUndefined);
}

TEST(WfsTest, PositiveLoopIsFalse) {
  Fixture f("p :- q. q :- p.");
  GroundProgram gp = MustGround(f.program);
  WfsModel m = ComputeWfs(gp);
  EXPECT_EQ(ValueOf(gp, m, f.store, "p"), TruthValue::kFalse);
  EXPECT_EQ(ValueOf(gp, m, f.store, "q"), TruthValue::kFalse);
}

TEST(WfsTest, NegativeTwoCycleIsUndefined) {
  Fixture f("p :- not q. q :- not p.");
  GroundProgram gp = MustGround(f.program);
  WfsModel m = ComputeWfs(gp);
  EXPECT_EQ(ValueOf(gp, m, f.store, "p"), TruthValue::kUndefined);
  EXPECT_EQ(ValueOf(gp, m, f.store, "q"), TruthValue::kUndefined);
}

TEST(WfsTest, MixedLoopThroughPositiveBodyIsUndefined) {
  // p <- c, not p with c true: p has no witness of unusability and can
  // never fire: undefined.
  Fixture f("c. p :- c, not p.");
  GroundProgram gp = MustGround(f.program);
  WfsModel m = ComputeWfs(gp);
  EXPECT_EQ(ValueOf(gp, m, f.store, "c"), TruthValue::kTrue);
  EXPECT_EQ(ValueOf(gp, m, f.store, "p"), TruthValue::kUndefined);
}

TEST(WfsTest, PaperExample32Model) {
  // Example 3.2: M_WF = {s, not p, not q, not r}.
  Fixture f(
      "p :- q, not r.\n"
      "q :- r, not p.\n"
      "r :- p, not q.\n"
      "s :- not p, not q, not r.\n");
  GroundProgram gp = MustGround(f.program);
  WfsModel m = ComputeWfs(gp);
  EXPECT_EQ(ValueOf(gp, m, f.store, "p"), TruthValue::kFalse);
  EXPECT_EQ(ValueOf(gp, m, f.store, "q"), TruthValue::kFalse);
  EXPECT_EQ(ValueOf(gp, m, f.store, "r"), TruthValue::kFalse);
  EXPECT_EQ(ValueOf(gp, m, f.store, "s"), TruthValue::kTrue);
  EXPECT_TRUE(m.model.IsTotal());
}

TEST(WfsTest, WinGameChain) {
  // n1 -> n2 -> n3 (no move from n3): n3 lost, n2 won, n1 lost.
  Fixture f(
      "win(X) :- move(X, Y), not win(Y).\n"
      "move(n1, n2). move(n2, n3).\n");
  GroundProgram gp = MustGround(f.program);
  WfsModel m = ComputeWfs(gp);
  EXPECT_EQ(ValueOf(gp, m, f.store, "win(n3)"), TruthValue::kFalse);
  EXPECT_EQ(ValueOf(gp, m, f.store, "win(n2)"), TruthValue::kTrue);
  EXPECT_EQ(ValueOf(gp, m, f.store, "win(n1)"), TruthValue::kFalse);
}

TEST(WfsTest, WinGameCycleIsDrawn) {
  Fixture f(
      "win(X) :- move(X, Y), not win(Y).\n"
      "move(a, b). move(b, a).\n");
  GroundProgram gp = MustGround(f.program);
  WfsModel m = ComputeWfs(gp);
  EXPECT_EQ(ValueOf(gp, m, f.store, "win(a)"), TruthValue::kUndefined);
  EXPECT_EQ(ValueOf(gp, m, f.store, "win(b)"), TruthValue::kUndefined);
}

TEST(WfsTest, WinGameCycleWithEscape) {
  // a <-> b, b -> c, c dead: win(c)=false, win(b)=true, win(a)=false.
  Fixture f(
      "win(X) :- move(X, Y), not win(Y).\n"
      "move(a, b). move(b, a). move(b, c).\n");
  GroundProgram gp = MustGround(f.program);
  WfsModel m = ComputeWfs(gp);
  EXPECT_EQ(ValueOf(gp, m, f.store, "win(c)"), TruthValue::kFalse);
  EXPECT_EQ(ValueOf(gp, m, f.store, "win(b)"), TruthValue::kTrue);
  EXPECT_EQ(ValueOf(gp, m, f.store, "win(a)"), TruthValue::kFalse);
}

TEST(WfsTest, OperatorsMonotone) {
  Fixture f(
      "p :- q, not r.\n"
      "q :- r, not p.\n"
      "r :- p, not q.\n"
      "s :- not p, not q, not r.\n");
  GroundProgram gp = MustGround(f.program);
  size_t n = gp.atom_count();
  Interpretation empty(n);
  Interpretation bigger(n);
  // bigger: {not p}
  auto p = gp.FindAtom(MustParseTerm(f.store, "p"));
  ASSERT_TRUE(p.has_value());
  bigger.SetFalse(*p);
  DenseBitset u_small = GreatestUnfoundedSet(gp, empty);
  DenseBitset u_big = GreatestUnfoundedSet(gp, bigger);
  EXPECT_TRUE(u_small.IsSubsetOf(u_big));
  DenseBitset t_small = TpStep(gp, empty);
  DenseBitset t_big = TpStep(gp, bigger);
  EXPECT_TRUE(t_small.IsSubsetOf(t_big));
}

TEST(WfsTest, GreatestUnfoundedSetIsUnfounded) {
  Fixture f(
      "p :- q, not r.\n"
      "q :- r, not p.\n"
      "r :- p, not q.\n"
      "s :- not p, not q, not r.\n"
      "t :- s.\n");
  GroundProgram gp = MustGround(f.program);
  Interpretation empty(gp.atom_count());
  DenseBitset u = GreatestUnfoundedSet(gp, empty);
  EXPECT_TRUE(IsUnfoundedSet(gp, empty, u));
}

TEST(WfsTest, WpIterationMatchesAlternatingFixpoint) {
  Rng rng(20260610);
  for (int trial = 0; trial < 60; ++trial) {
    std::string src = testing::RandomPropositionalProgram(
        rng, /*num_preds=*/8, /*num_rules=*/12, /*max_body=*/3);
    Fixture f(src);
    GroundProgram gp = MustGround(f.program);
    WfsModel wp = ComputeWfs(gp);
    WfsModel alt = ComputeWfsAlternating(gp);
    EXPECT_EQ(wp.model, alt.model) << "program:\n" << src;
  }
}

TEST(WfsTest, StagesModelMatchesWpModel) {
  Rng rng(777);
  for (int trial = 0; trial < 60; ++trial) {
    std::string src = testing::RandomPropositionalProgram(rng, 7, 14, 3);
    Fixture f(src);
    GroundProgram gp = MustGround(f.program);
    WfsModel wp = ComputeWfs(gp);
    WfsStages st = ComputeWfsStages(gp);
    EXPECT_EQ(wp.model, st.model) << "program:\n" << src;
  }
}

TEST(WfsTest, StagesAreSuccessorStagesAndMonotone) {
  Fixture f(
      "win(X) :- move(X, Y), not win(Y).\n"
      "move(n1, n2). move(n2, n3). move(n3, n4).\n");
  GroundProgram gp = MustGround(f.program);
  WfsStages st = ComputeWfsStages(gp);
  for (AtomId a = 0; a < gp.atom_count(); ++a) {
    if (st.model.IsTrue(a)) {
      EXPECT_GE(st.true_stage[a], 1u);
      EXPECT_EQ(st.false_stage[a], 0u);
    } else if (st.model.IsFalse(a)) {
      EXPECT_GE(st.false_stage[a], 1u);
      EXPECT_EQ(st.true_stage[a], 0u);
    } else {
      EXPECT_EQ(st.true_stage[a], 0u);
      EXPECT_EQ(st.false_stage[a], 0u);
    }
  }
}

TEST(WfsTest, GameStages) {
  // Chain n1 -> n2 -> n3: win(n3) false at stage 1, win(n2) true at
  // stage 2 (V_P computes move facts and the first unfounded layer in one
  // round; stages follow Def. 2.4).
  Fixture f(
      "win(X) :- move(X, Y), not win(Y).\n"
      "move(n1, n2). move(n2, n3).\n");
  GroundProgram gp = MustGround(f.program);
  WfsStages st = ComputeWfsStages(gp);
  auto stage_false = [&](std::string_view a) {
    return st.false_stage[*gp.FindAtom(MustParseTerm(f.store, a))];
  };
  auto stage_true = [&](std::string_view a) {
    return st.true_stage[*gp.FindAtom(MustParseTerm(f.store, a))];
  };
  EXPECT_EQ(stage_false("win(n3)"), 1u);
  EXPECT_EQ(stage_true("win(n2)"), 2u);
  EXPECT_EQ(stage_false("win(n1)"), 3u);
}

TEST(WfsTest, PerfectModelAgreesOnStratifiedPrograms) {
  Rng rng(42);
  int stratified_seen = 0;
  for (int trial = 0; trial < 800 && stratified_seen < 40; ++trial) {
    std::string src = testing::RandomPropositionalProgram(rng, 6, 7, 3);
    Fixture f(src);
    Stratification strat = Stratify(f.program);
    if (!strat.stratified) continue;
    ++stratified_seen;
    GroundProgram gp = MustGround(f.program);
    WfsModel wfs = ComputeWfs(gp);
    Result<Interpretation> perfect = ComputePerfectModel(gp, strat);
    ASSERT_TRUE(perfect.ok());
    EXPECT_TRUE(wfs.model.IsTotal()) << "stratified WFS must be total:\n"
                                     << src;
    EXPECT_EQ(wfs.model, perfect.value()) << "program:\n" << src;
  }
  EXPECT_GE(stratified_seen, 10);
}

TEST(WfsTest, PerfectModelRejectsUnstratified) {
  Fixture f("p :- not p.");
  Stratification strat = Stratify(f.program);
  EXPECT_FALSE(strat.stratified);
  GroundProgram gp = MustGround(f.program);
  Result<Interpretation> r = ComputePerfectModel(gp, strat);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(WfsTest, TotalWellFoundedModelIsTwoValuedModel) {
  Fixture f(
      "win(X) :- move(X, Y), not win(Y).\n"
      "move(n1, n2). move(n2, n3).\n");
  GroundProgram gp = MustGround(f.program);
  WfsModel m = ComputeWfs(gp);
  ASSERT_TRUE(m.model.IsTotal());
  EXPECT_TRUE(IsTwoValuedModel(gp, m.model));
}

TEST(WfsTest, WellFoundedModelIsConsistent) {
  Rng rng(9);
  for (int trial = 0; trial < 40; ++trial) {
    std::string src = testing::RandomPropositionalProgram(rng, 10, 18, 4);
    Fixture f(src);
    GroundProgram gp = MustGround(f.program);
    WfsModel m = ComputeWfs(gp);
    EXPECT_TRUE(m.model.IsConsistent()) << src;
  }
}

TEST(WfsTest, LocallyStratifiedGroundProgramHasTotalModel) {
  Rng rng(1234);
  int seen = 0;
  for (int trial = 0; trial < 300 && seen < 30; ++trial) {
    std::string src = testing::RandomPropositionalProgram(rng, 6, 9, 2);
    Fixture f(src);
    GroundProgram gp = MustGround(f.program);
    if (!gp.IsLocallyStratified()) continue;
    ++seen;
    WfsModel m = ComputeWfs(gp);
    EXPECT_TRUE(m.model.IsTotal())
        << "locally stratified => total WFS:\n"
        << src;
  }
  EXPECT_GE(seen, 30);
}

}  // namespace
}  // namespace gsls
