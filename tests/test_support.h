#ifndef GSLS_TESTS_TEST_SUPPORT_H_
#define GSLS_TESTS_TEST_SUPPORT_H_

#include <string>
#include <string_view>

#include "ground/grounder.h"
#include "lang/parser.h"
#include "lang/program.h"
#include "term/term_store.h"
#include "util/rng.h"
#include "util/strings.h"

namespace gsls::testing {

/// A parsed program plus its owning store, for one-line test setup.
struct Fixture {
  TermStore store;
  Program program{&store};

  explicit Fixture(std::string_view src) {
    program = MustParseProgram(store, src);
  }
};

/// Grounds with defaults suitable for function-free test programs.
inline GroundProgram MustGround(const Program& program,
                                uint32_t term_depth = 1) {
  GroundingOptions opts;
  opts.universe.max_term_depth = term_depth;
  Result<GroundProgram> gp = GroundRelevant(program, opts);
  if (!gp.ok()) {
    fprintf(stderr, "grounding failed: %s\n", gp.status().ToString().c_str());
    abort();
  }
  return std::move(gp.value());
}

/// Generates a random function-free normal program over `num_preds`
/// propositional atoms p0..pN with `num_rules` rules of body length up to
/// `max_body`. Covers positive loops, negative loops, and mixed recursion;
/// used by the agreement property tests.
inline std::string RandomPropositionalProgram(Rng& rng, int num_preds,
                                              int num_rules, int max_body) {
  std::string src;
  for (int r = 0; r < num_rules; ++r) {
    int head = rng.UniformInt(0, num_preds - 1);
    int body_len = rng.UniformInt(0, max_body);
    src += StrCat("p", head);
    if (body_len > 0) {
      src += " :- ";
      for (int i = 0; i < body_len; ++i) {
        if (i > 0) src += ", ";
        if (rng.Chance(2, 5)) src += "not ";
        src += StrCat("p", rng.UniformInt(0, num_preds - 1));
      }
    }
    src += ".\n";
  }
  return src;
}

/// Generates a random win/move game program over `n` nodes with edge
/// probability `edge_pct`%: `win(X) :- move(X, Y), not win(Y).` plus random
/// move facts. The classic mixed-recursion workload for the well-founded
/// semantics.
inline std::string RandomGameProgram(Rng& rng, int n, int edge_pct) {
  std::string src = "win(X) :- move(X, Y), not win(Y).\n";
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j && rng.Chance(static_cast<uint64_t>(edge_pct), 100)) {
        src += StrCat("move(n", i, ", n", j, ").\n");
      }
    }
  }
  return src;
}

}  // namespace gsls::testing

#endif  // GSLS_TESTS_TEST_SUPPORT_H_
