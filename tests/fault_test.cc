// Exhaustive abort-at-every-checkpoint drill for the crash-consistent
// abort protocol (util/cancel.h, solver/incremental.h): a fixed scenario
// of solves, queries, and rule/fact deltas is first run unarmed to count
// its cancellation checkpoints N, then re-run N times with a deterministic
// fault injected at checkpoint k = 1..N. After every abort the solver must
// audit clean (check::AuditSolver — every component fully old or fully
// new), and after disarming + resuming, the recovered model and stages
// must be bit-identical to a from-scratch solve of the same program.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "check/audit.h"
#include "solver/incremental.h"
#include "term/term_store.h"
#include "test_support.h"
#include "util/cancel.h"
#include "wfs/wfs.h"

namespace gsls {
namespace {

using testing::Fixture;
using testing::MustGround;

// Multi-component scenario program: stratified chains, a positive loop
// with external support, a negative two-loop (undefined pair), and mixed
// recursion through negation — every per-SCC pipeline variant
// (non-recursive direct eval, lfp, alternating + unfounded floods).
constexpr char kScenarioProgram[] = R"(
  a0.
  a1 :- a0.
  a2 :- a1, not a3.
  a3 :- not a2.
  p :- q.  q :- p.  p :- a1.
  w1 :- not w2.  w2 :- not w1.
  g1 :- g2, not a2.  g2 :- g1.
  b0.  b1 :- b0, not w1.
  b2 :- b1, not g1.
  c1 :- a2, not p.
  c2 :- c1.  c2 :- b2.
)";

struct Scenario {
  Fixture f{kScenarioProgram};
  std::unique_ptr<IncrementalSolver> inc;
  CancelToken token;
  FaultInjector fault;

  explicit Scenario(unsigned threads) {
    SolverOptions opts;
    opts.num_threads = threads;
    opts.compute_levels = true;
    opts.cancel = &token;
    opts.fault = &fault;
    inc = std::make_unique<IncrementalSolver>(MustGround(f.program), opts);
  }

  const Term* T(std::string_view src) {
    return MustParseTerm(f.store, src);
  }

  // The fixed step sequence the exhaustive loop quantifies over. Solve
  // passes may abort mid-step once the fault trips; mutations always
  // apply (recondensation windows complete structurally — latch-only
  // checkpoints), so the *program* is identical at every k and only the
  // solved state varies.
  void Run() {
    inc->Model();                                  // full solve
    inc->Assert(T("a3x"));                         // new fact, new atom
    inc->Model();                                  // incremental up-cone
    inc->Retract(T("a0"));                         // big up-cone delta
    inc->QueryAtom(T("g1"));                       // goal-directed down-cone
    // Order-violating rule: a0's component gains a dependency on g2's
    // (ordered above it) — forces a recondensation window, and the cycle
    // a0 -> g2 -> g1 -> a2 -> a1 -> a0 merges components.
    const Term* pos[] = {T("g2")};
    RuleId rid = inc->AssertRule(T("a0"), pos, {});
    inc->Model();
    inc->RetractRule(rid);                         // split the merge back
    inc->Model();
    inc->QueryAtom(T("c2"));
  }
};

void ExpectAuditClean(const IncrementalSolver& inc, const char* when, int k) {
  check::AuditReport report = check::AuditSolver(inc);
  EXPECT_TRUE(report.ok())
      << when << " (trip at checkpoint " << k << "):\n" << report.ToString();
}

void ExpectRecoveredEqualsFresh(Scenario& s, int k) {
  const WfsModel& recovered = s.inc->Model();
  ASSERT_EQ(recovered.outcome, SolveOutcome::kCompleted)
      << "resume after trip " << k << " did not complete";
  WfsModel fresh = s.inc->SolveFresh();
  ASSERT_EQ(recovered.model, fresh.model)
      << "trip at checkpoint " << k << ":\n"
      << DescribeModelDifference(s.inc->program(), recovered.model,
                                 fresh.model);
  ASSERT_TRUE(recovered.has_levels);
  ASSERT_TRUE(fresh.has_levels);
  EXPECT_EQ(recovered.true_stage, fresh.true_stage)
      << "true stages diverge after trip " << k;
  EXPECT_EQ(recovered.false_stage, fresh.false_stage)
      << "false stages diverge after trip " << k;
}

uint64_t CountCheckpoints(unsigned threads) {
  Scenario s(threads);
  s.fault.Arm(0);  // count, never trip
  s.Run();
  EXPECT_FALSE(s.fault.tripped());
  return s.fault.checkpoints();
}

void ExhaustiveAbortRecovery(unsigned threads) {
  const uint64_t n = CountCheckpoints(threads);
  ASSERT_GT(n, 0u);
  for (uint64_t k = 1; k <= n; ++k) {
    Scenario s(threads);
    s.fault.Arm(k);
    s.Run();
    ASSERT_TRUE(s.fault.tripped())
        << "checkpoint " << k << " of " << n << " never fired";
    ExpectAuditClean(*s.inc, "post-abort audit", static_cast<int>(k));
    // Recovery: stop injecting, clear the latched token, resume. The
    // remaining stale components re-solve; everything already finalized
    // is served from the memo.
    s.fault.Disarm();
    s.token.Reset();
    ExpectRecoveredEqualsFresh(s, static_cast<int>(k));
    ExpectAuditClean(*s.inc, "post-recovery audit", static_cast<int>(k));
  }
}

TEST(FaultInjectionTest, ExhaustiveAbortRecoverySequential) {
  ExhaustiveAbortRecovery(1);
}

TEST(FaultInjectionTest, ExhaustiveAbortRecoveryTwoThreads) {
  ExhaustiveAbortRecovery(2);
}

TEST(FaultInjectionTest, ExhaustiveAbortRecoveryFourThreads) {
  ExhaustiveAbortRecovery(4);
}

// The checkpoint count of a *completed* scenario is schedule-independent:
// one boundary checkpoint per solved component plus fixed-stride inner
// ticks, none of which depend on worker interleaving. This is what makes
// one learned N exhaustive at every thread count.
TEST(FaultInjectionTest, CheckpointCountIsThreadCountInvariant) {
  const uint64_t n1 = CountCheckpoints(1);
  EXPECT_EQ(n1, CountCheckpoints(2));
  EXPECT_EQ(n1, CountCheckpoints(4));
}

// A trip with no caller-supplied token must still persist across pass
// boundaries (the solver borrows an owned token): the scenario's later
// passes abort instantly instead of silently re-running.
TEST(FaultInjectionTest, FaultPersistsWithoutCallerToken) {
  Fixture f(kScenarioProgram);
  SolverOptions opts;
  opts.compute_levels = true;
  FaultInjector fault;
  opts.fault = &fault;
  IncrementalSolver inc(MustGround(f.program), opts);
  fault.Arm(1);
  const WfsModel& aborted = inc.Model();
  ASSERT_TRUE(fault.tripped());
  EXPECT_EQ(aborted.outcome, SolveOutcome::kCancelled);
  // Still latched through the owned token: the next pass aborts too.
  fault.Disarm();
  EXPECT_EQ(inc.Model().outcome, SolveOutcome::kCancelled);
  // Clearing the injector alone cannot reset the owned token; detaching
  // the injector detaches the borrowed token with it, which resumes.
  inc.SetFaultInjector(nullptr);
  EXPECT_EQ(inc.Model().outcome, SolveOutcome::kCompleted);
  WfsModel fresh = inc.SolveFresh();
  EXPECT_EQ(inc.Model().model, fresh.model);
}

}  // namespace
}  // namespace gsls
