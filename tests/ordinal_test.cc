#include "core/ordinal.h"

#include <gtest/gtest.h>

namespace gsls {
namespace {

TEST(OrdinalTest, ZeroBasics) {
  Ordinal zero;
  EXPECT_TRUE(zero.IsZero());
  EXPECT_TRUE(zero.IsFinite());
  EXPECT_TRUE(zero.IsLimit());  // Def. 2.4 convention: 0 is a limit ordinal
  EXPECT_EQ(zero.FiniteValue(), 0u);
  EXPECT_EQ(zero.ToString(), "0");
}

TEST(OrdinalTest, FiniteArithmetic) {
  EXPECT_EQ(Ordinal::Finite(2) + Ordinal::Finite(3), Ordinal::Finite(5));
  EXPECT_EQ(Ordinal::Finite(7).FiniteValue(), 7u);
  EXPECT_TRUE(Ordinal::Finite(7).IsSuccessor());
  EXPECT_EQ(Ordinal::Finite(7).ToString(), "7");
}

TEST(OrdinalTest, OmegaAbsorbsFiniteLeftAddend) {
  EXPECT_EQ(Ordinal::Finite(5) + Ordinal::Omega(), Ordinal::Omega());
  EXPECT_EQ(Ordinal::Omega() + Ordinal::Finite(0), Ordinal::Omega());
}

TEST(OrdinalTest, OmegaPlusTwo) {
  Ordinal w2 = Ordinal::Omega() + Ordinal::Finite(2);
  EXPECT_EQ(w2.ToString(), "w+2");
  EXPECT_TRUE(w2.IsSuccessor());
  EXPECT_FALSE(w2.IsFinite());
  EXPECT_LT(Ordinal::Omega(), w2);
  EXPECT_LT(Ordinal::Finite(1000000), Ordinal::Omega());
}

TEST(OrdinalTest, OmegaTimesCoefficient) {
  Ordinal w_plus_w = Ordinal::Omega() + Ordinal::Omega();
  EXPECT_EQ(w_plus_w.ToString(), "w*2");
  EXPECT_EQ(w_plus_w, Ordinal::OmegaTerm(1, 2));
  EXPECT_LT(Ordinal::Omega() + Ordinal::Finite(99), w_plus_w);
}

TEST(OrdinalTest, HigherPowers) {
  Ordinal w2 = Ordinal::OmegaPower(2);
  EXPECT_EQ(w2.ToString(), "w^2");
  EXPECT_LT(Ordinal::OmegaTerm(1, 1000), w2);
  Ordinal mixed = w2 + Ordinal::Omega() + Ordinal::Finite(1);
  EXPECT_EQ(mixed.ToString(), "w^2+w+1");
  EXPECT_TRUE(mixed.IsSuccessor());
}

TEST(OrdinalTest, AdditionAssociative) {
  const Ordinal samples[] = {
      Ordinal(),
      Ordinal::Finite(1),
      Ordinal::Finite(7),
      Ordinal::Omega(),
      Ordinal::Omega() + Ordinal::Finite(3),
      Ordinal::OmegaTerm(1, 2),
      Ordinal::OmegaPower(2),
      Ordinal::OmegaPower(2) + Ordinal::OmegaTerm(1, 4) + Ordinal::Finite(9),
  };
  for (const Ordinal& a : samples) {
    for (const Ordinal& b : samples) {
      for (const Ordinal& c : samples) {
        EXPECT_EQ((a + b) + c, a + (b + c))
            << a.ToString() << " " << b.ToString() << " " << c.ToString();
      }
    }
  }
}

TEST(OrdinalTest, AdditionMonotoneInRightArgument) {
  const Ordinal samples[] = {
      Ordinal(), Ordinal::Finite(2), Ordinal::Omega(),
      Ordinal::Omega() + Ordinal::Finite(1), Ordinal::OmegaPower(2)};
  for (const Ordinal& a : samples) {
    for (const Ordinal& b : samples) {
      for (const Ordinal& c : samples) {
        if (b < c) {
          EXPECT_LT(a + b, a + c);
        }
      }
    }
  }
}

TEST(OrdinalTest, SuccessorIsStrictlyGreater) {
  const Ordinal samples[] = {Ordinal(), Ordinal::Finite(3), Ordinal::Omega(),
                             Ordinal::OmegaPower(2) + Ordinal::Finite(1)};
  for (const Ordinal& a : samples) {
    EXPECT_LT(a, a.Successor());
    EXPECT_TRUE(a.Successor().IsSuccessor());
  }
}

TEST(OrdinalTest, LubIsMax) {
  Ordinal a = Ordinal::Omega();
  Ordinal b = Ordinal::Finite(41);
  EXPECT_EQ(Ordinal::Lub(a, b), a);
  EXPECT_EQ(Ordinal::Lub(b, a), a);
  EXPECT_EQ(Ordinal::Lub(b, b), b);
}

TEST(OrdinalTest, LimitOfIncreasingFiniteFamilyIsOmega) {
  // The Figure 4 computation: levels 2n for all n; the least upper bound of
  // the family is w, u(0)'s tree fails at w+1, w(0) succeeds at w+2.
  Ordinal sup = Ordinal::LimitOfStrictlyIncreasing();
  EXPECT_EQ(sup, Ordinal::Omega());
  Ordinal u0_level = sup + Ordinal::Finite(1);
  Ordinal w0_level = u0_level + Ordinal::Finite(1);
  EXPECT_EQ(w0_level.ToString(), "w+2");
}

TEST(OrdinalTest, ComparisonTotalOrder) {
  std::vector<Ordinal> ordered = {
      Ordinal(),
      Ordinal::Finite(1),
      Ordinal::Finite(2),
      Ordinal::Omega(),
      Ordinal::Omega() + Ordinal::Finite(1),
      Ordinal::OmegaTerm(1, 2),
      Ordinal::OmegaTerm(1, 2) + Ordinal::Finite(5),
      Ordinal::OmegaPower(2),
      Ordinal::OmegaPower(2) + Ordinal::Omega(),
  };
  for (size_t i = 0; i < ordered.size(); ++i) {
    for (size_t j = 0; j < ordered.size(); ++j) {
      EXPECT_EQ(ordered[i] < ordered[j], i < j);
      EXPECT_EQ(ordered[i] == ordered[j], i == j);
    }
  }
}

}  // namespace
}  // namespace gsls
