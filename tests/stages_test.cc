// Stage/level reconstruction from the SCC schedule (solver/stages.h):
// agreement with the quadratic V_P iteration oracle (`ComputeWfsStages`,
// Def. 2.4) atom-for-atom, thread-count invariance, maintenance across
// incremental fact deltas, and the engine-facing contract that replaced
// the retired staged/incremental `TabledEngine` split.

#include "solver/stages.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.h"
#include "core/tabled.h"
#include "solver/incremental.h"
#include "solver/solver.h"
#include "test_support.h"
#include "util/strings.h"
#include "wfs/wfs.h"
#include "workload/generators.h"

namespace gsls {
namespace {

using testing::Fixture;
using testing::MustGround;

/// Asserts that a leveled solver model agrees with the V_P iteration on
/// `gp`: same partial model, same stage for every literal of the model,
/// and stage 0 for every literal outside it.
void ExpectLevelsMatchOracle(const GroundProgram& gp, const WfsModel& got,
                             const std::string& context) {
  ASSERT_TRUE(got.has_levels) << context;
  WfsStages oracle = ComputeWfsStages(gp);
  ASSERT_EQ(got.model, oracle.model)
      << context << "\nmodel diff:\n"
      << DescribeModelDifference(gp, got.model, oracle.model);
  ASSERT_EQ(got.true_stage.size(), gp.atom_count()) << context;
  ASSERT_EQ(got.false_stage.size(), gp.atom_count()) << context;
  for (AtomId a = 0; a < gp.atom_count(); ++a) {
    EXPECT_EQ(got.true_stage[a], oracle.true_stage[a])
        << context << "\ntrue stage of " << gp.store().ToString(gp.AtomTerm(a));
    EXPECT_EQ(got.false_stage[a], oracle.false_stage[a])
        << context << "\nfalse stage of "
        << gp.store().ToString(gp.AtomTerm(a));
  }
}

SolverOptions LeveledOptions(unsigned threads = 1) {
  SolverOptions opts;
  opts.num_threads = threads;
  opts.compute_levels = true;
  return opts;
}

/// A fresh `GroundProgram` holding exactly the enabled rules of an
/// incremental solver — the oracle's view of the program after deltas.
GroundProgram RebuildEnabled(const IncrementalSolver& inc, TermStore& store) {
  const GroundProgram& gp = inc.program();
  GroundProgram out(&store);
  for (AtomId a = 0; a < gp.atom_count(); ++a) out.InternAtom(gp.AtomTerm(a));
  for (RuleId r = 0; r < gp.rule_count(); ++r) {
    if (inc.RuleEnabled(r)) out.AddRule(gp.rules()[r]);
  }
  return out;
}

TEST(StagesTest, PaperExamplesAgreeWithVpIteration) {
  const std::string sources[] = {
      workload::VanGelderProgram(),
      workload::Example32Program(),
      workload::Example33Program(),
      workload::GameChain(24),
      workload::GameCycleWithTail(9, 8),
      workload::GameGrid(6, 6),
      // The Sec. 2.4 stage example of wfs_test, plus degenerate shapes.
      "win(X) :- move(X, Y), not win(Y). move(n1, n2). move(n2, n3).",
      "p :- not q. q :- not p. r :- p. r :- q.",
      "a :- b. b :- a. b :- not c.",
      "p.",
  };
  for (const std::string& src : sources) {
    Fixture f(src);
    GroundProgram gp = MustGround(f.program);
    WfsModel leveled = SolveWfs(gp, LeveledOptions());
    ExpectLevelsMatchOracle(gp, leveled, "program:\n" + src);
  }
}

TEST(StagesTest, KnownChainStages) {
  // Chain n1 -> n2 -> n3: the alternation of Def. 2.4 (win(n3) falls at 1,
  // win(n2) derives at 2, win(n1) falls at 3; move facts derive at 1).
  Fixture f(
      "win(X) :- move(X, Y), not win(Y).\n"
      "move(n1, n2). move(n2, n3).\n");
  GroundProgram gp = MustGround(f.program);
  WfsModel m = SolveWfs(gp, LeveledOptions());
  auto tstage = [&](std::string_view a) {
    return m.true_stage[*gp.FindAtom(MustParseTerm(f.store, a))];
  };
  auto fstage = [&](std::string_view a) {
    return m.false_stage[*gp.FindAtom(MustParseTerm(f.store, a))];
  };
  EXPECT_EQ(fstage("win(n3)"), 1u);
  EXPECT_EQ(tstage("move(n1, n2)"), 1u);
  EXPECT_EQ(tstage("win(n2)"), 2u);
  EXPECT_EQ(fstage("win(n1)"), 3u);
}

TEST(StagesTest, RandomizedLevelsAgreeWithVpIteration) {
  // The headline property: >= 300 random programs, every literal's stage
  // equal to the V_P iteration's, across both workload families.
  int programs_checked = 0;
  {
    Rng rng(0x57A6E5u);
    for (int trial = 0; trial < 160; ++trial) {
      std::string src = testing::RandomPropositionalProgram(
          rng, /*num_preds=*/8, /*num_rules=*/15, /*max_body=*/4);
      Fixture f(src);
      GroundProgram gp = MustGround(f.program);
      WfsModel leveled = SolveWfs(gp, LeveledOptions());
      ExpectLevelsMatchOracle(
          gp, leveled, StrCat("prop trial ", trial, "\n", src));
      ++programs_checked;
    }
  }
  {
    Rng rng(0x57A6E6u);
    for (int trial = 0; trial < 150; ++trial) {
      std::string src = workload::RandomGame(rng, 9, 25);
      Fixture f(src);
      GroundProgram gp = MustGround(f.program);
      WfsModel leveled = SolveWfs(gp, LeveledOptions());
      ExpectLevelsMatchOracle(
          gp, leveled, StrCat("game trial ", trial, "\n", src));
      ++programs_checked;
    }
  }
  EXPECT_GE(programs_checked, 300);
}

TEST(StagesTest, LevelsAreThreadCountInvariant) {
  // Workers reconstruct stages of disjoint components under the same DAG
  // release order that makes the model schedule-independent; the levels
  // must be bit-identical at any worker count.
  Rng rng(0x7C0DEu);
  std::vector<std::string> sources;
  sources.push_back(workload::VanGelderProgram());
  sources.push_back(workload::GameChain(48));
  for (int t = 0; t < 30; ++t) {
    sources.push_back(workload::GameForest(rng, 4, 8, 30));
  }
  for (int t = 0; t < 30; ++t) {
    sources.push_back(
        testing::RandomPropositionalProgram(rng, 10, 18, 4));
  }
  for (size_t i = 0; i < sources.size(); ++i) {
    Fixture f(sources[i]);
    GroundProgram gp = MustGround(f.program);
    WfsModel seq = SolveWfs(gp, LeveledOptions(1));
    ExpectLevelsMatchOracle(gp, seq,
                            StrCat("sequential, program ", i, "\n",
                                   sources[i]));
    for (unsigned threads : {2u, 4u}) {
      WfsModel par = SolveWfs(gp, LeveledOptions(threads));
      ASSERT_EQ(par.model, seq.model)
          << "threads=" << threads << " program " << i;
      EXPECT_EQ(par.true_stage, seq.true_stage)
          << "threads=" << threads << " program " << i << "\n" << sources[i];
      EXPECT_EQ(par.false_stage, seq.false_stage)
          << "threads=" << threads << " program " << i << "\n" << sources[i];
    }
  }
}

TEST(StagesTest, LevelsOffCostsNothingAndCarriesNothing) {
  Fixture f(workload::GameChain(16));
  GroundProgram gp = MustGround(f.program);
  WfsModel plain = SolveWfs(gp);
  EXPECT_FALSE(plain.has_levels);
  EXPECT_TRUE(plain.true_stage.empty());
  EXPECT_TRUE(plain.false_stage.empty());
}

TEST(StagesTest, IncrementalChurnMaintainsExactLevels) {
  // After every delta the maintained levels must equal both a fresh
  // leveled solve of the masked program and the V_P iteration over an
  // independently rebuilt enabled-rules program.
  int deltas_checked = 0;
  auto churn = [&](IncrementalSolver& inc, Fixture& f, Rng& rng,
                   const std::string& src, int trial) {
    inc.Model();
    for (int d = 0; d < 8; ++d) {
      AtomId a = static_cast<AtomId>(rng.UniformInt(
          0, static_cast<int>(inc.program().atom_count()) - 1));
      if (inc.HasFact(a)) {
        inc.RetractAtom(a);
      } else {
        inc.AssertAtom(a);
      }
      const WfsModel& maintained = inc.Model();
      std::string context = StrCat("trial ", trial, " delta ", d, "\n", src);
      WfsModel fresh = inc.SolveFresh();
      ASSERT_TRUE(fresh.has_levels) << context;
      ASSERT_EQ(maintained.model, fresh.model)
          << context << "\n"
          << DescribeModelDifference(inc.program(), maintained.model,
                                     fresh.model);
      EXPECT_EQ(maintained.true_stage, fresh.true_stage) << context;
      EXPECT_EQ(maintained.false_stage, fresh.false_stage) << context;
      GroundProgram rebuilt = RebuildEnabled(inc, f.store);
      ExpectLevelsMatchOracle(rebuilt, maintained, context);
      ++deltas_checked;
    }
  };
  {
    Rng rng(0x1E7E15u);
    for (int trial = 0; trial < 12; ++trial) {
      std::string src = testing::RandomPropositionalProgram(rng, 8, 14, 4);
      Fixture f(src);
      IncrementalSolver inc(MustGround(f.program), LeveledOptions());
      churn(inc, f, rng, src, trial);
    }
  }
  {
    Rng rng(0x1E7E16u);
    for (int trial = 0; trial < 10; ++trial) {
      std::string src = workload::RandomGame(rng, 8, 30);
      Fixture f(src);
      IncrementalSolver inc(MustGround(f.program), LeveledOptions());
      churn(inc, f, rng, src, trial);
    }
  }
  // Threaded churn: the parallel up-cone re-solve maintains the same
  // levels as the sequential heap.
  {
    Rng rng(0x1E7E17u);
    for (int trial = 0; trial < 6; ++trial) {
      std::string src = workload::GameForest(rng, 3, 7, 30);
      Fixture f(src);
      IncrementalSolver inc(MustGround(f.program), LeveledOptions(4));
      churn(inc, f, rng, src, trial + 100);
    }
  }
  EXPECT_GE(deltas_checked, 200);
}

TEST(StagesTest, AssertRetractStageShiftRecomputesDependents) {
  // Asserting an already-derived atom as a fact pulls its stage down to 1
  // without flipping any truth value; dependents' stages must follow (the
  // cone pruning compares stages, not just values).
  Fixture f(
      "win(X) :- move(X, Y), not win(Y).\n"
      "move(n1, n2). move(n2, n3). move(n3, n4).\n");
  IncrementalSolver inc(MustGround(f.program), LeveledOptions());
  const GroundProgram& gp = inc.program();
  AtomId win3 = *gp.FindAtom(MustParseTerm(f.store, "win(n3)"));
  AtomId win2 = *gp.FindAtom(MustParseTerm(f.store, "win(n2)"));
  AtomId win1 = *gp.FindAtom(MustParseTerm(f.store, "win(n1)"));
  {
    const WfsModel& m = inc.Model();
    EXPECT_EQ(m.true_stage[win3], 2u);   // not win(n4) settles at 1
    EXPECT_EQ(m.false_stage[win2], 3u);
    EXPECT_EQ(m.true_stage[win1], 4u);
  }
  // win(n3) as a fact: still true, but now at stage 1 — and the whole
  // alternation above it shifts down even though no value changes.
  ASSERT_TRUE(inc.AssertAtom(win3));
  {
    const WfsModel& m = inc.Model();
    EXPECT_EQ(m.model.Value(win3), TruthValue::kTrue);
    EXPECT_EQ(m.true_stage[win3], 1u);
    EXPECT_EQ(m.false_stage[win2], 2u);
    EXPECT_EQ(m.true_stage[win1], 3u);
  }
  // Retraction restores the original stages exactly.
  ASSERT_TRUE(inc.RetractAtom(win3));
  {
    const WfsModel& m = inc.Model();
    EXPECT_EQ(m.true_stage[win3], 2u);
    EXPECT_EQ(m.false_stage[win2], 3u);
    EXPECT_EQ(m.true_stage[win1], 4u);
  }
}

TEST(StagesTest, TabledEngineFactDeltasWorkWithStages) {
  // Regression for the retired staged/incremental split: an engine created
  // with compute_stages (the default) used to silently refuse fact deltas,
  // returning false. Now every engine takes them, returns the changed-bit
  // symmetrically, and keeps serving exact levels afterwards.
  Fixture f("win(X) :- move(X, Y), not win(Y). move(a, b). move(b, c).");
  Result<TabledEngine> engine = TabledEngine::Create(f.program);
  ASSERT_TRUE(engine.ok());
  const Term* win_a = MustParseTerm(f.store, "win(a)");
  const Term* win_b = MustParseTerm(f.store, "win(b)");
  const Term* move_bc = MustParseTerm(f.store, "move(b, c)");
  EXPECT_EQ(engine->ValueOf(win_a), TruthValue::kFalse);
  EXPECT_EQ(engine->LevelOf(win_a), Ordinal::Finite(3));

  // Retract: changed-bit true, then a no-op returns false (symmetry with
  // Assert below — neither direction is a silent no-op anymore).
  ASSERT_TRUE(engine->RetractFact(move_bc));
  EXPECT_FALSE(engine->RetractFact(move_bc));
  EXPECT_EQ(engine->ValueOf(win_a), TruthValue::kTrue);
  EXPECT_EQ(engine->ValueOf(win_b), TruthValue::kFalse);
  // Levels re-derived through the up-cone: win(b) strands at stage 1,
  // win(a) derives at 2.
  EXPECT_EQ(engine->LevelOf(win_b), Ordinal::Finite(1));
  EXPECT_EQ(engine->LevelOf(win_a), Ordinal::Finite(2));

  ASSERT_TRUE(engine->AssertFact(move_bc));
  EXPECT_FALSE(engine->AssertFact(move_bc));
  EXPECT_EQ(engine->ValueOf(win_a), TruthValue::kFalse);
  EXPECT_EQ(engine->LevelOf(win_a), Ordinal::Finite(3));

  // Answer levels stay exact on a staged engine after deltas.
  QueryResult r = engine->Solve(MustParseQuery(f.store, "win(X)"));
  EXPECT_EQ(r.status, GoalStatus::kSuccessful);
  EXPECT_TRUE(r.level_exact);
}

TEST(StagesTest, TabledEngineLevelsMatchOracleAfterChurn) {
  Rng rng(0x7AB5E5u);
  for (int trial = 0; trial < 8; ++trial) {
    std::string src = workload::RandomGame(rng, 7, 30);
    Fixture f(src);
    Result<TabledEngine> engine = TabledEngine::Create(f.program);
    ASSERT_TRUE(engine.ok());
    const GroundProgram& gp = engine->ground();
    // A couple of random fact flips through the public delta API...
    for (int d = 0; d < 4; ++d) {
      AtomId a = static_cast<AtomId>(rng.UniformInt(
          0, static_cast<int>(gp.atom_count()) - 1));
      const Term* atom = gp.AtomTerm(a);
      if (!engine->RetractFact(atom)) engine->AssertFact(atom);
    }
    // ...then every served level must equal the V_P oracle over the
    // enabled rules of the engine's solver.
    GroundProgram rebuilt = RebuildEnabled(engine->solver(), f.store);
    WfsStages oracle = ComputeWfsStages(rebuilt);
    for (AtomId a = 0; a < gp.atom_count(); ++a) {
      const Term* atom = gp.AtomTerm(a);
      std::optional<Ordinal> level = engine->LevelOf(atom);
      switch (engine->ValueOf(atom)) {
        case TruthValue::kTrue:
          ASSERT_TRUE(level.has_value()) << src;
          EXPECT_EQ(*level, Ordinal::Finite(oracle.true_stage[a]))
              << src << "\natom " << f.store.ToString(atom);
          break;
        case TruthValue::kFalse:
          ASSERT_TRUE(level.has_value()) << src;
          EXPECT_EQ(*level, Ordinal::Finite(oracle.false_stage[a]))
              << src << "\natom " << f.store.ToString(atom);
          break;
        case TruthValue::kUndefined:
          EXPECT_FALSE(level.has_value()) << src;
          break;
      }
    }
  }
}

TEST(StagesTest, EngineOracleLevelsComeFromReconstruction) {
  // The global SLS engine's exact levels are now fed by the solver's
  // reconstruction; they must still match the V_P oracle literal for
  // literal (the Cor. 4.6 correspondence bench gates this at scale).
  // Function-free programs only: that is the class on which the bottom-up
  // oracle engages and serves exact levels at all.
  Rng rng(0x0AC1Eu);
  for (const std::string src :
       {workload::GameChain(16), workload::RandomGame(rng, 6, 30),
        workload::GameCycleWithTail(5, 4)}) {
    Fixture f(src);
    GroundProgram gp = MustGround(f.program);
    WfsStages oracle = ComputeWfsStages(gp);
    GlobalSlsEngine engine(f.program);
    for (AtomId a = 0; a < gp.atom_count(); ++a) {
      const Term* atom = gp.AtomTerm(a);
      QueryResult r = engine.SolveAtom(atom);
      if (r.status == GoalStatus::kSuccessful && r.level_exact) {
        EXPECT_EQ(r.answers[0].level,
                  Ordinal::Finite(oracle.true_stage[a]))
            << src << "\natom " << f.store.ToString(atom);
      } else if (r.status == GoalStatus::kFailed && r.level_exact) {
        EXPECT_EQ(r.level, Ordinal::Finite(oracle.false_stage[a]))
            << src << "\natom " << f.store.ToString(atom);
      }
    }
  }
}

}  // namespace
}  // namespace gsls
