#include "stable/stable.h"

#include <gtest/gtest.h>

#include "test_support.h"
#include "wfs/wfs.h"

namespace gsls {
namespace {

using testing::Fixture;

std::vector<DenseBitset> MustEnumerate(const GroundProgram& gp) {
  Result<std::vector<DenseBitset>> r = EnumerateStableModels(gp);
  if (!r.ok()) {
    fprintf(stderr, "stable enumeration failed: %s\n",
            r.status().ToString().c_str());
    abort();
  }
  return std::move(r.value());
}

TEST(StableTest, DefiniteProgramHasLeastModelAsUniqueStable) {
  Fixture f("p :- q. q. r :- s.");
  GroundProgram gp = testing::MustGround(f.program);
  auto models = MustEnumerate(gp);
  ASSERT_EQ(models.size(), 1u);
  auto p = gp.FindAtom(MustParseTerm(f.store, "p"));
  auto q = gp.FindAtom(MustParseTerm(f.store, "q"));
  EXPECT_TRUE(models[0].Test(*p));
  EXPECT_TRUE(models[0].Test(*q));
}

TEST(StableTest, SelfNegationHasNoStableModel) {
  Fixture f("p :- not p.");
  GroundProgram gp = testing::MustGround(f.program);
  EXPECT_TRUE(MustEnumerate(gp).empty());
}

TEST(StableTest, NegativeCycleHasTwoStableModels) {
  Fixture f("p :- not q. q :- not p.");
  GroundProgram gp = testing::MustGround(f.program);
  auto models = MustEnumerate(gp);
  EXPECT_EQ(models.size(), 2u);
}

TEST(StableTest, Example32HasUniqueStableModelMatchingWfs) {
  Fixture f(
      "p :- q, not r.\n"
      "q :- r, not p.\n"
      "r :- p, not q.\n"
      "s :- not p, not q, not r.\n");
  GroundProgram gp = testing::MustGround(f.program);
  auto models = MustEnumerate(gp);
  ASSERT_EQ(models.size(), 1u);
  WfsModel wfs = ComputeWfs(gp);
  ASSERT_TRUE(wfs.model.IsTotal());
  for (AtomId a = 0; a < gp.atom_count(); ++a) {
    EXPECT_EQ(models[0].Test(a), wfs.model.IsTrue(a));
  }
}

TEST(StableTest, AtomCapRejectsLargePrograms) {
  std::string src;
  for (int i = 0; i < 30; ++i) src += StrCat("p", i, ".\n");
  Fixture f(src);
  GroundProgram gp = testing::MustGround(f.program);
  Result<std::vector<DenseBitset>> r = EnumerateStableModels(gp);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(StableTest, WellFoundedApproximatesEveryStableModel) {
  // VGRS: WFS-true atoms lie in every stable model; WFS-false atoms in
  // none. (The paper situates global SLS-resolution against the stable
  // semantics via this relationship.)
  Rng rng(0x57AB1Eu);
  int with_models = 0;
  for (int trial = 0; trial < 80; ++trial) {
    std::string src = testing::RandomPropositionalProgram(rng, 6, 10, 3);
    Fixture f(src);
    GroundProgram gp = testing::MustGround(f.program);
    if (gp.atom_count() > 20) continue;
    auto models = MustEnumerate(gp);
    if (!models.empty()) ++with_models;
    WfsModel wfs = ComputeWfs(gp);
    for (const DenseBitset& m : models) {
      for (AtomId a = 0; a < gp.atom_count(); ++a) {
        if (wfs.model.IsTrue(a)) {
          EXPECT_TRUE(m.Test(a)) << "WFS-true atom missing from a stable "
                                    "model in\n"
                                 << src;
        }
        if (wfs.model.IsFalse(a)) {
          EXPECT_FALSE(m.Test(a)) << "WFS-false atom inside a stable model "
                                     "in\n"
                                  << src;
        }
      }
    }
  }
  EXPECT_GT(with_models, 20);
}

TEST(StableTest, TotalWfsIsUniqueStableModel) {
  Rng rng(0x70701u);
  int total_seen = 0;
  for (int trial = 0; trial < 120 && total_seen < 25; ++trial) {
    std::string src = testing::RandomGameProgram(rng, 4, 35);
    Fixture f(src);
    GroundProgram gp = testing::MustGround(f.program);
    if (gp.atom_count() > 20) continue;
    WfsModel wfs = ComputeWfs(gp);
    if (!wfs.model.IsTotal()) continue;
    ++total_seen;
    auto models = MustEnumerate(gp);
    ASSERT_EQ(models.size(), 1u) << src;
    for (AtomId a = 0; a < gp.atom_count(); ++a) {
      EXPECT_EQ(models[0].Test(a), wfs.model.IsTrue(a)) << src;
    }
  }
  EXPECT_GE(total_seen, 10);
}

TEST(StableTest, StableModelsAreTwoValuedModels) {
  Rng rng(0xABCDEFu);
  for (int trial = 0; trial < 40; ++trial) {
    std::string src = testing::RandomPropositionalProgram(rng, 5, 8, 3);
    Fixture f(src);
    GroundProgram gp = testing::MustGround(f.program);
    if (gp.atom_count() > 18) continue;
    for (const DenseBitset& m : MustEnumerate(gp)) {
      Interpretation total(gp.atom_count());
      for (AtomId a = 0; a < gp.atom_count(); ++a) {
        if (m.Test(a)) {
          total.SetTrue(a);
        } else {
          total.SetFalse(a);
        }
      }
      EXPECT_TRUE(IsTwoValuedModel(gp, total)) << src;
    }
  }
}

}  // namespace
}  // namespace gsls
