// The MVCC serving layer (src/serve/): snapshot-isolated readers over a
// batching delta writer. Coverage — initial publish and point reads;
// deterministic batching (N queued deltas fold into ONE cone re-solve and
// ONE published epoch via start_paused); concurrent reader fleets whose
// every answer is replayed against a fresh solve of the answering epoch's
// exact program state (the epoch-tagged oracle); epoch-based reclamation
// under held pins; and the serving audit (snapshot/tape fidelity, pool
// unreachability, reclaim-horizon records, pin/ring integrity). Built for
// TSan: the reader/writer tests exercise the pin protocol edges directly.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "check/audit.h"
#include "serve/server.h"
#include "serve/session.h"
#include "serve/snapshot.h"
#include "solver/incremental.h"
#include "test_support.h"
#include "util/rng.h"
#include "util/strings.h"
#include "wfs/wfs.h"

namespace gsls {
namespace {

using testing::Fixture;
using testing::MustGround;

SolverOptions Leveled(unsigned threads = 1) {
  SolverOptions opts;
  opts.num_threads = threads;
  opts.compute_levels = true;
  return opts;
}

std::unique_ptr<IncrementalSolver> MakeSolver(const Program& program,
                                              SolverOptions sopts) {
  return std::make_unique<IncrementalSolver>(MustGround(program), sopts);
}

/// The mixed-recursion serving workload: a win/move game over `n` nodes
/// with a few seed edges; the delta stream toggles `move` facts.
std::string GameProgram(int n) {
  std::string src = "win(X) :- move(X, Y), not win(Y).\n";
  for (int i = 0; i + 1 < n; ++i) {
    src += StrCat("move(n", i, ", n", i + 1, ").\n");
  }
  return src;
}

/// A pre-generated randomized delta script. Half the ops toggle *seed*
/// chain edges (their grounded win-rule instances exist, so the model
/// genuinely churns — deltas never re-ground rules); the rest hit edges
/// outside the seed grounding, growing the atom universe and forcing
/// copy-on-intern index rebuilds.
std::vector<std::pair<const Term*, bool>> MakeDeltaScript(TermStore& store,
                                                          Rng& rng, int n,
                                                          int count) {
  std::vector<std::pair<const Term*, bool>> script;
  script.reserve(count);
  for (int k = 0; k < count; ++k) {
    int i;
    int j;
    if (rng.Chance(1, 2)) {
      i = rng.UniformInt(0, n - 2);
      j = i + 1;  // a seed edge: its win instance is grounded
    } else {
      i = rng.UniformInt(0, n - 1);
      j = rng.UniformInt(0, n - 1);
      if (j == i) j = (j + 1) % n;
    }
    const Term* t = MustParseTerm(
        store, StrCat("move(n", i, ", n", j, ")"));
    script.emplace_back(t, rng.Chance(3, 5));  // 60% asserts
  }
  return script;
}

TEST(ServingTest, InitialEpochServesTheModel) {
  Fixture f("p :- not q.\nq :- r.\n");
  serve::ServingSolver server(MakeSolver(f.program, Leveled()));
  EXPECT_EQ(server.epochs().current_epoch(), 1u);
  EXPECT_EQ(server.published_seq(), 0u);

  serve::EpochStore::ReaderHandle h = server.RegisterReader();
  ASSERT_TRUE(h.valid());
  uint64_t epoch = 0;
  serve::SnapshotAnswer p =
      server.Read(h, MustParseTerm(f.store, "p"), &epoch);
  EXPECT_EQ(p.value, TruthValue::kTrue);
  EXPECT_TRUE(p.registered);
  EXPECT_EQ(epoch, 1u);
  serve::SnapshotAnswer q =
      server.Read(h, MustParseTerm(f.store, "q"));
  EXPECT_EQ(q.value, TruthValue::kFalse);
  // Unregistered atoms: false (failed) at stage 1, the shared convention.
  serve::SnapshotAnswer missing =
      server.Read(h, MustParseTerm(f.store, "nowhere"));
  EXPECT_EQ(missing.value, TruthValue::kFalse);
  EXPECT_EQ(missing.false_stage, 1u);
  EXPECT_FALSE(missing.registered);
}

TEST(ServingTest, PausedWriterFoldsQueuedDeltasIntoOneBatch) {
  Fixture f(GameProgram(40));
  serve::ServeOptions opts;
  opts.start_paused = true;
  serve::ServingSolver server(MakeSolver(f.program, Leveled()), opts);

  constexpr int kDeltas = 32;
  Rng rng(7);
  std::vector<std::pair<const Term*, bool>> script =
      MakeDeltaScript(f.store, rng, 40, kDeltas);
  for (const auto& [term, is_assert] : script) {
    const uint64_t seq =
        is_assert ? server.Assert(term) : server.Retract(term);
    EXPECT_GT(seq, 0u);
  }
  // Paused: everything queues, nothing applies, nothing publishes.
  EXPECT_EQ(server.queue_depth(), static_cast<size_t>(kDeltas));
  EXPECT_EQ(server.published_seq(), 0u);
  EXPECT_EQ(server.epochs().current_epoch(), 1u);

  server.Resume();
  server.Flush();

  // The batching contract: N deltas, ONE writer batch (one Model() cone
  // re-solve), ONE new epoch.
  serve::ServingSolver::Stats stats = server.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.deltas_applied, static_cast<uint64_t>(kDeltas));
  EXPECT_EQ(stats.max_batch, static_cast<uint64_t>(kDeltas));
  EXPECT_EQ(stats.epochs_published, 2u);  // initial + the batch
  EXPECT_EQ(server.epochs().current_epoch(), 2u);
  EXPECT_EQ(server.published_seq(), static_cast<uint64_t>(kDeltas));

  check::AuditReport report = check::AuditServing(server);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GT(report.serving_atoms_checked, 0u);
}

/// One recorded concurrent read: which term, which epoch's seq answered,
/// and what the snapshot said.
struct ReadRecord {
  const Term* term = nullptr;
  uint64_t seq = 0;
  serve::SnapshotAnswer answer;
};

/// The oracle half of the snapshot-isolation contract: rebuild the
/// program state at every observed seq (base program + script prefix) on
/// an independent solver, fresh-solve it, and demand every concurrent
/// answer bit-identical — values AND Def. 2.4 stages.
void ReplayAgainstFreshSolves(
    const Program& program,
    const std::vector<std::pair<const Term*, bool>>& script,
    std::vector<ReadRecord> records) {
  std::map<uint64_t, std::vector<ReadRecord>> by_seq;
  for (ReadRecord& r : records) by_seq[r.seq].push_back(std::move(r));

  IncrementalSolver oracle(MustGround(program), Leveled());
  uint64_t applied = 0;
  for (const auto& [seq, reads] : by_seq) {
    ASSERT_LE(seq, script.size());
    while (applied < seq) {
      const auto& [term, is_assert] = script[applied];
      if (is_assert) {
        oracle.Assert(term);
      } else {
        oracle.Retract(term);
      }
      ++applied;
    }
    const WfsModel fresh = oracle.SolveFresh();
    for (const ReadRecord& r : reads) {
      std::optional<AtomId> id = oracle.program().FindAtom(r.term);
      if (!id.has_value()) {
        EXPECT_EQ(r.answer.value, TruthValue::kFalse)
            << "unregistered atom read true at seq " << seq;
        EXPECT_EQ(r.answer.false_stage, 1u);
        continue;
      }
      ASSERT_EQ(r.answer.value, fresh.model.Value(*id))
          << "seq " << seq << ": concurrent answer diverged from the "
          << "fresh solve of that epoch's program state";
      if (r.answer.value == TruthValue::kTrue) {
        EXPECT_EQ(r.answer.true_stage, fresh.true_stage[*id])
            << "seq " << seq;
      } else if (r.answer.value == TruthValue::kFalse &&
                 r.answer.registered) {
        EXPECT_EQ(r.answer.false_stage, fresh.false_stage[*id])
            << "seq " << seq;
      }
    }
  }
}

void RunConcurrentReaders(int num_readers) {
  constexpr int kNodes = 24;
  constexpr int kDeltas = 120;
  Fixture f(GameProgram(kNodes));
  Rng rng(0xC0FFEE + num_readers);
  std::vector<std::pair<const Term*, bool>> script =
      MakeDeltaScript(f.store, rng, kNodes, kDeltas);
  // Readers probe win/move atoms over the whole universe — including
  // atoms only the delta stream (or nothing at all) interns. All terms
  // are interned up front: the TermStore is not written during the run.
  std::vector<const Term*> probes;
  for (int i = 0; i < kNodes; ++i) {
    probes.push_back(
        MustParseTerm(f.store, StrCat("win(n", i, ")")));
    probes.push_back(MustParseTerm(
        f.store, StrCat("move(n", i, ", n", (i + 3) % kNodes, ")")));
  }

  serve::ServingSolver server(MakeSolver(f.program, Leveled()));
  std::atomic<bool> stop{false};
  std::vector<std::vector<ReadRecord>> per_reader(num_readers);
  std::vector<std::thread> readers;
  readers.reserve(num_readers);
  for (int r = 0; r < num_readers; ++r) {
    readers.emplace_back([&, r] {
      serve::EpochStore::ReaderHandle h = server.RegisterReader();
      ASSERT_TRUE(h.valid());
      Rng reader_rng(1000 + r);
      // do-while: the write stream can finish before a late-scheduled
      // reader's first iteration; every reader still records >= 1 read.
      do {
        ReadRecord rec;
        rec.term = probes[reader_rng.Uniform(probes.size())];
        rec.answer = server.Read(h, rec.term, nullptr, &rec.seq);
        per_reader[r].push_back(rec);
      } while (!stop.load(std::memory_order_relaxed));
    });
  }

  // Writer stream: every delta submitted while readers hammer snapshots.
  for (const auto& [term, is_assert] : script) {
    if (is_assert) {
      server.Assert(term);
    } else {
      server.Retract(term);
    }
  }
  server.Flush();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  check::AuditReport report = check::AuditServing(server);
  EXPECT_TRUE(report.ok()) << report.ToString();

  std::vector<ReadRecord> all;
  for (std::vector<ReadRecord>& v : per_reader) {
    EXPECT_FALSE(v.empty());
    all.insert(all.end(), v.begin(), v.end());
  }
  ReplayAgainstFreshSolves(f.program, script, std::move(all));
}

TEST(ServingTest, OneReaderMatchesEpochOracle) { RunConcurrentReaders(1); }
TEST(ServingTest, TwoReadersMatchEpochOracle) { RunConcurrentReaders(2); }
TEST(ServingTest, FourReadersMatchEpochOracle) { RunConcurrentReaders(4); }

TEST(ServingTest, HeldPinBlocksReclamationUntilReleased) {
  Fixture f(GameProgram(16));
  serve::ServingSolver server(MakeSolver(f.program, Leveled()));
  serve::EpochStore::ReaderHandle h = server.RegisterReader();
  ASSERT_TRUE(h.valid());

  // Pin epoch 1 and hold it across many publishes.
  serve::EpochStore::Pinned pinned = server.epochs().Pin(h);
  EXPECT_EQ(pinned.epoch, 1u);
  const TruthValue pinned_w0 =
      pinned.snapshot->Query(MustParseTerm(f.store, "win(n0)"))
          .value;

  Rng rng(42);
  std::vector<std::pair<const Term*, bool>> script =
      MakeDeltaScript(f.store, rng, 16, 60);
  for (const auto& [term, is_assert] : script) {
    if (is_assert) {
      server.Assert(term);
    } else {
      server.Retract(term);
    }
    server.Flush();  // one epoch per delta: maximal retirement pressure
  }

  // The pin is the reclaim horizon: nothing may be freed at or above it.
  EXPECT_EQ(server.stats().reclaimed_snapshots, 0u);
  EXPECT_GT(server.epochs().retired_count(), 0u);
  EXPECT_EQ(server.epochs().MinPinned(), 1u);
  // The pinned snapshot is still fully readable — same bytes as at pin
  // time, regardless of everything published since.
  EXPECT_EQ(
      pinned.snapshot->Query(MustParseTerm(f.store, "win(n0)"))
          .value,
      pinned_w0);

  server.epochs().Unpin(h);
  // More publishes move the horizon past the retired backlog.
  server.Assert(MustParseTerm(f.store, "move(n0, n5)"));
  server.Flush();
  server.Retract(MustParseTerm(f.store, "move(n0, n5)"));
  server.Flush();
  EXPECT_GT(server.stats().reclaimed_snapshots, 0u);

  check::AuditReport report = check::AuditServing(server);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GT(report.serving_reclaims_checked, 0u);
}

TEST(ServingTest, RecycledPagesFeedLaterBuilds) {
  Fixture f(GameProgram(12));
  serve::ServingSolver server(MakeSolver(f.program, Leveled()));
  // No pins at all: every superseded epoch reclaims on the next publish
  // and its exclusively-owned pages re-enter the builder pool. Every
  // delta is a real change (assert-then-retract of the same fact), so
  // every publish re-materializes the touched page and the superseded
  // epoch's copy becomes exclusively owned.
  for (int k = 0; k < 20; ++k) {
    const Term* t = MustParseTerm(
        f.store, StrCat("move(n0, n", 2 + ((k / 2) % 9), ")"));
    if (k % 2 == 0) {
      server.Assert(t);
    } else {
      server.Retract(t);
    }
    server.Flush();
  }
  serve::ServingSolver::Stats stats = server.stats();
  EXPECT_GT(stats.reclaimed_snapshots, 0u);
  EXPECT_GT(stats.recycled_pages, 0u);
  EXPECT_GT(server.builder().stats().pool_hits, 0u);

  check::AuditReport report = check::AuditServing(server);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GT(report.serving_pool_pages_checked +
                server.builder().stats().pool_hits,
            0u);
}

TEST(ServingTest, CowSharesCleanPagesAcrossEpochs) {
  // A program large enough for several pages; point deltas must clone
  // only the touched pages and share the rest.
  std::string src = "win(X) :- move(X, Y), not win(Y).\n";
  for (int i = 0; i + 1 < 2100; ++i) {
    src += StrCat("move(n", i, ", n", i + 1, ").\n");
  }
  Fixture f(src);
  serve::ServingSolver server(MakeSolver(f.program, Leveled()));
  const uint64_t shared_before = server.builder().stats().pages_shared;

  server.Retract(MustParseTerm(f.store, "move(n0, n1)"));
  server.Flush();
  EXPECT_GT(server.builder().stats().pages_shared, shared_before)
      << "a point delta must share every untouched page with the "
         "previous epoch";

  check::AuditReport report = check::AuditServing(server);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(ServingTest, SessionServingModeRoundTrip) {
  Fixture f(GameProgram(10));
  SessionOptions opts;
  opts.serving = true;
  Result<Session> session = Session::Open(f.program, std::move(opts));
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  Session s = std::move(session.value());
  ASSERT_TRUE(s.serving());

  SessionAnswer before =
      s.Query(MustParseTerm(f.store, "win(n9)"));
  EXPECT_EQ(before.status, GoalStatus::kFailed);  // sink node loses
  EXPECT_EQ(before.epoch, 1u);

  EXPECT_TRUE(s.Assert(MustParseTerm(f.store, "move(n9, n0)")));
  s.Flush();
  SessionAnswer after = s.Query(MustParseTerm(f.store, "win(n9)"));
  EXPECT_GE(after.epoch, 2u);
  EXPECT_EQ(after.seq, 1u);
  EXPECT_NE(after.status, GoalStatus::kUnknown);

  std::shared_ptr<const serve::Snapshot> snap = s.SnapshotNow();
  ASSERT_NE(snap, nullptr);
  EXPECT_GE(snap->epoch(), 2u);
  EXPECT_EQ(
      snap->Query(MustParseTerm(f.store, "win(n9)")).value,
      after.value);

  check::AuditReport report = check::AuditServing(*s.server());
  EXPECT_TRUE(report.ok()) << report.ToString();
}

}  // namespace
}  // namespace gsls
