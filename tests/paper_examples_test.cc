// Consolidated checks for every worked example in the paper, plus
// edge-case behaviour of the status calculus that the examples exercise.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/tabled.h"
#include "sldnf/sldnf.h"
#include "stable/stable.h"
#include "test_support.h"
#include "workload/generators.h"

namespace gsls {
namespace {

using testing::Fixture;

// ---------------------------------------------------------------------------
// Example 3.1 (Van Gelder).
// ---------------------------------------------------------------------------

TEST(PaperExamples, Ex31WellFoundedModelIsTotalOnBoundedGrounding) {
  // "this program does have a well-founded total model, in which w(0) is
  // true, even though it is not locally stratified."  On a depth-bounded
  // grounding the model is total with every w true, every u false.
  Fixture f(workload::VanGelderProgram());
  GroundProgram gp = testing::MustGround(f.program, /*term_depth=*/8);
  WfsModel m = ComputeWfs(gp);
  EXPECT_TRUE(m.model.IsTotal());
  FunctorId w = f.store.symbols().FindFunctor("w", 1);
  FunctorId u = f.store.symbols().FindFunctor("u", 1);
  for (AtomId a = 0; a < gp.atom_count(); ++a) {
    const Term* atom = gp.AtomTerm(a);
    if (atom->functor() == w) {
      EXPECT_TRUE(m.model.IsTrue(a)) << f.store.ToString(atom);
    } else if (atom->functor() == u) {
      EXPECT_FALSE(m.model.IsTrue(a)) << f.store.ToString(atom);
    }
  }
}

TEST(PaperExamples, Ex31EngineDeterminesEveryFiniteGoal) {
  Fixture f(workload::VanGelderProgram());
  EngineOptions opts;
  opts.max_negation_depth = 40;
  GlobalSlsEngine engine(f.program, opts);
  for (int i = 1; i <= 8; ++i) {
    std::string wi = "w(" + workload::IntTerm(i) + ")";
    QueryResult r = engine.SolveAtom(MustParseTerm(f.store, wi));
    ASSERT_EQ(r.status, GoalStatus::kSuccessful) << wi;
    EXPECT_EQ(r.answers[0].level, Ordinal::Finite(2 * i)) << wi;
    EXPECT_TRUE(r.answers[0].level_exact) << wi;
  }
}

TEST(PaperExamples, Ex31W0NeedsTransfiniteExploration) {
  Fixture f(workload::VanGelderProgram());
  EngineOptions opts;
  opts.max_negation_depth = 20;
  opts.max_slp_depth = 40;
  GlobalSlsEngine engine(f.program, opts);
  // w(0) is true in the WF model but its global tree has level w+2: no
  // finite budget determines it.
  EXPECT_EQ(engine.StatusOf(MustParseTerm(f.store, "w(0)")),
            GoalStatus::kUnknown);
}

// ---------------------------------------------------------------------------
// Example 3.2.
// ---------------------------------------------------------------------------

TEST(PaperExamples, Ex32AllThreeEnginesOnWellFoundedModel) {
  Fixture f(workload::Example32Program());
  GlobalSlsEngine sls(f.program);
  Result<TabledEngine> tabled = TabledEngine::Create(f.program);
  ASSERT_TRUE(tabled.ok());
  struct Expect {
    const char* atom;
    GoalStatus status;
  } expects[] = {{"s", GoalStatus::kSuccessful},
                 {"p", GoalStatus::kFailed},
                 {"q", GoalStatus::kFailed},
                 {"r", GoalStatus::kFailed}};
  for (const auto& e : expects) {
    const Term* atom = MustParseTerm(f.store, e.atom);
    EXPECT_EQ(sls.StatusOf(atom), e.status) << e.atom;
    EXPECT_EQ(tabled->StatusOf(atom), e.status) << e.atom;
  }
  // SLDNF diverges on s (the positive loop is an infinite branch).
  SldnfOptions sopts;
  sopts.max_depth = 128;
  SldnfEngine sldnf(f.program, sopts);
  EXPECT_EQ(sldnf.SolveAtom(MustParseTerm(f.store, "s")).status,
            GoalStatus::kUnknown);
}

TEST(PaperExamples, Ex32IsTheUniqueStableModel) {
  Fixture f(workload::Example32Program());
  GroundProgram gp = testing::MustGround(f.program);
  Result<std::vector<DenseBitset>> models = EnumerateStableModels(gp);
  ASSERT_TRUE(models.ok());
  ASSERT_EQ(models->size(), 1u);
  auto s = gp.FindAtom(MustParseTerm(f.store, "s"));
  EXPECT_TRUE(models->front().Test(*s));
  EXPECT_EQ(models->front().Count(), 1u);
}

// ---------------------------------------------------------------------------
// Example 3.3.
// ---------------------------------------------------------------------------

TEST(PaperExamples, Ex33WellFoundedFactsAndRegress) {
  Fixture f(workload::Example33Program());
  GlobalSlsEngine engine(f.program);
  EXPECT_EQ(engine.StatusOf(MustParseTerm(f.store, "s")),
            GoalStatus::kSuccessful);
  EXPECT_EQ(engine.StatusOf(MustParseTerm(f.store, "q")),
            GoalStatus::kFailed);
  // The p(f^k(a)) family recurses through negation forever: each atom is
  // distinct, so only budgets can stop the descent.
  EngineOptions opts;
  opts.max_negation_depth = 12;
  GlobalSlsEngine bounded(f.program, opts);
  EXPECT_EQ(bounded.StatusOf(MustParseTerm(f.store, "p(a)")),
            GoalStatus::kUnknown);
}

TEST(PaperExamples, Ex33SequentialOrderDependence) {
  // Reversing the literal order rescues the sequential rule — showing the
  // incompleteness is about the rule, not the program.
  TermStore store;
  Program reversed = MustParseProgram(store,
                                      "q :- not s, not p(a).\n"
                                      "s.\n"
                                      "p(X) :- not p(f(X)).\n");
  EngineOptions opts;
  opts.negatively_parallel = false;
  opts.max_negation_depth = 12;
  GlobalSlsEngine engine(reversed, opts);
  EXPECT_EQ(engine.StatusOf(MustParseTerm(store, "q")), GoalStatus::kFailed);
}

// ---------------------------------------------------------------------------
// Section 6 remarks.
// ---------------------------------------------------------------------------

TEST(PaperExamples, Sec6FlounderingGoalWithSucceedingInstances) {
  // "programs of the form p(X) <- not q(f(X)); q(a): the goal <- p(X)
  // flounders, while every ground instance of this goal succeeds."
  Fixture f("p(X) :- not q(f(X)). q(a).");
  GlobalSlsEngine engine(f.program);
  EXPECT_EQ(engine.Solve(MustParseQuery(f.store, "p(X)")).status,
            GoalStatus::kFloundered);
  for (const char* t : {"p(a)", "p(b)", "p(f(a))"}) {
    EXPECT_EQ(engine.StatusOf(MustParseTerm(f.store, t)),
              GoalStatus::kSuccessful)
        << t;
  }
}

TEST(PaperExamples, Sec6AllowedProgramsDoNotFlounder) {
  Fixture f("p(X) :- r(X), not q(X). r(a). r(b). q(a).");
  EXPECT_TRUE(f.program.IsRangeRestricted());
  GlobalSlsEngine engine(f.program);
  QueryResult r = engine.Solve(MustParseQuery(f.store, "p(X)"));
  EXPECT_EQ(r.status, GoalStatus::kSuccessful);
  EXPECT_FALSE(r.floundered_somewhere);
}

// ---------------------------------------------------------------------------
// Status-calculus edge cases from Def. 3.3.
// ---------------------------------------------------------------------------

TEST(StatusCalculus, GoalBothSuccessfulAndFloundered) {
  // "A tree node may be both successful and floundered."
  Fixture f(
      "p(a).\n"
      "p(X) :- not q(f(X)), r(X, Y), not s(Y).\n"
      "r(a, a).\n"
      "t :- p(a).\n");
  GlobalSlsEngine engine(f.program);
  QueryResult r = engine.Solve(MustParseQuery(f.store, "p(X)"));
  EXPECT_EQ(r.status, GoalStatus::kSuccessful);
}

TEST(StatusCalculus, NegationNodeFailsDespiteFlounderedSibling) {
  // J is failed as soon as SOME child succeeds, even with a nonground
  // (floundered) sibling in the same leaf.
  Fixture f("p(X) :- not ok, not q(X). ok.");
  GlobalSlsEngine engine(f.program);
  QueryResult r = engine.Solve(MustParseQuery(f.store, "p(X)"));
  // The leaf {not ok, not q(X)} has a successful child (ok), so the leaf
  // fails; with no other leaves, p(X) is failed rather than floundered.
  EXPECT_EQ(r.status, GoalStatus::kFailed);
}

TEST(StatusCalculus, FlounderingOnlyWhenNothingDecides) {
  Fixture f("p(X) :- not q(X). q(a).");
  GlobalSlsEngine engine(f.program);
  EXPECT_EQ(engine.Solve(MustParseQuery(f.store, "p(X)")).status,
            GoalStatus::kFloundered);
}

TEST(StatusCalculus, IndeterminateDominatedBySuccess) {
  // A goal with one undefined instance and one true instance succeeds.
  Fixture f("a :- not b. b :- not a. c. p :- a. p :- c.");
  GlobalSlsEngine engine(f.program);
  EXPECT_EQ(engine.StatusOf(MustParseTerm(f.store, "p")),
            GoalStatus::kSuccessful);
}

TEST(StatusCalculus, UndefinedPropagatesThroughPositiveBodies) {
  Fixture f("a :- not b. b :- not a. p :- a, c. c.");
  GlobalSlsEngine engine(f.program);
  Result<TabledEngine> tabled = TabledEngine::Create(f.program);
  ASSERT_TRUE(tabled.ok());
  EXPECT_EQ(engine.StatusOf(MustParseTerm(f.store, "p")),
            GoalStatus::kIndeterminate);
  EXPECT_EQ(tabled->StatusOf(MustParseTerm(f.store, "p")),
            GoalStatus::kIndeterminate);
}

TEST(StatusCalculus, DoubleNegationPreservesValue) {
  Fixture f(
      "a.\n"
      "not_a :- not a.\n"
      "nn_a :- not not_a.\n"
      "u :- not u.\n"
      "not_u :- not u.\n"
      "nn_u :- not not_u.\n");
  Result<TabledEngine> t = TabledEngine::Create(f.program);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->StatusOf(MustParseTerm(f.store, "nn_a")),
            GoalStatus::kSuccessful);
  // Double negation of an undefined atom stays undefined.
  EXPECT_EQ(t->StatusOf(MustParseTerm(f.store, "nn_u")),
            GoalStatus::kIndeterminate);
}

}  // namespace
}  // namespace gsls
