#include "sldnf/sldnf.h"

#include <gtest/gtest.h>

#include "core/tabled.h"
#include "test_support.h"

namespace gsls {
namespace {

using testing::Fixture;

TEST(SldnfTest, DefiniteProgramAnswers) {
  Fixture f(
      "e(a, b). e(b, c).\n"
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- e(X, Z), t(Z, Y).\n");
  SldnfEngine engine(f.program);
  QueryResult r = engine.Solve(MustParseQuery(f.store, "t(a, X)"));
  ASSERT_EQ(r.status, GoalStatus::kSuccessful);
  EXPECT_EQ(r.answers.size(), 2u);
}

TEST(SldnfTest, NegationAsFailure) {
  Fixture f("p :- not q. r(a). r(b). s(X) :- r(X), not t(X). t(a).");
  SldnfEngine engine(f.program);
  EXPECT_EQ(engine.Solve(MustParseQuery(f.store, "p")).status,
            GoalStatus::kSuccessful);
  QueryResult r = engine.Solve(MustParseQuery(f.store, "s(X)"));
  ASSERT_EQ(r.status, GoalStatus::kSuccessful);
  EXPECT_EQ(r.answers.size(), 1u);
}

TEST(SldnfTest, SafeRuleDelaysNonGroundNegation) {
  // not t(X) must wait until r(X) grounds X; with the safe rule the query
  // succeeds rather than floundering.
  Fixture f("r(a). s(X) :- not t(X), r(X). t(b).");
  SldnfEngine engine(f.program);
  QueryResult r = engine.Solve(MustParseQuery(f.store, "s(X)"));
  EXPECT_EQ(r.status, GoalStatus::kSuccessful);
}

TEST(SldnfTest, FloundersWhenNoGroundingPossible) {
  Fixture f("s(X) :- not t(X). t(a).");
  SldnfEngine engine(f.program);
  QueryResult r = engine.Solve(MustParseQuery(f.store, "s(X)"));
  EXPECT_EQ(r.status, GoalStatus::kFloundered);
}

TEST(SldnfTest, DivergesOnPositiveLoopWhereGlobalSlsFails) {
  // Section 7: SLDNF does not treat infinite branches as failed.
  Fixture f("p :- p.");
  SldnfOptions opts;
  opts.max_depth = 64;
  SldnfEngine sldnf(f.program, opts);
  QueryResult r = sldnf.Solve(MustParseQuery(f.store, "p"));
  EXPECT_EQ(r.status, GoalStatus::kUnknown);  // diverges (budget trips)

  GlobalSlsEngine sls(f.program);
  EXPECT_EQ(sls.StatusOf(MustParseTerm(f.store, "p")), GoalStatus::kFailed);
}

TEST(SldnfTest, DivergesOnLeftRecursionWhereTablingTerminates) {
  Fixture f(
      "t(X, Y) :- t(X, Z), e(Z, Y).\n"
      "t(X, Y) :- e(X, Y).\n"
      "e(a, b).\n");
  SldnfOptions opts;
  opts.max_depth = 64;
  SldnfEngine sldnf(f.program, opts);
  // t(b, a) has no derivation, but the left-recursive clause spins an
  // infinite branch, so SLDNF can never conclude finite failure.
  QueryResult r = sldnf.Solve(MustParseQuery(f.store, "t(b, a)"));
  EXPECT_EQ(r.status, GoalStatus::kUnknown);

  Result<TabledEngine> tabled = TabledEngine::Create(f.program);
  ASSERT_TRUE(tabled.ok());
  EXPECT_EQ(tabled->StatusOf(MustParseTerm(f.store, "t(b, a)")),
            GoalStatus::kFailed);
  EXPECT_EQ(tabled->StatusOf(MustParseTerm(f.store, "t(a, b)")),
            GoalStatus::kSuccessful);
}

TEST(SldnfTest, DivergesOnRecursionThroughNegation) {
  // SLDNF has no undefined value: the negative loop simply does not
  // terminate, while global SLS reports indeterminate.
  Fixture f("p :- not q. q :- not p.");
  SldnfOptions opts;
  opts.max_depth = 64;
  SldnfEngine sldnf(f.program, opts);
  EXPECT_EQ(sldnf.Solve(MustParseQuery(f.store, "p")).status,
            GoalStatus::kUnknown);
  GlobalSlsEngine sls(f.program);
  EXPECT_EQ(sls.StatusOf(MustParseTerm(f.store, "p")),
            GoalStatus::kIndeterminate);
}

TEST(SldnfTest, SoundWithRespectToWfsWhenDetermined) {
  // Sec. 7: SLDNF with a safe rule is sound w.r.t. the well-founded
  // semantics — whenever it gives a definite verdict, WFS agrees.
  Rng rng(0x51D5u);
  int determined = 0;
  for (int trial = 0; trial < 60; ++trial) {
    std::string src = testing::RandomGameProgram(rng, 5, 30);
    Fixture f(src);
    SldnfOptions opts;
    opts.max_depth = 512;
    opts.max_work = 200000;
    SldnfEngine sldnf(f.program, opts);
    Result<TabledEngine> oracle = TabledEngine::Create(f.program);
    ASSERT_TRUE(oracle.ok());
    const GroundProgram& gp = oracle->ground();
    for (AtomId a = 0; a < gp.atom_count(); ++a) {
      const Term* atom = gp.AtomTerm(a);
      QueryResult r = sldnf.Solve(Goal{Literal::Pos(atom)});
      if (r.status == GoalStatus::kSuccessful) {
        ++determined;
        EXPECT_EQ(oracle->ValueOf(atom), TruthValue::kTrue)
            << f.store.ToString(atom) << " in\n" << src;
      } else if (r.status == GoalStatus::kFailed) {
        ++determined;
        EXPECT_EQ(oracle->ValueOf(atom), TruthValue::kFalse)
            << f.store.ToString(atom) << " in\n" << src;
      }
    }
  }
  EXPECT_GT(determined, 100);
}

TEST(SldnfTest, WorkCountsReported) {
  Fixture f("p :- q. q :- r. r.");
  SldnfEngine engine(f.program);
  QueryResult r = engine.Solve(MustParseQuery(f.store, "p"));
  EXPECT_EQ(r.status, GoalStatus::kSuccessful);
  EXPECT_GT(r.work, 2u);
}

}  // namespace
}  // namespace gsls
