#include "lang/parser.h"

#include <gtest/gtest.h>

#include "lang/lexer.h"
#include "lang/transforms.h"
#include "test_support.h"

namespace gsls {
namespace {

using testing::Fixture;

TEST(LexerTest, TokenizesCoreSyntax) {
  Result<std::vector<Token>> r = Lex("p(X) :- q, not r(a). % comment\n?- p.");
  ASSERT_TRUE(r.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : r.value()) kinds.push_back(t.kind);
  std::vector<TokenKind> expected = {
      TokenKind::kName,   TokenKind::kLParen, TokenKind::kVariable,
      TokenKind::kRParen, TokenKind::kImplies, TokenKind::kName,
      TokenKind::kComma,  TokenKind::kNot,    TokenKind::kName,
      TokenKind::kLParen, TokenKind::kName,   TokenKind::kRParen,
      TokenKind::kDot,    TokenKind::kQuery,  TokenKind::kName,
      TokenKind::kDot,    TokenKind::kEof};
  EXPECT_EQ(kinds, expected);
}

TEST(LexerTest, TracksPositions) {
  Result<std::vector<Token>> r = Lex("p.\nq.");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[0].line, 1);
  EXPECT_EQ(r.value()[2].line, 2);
}

TEST(LexerTest, BackslashPlusIsNot) {
  Result<std::vector<Token>> r = Lex("p :- \\+ q.");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[2].kind, TokenKind::kNot);
}

TEST(LexerTest, QuotedAtoms) {
  Result<std::vector<Token>> r = Lex("'Strange Atom'('it''s').");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[0].kind, TokenKind::kName);
  EXPECT_EQ(r.value()[0].text, "Strange Atom");
  EXPECT_EQ(r.value()[2].text, "it's");
}

TEST(LexerTest, RejectsGarbage) {
  EXPECT_FALSE(Lex("p :- q @ r.").ok());
  EXPECT_FALSE(Lex("'unterminated").ok());
}

TEST(ParserTest, ParsesFactsRulesAndQueries) {
  TermStore store;
  Result<Program> p = ParseProgram(store,
                                   "e(a, b).\n"
                                   "t(X, Y) :- e(X, Y).\n"
                                   "t(X, Y) :- e(X, Z), t(Z, Y).\n");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->size(), 3u);
  EXPECT_TRUE(p->clauses()[0].IsFact());
  EXPECT_EQ(p->clauses()[2].body.size(), 2u);
}

TEST(ParserTest, SharedVariablesWithinClause) {
  TermStore store;
  Program p = MustParseProgram(store, "p(X, X) :- q(X).");
  const Clause& c = p.clauses()[0];
  EXPECT_EQ(c.head->arg(0), c.head->arg(1));
  EXPECT_EQ(c.head->arg(0), c.body[0].atom->arg(0));
  EXPECT_EQ(c.Variables().size(), 1u);
}

TEST(ParserTest, VariablesNotSharedAcrossClauses) {
  TermStore store;
  Program p = MustParseProgram(store, "p(X). q(X).");
  EXPECT_NE(p.clauses()[0].head->arg(0), p.clauses()[1].head->arg(0));
}

TEST(ParserTest, AnonymousVariableAlwaysFresh) {
  TermStore store;
  Program p = MustParseProgram(store, "p(_, _).");
  EXPECT_NE(p.clauses()[0].head->arg(0), p.clauses()[0].head->arg(1));
}

TEST(ParserTest, NegationForms) {
  TermStore store;
  Program p = MustParseProgram(store, "p :- not q, \\+ r, not (s).");
  ASSERT_EQ(p.clauses()[0].body.size(), 3u);
  for (const Literal& l : p.clauses()[0].body) EXPECT_FALSE(l.positive);
}

TEST(ParserTest, IntegersAreConstants) {
  TermStore store;
  Program p = MustParseProgram(store, "age(tom, 42).");
  EXPECT_EQ(store.ToString(p.clauses()[0].head), "age(tom,42)");
}

TEST(ParserTest, ErrorsCarryPositions) {
  TermStore store;
  Result<Program> r = ParseProgram(store, "p :- q\nr.");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(ParserTest, RejectsVariableAsAtom) {
  TermStore store;
  EXPECT_FALSE(ParseProgram(store, "X :- p.").ok());
  EXPECT_FALSE(ParseProgram(store, "p :- X.").ok());
}

TEST(ParserTest, QueryParsing) {
  TermStore store;
  Goal g = MustParseQuery(store, "?- p(X), not q(X).");
  ASSERT_EQ(g.size(), 2u);
  EXPECT_TRUE(g[0].positive);
  EXPECT_FALSE(g[1].positive);
  // Shared variable across query literals.
  EXPECT_EQ(g[0].atom->arg(0), g[1].atom->arg(0));
}

TEST(ParserTest, QueryWithoutPrefixOrDot) {
  TermStore store;
  Goal g = MustParseQuery(store, "p(a)");
  ASSERT_EQ(g.size(), 1u);
}

TEST(PrinterTest, RoundTripsPrograms) {
  const char* sources[] = {
      "p.",
      "p(a, b).",
      "p(X) :- q(X), not r(X).",
      "t(X, Y) :- e(X, Z), t(Z, Y).",
      "w(X) :- not u(X).",
      "e(s(0), s(s(0))).",
      "u(X) :- e(Y, X), not w(Y).",
  };
  for (const char* src : sources) {
    TermStore store1;
    Program p1 = MustParseProgram(store1, src);
    std::string printed = p1.ToString();
    TermStore store2;
    Program p2 = MustParseProgram(store2, printed);
    EXPECT_EQ(printed, p2.ToString()) << "source: " << src;
  }
}

TEST(ClauseTest, RenameApartPreservesStructure) {
  TermStore store;
  Program p = MustParseProgram(store, "p(X, Y) :- q(X), not r(Y, X).");
  const Clause& original = p.clauses()[0];
  Clause renamed = RenameApart(store, original);
  EXPECT_NE(renamed.head->arg(0), original.head->arg(0));
  // Shared structure must be preserved.
  EXPECT_EQ(renamed.head->arg(0), renamed.body[0].atom->arg(0));
  EXPECT_EQ(renamed.head->arg(0), renamed.body[1].atom->arg(1));
  EXPECT_EQ(renamed.ToString(store).substr(0, 2),
            original.ToString(store).substr(0, 2));
}

TEST(ClauseTest, RangeRestriction) {
  TermStore store;
  Program p = MustParseProgram(store,
                               "p(X) :- q(X).\n"
                               "p(X) :- q(Y).\n"
                               "p(X) :- q(X), not r(X).\n"
                               "p(X) :- not r(X).\n");
  EXPECT_TRUE(IsRangeRestricted(p.clauses()[0]));
  EXPECT_FALSE(IsRangeRestricted(p.clauses()[1]));
  EXPECT_TRUE(IsRangeRestricted(p.clauses()[2]));
  EXPECT_FALSE(IsRangeRestricted(p.clauses()[3]));
}

TEST(ProgramTest, SymbolInventory) {
  Fixture f("p(a, f(b)) :- q(g(a, c)).");
  auto constants = f.program.Constants();
  EXPECT_EQ(constants.size(), 3u);  // a, b, c
  auto funcs = f.program.FunctionSymbols();
  EXPECT_EQ(funcs.size(), 2u);  // f/1, g/2
  EXPECT_FALSE(f.program.IsFunctionFree());
  Fixture datalog("p(a) :- q(a, b).");
  EXPECT_TRUE(datalog.program.IsFunctionFree());
}

TEST(ProgramTest, ClauseIndexByPredicate) {
  Fixture f("p(a). p(b). q :- p(a).");
  FunctorId p1 = f.store.symbols().FindFunctor("p", 1);
  EXPECT_EQ(f.program.ClausesFor(p1).size(), 2u);
  FunctorId q0 = f.store.symbols().FindFunctor("q", 0);
  EXPECT_EQ(f.program.ClausesFor(q0).size(), 1u);
  EXPECT_EQ(f.program.ClausesFor(kInvalidFunctor - 1).size(), 0u);
}

TEST(TransformTest, AugmentAddsFreshSymbols) {
  Fixture f("p(a).");
  Program aug = AugmentProgram(f.program);
  EXPECT_EQ(aug.size(), f.program.size() + 1);
  // The augmented clause mentions none of P's symbols and adds one
  // constant and one function symbol to the universe.
  EXPECT_EQ(aug.Constants().size(), 2u);
  EXPECT_EQ(aug.FunctionSymbols().size(), 1u);
}

TEST(TransformTest, TermGuardMakesRangeRestricted) {
  Fixture f("p(X) :- not q(X). q(a).");
  EXPECT_FALSE(f.program.IsRangeRestricted());
  Program guarded = AddTermGuard(f.program);
  EXPECT_TRUE(guarded.IsRangeRestricted());
  // Guarded program defines term/1 for each constant.
  FunctorId term1 = f.store.symbols().FindFunctor(kTermGuardName, 1);
  ASSERT_NE(term1, kInvalidFunctor);
  EXPECT_GE(guarded.ClausesFor(term1).size(), 1u);
}

TEST(TransformTest, TermGuardCoversFunctionSymbols) {
  Fixture f("p(X) :- not q(f(X)). q(a).");
  Program guarded = AddTermGuard(f.program);
  // term(a) fact plus term(f(X)) :- term(X) rule.
  FunctorId term1 = f.store.symbols().FindFunctor(kTermGuardName, 1);
  EXPECT_EQ(guarded.ClausesFor(term1).size(), 2u);
  Goal goal = MustParseQuery(f.store, "p(X)");
  Goal guarded_goal = GuardGoal(guarded, f.store, goal);
  EXPECT_EQ(guarded_goal.size(), 2u);
  EXPECT_TRUE(guarded_goal[1].positive);
}

}  // namespace
}  // namespace gsls
