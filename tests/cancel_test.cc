// Unit coverage for the cooperative-cancellation layer (util/cancel.h),
// its plumbing through `SolveWfs` / `IncrementalSolver` / the engines,
// and the invariant auditor on healthy solvers. The exhaustive
// abort-at-every-checkpoint drill lives in tests/fault_test.cc.

#include <memory>

#include <gtest/gtest.h>

#include "check/audit.h"
#include "core/engine.h"
#include "core/tabled.h"
#include "obs/metrics.h"
#include "solver/incremental.h"
#include "solver/solver.h"
#include "test_support.h"
#include "util/cancel.h"
#include "wfs/wfs.h"

namespace gsls {
namespace {

using testing::Fixture;
using testing::MustGround;

constexpr char kProgram[] = R"(
  a.  b :- a.  c :- b, not d.  d :- not c.
  p :- q.  q :- p.  p :- a.
  w1 :- not w2.  w2 :- not w1.
  e :- c, not p.  f :- e.  f :- w1.
)";

TEST(CancelTokenTest, LatchesUntilReset) {
  CancelToken token;
  EXPECT_FALSE(token.IsCancelled());
  token.Cancel();
  EXPECT_TRUE(token.IsCancelled());
  token.Cancel();  // idempotent
  EXPECT_TRUE(token.IsCancelled());
  token.Reset();
  EXPECT_FALSE(token.IsCancelled());
}

TEST(CancelCtxTest, InactiveWithoutAnyStopCondition) {
  CancelCtx ctx(nullptr, 0, 0, nullptr);
  EXPECT_FALSE(ctx.active());
  CancelToken token;
  EXPECT_TRUE(CancelCtx(&token, 0, 0, nullptr).active());
  EXPECT_TRUE(CancelCtx(nullptr, 1, 0, nullptr).active());
  EXPECT_TRUE(CancelCtx(nullptr, 0, 1, nullptr).active());
  FaultInjector fault;
  EXPECT_TRUE(CancelCtx(nullptr, 0, 0, &fault).active());
}

TEST(CancelCtxTest, TokenLatchesCancelledOutcome) {
  CancelToken token;
  CancelCtx ctx(&token, 0, 0, nullptr);
  ctx.BeginPass();
  EXPECT_FALSE(ctx.Checkpoint());
  EXPECT_EQ(ctx.outcome(), SolveOutcome::kCompleted);
  token.Cancel();
  EXPECT_TRUE(ctx.Checkpoint());
  EXPECT_TRUE(ctx.aborted());
  EXPECT_EQ(ctx.outcome(), SolveOutcome::kCancelled);
  // Latched: later checkpoints short-circuit without re-deciding.
  token.Reset();
  EXPECT_TRUE(ctx.Checkpoint());
  // A new pass re-arms; the reset token no longer stops it.
  ctx.BeginPass();
  EXPECT_FALSE(ctx.Checkpoint());
  EXPECT_EQ(ctx.outcome(), SolveOutcome::kCompleted);
}

TEST(CancelCtxTest, StepBudgetLatchesDeadlineOutcome) {
  CancelCtx ctx(nullptr, 0, /*step_budget=*/3, nullptr);
  ctx.BeginPass();
  EXPECT_FALSE(ctx.Checkpoint());
  EXPECT_FALSE(ctx.Checkpoint());
  EXPECT_FALSE(ctx.Checkpoint());
  EXPECT_TRUE(ctx.Checkpoint());  // 4th > budget
  EXPECT_EQ(ctx.outcome(), SolveOutcome::kDeadlineExceeded);
}

TEST(CancelCtxTest, ExpiredDeadlineLatchesAtFirstCheckpoint) {
  CancelCtx ctx(nullptr, /*deadline_ns=*/1, 0, nullptr);  // epoch-old
  ctx.BeginPass();
  EXPECT_TRUE(ctx.Checkpoint());
  EXPECT_EQ(ctx.outcome(), SolveOutcome::kDeadlineExceeded);
}

TEST(CancelCtxTest, FaultTripFiresThroughAttachedToken) {
  CancelToken token;
  FaultInjector fault;
  CancelCtx ctx(&token, 0, 0, &fault);
  fault.Arm(2);
  ctx.BeginPass();
  EXPECT_FALSE(ctx.Checkpoint());
  EXPECT_TRUE(ctx.Checkpoint());
  EXPECT_TRUE(fault.tripped());
  EXPECT_EQ(ctx.outcome(), SolveOutcome::kCancelled);
  EXPECT_TRUE(token.IsCancelled()) << "a trip must persist like a Cancel";
  EXPECT_EQ(fault.checkpoints(), 2u);
}

TEST(StridedCheckpointTest, NullCtxIsFree) {
  StridedCheckpoint tick(nullptr);
  for (int i = 0; i < 3 * static_cast<int>(kCancelStride); ++i) {
    EXPECT_FALSE(tick.Tick());
  }
}

TEST(StridedCheckpointTest, PollsOncePerStride) {
  CancelCtx ctx(nullptr, 0, /*step_budget=*/1, nullptr);
  ctx.BeginPass();
  StridedCheckpoint tick(&ctx);
  uint64_t ticks = 0;
  while (!tick.Tick()) {
    ++ticks;
    ASSERT_LT(ticks, 10u * kCancelStride);
  }
  // Budget 1: the first full poll passes, the second aborts — exactly two
  // strides of local countdowns in between.
  EXPECT_EQ(ticks, 2u * kCancelStride - 1);
}

TEST(SolveWfsTest, PreCancelledTokenAbortsBeforeAnyComponent) {
  Fixture f(kProgram);
  GroundProgram gp = MustGround(f.program);
  CancelToken token;
  token.Cancel();
  SolverOptions opts;
  opts.cancel = &token;
  WfsModel aborted = SolveWfs(gp, opts, nullptr);
  EXPECT_EQ(aborted.outcome, SolveOutcome::kCancelled);
  for (AtomId a = 0; a < gp.atom_count(); ++a) {
    EXPECT_EQ(aborted.model.Value(a), TruthValue::kUndefined)
        << "abort invariant: no component may be half-solved";
  }
  token.Reset();
  WfsModel done = SolveWfs(gp, opts, nullptr);
  EXPECT_EQ(done.outcome, SolveOutcome::kCompleted);
  EXPECT_EQ(done.model, SolveWfs(gp, nullptr).model);
}

TEST(SolveWfsTest, PreCancelledTokenAbortsParallelSolve) {
  Fixture f(kProgram);
  GroundProgram gp = MustGround(f.program);
  CancelToken token;
  token.Cancel();
  SolverOptions opts;
  opts.cancel = &token;
  opts.num_threads = 4;
  WfsModel aborted = SolveWfs(gp, opts, nullptr);
  EXPECT_EQ(aborted.outcome, SolveOutcome::kCancelled);
  token.Reset();
  EXPECT_EQ(SolveWfs(gp, opts, nullptr).model, SolveWfs(gp, nullptr).model);
}

TEST(IncrementalCancelTest, AbortedPassResumesExactly) {
  Fixture f(kProgram);
  CancelToken token;
  SolverOptions opts;
  opts.compute_levels = true;
  opts.cancel = &token;
  IncrementalSolver inc(MustGround(f.program), opts);
  token.Cancel();
  EXPECT_EQ(inc.Model().outcome, SolveOutcome::kCancelled);
  EXPECT_EQ(inc.stats().aborted_passes, 1u);
  check::AuditReport mid = check::AuditSolver(inc);
  EXPECT_TRUE(mid.ok()) << mid.ToString();
  token.Reset();
  const WfsModel& resumed = inc.Model();
  EXPECT_EQ(resumed.outcome, SolveOutcome::kCompleted);
  EXPECT_EQ(inc.stats().resumed_passes, 1u);
  WfsModel fresh = inc.SolveFresh();
  EXPECT_EQ(resumed.model, fresh.model);
  EXPECT_EQ(resumed.true_stage, fresh.true_stage);
  EXPECT_EQ(resumed.false_stage, fresh.false_stage);
  check::AuditReport report = check::AuditSolver(inc);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_TRUE(report.graph_audited);
  EXPECT_GT(report.components_checked, 0u);
}

TEST(IncrementalCancelTest, StepBudgetGovernsNextPassOnly) {
  Fixture f(kProgram);
  SolverOptions opts;
  opts.compute_levels = true;
  IncrementalSolver inc(MustGround(f.program), opts);
  inc.SetStepBudget(1);
  EXPECT_EQ(inc.Model().outcome, SolveOutcome::kDeadlineExceeded);
  inc.SetStepBudget(0);
  EXPECT_EQ(inc.Model().outcome, SolveOutcome::kCompleted);
  EXPECT_EQ(inc.Model().model, inc.SolveFresh().model);
}

TEST(IncrementalCancelTest, QueryAtomReportsOutcomeAndResumes) {
  Fixture f(kProgram);
  CancelToken token;
  SolverOptions opts;
  opts.compute_levels = true;
  opts.cancel = &token;
  IncrementalSolver inc(MustGround(f.program), opts);
  const Term* fa = MustParseTerm(f.store, "f");
  IncrementalSolver::QueryAnswer warm = inc.QueryAtom(fa);
  EXPECT_EQ(warm.outcome, SolveOutcome::kCompleted);
  // All-valid fast path under a cancelled token: zero work, exact answer,
  // still `kCompleted` — cancellation stops work, not lookups.
  token.Cancel();
  IncrementalSolver::QueryAnswer fast = inc.QueryAtom(fa);
  EXPECT_EQ(fast.outcome, SolveOutcome::kCompleted);
  EXPECT_EQ(fast.value, warm.value);
  // A delta makes the cone stale; the cancelled token now aborts the walk.
  inc.Retract(MustParseTerm(f.store, "a"));
  IncrementalSolver::QueryAnswer aborted = inc.QueryAtom(fa);
  EXPECT_EQ(aborted.outcome, SolveOutcome::kCancelled);
  token.Reset();
  IncrementalSolver::QueryAnswer resumed = inc.QueryAtom(fa);
  EXPECT_EQ(resumed.outcome, SolveOutcome::kCompleted);
  EXPECT_EQ(resumed.value, inc.ValueOf(fa));
}

TEST(IncrementalCancelTest, CancelTelemetryChannels) {
  Fixture f(kProgram);
  obs::Telemetry telemetry;
  CancelToken token;
  SolverOptions opts;
  opts.cancel = &token;
  opts.telemetry = &telemetry;
  IncrementalSolver inc(MustGround(f.program), opts);
  token.Cancel();
  inc.Model();
  token.Reset();
  inc.Model();
  EXPECT_EQ(telemetry.metrics.GetCounter("cancel.aborts")->value(), 1u);
  EXPECT_EQ(telemetry.metrics.GetCounter("cancel.resumes")->value(), 1u);
  EXPECT_EQ(
      telemetry.metrics.GetCounter("cancel.deadline_exceeded")->value(), 0u);
}

TEST(TabledEngineCancelTest, CancelAndResumeOutOfTheBox) {
  Fixture f(kProgram);
  Result<TabledEngine> engine = TabledEngine::Create(f.program);
  ASSERT_TRUE(engine.ok());
  TabledEngine& e = engine.value();
  EXPECT_EQ(e.Refresh(), SolveOutcome::kCompleted);
  TruthValue before = e.ValueOf(MustParseTerm(f.store, "b"));
  // Cancel, then dirty the model so the next refresh has work to abort.
  e.Cancel();
  e.AssertFact(MustParseTerm(f.store, "d"));
  EXPECT_EQ(e.Refresh(), SolveOutcome::kCancelled);
  e.ResetCancel();
  EXPECT_EQ(e.Refresh(), SolveOutcome::kCompleted);
  EXPECT_EQ(e.ValueOf(MustParseTerm(f.store, "b")), before);
  check::AuditReport report = check::AuditSolver(e.solver());
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(TabledEngineCancelTest, DeadlineSetterHonoured) {
  Fixture f(kProgram);
  Result<TabledEngine> engine = TabledEngine::Create(f.program);
  ASSERT_TRUE(engine.ok());
  TabledEngine& e = engine.value();
  e.SetDeadlineNs(1);  // long expired
  e.AssertFact(MustParseTerm(f.store, "zz"));
  EXPECT_EQ(e.Refresh(), SolveOutcome::kDeadlineExceeded);
  e.SetDeadlineNs(0);
  EXPECT_EQ(e.Refresh(), SolveOutcome::kCompleted);
}

TEST(GlobalSlsEngineCancelTest, CancelledOracleReportsUnknownNeverWrong) {
  Fixture f(kProgram);
  GlobalSlsEngine engine(f.program);
  engine.Cancel();
  EXPECT_EQ(engine.StatusOfRelevant(MustParseTerm(f.store, "b")),
            GoalStatus::kUnknown);
  engine.ResetCancel();
  EXPECT_EQ(engine.StatusOfRelevant(MustParseTerm(f.store, "b")),
            GoalStatus::kSuccessful);
  EXPECT_EQ(engine.StatusOf(MustParseTerm(f.store, "b")),
            GoalStatus::kSuccessful);
}

TEST(AuditTest, CleanOnHealthySolverAcrossDeltas) {
  Fixture f(kProgram);
  SolverOptions opts;
  opts.compute_levels = true;
  IncrementalSolver inc(MustGround(f.program), opts);
  inc.Model();
  check::AuditReport r1 = check::AuditSolver(inc);
  EXPECT_TRUE(r1.ok()) << r1.ToString();
  EXPECT_TRUE(r1.graph_audited);
  EXPECT_GT(r1.components_checked, 0u);
  inc.Retract(MustParseTerm(f.store, "a"));
  // Pre-solve: dirty components are memo-invalid, nothing half-updated.
  check::AuditReport r2 = check::AuditSolver(inc);
  EXPECT_TRUE(r2.ok()) << r2.ToString();
  inc.Model();
  check::AuditReport r3 = check::AuditSolver(inc);
  EXPECT_TRUE(r3.ok()) << r3.ToString();
}

TEST(AuditTest, BeforeFirstSolveIsVacuouslyClean) {
  Fixture f(kProgram);
  IncrementalSolver inc(MustGround(f.program));
  check::AuditReport report = check::AuditSolver(inc);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.components_checked, 0u);
}

TEST(SolveOutcomeTest, Names) {
  EXPECT_STREQ(SolveOutcomeName(SolveOutcome::kCompleted), "completed");
  EXPECT_STREQ(SolveOutcomeName(SolveOutcome::kCancelled), "cancelled");
  EXPECT_STREQ(SolveOutcomeName(SolveOutcome::kDeadlineExceeded),
               "deadline-exceeded");
}

}  // namespace
}  // namespace gsls
