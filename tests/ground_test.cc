#include "ground/grounder.h"

#include <gtest/gtest.h>

#include "test_support.h"
#include "wfs/wfs.h"

namespace gsls {
namespace {

using testing::Fixture;

TEST(HerbrandTest, ConstantsOnly) {
  Fixture f("p(a, b). q(c).");
  Result<std::vector<const Term*>> u =
      EnumerateUniverse(f.program, UniverseOptions{});
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->size(), 3u);
}

TEST(HerbrandTest, SyntheticConstantWhenNone) {
  Fixture f("p :- q.");
  Result<std::vector<const Term*>> u =
      EnumerateUniverse(f.program, UniverseOptions{});
  ASSERT_TRUE(u.ok());
  ASSERT_EQ(u->size(), 1u);
  EXPECT_EQ(f.store.ToString(u->front()), "$k");
}

TEST(HerbrandTest, DepthBoundedWithFunctions) {
  Fixture f("p(s(z)).");
  UniverseOptions opts;
  opts.max_term_depth = 3;
  Result<std::vector<const Term*>> u = EnumerateUniverse(f.program, opts);
  ASSERT_TRUE(u.ok());
  // z, s(z), s(s(z)).
  EXPECT_EQ(u->size(), 3u);
  EXPECT_EQ(u->back()->depth(), 3u);
}

TEST(HerbrandTest, BinaryFunctionGrowth) {
  Fixture f("p(f(a, b)).");
  UniverseOptions opts;
  opts.max_term_depth = 2;
  Result<std::vector<const Term*>> u = EnumerateUniverse(f.program, opts);
  ASSERT_TRUE(u.ok());
  // a, b, f(a,a), f(a,b), f(b,a), f(b,b).
  EXPECT_EQ(u->size(), 6u);
}

TEST(HerbrandTest, CapEnforced) {
  Fixture f("p(f(a, b)).");
  UniverseOptions opts;
  opts.max_term_depth = 5;
  opts.max_terms = 100;
  Result<std::vector<const Term*>> u = EnumerateUniverse(f.program, opts);
  EXPECT_FALSE(u.ok());
  EXPECT_EQ(u.status().code(), StatusCode::kResourceExhausted);
}

TEST(GrounderTest, InstantiatesFactsAndRules) {
  Fixture f(
      "e(a, b). e(b, c).\n"
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- e(X, Z), t(Z, Y).\n");
  GroundProgram gp = testing::MustGround(f.program);
  // Facts 2, t-base 2, t-trans: e(a,b)+t(b,c) and chains.
  EXPECT_GT(gp.rule_count(), 4u);
  EXPECT_TRUE(gp.FindAtom(MustParseTerm(f.store, "t(a, c)")).has_value());
  // Irrelevant instantiations (e.g. t(c, a)) are not derivable and thus
  // should not appear as rule heads.
  auto tca = gp.FindAtom(MustParseTerm(f.store, "t(c, a)"));
  if (tca.has_value()) {
    EXPECT_TRUE(gp.RulesFor(*tca).empty());
  }
}

TEST(GrounderTest, NegativeLiteralsAreInstantiated) {
  Fixture f(
      "win(X) :- move(X, Y), not win(Y).\n"
      "move(a, b).\n");
  GroundProgram gp = testing::MustGround(f.program);
  auto win_b = gp.FindAtom(MustParseTerm(f.store, "win(b)"));
  ASSERT_TRUE(win_b.has_value());
  // win(b) appears negatively but has no rules (no move from b).
  EXPECT_TRUE(gp.RulesFor(*win_b).empty());
}

TEST(GrounderTest, NonRangeRestrictedEnumeratesUniverse) {
  Fixture f("p(X) :- not q(X). q(a). r(b).");
  GroundProgram gp = testing::MustGround(f.program);
  // X in p(X) :- not q(X) must range over {a, b}.
  EXPECT_TRUE(gp.FindAtom(MustParseTerm(f.store, "p(a)")).has_value());
  EXPECT_TRUE(gp.FindAtom(MustParseTerm(f.store, "p(b)")).has_value());
}

TEST(GrounderTest, AgreesWithFullInstantiationOnWfs) {
  // The relevant grounding must yield the same well-founded truth values
  // as the brute-force Herbrand instantiation, for every atom the full
  // instantiation registers.
  Rng rng(555);
  for (int trial = 0; trial < 25; ++trial) {
    std::string src = testing::RandomGameProgram(rng, 4, 40);
    Fixture f(src);
    GroundingOptions opts;
    GroundProgram relevant = testing::MustGround(f.program);
    Result<GroundProgram> full = FullyInstantiate(f.program, opts);
    ASSERT_TRUE(full.ok());
    WfsModel m_rel = ComputeWfs(relevant);
    WfsModel m_full = ComputeWfs(full.value());
    for (AtomId a = 0; a < full->atom_count(); ++a) {
      const Term* atom = full->AtomTerm(a);
      TruthValue full_value = m_full.model.Value(a);
      auto rel_id = relevant.FindAtom(atom);
      TruthValue rel_value = rel_id.has_value()
                                 ? m_rel.model.Value(*rel_id)
                                 : TruthValue::kFalse;
      EXPECT_EQ(full_value, rel_value)
          << f.store.ToString(atom) << " in\n"
          << src;
    }
  }
}

TEST(GrounderTest, RuleDeduplication) {
  Fixture f("p :- q. p :- q. q.");
  GroundProgram gp = testing::MustGround(f.program);
  EXPECT_EQ(gp.rule_count(), 2u);
}

TEST(GrounderTest, BodyLiteralDeduplication) {
  Fixture f("p :- q, q, not r, not r. q.");
  GroundProgram gp = testing::MustGround(f.program);
  for (const GroundRule& r : gp.rules()) {
    if (r.pos.size() + r.neg.size() > 0 && !r.neg.empty()) {
      EXPECT_EQ(r.pos.size(), 1u);
      EXPECT_EQ(r.neg.size(), 1u);
    }
  }
}

TEST(GrounderTest, CapsAreEnforced) {
  Fixture f("p(X, Y, Z) :- not q(X, Y, Z). q(a, a, a). c(b). c(d). c(e).");
  GroundingOptions opts;
  opts.max_rules = 10;
  Result<GroundProgram> gp = GroundRelevant(f.program, opts);
  EXPECT_FALSE(gp.ok());
  EXPECT_EQ(gp.status().code(), StatusCode::kResourceExhausted);
}

TEST(RestrictTest, KeepsOnlyReachableRules) {
  Fixture f(
      "win(X) :- move(X, Y), not win(Y).\n"
      "move(a, b). move(b, c).\n"
      "move(x, y).\n");  // disconnected component
  GroundProgram gp = testing::MustGround(f.program);
  GroundProgram restricted =
      RestrictToRelevant(gp, {MustParseTerm(f.store, "win(a)")});
  EXPECT_TRUE(restricted.FindAtom(MustParseTerm(f.store, "win(b)")));
  EXPECT_FALSE(restricted.FindAtom(MustParseTerm(f.store, "win(x)")));
  EXPECT_LT(restricted.rule_count(), gp.rule_count());
  // Restriction preserves well-founded values on kept atoms (relevance).
  WfsModel full = ComputeWfs(gp);
  WfsModel sub = ComputeWfs(restricted);
  for (AtomId a = 0; a < restricted.atom_count(); ++a) {
    const Term* atom = restricted.AtomTerm(a);
    EXPECT_EQ(sub.model.Value(a), full.model.Value(*gp.FindAtom(atom)))
        << f.store.ToString(atom);
  }
}

TEST(RestrictTest, NongroundRootMatchesAllInstances) {
  Fixture f(
      "win(X) :- move(X, Y), not win(Y).\n"
      "move(a, b). move(x, y).\n");
  GroundProgram gp = testing::MustGround(f.program);
  GroundProgram restricted =
      RestrictToRelevant(gp, {MustParseTerm(f.store, "win(Z)")});
  EXPECT_TRUE(restricted.FindAtom(MustParseTerm(f.store, "win(a)")));
  EXPECT_TRUE(restricted.FindAtom(MustParseTerm(f.store, "win(x)")));
}

TEST(GroundProgramTest, OccurrenceIndexes) {
  Fixture f("p :- q, not r. s :- q. q.");
  GroundProgram gp = testing::MustGround(f.program);
  auto q = gp.FindAtom(MustParseTerm(f.store, "q"));
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(gp.PositiveOccurrences(*q).size(), 2u);
  auto r = gp.FindAtom(MustParseTerm(f.store, "r"));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(gp.NegativeOccurrences(*r).size(), 1u);
}

TEST(GroundProgramTest, UnitRuleAfterIndexReadMergesIntoRulesFor) {
  // `r` has rules but no unit rule; reading the index first forces the
  // lazily built CSR, so the later unit-rule AddRule exercises the
  // pending-row merge path instead of a full rebuild.
  Fixture f("p :- q, not r. r :- q. q.");
  GroundProgram gp = testing::MustGround(f.program);
  auto r = gp.FindAtom(MustParseTerm(f.store, "r"));
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ(gp.RulesFor(*r).size(), 1u);  // materializes the index
  ASSERT_FALSE(gp.FindUnitRule(*r).has_value());

  RuleId unit = gp.AddRule(GroundRule{*r, {}, {}});
  ASSERT_EQ(gp.RulesFor(*r).size(), 2u);
  EXPECT_EQ(gp.RulesFor(*r).back(), unit);  // largest id stays last
  EXPECT_EQ(gp.FindUnitRule(*r), unit);
  // The other rows and indexes are untouched by the merge.
  auto q = gp.FindAtom(MustParseTerm(f.store, "q"));
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(gp.PositiveOccurrences(*q).size(), 2u);
}

TEST(GroundProgramTest, ToStringRendersRules) {
  Fixture f("p :- q, not r. q.");
  GroundProgram gp = testing::MustGround(f.program);
  std::string s = gp.ToString();
  EXPECT_NE(s.find("p :- q, not r."), std::string::npos);
  EXPECT_NE(s.find("q.\n"), std::string::npos);
}

}  // namespace
}  // namespace gsls
