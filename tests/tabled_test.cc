#include "core/tabled.h"

#include <gtest/gtest.h>

#include "test_support.h"

namespace gsls {
namespace {

using testing::Fixture;

TabledEngine MustCreate(const Program& p, TabledOptions opts = {}) {
  Result<TabledEngine> r = TabledEngine::Create(p, opts);
  if (!r.ok()) {
    fprintf(stderr, "tabled create failed: %s\n",
            r.status().ToString().c_str());
    abort();
  }
  return std::move(r.value());
}

TEST(TabledTest, BasicTruthValues) {
  Fixture f("p :- not q. r :- r. u :- not u.");
  TabledEngine t = MustCreate(f.program);
  EXPECT_EQ(t.StatusOf(MustParseTerm(f.store, "p")),
            GoalStatus::kSuccessful);
  EXPECT_EQ(t.StatusOf(MustParseTerm(f.store, "q")), GoalStatus::kFailed);
  EXPECT_EQ(t.StatusOf(MustParseTerm(f.store, "r")), GoalStatus::kFailed);
  EXPECT_EQ(t.StatusOf(MustParseTerm(f.store, "u")),
            GoalStatus::kIndeterminate);
}

TEST(TabledTest, LevelsAreStages) {
  Fixture f(
      "win(X) :- move(X, Y), not win(Y).\n"
      "move(n1, n2). move(n2, n3).\n");
  TabledEngine t = MustCreate(f.program);
  EXPECT_EQ(t.LevelOf(MustParseTerm(f.store, "win(n3)")),
            Ordinal::Finite(1));
  EXPECT_EQ(t.LevelOf(MustParseTerm(f.store, "win(n2)")),
            Ordinal::Finite(2));
  EXPECT_EQ(t.LevelOf(MustParseTerm(f.store, "win(n1)")),
            Ordinal::Finite(3));
  EXPECT_EQ(t.LevelOf(MustParseTerm(f.store, "move(n1, n2)")),
            Ordinal::Finite(1));
  // Unregistered atoms fail at stage 1.
  EXPECT_EQ(t.LevelOf(MustParseTerm(f.store, "win(zzz)")),
            Ordinal::Finite(1));
}

TEST(TabledTest, UndefinedAtomsHaveNoLevel) {
  Fixture f("p :- not p.");
  TabledEngine t = MustCreate(f.program);
  EXPECT_FALSE(t.LevelOf(MustParseTerm(f.store, "p")).has_value());
}

TEST(TabledTest, AnswerEnumerationWithNegation) {
  Fixture f(
      "p(a). p(b). p(c). q(b).\n"
      "r(X) :- p(X), not q(X).\n");
  TabledEngine t = MustCreate(f.program);
  QueryResult r = t.Solve(MustParseQuery(f.store, "r(X)"));
  ASSERT_EQ(r.status, GoalStatus::kSuccessful);
  EXPECT_EQ(r.answers.size(), 2u);  // a, c
}

TEST(TabledTest, LeftRecursionTerminates) {
  // Left-recursive transitive closure diverges in plain SLD(NF) but is
  // handled by the memoing engine.
  Fixture f(
      "t(X, Y) :- t(X, Z), e(Z, Y).\n"
      "t(X, Y) :- e(X, Y).\n"
      "e(a, b). e(b, c). e(c, d).\n");
  TabledEngine t = MustCreate(f.program);
  QueryResult r = t.Solve(MustParseQuery(f.store, "t(a, X)"));
  ASSERT_EQ(r.status, GoalStatus::kSuccessful);
  EXPECT_EQ(r.answers.size(), 3u);  // b, c, d
}

TEST(TabledTest, CyclicTransitiveClosure) {
  Fixture f(
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- e(X, Z), t(Z, Y).\n"
      "e(a, b). e(b, a).\n");
  TabledEngine t = MustCreate(f.program);
  QueryResult r = t.Solve(MustParseQuery(f.store, "t(a, X)"));
  ASSERT_EQ(r.status, GoalStatus::kSuccessful);
  EXPECT_EQ(r.answers.size(), 2u);  // a and b
}

TEST(TabledTest, UndefinedGoalIsIndeterminate) {
  Fixture f(
      "win(X) :- move(X, Y), not win(Y).\n"
      "move(a, b). move(b, a).\n");
  TabledEngine t = MustCreate(f.program);
  QueryResult r = t.Solve(MustParseQuery(f.store, "win(a)"));
  EXPECT_EQ(r.status, GoalStatus::kIndeterminate);
  EXPECT_TRUE(r.answers.empty());
}

TEST(TabledTest, MixedQueryStatusPrecedence) {
  // One instance true, another undefined: the goal succeeds with the true
  // answer only.
  Fixture f(
      "win(X) :- move(X, Y), not win(Y).\n"
      "move(a, b). move(b, a).\n"  // a, b drawn
      "move(c, d).\n");            // c won, d lost
  TabledEngine t = MustCreate(f.program);
  QueryResult r = t.Solve(MustParseQuery(f.store, "win(X)"));
  ASSERT_EQ(r.status, GoalStatus::kSuccessful);
  ASSERT_EQ(r.answers.size(), 1u);
  EXPECT_EQ(f.store.ToString(
                r.answers[0].theta.bindings().begin()->second),
            "c");
}

TEST(TabledTest, FloundersWhenVariableOnlyInNegation) {
  Fixture f("q(a). r(b).");
  TabledEngine t = MustCreate(f.program);
  QueryResult r = t.Solve(MustParseQuery(f.store, "not q(X)"));
  EXPECT_EQ(r.status, GoalStatus::kFloundered);
}

TEST(TabledTest, BottomUpInstantiationResolvesRuleLevelFloundering) {
  // Top-down, `p :- not q(X)` flounders; the memoing engine instantiates
  // X over the (finite) universe bottom-up, so p gets its well-founded
  // value. With universe {a} and q(a) true, p is false.
  Fixture f("q(a). p :- not q(X).");
  TabledEngine t = MustCreate(f.program);
  EXPECT_EQ(t.StatusOf(MustParseTerm(f.store, "p")), GoalStatus::kFailed);
  // With a second constant, some instance has q(c) false: p true.
  Fixture f2("q(a). c(b). p :- not q(X).");
  TabledEngine t2 = MustCreate(f2.program);
  EXPECT_EQ(t2.StatusOf(MustParseTerm(f2.store, "p")),
            GoalStatus::kSuccessful);
}

TEST(TabledTest, QueryRestrictedTablesAgree) {
  Rng rng(31337);
  for (int trial = 0; trial < 10; ++trial) {
    std::string src = testing::RandomGameProgram(rng, 6, 30);
    Fixture f(src);
    TabledEngine full = MustCreate(f.program);
    Goal query = MustParseQuery(f.store, "win(n0)");
    Result<TabledEngine> restricted =
        TabledEngine::CreateForQuery(f.program, query);
    ASSERT_TRUE(restricted.ok());
    const Term* atom = MustParseTerm(f.store, "win(n0)");
    EXPECT_EQ(full.StatusOf(atom), restricted->StatusOf(atom)) << src;
    EXPECT_LE(restricted->ground().rule_count(),
              full.ground().rule_count());
  }
}

TEST(TabledTest, GroundQueriesMatchStatusOf) {
  Fixture f(
      "win(X) :- move(X, Y), not win(Y).\n"
      "move(n1, n2). move(n2, n3). move(n3, n1). move(n1, n4).\n");
  TabledEngine t = MustCreate(f.program);
  for (const char* node : {"n1", "n2", "n3", "n4"}) {
    const Term* atom =
        MustParseTerm(f.store, StrCat("win(", node, ")"));
    QueryResult r = t.Solve(Goal{Literal::Pos(atom)});
    EXPECT_EQ(r.status, t.StatusOf(atom)) << node;
  }
}

TEST(TabledTest, ConjunctiveQueryLevels) {
  Fixture f(
      "win(X) :- move(X, Y), not win(Y).\n"
      "move(n1, n2). move(n2, n3).\n");
  TabledEngine t = MustCreate(f.program);
  // Query: move(n1, n2), win(n2): both true; level = max stage.
  QueryResult r = t.Solve(MustParseQuery(f.store, "move(n1, n2), win(n2)"));
  ASSERT_EQ(r.status, GoalStatus::kSuccessful);
  ASSERT_EQ(r.answers.size(), 1u);
  EXPECT_EQ(r.answers[0].level, Ordinal::Finite(2));
}

TEST(TabledTest, FunctionSymbolsUpToDepthBound) {
  Fixture f(
      "even(z).\n"
      "even(s(X)) :- not even(X).\n");
  TabledOptions opts;
  opts.grounding.universe.max_term_depth = 6;
  TabledEngine t = MustCreate(f.program, opts);
  EXPECT_EQ(t.StatusOf(MustParseTerm(f.store, "even(z)")),
            GoalStatus::kSuccessful);
  EXPECT_EQ(t.StatusOf(MustParseTerm(f.store, "even(s(z))")),
            GoalStatus::kFailed);
  EXPECT_EQ(t.StatusOf(MustParseTerm(f.store, "even(s(s(z)))")),
            GoalStatus::kSuccessful);
}

}  // namespace
}  // namespace gsls
