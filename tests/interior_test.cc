// Intra-component incremental evaluation (solver/warm_component.h): the
// warm-start path that persists each dirty component's compiled RuleTable,
// source pointers, and decision trail across deltas, re-solving by
// patch + suffix-undo + seeded flood instead of a cold compile +
// InitSources over the whole component.
//
// Coverage: randomized rule churn inside a single giant negation-recursive
// SCC, checked delta-for-delta against a fresh masked solve and the
// independent alternating-fixpoint oracle at 1, 2, and 4 threads with the
// full `AuditSolver` pass (which re-derives the persisted warm state's
// invariants) after every delta; plus the headline flood-narrowing
// regression — a unit-rule toggle in a 10k-atom SCC must seed an
// unfounded flood that is far smaller than the component.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/audit.h"
#include "solver/incremental.h"
#include "solver/solver.h"
#include "test_support.h"
#include "util/rng.h"
#include "util/strings.h"
#include "wfs/wfs.h"

namespace gsls {
namespace {

using testing::Fixture;
using testing::MustGround;

/// win/move game whose move graph is a directed n-cycle plus `chords`
/// random chords per node: strongly connected by construction, so all n
/// win atoms form ONE negation-recursive SCC, and the chords give most
/// positions several alternative moves — the redundancy that keeps a
/// single move-fact toggle from rippling across the whole component.
std::string OneSccGame(Rng& rng, int n, int chords) {
  std::string src;
  src.reserve(static_cast<size_t>(n) * (chords + 2) * 24);
  for (int i = 0; i < n; ++i) {
    src += StrCat("move(n", i, ",n", (i + 1) % n, ").\n");
    for (int c = 0; c < chords; ++c) {
      int j = static_cast<int>(rng.Uniform(static_cast<uint64_t>(n)));
      if (j == i) j = (i + 1) % n;
      src += StrCat("move(n", i, ",n", j, ").\n");
    }
  }
  src += "win(X) :- move(X,Y), not win(Y).\n";
  return src;
}

/// Fresh ground program holding exactly the enabled rules, atoms interned
/// in the same order — the alternating-fixpoint oracle's input.
GroundProgram RebuildEnabled(const IncrementalSolver& inc, TermStore& store) {
  const GroundProgram& gp = inc.program();
  GroundProgram out(&store);
  for (AtomId a = 0; a < gp.atom_count(); ++a) out.InternAtom(gp.AtomTerm(a));
  for (RuleId r = 0; r < gp.rule_count(); ++r) {
    if (inc.RuleEnabled(r)) out.AddRule(gp.rules()[r]);
  }
  return out;
}

std::vector<RuleId> NonUnitRules(const GroundProgram& gp) {
  std::vector<RuleId> out;
  for (RuleId r = 0; r < gp.rule_count(); ++r) {
    const GroundRule& rule = gp.rules()[r];
    if (!rule.pos.empty() || !rule.neg.empty()) out.push_back(r);
  }
  return out;
}

std::vector<RuleId> UnitRules(const GroundProgram& gp) {
  std::vector<RuleId> out;
  for (RuleId r = 0; r < gp.rule_count(); ++r) {
    const GroundRule& rule = gp.rules()[r];
    if (rule.pos.empty() && rule.neg.empty()) out.push_back(r);
  }
  return out;
}

void ToggleRule(IncrementalSolver& inc, RuleId r) {
  if (inc.RuleEnabled(r)) {
    inc.RetractRule(r);
  } else {
    inc.AssertRule(inc.program().rules()[r]);
  }
}

/// One churn sequence inside a single giant negation-recursive SCC at one
/// thread count, with warm-starting forced on (`warm_min_atoms = 2`):
/// every delta is checked against the fresh masked solve, the independent
/// alternating-fixpoint oracle, and the full solver audit — which
/// re-derives the warm entries' counters, source acyclicity, and trail
/// justification against the live tape.
void RunWarmChurn(uint64_t seed, unsigned threads) {
  Rng gen(seed);
  Fixture f(OneSccGame(gen, 90, 2));
  SolverOptions opts;
  opts.num_threads = threads;
  opts.compute_levels = true;
  opts.warm_min_atoms = 2;
  IncrementalSolver inc(MustGround(f.program), opts);
  inc.Model();
  std::vector<RuleId> rules = NonUnitRules(inc.program());
  std::vector<RuleId> units = UnitRules(inc.program());
  ASSERT_FALSE(rules.empty());
  ASSERT_FALSE(units.empty());

  Rng rng(seed * 31 + threads);
  for (int d = 0; d < 30; ++d) {
    // Mostly move-fact (unit) toggles — external drift for the win SCC's
    // warm state; game-rule toggles mix in rule death/revival inside it.
    if (rng.Chance(3, 4)) {
      ToggleRule(inc, units[rng.Uniform(units.size())]);
    } else {
      ToggleRule(inc, rules[rng.Uniform(rules.size())]);
    }
    const std::string context =
        StrCat("seed ", seed, " threads ", threads, " delta ", d);
    const WfsModel& got = inc.Model();
    WfsModel fresh = inc.SolveFresh();
    ASSERT_EQ(got.model, fresh.model)
        << context << "\nincremental vs fresh SolveWfs diff:\n"
        << DescribeModelDifference(inc.program(), got.model, fresh.model);
    for (AtomId a = 0; a < inc.program().atom_count(); ++a) {
      ASSERT_EQ(got.true_stage[a], fresh.true_stage[a])
          << context << ": true stage of atom " << a;
      ASSERT_EQ(got.false_stage[a], fresh.false_stage[a])
          << context << ": false stage of atom " << a;
    }
    GroundProgram rebuilt = RebuildEnabled(inc, f.store);
    WfsModel oracle = ComputeWfsAlternating(rebuilt);
    ASSERT_EQ(got.model, oracle.model)
        << context << "\nincremental vs alternating-fixpoint oracle diff:\n"
        << DescribeModelDifference(inc.program(), got.model, oracle.model);
    check::AuditReport report = check::AuditSolver(inc);
    ASSERT_TRUE(report.ok()) << context << "\n" << report.ToString();
  }
  // The sequence must actually have exercised the warm path: the giant
  // SCC is eligible and its binding survives fact toggles.
  EXPECT_GT(inc.diagnostics().warm_hits, 0u) << "threads " << threads;
  check::AuditReport final_report = check::AuditSolver(inc);
  EXPECT_GT(final_report.warm_entries_checked, 0u) << "threads " << threads;
}

TEST(InteriorTest, WarmChurnInGiantSccAgreesEverywhereSequential) {
  RunWarmChurn(11, 1);
}

TEST(InteriorTest, WarmChurnInGiantSccAgreesEverywhereTwoThreads) {
  RunWarmChurn(12, 2);
}

TEST(InteriorTest, WarmChurnInGiantSccAgreesEverywhereFourThreads) {
  RunWarmChurn(13, 4);
}

/// Same delta stream at 1, 2, and 4 threads: the warm/cold dispatch is
/// shape-only and the evaluation thread-count invariant, so models and
/// stage levels must be bit-identical across thread counts.
TEST(InteriorTest, WarmResolveBitIdenticalAcrossThreadCounts) {
  Rng gen(77);
  const std::string src = OneSccGame(gen, 120, 2);
  std::vector<std::unique_ptr<Fixture>> fixtures;
  std::vector<std::unique_ptr<IncrementalSolver>> solvers;
  for (unsigned threads : {1u, 2u, 4u}) {
    fixtures.push_back(std::make_unique<Fixture>(src));
    SolverOptions opts;
    opts.num_threads = threads;
    opts.compute_levels = true;
    opts.warm_min_atoms = 2;
    solvers.push_back(std::make_unique<IncrementalSolver>(
        MustGround(fixtures.back()->program), opts));
    solvers.back()->Model();
  }
  std::vector<RuleId> rules = NonUnitRules(solvers[0]->program());
  std::vector<RuleId> units = UnitRules(solvers[0]->program());
  Rng rng(78);
  for (int d = 0; d < 25; ++d) {
    const RuleId r = rng.Chance(3, 4) ? units[rng.Uniform(units.size())]
                                      : rules[rng.Uniform(rules.size())];
    for (auto& s : solvers) ToggleRule(*s, r);
    const WfsModel& m1 = solvers[0]->Model();
    for (size_t i = 1; i < solvers.size(); ++i) {
      const WfsModel& mi = solvers[i]->Model();
      ASSERT_EQ(m1.model, mi.model)
          << "delta " << d << ": threads[0] vs solver " << i << "\n"
          << DescribeModelDifference(solvers[0]->program(), m1.model,
                                     mi.model);
      ASSERT_EQ(m1.true_stage, mi.true_stage) << "delta " << d;
      ASSERT_EQ(m1.false_stage, mi.false_stage) << "delta " << d;
    }
  }
  EXPECT_GT(solvers[0]->diagnostics().warm_hits, 0u);
}

/// The headline narrowing regression: in a 10k-atom negation-recursive
/// SCC with redundant moves, a single move-fact (unit rule) toggle must
/// seed an unfounded flood that is a small fraction of the component —
/// the warm path floods from the delta's atoms, not `InitSources` over
/// all 10k. Averaged over 32 toggles to keep the assertion robust against
/// an unlucky position.
TEST(InteriorTest, UnitToggleFloodsFarLessThanTenKAtomScc) {
  Rng gen(5);
  const int n = 10000;
  Fixture f(OneSccGame(gen, n, 2));
  SolverOptions opts;
  opts.num_threads = 2;
  opts.warm_min_atoms = 64;
  IncrementalSolver inc(MustGround(f.program), opts);
  inc.Model();

  std::vector<RuleId> units = UnitRules(inc.program());
  ASSERT_GE(units.size(), static_cast<size_t>(n));

  const uint64_t flood_before = inc.diagnostics().seeded_flood_sizes.sum;
  const uint64_t undone_before = inc.diagnostics().warm_undone_atoms;
  const uint64_t hits_before = inc.diagnostics().warm_hits;

  Rng rng(6);
  const int kToggles = 32;
  for (int d = 0; d < kToggles; ++d) {
    ToggleRule(inc, units[rng.Uniform(units.size())]);
    inc.Model();
  }

  const uint64_t hits = inc.diagnostics().warm_hits - hits_before;
  EXPECT_GT(hits, 0u) << "warm path never taken in the 10k SCC";
  const uint64_t flood =
      inc.diagnostics().seeded_flood_sizes.sum - flood_before;
  const uint64_t undone = inc.diagnostics().warm_undone_atoms - undone_before;
  // Averages per delta. A cold re-solve floods the whole component every
  // time (the InitSources candidate sweep); the warm path must stay two
  // orders of magnitude under that.
  const double avg_flood = static_cast<double>(flood) / kToggles;
  const double avg_undone = static_cast<double>(undone) / kToggles;
  EXPECT_LT(avg_flood, n / 10.0)
      << "avg seeded flood " << avg_flood << " atoms vs component " << n;
  EXPECT_LT(avg_undone, n / 2.0)
      << "avg trail undo " << avg_undone << " atoms vs component " << n;

  // And the model is still right (one fresh check at the end; the churn
  // tests above do this delta-for-delta).
  const WfsModel& got = inc.Model();
  WfsModel fresh = inc.SolveFresh();
  ASSERT_EQ(got.model, fresh.model)
      << DescribeModelDifference(inc.program(), got.model, fresh.model);
}

}  // namespace
}  // namespace gsls
