// The unified `gsls::Session` facade (serve/session.h): one entry point —
// open program, Assert/Retract facts and clauses, point Query, whole-model
// Snapshot — over what used to be three divergent surfaces. Coverage —
// facade answers match `TabledEngine` (`SolveRelevant`/`StatusOf`/
// `LevelOf`) and `GlobalSlsEngine` (`StatusOfRelevant`) atom for atom; the
// consolidated Assert/Retract clause vocabulary round-trips (including the
// nonground InvalidArgument contract); the engines really are thin
// adapters (their internal Session is observable); direct-mode snapshots
// match the live model; serving-mode sessions answer with epoch tags.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/tabled.h"
#include "serve/session.h"
#include "serve/snapshot.h"
#include "test_support.h"
#include "util/strings.h"

namespace gsls {
namespace {

using testing::Fixture;

// The two paper staples plus an undefined loop: every truth value and a
// mix of stage levels.
constexpr const char* kMixedProgram =
    "p :- not q.\n"
    "q :- r.\n"
    "a :- not b.\n"
    "b :- not a.\n"
    "win(X) :- move(X, Y), not win(Y).\n"
    "move(n0, n1).\n"
    "move(n1, n2).\n";

std::vector<const Term*> ProbeAtoms(TermStore& store) {
  std::vector<const Term*> atoms;
  for (const char* s :
       {"p", "q", "r", "a", "b", "win(n0)", "win(n1)", "win(n2)",
        "move(n0, n1)", "move(n1, n2)", "unregistered_atom"}) {
    atoms.push_back(MustParseTerm(store, s));
  }
  return atoms;
}

TEST(SessionTest, OpenAnswersMatchTabledEngine) {
  Fixture f(kMixedProgram);
  Result<Session> opened = Session::Open(f.program);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Session session = std::move(opened.value());
  ASSERT_FALSE(session.serving());

  Result<TabledEngine> eng = TabledEngine::Create(f.program);
  ASSERT_TRUE(eng.ok());

  for (const Term* atom : ProbeAtoms(f.store)) {
    SessionAnswer ans = session.Query(atom);
    EXPECT_EQ(ans.status, eng.value().StatusOf(atom))
        << "status of " << f.store.ToString(atom);
    EXPECT_EQ(ans.value, eng.value().ValueOf(atom))
        << "value of " << f.store.ToString(atom);
    TabledEngine::RelevantAnswer rel = eng.value().SolveRelevant(atom);
    EXPECT_EQ(ans.status, rel.status);
    EXPECT_EQ(ans.level, rel.level)
        << "level of " << f.store.ToString(atom);
  }
}

TEST(SessionTest, AnswersMatchGlobalSlsEngine) {
  Fixture f(kMixedProgram);
  Result<Session> opened = Session::Open(f.program);
  ASSERT_TRUE(opened.ok());
  Session session = std::move(opened.value());
  GlobalSlsEngine eng(f.program);
  for (const Term* atom : ProbeAtoms(f.store)) {
    EXPECT_EQ(session.Query(atom).status, eng.StatusOfRelevant(atom))
        << f.store.ToString(atom);
  }
}

TEST(SessionTest, UnregisteredAtomsFailAtStageOne) {
  Fixture f("p :- not q.\n");
  Result<Session> opened = Session::Open(f.program);
  ASSERT_TRUE(opened.ok());
  SessionAnswer ans =
      opened.value().Query(MustParseTerm(f.store, "never_mentioned"));
  EXPECT_EQ(ans.status, GoalStatus::kFailed);
  EXPECT_EQ(ans.value, TruthValue::kFalse);
  ASSERT_TRUE(ans.level.has_value());
  EXPECT_EQ(*ans.level, Ordinal::Finite(1));
}

TEST(SessionTest, FactDeltasApplySynchronouslyInDirectMode) {
  // Chain a -> b -> c: win(b) wins, win(a) and win(c) lose. Deltas toggle
  // grounded facts (they never re-ground rules).
  Fixture f("win(X) :- move(X, Y), not win(Y).\nmove(a, b).\nmove(b, c).\n");
  Result<Session> opened = Session::Open(f.program);
  ASSERT_TRUE(opened.ok());
  Session s = std::move(opened.value());

  EXPECT_EQ(s.Query(MustParseTerm(f.store, "win(b)")).status,
            GoalStatus::kSuccessful);
  EXPECT_EQ(s.Query(MustParseTerm(f.store, "win(a)")).status,
            GoalStatus::kFailed);

  EXPECT_TRUE(s.Retract(MustParseTerm(f.store, "move(b, c)")));
  EXPECT_FALSE(s.Retract(MustParseTerm(f.store, "move(b, c)")));  // no-op
  EXPECT_EQ(s.Query(MustParseTerm(f.store, "win(b)")).status,
            GoalStatus::kFailed);
  EXPECT_EQ(s.Query(MustParseTerm(f.store, "win(a)")).status,
            GoalStatus::kSuccessful);

  EXPECT_TRUE(s.Assert(MustParseTerm(f.store, "move(b, c)")));
  EXPECT_FALSE(s.Assert(MustParseTerm(f.store, "move(b, c)")));  // no-op
  EXPECT_EQ(s.Query(MustParseTerm(f.store, "win(b)")).status,
            GoalStatus::kSuccessful);
}

TEST(SessionTest, ClauseVocabularyRoundTrips) {
  Fixture f("p :- not q.\n");
  Result<Session> opened = Session::Open(f.program);
  ASSERT_TRUE(opened.ok());
  Session s = std::move(opened.value());

  TermStore& store = f.store;
  Program delta_prog = MustParseProgram(store, "q :- not p.\n");
  const Clause& rule = delta_prog.clauses()[0];
  ASSERT_TRUE(rule.ground());

  bool changed = false;
  Result<RuleId> id = s.Assert(rule, &changed);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_TRUE(changed);
  // p :- not q and q :- not p: the classic undefined pair.
  EXPECT_EQ(s.Query(MustParseTerm(store, "p")).status,
            GoalStatus::kIndeterminate);
  EXPECT_EQ(s.Query(MustParseTerm(store, "q")).status,
            GoalStatus::kIndeterminate);

  // Content-addressed retraction restores the original model.
  EXPECT_TRUE(s.Retract(rule));
  EXPECT_EQ(s.Query(MustParseTerm(store, "p")).status,
            GoalStatus::kSuccessful);
  EXPECT_FALSE(s.Retract(rule));  // already gone

  // Nonground clauses are rejected: deltas never re-ground.
  Program nonground = MustParseProgram(store, "r(X) :- s(X).\n");
  Result<RuleId> bad = s.Assert(nonground.clauses()[0]);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionTest, DirectModeSnapshotMatchesModel) {
  Fixture f(kMixedProgram);
  Result<Session> opened = Session::Open(f.program);
  ASSERT_TRUE(opened.ok());
  Session s = std::move(opened.value());
  s.Assert(MustParseTerm(f.store, "move(n2, n3)"));

  std::shared_ptr<const serve::Snapshot> snap = s.SnapshotNow();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->seq(), s.solver().stats().deltas);
  for (const Term* atom : ProbeAtoms(f.store)) {
    serve::SnapshotAnswer sa = snap->Query(atom);
    SessionAnswer qa = s.Query(atom);
    EXPECT_EQ(sa.value, qa.value) << f.store.ToString(atom);
    if (qa.value != TruthValue::kUndefined && sa.registered) {
      EXPECT_EQ(sa.true_stage, qa.true_stage);
      EXPECT_EQ(sa.false_stage, qa.false_stage);
    }
  }
}

TEST(SessionTest, TabledEngineIsAThinAdapter) {
  Fixture f(kMixedProgram);
  Result<TabledEngine> eng = TabledEngine::Create(f.program);
  ASSERT_TRUE(eng.ok());
  // The engine's internal Session is the same object its adapters hit.
  Session& inner = eng.value().session();
  EXPECT_FALSE(inner.serving());
  EXPECT_EQ(&inner.solver(), &eng.value().solver());

  const Term* fact = MustParseTerm(f.store, "move(n2, n9)");
  EXPECT_TRUE(inner.Assert(fact));
  EXPECT_FALSE(eng.value().AssertFact(fact));  // already applied via facade
  EXPECT_EQ(eng.value().StatusOf(MustParseTerm(f.store, "win(n2)")),
            inner.Query(MustParseTerm(f.store, "win(n2)")).status);
}

TEST(SessionTest, GlobalSlsEngineExposesItsSession) {
  Fixture f(kMixedProgram);
  GlobalSlsEngine eng(f.program);
  EXPECT_EQ(eng.session(), nullptr);  // oracle builds lazily
  eng.StatusOfRelevant(MustParseTerm(f.store, "p"));
  ASSERT_NE(eng.session(), nullptr);
  EXPECT_FALSE(eng.session()->serving());
}

TEST(SessionTest, AdoptWrapsAnExistingSolver) {
  Fixture f("p :- not q.\n");
  auto solver = std::make_unique<IncrementalSolver>(
      testing::MustGround(f.program), SolverOptions{});
  Session s = Session::Adopt(std::move(solver));
  EXPECT_EQ(s.Query(MustParseTerm(f.store, "p")).status,
            GoalStatus::kSuccessful);
}

}  // namespace
}  // namespace gsls
