// Shutdown and cancellation races for the work-stealing pool and the
// parallel solve path, written to run under the TSan CI job: pool
// teardown right after (and interleaved with) jobs, `Cancel()` raced
// from multiple threads against an in-flight parallel solve, and
// cancel-then-resubmit cycles reusing the same pool.

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "check/audit.h"
#include "solver/incremental.h"
#include "test_support.h"
#include "util/cancel.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "wfs/wfs.h"

namespace gsls {
namespace {

using testing::Fixture;
using testing::MustGround;
using testing::RandomGameProgram;

TEST(ThreadPoolShutdownTest, DestructorWithoutAnyJob) {
  for (int i = 0; i < 8; ++i) {
    WorkStealingPool pool(4);
  }
}

TEST(ThreadPoolShutdownTest, DestructorRightAfterFanOutJob) {
  // The destructor must close the worker barrier cleanly no matter how
  // recently the last task of a pushing job retired.
  for (int round = 0; round < 16; ++round) {
    WorkStealingPool pool(4);
    std::atomic<uint32_t> done{0};
    const uint32_t seeds[] = {0, 1, 2, 3};
    pool.Run(seeds, [&](unsigned worker, uint32_t task) {
      if (task < 4) {
        for (uint32_t child = 0; child < 8; ++child) {
          pool.Push(worker, 100 + 8 * task + child);
        }
      }
      done.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(done.load(), 4u + 32u);
    // Pool destroyed here, immediately after Run returned.
  }
}

TEST(ThreadPoolShutdownTest, SequentialJobsReuseSleepingWorkers) {
  WorkStealingPool pool(4);
  for (int round = 0; round < 32; ++round) {
    std::atomic<uint32_t> done{0};
    const uint32_t seeds[] = {1, 2, 3, 4, 5, 6, 7, 8};
    pool.Run(seeds, [&](unsigned, uint32_t) {
      done.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(done.load(), 8u);
  }
}

// A moderately big mixed-recursion workload so a parallel solve has real
// work for cancellation to land in.
std::string BigGame() {
  Rng rng(20260809);
  return RandomGameProgram(rng, 48, 24);
}

TEST(ParallelCancelTest, CancelRacedFromTwoThreads) {
  // Both racers cancel the same token while the solve runs; whichever
  // checkpoint observes it first latches the one outcome. Depending on
  // timing the solve may also complete first — both endings are legal,
  // and both must leave an audit-clean solver that resumes exactly.
  for (int round = 0; round < 4; ++round) {
    Fixture f(BigGame());
    CancelToken token;
    SolverOptions opts;
    opts.num_threads = 4;
    opts.compute_levels = true;
    opts.cancel = &token;
    IncrementalSolver inc(MustGround(f.program), opts);
    std::thread racer1([&] { token.Cancel(); });
    std::thread racer2([&] { token.Cancel(); });
    const SolveOutcome outcome = inc.Model().outcome;
    racer1.join();
    racer2.join();
    EXPECT_TRUE(outcome == SolveOutcome::kCompleted ||
                outcome == SolveOutcome::kCancelled);
    check::AuditReport mid = check::AuditSolver(inc);
    ASSERT_TRUE(mid.ok()) << mid.ToString();
    token.Reset();
    const WfsModel& resumed = inc.Model();
    ASSERT_EQ(resumed.outcome, SolveOutcome::kCompleted);
    WfsModel fresh = inc.SolveFresh();
    ASSERT_EQ(resumed.model, fresh.model)
        << DescribeModelDifference(inc.program(), resumed.model, fresh.model);
    EXPECT_EQ(resumed.true_stage, fresh.true_stage);
    EXPECT_EQ(resumed.false_stage, fresh.false_stage);
  }
}

TEST(ParallelCancelTest, CancelThenResubmitCycles) {
  // Abort a parallel pass, resume it, dirty the model, abort again —
  // the same pool instance carries every cycle.
  Fixture f(BigGame());
  CancelToken token;
  FaultInjector fault;
  SolverOptions opts;
  opts.num_threads = 4;
  opts.compute_levels = true;
  opts.cancel = &token;
  opts.fault = &fault;
  IncrementalSolver inc(MustGround(f.program), opts);
  const Term* n0 = MustParseTerm(f.store, "move(n0, n1)");
  for (uint64_t cycle = 1; cycle <= 4; ++cycle) {
    fault.Arm(2 * cycle);  // vary the abort point per cycle
    SolveOutcome aborted = inc.Model().outcome;
    if (fault.tripped()) {
      EXPECT_EQ(aborted, SolveOutcome::kCancelled);
    }
    fault.Disarm();
    token.Reset();
    ASSERT_EQ(inc.Model().outcome, SolveOutcome::kCompleted);
    check::AuditReport report = check::AuditSolver(inc);
    ASSERT_TRUE(report.ok()) << report.ToString();
    // Alternate the fact so every cycle has a fresh up-cone to abort.
    if (cycle % 2 == 1) {
      inc.Retract(n0);
    } else {
      inc.Assert(n0);
    }
  }
  token.Reset();
  ASSERT_EQ(inc.Model().outcome, SolveOutcome::kCompleted);
  WfsModel fresh = inc.SolveFresh();
  ASSERT_EQ(inc.Model().model, fresh.model);
}

TEST(ParallelCancelTest, AbortedScheduleDrainsAndPoolStaysUsable) {
  // A pre-cancelled token aborts the very first released component; the
  // ready-release schedule must still drain (no released-but-never-run
  // task may wedge the barrier) and the pool must accept the next job.
  Fixture f(BigGame());
  CancelToken token;
  SolverOptions opts;
  opts.num_threads = 4;
  opts.compute_levels = true;
  opts.cancel = &token;
  IncrementalSolver inc(MustGround(f.program), opts);
  token.Cancel();
  ASSERT_EQ(inc.Model().outcome, SolveOutcome::kCancelled);
  token.Reset();
  ASSERT_EQ(inc.Model().outcome, SolveOutcome::kCompleted);
  ASSERT_EQ(inc.Model().model, inc.SolveFresh().model);
}

}  // namespace
}  // namespace gsls
