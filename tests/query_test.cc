// Goal-directed query mode (`IncrementalSolver::QueryAtom`): down-cone
// restricted solving with per-component memoization. Coverage — cone
// answers agree with the full solve on the paper programs and on hundreds
// of randomized programs at 1/2/4 threads; memo invalidation stays exact
// under interleaved fact/rule deltas and queries (stale-memo regression);
// cone walks stay correct across recondensation windows that merge and
// split components; the TabledEngine/GlobalSlsEngine surfaces match their
// full-solve counterparts.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.h"
#include "core/tabled.h"
#include "solver/incremental.h"
#include "solver/solver.h"
#include "test_support.h"
#include "util/strings.h"
#include "wfs/wfs.h"
#include "workload/generators.h"

namespace gsls {
namespace {

using testing::Fixture;
using testing::MustGround;
using testing::RandomGameProgram;
using testing::RandomPropositionalProgram;

SolverOptions Leveled(unsigned threads = 1) {
  SolverOptions opts;
  opts.num_threads = threads;
  opts.compute_levels = true;
  return opts;
}

/// Queries every atom (highest components first, so each query meets the
/// largest possible memo-cold cone) and checks value + stages against a
/// fresh full solve of the same program state.
void ExpectQueriesMatchFresh(IncrementalSolver& inc,
                             const std::string& context) {
  WfsModel fresh = inc.SolveFresh();
  const bool levels = inc.options().compute_levels;
  for (AtomId i = inc.program().atom_count(); i-- > 0;) {
    IncrementalSolver::QueryAnswer ans = inc.QueryAtom(i);
    ASSERT_EQ(ans.value, fresh.model.Value(i))
        << context << ": atom " << i;
    if (!levels) continue;
    if (ans.value == TruthValue::kTrue) {
      ASSERT_EQ(ans.true_stage, fresh.true_stage[i])
          << context << ": true stage of atom " << i;
    } else if (ans.value == TruthValue::kFalse) {
      ASSERT_EQ(ans.false_stage, fresh.false_stage[i])
          << context << ": false stage of atom " << i;
    }
  }
}

TEST(QueryTest, PaperProgramsAgreeAtAllThreadCounts) {
  const char* sources[] = {workload::VanGelderProgram(),
                           workload::Example32Program()};
  for (const char* src : sources) {
    for (unsigned threads : {1u, 2u, 4u}) {
      Fixture f(src);
      IncrementalSolver inc(MustGround(f.program), Leveled(threads));
      ExpectQueriesMatchFresh(inc, StrCat("paper program, ", threads,
                                          " thread(s)"));
    }
  }
}

TEST(QueryTest, GameFamiliesAgreeAtAllThreadCounts) {
  Rng rng(0xC0DE5u);
  std::string sources[] = {workload::GameChain(40),
                           workload::GameCycleWithTail(9, 12),
                           workload::GameGrid(6, 6),
                           workload::GameForest(rng, 6, 8, 35)};
  for (const std::string& src : sources) {
    for (unsigned threads : {1u, 2u, 4u}) {
      Fixture f(src);
      IncrementalSolver inc(MustGround(f.program), Leveled(threads));
      ExpectQueriesMatchFresh(inc, StrCat("game family, ", threads,
                                          " thread(s)"));
    }
  }
}

// >= 300 randomized programs, each exercised at 1, 2, and 4 threads:
// propositional programs (positive loops, negative loops, mixed
// recursion) and win/move games. Every atom of every program is queried
// goal-directed against a fresh full solve.
TEST(QueryTest, RandomizedAgreement) {
  int program = 0;
  for (uint64_t seed = 1; seed <= 150; ++seed) {
    Rng rng(seed * 2654435761u + 11);
    std::string prop =
        RandomPropositionalProgram(rng, 3 + static_cast<int>(seed % 10),
                                   6 + static_cast<int>(seed % 14), 3);
    std::string game = RandomGameProgram(rng, 4 + static_cast<int>(seed % 6),
                                         35);
    for (const std::string& src : {prop, game}) {
      ++program;
      for (unsigned threads : {1u, 2u, 4u}) {
        Fixture f(src);
        IncrementalSolver inc(MustGround(f.program), Leveled(threads));
        ExpectQueriesMatchFresh(
            inc, StrCat("random program ", program, " seed ", seed, ", ",
                        threads, " thread(s)\n", src));
      }
    }
  }
  EXPECT_GE(program, 300);
}

TEST(QueryTest, ConeIsRestrictedToRelevantSubprogram) {
  // GameChain: win(n_i) :- move(n_i, n_{i+1}), not win(n_{i+1}) — the
  // truth of the *last* node depends on nothing else, so its down-cone
  // must stay O(1) while the program holds hundreds of components.
  Fixture f(workload::GameChain(400));
  IncrementalSolver inc(MustGround(f.program), Leveled());
  const Term* last = MustParseTerm(f.store, "win(n400)");
  IncrementalSolver::QueryAnswer ans = inc.QueryAtom(last);
  EXPECT_EQ(ans.value, TruthValue::kFalse);  // no move out of the end
  EXPECT_GT(ans.cone_components, 0u);
  EXPECT_LE(ans.cone_components, 4u);
  ASSERT_NE(inc.graph(), nullptr);
  EXPECT_GT(inc.graph()->component_count(), 400u);
  EXPECT_EQ(inc.stats().queries, 1u);
  EXPECT_EQ(inc.stats().query_fastpaths, 0u);

  // The first node's cone is the whole chain.
  IncrementalSolver::QueryAnswer root =
      inc.QueryAtom(MustParseTerm(f.store, "win(n1)"));
  EXPECT_GT(root.cone_components, 400u);
}

TEST(QueryTest, RepeatQueriesHitTheMemo) {
  Fixture f(workload::GameChain(64));
  IncrementalSolver inc(MustGround(f.program), Leveled());
  const Term* mid = MustParseTerm(f.store, "win(n32)");
  IncrementalSolver::QueryAnswer cold = inc.QueryAtom(mid);
  EXPECT_GT(cold.resolved_components, 0u);

  IncrementalSolver::QueryAnswer warm = inc.QueryAtom(mid);
  EXPECT_EQ(warm.value, cold.value);
  EXPECT_EQ(warm.resolved_components, 0u);  // every cone member memoized
  EXPECT_EQ(warm.memo_hits, warm.cone_components);
  EXPECT_GT(inc.memo().stats().hits, 0u);

  // After a full Model() everything is valid: queries take the global
  // fast path and do not even walk the cone.
  inc.Model();
  IncrementalSolver::QueryAnswer fast = inc.QueryAtom(mid);
  EXPECT_EQ(fast.value, cold.value);
  EXPECT_EQ(fast.cone_components, 0u);
  EXPECT_GT(inc.stats().query_fastpaths, 0u);
}

// The stale-memo regression: a delta inside the cone must be visible to
// the very next query, with no Model() call in between.
TEST(QueryTest, DeltaInvalidatesMemoizedCone) {
  Fixture f(workload::GameChain(16));
  IncrementalSolver inc(MustGround(f.program), Leveled());
  inc.Model();
  const Term* first = MustParseTerm(f.store, "win(n1)");
  TruthValue before = inc.QueryAtom(first).value;

  // Cutting the chain's last move flips the parity of every node above:
  // the memoized cone of win(n1) is stale from the bottom up.
  ASSERT_TRUE(inc.Retract(MustParseTerm(f.store, "move(n15, n16)")));
  IncrementalSolver::QueryAnswer after = inc.QueryAtom(first);
  EXPECT_NE(after.value, before);
  WfsModel fresh = inc.SolveFresh();
  EXPECT_EQ(after.value,
            fresh.model.Value(*inc.program().FindAtom(first)));
  EXPECT_EQ(after.true_stage,
            fresh.true_stage[*inc.program().FindAtom(first)]);
  ExpectQueriesMatchFresh(inc, "after retract, all atoms");
}

// A delta outside the query's cone must NOT re-solve it — and composes:
// down-cone(query) ∩ dirty is exactly what re-runs.
TEST(QueryTest, DeltaOutsideConeStaysMemoized) {
  // Two independent chains in one program.
  Fixture f(workload::GameChain(24) + "move(m1, m2). move(m2, m3).\n");
  IncrementalSolver inc(MustGround(f.program), Leveled());
  inc.Model();
  // win(m2): m2 -> m3 and m3 has no escape, so m2 is won.
  const Term* m2 = MustParseTerm(f.store, "win(m2)");
  EXPECT_EQ(inc.QueryAtom(m2).value, TruthValue::kTrue);

  // Perturb the n-chain; the m-chain's cone is untouched.
  ASSERT_TRUE(inc.Retract(MustParseTerm(f.store, "move(n23, n24)")));
  IncrementalSolver::QueryAnswer ans = inc.QueryAtom(m2);
  EXPECT_EQ(ans.value, TruthValue::kTrue);
  EXPECT_EQ(ans.resolved_components, 0u);  // dirty ∩ cone = empty
  EXPECT_EQ(ans.memo_hits, ans.cone_components);

  // The n-chain query pays only its own stale suffix.
  ExpectQueriesMatchFresh(inc, "cross-chain isolation");
}

// Queries that change values must leave out-of-cone dependents stale, and
// a later Model() (or wider query) must settle them: the change-pruned
// staleness propagation across passes.
TEST(QueryTest, OutOfConeDependentsSettleLater) {
  Fixture f(workload::GameChain(12));
  IncrementalSolver inc(MustGround(f.program), Leveled());
  inc.Model();
  ASSERT_TRUE(inc.Retract(MustParseTerm(f.store, "move(n11, n12)")));
  // Query deep in the chain: re-solves the changed suffix only; the nodes
  // above n6 are now stale but out of this cone.
  inc.QueryAtom(MustParseTerm(f.store, "win(n6)"));
  // The full model must still come out exact.
  WfsModel fresh = inc.SolveFresh();
  ASSERT_EQ(inc.Model().model, fresh.model)
      << DescribeModelDifference(inc.program(), inc.Model().model,
                                 fresh.model);
  for (AtomId a = 0; a < inc.program().atom_count(); ++a) {
    ASSERT_EQ(inc.Model().true_stage[a], fresh.true_stage[a]) << a;
    ASSERT_EQ(inc.Model().false_stage[a], fresh.false_stage[a]) << a;
  }
}

TEST(QueryTest, InvalidateMemoForcesColdCone) {
  Fixture f(workload::GameChain(32));
  IncrementalSolver inc(MustGround(f.program), Leveled());
  inc.Model();
  const Term* mid = MustParseTerm(f.store, "win(n16)");
  EXPECT_EQ(inc.QueryAtom(mid).cone_components, 0u);  // fast path

  inc.InvalidateMemo();
  IncrementalSolver::QueryAnswer cold = inc.QueryAtom(mid);
  EXPECT_GT(cold.resolved_components, 0u);
  EXPECT_EQ(cold.resolved_components, cold.cone_components);

  // Model() after the drop is a full from-scratch solve and is exact.
  WfsModel fresh = inc.SolveFresh();
  EXPECT_EQ(inc.Model().model, fresh.model);
}

TEST(QueryTest, UnregisteredAtomIsFalse) {
  Fixture f("a. b :- not a.");
  IncrementalSolver inc(MustGround(f.program), Leveled());
  IncrementalSolver::QueryAnswer ans =
      inc.QueryAtom(MustParseTerm(f.store, "zzz"));
  EXPECT_EQ(ans.value, TruthValue::kFalse);
  EXPECT_EQ(ans.false_stage, 1u);
  EXPECT_EQ(ans.cone_components, 0u);
}

// Rule deltas that re-condense — merging components (a new cycle-closing
// edge) and splitting one (retracting the rule that held it together) —
// while a populated memo's ids must translate through each window.
TEST(QueryTest, ConeWalkAfterMergeAndSplit) {
  Fixture f("a. b :- a. c :- b, not d. d :- not c. e :- c.");
  IncrementalSolver inc(MustGround(f.program), Leveled());
  // Populate the memo goal-directed (no full solve).
  ExpectQueriesMatchFresh(inc, "before deltas");

  // Merge: b :- e closes a cycle b -> c -> e -> b through negation.
  const Term* b = MustParseTerm(f.store, "b");
  const Term* e = MustParseTerm(f.store, "e");
  std::vector<const Term*> pos = {e};
  std::vector<const Term*> neg;
  bool changed = false;
  RuleId merge_rule = inc.AssertRule(b, pos, neg, &changed);
  ASSERT_TRUE(changed);
  ExpectQueriesMatchFresh(inc, "after merge");

  // Split: retracting it breaks the component apart again.
  ASSERT_TRUE(inc.RetractRule(merge_rule));
  ExpectQueriesMatchFresh(inc, "after split");
}

// Randomized interleavings of fact deltas, rule deltas (merges/splits),
// goal-directed queries, and occasional full solves, checked against a
// fresh solve at every step — at 1, 2, and 4 threads.
TEST(QueryTest, InterleavedDeltasAndQueriesAgree) {
  for (unsigned threads : {1u, 2u, 4u}) {
    for (uint64_t seed = 1; seed <= 12; ++seed) {
      Rng rng(seed * 7919 + threads);
      std::string src = RandomPropositionalProgram(
          rng, 8 + static_cast<int>(seed % 5), 16, 3);
      Fixture f(src);
      IncrementalSolver inc(MustGround(f.program), Leveled(threads));
      const auto atom = [&](int i) {
        return MustParseTerm(f.store, StrCat("p", i));
      };
      const int npreds = 8 + static_cast<int>(seed % 5);
      std::vector<RuleId> asserted;
      for (int step = 0; step < 60; ++step) {
        std::string context = StrCat("seed ", seed, " threads ", threads,
                                     " step ", step, "\n", src);
        switch (rng.UniformInt(0, 5)) {
          case 0:
            inc.Assert(atom(rng.UniformInt(0, npreds - 1)));
            break;
          case 1:
            inc.Retract(atom(rng.UniformInt(0, npreds - 1)));
            break;
          case 2: {  // random binary rule: may merge components
            const Term* head = atom(rng.UniformInt(0, npreds - 1));
            std::vector<const Term*> pos;
            std::vector<const Term*> neg;
            (rng.Chance(1, 2) ? pos : neg)
                .push_back(atom(rng.UniformInt(0, npreds - 1)));
            bool changed = false;
            RuleId r = inc.AssertRule(head, pos, neg, &changed);
            if (changed) asserted.push_back(r);
            break;
          }
          case 3:  // retract an asserted rule: may split its component
            if (!asserted.empty()) {
              size_t i = static_cast<size_t>(
                  rng.UniformInt(0, static_cast<int>(asserted.size()) - 1));
              inc.RetractRule(asserted[i]);
              asserted.erase(asserted.begin() + static_cast<long>(i));
            }
            break;
          case 4: {  // goal-directed point query
            const Term* q = atom(rng.UniformInt(0, npreds - 1));
            IncrementalSolver::QueryAnswer ans = inc.QueryAtom(q);
            WfsModel fresh = inc.SolveFresh();
            std::optional<AtomId> id = inc.program().FindAtom(q);
            TruthValue want = id.has_value() ? fresh.model.Value(*id)
                                             : TruthValue::kFalse;
            ASSERT_EQ(ans.value, want) << context;
            if (id.has_value() && ans.value == TruthValue::kTrue) {
              ASSERT_EQ(ans.true_stage, fresh.true_stage[*id]) << context;
            }
            if (id.has_value() && ans.value == TruthValue::kFalse) {
              ASSERT_EQ(ans.false_stage, fresh.false_stage[*id]) << context;
            }
            break;
          }
          case 5: {  // full model between queries must also stay exact
            WfsModel fresh = inc.SolveFresh();
            ASSERT_EQ(inc.Model().model, fresh.model)
                << context << "\n"
                << DescribeModelDifference(inc.program(), inc.Model().model,
                                           fresh.model);
            break;
          }
        }
      }
      ExpectQueriesMatchFresh(inc, StrCat("final state, seed ", seed,
                                          " threads ", threads));
    }
  }
}

TEST(QueryTest, TabledEngineSolveRelevant) {
  Fixture f(workload::GameChain(48));
  TabledOptions opts;
  Result<TabledEngine> engine = TabledEngine::Create(f.program, opts);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  TabledEngine& eng = engine.value();

  const Term* last = MustParseTerm(f.store, "win(n48)");
  TabledEngine::RelevantAnswer rel = eng.SolveRelevant(last);
  EXPECT_EQ(rel.status, GoalStatus::kFailed);
  EXPECT_LE(rel.query.cone_components, 4u);  // goal-directed, not full
  ASSERT_TRUE(rel.level.has_value());

  // Status and level match the full-solve surfaces, here and after a
  // delta that flips the whole chain.
  EXPECT_EQ(rel.status, eng.StatusOf(last));
  EXPECT_EQ(*rel.level, *eng.LevelOf(last));
  ASSERT_TRUE(eng.RetractFact(MustParseTerm(f.store, "move(n47, n48)")));
  for (const char* q : {"win(n1)", "win(n24)", "win(n47)", "win(n48)"}) {
    const Term* t = MustParseTerm(f.store, q);
    TabledEngine::RelevantAnswer a = eng.SolveRelevant(t);
    EXPECT_EQ(a.status, eng.StatusOf(t)) << q;
    if (a.level.has_value()) {
      ASSERT_TRUE(eng.LevelOf(t).has_value()) << q;
      EXPECT_EQ(*a.level, *eng.LevelOf(t)) << q;
    }
  }

  // Outside the relevant instantiation: failed at level 1.
  TabledEngine::RelevantAnswer none =
      eng.SolveRelevant(MustParseTerm(f.store, "win(nowhere)"));
  EXPECT_EQ(none.status, GoalStatus::kFailed);
  EXPECT_EQ(*none.level, Ordinal::Finite(1));
  EXPECT_GT(eng.solver().stats().queries, 0u);
}

TEST(QueryTest, GlobalSlsEngineStatusOfRelevant) {
  Fixture f(workload::GameChain(32));
  GlobalSlsEngine relevant(f.program);
  GlobalSlsEngine full(f.program);
  for (const char* q : {"win(n1)", "win(n16)", "win(n31)", "win(n32)"}) {
    const Term* t = MustParseTerm(f.store, q);
    EXPECT_EQ(relevant.StatusOfRelevant(t), full.StatusOf(t)) << q;
  }
  // The relevance path must have used the oracle's query mode, not the
  // full memo seed.
  ASSERT_NE(relevant.oracle_solver(), nullptr);
  EXPECT_GT(relevant.oracle_solver()->stats().queries, 0u);
  EXPECT_EQ(relevant.oracle_solver()->stats().full_solves, 0u);

  // Counterexample rules disable the oracle: the relevance path falls
  // back to the plain search and still answers.
  EngineOptions copts;
  copts.selection = SelectionMode::kNegativesFirst;
  Fixture g("a. b :- not a.");
  GlobalSlsEngine fallback(g.program, copts);
  EXPECT_EQ(fallback.StatusOfRelevant(MustParseTerm(g.store, "a")),
            GoalStatus::kSuccessful);
}

}  // namespace
}  // namespace gsls
