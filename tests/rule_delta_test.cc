// Rule-level incremental deltas: AssertRule/RetractRule with localized
// recondensation (analysis/dynamic_condensation.h). Structural coverage —
// a retraction that splits the component holding a negative loop, an
// assertion that merges previously independent SCCs, undefined flips when
// the sole loop-breaking rule goes away — plus randomized rule-churn
// sequences checked delta-for-delta against a fresh masked solve, an
// independent alternating-fixpoint rebuild, and the V_P stage oracle, at
// one and several threads.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.h"
#include "core/tabled.h"
#include "solver/incremental.h"
#include "solver/solver.h"
#include "test_support.h"
#include "wfs/wfs.h"
#include "workload/generators.h"

namespace gsls {
namespace {

using testing::Fixture;
using testing::MustGround;
using testing::RandomPropositionalProgram;

/// Independent reference: a fresh `GroundProgram` holding exactly the
/// enabled rules, with atoms interned in the same order so ids compare.
GroundProgram RebuildEnabled(const IncrementalSolver& inc, TermStore& store) {
  const GroundProgram& gp = inc.program();
  GroundProgram out(&store);
  for (AtomId a = 0; a < gp.atom_count(); ++a) out.InternAtom(gp.AtomTerm(a));
  for (RuleId r = 0; r < gp.rule_count(); ++r) {
    if (inc.RuleEnabled(r)) out.AddRule(gp.rules()[r]);
  }
  return out;
}

/// After-every-delta invariant: values against the fresh masked solve and
/// the alternating-fixpoint reference; stage levels (when computed)
/// against both the fresh solve and the quadratic V_P oracle.
void ExpectAgreesEverywhere(IncrementalSolver& inc, TermStore& store,
                            const std::string& context) {
  const WfsModel& incremental = inc.Model();
  WfsModel fresh = inc.SolveFresh();
  ASSERT_EQ(incremental.model, fresh.model)
      << context << "\nincremental vs fresh SolveWfs diff:\n"
      << DescribeModelDifference(inc.program(), incremental.model,
                                 fresh.model);
  GroundProgram rebuilt = RebuildEnabled(inc, store);
  WfsModel reference = ComputeWfsAlternating(rebuilt);
  ASSERT_EQ(incremental.model, reference.model)
      << context << "\nincremental vs alternating-fixpoint reference diff:\n"
      << DescribeModelDifference(inc.program(), incremental.model,
                                 reference.model);
  if (!inc.options().compute_levels) return;
  ASSERT_TRUE(incremental.has_levels) << context;
  WfsStages oracle = ComputeWfsStages(rebuilt);
  for (AtomId a = 0; a < inc.program().atom_count(); ++a) {
    ASSERT_EQ(incremental.true_stage[a], fresh.true_stage[a])
        << context << ": true stage of atom " << a << " vs fresh";
    ASSERT_EQ(incremental.false_stage[a], fresh.false_stage[a])
        << context << ": false stage of atom " << a << " vs fresh";
    ASSERT_EQ(incremental.true_stage[a], oracle.true_stage[a])
        << context << ": true stage of atom " << a << " vs V_P oracle";
    ASSERT_EQ(incremental.false_stage[a], oracle.false_stage[a])
        << context << ": false stage of atom " << a << " vs V_P oracle";
  }
}

TruthValue ValueOf(IncrementalSolver& inc, TermStore& store,
                   std::string_view atom_src) {
  return inc.ValueOf(MustParseTerm(store, atom_src));
}

/// Finds the id of the enabled ground instance `head :- pos, not neg.`
RuleId MustFindRule(const IncrementalSolver& inc, TermStore& store,
                    std::string_view head,
                    const std::vector<std::string>& pos,
                    const std::vector<std::string>& neg) {
  const GroundProgram& gp = inc.program();
  GroundRule want;
  want.head = *gp.FindAtom(MustParseTerm(store, head));
  for (const auto& s : pos) {
    want.pos.push_back(*gp.FindAtom(MustParseTerm(store, s)));
  }
  for (const auto& s : neg) {
    want.neg.push_back(*gp.FindAtom(MustParseTerm(store, s)));
  }
  std::sort(want.pos.begin(), want.pos.end());
  std::sort(want.neg.begin(), want.neg.end());
  for (RuleId r = 0; r < gp.rule_count(); ++r) {
    const GroundRule& rule = gp.rules()[r];
    if (rule.head == want.head && rule.pos == want.pos &&
        rule.neg == want.neg) {
      return r;
    }
  }
  ADD_FAILURE() << "rule not found";
  return 0;
}

SolverOptions Leveled(unsigned threads = 1) {
  SolverOptions opts;
  opts.num_threads = threads;
  opts.compute_levels = true;
  return opts;
}

TEST(RuleDeltaTest, AssertAndRetractRuleRoundTrip) {
  Fixture f("a. b :- a.");
  IncrementalSolver inc(MustGround(f.program), Leveled());
  inc.Model();

  const Term* c = MustParseTerm(f.store, "c");
  const Term* a = MustParseTerm(f.store, "a");
  const Term* d = MustParseTerm(f.store, "d");
  std::vector<const Term*> pos = {a};
  std::vector<const Term*> neg = {d};
  bool changed = false;
  RuleId id = inc.AssertRule(c, pos, neg, &changed);
  EXPECT_TRUE(changed);
  EXPECT_EQ(inc.ValueOf(c), TruthValue::kTrue);  // a true, d unregistered
  ExpectAgreesEverywhere(inc, f.store, "assert c :- a, not d");

  // The identical rule is deduplicated and already enabled.
  RuleId again = inc.AssertRule(c, pos, neg, &changed);
  EXPECT_EQ(id, again);
  EXPECT_FALSE(changed);

  ASSERT_TRUE(inc.RetractRule(id));
  EXPECT_EQ(inc.ValueOf(c), TruthValue::kFalse);
  EXPECT_FALSE(inc.RetractRule(id));  // already retracted
  ExpectAgreesEverywhere(inc, f.store, "retract c :- a, not d");

  // Re-assert re-enables the same id.
  EXPECT_EQ(inc.AssertRule(c, pos, neg, &changed), id);
  EXPECT_TRUE(changed);
  EXPECT_EQ(inc.ValueOf(c), TruthValue::kTrue);
  ExpectAgreesEverywhere(inc, f.store, "re-assert c :- a, not d");
}

TEST(RuleDeltaTest, UnitAssertRuleTakesFactPath) {
  Fixture f("p :- not q.");
  IncrementalSolver inc(MustGround(f.program));
  inc.Model();
  const Term* q = MustParseTerm(f.store, "q");
  bool changed = false;
  RuleId id = inc.AssertRule(q, {}, {}, &changed);
  EXPECT_TRUE(changed);
  EXPECT_TRUE(inc.HasFact(*inc.program().FindAtom(q)));
  EXPECT_EQ(ValueOf(inc, f.store, "p"), TruthValue::kFalse);
  ASSERT_TRUE(inc.RetractRule(id));
  EXPECT_EQ(ValueOf(inc, f.store, "p"), TruthValue::kTrue);
}

// Retracting one game rule of a 3-cycle breaks the strongly connected
// win-component: it must split into singletons and the previously drawn
// (undefined) positions become determined — and the reverse assert merges
// the independent SCCs back and flips them to undefined again. Checked
// against fresh leveled solves throughout.
TEST(RuleDeltaTest, CycleRuleRetractSplitsAssertMergesComponents) {
  Fixture f(
      "win(X) :- move(X, Y), not win(Y).\n"
      "move(c1, c2). move(c2, c3). move(c3, c1).\n");
  IncrementalSolver inc(MustGround(f.program), Leveled());
  inc.Model();
  EXPECT_EQ(ValueOf(inc, f.store, "win(c1)"), TruthValue::kUndefined);
  EXPECT_EQ(ValueOf(inc, f.store, "win(c2)"), TruthValue::kUndefined);
  EXPECT_EQ(ValueOf(inc, f.store, "win(c3)"), TruthValue::kUndefined);
  ASSERT_NE(inc.graph(), nullptr);
  uint32_t comps_cycle = inc.graph()->component_count();

  RuleId r = MustFindRule(inc, f.store, "win(c1)", {"move(c1, c2)"},
                          {"win(c2)"});
  ASSERT_TRUE(inc.RetractRule(r));
  // win(c1) lost its only rule: false. The cycle unwinds behind it.
  EXPECT_EQ(ValueOf(inc, f.store, "win(c1)"), TruthValue::kFalse);
  EXPECT_EQ(ValueOf(inc, f.store, "win(c3)"), TruthValue::kTrue);
  EXPECT_EQ(ValueOf(inc, f.store, "win(c2)"), TruthValue::kFalse);
  ExpectAgreesEverywhere(inc, f.store, "cycle rule retracted");
  // The 3-atom SCC fell apart into singletons: two more components.
  EXPECT_EQ(inc.graph()->component_count(), comps_cycle + 2);
  ASSERT_NE(inc.condensation_stats(), nullptr);
  EXPECT_GE(inc.condensation_stats()->splits, 1u);

  // Re-asserting the rule merges the previously independent SCCs back
  // into one cycle component; the positions flip back to undefined.
  bool changed = false;
  EXPECT_EQ(inc.AssertRule(inc.program().rules()[r], &changed), r);
  EXPECT_TRUE(changed);
  EXPECT_EQ(ValueOf(inc, f.store, "win(c1)"), TruthValue::kUndefined);
  EXPECT_EQ(ValueOf(inc, f.store, "win(c2)"), TruthValue::kUndefined);
  EXPECT_EQ(ValueOf(inc, f.store, "win(c3)"), TruthValue::kUndefined);
  ExpectAgreesEverywhere(inc, f.store, "cycle rule re-asserted");
  EXPECT_EQ(inc.graph()->component_count(), comps_cycle);
  EXPECT_GE(inc.condensation_stats()->merges, 1u);
}

// The sole rule that breaks a negative loop: q's escape through r keeps
// the p/q loop determined; retracting it flips both loop atoms back to
// undefined (no fact delta can do this — the rule is not a unit).
TEST(RuleDeltaTest, RetractingSoleLoopBreakerFlipsToUndefined) {
  Fixture f("p :- not q. q :- not p. q :- r. r.");
  IncrementalSolver inc(MustGround(f.program), Leveled());
  inc.Model();
  EXPECT_EQ(ValueOf(inc, f.store, "q"), TruthValue::kTrue);
  EXPECT_EQ(ValueOf(inc, f.store, "p"), TruthValue::kFalse);

  RuleId r = MustFindRule(inc, f.store, "q", {"r"}, {});
  ASSERT_TRUE(inc.RetractRule(r));
  EXPECT_EQ(ValueOf(inc, f.store, "p"), TruthValue::kUndefined);
  EXPECT_EQ(ValueOf(inc, f.store, "q"), TruthValue::kUndefined);
  EXPECT_EQ(ValueOf(inc, f.store, "r"), TruthValue::kTrue);
  ExpectAgreesEverywhere(inc, f.store, "loop breaker retracted");

  ASSERT_TRUE(inc.AssertRule(inc.program().rules()[r]) == r);
  EXPECT_EQ(ValueOf(inc, f.store, "q"), TruthValue::kTrue);
  ExpectAgreesEverywhere(inc, f.store, "loop breaker restored");
}

// Two independent negative loops; two rule asserts close a cycle through
// both, merging the two SCCs into one four-atom component.
TEST(RuleDeltaTest, AssertRuleMergesIndependentSccs) {
  Fixture f("a :- not b. b :- not a. c :- not d. d :- not c. seed.");
  IncrementalSolver inc(MustGround(f.program), Leveled());
  inc.Model();
  uint32_t comps_before = inc.graph()->component_count();

  const Term* a = MustParseTerm(f.store, "a");
  const Term* b = MustParseTerm(f.store, "b");
  const Term* c = MustParseTerm(f.store, "c");
  const Term* d = MustParseTerm(f.store, "d");
  std::vector<const Term*> body_c = {c};
  inc.AssertRule(b, body_c, {});  // b :- c.  (one direction: still a DAG)
  ExpectAgreesEverywhere(inc, f.store, "bridge b :- c");
  EXPECT_EQ(inc.graph()->component_count(), comps_before);

  std::vector<const Term*> body_a = {a};
  inc.AssertRule(d, body_a, {});  // d :- a.  closes the cross-loop cycle
  ExpectAgreesEverywhere(inc, f.store, "bridge d :- a merges SCCs");
  EXPECT_EQ(inc.graph()->component_count(), comps_before - 1);
  EXPECT_GE(inc.condensation_stats()->merges, 1u);
  uint32_t merged = inc.graph()->ComponentOf(*inc.program().FindAtom(a));
  EXPECT_EQ(inc.graph()->ComponentOf(*inc.program().FindAtom(b)), merged);
  EXPECT_EQ(inc.graph()->ComponentOf(*inc.program().FindAtom(c)), merged);
  EXPECT_EQ(inc.graph()->ComponentOf(*inc.program().FindAtom(d)), merged);
  EXPECT_TRUE(inc.graph()->HasInternalNegation(merged));
}

TEST(RuleDeltaTest, AssertRuleOverBrandNewAtoms) {
  Fixture f("base.");
  IncrementalSolver inc(MustGround(f.program), Leveled());
  inc.Model();
  // head and body atoms all new: appended singletons, then repaired.
  const Term* x = MustParseTerm(f.store, "x");
  const Term* y = MustParseTerm(f.store, "y");
  const Term* base = MustParseTerm(f.store, "base");
  std::vector<const Term*> pos = {base};
  std::vector<const Term*> negy = {y};
  inc.AssertRule(x, pos, negy);  // x :- base, not y.
  EXPECT_EQ(inc.ValueOf(x), TruthValue::kTrue);
  EXPECT_EQ(inc.ValueOf(y), TruthValue::kFalse);
  ExpectAgreesEverywhere(inc, f.store, "rule over new atoms");
  // Close a brand-new negative loop over x/y.
  std::vector<const Term*> negx = {x};
  inc.AssertRule(y, pos, negx);  // y :- base, not x.
  EXPECT_EQ(inc.ValueOf(x), TruthValue::kUndefined);
  EXPECT_EQ(inc.ValueOf(y), TruthValue::kUndefined);
  ExpectAgreesEverywhere(inc, f.store, "new-atom negative loop");
}

/// One randomized churn sequence: toggles random program rules and
/// asserts/retracts random synthetic rules over the existing atom pool,
/// checking full agreement after every delta.
void RunChurnSequence(uint64_t seed, unsigned threads) {
  Rng rng(seed);
  Fixture f(RandomPropositionalProgram(rng, 10, 16, 3));
  IncrementalSolver inc(MustGround(f.program), Leveled(threads));
  inc.Model();
  const size_t n = inc.program().atom_count();
  if (n == 0) return;

  // Synthetic delta pool: random rules over the registered atoms.
  std::vector<GroundRule> pool;
  for (int i = 0; i < 8; ++i) {
    GroundRule r;
    r.head = static_cast<AtomId>(rng.Uniform(n));
    int body = rng.UniformInt(1, 3);
    for (int b = 0; b < body; ++b) {
      AtomId atom = static_cast<AtomId>(rng.Uniform(n));
      if (rng.Chance(2, 5)) {
        r.neg.push_back(atom);
      } else {
        r.pos.push_back(atom);
      }
    }
    pool.push_back(std::move(r));
  }

  for (int d = 0; d < 24; ++d) {
    std::string context;
    if (rng.Chance(1, 2) && inc.program().rule_count() > 0) {
      RuleId r = static_cast<RuleId>(rng.Uniform(inc.program().rule_count()));
      if (inc.RuleEnabled(r)) {
        inc.RetractRule(r);
        context = StrCat("seed ", seed, " delta ", d, ": retract rule ", r);
      } else {
        inc.AssertRule(inc.program().rules()[r]);
        context = StrCat("seed ", seed, " delta ", d, ": re-assert rule ", r);
      }
    } else {
      const GroundRule& r = pool[rng.Uniform(pool.size())];
      inc.AssertRule(r);
      context = StrCat("seed ", seed, " delta ", d, ": assert pool rule");
    }
    ExpectAgreesEverywhere(inc, f.store, context);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(RuleDeltaTest, RandomizedRuleChurnAgreesEverywhere) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    RunChurnSequence(seed, /*threads=*/1);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(RuleDeltaTest, RandomizedRuleChurnAgreesEverywhereThreaded) {
  for (uint64_t seed = 100; seed <= 112; ++seed) {
    RunChurnSequence(seed, /*threads=*/2);
    if (::testing::Test::HasFatalFailure()) return;
    RunChurnSequence(seed + 1000, /*threads=*/4);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// Threaded and sequential instances fed the identical delta stream must
// produce identical models and levels at every step.
TEST(RuleDeltaTest, ThreadedChurnMatchesSequentialDeltaForDelta) {
  for (uint64_t seed = 7; seed <= 13; ++seed) {
    Rng gen(seed);
    std::string src = RandomPropositionalProgram(gen, 12, 20, 3);
    Fixture fa(src);
    Fixture fb(src);
    IncrementalSolver seq(MustGround(fa.program), Leveled(1));
    IncrementalSolver par(MustGround(fb.program), Leveled(4));
    seq.Model();
    par.Model();
    const size_t n = seq.program().atom_count();
    Rng rng(seed * 77 + 3);
    for (int d = 0; d < 20; ++d) {
      if (rng.Chance(1, 2) && seq.program().rule_count() > 0) {
        RuleId r =
            static_cast<RuleId>(rng.Uniform(seq.program().rule_count()));
        if (seq.RuleEnabled(r)) {
          seq.RetractRule(r);
          par.RetractRule(r);
        } else {
          seq.AssertRule(seq.program().rules()[r]);
          par.AssertRule(seq.program().rules()[r]);
        }
      } else {
        GroundRule r;
        r.head = static_cast<AtomId>(rng.Uniform(n));
        r.pos.push_back(static_cast<AtomId>(rng.Uniform(n)));
        r.neg.push_back(static_cast<AtomId>(rng.Uniform(n)));
        seq.AssertRule(r);
        par.AssertRule(r);
      }
      const WfsModel& ms = seq.Model();
      const WfsModel& mp = par.Model();
      ASSERT_EQ(ms.model, mp.model)
          << "seed " << seed << " delta " << d << ":\n"
          << DescribeModelDifference(seq.program(), ms.model, mp.model);
      ASSERT_EQ(ms.true_stage, mp.true_stage) << "seed " << seed;
      ASSERT_EQ(ms.false_stage, mp.false_stage) << "seed " << seed;
    }
  }
}

TEST(RuleDeltaTest, TabledEngineRuleDeltas) {
  Fixture f("p :- not q. q :- not p. q :- r. r.");
  TabledOptions opts;
  Result<TabledEngine> engine = TabledEngine::Create(f.program, opts);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  TabledEngine& e = engine.value();
  const Term* p = MustParseTerm(f.store, "p");
  const Term* q = MustParseTerm(f.store, "q");
  EXPECT_EQ(e.ValueOf(q), TruthValue::kTrue);
  EXPECT_EQ(e.ValueOf(p), TruthValue::kFalse);

  // Nonground clauses are rejected.
  Program nonground = MustParseProgram(f.store, "s(X) :- t(X).");
  EXPECT_FALSE(e.AssertRule(nonground.clauses()[0]).ok());

  // Retract the loop breaker through the engine; levels must follow.
  RuleId r = MustFindRule(e.solver(), f.store, "q", {"r"}, {});
  ASSERT_TRUE(e.RetractRule(r));
  EXPECT_EQ(e.ValueOf(p), TruthValue::kUndefined);
  EXPECT_EQ(e.ValueOf(q), TruthValue::kUndefined);
  EXPECT_FALSE(e.LevelOf(p).has_value());

  // Assert a ground clause making p win outright.
  Program ground = MustParseProgram(f.store, "p :- r.");
  Result<RuleId> added = e.AssertRule(ground.clauses()[0]);
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_EQ(e.ValueOf(p), TruthValue::kTrue);
  EXPECT_EQ(e.ValueOf(q), TruthValue::kFalse);
  ASSERT_TRUE(e.LevelOf(p).has_value());
  // p rides r's stage: positive edges carry stages unchanged (Def. 2.4).
  EXPECT_EQ(e.LevelOf(p)->FiniteValue(), 1u);
  ASSERT_TRUE(e.RetractRule(added.value()));
  EXPECT_EQ(e.ValueOf(p), TruthValue::kUndefined);
}

TEST(RuleDeltaTest, GlobalSlsEngineOracleRuleDeltas) {
  Fixture f("p :- not q. q :- not p. q :- r. r.");
  GlobalSlsEngine engine(f.program);
  const Term* p = MustParseTerm(f.store, "p");
  const Term* q = MustParseTerm(f.store, "q");
  EXPECT_EQ(engine.StatusOf(q), GoalStatus::kSuccessful);
  EXPECT_EQ(engine.StatusOf(p), GoalStatus::kFailed);

  // p :- r derives p outright; q keeps its own escape through r, so both
  // goals now succeed (the negative loop is fully defeated).
  Program ground = MustParseProgram(f.store, "p :- r.");
  Result<RuleId> added = engine.AssertRule(ground.clauses()[0]);
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_EQ(engine.StatusOf(p), GoalStatus::kSuccessful);
  EXPECT_EQ(engine.StatusOf(q), GoalStatus::kSuccessful);

  // Retraction is content-addressed (survives oracle rebuilds).
  ASSERT_TRUE(engine.RetractRule(ground.clauses()[0]));
  EXPECT_EQ(engine.StatusOf(p), GoalStatus::kFailed);
  EXPECT_EQ(engine.StatusOf(q), GoalStatus::kSuccessful);
  EXPECT_FALSE(engine.RetractRule(ground.clauses()[0]));  // already gone

  Program nonground = MustParseProgram(f.store, "s(X) :- t(X).");
  EXPECT_FALSE(engine.AssertRule(nonground.clauses()[0]).ok());
}

// Rule deltas survive a wholesale oracle rebuild: growing the clause base
// (AddClause + ClearMemo) re-grounds the oracle, and the logged deltas
// replay onto the new instance instead of being silently dropped.
TEST(RuleDeltaTest, GlobalSlsEngineRuleDeltasSurviveOracleRebuild) {
  Fixture f("p :- not q. q :- not p. q :- r. r.");
  GlobalSlsEngine engine(f.program);
  const Term* p = MustParseTerm(f.store, "p");
  EXPECT_EQ(engine.StatusOf(p), GoalStatus::kFailed);

  Program deltas = MustParseProgram(f.store, "p :- r.\nq :- r.");
  ASSERT_TRUE(engine.AssertRule(deltas.clauses()[0]).ok());  // p :- r.
  EXPECT_EQ(engine.StatusOf(p), GoalStatus::kSuccessful);
  ASSERT_TRUE(engine.RetractRule(f.program.clauses()[2]));  // q :- r.
  EXPECT_EQ(engine.StatusOf(MustParseTerm(f.store, "q")),
            GoalStatus::kFailed);

  // Grow the clause base: the next query rebuilds the oracle and must
  // replay both the assert and the retract.
  f.program.AddClause(MustParseProgram(f.store, "s :- r.").clauses()[0]);
  engine.ClearMemo();
  EXPECT_EQ(engine.StatusOf(MustParseTerm(f.store, "s")),
            GoalStatus::kSuccessful);
  EXPECT_EQ(engine.StatusOf(p), GoalStatus::kSuccessful);  // replayed
  EXPECT_EQ(engine.StatusOf(MustParseTerm(f.store, "q")),
            GoalStatus::kFailed);  // replayed retract of q :- r
}

// A clause-base edit that takes the program out of the oracle's domain
// (here: a function-symbol clause) must discard the previously built
// oracle — a stale model must never seed the memo.
TEST(RuleDeltaTest, StaleOracleDiscardedWhenProgramLeavesItsDomain) {
  Fixture f("q :- not r.");
  GlobalSlsEngine engine(f.program);
  EXPECT_EQ(engine.StatusOf(MustParseTerm(f.store, "q")),
            GoalStatus::kSuccessful);  // oracle built and memo seeded

  f.program.AddClause(MustParseProgram(f.store, "r.").clauses()[0]);
  f.program.AddClause(
      MustParseProgram(f.store, "deep(f(f(a))).").clauses()[0]);
  engine.ClearMemo();
  // Plain search must now see the updated program, not the stale model.
  EXPECT_EQ(engine.StatusOf(MustParseTerm(f.store, "r")),
            GoalStatus::kSuccessful);
  EXPECT_EQ(engine.StatusOf(MustParseTerm(f.store, "q")),
            GoalStatus::kFailed);
}

// Order-respecting rule deltas must never pay a recondensation window —
// the localized repair's fast path is the common production shape.
TEST(RuleDeltaTest, DescendingDeltasSkipRecondensation) {
  Fixture f(workload::GameChain(64));
  IncrementalSolver inc(MustGround(f.program), Leveled());
  inc.Model();
  RuleId r = MustFindRule(inc, f.store, "win(n10)", {"move(n10, n11)"},
                          {"win(n11)"});
  ASSERT_TRUE(inc.RetractRule(r));
  ExpectAgreesEverywhere(inc, f.store, "chain rule retract");
  ASSERT_TRUE(inc.AssertRule(inc.program().rules()[r]) == r);
  ExpectAgreesEverywhere(inc, f.store, "chain rule re-assert");
  ASSERT_NE(inc.condensation_stats(), nullptr);
  EXPECT_EQ(inc.condensation_stats()->windows, 0u);
  EXPECT_EQ(inc.stats().rule_deltas, 2u);
}

}  // namespace
}  // namespace gsls
