// The headline validation: global SLS-resolution agrees with the
// well-founded semantics (soundness, Thm. 5.4; completeness, Thm. 6.2;
// ground status correspondence, Thm. 4.7), across randomized program
// families and both engines.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <unordered_set>

#include "analysis/dependency_graph.h"
#include "core/engine.h"
#include "core/tabled.h"
#include "test_support.h"
#include "wfs/wfs.h"

namespace gsls {
namespace {

using testing::Fixture;

GoalStatus ExpectedStatus(TruthValue v) {
  switch (v) {
    case TruthValue::kTrue: return GoalStatus::kSuccessful;
    case TruthValue::kFalse: return GoalStatus::kFailed;
    case TruthValue::kUndefined: return GoalStatus::kIndeterminate;
  }
  return GoalStatus::kUnknown;
}

/// Checks every registered ground atom of `f.program` against the
/// bottom-up well-founded model, with both the search engine and the
/// tabled engine. When `allow_search_unknown` is set, the (non-effective,
/// Sec. 7) search procedure may report honest budget exhaustion; a *wrong*
/// determination is still an error, and the memoing engine must always be
/// exact.
void CheckAllAtoms(Fixture& f, const std::string& src,
                   bool allow_search_unknown = false,
                   size_t search_budget = 2'000'000) {
  GroundProgram gp = testing::MustGround(f.program);
  WfsModel wfs = ComputeWfs(gp);
  EngineOptions opts;
  opts.max_work = search_budget;
  GlobalSlsEngine search(f.program, opts);
  Result<TabledEngine> tabled = TabledEngine::Create(f.program);
  ASSERT_TRUE(tabled.ok());
  for (AtomId a = 0; a < gp.atom_count(); ++a) {
    const Term* atom = gp.AtomTerm(a);
    GoalStatus expected = ExpectedStatus(wfs.model.Value(a));
    GoalStatus got = search.StatusOf(atom);
    if (!(allow_search_unknown && got == GoalStatus::kUnknown)) {
      EXPECT_EQ(got, expected)
          << "search engine disagrees on " << f.store.ToString(atom)
          << " in\n" << src;
    }
    EXPECT_EQ(tabled->StatusOf(atom), expected)
        << "tabled engine disagrees on " << f.store.ToString(atom)
        << " in\n" << src;
  }
}

TEST(AgreementTest, RandomPropositionalPrograms) {
  Rng rng(0xFEEDu);
  for (int trial = 0; trial < 150; ++trial) {
    std::string src =
        testing::RandomPropositionalProgram(rng, /*num_preds=*/6,
                                            /*num_rules=*/10, /*max_body=*/3);
    Fixture f(src);
    CheckAllAtoms(f, src);
  }
}

TEST(AgreementTest, DenserPropositionalPrograms) {
  Rng rng(0xBEEFu);
  for (int trial = 0; trial < 60; ++trial) {
    std::string src = testing::RandomPropositionalProgram(rng, 8, 20, 4);
    Fixture f(src);
    // Dense tangled SCCs are the worst case for the ideal (non-effective)
    // search procedure: honest kUnknown is acceptable there, wrong answers
    // are not, and the memoing engine must stay exact.
    CheckAllAtoms(f, src, /*allow_search_unknown=*/true,
                  /*search_budget=*/50'000);
  }
}

TEST(AgreementTest, RandomGameGraphs) {
  Rng rng(0xABCDu);
  for (int trial = 0; trial < 40; ++trial) {
    std::string src = testing::RandomGameProgram(rng, /*n=*/6,
                                                 /*edge_pct=*/25);
    Fixture f(src);
    CheckAllAtoms(f, src);
  }
}

TEST(AgreementTest, SparseAndDenseGameGraphs) {
  Rng rng(0x1111u);
  for (int edge_pct : {10, 50, 80}) {
    for (int trial = 0; trial < 10; ++trial) {
      std::string src = testing::RandomGameProgram(rng, 5, edge_pct);
      Fixture f(src);
      CheckAllAtoms(f, src);
    }
  }
}

TEST(AgreementTest, SearchAnswersAreSound) {
  // Thm. 5.4: every answer's ground instances are well-founded true.
  Rng rng(0x5EEDu);
  for (int trial = 0; trial < 25; ++trial) {
    std::string src = testing::RandomGameProgram(rng, 5, 30);
    Fixture f(src);
    GlobalSlsEngine engine(f.program);
    Result<TabledEngine> oracle = TabledEngine::Create(f.program);
    ASSERT_TRUE(oracle.ok());
    Goal query = MustParseQuery(f.store, "win(X)");
    QueryResult r = engine.Solve(query);
    for (const Answer& ans : r.answers) {
      const Term* grounded = ans.theta.Apply(f.store, query[0].atom);
      ASSERT_TRUE(grounded->ground()) << src;
      EXPECT_EQ(oracle->ValueOf(grounded), TruthValue::kTrue)
          << "unsound answer " << f.store.ToString(grounded) << " in\n"
          << src;
    }
  }
}

TEST(AgreementTest, SearchAnswersAreComplete) {
  // Thm. 6.2: every well-founded-true ground instance of a nonfloundering
  // query is covered by some computed answer.
  Rng rng(0xC0DEu);
  for (int trial = 0; trial < 25; ++trial) {
    std::string src = testing::RandomGameProgram(rng, 5, 30);
    Fixture f(src);
    GlobalSlsEngine engine(f.program);
    Result<TabledEngine> oracle = TabledEngine::Create(f.program);
    ASSERT_TRUE(oracle.ok());
    Goal query = MustParseQuery(f.store, "win(X)");
    QueryResult r = engine.Solve(query);
    if (r.floundered_somewhere) continue;
    std::unordered_set<const Term*> produced;
    for (const Answer& ans : r.answers) {
      produced.insert(ans.theta.Apply(f.store, query[0].atom));
    }
    const GroundProgram& gp = oracle->ground();
    for (AtomId a = 0; a < gp.atom_count(); ++a) {
      const Term* atom = gp.AtomTerm(a);
      FunctorId win = f.store.symbols().FindFunctor("win", 1);
      if (atom->functor() != win) continue;
      if (oracle->ValueOf(atom) != TruthValue::kTrue) continue;
      EXPECT_TRUE(produced.count(atom) > 0)
          << "missing answer " << f.store.ToString(atom) << " in\n" << src;
    }
  }
}

TEST(AgreementTest, TabledAnswersMatchSearchAnswers) {
  Rng rng(0xD00Du);
  for (int trial = 0; trial < 25; ++trial) {
    std::string src = testing::RandomGameProgram(rng, 5, 35);
    Fixture f(src);
    GlobalSlsEngine search(f.program);
    Result<TabledEngine> tabled = TabledEngine::Create(f.program);
    ASSERT_TRUE(tabled.ok());
    Goal q1 = MustParseQuery(f.store, "win(X)");
    QueryResult rs = search.Solve(q1);
    Goal q2 = MustParseQuery(f.store, "win(X)");
    QueryResult rt = tabled->Solve(q2);
    auto ground_set = [&](const QueryResult& r, const Goal& q) {
      std::set<std::string> out;
      for (const Answer& a : r.answers) {
        out.insert(f.store.ToString(a.theta.Apply(f.store, q[0].atom)));
      }
      return out;
    };
    EXPECT_EQ(ground_set(rs, q1), ground_set(rt, q2)) << src;
  }
}

TEST(AgreementTest, LevelsMatchStagesOnDeterminedAtoms) {
  // Corollary 4.6: the level of a determined ground goal equals the stage
  // of the corresponding literal in the V_P iteration.
  Rng rng(0xFACEu);
  for (int trial = 0; trial < 40; ++trial) {
    std::string src = testing::RandomGameProgram(rng, 5, 30);
    Fixture f(src);
    GroundProgram gp = testing::MustGround(f.program);
    WfsStages stages = ComputeWfsStages(gp);
    GlobalSlsEngine engine(f.program);
    for (AtomId a = 0; a < gp.atom_count(); ++a) {
      const Term* atom = gp.AtomTerm(a);
      QueryResult r = engine.SolveAtom(atom);
      if (r.status == GoalStatus::kSuccessful && r.level_exact) {
        EXPECT_EQ(r.answers[0].level,
                  Ordinal::Finite(stages.true_stage[a]))
            << "success level != stage for " << f.store.ToString(atom)
            << " in\n" << src;
      } else if (r.status == GoalStatus::kFailed && r.level_exact) {
        EXPECT_EQ(r.level, Ordinal::Finite(stages.false_stage[a]))
            << "failure level != stage for " << f.store.ToString(atom)
            << " in\n" << src;
      }
    }
  }
}

TEST(AgreementTest, StratifiedProgramsAreTotalAndDetermined) {
  Rng rng(0xAAAAu);
  int seen = 0;
  for (int trial = 0; trial < 400 && seen < 20; ++trial) {
    std::string src = testing::RandomPropositionalProgram(rng, 6, 8, 2);
    Fixture f(src);
    if (!Stratify(f.program).stratified) continue;
    ++seen;
    GroundProgram gp = testing::MustGround(f.program);
    GlobalSlsEngine engine(f.program);
    for (AtomId a = 0; a < gp.atom_count(); ++a) {
      GoalStatus s = engine.StatusOf(gp.AtomTerm(a));
      EXPECT_TRUE(s == GoalStatus::kSuccessful || s == GoalStatus::kFailed)
          << src;
    }
  }
  EXPECT_GE(seen, 10);
}

}  // namespace
}  // namespace gsls
