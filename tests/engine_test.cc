#include "core/engine.h"

#include <gtest/gtest.h>

#include "test_support.h"

namespace gsls {
namespace {

using testing::Fixture;

GoalStatus StatusOfAtom(Fixture& f, GlobalSlsEngine& engine,
                        std::string_view atom) {
  return engine.StatusOf(MustParseTerm(f.store, atom));
}

TEST(EngineTest, FactSucceedsAtLevelOne) {
  Fixture f("p.");
  GlobalSlsEngine engine(f.program);
  QueryResult r = engine.Solve(MustParseQuery(f.store, "p"));
  EXPECT_EQ(r.status, GoalStatus::kSuccessful);
  ASSERT_EQ(r.answers.size(), 1u);
  EXPECT_EQ(r.answers[0].level, Ordinal::Finite(1));
  EXPECT_TRUE(r.level_exact);
}

TEST(EngineTest, NoRuleFailsAtLevelOne) {
  Fixture f("p.");
  GlobalSlsEngine engine(f.program);
  QueryResult r = engine.Solve(MustParseQuery(f.store, "q"));
  EXPECT_EQ(r.status, GoalStatus::kFailed);
  EXPECT_EQ(r.level, Ordinal::Finite(1));
}

TEST(EngineTest, NegationAsFailureSucceeds) {
  Fixture f("p :- not q.");
  GlobalSlsEngine engine(f.program);
  QueryResult r = engine.Solve(MustParseQuery(f.store, "p"));
  EXPECT_EQ(r.status, GoalStatus::kSuccessful);
  // q fails at level 1; the negation node succeeds at 1; p at 2.
  ASSERT_EQ(r.answers.size(), 1u);
  EXPECT_EQ(r.answers[0].level, Ordinal::Finite(2));
}

TEST(EngineTest, PositiveLoopFails) {
  Fixture f("p :- p.");
  GlobalSlsEngine engine(f.program);
  EXPECT_EQ(StatusOfAtom(f, engine, "p"), GoalStatus::kFailed);
}

TEST(EngineTest, MutualPositiveLoopFails) {
  Fixture f("p :- q. q :- p.");
  GlobalSlsEngine engine(f.program);
  EXPECT_EQ(StatusOfAtom(f, engine, "p"), GoalStatus::kFailed);
  EXPECT_EQ(StatusOfAtom(f, engine, "q"), GoalStatus::kFailed);
}

TEST(EngineTest, SelfNegationIsIndeterminate) {
  Fixture f("p :- not p.");
  GlobalSlsEngine engine(f.program);
  EXPECT_EQ(StatusOfAtom(f, engine, "p"), GoalStatus::kIndeterminate);
}

TEST(EngineTest, NegativeTwoCycleIsIndeterminate) {
  Fixture f("p :- not q. q :- not p.");
  GlobalSlsEngine engine(f.program);
  EXPECT_EQ(StatusOfAtom(f, engine, "p"), GoalStatus::kIndeterminate);
  EXPECT_EQ(StatusOfAtom(f, engine, "q"), GoalStatus::kIndeterminate);
}

TEST(EngineTest, LoopWithEscapeHatchSucceeds) {
  // q has a fact besides the loop: q true, p false.
  Fixture f("p :- not q. q :- not p. q.");
  GlobalSlsEngine engine(f.program);
  EXPECT_EQ(StatusOfAtom(f, engine, "q"), GoalStatus::kSuccessful);
  EXPECT_EQ(StatusOfAtom(f, engine, "p"), GoalStatus::kFailed);
}

TEST(EngineTest, WinGameChainStatusesAndLevels) {
  Fixture f(
      "win(X) :- move(X, Y), not win(Y).\n"
      "move(n1, n2). move(n2, n3).\n");
  GlobalSlsEngine engine(f.program);
  EXPECT_EQ(StatusOfAtom(f, engine, "win(n3)"), GoalStatus::kFailed);
  EXPECT_EQ(StatusOfAtom(f, engine, "win(n2)"), GoalStatus::kSuccessful);
  EXPECT_EQ(StatusOfAtom(f, engine, "win(n1)"), GoalStatus::kFailed);
}

TEST(EngineTest, WinGameCycleIsIndeterminate) {
  Fixture f(
      "win(X) :- move(X, Y), not win(Y).\n"
      "move(a, b). move(b, a).\n");
  GlobalSlsEngine engine(f.program);
  EXPECT_EQ(StatusOfAtom(f, engine, "win(a)"), GoalStatus::kIndeterminate);
  EXPECT_EQ(StatusOfAtom(f, engine, "win(b)"), GoalStatus::kIndeterminate);
}

TEST(EngineTest, WinGameCycleWithEscape) {
  Fixture f(
      "win(X) :- move(X, Y), not win(Y).\n"
      "move(a, b). move(b, a). move(b, c).\n");
  GlobalSlsEngine engine(f.program);
  EXPECT_EQ(StatusOfAtom(f, engine, "win(c)"), GoalStatus::kFailed);
  EXPECT_EQ(StatusOfAtom(f, engine, "win(b)"), GoalStatus::kSuccessful);
  EXPECT_EQ(StatusOfAtom(f, engine, "win(a)"), GoalStatus::kFailed);
}

TEST(EngineTest, AnswerEnumeration) {
  Fixture f(
      "edge(a, b). edge(b, c). edge(a, c).\n"
      "path(X, Y) :- edge(X, Y).\n"
      "path(X, Y) :- edge(X, Z), path(Z, Y).\n");
  GlobalSlsEngine engine(f.program);
  QueryResult r = engine.Solve(MustParseQuery(f.store, "path(a, X)"));
  EXPECT_EQ(r.status, GoalStatus::kSuccessful);
  EXPECT_EQ(r.answers.size(), 2u);  // X = b, X = c
}

TEST(EngineTest, AnswersAreSoundBindings) {
  Fixture f(
      "p(a). p(b). q(b).\n"
      "r(X) :- p(X), not q(X).\n");
  GlobalSlsEngine engine(f.program);
  QueryResult r = engine.Solve(MustParseQuery(f.store, "r(X)"));
  ASSERT_EQ(r.status, GoalStatus::kSuccessful);
  ASSERT_EQ(r.answers.size(), 1u);
  const Goal goal = MustParseQuery(f.store, "r(X)");
  // The answer must ground r(X) to r(a).
  Goal q2 = MustParseQuery(f.store, "r(X)");
  // Apply to the atom of the original query result's substitution.
  // (The variable ids differ per parse; check via the bound term's text.)
  ASSERT_EQ(r.answers[0].theta.bindings().size(), 1u);
  const Term* bound = r.answers[0].theta.bindings().begin()->second;
  EXPECT_EQ(f.store.ToString(bound), "a");
}

TEST(EngineTest, FloundersOnNonGroundNegation) {
  Fixture f("p(X) :- not q(f(X)). q(a).");
  GlobalSlsEngine engine(f.program);
  QueryResult r = engine.Solve(MustParseQuery(f.store, "p(X)"));
  EXPECT_EQ(r.status, GoalStatus::kFloundered);
}

TEST(EngineTest, GroundInstanceOfFlounderingGoalSucceeds) {
  // Sec. 6: <- p(X) flounders, yet every ground instance succeeds.
  Fixture f("p(X) :- not q(f(X)). q(a).");
  GlobalSlsEngine engine(f.program);
  EXPECT_EQ(StatusOfAtom(f, engine, "p(a)"), GoalStatus::kSuccessful);
  EXPECT_EQ(StatusOfAtom(f, engine, "p(b)"), GoalStatus::kSuccessful);
}

TEST(EngineTest, Example32PreferentialSucceeds) {
  Fixture f(
      "p :- q, not r.\n"
      "q :- r, not p.\n"
      "r :- p, not q.\n"
      "s :- not p, not q, not r.\n");
  GlobalSlsEngine engine(f.program);
  EXPECT_EQ(StatusOfAtom(f, engine, "p"), GoalStatus::kFailed);
  EXPECT_EQ(StatusOfAtom(f, engine, "q"), GoalStatus::kFailed);
  EXPECT_EQ(StatusOfAtom(f, engine, "r"), GoalStatus::kFailed);
  EXPECT_EQ(StatusOfAtom(f, engine, "s"), GoalStatus::kSuccessful);
}

TEST(EngineTest, Example32NonPositivisticIsIndeterminate) {
  // Selecting negative literals first loses completeness: <- s appears
  // indeterminate even though it is well-founded true.
  Fixture f(
      "p :- q, not r.\n"
      "q :- r, not p.\n"
      "r :- p, not q.\n"
      "s :- not p, not q, not r.\n");
  EngineOptions opts;
  opts.selection = SelectionMode::kNegativesFirst;
  GlobalSlsEngine engine(f.program, opts);
  QueryResult r = engine.Solve(MustParseQuery(f.store, "s"));
  EXPECT_NE(r.status, GoalStatus::kSuccessful);
}

TEST(EngineTest, Example33SequentialGetsStuck) {
  // q :- not p(a), not s. The infinite regress p(a), p(f(a)), ... wedges a
  // sequential rule; the parallel rule reaches `not s` and fails q.
  Fixture f(
      "q :- not p(a), not s.\n"
      "s.\n"
      "p(X) :- not p(f(X)).\n");
  EngineOptions sequential;
  sequential.negatively_parallel = false;
  sequential.max_negation_depth = 24;
  GlobalSlsEngine seq(f.program, sequential);
  QueryResult r1 = seq.Solve(MustParseQuery(f.store, "q"));
  EXPECT_EQ(r1.status, GoalStatus::kUnknown);

  EngineOptions parallel;
  parallel.max_negation_depth = 24;
  GlobalSlsEngine par(f.program, parallel);
  QueryResult r2 = par.Solve(MustParseQuery(f.store, "q"));
  EXPECT_EQ(r2.status, GoalStatus::kFailed);
}

TEST(EngineTest, InfiniteNegativeRegressIsUnknown) {
  // p(a) <- not p(f(a)) <- ... never repeats an atom: the ideal procedure
  // does not terminate; the engine reports honest resource exhaustion.
  Fixture f("p(X) :- not p(f(X)).");
  EngineOptions opts;
  opts.max_negation_depth = 16;
  GlobalSlsEngine engine(f.program, opts);
  EXPECT_EQ(StatusOfAtom(f, engine, "p(a)"), GoalStatus::kUnknown);
}

TEST(EngineTest, DeepNegationChainLevels) {
  // win chain of length 6: win(n1) alternates false/true down the chain.
  Fixture f(
      "win(X) :- move(X, Y), not win(Y).\n"
      "move(n1, n2). move(n2, n3). move(n3, n4). move(n4, n5).\n"
      "move(n5, n6).\n");
  GlobalSlsEngine engine(f.program);
  EXPECT_EQ(StatusOfAtom(f, engine, "win(n6)"), GoalStatus::kFailed);
  EXPECT_EQ(StatusOfAtom(f, engine, "win(n5)"), GoalStatus::kSuccessful);
  EXPECT_EQ(StatusOfAtom(f, engine, "win(n4)"), GoalStatus::kFailed);
  EXPECT_EQ(StatusOfAtom(f, engine, "win(n3)"), GoalStatus::kSuccessful);
  EXPECT_EQ(StatusOfAtom(f, engine, "win(n2)"), GoalStatus::kFailed);
  EXPECT_EQ(StatusOfAtom(f, engine, "win(n1)"), GoalStatus::kSuccessful);
}

TEST(EngineTest, ConjunctiveQuery) {
  Fixture f("p(a). p(b). q(a).");
  GlobalSlsEngine engine(f.program);
  QueryResult r = engine.Solve(MustParseQuery(f.store, "p(X), q(X)"));
  EXPECT_EQ(r.status, GoalStatus::kSuccessful);
  EXPECT_EQ(r.answers.size(), 1u);
}

TEST(EngineTest, QueryWithNegativeLiteralGroundedByPositive) {
  Fixture f("p(a). p(b). q(a).");
  GlobalSlsEngine engine(f.program);
  QueryResult r = engine.Solve(MustParseQuery(f.store, "p(X), not q(X)"));
  EXPECT_EQ(r.status, GoalStatus::kSuccessful);
  ASSERT_EQ(r.answers.size(), 1u);
  const Term* bound = r.answers[0].theta.bindings().begin()->second;
  EXPECT_EQ(f.store.ToString(bound), "b");
}

TEST(EngineTest, EmptyGoalSucceedsTrivially) {
  Fixture f("p.");
  GlobalSlsEngine engine(f.program);
  QueryResult r = engine.Solve(Goal{});
  EXPECT_EQ(r.status, GoalStatus::kSuccessful);
}

TEST(EngineTest, MemoizationReusesResults) {
  Fixture f(
      "win(X) :- move(X, Y), not win(Y).\n"
      "move(n1, n2). move(n2, n3).\n");
  GlobalSlsEngine engine(f.program);
  EXPECT_EQ(StatusOfAtom(f, engine, "win(n1)"), GoalStatus::kFailed);
  QueryResult again = engine.SolveAtom(MustParseTerm(f.store, "win(n1)"));
  // Second run hits the memo: negligible new negation nodes.
  EXPECT_EQ(again.status, GoalStatus::kFailed);
  EXPECT_LE(again.negation_nodes, 2u);
}

TEST(EngineTest, OracleAndSearchAgreeEitherWay) {
  // The bottom-up oracle (default) and the pure search must assign the
  // same status to every ground atom of a function-free program.
  Rng rng(0x0AC1Eu);
  for (int trial = 0; trial < 20; ++trial) {
    std::string src = testing::RandomGameProgram(rng, 6, 30);
    Fixture f(src);
    GlobalSlsEngine with_oracle(f.program);
    EngineOptions no_oracle_opts;
    no_oracle_opts.bottom_up_oracle = false;
    GlobalSlsEngine no_oracle(f.program, no_oracle_opts);
    GroundProgram gp = testing::MustGround(f.program);
    for (AtomId a = 0; a < gp.atom_count(); ++a) {
      const Term* atom = gp.AtomTerm(a);
      EXPECT_EQ(with_oracle.StatusOf(atom), no_oracle.StatusOf(atom))
          << f.store.ToString(atom) << " in\n" << src;
    }
  }
}

TEST(EngineTest, OracleAnswersWithoutSearchWork) {
  // A seeded memo resolves ground goals without expanding any SLP tree.
  Fixture f(
      "win(X) :- move(X, Y), not win(Y).\n"
      "move(n1, n2). move(n2, n3). move(n3, n4).\n");
  GlobalSlsEngine engine(f.program);
  QueryResult r = engine.SolveAtom(MustParseTerm(f.store, "win(n1)"));
  EXPECT_EQ(r.status, GoalStatus::kSuccessful);
  EXPECT_EQ(r.negation_nodes, 0u);
}

TEST(EngineTest, LevelsMatchStagesOnChain) {
  Fixture f(
      "win(X) :- move(X, Y), not win(Y).\n"
      "move(n1, n2). move(n2, n3).\n");
  GlobalSlsEngine engine(f.program);
  QueryResult lost = engine.SolveAtom(MustParseTerm(f.store, "win(n3)"));
  EXPECT_EQ(lost.level, Ordinal::Finite(1));
  QueryResult won = engine.SolveAtom(MustParseTerm(f.store, "win(n2)"));
  ASSERT_EQ(won.status, GoalStatus::kSuccessful);
  EXPECT_EQ(won.answers[0].level, Ordinal::Finite(2));
  QueryResult lost1 = engine.SolveAtom(MustParseTerm(f.store, "win(n1)"));
  EXPECT_EQ(lost1.level, Ordinal::Finite(3));
}

}  // namespace
}  // namespace gsls
