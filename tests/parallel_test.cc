// Thread-count invariance of the SCC-stratified solver: the parallel
// work-stealing schedule (solver/parallel.h) must produce the identical
// well-founded model at every `num_threads`, on the paper programs, the
// game/workload families, and hundreds of randomized programs — and the
// incremental up-cone re-solve must stay exact under threaded churn.

#include "solver/parallel.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/atom_dependency_graph.h"
#include "core/engine.h"
#include "core/tabled.h"
#include "solver/incremental.h"
#include "solver/solver.h"
#include "test_support.h"
#include "util/thread_pool.h"
#include "wfs/wfs.h"
#include "workload/generators.h"

namespace gsls {
namespace {

using testing::Fixture;
using testing::MustGround;
using testing::RandomPropositionalProgram;

constexpr unsigned kThreadCounts[] = {1, 2, 8};

/// The model must be identical at every thread count and must match the
/// independent alternating-fixpoint reference.
void ExpectThreadInvariant(const GroundProgram& gp, const std::string& src) {
  WfsModel sequential = SolveWfs(gp);
  WfsModel reference = ComputeWfsAlternating(gp);
  ASSERT_EQ(sequential.model, reference.model)
      << "sequential SolveWfs vs alternating fixpoint on:\n"
      << src << "diff:\n"
      << DescribeModelDifference(gp, sequential.model, reference.model);
  for (unsigned threads : kThreadCounts) {
    SolverOptions opts;
    opts.num_threads = threads;
    SolverDiagnostics diag;
    WfsModel parallel = SolveWfs(gp, opts, &diag);
    ASSERT_EQ(parallel.model, sequential.model)
        << "num_threads=" << threads << " vs sequential on:\n"
        << src << "diff:\n"
        << DescribeModelDifference(gp, parallel.model, sequential.model);
  }
}

TEST(ParallelTest, PaperProgramsAreThreadInvariant) {
  for (const char* src :
       {workload::Example32Program(), workload::Example33Program()}) {
    Fixture f(src);
    GroundProgram gp = MustGround(f.program, /*term_depth=*/2);
    ExpectThreadInvariant(gp, src);
  }
  Fixture van_gelder(workload::VanGelderProgram());
  GroundProgram gp = MustGround(van_gelder.program, /*term_depth=*/4);
  ExpectThreadInvariant(gp, "van gelder");
}

TEST(ParallelTest, WorkloadFamiliesAreThreadInvariant) {
  Rng rng(0xF02E57u);
  const std::string families[] = {
      workload::GameChain(256),
      workload::GameGrid(12, 12),
      workload::GameCycleWithTail(41, 30),
      workload::RandomGame(rng, 80, 15),
      workload::GameForest(rng, 16, 12, 25),
      workload::ReachabilityWithNegation(rng, 18, 20),
  };
  for (const std::string& src : families) {
    Fixture f(src);
    GroundProgram gp = MustGround(f.program);
    ExpectThreadInvariant(gp, src);
  }
}

// The per-component work is schedule-independent, so the merged
// per-worker diagnostics must equal the sequential accumulation exactly —
// this is what "no racy increments" buys: the counters stay meaningful.
TEST(ParallelTest, MergedDiagnosticsMatchSequential) {
  Rng rng(0xD1A6u);
  Fixture f(workload::GameForest(rng, 12, 10, 30));
  GroundProgram gp = MustGround(f.program);
  SolverDiagnostics sequential;
  SolveWfs(gp, &sequential);
  for (unsigned threads : {2u, 8u}) {
    SolverOptions opts;
    opts.num_threads = threads;
    SolverDiagnostics merged;
    SolveWfs(gp, opts, &merged);
    EXPECT_EQ(merged.component_count, sequential.component_count);
    EXPECT_EQ(merged.max_component_size, sequential.max_component_size);
    EXPECT_EQ(merged.recursive_components, sequential.recursive_components);
    EXPECT_EQ(merged.negation_components, sequential.negation_components);
    EXPECT_EQ(merged.rules_visited, sequential.rules_visited);
    EXPECT_EQ(merged.unfounded_floods, sequential.unfounded_floods);
    EXPECT_EQ(merged.unfounded_falsified, sequential.unfounded_falsified);
    EXPECT_EQ(merged.alternating_rounds, sequential.alternating_rounds);
  }
}

TEST(ParallelTest, RandomizedProgramsAreThreadInvariant) {
  Rng rng(0xC0DEC0DEu);
  for (int trial = 0; trial < 340; ++trial) {
    int num_preds = rng.UniformInt(4, 28);
    int num_rules = rng.UniformInt(4, 90);
    int max_body = rng.UniformInt(1, 4);
    std::string src =
        RandomPropositionalProgram(rng, num_preds, num_rules, max_body);
    Fixture f(src);
    GroundProgram gp = MustGround(f.program);
    WfsModel sequential = SolveWfs(gp);
    for (unsigned threads : {2u, 8u}) {
      SolverOptions opts;
      opts.num_threads = threads;
      WfsModel parallel = SolveWfs(gp, opts);
      ASSERT_EQ(parallel.model, sequential.model)
          << "trial " << trial << " num_threads=" << threads << " on:\n"
          << src << "diff:\n"
          << DescribeModelDifference(gp, parallel.model, sequential.model);
    }
  }
}

/// Toggle-based churn (the incremental_test harness shape): after every
/// delta the threaded incremental model must equal a fresh masked solve
/// AND the model a sequential incremental solver reaches via the same
/// delta stream.
void ExpectChurnAgreement(const std::string& src, unsigned threads,
                          uint64_t seed, int deltas) {
  Fixture f(src);
  IncrementalSolver threaded(MustGround(f.program), SolverOptions{threads});
  IncrementalSolver sequential(MustGround(f.program), SolverOptions{1});
  threaded.Model();
  sequential.Model();

  std::vector<AtomId> facts;
  for (AtomId a = 0; a < threaded.program().atom_count(); ++a) {
    if (threaded.program().FindUnitRule(a).has_value()) facts.push_back(a);
  }
  if (facts.empty()) GTEST_SKIP() << "no fact atoms to toggle";

  Rng rng(seed);
  for (int d = 0; d < deltas; ++d) {
    // Mixed batch sizes: single-fact deltas take the sequential heap
    // even when threaded, multi-fact batches take the parallel cone —
    // both paths must stay exact.
    int batch = rng.UniformInt(1, 5);
    for (int b = 0; b < batch; ++b) {
      AtomId a = facts[rng.Uniform(facts.size())];
      if (threaded.HasFact(a)) {
        threaded.RetractAtom(a);
        sequential.RetractAtom(a);
      } else {
        threaded.AssertAtom(a);
        sequential.AssertAtom(a);
      }
    }
    const WfsModel& got = threaded.Model();
    WfsModel fresh = threaded.SolveFresh();
    ASSERT_EQ(got.model, fresh.model)
        << "threads=" << threads << " delta " << d
        << ": threaded incremental vs fresh diff:\n"
        << DescribeModelDifference(threaded.program(), got.model,
                                   fresh.model);
    ASSERT_EQ(got.model, sequential.Model().model)
        << "threads=" << threads << " delta " << d
        << ": threaded vs sequential incremental diff:\n"
        << DescribeModelDifference(threaded.program(), got.model,
                                   sequential.Model().model);
  }
}

TEST(ParallelTest, IncrementalChurnUnderThreads) {
  Rng rng(0xBEEFu);
  ExpectChurnAgreement(workload::GameChain(96), 2, 11, 40);
  ExpectChurnAgreement(workload::GameChain(96), 8, 12, 40);
  ExpectChurnAgreement(workload::GameGrid(8, 8), 8, 13, 40);
  ExpectChurnAgreement(workload::GameForest(rng, 8, 8, 30), 8, 14, 40);
  ExpectChurnAgreement(workload::GameCycleWithTail(21, 20), 8, 15, 40);
  ExpectChurnAgreement(workload::RandomGame(rng, 40, 15), 8, 16, 40);
}

TEST(ParallelTest, IncrementalRandomizedChurnUnderThreads) {
  Rng rng(0x5EED5u);
  for (int trial = 0; trial < 25; ++trial) {
    std::string src = RandomPropositionalProgram(rng, rng.UniformInt(6, 20),
                                                 rng.UniformInt(8, 60), 3);
    ExpectChurnAgreement(src, 8, 0x900D + trial, 12);
  }
}

// Asserting a brand-new atom forces the lazy condensation (and scheduling
// DAG) rebuild on the threaded path too.
TEST(ParallelTest, NewAtomRebuildUnderThreads) {
  Fixture f("p :- not q. q :- not p. r :- e, p.");
  IncrementalSolver inc(MustGround(f.program), SolverOptions{8});
  inc.Model();
  ASSERT_TRUE(inc.Assert(MustParseTerm(f.store, "e")));
  ASSERT_TRUE(inc.Assert(MustParseTerm(f.store, "brand_new")));
  EXPECT_EQ(inc.ValueOf(MustParseTerm(f.store, "brand_new")),
            TruthValue::kTrue);
  WfsModel fresh = inc.SolveFresh();
  EXPECT_EQ(inc.Model().model, fresh.model)
      << DescribeModelDifference(inc.program(), inc.Model().model,
                                 fresh.model);
  EXPECT_GE(inc.stats().graph_rebuilds, 1u);
}

TEST(ParallelTest, EngineOracleAndTabledHonorThreadOption) {
  Rng rng(0xAB1Eu);
  std::string src = workload::GameForest(rng, 6, 8, 30);
  Fixture f(src);

  EngineOptions eopts;
  eopts.solver.num_threads = 8;
  GlobalSlsEngine threaded_engine(f.program, eopts);
  GlobalSlsEngine plain_engine(f.program);
  const Term* goal = MustParseTerm(f.store, "win(b0_n0)");
  EXPECT_EQ(threaded_engine.StatusOf(goal), plain_engine.StatusOf(goal));

  TabledOptions topts;
  topts.compute_stages = false;
  topts.solver.num_threads = 8;
  Result<TabledEngine> threaded_tabled = TabledEngine::Create(f.program, topts);
  ASSERT_TRUE(threaded_tabled.ok());
  TabledOptions seq_topts;
  seq_topts.compute_stages = false;
  Result<TabledEngine> seq_tabled = TabledEngine::Create(f.program, seq_topts);
  ASSERT_TRUE(seq_tabled.ok());
  for (AtomId a = 0; a < threaded_tabled.value().ground().atom_count(); ++a) {
    const Term* atom = threaded_tabled.value().ground().AtomTerm(a);
    EXPECT_EQ(threaded_tabled.value().ValueOf(atom),
              seq_tabled.value().ValueOf(atom));
  }
}

// The pool itself: every released task runs exactly once, including tasks
// released transitively from inside the body, across Run calls.
TEST(ParallelTest, WorkStealingPoolRunsEveryTaskOnce) {
  WorkStealingPool pool(4);
  constexpr uint32_t kChains = 16;
  constexpr uint32_t kDepth = 50;
  std::vector<std::atomic<uint32_t>> hits(kChains * kDepth);
  for (auto& h : hits) h.store(0);
  std::vector<uint32_t> seeds;
  for (uint32_t c = 0; c < kChains; ++c) seeds.push_back(c * kDepth);
  for (int round = 0; round < 3; ++round) {
    pool.Run(seeds, [&](unsigned worker, uint32_t task) {
      hits[task].fetch_add(1);
      if ((task % kDepth) + 1 < kDepth) pool.Push(worker, task + 1);
    });
    for (uint32_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), static_cast<uint32_t>(round + 1))
          << "task " << i << " after round " << round;
    }
  }
}

}  // namespace
}  // namespace gsls
