#include "term/term_store.h"

#include <gtest/gtest.h>

#include <functional>

#include "lang/clause.h"
#include "lang/parser.h"
#include "term/substitution.h"
#include "util/rng.h"

namespace gsls {
namespace {

TEST(SymbolTableTest, InterningIsIdempotent) {
  SymbolTable table;
  SymbolId a1 = table.InternName("foo");
  SymbolId a2 = table.InternName("foo");
  SymbolId b = table.InternName("bar");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(table.NameOf(a1), "foo");
}

TEST(SymbolTableTest, FunctorsDistinguishArity) {
  SymbolTable table;
  FunctorId p1 = table.InternFunctor("p", 1);
  FunctorId p2 = table.InternFunctor("p", 2);
  EXPECT_NE(p1, p2);
  EXPECT_EQ(table.FunctorArity(p1), 1u);
  EXPECT_EQ(table.FunctorArity(p2), 2u);
  EXPECT_EQ(table.FunctorToString(p2), "p/2");
  EXPECT_EQ(table.FindFunctor("p", 1), p1);
  EXPECT_EQ(table.FindFunctor("p", 3), kInvalidFunctor);
  EXPECT_EQ(table.FindFunctor("zzz", 1), kInvalidFunctor);
}

TEST(TermStoreTest, HashConsingSharesStructure) {
  TermStore store;
  const Term* a1 = store.MakeConstant("a");
  const Term* a2 = store.MakeConstant("a");
  EXPECT_EQ(a1, a2);
  const Term* f1 = store.MakeApp("f", {a1, a2});
  const Term* f2 = store.MakeApp("f", {a2, a1});
  EXPECT_EQ(f1, f2);
  const Term* g = store.MakeApp("g", {a1, a2});
  EXPECT_NE(f1, g);
}

TEST(TermStoreTest, GroundnessAndDepthMetadata) {
  TermStore store;
  const Term* a = store.MakeConstant("a");
  const Term* x = store.NewVar("X");
  const Term* fa = store.MakeApp("f", {a});
  const Term* fx = store.MakeApp("f", {x});
  EXPECT_TRUE(a->ground());
  EXPECT_FALSE(x->ground());
  EXPECT_TRUE(fa->ground());
  EXPECT_FALSE(fx->ground());
  EXPECT_EQ(a->depth(), 1u);
  EXPECT_EQ(fa->depth(), 2u);
  EXPECT_EQ(store.MakeApp("g", {fa, a})->depth(), 3u);
  EXPECT_EQ(fx->var_count(), 1u);
  EXPECT_EQ(store.MakeApp("g", {fx, x})->var_count(), 2u);
}

TEST(TermStoreTest, VariablesAreDistinctPerCall) {
  TermStore store;
  const Term* x1 = store.NewVar("X");
  const Term* x2 = store.NewVar("X");
  EXPECT_NE(x1, x2);
  EXPECT_NE(x1->var(), x2->var());
}

TEST(TermStoreTest, ToStringRendersNestedTerms) {
  TermStore store;
  const Term* t = MustParseTerm(store, "f(g(a, X), b)");
  EXPECT_EQ(store.ToString(t), "f(g(a,X),b)");
}

TEST(SubstitutionTest, WalkFollowsChains) {
  TermStore store;
  const Term* x = store.NewVar("X");
  const Term* y = store.NewVar("Y");
  const Term* a = store.MakeConstant("a");
  Substitution s;
  s.Bind(x->var(), y);
  s.Bind(y->var(), a);
  EXPECT_EQ(s.Walk(x), a);
  EXPECT_EQ(s.Walk(a), a);
}

TEST(SubstitutionTest, ApplyRebuildsTerms) {
  TermStore store;
  const Term* x = store.NewVar("X");
  const Term* a = store.MakeConstant("a");
  const Term* fxx = store.MakeApp("f", {x, x});
  Substitution s;
  s.Bind(x->var(), a);
  const Term* applied = s.Apply(store, fxx);
  EXPECT_EQ(applied, store.MakeApp("f", {a, a}));
}

TEST(SubstitutionTest, ApplyIsIdentityOnGround) {
  TermStore store;
  const Term* t = MustParseTerm(store, "f(g(a), b)");
  Substitution s;
  s.Bind(store.NewVar("X")->var(), store.MakeConstant("c"));
  EXPECT_EQ(s.Apply(store, t), t);
}

TEST(SubstitutionTest, ComposeAppliesLeftThenRight) {
  TermStore store;
  const Term* x = store.NewVar("X");
  const Term* y = store.NewVar("Y");
  const Term* a = store.MakeConstant("a");
  Substitution first;
  first.Bind(x->var(), y);
  Substitution second;
  second.Bind(y->var(), a);
  Substitution composed = first.ComposeWith(store, second);
  EXPECT_EQ(composed.Apply(store, x), a);
  EXPECT_EQ(composed.Apply(store, y), a);
}

TEST(UnifyTest, UnifiesSimplePairs) {
  TermStore store;
  const Term* t1 = MustParseTerm(store, "f(X, b)");
  const Term* t2 = MustParseTerm(store, "f(a, Y)");
  Substitution s;
  ASSERT_TRUE(Unify(t1, t2, &s));
  EXPECT_EQ(s.Apply(store, t1), s.Apply(store, t2));
  EXPECT_EQ(store.ToString(s.Apply(store, t1)), "f(a,b)");
}

TEST(UnifyTest, FailsOnFunctorClash) {
  TermStore store;
  Substitution s;
  EXPECT_FALSE(Unify(MustParseTerm(store, "f(a)"),
                     MustParseTerm(store, "g(a)"), &s));
  Substitution s2;
  EXPECT_FALSE(Unify(MustParseTerm(store, "f(a)"),
                     MustParseTerm(store, "f(b)"), &s2));
  Substitution s3;
  EXPECT_FALSE(Unify(MustParseTerm(store, "f(a)"),
                     MustParseTerm(store, "f(a, b)"), &s3));
}

TEST(UnifyTest, OccursCheckRejectsCyclicBindings) {
  TermStore store;
  const Term* x = store.NewVar("X");
  const Term* fx = store.MakeApp("f", {x});
  Substitution s;
  EXPECT_FALSE(Unify(x, fx, &s));
  Substitution s2;
  EXPECT_FALSE(Unify(fx, x, &s2));
}

TEST(UnifyTest, SharedVariablePropagates) {
  TermStore store;
  const Term* t1 = MustParseTerm(store, "p(X, X)");
  const Term* t2 = MustParseTerm(store, "p(a, Y)");
  Substitution s;
  ASSERT_TRUE(Unify(t1, t2, &s));
  EXPECT_EQ(store.ToString(s.Apply(store, t2)), "p(a,a)");
}

TEST(UnifyTest, DeepNestedUnification) {
  TermStore store;
  const Term* t1 = MustParseTerm(store, "f(g(X, h(Y)), Z)");
  const Term* t2 = MustParseTerm(store, "f(g(a, h(b(c))), W)");
  Substitution s;
  ASSERT_TRUE(Unify(t1, t2, &s));
  EXPECT_EQ(s.Apply(store, t1), s.Apply(store, t2));
}

/// Property: a successful mgu is idempotent (applying it twice equals
/// applying it once) and unifies its inputs.
TEST(UnifyTest, MguIsIdempotentOnRandomTerms) {
  TermStore store;
  Rng rng(123);
  std::vector<const Term*> vars;
  for (int i = 0; i < 6; ++i) vars.push_back(store.NewVar("V"));
  const char* consts[] = {"a", "b", "c"};
  const char* funcs[] = {"f", "g"};

  // Random term generator over shared variables.
  std::function<const Term*(int)> gen = [&](int depth) -> const Term* {
    if (depth == 0 || rng.Chance(2, 5)) {
      if (rng.Chance(1, 2)) return vars[rng.Uniform(vars.size())];
      return store.MakeConstant(consts[rng.Uniform(3)]);
    }
    const char* f = funcs[rng.Uniform(2)];
    int arity = rng.UniformInt(1, 2);
    std::vector<const Term*> args;
    for (int i = 0; i < arity; ++i) args.push_back(gen(depth - 1));
    return store.MakeApp(f, args);
  };

  int unified = 0;
  for (int trial = 0; trial < 500; ++trial) {
    const Term* t1 = gen(3);
    const Term* t2 = gen(3);
    Substitution s;
    if (!Unify(t1, t2, &s)) continue;
    ++unified;
    const Term* u1 = s.Apply(store, t1);
    const Term* u2 = s.Apply(store, t2);
    EXPECT_EQ(u1, u2);
    EXPECT_EQ(s.Apply(store, u1), u1) << "mgu must be idempotent";
  }
  EXPECT_GT(unified, 50);
}

TEST(MatchTest, OneWayMatchingOnly) {
  TermStore store;
  const Term* pattern = MustParseTerm(store, "p(X, b)");
  const Term* ground = MustParseTerm(store, "p(a, b)");
  Substitution s;
  EXPECT_TRUE(Match(pattern, ground, &s));
  // Matching must not bind variables of the target.
  const Term* nonground = MustParseTerm(store, "p(Y, b)");
  const Term* pat2 = MustParseTerm(store, "p(a, b)");
  Substitution s2;
  EXPECT_FALSE(Match(pat2, nonground, &s2));
}

TEST(MoreGeneralTest, IdentityIsMostGeneral) {
  TermStore store;
  const Term* ref = MustParseTerm(store, "p(X, Y)");
  Substitution identity;
  Substitution specific;
  std::vector<VarId> vars;
  CollectVars(ref, &vars);
  specific.Bind(vars[0], store.MakeConstant("a"));
  EXPECT_TRUE(MoreGeneralOn(store, identity, specific, ref));
  EXPECT_FALSE(MoreGeneralOn(store, specific, identity, ref));
}

TEST(ArenaStatsTest, StoreTracksMemory) {
  TermStore store;
  size_t before = store.arena_bytes();
  for (int i = 0; i < 100; ++i) {
    store.MakeApp("f", {store.MakeConstant("a")});
  }
  // Hash-consing: repeated construction allocates nothing new.
  size_t mid = store.arena_bytes();
  const Term* probe = store.MakeApp("f", {store.MakeConstant("a")});
  (void)probe;
  EXPECT_EQ(store.arena_bytes(), mid);
  EXPECT_GT(mid, before);
  EXPECT_EQ(store.interned_count(), 2u);  // a and f(a)
}

}  // namespace
}  // namespace gsls
