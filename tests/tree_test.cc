#include "core/global_tree.h"
#include "core/slp_tree.h"

#include <gtest/gtest.h>

#include "test_support.h"

namespace gsls {
namespace {

using testing::Fixture;

/// Example 3.1 (Van Gelder): the ordinal program behind Figures 1-4.
const char* kVanGelder =
    "e(s(0), s(s(0))).\n"
    "e(s(X), s(s(Y))) :- e(X, s(Y)).\n"
    "e(s(0), 0).\n"
    "e(s(X), 0) :- e(X, 0).\n"
    "w(X) :- not u(X).\n"
    "u(X) :- e(Y, X), not w(Y).\n";

std::string Int(int i) {
  std::string t = "0";
  for (int k = 0; k < i; ++k) t = "s(" + t + ")";
  return t;
}

TEST(SlpTreeTest, FactTreeShape) {
  Fixture f("p(a).");
  SlpTree tree = SlpTree::Build(f.program, MustParseQuery(f.store, "p(X)"));
  EXPECT_EQ(tree.node_count(), 2u);
  auto leaves = tree.ActiveLeaves();
  ASSERT_EQ(leaves.size(), 1u);
  EXPECT_TRUE(leaves[0]->goal.empty());
  EXPECT_EQ(leaves[0]->depth, 1u);
}

TEST(SlpTreeTest, DeadLeafWhenNoClauseMatches) {
  Fixture f("p(a).");
  SlpTree tree = SlpTree::Build(f.program, MustParseQuery(f.store, "p(b)"));
  EXPECT_TRUE(tree.ActiveLeaves().empty());
  EXPECT_EQ(tree.root().kind, SlpNodeKind::kDeadLeaf);
}

TEST(SlpTreeTest, ActiveLeavesCollectNegativeLiterals) {
  Fixture f("p :- q, not r. q :- not s.");
  SlpTree tree = SlpTree::Build(f.program, MustParseQuery(f.store, "p"));
  auto leaves = tree.ActiveLeaves();
  ASSERT_EQ(leaves.size(), 1u);
  // p -> q, not r -> not s, not r.
  EXPECT_EQ(leaves[0]->goal.size(), 2u);
  for (const Literal& l : leaves[0]->goal) EXPECT_FALSE(l.positive);
}

TEST(SlpTreeTest, ComputedMguAccumulates) {
  Fixture f("p(X, b) :- q(X). q(a).");
  SlpTree tree =
      SlpTree::Build(f.program, MustParseQuery(f.store, "p(U, V)"));
  auto leaves = tree.ActiveLeaves();
  ASSERT_EQ(leaves.size(), 1u);
  Goal query = MustParseQuery(f.store, "p(U, V)");
  // Rebuild the root goal atom and apply the leaf's computed mgu. The root
  // of this tree used the same variables (first parse); check via text.
  const SlpNode& root = tree.root();
  const Term* applied =
      leaves[0]->computed_mgu.Apply(f.store, root.goal[0].atom);
  EXPECT_EQ(f.store.ToString(applied), "p(a,b)");
}

TEST(SlpTreeTest, RepeatedGroundGoalClosesInfiniteBranch) {
  Fixture f("p :- p.");
  SlpTree tree = SlpTree::Build(f.program, MustParseQuery(f.store, "p"));
  EXPECT_FALSE(tree.truncated());  // exact: the branch provably repeats
  EXPECT_TRUE(tree.ActiveLeaves().empty());
  ASSERT_EQ(tree.root().children.size(), 1u);
  EXPECT_EQ(tree.root().children[0]->kind, SlpNodeKind::kInfiniteLoop);
}

TEST(SlpTreeTest, TruncationIsReported) {
  // A branch with ever-deeper ground goals never repeats a goal; the
  // depth budget trips and the tree is marked truncated.
  Fixture f("p(X) :- p(f(X)).");
  SlpTreeOptions opts;
  opts.max_depth = 10;
  SlpTree tree =
      SlpTree::Build(f.program, MustParseQuery(f.store, "p(a)"), opts);
  EXPECT_TRUE(tree.truncated());
  EXPECT_TRUE(tree.ActiveLeaves().empty());
}

TEST(SlpTreeTest, BranchingFollowsClauseOrder) {
  Fixture f("p :- q. p :- r. q. r.");
  SlpTree tree = SlpTree::Build(f.program, MustParseQuery(f.store, "p"));
  ASSERT_EQ(tree.root().children.size(), 2u);
  EXPECT_EQ(tree.root().children[0]->clause_index, 0u);
  EXPECT_EQ(tree.root().children[1]->clause_index, 1u);
}

// ---------------------------------------------------------------------------
// Figures 1-3: SLP-tree shapes for the Van Gelder program.
// ---------------------------------------------------------------------------

TEST(VanGelderFigures, Figure1TreeForWi) {
  // T_{w(i)}: a single branch w(i) -> not u(i) (Figure 1).
  Fixture f(kVanGelder);
  for (int i = 0; i <= 4; ++i) {
    Goal goal = MustParseQuery(f.store, StrCat("w(", Int(i), ")"));
    SlpTree tree = SlpTree::Build(f.program, goal);
    EXPECT_EQ(tree.node_count(), 2u);
    auto leaves = tree.ActiveLeaves();
    ASSERT_EQ(leaves.size(), 1u) << "w(" << i << ")";
    ASSERT_EQ(leaves[0]->goal.size(), 1u);
    EXPECT_EQ(leaves[0]->goal[0].ToString(f.store),
              StrCat("not u(", Int(i), ")"));
  }
}

TEST(VanGelderFigures, Figure2TreeForUiHasSingleLeafAtWiMinus1) {
  // T_{u(i)} for finite i >= 2: one active leaf {not w(i-1)} at depth i-1
  // along the successor-shift spine (Figure 2).
  Fixture f(kVanGelder);
  for (int i = 2; i <= 6; ++i) {
    Goal goal = MustParseQuery(f.store, StrCat("u(", Int(i), ")"));
    SlpTree tree = SlpTree::Build(f.program, goal);
    auto leaves = tree.ActiveLeaves();
    ASSERT_EQ(leaves.size(), 1u) << "u(" << i << ")";
    ASSERT_EQ(leaves[0]->goal.size(), 1u);
    EXPECT_EQ(leaves[0]->goal[0].ToString(f.store),
              StrCat("not w(", Int(i - 1), ")"));
    EXPECT_EQ(leaves[0]->depth, static_cast<size_t>(i));
  }
}

TEST(VanGelderFigures, U1HasNoActiveLeaves) {
  // 1 = s(0) has no e-predecessor: T_{u(1)} fails immediately.
  Fixture f(kVanGelder);
  SlpTree tree =
      SlpTree::Build(f.program, MustParseQuery(f.store, "u(s(0))"));
  EXPECT_TRUE(tree.ActiveLeaves().empty());
  EXPECT_FALSE(tree.truncated());
}

TEST(VanGelderFigures, Figure3TreeForU0HasLeafPerInteger) {
  // T_{u(0)}: infinitely many active leaves {not w(i)}, i = 1, 2, ...
  // (Figure 3). Truncated at the depth budget, the first K leaves appear.
  Fixture f(kVanGelder);
  SlpTreeOptions opts;
  opts.max_depth = 12;
  SlpTree tree =
      SlpTree::Build(f.program, MustParseQuery(f.store, "u(0)"), opts);
  EXPECT_TRUE(tree.truncated());
  auto leaves = tree.ActiveLeaves();
  ASSERT_GE(leaves.size(), 10u);
  for (size_t k = 0; k < 10; ++k) {
    ASSERT_EQ(leaves[k]->goal.size(), 1u);
    EXPECT_EQ(leaves[k]->goal[0].ToString(f.store),
              StrCat("not w(", Int(static_cast<int>(k) + 1), ")"));
  }
}

// ---------------------------------------------------------------------------
// Figure 4: the global tree for <- w(n), statuses and levels.
// ---------------------------------------------------------------------------

TEST(VanGelderFigures, Figure4StatusesWiSuccessfulUiFailed) {
  Fixture f(kVanGelder);
  GlobalTreeOptions opts;
  opts.max_negation_depth = 24;
  for (int i = 1; i <= 5; ++i) {
    GlobalTree w_tree = GlobalTree::Build(
        f.program, MustParseQuery(f.store, StrCat("w(", Int(i), ")")), opts);
    EXPECT_EQ(w_tree.status(), GoalStatus::kSuccessful) << "w(" << i << ")";
    GlobalTree u_tree = GlobalTree::Build(
        f.program, MustParseQuery(f.store, StrCat("u(", Int(i), ")")), opts);
    EXPECT_EQ(u_tree.status(), GoalStatus::kFailed) << "u(" << i << ")";
  }
}

TEST(VanGelderFigures, Figure4LevelOfWnIsTwoN) {
  // "For n >= 1, the goal <- w(s^n(0)) has level 2n."
  Fixture f(kVanGelder);
  GlobalTreeOptions opts;
  opts.max_negation_depth = 30;
  for (int n = 1; n <= 6; ++n) {
    GlobalTree tree = GlobalTree::Build(
        f.program, MustParseQuery(f.store, StrCat("w(", Int(n), ")")), opts);
    ASSERT_EQ(tree.status(), GoalStatus::kSuccessful);
    EXPECT_TRUE(tree.level_exact());
    EXPECT_EQ(tree.level(), Ordinal::Finite(2 * n)) << "w(" << n << ")";
  }
}

TEST(VanGelderFigures, Figure4LevelOfUnIsTwoNMinusOne) {
  Fixture f(kVanGelder);
  GlobalTreeOptions opts;
  opts.max_negation_depth = 30;
  for (int n = 2; n <= 6; ++n) {
    GlobalTree tree = GlobalTree::Build(
        f.program, MustParseQuery(f.store, StrCat("u(", Int(n), ")")), opts);
    ASSERT_EQ(tree.status(), GoalStatus::kFailed);
    EXPECT_EQ(tree.level(), Ordinal::Finite(2 * n - 1)) << "u(" << n << ")";
  }
}

TEST(VanGelderFigures, W0IsNotDeterminedWithinAnyFiniteBudget) {
  // <- w(0) has level w+2: no finite exploration determines it; the
  // analytic limit is checked in the ordinal tests / Figure 4 bench.
  Fixture f(kVanGelder);
  GlobalTreeOptions opts;
  opts.slp.max_depth = 20;
  opts.max_negation_depth = 30;
  GlobalTree tree =
      GlobalTree::Build(f.program, MustParseQuery(f.store, "w(0)"), opts);
  EXPECT_EQ(tree.status(), GoalStatus::kUnknown);
}

TEST(GlobalTreeTest, StatusesMatchEngineOnGamePrograms) {
  Rng rng(0x6106A1u);
  for (int trial = 0; trial < 15; ++trial) {
    std::string src = testing::RandomGameProgram(rng, 4, 35);
    Fixture f(src);
    GlobalSlsEngine engine(f.program);
    GroundProgram gp = testing::MustGround(f.program);
    for (AtomId a = 0; a < gp.atom_count(); ++a) {
      const Term* atom = gp.AtomTerm(a);
      GlobalTreeOptions opts;
      opts.max_negation_depth = 20;
      GlobalTree tree =
          GlobalTree::Build(f.program, Goal{Literal::Pos(atom)}, opts);
      GoalStatus expected = engine.StatusOf(atom);
      if (tree.status() == GoalStatus::kUnknown) continue;  // budget
      EXPECT_EQ(tree.status(), expected)
          << f.store.ToString(atom) << " in\n" << src;
    }
  }
}

TEST(GlobalTreeTest, NegationNodeForEmptyLeafHasNoChildren) {
  Fixture f("p.");
  GlobalTree tree = GlobalTree::Build(f.program, MustParseQuery(f.store, "p"));
  ASSERT_EQ(tree.root().children.size(), 1u);
  const GlobalNode& neg = *tree.root().children[0];
  EXPECT_EQ(neg.kind, GlobalNodeKind::kNegation);
  EXPECT_TRUE(neg.children.empty());
  EXPECT_EQ(neg.status, GoalStatus::kSuccessful);
  EXPECT_EQ(neg.level, Ordinal());  // level 0
  EXPECT_EQ(tree.level(), Ordinal::Finite(1));
}

TEST(GlobalTreeTest, NongroundNodeFlounders) {
  Fixture f("p(X) :- not q(f(X)). q(a).");
  GlobalTree tree =
      GlobalTree::Build(f.program, MustParseQuery(f.store, "p(X)"));
  EXPECT_EQ(tree.status(), GoalStatus::kFloundered);
}

TEST(GlobalTreeTest, RenderingMentionsStatusesAndLevels) {
  Fixture f("p :- not q.");
  GlobalTree tree = GlobalTree::Build(f.program, MustParseQuery(f.store, "p"));
  std::string s = tree.ToString(f.store);
  EXPECT_NE(s.find("successful"), std::string::npos);
  EXPECT_NE(s.find("failed"), std::string::npos);
  EXPECT_NE(s.find("level"), std::string::npos);
}

}  // namespace
}  // namespace gsls
