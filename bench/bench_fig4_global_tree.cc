// E3 / Figure 4: the global tree for <- w(n). Verifies the paper's level
// claims — every w(i) successful, every u(i) failed, level(w(n)) = 2n,
// level(u(n)) = 2n-1 — and composes the analytic transfinite limit
// level(w(0)) = w+2. Benchmarks global-tree construction as n grows.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include <cstdio>

#include "core/global_tree.h"
#include "lang/parser.h"
#include "obs/trace.h"
#include "util/strings.h"
#include "workload/generators.h"

using namespace gsls;

namespace {

void PrintVerification() {
  TermStore store;
  Program program = MustParseProgram(store, workload::VanGelderProgram());
  std::printf("=== E3 / Figure 4: global tree for <- w(n) ===\n");
  std::printf("paper: w(i) successful at level 2i, u(i) failed at 2i-1\n");
  std::printf("%4s  %-12s %-8s %-8s   %-12s %-8s %-8s\n", "n", "w status",
              "level", "paper", "u status", "level", "paper");
  GlobalTreeOptions opts;
  opts.max_negation_depth = 40;
  bool all_ok = true;
  for (int n = 1; n <= 9; ++n) {
    GlobalTree w = GlobalTree::Build(
        program,
        MustParseQuery(store, StrCat("w(", workload::IntTerm(n), ")")),
        opts);
    GlobalTree u = GlobalTree::Build(
        program,
        MustParseQuery(store, StrCat("u(", workload::IntTerm(n), ")")),
        opts);
    bool ok = w.status() == GoalStatus::kSuccessful &&
              w.level() == Ordinal::Finite(2 * n) &&
              u.status() == GoalStatus::kFailed &&
              (n == 1 ? u.level() == Ordinal::Finite(1)
                      : u.level() == Ordinal::Finite(2 * n - 1));
    all_ok = all_ok && ok;
    std::printf("%4d  %-12s %-8s %-8d   %-12s %-8s %-8d\n", n,
                GoalStatusName(w.status()), w.level().ToString().c_str(),
                2 * n, GoalStatusName(u.status()),
                u.level().ToString().c_str(), n == 1 ? 1 : 2 * n - 1);
  }
  std::printf("level claims hold for n = 1..9: %s\n",
              all_ok ? "yes" : "NO");

  // The transfinite composition of Figure 4.
  Ordinal sup = Ordinal::LimitOfStrictlyIncreasing();  // lub{2n} = w
  Ordinal u0 = sup + Ordinal::Finite(1);
  Ordinal w0 = u0 + Ordinal::Finite(1);
  std::printf(
      "analytic limit: lub{2n} = %s  =>  level(u(0)) = %s, level(w(0)) = "
      "%s  (paper: w+2)  %s\n\n",
      sup.ToString().c_str(), u0.ToString().c_str(), w0.ToString().c_str(),
      w0 == Ordinal::Omega() + Ordinal::Finite(2) ? "yes" : "NO");
}

void BM_GlobalTreeWn(benchmark::State& state) {
  TermStore store;
  Program program = MustParseProgram(store, workload::VanGelderProgram());
  Goal goal = MustParseQuery(
      store,
      StrCat("w(", workload::IntTerm(static_cast<int>(state.range(0))),
             ")"));
  GlobalTreeOptions opts;
  opts.max_negation_depth = 2 * static_cast<size_t>(state.range(0)) + 4;
  for (auto _ : state) {
    GlobalTree tree = GlobalTree::Build(program, goal, opts);
    benchmark::DoNotOptimize(tree.node_count());
  }
  state.counters["nodes"] = static_cast<double>(
      GlobalTree::Build(program, goal, opts).node_count());
}
BENCHMARK(BM_GlobalTreeWn)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(12);

}  // namespace

GSLS_BENCH_MAIN(PrintVerification())
