#ifndef GSLS_BENCH_BENCH_MAIN_H_
#define GSLS_BENCH_BENCH_MAIN_H_

// Shared `main()` for the bench binaries. Every bench follows the same
// shape: install the `--gsls_trace` flag guard, run a file-local
// `PrintVerification()` (either `void`, or `bool` when its result is a
// hard CI gate), then hand the remaining flags to Google Benchmark.
// These macros hoist that boilerplate; a bench file keeps only its
// workloads, its verification table, and one macro line.
//
//   GSLS_BENCH_MAIN(PrintVerification());
//       verification prints a table but gates nothing (void or ignored).
//
//   GSLS_BENCH_MAIN_GATED(PrintVerification(), "model disagreement");
//       the expression yields bool; `false` exits 1 with the message
//       *after* the benchmarks ran, so the JSON is still written and the
//       failure is visible in CI both as the message and the exit code.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <type_traits>
#include <utility>

#include "obs/trace.h"

namespace gsls::bench {

// Runs a verification callable and normalizes its result to the gate
// convention: `void` verifications always pass, `bool` ones gate.
template <typename F>
bool RunVerification(F&& verify) {
  if constexpr (std::is_void_v<decltype(std::forward<F>(verify)())>) {
    std::forward<F>(verify)();
    return true;
  } else {
    return std::forward<F>(verify)();
  }
}

inline int GateExit(bool ok, const char* failure_message) {
  if (!ok) {
    std::fprintf(stderr, "%s\n", failure_message);
    return 1;
  }
  return 0;
}

}  // namespace gsls::bench

#define GSLS_BENCH_MAIN_GATED(verify_expr, failure_message)                \
  int main(int argc, char** argv) {                                        \
    gsls::obs::TraceFlagGuard gsls_bench_trace(&argc, argv);               \
    const bool gsls_bench_ok =                                             \
        ::gsls::bench::RunVerification([&] { return (verify_expr); });     \
    benchmark::Initialize(&argc, argv);                                    \
    benchmark::RunSpecifiedBenchmarks();                                   \
    return ::gsls::bench::GateExit(gsls_bench_ok, failure_message);        \
  }

#define GSLS_BENCH_MAIN(verify_expr) \
  GSLS_BENCH_MAIN_GATED(verify_expr, "bench verification failed")

#endif  // GSLS_BENCH_BENCH_MAIN_H_
