// Cancellation + deadline benchmarks and the deadline-latency hard gate.
//
// Verification gates two properties of the cooperative-cancellation
// layer on a deep single-SCC chain game whose cancellable solve time
// dwarfs every interval between checkpoints:
//
//   1. A pre-expired deadline aborts at the very first checkpoint: the
//      solve returns kDeadlineExceeded with every atom still undefined,
//      having spent only the structural condensation build (which, like
//      recondensation windows, always runs to completion — there is no
//      consistent half-built graph to abort into). Its elapsed time is
//      the measured estimate of that uncancellable prefix.
//   2. A deadline expiring inside the cancellable solve phase is honored
//      within one checkpoint interval plus the crash-consistent abort's
//      own O(component) rollback: the overshoot past the deadline must
//      stay under a generous multiple of the *measured* mean interval
//      (cancellable time divided by the checkpoint count a fault
//      injector learns in count-only mode), plus an eighth of the
//      cancellable phase for rolling back the in-flight component and
//      materializing the partial model, plus a 2 ms floor for scheduler
//      jitter. The bound must itself sit well below the solve time
//      remaining past the deadline, so a solver that only notices
//      deadlines between passes fails loudly.
//
// The benchmark rows feed BENCH_cancel.json: an inactive-context solve
// (no token, no deadline — checkpoints must collapse to a latch load)
// against an armed one, so bench_compare's 1.5x tolerance gates
// checkpoint overhead run-over-run.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include <cstdio>
#include <vector>

#include "ground/ground_program.h"
#include "term/term_store.h"
#include "obs/trace.h"
#include "solver/solver.h"
#include "util/cancel.h"
#include "util/strings.h"
#include "wfs/wfs.h"

using namespace gsls;

namespace {

// Win game engineered so the solve has substantial cancellable work: a
// K-chain `win_i :- not win_{i+1}` (the determined won/lost frontier
// walks back from the terminal) welded into a *single* SCC by a dead
// back-edge rule whose body holds an atom with no rules. The weld never
// fires, so the model is the chain's alternating won/lost; but
// condensation-wise all K win atoms share one component, keeping the
// alternation inside one component evaluation. Built directly as a
// GroundProgram — this bench measures the solver's checkpoints, not the
// parser or grounder, and direct construction is what lets the chain be
// long enough for wall-clock deadline gates to clear scheduler jitter.
GroundProgram DeepChainProgram(TermStore& store) {
  constexpr int kChain = 1'500'000;
  GroundProgram gp(&store);
  std::vector<AtomId> win(kChain + 1);
  for (int i = 0; i <= kChain; ++i) {
    win[i] = gp.InternAtom(store.MakeConstant(StrCat("win_n", i)));
  }
  const AtomId unreachable =
      gp.InternAtom(store.MakeConstant("unreachable"));
  for (int i = 0; i < kChain; ++i) {
    gp.AddRule({win[i], {}, {win[i + 1]}});
  }
  gp.AddRule({win[kChain], {win[0], unreachable}, {}});
  return gp;
}

uint64_t MedianSolveNs(const GroundProgram& gp, const SolverOptions& opts) {
  uint64_t best = ~0ull;
  for (int i = 0; i < 3; ++i) {
    const uint64_t start = SteadyNowNs();
    benchmark::DoNotOptimize(SolveWfs(gp, opts).model.atom_count());
    const uint64_t ns = SteadyNowNs() - start;
    if (ns < best) best = ns;  // min of 3: least-noise estimate
  }
  return best;
}

bool PrintVerification() {
  TermStore store;
  GroundProgram gp = DeepChainProgram(store);
  bool ok = true;

  // Learn the checkpoint count of a completed solve (count-only fault
  // injector) and the full solve time; their ratio is the mean interval
  // the deadline gate is expressed in.
  FaultInjector counter;
  counter.Arm(0);
  SolverOptions counted;
  counted.fault = &counter;
  SolveWfs(gp, counted);
  const uint64_t checkpoints = counter.checkpoints();
  const uint64_t full_ns = MedianSolveNs(gp, SolverOptions{});

  std::printf("=== cancellation/deadline gate ===\n");
  if (checkpoints == 0) {
    std::printf("FAIL: solve reported no cancellation checkpoints\n");
    return false;
  }

  // -- gate 1: pre-expired deadline aborts at the first checkpoint ------
  // The elapsed time doubles as the measured estimate of the structural
  // (uncancellable) condensation-build prefix.
  uint64_t build_ns = 0;
  {
    SolverOptions opts;
    opts.deadline_ns = 1;  // long past on the steady clock
    const uint64_t start = SteadyNowNs();
    WfsModel aborted = SolveWfs(gp, opts);
    build_ns = SteadyNowNs() - start;
    bool untouched = true;
    for (AtomId a = 0; a < aborted.model.atom_count(); ++a) {
      if (aborted.model.Value(a) != TruthValue::kUndefined) untouched = false;
    }
    std::printf("pre-expired deadline  : %8.3f ms, outcome=%s, untouched=%d\n",
                build_ns / 1e6, SolveOutcomeName(aborted.outcome), untouched);
    if (aborted.outcome != SolveOutcome::kDeadlineExceeded || !untouched) {
      std::printf("FAIL: expected an untouched deadline-exceeded model\n");
      ok = false;
    }
    if (build_ns >= full_ns) {
      std::printf("FAIL: immediate abort took longer than a full solve\n");
      ok = false;
    }
  }

  const uint64_t cancellable_ns = full_ns - build_ns;
  const uint64_t interval_ns = cancellable_ns / checkpoints;
  std::printf("full solve            : %8.3f ms (%.3f ms build + %.3f ms "
              "cancellable over %llu checkpoints, mean interval %.2f us)\n",
              full_ns / 1e6, build_ns / 1e6, cancellable_ns / 1e6,
              static_cast<unsigned long long>(checkpoints),
              interval_ns / 1e3);

  // -- gate 2: mid-solve deadline honored within one interval -----------
  // Deadline one third into the cancellable phase. The overshoot bound
  // has three parts: 25 mean checkpoint intervals (the latency until a
  // checkpoint observes the expiry), one eighth of the cancellable phase
  // (the abort is crash-consistent, so the in-flight component — here one
  // giant SCC — is rolled back to undefined and the partial model still
  // materializes, both O(component)), and a 2 ms scheduler-jitter floor.
  // A pass-granular (or coarser) solver overshoots by a large fraction of
  // the remaining two thirds and fails; the separation sanity check keeps
  // the gate meaningful if the workload shrinks. Scheduler noise can
  // double the rollback cost on a loaded CI host, so the timing check
  // gets four attempts — a structurally late solver fails all four
  // deterministically, a noise spike does not repeat.
  {
    const uint64_t budget_ns = build_ns + cancellable_ns / 3;
    const uint64_t slack_ns =
        25 * interval_ns + cancellable_ns / 8 + 2'000'000;
    if (slack_ns * 2 >= full_ns - budget_ns) {
      std::printf("FAIL: slack bound is not separated from the remaining "
                  "solve time; grow the workload\n");
      ok = false;
    }
    bool within_bound = false;
    for (int attempt = 1; attempt <= 4 && ok && !within_bound; ++attempt) {
      SolverOptions opts;
      opts.deadline_ns = DeadlineAfterNs(budget_ns);
      const uint64_t start = SteadyNowNs();
      WfsModel aborted = SolveWfs(gp, opts);
      const uint64_t ns = SteadyNowNs() - start;
      const uint64_t overshoot = ns > budget_ns ? ns - budget_ns : 0;
      std::printf("mid-solve deadline %d/4: %8.3f ms for a %.3f ms budget "
                  "(overshoot %.3f ms, bound %.3f ms)\n",
                  attempt, ns / 1e6, budget_ns / 1e6, overshoot / 1e6,
                  slack_ns / 1e6);
      if (aborted.outcome != SolveOutcome::kDeadlineExceeded) {
        std::printf("FAIL: expected deadline-exceeded, got %s\n",
                    SolveOutcomeName(aborted.outcome));
        ok = false;
      }
      within_bound = overshoot <= slack_ns;
    }
    if (ok && !within_bound) {
      std::printf("FAIL: deadline overshoot above the checkpoint-interval "
                  "bound on all four attempts\n");
      ok = false;
    }
  }
  return ok;
}

// -- benchmark rows: checkpoint overhead, inactive vs armed --------------

void BM_FreshSolveNoToken(benchmark::State& state) {
  TermStore store;
  GroundProgram gp = DeepChainProgram(store);
  SolverOptions opts;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveWfs(gp, opts).model.atom_count());
  }
}
BENCHMARK(BM_FreshSolveNoToken)->Unit(benchmark::kMillisecond);

void BM_FreshSolveArmedToken(benchmark::State& state) {
  TermStore store;
  GroundProgram gp = DeepChainProgram(store);
  CancelToken token;
  SolverOptions opts;
  opts.cancel = &token;
  opts.deadline_ns = DeadlineAfterNs(3'600'000'000'000ull);  // far future
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveWfs(gp, opts).model.atom_count());
  }
}
BENCHMARK(BM_FreshSolveArmedToken)->Unit(benchmark::kMillisecond);

}  // namespace

GSLS_BENCH_MAIN_GATED(PrintVerification(),
                      "cancellation deadline-latency gate failed")
