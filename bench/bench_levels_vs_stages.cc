// E8 / Corollary 4.6: the level of a determined ground goal equals the
// stage of the corresponding literal under the V_P iteration (Def. 2.4).
// Verifies the correspondence on game chains (where stages grow linearly)
// and random graphs, then benchmarks stage computation.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/engine.h"
#include "ground/grounder.h"
#include "lang/parser.h"
#include "util/strings.h"
#include "wfs/wfs.h"
#include "workload/generators.h"

using namespace gsls;

namespace {

void PrintVerification() {
  std::printf("=== E8 / Cor. 4.6: level == stage ===\n");
  std::printf("game chain n1 -> ... -> nK: win(ni) alternates, stage K-i+1\n");
  std::printf("%6s  %10s %10s %10s  %s\n", "K", "atoms", "checked",
              "equal", "all match");
  for (int k : {4, 8, 16, 24}) {
    TermStore store;
    Program program = MustParseProgram(store, workload::GameChain(k));
    GroundingOptions gopts;
    Result<GroundProgram> gp = GroundRelevant(program, gopts);
    WfsStages stages = ComputeWfsStages(gp.value());
    GlobalSlsEngine engine(program);
    size_t checked = 0, equal = 0;
    for (AtomId a = 0; a < gp->atom_count(); ++a) {
      const Term* atom = gp->AtomTerm(a);
      QueryResult r = engine.SolveAtom(atom);
      if (r.status == GoalStatus::kSuccessful && r.level_exact) {
        ++checked;
        if (r.answers[0].level == Ordinal::Finite(stages.true_stage[a])) {
          ++equal;
        }
      } else if (r.status == GoalStatus::kFailed && r.level_exact) {
        ++checked;
        if (r.level == Ordinal::Finite(stages.false_stage[a])) ++equal;
      }
    }
    std::printf("%6d  %10zu %10zu %10zu  %s\n", k, gp->atom_count(),
                checked, equal, checked == equal ? "yes" : "NO");
  }

  Rng rng(0xCAFE);
  size_t checked = 0, equal = 0;
  for (int t = 0; t < 30; ++t) {
    std::string src = workload::RandomGame(rng, 5, 30);
    TermStore store;
    Program program = MustParseProgram(store, src);
    GroundingOptions gopts;
    Result<GroundProgram> gp = GroundRelevant(program, gopts);
    WfsStages stages = ComputeWfsStages(gp.value());
    GlobalSlsEngine engine(program);
    for (AtomId a = 0; a < gp->atom_count(); ++a) {
      QueryResult r = engine.SolveAtom(gp->AtomTerm(a));
      if (r.status == GoalStatus::kSuccessful && r.level_exact) {
        ++checked;
        equal += r.answers[0].level ==
                 Ordinal::Finite(stages.true_stage[a]);
      } else if (r.status == GoalStatus::kFailed && r.level_exact) {
        ++checked;
        equal += r.level == Ordinal::Finite(stages.false_stage[a]);
      }
    }
  }
  std::printf("random games: %zu determined goals checked, %zu equal: %s\n\n",
              checked, equal, checked == equal ? "yes" : "NO");
}

void BM_StageComputation(benchmark::State& state) {
  TermStore store;
  Program program = MustParseProgram(
      store, workload::GameChain(static_cast<int>(state.range(0))));
  GroundingOptions gopts;
  Result<GroundProgram> gp = GroundRelevant(program, gopts);
  for (auto _ : state) {
    WfsStages stages = ComputeWfsStages(gp.value());
    benchmark::DoNotOptimize(stages.iterations);
  }
  state.counters["stages"] = static_cast<double>(
      ComputeWfsStages(gp.value()).iterations);
}
BENCHMARK(BM_StageComputation)->Arg(16)->Arg(64)->Arg(256);

void BM_LevelViaEngine(benchmark::State& state) {
  TermStore store;
  Program program = MustParseProgram(
      store, workload::GameChain(static_cast<int>(state.range(0))));
  const Term* root = MustParseTerm(store, "win(n1)");
  for (auto _ : state) {
    GlobalSlsEngine engine(program);
    QueryResult r = engine.SolveAtom(root);
    benchmark::DoNotOptimize(r.level);
  }
}
BENCHMARK(BM_LevelViaEngine)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  PrintVerification();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
