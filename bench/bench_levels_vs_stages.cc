// E8 / Corollary 4.6: the level of a determined ground goal equals the
// stage of the corresponding literal under the V_P iteration (Def. 2.4).
//
// Hard CI gate (nonzero exit on any mismatch) for the SCC stage
// reconstruction (solver/stages.h) that replaced the quadratic V_P
// iteration on every production path: per workload family it checks
//   - SolveWfs with `compute_levels` against the `ComputeWfsStages` oracle,
//     atom-for-atom over both stage arrays (and the model),
//   - thread-count invariance of the reconstructed levels (2 and 4 workers
//     against the sequential tape),
//   - level maintenance across incremental fact deltas vs a fresh leveled
//     solve of the same masked program,
// and reports the levels-on vs levels-off overhead of the solve plus the
// speedup over the retired V_P iteration. The engine-facing Cor. 4.6
// correspondence (query level == stage) is re-verified on game chains and
// random games. The benchmarks behind the table feed BENCH_levels.json in
// CI.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include <chrono>
#include <cstdio>
#include <string>

#include "core/engine.h"
#include "ground/grounder.h"
#include "lang/parser.h"
#include "obs/trace.h"
#include "solver/solver.h"
#include "util/rng.h"
#include "util/strings.h"
#include "wfs/wfs.h"
#include "workload/generators.h"

using namespace gsls;

namespace {

GroundProgram GroundOf(const std::string& src, TermStore& store) {
  Program program = MustParseProgram(store, src);
  GroundingOptions gopts;
  gopts.max_rules = 5'000'000;
  Result<GroundProgram> gp = GroundRelevant(program, gopts);
  if (!gp.ok()) {
    std::fprintf(stderr, "grounding failed: %s\n",
                 gp.status().ToString().c_str());
    abort();
  }
  return std::move(gp.value());
}

SolverOptions Leveled(unsigned threads = 1) {
  SolverOptions opts;
  opts.num_threads = threads;
  opts.compute_levels = true;
  return opts;
}

/// Atom-for-atom comparison of reconstructed levels against the oracle.
bool LevelsEqual(const GroundProgram& gp, const WfsModel& got,
                 const WfsStages& oracle, const char* name,
                 const char* what) {
  if (!(got.model == oracle.model)) {
    std::printf("MODEL DISAGREEMENT (%s, %s):\n%s", name, what,
                DescribeModelDifference(gp, got.model, oracle.model).c_str());
    return false;
  }
  for (AtomId a = 0; a < gp.atom_count(); ++a) {
    if (got.true_stage[a] != oracle.true_stage[a] ||
        got.false_stage[a] != oracle.false_stage[a]) {
      std::printf(
          "STAGE DISAGREEMENT (%s, %s) on %s: got t=%u f=%u, want t=%u "
          "f=%u\n",
          name, what, gp.store().ToString(gp.AtomTerm(a)).c_str(),
          got.true_stage[a], got.false_stage[a], oracle.true_stage[a],
          oracle.false_stage[a]);
      return false;
    }
  }
  return true;
}

/// One workload family: agreement (sequential, threaded, incremental
/// churn) plus the levels-on/levels-off overhead and V_P speedup columns.
bool RunFamily(const char* name, const std::string& src) {
  TermStore store;
  GroundProgram gp = GroundOf(src, store);
  WfsStages oracle = ComputeWfsStages(gp);
  WfsModel seq = SolveWfs(gp, Leveled());
  bool agree = LevelsEqual(gp, seq, oracle, name, "sequential");
  for (unsigned threads : {2u, 4u}) {
    WfsModel par = SolveWfs(gp, Leveled(threads));
    if (par.true_stage != seq.true_stage ||
        par.false_stage != seq.false_stage) {
      std::printf("THREAD VARIANCE (%s) at %u workers\n", name, threads);
      agree = false;
    }
  }
  {
    // Levels maintained across deltas vs fresh leveled solves.
    IncrementalSolver inc(GroundOf(src, store), Leveled());
    inc.Model();
    Rng rng(0x1EEE15u);
    for (int d = 0; d < 24 && agree; ++d) {
      AtomId a = static_cast<AtomId>(rng.Uniform(inc.program().atom_count()));
      if (inc.HasFact(a)) {
        inc.RetractAtom(a);
      } else {
        inc.AssertAtom(a);
      }
      const WfsModel& got = inc.Model();
      WfsModel want = inc.SolveFresh();
      if (got.true_stage != want.true_stage ||
          got.false_stage != want.false_stage ||
          !(got.model == want.model)) {
        std::printf("INCREMENTAL LEVEL DISAGREEMENT (%s) delta %d\n", name,
                    d);
        agree = false;
      }
    }
  }

  auto time_us = [](auto&& fn, int reps) {
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) fn();
    std::chrono::duration<double> s =
        std::chrono::steady_clock::now() - start;
    return s.count() * 1e6 / reps;
  };
  const int kReps = 20;
  double off_us = time_us(
      [&] { benchmark::DoNotOptimize(SolveWfs(gp).model.atom_count()); },
      kReps);
  double on_us = time_us(
      [&] {
        benchmark::DoNotOptimize(SolveWfs(gp, Leveled()).model.atom_count());
      },
      kReps);
  double vp_us = time_us(
      [&] { benchmark::DoNotOptimize(ComputeWfsStages(gp).iterations); },
      5);
  std::printf("%-22s %8zu %10.1f %10.1f %7.2fx %12.1f %8.1fx  %s\n", name,
              gp.atom_count(), off_us, on_us,
              on_us / (off_us > 0 ? off_us : 1e-9), vp_us,
              vp_us / (on_us > 0 ? on_us : 1e-9), agree ? "yes" : "NO");
  return agree;
}

/// Cor. 4.6 through the engines: every determined ground goal's level
/// equals the stage of its literal.
bool VerifyEngineCorrespondence() {
  std::printf(
      "\n=== Cor. 4.6: engine level == V_P stage (determined goals) ===\n");
  bool ok = true;
  size_t checked = 0, equal = 0;
  auto check_program = [&](const std::string& src) {
    TermStore store;
    Program program = MustParseProgram(store, src);
    GroundingOptions gopts;
    Result<GroundProgram> gp = GroundRelevant(program, gopts);
    WfsStages stages = ComputeWfsStages(gp.value());
    GlobalSlsEngine engine(program);
    for (AtomId a = 0; a < gp->atom_count(); ++a) {
      QueryResult r = engine.SolveAtom(gp->AtomTerm(a));
      if (r.status == GoalStatus::kSuccessful && r.level_exact) {
        ++checked;
        equal += r.answers[0].level == Ordinal::Finite(stages.true_stage[a]);
      } else if (r.status == GoalStatus::kFailed && r.level_exact) {
        ++checked;
        equal += r.level == Ordinal::Finite(stages.false_stage[a]);
      }
    }
  };
  for (int k : {4, 8, 16, 24}) check_program(workload::GameChain(k));
  Rng rng(0xCAFE);
  for (int t = 0; t < 30; ++t) {
    check_program(workload::RandomGame(rng, 5, 30));
  }
  std::printf("%zu determined goals checked, %zu equal: %s\n", checked,
              equal, checked == equal ? "yes" : "NO");
  ok = checked == equal && checked > 0;
  return ok;
}

bool PrintVerification() {
  std::printf(
      "=== SCC level reconstruction vs V_P stage iteration ===\n"
      "agreement: sequential + 2/4 workers + 24 incremental deltas per "
      "family\n");
  std::printf("%-22s %8s %10s %10s %7s %12s %8s  %s\n", "workload", "atoms",
              "off(us)", "on(us)", "ovrhd", "V_P(us)", "speedup", "agree");
  Rng rng(20260729);
  bool ok = true;
  ok &= RunFamily("chain(256)", workload::GameChain(256));
  ok &= RunFamily("chain(1024)", workload::GameChain(1024));
  ok &= RunFamily("grid(16x16)", workload::GameGrid(16, 16));
  ok &= RunFamily("cycle(33)+tail(32)", workload::GameCycleWithTail(33, 32));
  ok &= RunFamily("random(64,10%)", workload::RandomGame(rng, 64, 10));
  ok &= RunFamily("random(96,6%)", workload::RandomGame(rng, 96, 6));
  ok &= RunFamily("forest(8x24)", workload::GameForest(rng, 8, 24, 12));
  {
    // Breadth: randomized agreement sweep over small mixed programs.
    Rng prng(0xBEEFu);
    int trials = 0, good = 0;
    for (; trials < 120; ++trials) {
      TermStore store;
      std::string src = workload::RandomPropositional(prng, 9, 16, 4);
      GroundProgram gp = GroundOf(src, store);
      WfsStages oracle = ComputeWfsStages(gp);
      WfsModel got = SolveWfs(gp, Leveled());
      if (LevelsEqual(gp, got, oracle, "random-propositional", src.c_str())) {
        ++good;
      }
    }
    std::printf("random propositional sweep: %d/%d programs agree\n", good,
                trials);
    ok &= good == trials;
  }
  ok &= VerifyEngineCorrespondence();
  std::printf(
      "\nExpected shape: agree everywhere; levels-on overhead stays a small\n"
      "constant factor of the plain solve, while the V_P iteration falls\n"
      "behind quadratically with chain length.\n\n");
  return ok;
}

void BM_SolveWfs_NoLevels_Chain(benchmark::State& state) {
  TermStore store;
  GroundProgram gp =
      GroundOf(workload::GameChain(static_cast<int>(state.range(0))), store);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveWfs(gp).model.atom_count());
  }
  state.counters["atoms"] = static_cast<double>(gp.atom_count());
}
BENCHMARK(BM_SolveWfs_NoLevels_Chain)->Arg(256)->Arg(1024)->Arg(4096);

void BM_SolveWfs_Levels_Chain(benchmark::State& state) {
  TermStore store;
  GroundProgram gp =
      GroundOf(workload::GameChain(static_cast<int>(state.range(0))), store);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SolveWfs(gp, Leveled()).true_stage.size());
  }
  state.counters["atoms"] = static_cast<double>(gp.atom_count());
}
BENCHMARK(BM_SolveWfs_Levels_Chain)->Arg(256)->Arg(1024)->Arg(4096);

void BM_VpStageIteration_Chain(benchmark::State& state) {
  TermStore store;
  GroundProgram gp =
      GroundOf(workload::GameChain(static_cast<int>(state.range(0))), store);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeWfsStages(gp).iterations);
  }
  state.counters["atoms"] = static_cast<double>(gp.atom_count());
}
BENCHMARK(BM_VpStageIteration_Chain)->Arg(256)->Arg(1024);

void BM_SolveWfs_Levels_RandomGame(benchmark::State& state) {
  Rng gen(5);
  TermStore store;
  GroundProgram gp = GroundOf(
      workload::RandomGame(gen, static_cast<int>(state.range(0)), 10), store);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveWfs(gp, Leveled()).true_stage.size());
  }
}
BENCHMARK(BM_SolveWfs_Levels_RandomGame)->Arg(32)->Arg(64)->Arg(128);

void BM_SolveWfs_NoLevels_RandomGame(benchmark::State& state) {
  Rng gen(5);
  TermStore store;
  GroundProgram gp = GroundOf(
      workload::RandomGame(gen, static_cast<int>(state.range(0)), 10), store);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveWfs(gp).model.atom_count());
  }
}
BENCHMARK(BM_SolveWfs_NoLevels_RandomGame)->Arg(32)->Arg(64)->Arg(128);

}  // namespace

GSLS_BENCH_MAIN_GATED(PrintVerification(), "level/stage disagreement")
