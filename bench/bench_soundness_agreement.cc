// E7 / Thms. 4.7, 5.4, 6.2: global SLS-resolution statuses equal
// well-founded truth values. Sweeps randomized program families, reports
// the agreement matrix, and benchmarks both engines against the bottom-up
// fixpoint. Expected values come from the SCC-stratified solver
// (`SolveWfs`), which doubles this bench as an end-to-end check of the
// solver against both top-down engines.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include <cstdio>

#include "core/engine.h"
#include "core/tabled.h"
#include "ground/grounder.h"
#include "lang/parser.h"
#include "obs/trace.h"
#include "solver/solver.h"
#include "wfs/wfs.h"
#include "workload/generators.h"

using namespace gsls;

namespace {

GoalStatus Expected(TruthValue v) {
  switch (v) {
    case TruthValue::kTrue: return GoalStatus::kSuccessful;
    case TruthValue::kFalse: return GoalStatus::kFailed;
    case TruthValue::kUndefined: return GoalStatus::kIndeterminate;
  }
  return GoalStatus::kUnknown;
}

bool PrintVerification() {
  size_t total_mismatch = 0;
  std::printf("=== E7: status <-> truth agreement (Thm. 4.7) ===\n");
  std::printf("%-22s %8s %8s %8s %10s %10s\n", "family", "atoms", "search",
              "tabled", "search-unk", "mismatch");
  struct Family {
    const char* name;
    int trials;
  } families[] = {{"game(6,25%)", 40},
                  {"game(8,40%)", 25},
                  {"prop(6,10,3)", 60}};
  Rng rng(20260610);
  for (const Family& fam : families) {
    size_t atoms = 0, search_ok = 0, tabled_ok = 0, search_unknown = 0,
           mismatch = 0;
    for (int t = 0; t < fam.trials; ++t) {
      std::string src;
      if (std::string(fam.name) == "game(6,25%)") {
        src = workload::RandomGame(rng, 6, 25);
      } else if (std::string(fam.name) == "game(8,40%)") {
        src = workload::RandomGame(rng, 8, 40);
      } else {
        src = workload::RandomPropositional(rng, 6, 10, 3);
      }
      TermStore store;
      Program program = MustParseProgram(store, src);
      GroundingOptions gopts;
      Result<GroundProgram> gp = GroundRelevant(program, gopts);
      if (!gp.ok()) continue;
      WfsModel wfs = SolveWfs(gp.value());
      EngineOptions eopts;
      eopts.max_work = 300000;
      // The point of this bench is top-down vs bottom-up agreement, so
      // the search engine must not answer from a memo seeded by the very
      // solver it is being checked against.
      eopts.bottom_up_oracle = false;
      GlobalSlsEngine search(program, eopts);
      Result<TabledEngine> tabled = TabledEngine::Create(program);
      if (!tabled.ok()) continue;
      for (AtomId a = 0; a < gp->atom_count(); ++a) {
        const Term* atom = gp->AtomTerm(a);
        GoalStatus expected = Expected(wfs.model.Value(a));
        ++atoms;
        GoalStatus got = search.StatusOf(atom);
        if (got == expected) {
          ++search_ok;
        } else if (got == GoalStatus::kUnknown) {
          ++search_unknown;
        } else {
          ++mismatch;
        }
        if (tabled->StatusOf(atom) == expected) {
          ++tabled_ok;
        } else {
          ++mismatch;
        }
      }
    }
    std::printf("%-22s %8zu %8zu %8zu %10zu %10zu\n", fam.name, atoms,
                search_ok, tabled_ok, search_unknown, mismatch);
    total_mismatch += mismatch;
  }
  std::printf(
      "\nExpected shape: tabled == atoms (the memoing engine is exact on\n"
      "every function-free program); search runs with the bottom-up oracle\n"
      "disabled (it would be circular here) and may report a few honest\n"
      "kUnknown on dense SCCs; mismatch == 0 always (soundness).\n\n");
  return total_mismatch == 0;
}

void BM_SearchEngineGame(benchmark::State& state) {
  Rng rng(7);
  std::string src =
      workload::RandomGame(rng, static_cast<int>(state.range(0)), 25);
  for (auto _ : state) {
    TermStore store;
    Program program = MustParseProgram(store, src);
    GlobalSlsEngine engine(program);
    QueryResult r = engine.Solve(MustParseQuery(store, "win(X)"));
    benchmark::DoNotOptimize(r.answers.size());
  }
}
BENCHMARK(BM_SearchEngineGame)->Arg(4)->Arg(6)->Arg(8);

void BM_TabledEngineGame(benchmark::State& state) {
  Rng rng(7);
  std::string src =
      workload::RandomGame(rng, static_cast<int>(state.range(0)), 25);
  for (auto _ : state) {
    TermStore store;
    Program program = MustParseProgram(store, src);
    Result<TabledEngine> engine = TabledEngine::Create(program);
    QueryResult r = engine->Solve(MustParseQuery(store, "win(X)"));
    benchmark::DoNotOptimize(r.answers.size());
  }
}
BENCHMARK(BM_TabledEngineGame)->Arg(4)->Arg(6)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

// Soundness (mismatch == 0) is a hard gate: CI fails on any mismatch,
// not just on a crash. Honest kUnknowns are allowed.
GSLS_BENCH_MAIN_GATED(PrintVerification(), "status/truth mismatch (soundness violation)")
