// Parallel per-SCC scheduling vs. the sequential dependency-order loop:
// wide condensations (forests of independent game blocks) are where the
// work-stealing pool should approach linear scaling, while one dominant
// SCC (dense random game) bounds it by the longest chain — there the win
// comes from the cache-flat CSR layout instead. Every configuration's
// model is checked atom-for-atom against the sequential solve; any
// disagreement makes the process exit nonzero — a hard CI gate, like
// bench_incremental. Speedups are reported, not gated: they depend on the
// host's core count (printed below).

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "ground/grounder.h"
#include "lang/parser.h"
#include "obs/trace.h"
#include "solver/incremental.h"
#include "solver/solver.h"
#include "util/rng.h"
#include "wfs/wfs.h"
#include "workload/generators.h"

using namespace gsls;

namespace {

GroundProgram GroundOf(const std::string& src, TermStore& store) {
  Program program = MustParseProgram(store, src);
  GroundingOptions gopts;
  gopts.max_rules = 5'000'000;
  Result<GroundProgram> gp = GroundRelevant(program, gopts);
  if (!gp.ok()) {
    std::fprintf(stderr, "grounding failed: %s\n",
                 gp.status().ToString().c_str());
    abort();
  }
  return std::move(gp.value());
}

double SolveSeconds(const GroundProgram& gp, const SolverOptions& opts,
                    int iters, WfsModel* out) {
  *out = SolveWfs(gp, opts);  // warmup + result for the agreement check
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    benchmark::DoNotOptimize(SolveWfs(gp, opts).model.atom_count());
  }
  std::chrono::duration<double> dt = std::chrono::steady_clock::now() - start;
  return dt.count() / iters;
}

/// One workload row: sequential vs. 2-thread vs. hw-thread solve, all
/// checked for atom-for-atom agreement. Returns false on any mismatch.
bool RunFamily(const char* name, const std::string& src, int iters,
               unsigned hw) {
  TermStore store;
  GroundProgram gp = GroundOf(src, store);

  WfsModel seq_model;
  SolverOptions seq;
  double seq_s = SolveSeconds(gp, seq, iters, &seq_model);

  bool agree = true;
  double t2_s = 0, thw_s = 0;
  for (unsigned threads : {2u, hw}) {
    SolverOptions opts;
    opts.num_threads = threads;
    WfsModel par_model;
    double s = SolveSeconds(gp, opts, iters, &par_model);
    if (threads == 2) t2_s = s;
    if (threads == hw) thw_s = s;
    if (!(par_model.model == seq_model.model)) {
      agree = false;
      std::printf("DISAGREEMENT on %s at num_threads=%u:\n%s", name, threads,
                  DescribeModelDifference(gp, par_model.model,
                                          seq_model.model)
                      .c_str());
    }
  }

  std::printf("%-26s %8zu %10.1f %10.1f %10.1f %7.2fx %7.2fx  %s\n", name,
              gp.atom_count(), seq_s * 1e6, t2_s * 1e6, thw_s * 1e6,
              seq_s / (t2_s > 0 ? t2_s : 1e-12),
              seq_s / (thw_s > 0 ? thw_s : 1e-12), agree ? "yes" : "NO");
  return agree;
}

/// Threaded incremental churn: per-delta agreement of the parallel
/// up-cone re-solve against the sequential incremental path on the same
/// delta stream.
bool RunIncrementalChurn(const char* name, const std::string& src,
                         unsigned hw) {
  TermStore store;
  TermStore store2;
  IncrementalSolver threaded(GroundOf(src, store), SolverOptions{hw});
  IncrementalSolver sequential(GroundOf(src, store2), SolverOptions{1});
  threaded.Model();
  sequential.Model();
  std::vector<AtomId> facts;
  for (AtomId a = 0; a < threaded.program().atom_count(); ++a) {
    if (threaded.program().FindUnitRule(a).has_value()) facts.push_back(a);
  }
  if (facts.empty()) return true;
  Rng rng(0xFACADEu);
  for (int d = 0; d < 120; ++d) {
    // Batches of 1-5 toggles: singles stay on the sequential heap,
    // multi-component batches exercise the parallel cone.
    int batch = rng.UniformInt(1, 5);
    for (int b = 0; b < batch; ++b) {
      AtomId a = facts[rng.Uniform(facts.size())];
      if (threaded.HasFact(a)) {
        threaded.RetractAtom(a);
        sequential.RetractAtom(a);
      } else {
        threaded.AssertAtom(a);
        sequential.AssertAtom(a);
      }
    }
    if (!(threaded.Model().model == sequential.Model().model)) {
      std::printf("INCREMENTAL DISAGREEMENT on %s delta %d:\n%s", name, d,
                  DescribeModelDifference(threaded.program(),
                                          threaded.Model().model,
                                          sequential.Model().model)
                      .c_str());
      return false;
    }
  }
  std::printf("%-26s threaded churn agrees with sequential (120 deltas)\n",
              name);
  return true;
}

bool PrintVerification() {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw < 2) hw = 2;
  if (hw > 8) hw = 8;
  std::printf(
      "=== parallel SCC schedule vs sequential (hardware threads: %u, "
      "using %u) ===\n",
      std::thread::hardware_concurrency(), hw);
  std::printf("%-26s %8s %10s %10s %10s %7s %7s  %s\n", "workload", "atoms",
              "t1(us)", "t2(us)", "t_hw(us)", "x2", "x_hw", "agree");
  Rng rng(20260728);
  bool ok = true;
  ok &= RunFamily("forest(64x24,20%)",
                  workload::GameForest(rng, 64, 24, 20), 20, hw);
  ok &= RunFamily("forest(256x12,30%)",
                  workload::GameForest(rng, 256, 12, 30), 20, hw);
  ok &= RunFamily("grid(48x48)", workload::GameGrid(48, 48), 20, hw);
  ok &= RunFamily("chain(4096)", workload::GameChain(4096), 20, hw);
  ok &= RunFamily("random(128,25%)", workload::RandomGame(rng, 128, 25), 20,
                  hw);
  ok &= RunIncrementalChurn("forest(32x12,30%) inc",
                            workload::GameForest(rng, 32, 12, 30), hw);
  ok &= RunIncrementalChurn("grid(24x24) inc", workload::GameGrid(24, 24),
                            hw);
  std::printf(
      "\nExpected shape: on the forest families (wide condensation,\n"
      "independent blocks) the hw-thread speedup approaches the core\n"
      "count (>= 2.5x at 8 threads); chain/random are depth-bound — the\n"
      "sequential CSR hot path carries those. Agreement must hold\n"
      "everywhere at every thread count.\n\n");
  return ok;
}

void BM_ParallelSolve_Forest(benchmark::State& state) {
  Rng rng(41);
  TermStore store;
  GroundProgram gp =
      GroundOf(workload::GameForest(rng, 64, 24, 20), store);
  SolverOptions opts;
  opts.num_threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveWfs(gp, opts).model.atom_count());
  }
  state.counters["atoms"] = static_cast<double>(gp.atom_count());
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ParallelSolve_Forest)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ParallelSolve_Grid(benchmark::State& state) {
  TermStore store;
  GroundProgram gp = GroundOf(workload::GameGrid(48, 48), store);
  SolverOptions opts;
  opts.num_threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveWfs(gp, opts).model.atom_count());
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ParallelSolve_Grid)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SequentialDenseRandom(benchmark::State& state) {
  // The CSR-layout sequential hot path on the dense-random-game family
  // where one big recursive SCC dominates (PR 2's plateau); tracked in
  // BENCH_parallel.json to keep the flat-layout win from regressing.
  Rng rng(43);
  TermStore store;
  GroundProgram gp = GroundOf(
      workload::RandomGame(rng, static_cast<int>(state.range(0)), 25), store);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveWfs(gp).model.atom_count());
  }
  state.counters["atoms"] = static_cast<double>(gp.atom_count());
}
BENCHMARK(BM_SequentialDenseRandom)->Arg(64)->Arg(128)->Arg(256);

}  // namespace

GSLS_BENCH_MAIN_GATED(PrintVerification(), "parallel/sequential model disagreement")
