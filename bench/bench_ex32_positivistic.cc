// E4 / Example 3.2: necessity of the positivistic computation rule.
// Under the preferential rule, <- s succeeds (M_WF = {s,¬p,¬q,¬r});
// selecting negative literals first makes <- s appear indeterminate.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include <cstdio>

#include "core/engine.h"
#include "lang/parser.h"
#include "obs/trace.h"
#include "workload/generators.h"

using namespace gsls;

namespace {

void PrintVerification() {
  std::printf("=== E4 / Example 3.2: computation-rule comparison ===\n");
  std::printf("paper: preferential rule -> s successful;\n");
  std::printf("       negatives-first rule -> apparently indeterminate\n\n");
  std::printf("%-18s %-14s %-14s %-14s %-14s\n", "rule", "s", "p", "q", "r");
  for (auto mode : {SelectionMode::kPositivistic,
                    SelectionMode::kNegativesFirst}) {
    TermStore store;
    Program program = MustParseProgram(store, workload::Example32Program());
    EngineOptions opts;
    opts.selection = mode;
    GlobalSlsEngine engine(program, opts);
    const char* label = mode == SelectionMode::kPositivistic
                            ? "preferential"
                            : "negatives-first";
    std::printf("%-18s %-14s %-14s %-14s %-14s\n", label,
                GoalStatusName(engine.StatusOf(MustParseTerm(store, "s"))),
                GoalStatusName(engine.StatusOf(MustParseTerm(store, "p"))),
                GoalStatusName(engine.StatusOf(MustParseTerm(store, "q"))),
                GoalStatusName(engine.StatusOf(MustParseTerm(store, "r"))));
  }
  std::printf(
      "\nThe positivistic rule drives the positive loop p->q->r into an\n"
      "infinite SLP branch, which global SLS-resolution fails; the\n"
      "negatives-first rule instead recurses through negation forever.\n\n");
}

void BM_Example32(benchmark::State& state) {
  bool preferential = state.range(0) == 1;
  for (auto _ : state) {
    TermStore store;
    Program program = MustParseProgram(store, workload::Example32Program());
    EngineOptions opts;
    opts.selection = preferential ? SelectionMode::kPositivistic
                                  : SelectionMode::kNegativesFirst;
    GlobalSlsEngine engine(program, opts);
    QueryResult r = engine.Solve(MustParseQuery(store, "s"));
    benchmark::DoNotOptimize(r.status);
  }
}
BENCHMARK(BM_Example32)->Arg(1)->Arg(0);

}  // namespace

GSLS_BENCH_MAIN(PrintVerification())
