// E1 / Figure 1: SLP-trees T_{w(i)} for the Example 3.1 program are single
// branches with active leaf {not u(i)}. Verifies the shape for a sweep of
// i and benchmarks SLP-tree construction.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include <cstdio>

#include "core/slp_tree.h"
#include "lang/parser.h"
#include "obs/trace.h"
#include "util/strings.h"
#include "workload/generators.h"

using namespace gsls;

namespace {

void PrintVerification() {
  std::printf("=== E1 / Figure 1: SLP-trees T_{w(i)} ===\n");
  std::printf("paper: single branch w(i) -> {not u(i)} for every i\n");
  TermStore store;
  Program program = MustParseProgram(store, workload::VanGelderProgram());
  std::printf("%4s  %6s %8s  %-22s %s\n", "i", "nodes", "leaves",
              "leaf goal", "matches paper");
  for (int i = 0; i <= 10; ++i) {
    Goal goal = MustParseQuery(
        store, StrCat("w(", workload::IntTerm(i), ")"));
    SlpTree tree = SlpTree::Build(program, goal);
    auto leaves = tree.ActiveLeaves();
    std::string leaf = leaves.size() == 1
                           ? GoalToString(store, leaves[0]->goal)
                           : "?";
    bool ok = tree.node_count() == 2 && leaves.size() == 1 &&
              leaf == StrCat("not u(", workload::IntTerm(i), ")");
    std::printf("%4d  %6zu %8zu  %-22s %s\n", i, tree.node_count(),
                leaves.size(), leaf.c_str(), ok ? "yes" : "NO");
  }
  std::printf("\n");
}

void BM_BuildSlpTreeW(benchmark::State& state) {
  TermStore store;
  Program program = MustParseProgram(store, workload::VanGelderProgram());
  Goal goal = MustParseQuery(
      store,
      StrCat("w(", workload::IntTerm(static_cast<int>(state.range(0))),
             ")"));
  for (auto _ : state) {
    SlpTree tree = SlpTree::Build(program, goal);
    benchmark::DoNotOptimize(tree.node_count());
  }
}
BENCHMARK(BM_BuildSlpTreeW)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

GSLS_BENCH_MAIN(PrintVerification())
