// E5 / Example 3.3: necessity of the negatively parallel rule. Expanding
// ground negative subgoals sequentially wedges on the infinite regress
// p(a), p(f(a)), ...; expanding them in parallel lets `not s` fail q.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include <cstdio>

#include "core/engine.h"
#include "lang/parser.h"
#include "obs/trace.h"
#include "workload/generators.h"

using namespace gsls;

namespace {

QueryResult RunQ(bool parallel, size_t neg_budget) {
  TermStore store;
  Program program = MustParseProgram(store, workload::Example33Program());
  EngineOptions opts;
  opts.negatively_parallel = parallel;
  opts.max_negation_depth = neg_budget;
  GlobalSlsEngine engine(program, opts);
  return engine.Solve(MustParseQuery(store, "q"));
}

void PrintVerification() {
  std::printf("=== E5 / Example 3.3: parallel vs sequential negation ===\n");
  std::printf(
      "paper: sequential leftmost expansion appears indeterminate;\n"
      "       parallel expansion fails q (not q is well-founded)\n\n");
  std::printf("%-12s %8s  %-14s %10s %14s\n", "mode", "budget", "status",
              "work", "negation nodes");
  for (size_t budget : {8, 16, 32, 64}) {
    QueryResult seq = RunQ(false, budget);
    std::printf("%-12s %8zu  %-14s %10zu %14zu\n", "sequential", budget,
                GoalStatusName(seq.status), seq.work, seq.negation_nodes);
  }
  for (size_t budget : {8, 16, 32, 64}) {
    QueryResult par = RunQ(true, budget);
    std::printf("%-12s %8zu  %-14s %10zu %14zu\n", "parallel", budget,
                GoalStatusName(par.status), par.work, par.negation_nodes);
  }
  std::printf(
      "\nSequential mode burns its whole negation budget inside the\n"
      "p(f^k(a)) regress and never reaches `not s`; the parallel rule\n"
      "decides q = failed from the successful subgoal s at any budget.\n\n");
}

void BM_Example33(benchmark::State& state) {
  bool parallel = state.range(0) == 1;
  for (auto _ : state) {
    QueryResult r = RunQ(parallel, 24);
    benchmark::DoNotOptimize(r.status);
  }
}
BENCHMARK(BM_Example33)->Arg(1)->Arg(0);

}  // namespace

GSLS_BENCH_MAIN(PrintVerification())
