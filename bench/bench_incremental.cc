// Incremental re-solve vs. fresh solve under fact-delta churn: random
// assert/retract streams over the chain / grid / win-move families, with
// every delta's model checked against a from-scratch masked solve of the
// same program. The headline is chain(2048): a single-fact delta re-solves
// only the change-pruned up-cone of the touched component, so the per-delta
// cost must sit far below a fresh `SolveWfs` (target >= 10x). Any
// disagreement makes the process exit nonzero — this table is a hard CI
// gate, not a log line.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "ground/grounder.h"
#include "lang/parser.h"
#include "obs/trace.h"
#include "solver/incremental.h"
#include "solver/solver.h"
#include "util/rng.h"
#include "wfs/wfs.h"
#include "workload/generators.h"

using namespace gsls;

namespace {

GroundProgram GroundOf(const std::string& src, TermStore& store) {
  Program program = MustParseProgram(store, src);
  GroundingOptions gopts;
  gopts.max_rules = 5'000'000;
  Result<GroundProgram> gp = GroundRelevant(program, gopts);
  if (!gp.ok()) {
    std::fprintf(stderr, "grounding failed: %s\n",
                 gp.status().ToString().c_str());
    abort();
  }
  return std::move(gp.value());
}

/// Atoms that currently carry a unit rule — the fact base the delta
/// streams toggle (move facts in the game families).
std::vector<AtomId> FactAtoms(const GroundProgram& gp) {
  std::vector<AtomId> out;
  for (AtomId a = 0; a < gp.atom_count(); ++a) {
    if (gp.FindUnitRule(a).has_value()) out.push_back(a);
  }
  return out;
}

void Toggle(IncrementalSolver& inc, AtomId a) {
  if (inc.HasFact(a)) {
    inc.RetractAtom(a);
  } else {
    inc.AssertAtom(a);
  }
}

/// One workload family: checks agreement after every delta, then times
/// the incremental and fresh per-delta paths on identical streams.
/// Returns false on any model disagreement.
bool RunFamily(const char* name, const std::string& src) {
  TermStore store;
  IncrementalSolver inc(GroundOf(src, store));
  inc.Model();
  std::vector<AtomId> facts = FactAtoms(inc.program());
  if (facts.empty()) {
    std::printf("%-22s no fact atoms; skipped\n", name);
    return true;
  }

  // Agreement sweep: every delta checked atom-for-atom.
  bool agree = true;
  Rng rng(0x1C0FFEEu);
  for (int d = 0; d < 60; ++d) {
    Toggle(inc, facts[rng.Uniform(facts.size())]);
    const WfsModel& got = inc.Model();
    WfsModel want = inc.SolveFresh();
    if (!(got.model == want.model)) {
      agree = false;
      std::printf("DISAGREEMENT on %s delta %d:\n%s", name, d,
                  DescribeModelDifference(inc.program(), got.model,
                                          want.model)
                      .c_str());
      break;
    }
  }

  // Timing: identical toggle streams, incremental vs from-scratch.
  const int kTimedDeltas = 400;
  uint64_t resolved_before = inc.stats().components_resolved;
  auto start = std::chrono::steady_clock::now();
  for (int d = 0; d < kTimedDeltas; ++d) {
    Toggle(inc, facts[rng.Uniform(facts.size())]);
    benchmark::DoNotOptimize(inc.Model().model.atom_count());
  }
  std::chrono::duration<double> inc_s =
      std::chrono::steady_clock::now() - start;
  double resolved_per_delta =
      static_cast<double>(inc.stats().components_resolved - resolved_before) /
      kTimedDeltas;

  const int kFreshDeltas = 40;
  start = std::chrono::steady_clock::now();
  for (int d = 0; d < kFreshDeltas; ++d) {
    Toggle(inc, facts[rng.Uniform(facts.size())]);
    benchmark::DoNotOptimize(inc.SolveFresh().model.atom_count());
  }
  std::chrono::duration<double> fresh_s =
      std::chrono::steady_clock::now() - start;

  double inc_us = inc_s.count() * 1e6 / kTimedDeltas;
  double fresh_us = fresh_s.count() * 1e6 / kFreshDeltas;
  std::printf("%-22s %8zu %8zu %10.2f %10.2f %8.1fx %10.1f  %s\n", name,
              inc.program().atom_count(), facts.size(), inc_us, fresh_us,
              fresh_us / (inc_us > 0 ? inc_us : 1e-9), resolved_per_delta,
              agree ? "yes" : "NO");
  return agree;
}

bool PrintVerification() {
  std::printf("=== incremental re-solve vs fresh SolveWfs (per delta) ===\n");
  std::printf("%-22s %8s %8s %10s %10s %8s %10s  %s\n", "workload", "atoms",
              "facts", "inc(us)", "fresh(us)", "speedup", "sccs/delta",
              "agree");
  Rng rng(20260728);
  bool ok = true;
  ok &= RunFamily("chain(256)", workload::GameChain(256));
  ok &= RunFamily("chain(1024)", workload::GameChain(1024));
  ok &= RunFamily("chain(2048)", workload::GameChain(2048));
  ok &= RunFamily("grid(24x24)", workload::GameGrid(24, 24));
  ok &= RunFamily("cycle(101)+tail(100)",
                  workload::GameCycleWithTail(101, 100));
  ok &= RunFamily("random(64,10%)", workload::RandomGame(rng, 64, 10));
  std::printf(
      "\nExpected shape: agree everywhere; speedup grows with program size\n"
      "(>= 10x at chain(2048)) because the change-pruned up-cone stays\n"
      "local while the fresh solve pays condensation + full sweep.\n\n");
  return ok;
}

/// Telemetry showcase: a threaded, registry-attached solver under fact
/// churn, dumped after the run. With `--trace=FILE` on the command line
/// (stripped by the TraceFlagGuard in main) the same pass renders as
/// per-worker component spans in chrome://tracing / Perfetto.
void PrintTelemetry() {
  TermStore store;
  obs::Telemetry telemetry;
  SolverOptions sopts;
  sopts.num_threads = 4;
  sopts.telemetry = &telemetry;
  IncrementalSolver inc(GroundOf(workload::GameGrid(24, 24), store), sopts);
  inc.Model();
  std::vector<AtomId> facts = FactAtoms(inc.program());
  Rng rng(0xD1A6u);
  for (int d = 0; d < 200; ++d) {
    // Batched multi-component deltas engage the parallel cone; singles
    // keep the latency-critical heap. The dump shows both.
    Toggle(inc, facts[rng.Uniform(facts.size())]);
    if (d % 3 == 0) Toggle(inc, facts[rng.Uniform(facts.size())]);
    benchmark::DoNotOptimize(inc.Model().model.atom_count());
  }
  std::printf("=== telemetry: grid(24x24), 4 threads, 200 churn deltas ===\n");
  inc.DumpTelemetry(std::cout);
  std::printf("\n");
}

void BM_IncrementalDelta_Chain(benchmark::State& state) {
  TermStore store;
  IncrementalSolver inc(
      GroundOf(workload::GameChain(static_cast<int>(state.range(0))), store));
  inc.Model();
  std::vector<AtomId> facts = FactAtoms(inc.program());
  Rng rng(17);
  for (auto _ : state) {
    Toggle(inc, facts[rng.Uniform(facts.size())]);
    benchmark::DoNotOptimize(inc.Model().model.atom_count());
  }
  state.counters["atoms"] = static_cast<double>(inc.program().atom_count());
}
BENCHMARK(BM_IncrementalDelta_Chain)->Arg(256)->Arg(1024)->Arg(2048);

void BM_FreshDelta_Chain(benchmark::State& state) {
  TermStore store;
  IncrementalSolver inc(
      GroundOf(workload::GameChain(static_cast<int>(state.range(0))), store));
  std::vector<AtomId> facts = FactAtoms(inc.program());
  Rng rng(17);
  for (auto _ : state) {
    Toggle(inc, facts[rng.Uniform(facts.size())]);
    benchmark::DoNotOptimize(inc.SolveFresh().model.atom_count());
  }
  state.counters["atoms"] = static_cast<double>(inc.program().atom_count());
}
BENCHMARK(BM_FreshDelta_Chain)->Arg(256)->Arg(1024)->Arg(2048);

void BM_IncrementalDelta_Grid(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  TermStore store;
  IncrementalSolver inc(GroundOf(workload::GameGrid(n, n), store));
  inc.Model();
  std::vector<AtomId> facts = FactAtoms(inc.program());
  Rng rng(23);
  for (auto _ : state) {
    Toggle(inc, facts[rng.Uniform(facts.size())]);
    benchmark::DoNotOptimize(inc.Model().model.atom_count());
  }
}
BENCHMARK(BM_IncrementalDelta_Grid)->Arg(8)->Arg(16)->Arg(24);

void BM_IncrementalDelta_RandomGame(benchmark::State& state) {
  Rng gen(5);
  TermStore store;
  IncrementalSolver inc(GroundOf(
      workload::RandomGame(gen, static_cast<int>(state.range(0)), 10),
      store));
  inc.Model();
  std::vector<AtomId> facts = FactAtoms(inc.program());
  Rng rng(29);
  for (auto _ : state) {
    Toggle(inc, facts[rng.Uniform(facts.size())]);
    benchmark::DoNotOptimize(inc.Model().model.atom_count());
  }
}
BENCHMARK(BM_IncrementalDelta_RandomGame)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

// Verification gates the delta/fresh agreement; the telemetry table is
// informational and printed alongside it.
bool VerifyAndReport() {
  bool ok = PrintVerification();
  PrintTelemetry();
  return ok;
}

GSLS_BENCH_MAIN_GATED(VerifyAndReport(), "incremental/fresh model disagreement")
