// E6 / Example 6.1 + Thm. 6.2(3): the universal query problem and the
// augmented program. Answers for ?- p(X) over P, P + {q(b)}, and P'
// (augmented), plus the generality check of Thm. 6.2(3).

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include <cstdio>

#include "core/engine.h"
#include "lang/parser.h"
#include "lang/transforms.h"
#include "obs/trace.h"

using namespace gsls;

namespace {

void PrintVerification() {
  std::printf("=== E6 / Example 6.1: universal query problem ===\n");
  std::printf("%-22s %-12s %s\n", "program", "status", "answers to ?- p(X)");
  struct Case {
    const char* label;
    const char* src;
    bool augment;
  } cases[] = {
      {"P = {p(a)}", "p(a).", false},
      {"P + {q(b)}", "p(a). q(b).", false},
      {"P' (augmented)", "p(a).", true},
  };
  for (const Case& c : cases) {
    TermStore store;
    Program program = MustParseProgram(store, c.src);
    if (c.augment) program = AugmentProgram(program);
    GlobalSlsEngine engine(program);
    Goal query = MustParseQuery(store, "p(X)");
    QueryResult r = engine.Solve(query);
    std::printf("%-22s %-12s", c.label, GoalStatusName(r.status));
    for (const Answer& a : r.answers) {
      std::printf(" %s",
                  store.ToString(a.theta.Apply(store, query[0].atom))
                      .c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "\nIn all three cases the only answer is X = a. Because P' has\n"
      "infinitely many ground terms not in P, Thm. 6.2(3) applies to it:\n"
      "an answer over P' more general than phi exists iff M_WF(P') |= \n"
      "forall(Q phi). Here no identity answer appears, certifying that\n"
      "forall x p(x) is NOT entailed — over plain P that conclusion would\n"
      "be unsound (its unique Herbrand model does satisfy forall x p(x)).\n\n");

  // Generality check: with a genuinely universal rule, the identity
  // answer appears over the augmented program.
  TermStore store;
  Program universal = MustParseProgram(store, "p(X). q(a).");
  Program aug = AugmentProgram(universal);
  GlobalSlsEngine engine(aug);
  Goal query = MustParseQuery(store, "p(X)");
  QueryResult r = engine.Solve(query);
  bool identity = false;
  for (const Answer& a : r.answers) {
    // Identity up to renaming: the goal atom stays nonground.
    const Term* applied = a.theta.Apply(store, query[0].atom);
    if (!applied->ground()) identity = true;
  }
  std::printf(
      "control: P = {p(X).} over P' gives the identity answer: %s "
      "(expected yes)\n\n",
      identity ? "yes" : "NO");
}

void BM_AugmentedQuery(benchmark::State& state) {
  for (auto _ : state) {
    TermStore store;
    Program program =
        AugmentProgram(MustParseProgram(store, "p(a). p(b). p(c)."));
    GlobalSlsEngine engine(program);
    QueryResult r = engine.Solve(MustParseQuery(store, "p(X)"));
    benchmark::DoNotOptimize(r.answers.size());
  }
}
BENCHMARK(BM_AugmentedQuery);

}  // namespace

GSLS_BENCH_MAIN(PrintVerification())
