// Goal-directed queries vs. full re-solve: `QueryAtom` walks the query
// atom's down-cone in the condensation and solves only those components,
// serving still-valid ones from the per-component memo. The verification
// half queries *every* atom of the paper / chain / grid / cycle / forest
// families at 1, 2, and 4 threads — values and stage levels checked
// against a fresh masked solve — and runs randomized interleavings of
// fact/rule deltas with point queries. The timing half is the headline:
// a point query at the end of chain(2048) (down-cone of a handful of
// components, < 10% of the program) must be >= 10x faster than a full
// re-solve, and a repeated memo-hit query faster still. Any disagreement
// or missed ratio makes the process exit nonzero — a hard CI gate.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "ground/grounder.h"
#include "lang/parser.h"
#include "obs/trace.h"
#include "solver/incremental.h"
#include "solver/solver.h"
#include "util/rng.h"
#include "util/strings.h"
#include "wfs/wfs.h"
#include "workload/generators.h"

using namespace gsls;

namespace {

GroundProgram GroundOf(const std::string& src, TermStore& store) {
  Program program = MustParseProgram(store, src);
  GroundingOptions gopts;
  gopts.max_rules = 5'000'000;
  Result<GroundProgram> gp = GroundRelevant(program, gopts);
  if (!gp.ok()) {
    std::fprintf(stderr, "grounding failed: %s\n",
                 gp.status().ToString().c_str());
    abort();
  }
  return std::move(gp.value());
}

SolverOptions LeveledOpts(unsigned threads) {
  SolverOptions opts;
  opts.num_threads = threads;
  opts.compute_levels = true;
  return opts;
}

/// One point-query agreement check against the fresh masked solve: value
/// and, for determined atoms, the stage level.
bool CheckQuery(IncrementalSolver& inc, const WfsModel& want, AtomId a,
                const char* name, const std::string& context) {
  IncrementalSolver::QueryAnswer ans = inc.QueryAtom(a);
  if (ans.value != want.model.Value(a)) {
    std::printf("QUERY DISAGREEMENT on %s (%s) atom %u: got %d want %d\n",
                name, context.c_str(), a, static_cast<int>(ans.value),
                static_cast<int>(want.model.Value(a)));
    return false;
  }
  if (inc.options().compute_levels) {
    uint32_t got_stage = ans.value == TruthValue::kTrue    ? ans.true_stage
                         : ans.value == TruthValue::kFalse ? ans.false_stage
                                                           : 0;
    uint32_t want_stage = ans.value == TruthValue::kTrue ? want.true_stage[a]
                          : ans.value == TruthValue::kFalse
                              ? want.false_stage[a]
                              : 0;
    if (got_stage != want_stage) {
      std::printf(
          "QUERY LEVEL DISAGREEMENT on %s (%s) atom %u: got %u want %u\n",
          name, context.c_str(), a, got_stage, want_stage);
      return false;
    }
  }
  return true;
}

/// Queries every atom (highest id first, so later queries hit earlier
/// cones' memo entries) against the fresh solve.
bool SweepAllAtoms(IncrementalSolver& inc, const char* name,
                   const std::string& context) {
  WfsModel want = inc.SolveFresh();
  for (size_t i = inc.program().atom_count(); i-- > 0;) {
    if (!CheckQuery(inc, want, static_cast<AtomId>(i), name, context)) {
      return false;
    }
  }
  return true;
}

std::vector<RuleId> NonUnitRules(const GroundProgram& gp) {
  std::vector<RuleId> out;
  for (RuleId r = 0; r < gp.rule_count(); ++r) {
    const GroundRule& rule = gp.rules()[r];
    if (!rule.pos.empty() || !rule.neg.empty()) out.push_back(r);
  }
  return out;
}

void ToggleRule(IncrementalSolver& inc, RuleId r) {
  if (inc.RuleEnabled(r)) {
    inc.RetractRule(r);
  } else {
    inc.AssertRule(inc.program().rules()[r]);
  }
}

/// Agreement sweep over one family at one thread count: every atom
/// queried cold, then again after rule deltas invalidated parts of the
/// memo (split/merge recondensation included on the cycle family).
bool VerifyFamily(const char* name, const std::string& src,
                  unsigned threads) {
  TermStore store;
  IncrementalSolver inc(GroundOf(src, store), LeveledOpts(threads));
  if (!SweepAllAtoms(inc, name, StrCat("threads=", threads, " cold"))) {
    return false;
  }
  std::vector<RuleId> rules = NonUnitRules(inc.program());
  Rng rng(0xC0DE + threads);
  for (int d = 0; d < 4 && !rules.empty(); ++d) {
    ToggleRule(inc, rules[rng.Uniform(rules.size())]);
    if (!SweepAllAtoms(inc, name,
                       StrCat("threads=", threads, " delta ", d))) {
      return false;
    }
  }
  return true;
}

/// One randomized interleaving of fact/rule deltas, point queries, and
/// full `Model()` reads over a small random program.
bool VerifyRandomSequence(uint64_t seed, unsigned threads) {
  Rng rng(seed);
  TermStore store;
  std::string src = rng.Chance(1, 2)
                        ? workload::RandomPropositional(rng, 10, 16, 3)
                        : workload::RandomGame(rng, 14, 25);
  IncrementalSolver inc(GroundOf(src, store), LeveledOpts(threads));
  const size_t n = inc.program().atom_count();
  if (n == 0) return true;
  std::vector<RuleId> rules = NonUnitRules(inc.program());
  for (int d = 0; d < 12; ++d) {
    if (rng.Chance(1, 3) && !rules.empty()) {
      ToggleRule(inc, rules[rng.Uniform(rules.size())]);
    } else {
      AtomId a = static_cast<AtomId>(rng.Uniform(n));
      const Term* t = inc.program().AtomTerm(a);
      if (rng.Chance(1, 2)) {
        inc.Assert(t);
      } else {
        inc.Retract(t);
      }
    }
    WfsModel want = inc.SolveFresh();
    for (int q = 0; q < 3; ++q) {
      if (!CheckQuery(inc, want, static_cast<AtomId>(rng.Uniform(n)),
                      "random-interleave",
                      StrCat("seed ", seed, " threads ", threads, " step ",
                             d))) {
        return false;
      }
    }
  }
  return true;
}

/// Smallest nontrivial cone among sampled candidates — the point query
/// for families without a canonical "deep in the chain" atom. Prefers a
/// cone of at least 8 atoms (a real recursive fragment, not a bare fact)
/// and falls back to the smallest nonempty cone.
AtomId PickSmallConeAtom(IncrementalSolver& inc, Rng& rng) {
  // Candidates: heads of non-unit rules (recursive atoms, not bare facts).
  std::vector<AtomId> heads;
  for (RuleId r : NonUnitRules(inc.program())) {
    heads.push_back(inc.program().rules()[r].head);
  }
  if (heads.empty()) heads.push_back(0);
  AtomId best = heads[0], best_deep = heads[0];
  uint64_t best_cone = ~0ull, best_deep_cone = ~0ull;
  for (int i = 0; i < 24; ++i) {
    AtomId a = heads[rng.Uniform(heads.size())];
    inc.InvalidateMemo();
    IncrementalSolver::QueryAnswer ans = inc.QueryAtom(a);
    if (ans.cone_atoms > 0 && ans.cone_atoms < best_cone) {
      best_cone = ans.cone_atoms;
      best = a;
    }
    if (ans.cone_atoms >= 8 && ans.cone_atoms < best_deep_cone) {
      best_deep_cone = ans.cone_atoms;
      best_deep = a;
    }
  }
  return best_deep_cone != ~0ull ? best_deep : best;
}

/// Timing row: cold cone query vs. repeated memo-hit query vs. full
/// re-solve, all from the same invalidated-memo baseline. When `gated`,
/// the row is a hard gate: cone < 10% of the program, cold query >= 10x
/// faster than the full re-solve, memo hit faster than cold.
bool TimeFamily(const char* name, const std::string& src,
                const char* query_text, bool gated) {
  TermStore store;
  IncrementalSolver inc(GroundOf(src, store), LeveledOpts(1));
  inc.Model();  // build the graph once; timings below exclude it

  Rng rng(0x5EED);
  AtomId q;
  if (query_text != nullptr) {
    std::optional<AtomId> id =
        inc.program().FindAtom(MustParseTerm(store, query_text));
    if (!id.has_value()) {
      std::printf("%-22s query atom %s not registered\n", name, query_text);
      return false;
    }
    q = *id;
  } else {
    q = PickSmallConeAtom(inc, rng);
  }

  // Cone shape + one agreement check on the query atom itself.
  inc.InvalidateMemo();
  IncrementalSolver::QueryAnswer probe = inc.QueryAtom(q);
  const size_t atoms = inc.program().atom_count();
  double cone_frac =
      static_cast<double>(probe.cone_atoms) / static_cast<double>(atoms);
  WfsModel want = inc.SolveFresh();
  bool agree = CheckQuery(inc, want, q, name, "timed probe");

  const int kQueryIters = 2000;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kQueryIters; ++i) {
    inc.InvalidateMemo();
    benchmark::DoNotOptimize(inc.QueryAtom(q).value);
  }
  std::chrono::duration<double> cold_s =
      std::chrono::steady_clock::now() - start;

  inc.InvalidateMemo();
  benchmark::DoNotOptimize(inc.QueryAtom(q).value);  // warm the cone
  const int kWarmIters = 20000;
  start = std::chrono::steady_clock::now();
  for (int i = 0; i < kWarmIters; ++i) {
    benchmark::DoNotOptimize(inc.QueryAtom(q).memo_hits);
  }
  std::chrono::duration<double> warm_s =
      std::chrono::steady_clock::now() - start;

  const int kFullIters = 40;
  start = std::chrono::steady_clock::now();
  for (int i = 0; i < kFullIters; ++i) {
    inc.InvalidateMemo();
    benchmark::DoNotOptimize(inc.Model().model.atom_count());
  }
  std::chrono::duration<double> full_s =
      std::chrono::steady_clock::now() - start;

  double cold_us = cold_s.count() * 1e6 / kQueryIters;
  double warm_us = warm_s.count() * 1e6 / kWarmIters;
  double full_us = full_s.count() * 1e6 / kFullIters;
  double speedup = full_us / (cold_us > 0 ? cold_us : 1e-9);

  bool ok = agree;
  if (gated) {
    if (cone_frac >= 0.10) {
      std::printf("GATE FAIL %s: cone is %.1f%% of the program (>= 10%%)\n",
                  name, cone_frac * 100.0);
      ok = false;
    }
    if (speedup < 10.0) {
      std::printf("GATE FAIL %s: cold query only %.1fx over full re-solve\n",
                  name, speedup);
      ok = false;
    }
    if (warm_us >= cold_us) {
      std::printf("GATE FAIL %s: memo hit (%.2fus) not under cold (%.2fus)\n",
                  name, warm_us, cold_us);
      ok = false;
    }
  }
  std::printf("%-22s %8zu %7llu %6.2f%% %9.2f %9.3f %10.2f %8.1fx  %s\n",
              name, atoms,
              static_cast<unsigned long long>(probe.cone_atoms),
              cone_frac * 100.0, cold_us, warm_us, full_us, speedup,
              ok ? (gated ? "yes*" : "yes") : "NO");
  return ok;
}

bool PrintVerification() {
  std::printf(
      "=== goal-directed query agreement gate (values + levels, 1/2/4 "
      "threads) ===\n");
  bool ok = true;
  struct Family {
    const char* name;
    std::string src;
  } families[] = {
      {"paper:van_gelder", workload::VanGelderProgram()},
      {"paper:ex3.2", workload::Example32Program()},
      {"paper:ex3.3", workload::Example33Program()},
      {"chain(192)", workload::GameChain(192)},
      {"grid(10x10)", workload::GameGrid(10, 10)},
      {"cycle(33)+tail(32)", workload::GameCycleWithTail(33, 32)},
  };
  Rng forest_rng(20260808);
  std::string forest = workload::GameForest(forest_rng, 8, 12, 30);
  for (const Family& fam : families) {
    for (unsigned threads : {1u, 2u, 4u}) {
      ok = ok && VerifyFamily(fam.name, fam.src, threads);
    }
  }
  for (unsigned threads : {1u, 2u, 4u}) {
    ok = ok && VerifyFamily("forest(8x12)", forest, threads);
  }
  std::printf("  paper + workload families: %s\n", ok ? "agree" : "FAIL");

  int sequences = 0;
  for (uint64_t seed = 1; ok && seed <= 24; ++seed) {
    for (unsigned threads : {1u, 2u, 4u}) {
      ok = ok && VerifyRandomSequence(seed, threads);
      ++sequences;
    }
  }
  std::printf("  randomized delta/query interleavings: %d (%s)\n\n",
              sequences, ok ? "agree" : "FAIL");

  std::printf(
      "=== point query vs full re-solve (cold cone / memo hit / full) "
      "===\n");
  std::printf("%-22s %8s %7s %7s %9s %9s %10s %8s  %s\n", "workload",
              "atoms", "cone", "cone%", "cold(us)", "hit(us)", "full(us)",
              "speedup", "agree");
  // Query 32 nodes from the end of the chain: a genuine recursive cone
  // (~65 atoms) that is still a vanishing fraction of the long chains.
  ok = ok && TimeFamily("chain(256)", workload::GameChain(256), "win(n224)",
                        false);
  ok = ok && TimeFamily("chain(1024)", workload::GameChain(1024),
                        "win(n992)", false);
  ok = ok && TimeFamily("chain(2048)", workload::GameChain(2048),
                        "win(n2016)", true);
  Rng rng(7);
  ok = ok && TimeFamily("forest(48x16)",
                        workload::GameForest(rng, 48, 16, 30), nullptr,
                        true);
  ok = ok && TimeFamily("grid(24x24)", workload::GameGrid(24, 24), nullptr,
                        false);
  ok = ok && TimeFamily("cycle(101)+tail(100)",
                        workload::GameCycleWithTail(101, 100), nullptr,
                        false);
  std::printf(
      "\nExpected shape: agree everywhere; rows marked yes* are hard gates\n"
      "(cone < 10%% of the program, cold point query >= 10x over the full\n"
      "re-solve, repeated memo-hit query cheaper than the cold cone). The\n"
      "cold column pays the cone walk + cone-restricted component solves;\n"
      "the hit column only the walk over valid memo entries.\n\n");
  return ok;
}

void BM_QueryCold_Chain(benchmark::State& state) {
  TermStore store;
  int n = static_cast<int>(state.range(0));
  IncrementalSolver inc(GroundOf(workload::GameChain(n), store),
                        LeveledOpts(1));
  inc.Model();
  AtomId q = *inc.program().FindAtom(
      MustParseTerm(store, StrCat("win(n", n - 32, ")")));
  for (auto _ : state) {
    inc.InvalidateMemo();
    benchmark::DoNotOptimize(inc.QueryAtom(q).value);
  }
  state.counters["atoms"] = static_cast<double>(inc.program().atom_count());
}
BENCHMARK(BM_QueryCold_Chain)->Arg(256)->Arg(1024)->Arg(2048);

void BM_QueryMemoHit_Chain(benchmark::State& state) {
  TermStore store;
  int n = static_cast<int>(state.range(0));
  IncrementalSolver inc(GroundOf(workload::GameChain(n), store),
                        LeveledOpts(1));
  inc.Model();
  AtomId q = *inc.program().FindAtom(
      MustParseTerm(store, StrCat("win(n", n - 32, ")")));
  inc.InvalidateMemo();
  benchmark::DoNotOptimize(inc.QueryAtom(q).value);  // warm the cone
  for (auto _ : state) {
    benchmark::DoNotOptimize(inc.QueryAtom(q).memo_hits);
  }
}
BENCHMARK(BM_QueryMemoHit_Chain)->Arg(256)->Arg(1024)->Arg(2048);

void BM_FullResolve_Chain(benchmark::State& state) {
  TermStore store;
  int n = static_cast<int>(state.range(0));
  IncrementalSolver inc(GroundOf(workload::GameChain(n), store),
                        LeveledOpts(1));
  inc.Model();
  for (auto _ : state) {
    inc.InvalidateMemo();
    benchmark::DoNotOptimize(inc.Model().model.atom_count());
  }
  state.counters["atoms"] = static_cast<double>(inc.program().atom_count());
}
BENCHMARK(BM_FullResolve_Chain)->Arg(256)->Arg(1024)->Arg(2048);

// Delta + query composition: toggle the last move fact, then re-query the
// end of the chain — the dirty set intersected with the down-cone is a
// couple of components, so the re-query stays O(changed cone).
void BM_QueryAfterFactDelta_Chain(benchmark::State& state) {
  TermStore store;
  int n = static_cast<int>(state.range(0));
  IncrementalSolver inc(GroundOf(workload::GameChain(n), store),
                        LeveledOpts(1));
  inc.Model();
  AtomId q = *inc.program().FindAtom(
      MustParseTerm(store, StrCat("win(n", n - 32, ")")));
  const Term* last_move =
      MustParseTerm(store, StrCat("move(n", n - 1, ", n", n, ")"));
  bool present = true;
  for (auto _ : state) {
    if (present) {
      inc.Retract(last_move);
    } else {
      inc.Assert(last_move);
    }
    present = !present;
    benchmark::DoNotOptimize(inc.QueryAtom(q).value);
  }
}
BENCHMARK(BM_QueryAfterFactDelta_Chain)->Arg(256)->Arg(1024)->Arg(2048);

void BM_QueryCold_Forest(benchmark::State& state) {
  Rng gen(11);
  TermStore store;
  IncrementalSolver inc(
      GroundOf(workload::GameForest(gen, static_cast<int>(state.range(0)),
                                    24, 30),
               store),
      LeveledOpts(1));
  inc.Model();
  Rng rng(13);
  AtomId q = PickSmallConeAtom(inc, rng);
  for (auto _ : state) {
    inc.InvalidateMemo();
    benchmark::DoNotOptimize(inc.QueryAtom(q).value);
  }
  state.counters["atoms"] = static_cast<double>(inc.program().atom_count());
}
BENCHMARK(BM_QueryCold_Forest)->Arg(4)->Arg(16);

}  // namespace

GSLS_BENCH_MAIN_GATED(PrintVerification(), "query-cone agreement or speedup gate failed")
