// E9 / Section 7: effectiveness. The ideal procedure is not effective, but
// (a) it terminates on acyclic programs, (b) the memoing engine is
// effective on all function-free programs, and (c) SLDNF — which does not
// fail infinite branches — diverges where global SLS-resolution answers.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include <cstdio>

#include "core/engine.h"
#include "core/tabled.h"
#include "lang/parser.h"
#include "obs/trace.h"
#include "sldnf/sldnf.h"
#include "workload/generators.h"

using namespace gsls;

namespace {

struct CaseResult {
  const char* name;
  GoalStatus sls;
  GoalStatus tabled;
  GoalStatus sldnf;
};

void PrintVerification() {
  std::printf("=== E9 / Sec. 7: effectiveness comparison ===\n");
  std::printf(
      "paper: SLDNF (safe rule) is sound for WFS but incomplete — it does\n"
      "not fail infinite branches and has no undefined value.\n\n");
  struct Case {
    const char* name;
    const char* src;
    const char* query;
  } cases[] = {
      {"positive loop", "p :- p.", "p"},
      {"mutual pos loop", "p :- q. q :- p.", "p"},
      {"left recursion",
       "t(X,Y) :- t(X,Z), e(Z,Y). t(X,Y) :- e(X,Y). e(a,b).", "t(b,a)"},
      {"neg loop (undefined)", "p :- not q. q :- not p.", "p"},
      {"loop with escape", "p :- not q. q :- not p. q.", "p"},
      {"win chain 12", "", "win(n1)"},  // source built per-case below
  };
  std::printf("%-22s %-14s %-14s %-14s\n", "program", "global SLS",
              "tabled SLS", "SLDNF");
  for (const auto& c : cases) {
    std::string src = std::string(c.name) == "win chain 12"
                          ? workload::GameChain(12)
                          : c.src;
    TermStore store;
    Program program = MustParseProgram(store, src);
    const Term* atom = MustParseTerm(store, c.query);

    GlobalSlsEngine sls(program);
    Result<TabledEngine> tabled = TabledEngine::Create(program);
    SldnfOptions sopts;
    sopts.max_depth = 256;
    sopts.max_work = 100000;
    SldnfEngine sldnf(program, sopts);

    std::printf("%-22s %-14s %-14s %-14s\n", c.name,
                GoalStatusName(sls.StatusOf(atom)),
                GoalStatusName(tabled->StatusOf(atom)),
                GoalStatusName(sldnf.SolveAtom(atom).status));
  }
  std::printf(
      "\nExpected shape: the tabled column is always determined (failed /\n"
      "successful / indeterminate) — the Sec. 7 memoing device is\n"
      "effective on every function-free program. The search engine prunes\n"
      "ground loops itself but reports honest 'unknown' on the nonground\n"
      "left recursion (its goals grow forever — exactly why memoing is\n"
      "needed). SLDNF reads 'unknown' (divergence) on every loop.\n\n");

  // Termination classes: per-class effectiveness of the search engine.
  std::printf("%-28s %-10s %-12s\n", "class", "instance", "search engine");
  {
    TermStore store;
    Program acyclic = MustParseProgram(
        store, "a :- b, not c. b :- d. c :- not d. d.");
    GlobalSlsEngine engine(acyclic);
    std::printf("%-28s %-10s %-12s\n", "acyclic (terminates)", "a",
                GoalStatusName(engine.StatusOf(MustParseTerm(store, "a"))));
  }
  {
    TermStore store;
    Program fn = MustParseProgram(store, "p(X) :- not p(f(X)).");
    EngineOptions opts;
    opts.max_negation_depth = 16;
    GlobalSlsEngine engine(fn, opts);
    std::printf("%-28s %-10s %-12s\n",
                "infinite neg regress (Sec. 7)", "p(a)",
                GoalStatusName(engine.StatusOf(MustParseTerm(store, "p(a)"))));
  }
  std::printf("\n");
}

void BM_TabledChain(benchmark::State& state) {
  std::string src = workload::GameChain(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    TermStore store;
    Program program = MustParseProgram(store, src);
    Result<TabledEngine> engine = TabledEngine::Create(program);
    benchmark::DoNotOptimize(
        engine->StatusOf(MustParseTerm(store, "win(n1)")));
  }
}
BENCHMARK(BM_TabledChain)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_SearchChain(benchmark::State& state) {
  std::string src = workload::GameChain(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    TermStore store;
    Program program = MustParseProgram(store, src);
    EngineOptions opts;
    opts.max_negation_depth = static_cast<size_t>(state.range(0)) + 8;
    GlobalSlsEngine engine(program, opts);
    benchmark::DoNotOptimize(
        engine.StatusOf(MustParseTerm(store, "win(n1)")));
  }
}
BENCHMARK(BM_SearchChain)->Arg(16)->Arg(64)->Arg(256);

void BM_SldnfChainDivergenceCost(benchmark::State& state) {
  // SLDNF on the chain is fine (no loops); this measures the baseline.
  std::string src = workload::GameChain(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    TermStore store;
    Program program = MustParseProgram(store, src);
    SldnfEngine engine(program);
    benchmark::DoNotOptimize(
        engine.SolveAtom(MustParseTerm(store, "win(n1)")).status);
  }
}
BENCHMARK(BM_SldnfChainDivergenceCost)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

GSLS_BENCH_MAIN(PrintVerification())
