// The MVCC serving layer under mixed read/write load. The verification
// half is three hard CI gates: (1) batching — N queued deltas fold into
// ONE writer batch, ONE incremental re-solve pass, and ONE published
// epoch (proven from both serving stats and the solver's own pass
// counters); (2) answer identity — the published snapshot's answers
// (values AND Def. 2.4 stages) are bit-identical whether the underlying
// solver runs 1, 2, or 4 threads; (3) throughput — with 4 reader threads
// against a live delta stream, snapshot serving must clear 3x the
// read throughput of the single-owner baseline (one mutex around one
// solver, every reader and the writer serialized). The timing half
// reports reads/sec at 1/2/4/8 readers plus point read / publish
// latency rows; rows carry `noise_tolerance` counters for
// bench_compare.py.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ground/grounder.h"
#include "lang/parser.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "solver/incremental.h"
#include "util/rng.h"
#include "util/strings.h"
#include "wfs/wfs.h"
#include "workload/generators.h"

using namespace gsls;

namespace {

// The serving workload: a win/move chain long enough that a toggled edge
// dirties a real cone — the single-owner baseline's readers pay those
// re-solves under the lock, snapshot readers never do.
constexpr int kNodes = 1024;

GroundProgram GroundOf(const std::string& src, TermStore& store) {
  Program program = MustParseProgram(store, src);
  Result<GroundProgram> gp = GroundRelevant(program, GroundingOptions{});
  if (!gp.ok()) {
    std::fprintf(stderr, "grounding failed: %s\n",
                 gp.status().ToString().c_str());
    abort();
  }
  return std::move(gp.value());
}

SolverOptions LeveledOpts(unsigned threads) {
  SolverOptions opts;
  opts.num_threads = threads;
  opts.compute_levels = true;
  return opts;
}

std::unique_ptr<IncrementalSolver> ChainSolver(TermStore& store,
                                               unsigned threads) {
  return std::make_unique<IncrementalSolver>(
      GroundOf(workload::GameChain(kNodes), store), LeveledOpts(threads));
}

/// Probe terms: every win atom plus every seed edge, pre-interned so the
/// TermStore is never written while threads read through it.
std::vector<const Term*> ChainProbes(TermStore& store) {
  std::vector<const Term*> probes;
  for (int i = 0; i < kNodes; ++i) {
    probes.push_back(MustParseTerm(store, StrCat("win(n", i, ")")));
    if (i + 1 < kNodes) {
      probes.push_back(
          MustParseTerm(store, StrCat("move(n", i, ", n", i + 1, ")")));
    }
  }
  return probes;
}

/// The delta script toggles seed edges (their win instances are grounded,
/// so every toggle genuinely churns the model — deltas never re-ground).
std::vector<std::pair<const Term*, bool>> ToggleScript(TermStore& store,
                                                       Rng& rng, int count) {
  std::vector<std::pair<const Term*, bool>> script;
  script.reserve(count);
  for (int k = 0; k < count; ++k) {
    int i = rng.UniformInt(0, kNodes - 2);
    const Term* t =
        MustParseTerm(store, StrCat("move(n", i, ", n", i + 1, ")"));
    script.emplace_back(t, rng.Chance(1, 2));
  }
  return script;
}

// --- gate 1: batching --------------------------------------------------

/// N deltas queued against a paused writer must fold into one batch, one
/// incremental solver pass, one published epoch.
bool VerifyBatching() {
  constexpr int kDeltas = 64;
  TermStore store;
  serve::ServeOptions opts;
  opts.start_paused = true;
  serve::ServingSolver server(ChainSolver(store, 1), opts);
  const uint64_t passes_before = server.solver().stats().incremental_solves;

  Rng rng(11);
  for (const auto& [term, is_assert] : ToggleScript(store, rng, kDeltas)) {
    if (is_assert) {
      server.Assert(term);
    } else {
      server.Retract(term);
    }
  }
  server.Resume();
  server.Flush();

  serve::ServingSolver::Stats stats = server.stats();
  const uint64_t passes =
      server.solver().stats().incremental_solves - passes_before;
  const bool ok = stats.batches == 1 && stats.deltas_applied == kDeltas &&
                  stats.max_batch == kDeltas &&
                  stats.epochs_published == 2 && passes == 1;
  std::printf(
      "  batching: %d deltas -> %llu batch(es), %llu re-solve pass(es), "
      "%llu epoch(s) beyond the initial publish  [%s]\n",
      kDeltas, static_cast<unsigned long long>(stats.batches),
      static_cast<unsigned long long>(passes),
      static_cast<unsigned long long>(stats.epochs_published - 1),
      ok ? "ok" : "GATE FAIL");
  return ok;
}

// --- gate 2: answer identity across solver thread counts ---------------

struct SampledAnswer {
  TruthValue value;
  uint32_t true_stage;
  uint32_t false_stage;
  bool registered;
};

/// Runs the same delta script at `threads` solver threads and sweeps all
/// probes from a pinned read of the final epoch.
std::vector<SampledAnswer> SampleFinalEpoch(unsigned threads) {
  TermStore store;
  serve::ServingSolver server(ChainSolver(store, threads));
  Rng rng(0xBEEF);
  for (const auto& [term, is_assert] : ToggleScript(store, rng, 200)) {
    if (is_assert) {
      server.Assert(term);
    } else {
      server.Retract(term);
    }
  }
  server.Flush();
  serve::EpochStore::ReaderHandle h = server.RegisterReader();
  std::vector<SampledAnswer> out;
  for (const Term* probe : ChainProbes(store)) {
    serve::SnapshotAnswer a = server.Read(h, probe);
    out.push_back({a.value, a.true_stage, a.false_stage, a.registered});
  }
  return out;
}

bool VerifyAnswerIdentity() {
  std::vector<SampledAnswer> base = SampleFinalEpoch(1);
  bool ok = true;
  for (unsigned threads : {2u, 4u}) {
    std::vector<SampledAnswer> got = SampleFinalEpoch(threads);
    if (got.size() != base.size()) {
      std::printf("GATE FAIL identity: %u threads sampled %zu answers, "
                  "1 thread sampled %zu\n",
                  threads, got.size(), base.size());
      ok = false;
      continue;
    }
    for (size_t i = 0; i < base.size(); ++i) {
      if (got[i].value != base[i].value ||
          got[i].true_stage != base[i].true_stage ||
          got[i].false_stage != base[i].false_stage ||
          got[i].registered != base[i].registered) {
        std::printf(
            "GATE FAIL identity: probe %zu diverges at %u threads "
            "(value %d/%d true_stage %u/%u false_stage %u/%u)\n",
            i, threads, static_cast<int>(got[i].value),
            static_cast<int>(base[i].value), got[i].true_stage,
            base[i].true_stage, got[i].false_stage, base[i].false_stage);
        ok = false;
        break;
      }
    }
  }
  std::printf("  answer identity at 1/2/4 solver threads: %zu probes  [%s]\n",
              base.size(), ok ? "bit-identical" : "GATE FAIL");
  return ok;
}

// --- gate 3: mixed read/write throughput vs the single-owner baseline --

struct Throughput {
  double reads_per_sec = 0;
  uint64_t reads = 0;
  uint64_t deltas = 0;
};

/// Serving side: `readers` threads hammer snapshot point reads while one
/// thread streams toggle deltas through the batching writer.
Throughput MeasureServing(int readers, int run_ms) {
  TermStore store;
  std::vector<const Term*> probes = ChainProbes(store);
  serve::ServingSolver server(ChainSolver(store, 1));

  std::atomic<bool> stop{false};
  std::vector<uint64_t> counts(readers, 0);
  std::vector<std::thread> fleet;
  fleet.reserve(readers);
  for (int r = 0; r < readers; ++r) {
    fleet.emplace_back([&, r] {
      serve::EpochStore::ReaderHandle h = server.RegisterReader();
      Rng rng(100 + r);
      uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        benchmark::DoNotOptimize(
            server.Read(h, probes[rng.Uniform(probes.size())]).value);
        ++n;
      }
      counts[r] = n;
    });
  }

  // Pre-generated script, deadline checked per block: the writer streams
  // at full rate instead of being throttled by parsing and clock reads.
  Rng wrng(7);
  std::vector<std::pair<const Term*, bool>> script =
      ToggleScript(store, wrng, 4096);
  uint64_t deltas = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(run_ms);
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() < deadline) {
    for (int k = 0; k < 256; ++k) {
      const auto& [t, is_assert] = script[deltas % script.size()];
      if (is_assert) {
        server.Assert(t);
      } else {
        server.Retract(t);
      }
      ++deltas;
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : fleet) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  Throughput out;
  for (uint64_t c : counts) out.reads += c;
  out.deltas = deltas;
  out.reads_per_sec = static_cast<double>(out.reads) / secs;
  return out;
}

/// Baseline: the pre-serving shape — one solver, one mutex, every reader
/// and the writer serialized. Deltas mark dirty under the lock; each read
/// is a goal-directed query under the same lock and pays the cone
/// re-solve the writes left behind (the cost the snapshot layer takes
/// off the read path entirely).
Throughput MeasureBaseline(int readers, int run_ms) {
  TermStore store;
  std::vector<const Term*> probes = ChainProbes(store);
  std::unique_ptr<IncrementalSolver> solver = ChainSolver(store, 1);
  solver->Model();
  std::mutex mu;

  std::atomic<bool> stop{false};
  std::vector<uint64_t> counts(readers, 0);
  std::vector<std::thread> fleet;
  fleet.reserve(readers);
  for (int r = 0; r < readers; ++r) {
    fleet.emplace_back([&, r] {
      Rng rng(100 + r);
      uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const Term* probe = probes[rng.Uniform(probes.size())];
        std::lock_guard<std::mutex> l(mu);
        benchmark::DoNotOptimize(solver->QueryAtom(probe).value);
        ++n;
      }
      counts[r] = n;
    });
  }

  Rng wrng(7);
  std::vector<std::pair<const Term*, bool>> script =
      ToggleScript(store, wrng, 4096);
  uint64_t deltas = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(run_ms);
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() < deadline) {
    for (int k = 0; k < 256; ++k) {
      const auto& [t, is_assert] = script[deltas % script.size()];
      std::lock_guard<std::mutex> l(mu);
      if (is_assert) {
        solver->Assert(t);
      } else {
        solver->Retract(t);
      }
      ++deltas;
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : fleet) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  Throughput out;
  for (uint64_t c : counts) out.reads += c;
  out.deltas = deltas;
  out.reads_per_sec = static_cast<double>(out.reads) / secs;
  return out;
}

bool VerifyThroughput() {
  constexpr int kRunMs = 150;
  std::printf(
      "\n=== mixed read/write throughput: snapshot serving vs single-owner "
      "mutex ===\n");
  std::printf("%8s %16s %12s %16s %12s %8s\n", "readers", "serve(reads/s)",
              "serve(wr)", "mutex(reads/s)", "mutex(wr)", "ratio");
  bool ok = true;
  for (int readers : {1, 2, 4, 8}) {
    Throughput serve = MeasureServing(readers, kRunMs);
    Throughput base = MeasureBaseline(readers, kRunMs);
    const double ratio =
        serve.reads_per_sec / (base.reads_per_sec > 0 ? base.reads_per_sec
                                                      : 1e-9);
    const bool gated = readers == 4;
    if (gated && ratio < 3.0) {
      std::printf("GATE FAIL serving: %d readers only %.2fx over the "
                  "serialized baseline (need >= 3x)\n",
                  readers, ratio);
      ok = false;
    }
    std::printf("%8d %16.0f %12llu %16.0f %12llu %7.1fx%s\n", readers,
                serve.reads_per_sec,
                static_cast<unsigned long long>(serve.deltas),
                base.reads_per_sec,
                static_cast<unsigned long long>(base.deltas), ratio,
                gated ? "*" : "");
  }
  std::printf(
      "\nExpected shape: serving reads scale with reader count (pin +\n"
      "two tape loads, no lock), the mutex baseline's don't; the starred\n"
      "row is the hard gate (>= 3x at 4 readers). serve(wr)/mutex(wr)\n"
      "count writer deltas folded during the same window.\n\n");
  return ok;
}

bool PrintVerification() {
  std::printf("=== serving layer gates (batching / identity / throughput) "
              "===\n");
  bool ok = VerifyBatching();
  ok = VerifyAnswerIdentity() && ok;
  ok = VerifyThroughput() && ok;
  return ok;
}

// --- timing rows -------------------------------------------------------

/// One snapshot point read against a quiescent server: the pin/unpin
/// protocol plus two tape loads.
void BM_ServingPointRead(benchmark::State& state) {
  TermStore store;
  std::vector<const Term*> probes = ChainProbes(store);
  serve::ServingSolver server(ChainSolver(store, 1));
  serve::EpochStore::ReaderHandle h = server.RegisterReader();
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        server.Read(h, probes[rng.Uniform(probes.size())]).value);
  }
  state.counters["noise_tolerance"] = 0.25;
}
BENCHMARK(BM_ServingPointRead);

/// Delta-to-visibility latency: one toggle submitted and flushed through
/// the writer (apply + cone re-solve + snapshot publish).
void BM_ServingAssertFlush(benchmark::State& state) {
  TermStore store;
  serve::ServingSolver server(ChainSolver(store, 1));
  const Term* edge = MustParseTerm(
      store, StrCat("move(n", kNodes / 2, ", n", kNodes / 2 + 1, ")"));
  bool present = true;
  for (auto _ : state) {
    if (present) {
      server.Retract(edge);
    } else {
      server.Assert(edge);
    }
    present = !present;
    server.Flush();
  }
  state.counters["noise_tolerance"] = 0.40;
}
BENCHMARK(BM_ServingAssertFlush);

/// Mixed fleet throughput at N readers; one manually timed wall-clock
/// window per iteration, reads/sec as the reported counter.
void BM_ServingMixedFleet(benchmark::State& state) {
  const int readers = static_cast<int>(state.range(0));
  double reads_per_sec = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    Throughput t = MeasureServing(readers, 60);
    reads_per_sec = t.reads_per_sec;
    state.SetIterationTime(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
  }
  state.counters["reads_per_sec"] = reads_per_sec;
  state.counters["noise_tolerance"] = 0.45;
}
BENCHMARK(BM_ServingMixedFleet)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseManualTime()
    ->Iterations(3);

}  // namespace

GSLS_BENCH_MAIN_GATED(PrintVerification(),
                      "serving batching/identity/throughput gate failed")
