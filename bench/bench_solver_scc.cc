// SCC-stratified solver vs. the global fixpoints: `SolveWfs` against
// `ComputeWfs` (Def. 2.3 iteration, quadratic on deep-stage programs) and
// `ComputeWfsAlternating` (footnote 5) across the workload families at
// growing sizes, reporting atoms/sec and per-run SCC structure. The
// headline is the win/move chain: its stage depth grows with length, so
// the global algorithms pay O(n) rounds over the whole program while the
// solver pays one pass over n singleton components — the speedup must
// grow with the chain length.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include <chrono>
#include <cstdio>
#include <string>

#include "ground/grounder.h"
#include "lang/parser.h"
#include "obs/trace.h"
#include "solver/solver.h"
#include "wfs/wfs.h"
#include "workload/generators.h"

using namespace gsls;

namespace {

GroundProgram GroundOf(const std::string& src, TermStore& store) {
  Program program = MustParseProgram(store, src);
  GroundingOptions gopts;
  gopts.max_rules = 5'000'000;
  Result<GroundProgram> gp = GroundRelevant(program, gopts);
  if (!gp.ok()) {
    std::fprintf(stderr, "grounding failed: %s\n",
                 gp.status().ToString().c_str());
    abort();
  }
  return std::move(gp.value());
}

double SecondsOf(void (*fn)(const GroundProgram&), const GroundProgram& gp) {
  auto start = std::chrono::steady_clock::now();
  fn(gp);
  std::chrono::duration<double> d = std::chrono::steady_clock::now() - start;
  return d.count();
}

void RunScc(const GroundProgram& gp) { SolveWfs(gp); }
void RunWp(const GroundProgram& gp) { ComputeWfs(gp); }
void RunAlternating(const GroundProgram& gp) { ComputeWfsAlternating(gp); }

bool PrintVerification() {
  bool all_agree = true;
  std::printf("=== SCC-stratified solver vs global fixpoints ===\n");
  std::printf("%-22s %8s %8s %6s %6s %9s %9s %9s %8s  %s\n", "workload",
              "atoms", "sccs", "neg", "floods", "scc(s)", "Wp(s)", "AF(s)",
              "Wp/scc", "agree");
  Rng rng(20260728);
  struct Item {
    std::string name;
    std::string src;
  } items[] = {
      {"chain(256)", workload::GameChain(256)},
      {"chain(1024)", workload::GameChain(1024)},
      {"chain(4096)", workload::GameChain(4096)},
      {"grid(24x24)", workload::GameGrid(24, 24)},
      {"cycle(51)+tail(50)", workload::GameCycleWithTail(51, 50)},
      {"random(48,10%)", workload::RandomGame(rng, 48, 10)},
      {"reach-neg(16,20%)", workload::ReachabilityWithNegation(rng, 16, 20)},
      {"prop(48,160,3)", workload::RandomPropositional(rng, 48, 160, 3)},
  };
  for (const Item& item : items) {
    TermStore store;
    GroundProgram gp = GroundOf(item.src, store);
    SolverDiagnostics diag;
    WfsModel scc = SolveWfs(gp, &diag);
    WfsModel wp = ComputeWfs(gp);
    WfsModel af = ComputeWfsAlternating(gp);
    bool agree = scc.model == wp.model && scc.model == af.model;
    all_agree &= agree;
    if (!agree) {
      std::printf("DISAGREEMENT on %s:\n%s", item.name.c_str(),
                  DescribeModelDifference(gp, scc.model, wp.model).c_str());
    }
    double scc_s = SecondsOf(RunScc, gp);
    double wp_s = SecondsOf(RunWp, gp);
    double af_s = SecondsOf(RunAlternating, gp);
    std::printf("%-22s %8zu %8u %6u %6llu %9.5f %9.5f %9.5f %8.1f  %s\n",
                item.name.c_str(), gp.atom_count(), diag.component_count,
                diag.negation_components,
                static_cast<unsigned long long>(diag.unfounded_floods),
                scc_s, wp_s, af_s, wp_s / (scc_s > 0 ? scc_s : 1e-9),
                agree ? "yes" : "NO");
  }
  std::printf(
      "\nExpected shape: identical models everywhere; on the chain family\n"
      "the Wp/scc speedup grows with the chain length (quadratic vs\n"
      "near-linear); sccs tracks atoms on stratified workloads and floods\n"
      "stays near the number of drawn (undefined) regions.\n\n");
  return all_agree;
}

void ReportSccCounters(benchmark::State& state, const GroundProgram& gp) {
  SolverDiagnostics diag;
  SolveWfs(gp, &diag);
  state.counters["atoms"] = static_cast<double>(gp.atom_count());
  state.counters["sccs"] = static_cast<double>(diag.component_count);
  state.counters["atoms/s"] = benchmark::Counter(
      static_cast<double>(gp.atom_count()) * state.iterations(),
      benchmark::Counter::kIsRate);
}

void RunSolver(benchmark::State& state, int which, const std::string& src) {
  TermStore store;
  GroundProgram gp = GroundOf(src, store);
  for (auto _ : state) {
    if (which == 0) {
      benchmark::DoNotOptimize(SolveWfs(gp).iterations);
    } else if (which == 1) {
      benchmark::DoNotOptimize(ComputeWfs(gp).iterations);
    } else {
      benchmark::DoNotOptimize(ComputeWfsAlternating(gp).iterations);
    }
  }
  ReportSccCounters(state, gp);
}

void BM_SccSolver_Chain(benchmark::State& state) {
  RunSolver(state, 0, workload::GameChain(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_SccSolver_Chain)->Arg(256)->Arg(1024)->Arg(4096);

void BM_WpIteration_Chain(benchmark::State& state) {
  RunSolver(state, 1, workload::GameChain(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_WpIteration_Chain)->Arg(256)->Arg(1024)->Arg(4096);

void BM_Alternating_Chain(benchmark::State& state) {
  RunSolver(state, 2, workload::GameChain(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_Alternating_Chain)->Arg(256)->Arg(1024)->Arg(4096);

void BM_SccSolver_Grid(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  RunSolver(state, 0, workload::GameGrid(n, n));
}
BENCHMARK(BM_SccSolver_Grid)->Arg(8)->Arg(16)->Arg(24);

void BM_Alternating_Grid(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  RunSolver(state, 2, workload::GameGrid(n, n));
}
BENCHMARK(BM_Alternating_Grid)->Arg(8)->Arg(16)->Arg(24);

void BM_SccSolver_CycleTail(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  RunSolver(state, 0, workload::GameCycleWithTail(n | 1, n));
}
BENCHMARK(BM_SccSolver_CycleTail)->Arg(17)->Arg(65)->Arg(257);

void BM_Alternating_CycleTail(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  RunSolver(state, 2, workload::GameCycleWithTail(n | 1, n));
}
BENCHMARK(BM_Alternating_CycleTail)->Arg(17)->Arg(65)->Arg(257);

void BM_SccSolver_RandomGame(benchmark::State& state) {
  Rng rng(5);
  RunSolver(state, 0,
            workload::RandomGame(rng, static_cast<int>(state.range(0)), 10));
}
BENCHMARK(BM_SccSolver_RandomGame)->Arg(16)->Arg(32)->Arg(64);

void BM_Alternating_RandomGame(benchmark::State& state) {
  Rng rng(5);
  RunSolver(state, 2,
            workload::RandomGame(rng, static_cast<int>(state.range(0)), 10));
}
BENCHMARK(BM_Alternating_RandomGame)->Arg(16)->Arg(32)->Arg(64);

void BM_SccSolver_Propositional(benchmark::State& state) {
  Rng rng(11);
  int n = static_cast<int>(state.range(0));
  RunSolver(state, 0, workload::RandomPropositional(rng, n, 4 * n, 3));
}
BENCHMARK(BM_SccSolver_Propositional)->Arg(64)->Arg(256)->Arg(1024);

void BM_Alternating_Propositional(benchmark::State& state) {
  Rng rng(11);
  int n = static_cast<int>(state.range(0));
  RunSolver(state, 2, workload::RandomPropositional(rng, n, 4 * n, 3));
}
BENCHMARK(BM_Alternating_Propositional)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

// The agreement table is a hard gate: CI fails on any disagreement, not
// just on a crash.
GSLS_BENCH_MAIN_GATED(PrintVerification(), "solver/reference model disagreement")
