// E11: substrate microbenchmarks — term interning (the manual-memory hash
// consing layer), unification, substitution application, parsing, and
// grounding.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include <cstdio>

#include "ground/grounder.h"
#include "lang/parser.h"
#include "obs/trace.h"
#include "term/substitution.h"
#include "util/rng.h"
#include "util/strings.h"
#include "workload/generators.h"

using namespace gsls;

namespace {

void PrintVerification() {
  TermStore store;
  for (int i = 0; i < 1000; ++i) {
    const Term* t = store.MakeApp(
        "f", {store.MakeConstant(StrCat("c", i % 10)),
              store.MakeConstant(StrCat("c", (i * 7) % 10))});
    benchmark::DoNotOptimize(t);
  }
  std::printf("=== E11: substrate sanity ===\n");
  std::printf(
      "hash-consed store: %zu interned terms for 1000 constructions, "
      "%zu arena bytes\n\n",
      store.interned_count(), store.arena_bytes());
}

void BM_TermInterning(benchmark::State& state) {
  TermStore store;
  Rng rng(1);
  for (auto _ : state) {
    const Term* a = store.MakeConstant(StrCat("c", rng.Uniform(64)));
    const Term* t = store.MakeApp("f", {a, a});
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_TermInterning);

void BM_DeepTermConstruction(benchmark::State& state) {
  for (auto _ : state) {
    TermStore store;
    const Term* t = store.MakeConstant("z");
    for (int i = 0; i < state.range(0); ++i) {
      t = store.MakeApp("s", {t});
    }
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_DeepTermConstruction)->Arg(64)->Arg(512);

void BM_Unification(benchmark::State& state) {
  TermStore store;
  // f(g(X, h(Y)), Z) vs f(g(a, h(b)), k(c, d)).
  const Term* t1 = MustParseTerm(store, "f(g(X, h(Y)), Z)");
  const Term* t2 = MustParseTerm(store, "f(g(a, h(b)), k(c, d))");
  for (auto _ : state) {
    Substitution s;
    bool ok = Unify(t1, t2, &s);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_Unification);

void BM_UnificationSharedVars(benchmark::State& state) {
  TermStore store;
  std::string lhs = "p(X0";
  std::string rhs = "p(a";
  for (int i = 1; i < state.range(0); ++i) {
    lhs += StrCat(", X", i);
    rhs += StrCat(", X", i - 1);
  }
  lhs += ")";
  rhs += ")";
  const Term* t1 = MustParseTerm(store, lhs);
  const Term* t2 = MustParseTerm(store, rhs);
  for (auto _ : state) {
    Substitution s;
    bool ok = Unify(t1, t2, &s);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_UnificationSharedVars)->Arg(4)->Arg(16);

void BM_SubstitutionApply(benchmark::State& state) {
  TermStore store;
  const Term* pattern = MustParseTerm(store, "f(g(X, h(Y)), p(X, Y, Z))");
  std::vector<VarId> vars;
  CollectVars(pattern, &vars);
  Substitution s;
  s.Bind(vars[0], MustParseTerm(store, "k(a, b)"));
  s.Bind(vars[1], MustParseTerm(store, "c"));
  s.Bind(vars[2], MustParseTerm(store, "h(h(h(d)))"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.Apply(store, pattern));
  }
}
BENCHMARK(BM_SubstitutionApply);

void BM_ParseProgram(benchmark::State& state) {
  std::string src = workload::GameChain(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    TermStore store;
    Program p = MustParseProgram(store, src);
    benchmark::DoNotOptimize(p.size());
  }
}
BENCHMARK(BM_ParseProgram)->Arg(64)->Arg(512);

void BM_RelevantGrounding(benchmark::State& state) {
  Rng rng(3);
  std::string src = workload::ReachabilityWithNegation(
      rng, static_cast<int>(state.range(0)), 20);
  for (auto _ : state) {
    TermStore store;
    Program program = MustParseProgram(store, src);
    GroundingOptions gopts;
    gopts.max_rules = 5'000'000;
    Result<GroundProgram> gp = GroundRelevant(program, gopts);
    benchmark::DoNotOptimize(gp->rule_count());
  }
}
BENCHMARK(BM_RelevantGrounding)->Arg(8)->Arg(16)->Arg(24);

}  // namespace

GSLS_BENCH_MAIN(PrintVerification())
