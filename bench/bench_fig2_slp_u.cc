// E2 / Figures 2-3: SLP-trees T_{u(i)}. For finite i >= 2 the tree has a
// successor-shift spine of depth i with exactly one active leaf
// {not w(i-1)}; T_{u(1)} has no active leaves; T_{u(0)} has one active
// leaf {not w(i)} per positive integer i (infinite, truncated here).

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include <cstdio>

#include "core/slp_tree.h"
#include "lang/parser.h"
#include "obs/trace.h"
#include "util/strings.h"
#include "workload/generators.h"

using namespace gsls;

namespace {

void PrintVerification() {
  TermStore store;
  Program program = MustParseProgram(store, workload::VanGelderProgram());

  std::printf("=== E2 / Figure 2: T_{u(i)}, i >= 1 ===\n");
  std::printf(
      "paper: u(1) dead; u(i>=2) single leaf {not w(i-1)} at depth i\n");
  std::printf("%4s  %8s  %-22s %6s  %s\n", "i", "leaves", "leaf goal",
              "depth", "matches paper");
  for (int i = 1; i <= 10; ++i) {
    Goal goal =
        MustParseQuery(store, StrCat("u(", workload::IntTerm(i), ")"));
    SlpTree tree = SlpTree::Build(program, goal);
    auto leaves = tree.ActiveLeaves();
    if (i == 1) {
      std::printf("%4d  %8zu  %-22s %6s  %s\n", i, leaves.size(), "-", "-",
                  leaves.empty() ? "yes" : "NO");
      continue;
    }
    std::string leaf =
        leaves.size() == 1 ? GoalToString(store, leaves[0]->goal) : "?";
    bool ok = leaves.size() == 1 &&
              leaf == StrCat("not w(", workload::IntTerm(i - 1), ")") &&
              leaves[0]->depth == static_cast<size_t>(i);
    std::printf("%4d  %8zu  %-22s %6zu  %s\n", i, leaves.size(),
                leaf.c_str(), leaves.empty() ? 0 : leaves[0]->depth,
                ok ? "yes" : "NO");
  }

  std::printf("\n=== E2 / Figure 3: T_{u(0)} truncated at depth D ===\n");
  std::printf("paper: active leaves {not w(1)}, {not w(2)}, ... (infinite)\n");
  std::printf("%6s  %8s  %s\n", "D", "leaves", "prefix correct");
  for (size_t depth : {4, 8, 16, 32}) {
    SlpTreeOptions opts;
    opts.max_depth = depth;
    SlpTree tree =
        SlpTree::Build(program, MustParseQuery(store, "u(0)"), opts);
    auto leaves = tree.ActiveLeaves();
    bool prefix_ok = true;
    for (size_t k = 0; k < leaves.size(); ++k) {
      if (GoalToString(store, leaves[k]->goal) !=
          StrCat("not w(", workload::IntTerm(static_cast<int>(k) + 1),
                 ")")) {
        prefix_ok = false;
      }
    }
    std::printf("%6zu  %8zu  %s\n", depth, leaves.size(),
                prefix_ok ? "yes" : "NO");
  }
  std::printf("\n");
}

void BM_BuildSlpTreeU(benchmark::State& state) {
  TermStore store;
  Program program = MustParseProgram(store, workload::VanGelderProgram());
  Goal goal = MustParseQuery(
      store,
      StrCat("u(", workload::IntTerm(static_cast<int>(state.range(0))),
             ")"));
  for (auto _ : state) {
    SlpTree tree = SlpTree::Build(program, goal);
    benchmark::DoNotOptimize(tree.node_count());
  }
}
BENCHMARK(BM_BuildSlpTreeU)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_BuildSlpTreeU0Truncated(benchmark::State& state) {
  TermStore store;
  Program program = MustParseProgram(store, workload::VanGelderProgram());
  Goal goal = MustParseQuery(store, "u(0)");
  SlpTreeOptions opts;
  opts.max_depth = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    SlpTree tree = SlpTree::Build(program, goal, opts);
    benchmark::DoNotOptimize(tree.node_count());
  }
}
BENCHMARK(BM_BuildSlpTreeU0Truncated)->Arg(8)->Arg(32)->Arg(128);

}  // namespace

GSLS_BENCH_MAIN(PrintVerification())
