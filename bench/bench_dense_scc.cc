// Warm-interior gate: per-delta incremental re-solve inside one giant
// dense negation-recursive SCC vs a from-scratch SolveWfs. The workload
// is the dense random win/move game — thousands of win atoms in a single
// component with many alternative moves per position — churned by
// move-fact (unit rule) toggles: exactly the deltas the intra-component
// warm start (solver/warm_component.h) exists for. A cold path recompiles
// the component and floods `InitSources` over every atom per delta; the
// warm path patches the persisted RuleTable, undoes a trail suffix, and
// seeds the unfounded flood from the delta's footprint, so the per-delta
// cost must sit far below fresh (target >= 10x), with values and stage
// levels bit-identical at 1, 2, and 4 threads. Any disagreement or a
// ratio below the floor exits nonzero — this table is a hard CI gate
// (ctest label `bench-gate`), and the benchmark rows land in
// BENCH_dense.json for the bench-compare trajectory.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "ground/grounder.h"
#include "lang/parser.h"
#include "solver/incremental.h"
#include "solver/solver.h"
#include "util/rng.h"
#include "util/strings.h"
#include "wfs/wfs.h"
#include "workload/generators.h"

using namespace gsls;

namespace {

constexpr int kNodes = 2000;
constexpr int kEdgePct = 1;

GroundProgram GroundOf(const std::string& src, TermStore& store) {
  Program program = MustParseProgram(store, src);
  GroundingOptions gopts;
  gopts.max_rules = 5'000'000;
  Result<GroundProgram> gp = GroundRelevant(program, gopts);
  if (!gp.ok()) {
    std::fprintf(stderr, "grounding failed: %s\n",
                 gp.status().ToString().c_str());
    abort();
  }
  return std::move(gp.value());
}

std::string DenseGameSource() {
  Rng rng(0xD5CC);
  return workload::RandomGame(rng, kNodes, kEdgePct);
}

/// The dense game is grounded ONCE per process — instantiating the ~80k
/// rule program is by far the most expensive part of setup — and each
/// solver gets a linear-time reconstruction (same atom ids, same rule
/// ids) so every benchmark and verification sweep sees the identical
/// ground program.
const GroundProgram& SharedDenseProgram() {
  static TermStore* store = new TermStore();
  static GroundProgram* gp =
      new GroundProgram(GroundOf(DenseGameSource(), *store));
  return *gp;
}

GroundProgram CopyDenseProgram() {
  const GroundProgram& src = SharedDenseProgram();
  GroundProgram out(&src.store());
  for (AtomId a = 0; a < src.atom_count(); ++a) out.InternAtom(src.AtomTerm(a));
  for (RuleId r = 0; r < src.rule_count(); ++r) out.AddRule(src.rules()[r]);
  return out;
}

std::vector<RuleId> UnitRules(const GroundProgram& gp) {
  std::vector<RuleId> out;
  for (RuleId r = 0; r < gp.rule_count(); ++r) {
    const GroundRule& rule = gp.rules()[r];
    if (rule.pos.empty() && rule.neg.empty()) out.push_back(r);
  }
  return out;
}

void ToggleRule(IncrementalSolver& inc, RuleId r) {
  if (inc.RuleEnabled(r)) {
    inc.RetractRule(r);
  } else {
    inc.AssertRule(inc.program().rules()[r]);
  }
}

SolverOptions Leveled(unsigned threads) {
  SolverOptions opts;
  opts.num_threads = threads;
  opts.compute_levels = true;
  return opts;
}

/// Identical delta stream at 1, 2, and 4 threads: values and stage levels
/// must be bit-identical pairwise after every delta, and match the fresh
/// masked solve on a sparse cadence (fresh solves of the dense game are
/// the expensive thing being avoided).
bool VerifyThreadInvariance(int deltas) {
  std::vector<std::unique_ptr<IncrementalSolver>> solvers;
  for (unsigned threads : {1u, 2u, 4u}) {
    solvers.push_back(std::make_unique<IncrementalSolver>(
        CopyDenseProgram(), Leveled(threads)));
    solvers.back()->Model();
  }
  std::vector<RuleId> units = UnitRules(solvers[0]->program());
  if (units.empty()) {
    std::printf("dense game has no unit rules; generator broken\n");
    return false;
  }
  Rng rng(0xDE17A5);
  for (int d = 0; d < deltas; ++d) {
    const RuleId r = units[rng.Uniform(units.size())];
    for (auto& s : solvers) ToggleRule(*s, r);
    const WfsModel& m1 = solvers[0]->Model();
    for (size_t i = 1; i < solvers.size(); ++i) {
      const WfsModel& mi = solvers[i]->Model();
      if (!(m1.model == mi.model)) {
        std::printf("DISAGREEMENT at delta %d: 1 thread vs %zu threads:\n%s",
                    d, i == 1 ? size_t{2} : size_t{4},
                    DescribeModelDifference(solvers[0]->program(), m1.model,
                                            mi.model)
                        .c_str());
        return false;
      }
      if (m1.true_stage != mi.true_stage || m1.false_stage != mi.false_stage) {
        std::printf("LEVEL DISAGREEMENT at delta %d across thread counts\n",
                    d);
        return false;
      }
    }
    if (d % 10 == 0) {
      WfsModel fresh = solvers[0]->SolveFresh();
      if (!(m1.model == fresh.model)) {
        std::printf("DISAGREEMENT vs fresh SolveWfs at delta %d:\n%s", d,
                    DescribeModelDifference(solvers[0]->program(), m1.model,
                                            fresh.model)
                        .c_str());
        return false;
      }
      for (AtomId a = 0; a < solvers[0]->program().atom_count(); ++a) {
        if (m1.true_stage[a] != fresh.true_stage[a] ||
            m1.false_stage[a] != fresh.false_stage[a]) {
          std::printf("LEVEL DISAGREEMENT vs fresh at delta %d atom %u\n", d,
                      a);
          return false;
        }
      }
    }
  }
  return true;
}

bool PrintVerification() {
  std::printf(
      "=== dense-SCC warm-interior gate (values + levels, 1/2/4 threads) "
      "===\n");
  bool ok = VerifyThreadInvariance(60);
  std::printf("  thread-invariance sweep: %s\n\n", ok ? "agree" : "FAIL");
  if (!ok) return false;

  // Timing row: warm per-delta vs fresh per-delta, one solver, sequential
  // (the ratio is about the interior warm start, not the scheduler).
  IncrementalSolver inc(CopyDenseProgram(), Leveled(1));
  inc.Model();
  std::vector<RuleId> units = UnitRules(inc.program());
  Rng rng(0x5EED);

  const int kTimedDeltas = 200;
  auto start = std::chrono::steady_clock::now();
  for (int d = 0; d < kTimedDeltas; ++d) {
    ToggleRule(inc, units[rng.Uniform(units.size())]);
    benchmark::DoNotOptimize(inc.Model().model.atom_count());
  }
  std::chrono::duration<double> inc_s =
      std::chrono::steady_clock::now() - start;

  const int kFreshDeltas = 20;
  start = std::chrono::steady_clock::now();
  for (int d = 0; d < kFreshDeltas; ++d) {
    ToggleRule(inc, units[rng.Uniform(units.size())]);
    benchmark::DoNotOptimize(inc.SolveFresh().model.atom_count());
  }
  std::chrono::duration<double> fresh_s =
      std::chrono::steady_clock::now() - start;

  const double inc_us = inc_s.count() * 1e6 / kTimedDeltas;
  const double fresh_us = fresh_s.count() * 1e6 / kFreshDeltas;
  const double speedup = fresh_us / (inc_us > 0 ? inc_us : 1e-9);
  const SolverDiagnostics& diag = inc.diagnostics();
  const uint64_t flood_count = diag.seeded_flood_sizes.count;
  const double avg_seeded_flood =
      flood_count == 0
          ? 0.0
          : static_cast<double>(diag.seeded_flood_sizes.sum) / flood_count;

  std::printf("=== dense random game(%d,%d%%): per-delta re-solve ===\n",
              kNodes, kEdgePct);
  std::printf("%-24s %10s %10s %8s %9s %9s %9s\n", "workload", "inc(us)",
              "fresh(us)", "speedup", "warm-hit", "cold-fb", "avgflood");
  std::printf("%-24s %10.2f %10.2f %7.1fx %9lu %9lu %9.1f\n",
              StrCat("dense(", kNodes, ",", kEdgePct, "%)").c_str(), inc_us,
              fresh_us, speedup,
              static_cast<unsigned long>(diag.warm_hits),
              static_cast<unsigned long>(diag.warm_cold_fallbacks),
              avg_seeded_flood);

  if (diag.warm_hits == 0) {
    std::printf("GATE FAIL: warm path never taken on the dense SCC\n");
    return false;
  }
  if (speedup < 10.0) {
    std::printf("GATE FAIL: per-delta speedup %.1fx below the 10x floor\n",
                speedup);
    return false;
  }
  std::printf(
      "\nExpected shape: the giant win SCC re-solves by patch + suffix-undo\n"
      "+ seeded flood (warm-hit counts the deltas served warm); fresh pays\n"
      "compile + InitSources over all %d win atoms every time.\n\n",
      kNodes);
  return true;
}

/// Benchmark rows for BENCH_dense.json: warm per-delta re-solve and the
/// fresh per-delta solve it replaces, plus the cold path with warm
/// starting disabled (warm_min_atoms = 0) as the ablation row.
void BM_DenseScc_WarmDelta(benchmark::State& state) {
  SolverOptions opts = Leveled(static_cast<unsigned>(state.range(0)));
  IncrementalSolver inc(CopyDenseProgram(), opts);
  inc.Model();
  std::vector<RuleId> units = UnitRules(inc.program());
  Rng rng(17);
  for (auto _ : state) {
    ToggleRule(inc, units[rng.Uniform(units.size())]);
    benchmark::DoNotOptimize(inc.Model().model.atom_count());
  }
  state.counters["atoms"] = static_cast<double>(inc.program().atom_count());
  state.counters["warm_hits"] =
      static_cast<double>(inc.diagnostics().warm_hits);
}
BENCHMARK(BM_DenseScc_WarmDelta)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMicrosecond);

void BM_DenseScc_ColdDelta(benchmark::State& state) {
  SolverOptions opts = Leveled(1);
  opts.warm_min_atoms = 0;  // ablation: force the cold per-component path
  IncrementalSolver inc(CopyDenseProgram(), opts);
  inc.Model();
  std::vector<RuleId> units = UnitRules(inc.program());
  Rng rng(17);
  for (auto _ : state) {
    ToggleRule(inc, units[rng.Uniform(units.size())]);
    benchmark::DoNotOptimize(inc.Model().model.atom_count());
  }
  state.counters["atoms"] = static_cast<double>(inc.program().atom_count());
}
BENCHMARK(BM_DenseScc_ColdDelta)->Unit(benchmark::kMicrosecond);

}  // namespace

GSLS_BENCH_MAIN_GATED(PrintVerification(),
                      "dense-SCC warm-interior gate failed");
