// Telemetry overhead gate: attaching a metrics registry (with tracing
// compiled in but disabled — the production configuration) must not move
// the per-delta solve time materially. The verification table times the
// same fact-churn stream in three configurations — bare, registry
// attached, registry + live tracing — and the bare-vs-registry ratio is a
// hard CI gate: exit nonzero when the registry configuration exceeds
// 3x the bare median (a deliberately generous bound; the expected
// overhead is a handful of relaxed atomic ops per delta, far inside
// noise). The live-tracing column is informational — tracing buys its
// cost explicitly when enabled.
//
// This gate bounds the *runtime* telemetry switch. The cost of the
// instrumented binary per se (disabled-gate checks on hot paths) is
// gated by CI's bench_compare.py step, which compares BENCH_solver.json
// against the pre-instrumentation run from main.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "ground/grounder.h"
#include "lang/parser.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "solver/incremental.h"
#include "solver/solver.h"
#include "util/rng.h"
#include "workload/generators.h"

using namespace gsls;

namespace {

GroundProgram GroundOf(const std::string& src, TermStore& store) {
  Program program = MustParseProgram(store, src);
  Result<GroundProgram> gp = GroundRelevant(program, GroundingOptions{});
  if (!gp.ok()) {
    std::fprintf(stderr, "grounding failed: %s\n",
                 gp.status().ToString().c_str());
    abort();
  }
  return std::move(gp.value());
}

std::vector<AtomId> FactAtoms(const GroundProgram& gp) {
  std::vector<AtomId> out;
  for (AtomId a = 0; a < gp.atom_count(); ++a) {
    if (gp.FindUnitRule(a).has_value()) out.push_back(a);
  }
  return out;
}

void Toggle(IncrementalSolver& inc, AtomId a) {
  if (inc.HasFact(a)) {
    inc.RetractAtom(a);
  } else {
    inc.AssertAtom(a);
  }
}

/// Seconds for `deltas` churn deltas against a fresh solver with the given
/// telemetry sink (null = bare).
double TimeChurn(obs::Telemetry* telemetry, int deltas) {
  TermStore store;
  SolverOptions sopts;
  sopts.telemetry = telemetry;
  IncrementalSolver inc(GroundOf(workload::GameGrid(16, 16), store), sopts);
  inc.Model();
  std::vector<AtomId> facts = FactAtoms(inc.program());
  Rng rng(0xBEEFu);
  auto start = std::chrono::steady_clock::now();
  for (int d = 0; d < deltas; ++d) {
    Toggle(inc, facts[rng.Uniform(facts.size())]);
    benchmark::DoNotOptimize(inc.Model().model.atom_count());
  }
  std::chrono::duration<double> s = std::chrono::steady_clock::now() - start;
  return s.count();
}

/// Median-of-reps, the usual noise shield on a shared CI core.
double MedianChurn(obs::Telemetry* telemetry, int deltas, int reps) {
  std::vector<double> times;
  times.reserve(reps);
  for (int r = 0; r < reps; ++r) times.push_back(TimeChurn(telemetry, deltas));
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

bool PrintVerification() {
  const int kDeltas = 300;
  const int kReps = 5;
  const double kGate = 3.0;

  std::printf("=== telemetry overhead: grid(16x16), %d churn deltas, "
              "median of %d ===\n",
              kDeltas, kReps);
  std::printf("%-28s %12s %12s\n", "configuration", "total(ms)",
              "per-delta(us)");

  double bare = MedianChurn(nullptr, kDeltas, kReps);

  obs::Telemetry telemetry;
  double with_registry = MedianChurn(&telemetry, kDeltas, kReps);

  obs::TraceRecorder::Global().Enable();
  obs::Telemetry traced_telemetry;
  double with_trace = MedianChurn(&traced_telemetry, kDeltas, kReps);
  obs::TraceRecorder::Global().Disable();
  obs::TraceRecorder::Global().Clear();

  auto row = [&](const char* name, double s) {
    std::printf("%-28s %12.3f %12.2f\n", name, s * 1e3, s * 1e6 / kDeltas);
  };
  row("bare (no telemetry)", bare);
  row("registry, trace off", with_registry);
  row("registry, trace on", with_trace);

  double ratio = with_registry / (bare > 0 ? bare : 1e-12);
  std::printf("\nregistry/bare ratio: %.2fx (gate: < %.1fx)\n", ratio, kGate);
  std::printf(
      "Expected shape: all three within noise of each other — metrics are\n"
      "a few relaxed atomics per delta and disabled tracing one relaxed\n"
      "load per span site. The ratio line is a hard CI gate.\n\n");
  return ratio < kGate;
}

void BM_DeltaChurn_Bare(benchmark::State& state) {
  TermStore store;
  IncrementalSolver inc(GroundOf(workload::GameGrid(16, 16), store));
  inc.Model();
  std::vector<AtomId> facts = FactAtoms(inc.program());
  Rng rng(31);
  for (auto _ : state) {
    Toggle(inc, facts[rng.Uniform(facts.size())]);
    benchmark::DoNotOptimize(inc.Model().model.atom_count());
  }
}
BENCHMARK(BM_DeltaChurn_Bare);

void BM_DeltaChurn_Registry(benchmark::State& state) {
  TermStore store;
  obs::Telemetry telemetry;
  SolverOptions sopts;
  sopts.telemetry = &telemetry;
  IncrementalSolver inc(GroundOf(workload::GameGrid(16, 16), store), sopts);
  inc.Model();
  std::vector<AtomId> facts = FactAtoms(inc.program());
  Rng rng(31);
  for (auto _ : state) {
    Toggle(inc, facts[rng.Uniform(facts.size())]);
    benchmark::DoNotOptimize(inc.Model().model.atom_count());
  }
}
BENCHMARK(BM_DeltaChurn_Registry);

}  // namespace

GSLS_BENCH_MAIN_GATED(PrintVerification(), "telemetry overhead above gate")
