// Rule-level incremental deltas vs. fresh solve: AssertRule/RetractRule
// churn over the chain / grid / cycle / random-game families, with every
// verification delta's model *and stage levels* checked against a
// from-scratch masked solve — sequentially and threaded — plus 300+
// randomized rule-churn sequences over small programs (where merges and
// splits of components are frequent) and the paper's example programs.
// The headline is chain(2048): a rule toggle whose edges respect the
// dependency order repairs the condensation in O(rule) and re-solves only
// the change-pruned up-cone, so the per-delta cost must sit far below a
// fresh `SolveWfs` (target >= 10x; measured ~100x+). Any disagreement
// makes the process exit nonzero — this table is a hard CI gate.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "ground/grounder.h"
#include "lang/parser.h"
#include "obs/trace.h"
#include "solver/incremental.h"
#include "solver/solver.h"
#include "util/rng.h"
#include "util/strings.h"
#include "wfs/wfs.h"
#include "workload/generators.h"

using namespace gsls;

namespace {

GroundProgram GroundOf(const std::string& src, TermStore& store) {
  Program program = MustParseProgram(store, src);
  GroundingOptions gopts;
  gopts.max_rules = 5'000'000;
  Result<GroundProgram> gp = GroundRelevant(program, gopts);
  if (!gp.ok()) {
    std::fprintf(stderr, "grounding failed: %s\n",
                 gp.status().ToString().c_str());
    abort();
  }
  return std::move(gp.value());
}

/// Non-unit rules of the base program — the pool a rule-churn stream
/// toggles (game rules in the win/move families).
std::vector<RuleId> NonUnitRules(const GroundProgram& gp) {
  std::vector<RuleId> out;
  for (RuleId r = 0; r < gp.rule_count(); ++r) {
    const GroundRule& rule = gp.rules()[r];
    if (!rule.pos.empty() || !rule.neg.empty()) out.push_back(r);
  }
  return out;
}

void ToggleRule(IncrementalSolver& inc, RuleId r) {
  if (inc.RuleEnabled(r)) {
    inc.RetractRule(r);
  } else {
    inc.AssertRule(inc.program().rules()[r]);
  }
}

/// One agreement check: model and (when computed) stage levels against the
/// fresh masked solve. Prints and returns false on the first mismatch.
bool CheckAgainstFresh(IncrementalSolver& inc, const char* name,
                       const std::string& context) {
  const WfsModel& got = inc.Model();
  WfsModel want = inc.SolveFresh();
  if (!(got.model == want.model)) {
    std::printf("DISAGREEMENT on %s (%s):\n%s", name, context.c_str(),
                DescribeModelDifference(inc.program(), got.model, want.model)
                    .c_str());
    return false;
  }
  if (inc.options().compute_levels) {
    for (AtomId a = 0; a < inc.program().atom_count(); ++a) {
      if (got.true_stage[a] != want.true_stage[a] ||
          got.false_stage[a] != want.false_stage[a]) {
        std::printf(
            "LEVEL DISAGREEMENT on %s (%s) atom %u: got (%u,%u) want "
            "(%u,%u)\n",
            name, context.c_str(), a, got.true_stage[a], got.false_stage[a],
            want.true_stage[a], want.false_stage[a]);
        return false;
      }
    }
  }
  return true;
}

/// Agreement sweep over one workload family at one thread count: toggles
/// random non-unit rules, checking values + levels after every delta.
bool VerifyFamily(const char* name, const std::string& src, unsigned threads,
                  int deltas) {
  TermStore store;
  SolverOptions opts;
  opts.num_threads = threads;
  opts.compute_levels = true;
  IncrementalSolver inc(GroundOf(src, store), opts);
  inc.Model();
  std::vector<RuleId> rules = NonUnitRules(inc.program());
  if (rules.empty()) return true;
  Rng rng(0xDE17A5 + threads);
  for (int d = 0; d < deltas; ++d) {
    ToggleRule(inc, rules[rng.Uniform(rules.size())]);
    if (!CheckAgainstFresh(inc, name, StrCat("threads=", threads, " delta ",
                                             d))) {
      return false;
    }
  }
  return true;
}

/// One randomized churn sequence over a small random program: toggles
/// base rules and asserts synthetic rules over the atom pool (frequent
/// component merges and splits), every delta checked.
bool VerifyRandomSequence(uint64_t seed, unsigned threads) {
  Rng rng(seed);
  TermStore store;
  SolverOptions opts;
  opts.num_threads = threads;
  opts.compute_levels = true;
  IncrementalSolver inc(
      GroundOf(workload::RandomPropositional(rng, 10, 16, 3), store), opts);
  inc.Model();
  const size_t n = inc.program().atom_count();
  if (n == 0) return true;
  for (int d = 0; d < 8; ++d) {
    if (rng.Chance(1, 2) && inc.program().rule_count() > 0) {
      ToggleRule(inc, static_cast<RuleId>(
                          rng.Uniform(inc.program().rule_count())));
    } else {
      GroundRule r;
      r.head = static_cast<AtomId>(rng.Uniform(n));
      int body = rng.UniformInt(1, 3);
      for (int b = 0; b < body; ++b) {
        AtomId atom = static_cast<AtomId>(rng.Uniform(n));
        if (rng.Chance(2, 5)) {
          r.neg.push_back(atom);
        } else {
          r.pos.push_back(atom);
        }
      }
      inc.AssertRule(std::move(r));
    }
    if (!CheckAgainstFresh(inc, "random-churn",
                           StrCat("seed ", seed, " threads ", threads,
                                  " delta ", d))) {
      return false;
    }
  }
  return true;
}

/// Timing row: per-rule-delta incremental vs per-delta fresh solve.
bool TimeFamily(const char* name, const std::string& src) {
  TermStore store;
  SolverOptions opts;
  opts.compute_levels = true;
  IncrementalSolver inc(GroundOf(src, store), opts);
  inc.Model();
  std::vector<RuleId> rules = NonUnitRules(inc.program());
  if (rules.empty()) {
    std::printf("%-22s no non-unit rules; skipped\n", name);
    return true;
  }

  Rng rng(0x5EED);
  // Short agreement sweep first (the heavy ones ran in VerifyFamily).
  bool agree = true;
  for (int d = 0; d < 10; ++d) {
    ToggleRule(inc, rules[rng.Uniform(rules.size())]);
    if (!CheckAgainstFresh(inc, name, StrCat("timed sweep delta ", d))) {
      agree = false;
      break;
    }
  }

  const int kTimedDeltas = 400;
  auto start = std::chrono::steady_clock::now();
  for (int d = 0; d < kTimedDeltas; ++d) {
    ToggleRule(inc, rules[rng.Uniform(rules.size())]);
    benchmark::DoNotOptimize(inc.Model().model.atom_count());
  }
  std::chrono::duration<double> inc_s =
      std::chrono::steady_clock::now() - start;

  const int kFreshDeltas = 30;
  start = std::chrono::steady_clock::now();
  for (int d = 0; d < kFreshDeltas; ++d) {
    ToggleRule(inc, rules[rng.Uniform(rules.size())]);
    benchmark::DoNotOptimize(inc.SolveFresh().model.atom_count());
  }
  std::chrono::duration<double> fresh_s =
      std::chrono::steady_clock::now() - start;

  double inc_us = inc_s.count() * 1e6 / kTimedDeltas;
  double fresh_us = fresh_s.count() * 1e6 / kFreshDeltas;
  const DynamicCondensation::Stats* cs = inc.condensation_stats();
  std::printf("%-22s %8zu %8zu %10.2f %10.2f %8.1fx %5lu %5lu %5lu  %s\n",
              name, inc.program().atom_count(), rules.size(), inc_us,
              fresh_us, fresh_us / (inc_us > 0 ? inc_us : 1e-9),
              static_cast<unsigned long>(cs == nullptr ? 0 : cs->windows),
              static_cast<unsigned long>(cs == nullptr ? 0 : cs->merges),
              static_cast<unsigned long>(cs == nullptr ? 0 : cs->splits),
              agree ? "yes" : "NO");
  return agree;
}

bool PrintVerification() {
  std::printf(
      "=== rule-delta agreement gate (values + levels, 1 and 2 threads) "
      "===\n");
  bool ok = true;
  struct Family {
    const char* name;
    std::string src;
  } families[] = {
      {"paper:van_gelder", workload::VanGelderProgram()},
      {"paper:ex3.2", workload::Example32Program()},
      {"paper:ex3.3", workload::Example33Program()},
      {"chain(256)", workload::GameChain(256)},
      {"grid(12x12)", workload::GameGrid(12, 12)},
      {"cycle(33)+tail(32)", workload::GameCycleWithTail(33, 32)},
  };
  Rng rng(20260729);
  std::string random_game = workload::RandomGame(rng, 48, 10);
  for (const Family& fam : families) {
    ok = ok && VerifyFamily(fam.name, fam.src, 1, 40);
    ok = ok && VerifyFamily(fam.name, fam.src, 2, 40);
  }
  ok = ok && VerifyFamily("random(48,10%)", random_game, 1, 40);
  ok = ok && VerifyFamily("random(48,10%)", random_game, 2, 40);
  std::printf("  paper + workload families: %s\n", ok ? "agree" : "FAIL");

  // 300+ randomized churn sequences, split across thread counts.
  int sequences = 0;
  for (uint64_t seed = 1; ok && seed <= 160; ++seed) {
    ok = ok && VerifyRandomSequence(seed, 1);
    ++sequences;
  }
  for (uint64_t seed = 1000; ok && seed <= 1160; ++seed) {
    ok = ok && VerifyRandomSequence(seed, 2);
    ++sequences;
  }
  std::printf("  randomized rule-churn sequences: %d (%s)\n\n", sequences,
              ok ? "agree" : "FAIL");

  std::printf("=== rule-delta re-solve vs fresh SolveWfs (per delta) ===\n");
  std::printf("%-22s %8s %8s %10s %10s %8s %5s %5s %5s  %s\n", "workload",
              "atoms", "rules", "inc(us)", "fresh(us)", "speedup", "win",
              "mrg", "spl", "agree");
  ok = ok && TimeFamily("chain(256)", workload::GameChain(256));
  ok = ok && TimeFamily("chain(1024)", workload::GameChain(1024));
  ok = ok && TimeFamily("chain(2048)", workload::GameChain(2048));
  ok = ok && TimeFamily("grid(24x24)", workload::GameGrid(24, 24));
  ok = ok && TimeFamily("cycle(101)+tail(100)",
                        workload::GameCycleWithTail(101, 100));
  Rng rng2(7);
  ok = ok && TimeFamily("random(64,10%)", workload::RandomGame(rng2, 64, 10));
  std::printf(
      "\nExpected shape: agree everywhere; speedup grows with program size\n"
      "(>= 10x at chain(2048)) — order-respecting rule toggles repair the\n"
      "condensation in O(rule) (win=windows stays low on stratified\n"
      "families) while the fresh solve pays Tarjan + a full sweep. The\n"
      "cycle family shows real merges/splits per toggle.\n\n");
  return ok;
}

void BM_RuleDelta_Chain(benchmark::State& state) {
  TermStore store;
  SolverOptions opts;
  opts.compute_levels = true;
  IncrementalSolver inc(
      GroundOf(workload::GameChain(static_cast<int>(state.range(0))), store),
      opts);
  inc.Model();
  std::vector<RuleId> rules = NonUnitRules(inc.program());
  Rng rng(17);
  for (auto _ : state) {
    ToggleRule(inc, rules[rng.Uniform(rules.size())]);
    benchmark::DoNotOptimize(inc.Model().model.atom_count());
  }
  state.counters["atoms"] = static_cast<double>(inc.program().atom_count());
}
BENCHMARK(BM_RuleDelta_Chain)->Arg(256)->Arg(1024)->Arg(2048);

void BM_FreshRuleDelta_Chain(benchmark::State& state) {
  TermStore store;
  SolverOptions opts;
  opts.compute_levels = true;
  IncrementalSolver inc(
      GroundOf(workload::GameChain(static_cast<int>(state.range(0))), store),
      opts);
  std::vector<RuleId> rules = NonUnitRules(inc.program());
  Rng rng(17);
  for (auto _ : state) {
    ToggleRule(inc, rules[rng.Uniform(rules.size())]);
    benchmark::DoNotOptimize(inc.SolveFresh().model.atom_count());
  }
  state.counters["atoms"] = static_cast<double>(inc.program().atom_count());
}
BENCHMARK(BM_FreshRuleDelta_Chain)->Arg(256)->Arg(1024)->Arg(2048);

// The structural worst case: toggling cycle rules merges and splits the
// cycle component itself, so every delta pays a recondensation window.
void BM_RuleDelta_CycleMergeSplit(benchmark::State& state) {
  TermStore store;
  SolverOptions opts;
  opts.compute_levels = true;
  IncrementalSolver inc(
      GroundOf(workload::GameCycleWithTail(
                   static_cast<int>(state.range(0)), 16),
               store),
      opts);
  inc.Model();
  std::vector<RuleId> rules = NonUnitRules(inc.program());
  Rng rng(23);
  for (auto _ : state) {
    ToggleRule(inc, rules[rng.Uniform(rules.size())]);
    benchmark::DoNotOptimize(inc.Model().model.atom_count());
  }
  const DynamicCondensation::Stats* cs = inc.condensation_stats();
  if (cs != nullptr) {
    state.counters["windows"] = static_cast<double>(cs->windows);
  }
}
BENCHMARK(BM_RuleDelta_CycleMergeSplit)->Arg(33)->Arg(101)->Arg(301);

void BM_RuleDelta_RandomGame(benchmark::State& state) {
  Rng gen(5);
  TermStore store;
  SolverOptions opts;
  opts.compute_levels = true;
  IncrementalSolver inc(GroundOf(
      workload::RandomGame(gen, static_cast<int>(state.range(0)), 10),
      store), opts);
  inc.Model();
  std::vector<RuleId> rules = NonUnitRules(inc.program());
  Rng rng(29);
  for (auto _ : state) {
    ToggleRule(inc, rules[rng.Uniform(rules.size())]);
    benchmark::DoNotOptimize(inc.Model().model.atom_count());
  }
}
BENCHMARK(BM_RuleDelta_RandomGame)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

GSLS_BENCH_MAIN_GATED(PrintVerification(), "rule-delta/fresh model or level disagreement")
