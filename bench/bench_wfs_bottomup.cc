// E10 / Sec. 2 + footnote 5: bottom-up computation of the well-founded
// model. Compares the W_P iteration (Def. 2.3), the V_P stage iteration
// (Def. 2.4), and Van Gelder's alternating fixpoint across workload
// families and sizes, verifying they produce the same model.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include <cstdio>

#include "ground/grounder.h"
#include "lang/parser.h"
#include "obs/trace.h"
#include "wfs/wfs.h"
#include "workload/generators.h"

using namespace gsls;

namespace {

GroundProgram GroundOf(const std::string& src, TermStore& store) {
  Program program = MustParseProgram(store, src);
  GroundingOptions gopts;
  gopts.max_rules = 5'000'000;
  Result<GroundProgram> gp = GroundRelevant(program, gopts);
  if (!gp.ok()) {
    std::fprintf(stderr, "grounding failed: %s\n",
                 gp.status().ToString().c_str());
    abort();
  }
  return std::move(gp.value());
}

void PrintVerification() {
  std::printf("=== E10: bottom-up WFS — Wp vs Vp vs alternating ===\n");
  std::printf("%-24s %8s %8s %8s %8s %8s  %s\n", "workload", "atoms",
              "rules", "Wp iter", "Vp iter", "AF iter", "models agree");
  Rng rng(99);
  struct Item {
    const char* name;
    std::string src;
  } items[] = {
      {"chain(64)", workload::GameChain(64)},
      {"chain(256)", workload::GameChain(256)},
      {"cycle(9)+tail(8)", workload::GameCycleWithTail(9, 8)},
      {"grid(8x8)", workload::GameGrid(8, 8)},
      {"random(24,15%)", workload::RandomGame(rng, 24, 15)},
      {"reach-neg(12,20%)", workload::ReachabilityWithNegation(rng, 12, 20)},
  };
  for (const Item& item : items) {
    TermStore store;
    GroundProgram gp = GroundOf(item.src, store);
    WfsModel wp = ComputeWfs(gp);
    WfsStages vp = ComputeWfsStages(gp);
    WfsModel alt = ComputeWfsAlternating(gp);
    bool agree = wp.model == vp.model && wp.model == alt.model;
    std::printf("%-24s %8zu %8zu %8u %8u %8u  %s\n", item.name,
                gp.atom_count(), gp.rule_count(), wp.iterations,
                vp.iterations, alt.iterations, agree ? "yes" : "NO");
  }
  std::printf(
      "\nExpected shape: all three compute the same model; the chain\n"
      "workloads need O(n) outer iterations (deep stages), the grid and\n"
      "stratified reach-neg workloads close in a handful.\n\n");
}

void RunFixpoint(benchmark::State& state, int which,
                 const std::string& src) {
  TermStore store;
  GroundProgram gp = GroundOf(src, store);
  for (auto _ : state) {
    if (which == 0) {
      benchmark::DoNotOptimize(ComputeWfs(gp).iterations);
    } else if (which == 1) {
      benchmark::DoNotOptimize(ComputeWfsStages(gp).iterations);
    } else {
      benchmark::DoNotOptimize(ComputeWfsAlternating(gp).iterations);
    }
  }
  state.counters["atoms"] = static_cast<double>(gp.atom_count());
  state.counters["rules"] = static_cast<double>(gp.rule_count());
}

void BM_WpIteration_Chain(benchmark::State& state) {
  RunFixpoint(state, 0, workload::GameChain(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_WpIteration_Chain)->Arg(64)->Arg(256)->Arg(1024);

void BM_VpStages_Chain(benchmark::State& state) {
  RunFixpoint(state, 1, workload::GameChain(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_VpStages_Chain)->Arg(64)->Arg(256)->Arg(1024);

void BM_Alternating_Chain(benchmark::State& state) {
  RunFixpoint(state, 2, workload::GameChain(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_Alternating_Chain)->Arg(64)->Arg(256)->Arg(1024);

void BM_WpIteration_Grid(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  RunFixpoint(state, 0, workload::GameGrid(n, n));
}
BENCHMARK(BM_WpIteration_Grid)->Arg(8)->Arg(16)->Arg(24);

void BM_Alternating_Grid(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  RunFixpoint(state, 2, workload::GameGrid(n, n));
}
BENCHMARK(BM_Alternating_Grid)->Arg(8)->Arg(16)->Arg(24);

void BM_WpIteration_RandomGame(benchmark::State& state) {
  Rng rng(5);
  RunFixpoint(state, 0,
              workload::RandomGame(rng, static_cast<int>(state.range(0)), 10));
}
BENCHMARK(BM_WpIteration_RandomGame)->Arg(16)->Arg(32)->Arg(64);

void BM_Grounding_RandomGame(benchmark::State& state) {
  Rng rng(5);
  std::string src =
      workload::RandomGame(rng, static_cast<int>(state.range(0)), 10);
  for (auto _ : state) {
    TermStore store;
    Program program = MustParseProgram(store, src);
    GroundingOptions gopts;
    gopts.max_rules = 5'000'000;
    Result<GroundProgram> gp = GroundRelevant(program, gopts);
    benchmark::DoNotOptimize(gp->rule_count());
  }
}
BENCHMARK(BM_Grounding_RandomGame)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

GSLS_BENCH_MAIN(PrintVerification())
