#ifndef GSLS_SLDNF_SLDNF_H_
#define GSLS_SLDNF_SLDNF_H_

#include "core/engine.h"
#include "lang/program.h"

namespace gsls {

/// Options for the SLDNF baseline.
struct SldnfOptions {
  size_t max_depth = 2048;     ///< Resolution depth bound per (sub)tree.
  size_t max_work = 2'000'000; ///< Total resolution steps.
  size_t max_answers = 100'000;
};

/// Clark's SLDNF-resolution with a safe computation rule: leftmost literal,
/// skipping nonground negative literals; a ground negative literal is
/// resolved by a subsidiary finitely-failed SLDNF tree.
///
/// This is the paper's Section 7 comparison baseline: with a safe rule it
/// is *sound* with respect to the well-founded semantics, but *incomplete*,
/// because it does not treat infinite branches as failed — where global
/// SLS-resolution fails a positive loop, SLDNF diverges (reported here as
/// `kUnknown` once a budget trips). It also has no notion of the undefined
/// truth value: recursion through negation likewise diverges.
class SldnfEngine {
 public:
  explicit SldnfEngine(const Program& program, SldnfOptions opts = {});

  /// Evaluates a goal. Statuses: `kSuccessful` (with answers), `kFailed`
  /// (finite failure), `kFloundered`, or `kUnknown` (budget exhausted —
  /// the run would not have terminated or needs more resources).
  QueryResult Solve(const Goal& goal);

  QueryResult SolveAtom(const Term* atom);

 private:
  enum class LeafState : uint8_t { kNone, kSuccess };

  struct Outcome {
    bool any_success = false;
    bool any_floundered = false;
    bool any_unknown = false;
    std::vector<Answer> answers;
  };

  void Expand(const Goal& goal, const Substitution& theta, size_t depth,
              const Goal& root_goal, bool collect_answers, Outcome* out);

  const Program& program_;
  TermStore& store_;
  SldnfOptions opts_;
  size_t work_ = 0;
};

}  // namespace gsls

#endif  // GSLS_SLDNF_SLDNF_H_
