#include "sldnf/sldnf.h"

#include <algorithm>

namespace gsls {

SldnfEngine::SldnfEngine(const Program& program, SldnfOptions opts)
    : program_(program), store_(program.store()), opts_(opts) {}

void SldnfEngine::Expand(const Goal& goal, const Substitution& theta,
                         size_t depth, const Goal& root_goal,
                         bool collect_answers, Outcome* out) {
  if (work_ >= opts_.max_work || depth > opts_.max_depth) {
    out->any_unknown = true;
    return;
  }
  ++work_;
  if (goal.empty()) {
    out->any_success = true;
    if (collect_answers && out->answers.size() < opts_.max_answers) {
      Answer ans;
      std::vector<VarId> root_vars;
      for (const Literal& l : root_goal) CollectVars(l.atom, &root_vars);
      for (VarId v : root_vars) {
        const Term* image = theta.Apply(store_, store_.Var(v));
        if (!(image->IsVar() && image->var() == v)) ans.theta.Bind(v, image);
      }
      out->answers.push_back(std::move(ans));
    }
    return;
  }
  // Safe computation rule: leftmost literal that is positive or ground.
  size_t sel = SIZE_MAX;
  for (size_t i = 0; i < goal.size(); ++i) {
    if (goal[i].positive || goal[i].atom->ground()) {
      sel = i;
      break;
    }
  }
  if (sel == SIZE_MAX) {
    // Only nonground negative literals remain: the derivation flounders.
    out->any_floundered = true;
    return;
  }
  const Literal selected = goal[sel];
  Goal rest;
  rest.reserve(goal.size() - 1);
  for (size_t i = 0; i < goal.size(); ++i) {
    if (i != sel) rest.push_back(goal[i]);
  }

  if (!selected.positive) {
    // Negation as failure: subsidiary SLDNF tree for the complement.
    Outcome sub;
    Expand(Goal{Literal::Pos(selected.atom)}, Substitution(), depth + 1,
           root_goal, /*collect_answers=*/false, &sub);
    if (sub.any_success) return;  // complement provable: branch fails
    if (sub.any_unknown) {
      out->any_unknown = true;  // cannot establish finite failure
      return;
    }
    if (sub.any_floundered) {
      out->any_floundered = true;
      return;
    }
    // Finitely failed: `not q` succeeds.
    Expand(rest, theta, depth + 1, root_goal, collect_answers, out);
    return;
  }

  for (size_t ci : program_.ClausesFor(selected.atom->functor())) {
    Clause variant = RenameApart(store_, program_.clauses()[ci]);
    Substitution mgu;
    if (!Unify(selected.atom, variant.head, &mgu)) continue;
    Goal child;
    child.reserve(rest.size() + variant.body.size());
    for (const Literal& b : variant.body) {
      child.push_back(Literal{mgu.Apply(store_, b.atom), b.positive});
    }
    for (const Literal& r : rest) {
      child.push_back(Literal{mgu.Apply(store_, r.atom), r.positive});
    }
    Expand(child, theta.ComposeWith(store_, mgu), depth + 1, root_goal,
           collect_answers, out);
    if (out->answers.size() >= opts_.max_answers) {
      out->any_unknown = true;
      break;
    }
  }
}

QueryResult SldnfEngine::Solve(const Goal& goal) {
  size_t work_before = work_;
  Outcome out;
  Expand(goal, Substitution(), 0, goal, /*collect_answers=*/true, &out);
  QueryResult result;
  if (out.any_success) {
    result.status = GoalStatus::kSuccessful;
  } else if (out.any_unknown) {
    result.status = GoalStatus::kUnknown;
    result.diagnostic = "budget exhausted (SLDNF would not terminate here)";
  } else if (out.any_floundered) {
    result.status = GoalStatus::kFloundered;
  } else {
    result.status = GoalStatus::kFailed;
  }
  result.answers = std::move(out.answers);
  result.floundered_somewhere = out.any_floundered;
  result.work = work_ - work_before;
  return result;
}

QueryResult SldnfEngine::SolveAtom(const Term* atom) {
  return Solve(Goal{Literal::Pos(atom)});
}

}  // namespace gsls
