#include "solver/solver.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "analysis/atom_dependency_graph.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "solver/component_eval.h"
#include "solver/parallel.h"
#include "util/strings.h"

namespace gsls {

namespace {

/// Worker pools for the one-shot `SolveWfs` path, cached per calling
/// thread and per worker count so repeated parallel solves (benches, the
/// oracle paths) do not pay thread spawn + join on every call. Thread-
/// local keeps concurrent callers from contending for a single pool
/// (`WorkStealingPool::Run` is one-job-at-a-time); idle pools cost a
/// sleeping thread each and are joined at caller-thread exit.
WorkStealingPool& CachedPool(unsigned threads) {
  thread_local std::unordered_map<unsigned,
                                  std::unique_ptr<WorkStealingPool>>
      pools;
  std::unique_ptr<WorkStealingPool>& pool = pools[threads];
  if (pool == nullptr) pool = std::make_unique<WorkStealingPool>(threads);
  return *pool;
}

}  // namespace

// Field-drift guard: a counter added to SolverDiagnostics but not to
// MergeFrom is silently dropped at the parallel barrier, and one missing
// from ToString never surfaces — both have happened to structs like this.
// Any layout change trips this assert; update the expected size together
// with MergeFrom, ToString, and PublishTo below.
static_assert(sizeof(SolverDiagnostics) ==
                  4 * sizeof(uint32_t) + 7 * sizeof(uint64_t) +
                      2 * sizeof(obs::LocalHistogram),
              "SolverDiagnostics changed: update MergeFrom, ToString, "
              "PublishTo, and this assert together");

void SolverDiagnostics::MergeFrom(const SolverDiagnostics& other) {
  component_count += other.component_count;
  max_component_size = std::max(max_component_size, other.max_component_size);
  recursive_components += other.recursive_components;
  negation_components += other.negation_components;
  rules_visited += other.rules_visited;
  unfounded_floods += other.unfounded_floods;
  unfounded_falsified += other.unfounded_falsified;
  alternating_rounds += other.alternating_rounds;
  warm_hits += other.warm_hits;
  warm_cold_fallbacks += other.warm_cold_fallbacks;
  warm_undone_atoms += other.warm_undone_atoms;
  flood_sizes.MergeFrom(other.flood_sizes);
  seeded_flood_sizes.MergeFrom(other.seeded_flood_sizes);
}

SolverDiagnostics::Channels SolverDiagnostics::InternChannels(
    obs::Telemetry* telemetry) {
  Channels ch;
  if (telemetry == nullptr) return ch;
  obs::MetricsRegistry& m = telemetry->metrics;
  ch.components = m.GetGauge("solver.diag.components");
  ch.max_component_size = m.GetGauge("solver.diag.max_component_size");
  ch.recursive_components = m.GetGauge("solver.diag.recursive_components");
  ch.negation_components = m.GetGauge("solver.diag.negation_components");
  ch.rules_visited = m.GetGauge("solver.diag.rules_visited");
  ch.unfounded_floods = m.GetGauge("solver.diag.unfounded_floods");
  ch.unfounded_falsified = m.GetGauge("solver.diag.unfounded_falsified");
  ch.alternating_rounds = m.GetGauge("solver.diag.alternating_rounds");
  ch.flood_size_p50 = m.GetGauge("solver.diag.flood_size_p50");
  ch.flood_size_p99 = m.GetGauge("solver.diag.flood_size_p99");
  ch.warm_hits = m.GetGauge("solver.diag.warm_hits");
  ch.warm_cold_fallbacks = m.GetGauge("solver.diag.warm_cold_fallbacks");
  ch.warm_undone_atoms = m.GetGauge("solver.diag.warm_undone_atoms");
  ch.seeded_flood_p50 = m.GetGauge("solver.diag.seeded_flood_p50");
  ch.seeded_flood_p99 = m.GetGauge("solver.diag.seeded_flood_p99");
  return ch;
}

void SolverDiagnostics::PublishTo(const Channels& ch) const {
  if (ch.components == nullptr) return;
  ch.components->Set(component_count);
  ch.max_component_size->Set(max_component_size);
  ch.recursive_components->Set(recursive_components);
  ch.negation_components->Set(negation_components);
  ch.rules_visited->Set(static_cast<int64_t>(rules_visited));
  ch.unfounded_floods->Set(static_cast<int64_t>(unfounded_floods));
  ch.unfounded_falsified->Set(static_cast<int64_t>(unfounded_falsified));
  ch.alternating_rounds->Set(static_cast<int64_t>(alternating_rounds));
  ch.flood_size_p50->Set(static_cast<int64_t>(flood_sizes.p50()));
  ch.flood_size_p99->Set(static_cast<int64_t>(flood_sizes.p99()));
  ch.warm_hits->Set(static_cast<int64_t>(warm_hits));
  ch.warm_cold_fallbacks->Set(static_cast<int64_t>(warm_cold_fallbacks));
  ch.warm_undone_atoms->Set(static_cast<int64_t>(warm_undone_atoms));
  ch.seeded_flood_p50->Set(static_cast<int64_t>(seeded_flood_sizes.p50()));
  ch.seeded_flood_p99->Set(static_cast<int64_t>(seeded_flood_sizes.p99()));
}

void SolverDiagnostics::PublishTo(obs::Telemetry* telemetry) const {
  if (telemetry == nullptr) return;
  PublishTo(InternChannels(telemetry));
}

std::string SolverDiagnostics::ToString() const {
  return StrCat("components=", component_count,
                " max_size=", max_component_size,
                " recursive=", recursive_components,
                " negation=", negation_components,
                " rules_visited=", rules_visited,
                " floods=", unfounded_floods,
                " falsified=", unfounded_falsified,
                " rounds=", alternating_rounds,
                " warm_hits=", warm_hits,
                " warm_cold_fallbacks=", warm_cold_fallbacks,
                " warm_undone=", warm_undone_atoms,
                " flood_size_p50=", flood_sizes.p50(),
                " flood_size_p99=", flood_sizes.p99(),
                " seeded_flood_p50=", seeded_flood_sizes.p50(),
                " seeded_flood_p99=", seeded_flood_sizes.p99());
}

WfsModel SolveWfs(const GroundProgram& gp, SolverDiagnostics* diag) {
  return SolveWfs(gp, SolverOptions{}, diag);
}

WfsModel SolveWfs(const GroundProgram& gp, const SolverOptions& opts,
                  SolverDiagnostics* diag) {
  GSLS_TRACE_SPAN("solve.wfs", gp.atom_count());
  SolverDiagnostics scratch;
  if (diag == nullptr) diag = &scratch;
  *diag = SolverDiagnostics{};
  AtomDependencyGraph graph(gp);
  unsigned threads = solver::ResolveThreadCount(opts.num_threads);
  // A cancel context exists only when some stop condition is configured;
  // otherwise every checkpoint stays a null-pointer test (the detached
  // path the overhead gates measure).
  CancelCtx ctx(opts.cancel, opts.deadline_ns, opts.step_budget, opts.fault);
  CancelCtx* cancel = ctx.active() ? &ctx : nullptr;
  if (cancel != nullptr) cancel->BeginPass();
  WfsModel out;
  if (threads <= 1) {
    out = solver::SolveAllComponents(gp, graph, /*disabled=*/nullptr,
                                     opts.compute_levels, diag, cancel);
  } else {
    solver::ComponentDag dag(gp, graph);
    solver::TruthTape values;
    solver::StageTape stages;
    solver::ParallelSolveAllComponentsInto(
        gp, graph, dag, /*disabled=*/nullptr, &CachedPool(threads), &values,
        opts.compute_levels ? &stages : nullptr, diag, cancel);
    out.model = values.ToInterpretation();
    out.iterations = static_cast<uint32_t>(diag->alternating_rounds);
    if (cancel != nullptr) out.outcome = cancel->outcome();
    if (opts.compute_levels) {
      out.true_stage = std::move(stages.true_stage);
      out.false_stage = std::move(stages.false_stage);
      out.has_levels = true;
    }
  }
  diag->PublishTo(opts.telemetry);
  return out;
}

}  // namespace gsls
