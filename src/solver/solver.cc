#include "solver/solver.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "analysis/atom_dependency_graph.h"
#include "solver/component_eval.h"
#include "solver/parallel.h"
#include "util/strings.h"

namespace gsls {

namespace {

/// Worker pools for the one-shot `SolveWfs` path, cached per calling
/// thread and per worker count so repeated parallel solves (benches, the
/// oracle paths) do not pay thread spawn + join on every call. Thread-
/// local keeps concurrent callers from contending for a single pool
/// (`WorkStealingPool::Run` is one-job-at-a-time); idle pools cost a
/// sleeping thread each and are joined at caller-thread exit.
WorkStealingPool& CachedPool(unsigned threads) {
  thread_local std::unordered_map<unsigned,
                                  std::unique_ptr<WorkStealingPool>>
      pools;
  std::unique_ptr<WorkStealingPool>& pool = pools[threads];
  if (pool == nullptr) pool = std::make_unique<WorkStealingPool>(threads);
  return *pool;
}

}  // namespace

void SolverDiagnostics::MergeFrom(const SolverDiagnostics& other) {
  component_count += other.component_count;
  max_component_size = std::max(max_component_size, other.max_component_size);
  recursive_components += other.recursive_components;
  negation_components += other.negation_components;
  rules_visited += other.rules_visited;
  unfounded_floods += other.unfounded_floods;
  unfounded_falsified += other.unfounded_falsified;
  alternating_rounds += other.alternating_rounds;
}

std::string SolverDiagnostics::ToString() const {
  return StrCat("components=", component_count,
                " max_size=", max_component_size,
                " recursive=", recursive_components,
                " negation=", negation_components,
                " rules_visited=", rules_visited,
                " floods=", unfounded_floods,
                " falsified=", unfounded_falsified,
                " rounds=", alternating_rounds);
}

WfsModel SolveWfs(const GroundProgram& gp, SolverDiagnostics* diag) {
  return SolveWfs(gp, SolverOptions{}, diag);
}

WfsModel SolveWfs(const GroundProgram& gp, const SolverOptions& opts,
                  SolverDiagnostics* diag) {
  SolverDiagnostics scratch;
  if (diag == nullptr) diag = &scratch;
  *diag = SolverDiagnostics{};
  AtomDependencyGraph graph(gp);
  unsigned threads = solver::ResolveThreadCount(opts.num_threads);
  if (threads <= 1) {
    return solver::SolveAllComponents(gp, graph, /*disabled=*/nullptr,
                                      opts.compute_levels, diag);
  }
  solver::ComponentDag dag(gp, graph);
  solver::TruthTape values;
  solver::StageTape stages;
  solver::ParallelSolveAllComponentsInto(
      gp, graph, dag, /*disabled=*/nullptr, &CachedPool(threads), &values,
      opts.compute_levels ? &stages : nullptr, diag);
  WfsModel out;
  out.model = values.ToInterpretation();
  out.iterations = static_cast<uint32_t>(diag->alternating_rounds);
  if (opts.compute_levels) {
    out.true_stage = std::move(stages.true_stage);
    out.false_stage = std::move(stages.false_stage);
    out.has_levels = true;
  }
  return out;
}

}  // namespace gsls
