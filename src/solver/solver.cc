#include "solver/solver.h"

#include "analysis/atom_dependency_graph.h"
#include "solver/component_eval.h"
#include "util/strings.h"

namespace gsls {

std::string SolverDiagnostics::ToString() const {
  return StrCat("components=", component_count,
                " max_size=", max_component_size,
                " recursive=", recursive_components,
                " negation=", negation_components,
                " rules_visited=", rules_visited,
                " floods=", unfounded_floods,
                " falsified=", unfounded_falsified,
                " rounds=", alternating_rounds);
}

WfsModel SolveWfs(const GroundProgram& gp, SolverDiagnostics* diag) {
  SolverDiagnostics scratch;
  if (diag == nullptr) diag = &scratch;
  *diag = SolverDiagnostics{};
  AtomDependencyGraph graph(gp);
  return solver::SolveAllComponents(gp, graph, /*disabled=*/nullptr, diag);
}

}  // namespace gsls
