#include "solver/parallel.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <memory>
#include <thread>

#include "obs/trace.h"
#include "solver/component_eval.h"

namespace gsls::solver {

namespace {

/// Packs a deduplicated (from, to) edge list into CSR successor rows plus
/// indegrees — the shared tail of construction and splicing.
void BuildFromEdges(std::vector<uint64_t>* edges, uint32_t ncomp,
                    Csr<uint32_t>* succ, std::vector<uint32_t>* indegree) {
  std::sort(edges->begin(), edges->end());
  edges->erase(std::unique(edges->begin(), edges->end()), edges->end());
  indegree->assign(ncomp, 0);
  succ->Reset(ncomp);
  for (uint64_t e : *edges) succ->CountAt(static_cast<uint32_t>(e >> 32));
  succ->FinishCounting();
  for (uint64_t e : *edges) {
    uint32_t to = static_cast<uint32_t>(e);
    succ->Fill(static_cast<uint32_t>(e >> 32), to);
    ++(*indegree)[to];
  }
  succ->FinishFilling();
}

}  // namespace

ComponentDag::ComponentDag(const GroundProgram& gp,
                           const AtomDependencyGraph& graph,
                           const std::vector<uint8_t>* disabled) {
  uint32_t ncomp = graph.component_count();
  // Cross-component edges, deduplicated by one sort over packed
  // (from, to) keys. Condensation order guarantees from < to.
  std::vector<uint64_t> edges;
  for (RuleId id = 0; id < gp.rule_count(); ++id) {
    if (!RuleEnabledIn(disabled, id)) continue;
    const GroundRule& r = gp.rules()[id];
    uint32_t hc = graph.ComponentOf(r.head);
    for (AtomId b : r.pos) {
      uint32_t bc = graph.ComponentOf(b);
      if (bc != hc) edges.push_back((uint64_t{bc} << 32) | hc);
    }
    for (AtomId b : r.neg) {
      uint32_t bc = graph.ComponentOf(b);
      if (bc != hc) edges.push_back((uint64_t{bc} << 32) | hc);
    }
  }
  BuildFromEdges(&edges, ncomp, &succ_, &indegree_);
}

void ComponentDag::AppendIsolated(uint32_t new_component_count) {
  if (new_component_count <= component_count()) return;
  succ_.AppendEmptyRows(new_component_count - component_count());
  indegree_.resize(new_component_count, 0);
}

void ComponentDag::Splice(const GroundProgram& gp,
                          const AtomDependencyGraph& graph,
                          const std::vector<uint8_t>* disabled,
                          const CondensationRepair& rep) {
  assert(!rep.split());
  const uint32_t old_n = component_count();
  const uint32_t lo = rep.window_lo;
  const uint32_t old_hi = lo + rep.old_window_size;  // exclusive
  const int64_t delta =
      static_cast<int64_t>(rep.new_window_size) - rep.old_window_size;
  const uint32_t new_n = static_cast<uint32_t>(old_n + delta);
  auto remap = [&](uint32_t c) -> uint32_t {
    if (c < lo) return c;
    if (c >= old_hi) return static_cast<uint32_t>(c + delta);
    return rep.old_to_new[c - lo];
  };

  // Kept rows (outside the window), remapped; merged targets collapse in
  // the dedup. Window rows are recomputed from the occurrence index — the
  // repair may have rewired them arbitrarily — and `new_edges` covers
  // dependencies the rule added from components below the window.
  std::vector<uint64_t> edges;
  edges.reserve(succ_.size() + rep.new_edges.size());
  for (uint32_t c = 0; c < old_n; ++c) {
    if (c >= lo && c < old_hi) continue;
    uint32_t from = remap(c);
    for (uint32_t t : succ_.Row(c)) {
      edges.push_back((uint64_t{from} << 32) | remap(t));
    }
  }
  for (uint32_t c = lo; c < lo + rep.new_window_size; ++c) {
    for (AtomId a : graph.Atoms(c)) {
      for (RuleId rid : gp.PositiveOccurrences(a)) {
        if (!RuleEnabledIn(disabled, rid)) continue;
        uint32_t hc = graph.ComponentOf(gp.rules()[rid].head);
        if (hc != c) edges.push_back((uint64_t{c} << 32) | hc);
      }
      for (RuleId rid : gp.NegativeOccurrences(a)) {
        if (!RuleEnabledIn(disabled, rid)) continue;
        uint32_t hc = graph.ComponentOf(gp.rules()[rid].head);
        if (hc != c) edges.push_back((uint64_t{c} << 32) | hc);
      }
    }
  }
  for (const auto& [from, to] : rep.new_edges) {
    edges.push_back((uint64_t{from} << 32) | to);
  }
  BuildFromEdges(&edges, new_n, &succ_, &indegree_);
}

unsigned ResolveThreadCount(unsigned requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

namespace {

/// One worker's private diagnostics, padded so neighbouring workers'
/// counter increments never share a cache line.
struct alignas(64) WorkerDiag {
  SolverDiagnostics diag;
};

}  // namespace

void ParallelSolveAllComponentsInto(const GroundProgram& gp,
                                    const AtomDependencyGraph& graph,
                                    const ComponentDag& dag,
                                    const std::vector<uint8_t>* disabled,
                                    WorkStealingPool* pool, TruthTape* values,
                                    StageTape* stages, SolverDiagnostics* diag,
                                    CancelCtx* cancel,
                                    std::vector<uint8_t>* solved) {
  GSLS_TRACE_SPAN("solve.parallel", dag.component_count());
  // The lazy occurrence index must exist before workers read it
  // concurrently.
  gp.EnsureOccurrenceIndex();
  values->Assign(gp.atom_count());
  if (stages != nullptr) stages->Assign(gp.atom_count());

  uint32_t ncomp = dag.component_count();
  std::unique_ptr<std::atomic<uint32_t>[]> pending(
      new std::atomic<uint32_t>[ncomp]);
  std::vector<uint32_t> seeds;
  for (uint32_t c = 0; c < ncomp; ++c) {
    pending[c].store(dag.indegrees()[c], std::memory_order_relaxed);
    if (dag.indegrees()[c] == 0) seeds.push_back(c);
  }

  if (solved != nullptr) solved->assign(ncomp, 0);
  std::vector<WorkerDiag> worker_diags(pool->size());
  RunReadyReleaseSchedule(
      pool, seeds, pending.get(),
      [&](unsigned worker, uint32_t c) {
        SolverDiagnostics& wd = worker_diags[worker].diag;
        wd.max_component_size =
            std::max(wd.max_component_size,
                     static_cast<uint32_t>(graph.Atoms(c).size()));
        if (!SolveComponent(gp, graph, c, disabled, values, stages, &wd,
                            cancel)) {
          return false;
        }
        if (solved != nullptr) (*solved)[c] = 1;
        return true;
      },
      [&](uint32_t c) { return dag.Successors(c); },
      [](uint32_t s) { return s; });

  for (const WorkerDiag& wd : worker_diags) diag->MergeFrom(wd.diag);
  diag->component_count = ncomp;
}

}  // namespace gsls::solver
