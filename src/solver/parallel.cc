#include "solver/parallel.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>

#include "solver/component_eval.h"

namespace gsls::solver {

ComponentDag::ComponentDag(const GroundProgram& gp,
                           const AtomDependencyGraph& graph) {
  uint32_t ncomp = graph.component_count();
  // Cross-component edges, deduplicated by one sort over packed
  // (from, to) keys. Condensation order guarantees from < to.
  std::vector<uint64_t> edges;
  for (const GroundRule& r : gp.rules()) {
    uint32_t hc = graph.ComponentOf(r.head);
    for (AtomId b : r.pos) {
      uint32_t bc = graph.ComponentOf(b);
      if (bc != hc) edges.push_back((uint64_t{bc} << 32) | hc);
    }
    for (AtomId b : r.neg) {
      uint32_t bc = graph.ComponentOf(b);
      if (bc != hc) edges.push_back((uint64_t{bc} << 32) | hc);
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  indegree_.assign(ncomp, 0);
  succ_.Reset(ncomp);
  for (uint64_t e : edges) succ_.CountAt(static_cast<uint32_t>(e >> 32));
  succ_.FinishCounting();
  for (uint64_t e : edges) {
    uint32_t to = static_cast<uint32_t>(e);
    succ_.Fill(static_cast<uint32_t>(e >> 32), to);
    ++indegree_[to];
  }
  succ_.FinishFilling();
}

unsigned ResolveThreadCount(unsigned requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

namespace {

/// One worker's private diagnostics, padded so neighbouring workers'
/// counter increments never share a cache line.
struct alignas(64) WorkerDiag {
  SolverDiagnostics diag;
};

}  // namespace

void ParallelSolveAllComponentsInto(const GroundProgram& gp,
                                    const AtomDependencyGraph& graph,
                                    const ComponentDag& dag,
                                    const std::vector<uint8_t>* disabled,
                                    WorkStealingPool* pool, TruthTape* values,
                                    StageTape* stages,
                                    SolverDiagnostics* diag) {
  // The lazy occurrence index must exist before workers read it
  // concurrently.
  gp.EnsureOccurrenceIndex();
  values->Assign(gp.atom_count());
  if (stages != nullptr) stages->Assign(gp.atom_count());

  uint32_t ncomp = dag.component_count();
  std::unique_ptr<std::atomic<uint32_t>[]> pending(
      new std::atomic<uint32_t>[ncomp]);
  std::vector<uint32_t> seeds;
  for (uint32_t c = 0; c < ncomp; ++c) {
    pending[c].store(dag.indegrees()[c], std::memory_order_relaxed);
    if (dag.indegrees()[c] == 0) seeds.push_back(c);
  }

  std::vector<WorkerDiag> worker_diags(pool->size());
  RunReadyReleaseSchedule(
      pool, seeds, pending.get(),
      [&](unsigned worker, uint32_t c) {
        SolverDiagnostics& wd = worker_diags[worker].diag;
        wd.max_component_size =
            std::max(wd.max_component_size,
                     static_cast<uint32_t>(graph.Atoms(c).size()));
        SolveComponent(gp, graph, c, disabled, values, stages, &wd);
      },
      [&](uint32_t c) { return dag.Successors(c); },
      [](uint32_t s) { return s; });

  for (const WorkerDiag& wd : worker_diags) diag->MergeFrom(wd.diag);
  diag->component_count = ncomp;
}

}  // namespace gsls::solver
