#ifndef GSLS_SOLVER_COMPONENT_MEMO_H_
#define GSLS_SOLVER_COMPONENT_MEMO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/dynamic_condensation.h"

namespace gsls::solver {

/// Per-component memo of solved results, keyed by component id and a solve
/// epoch: entry `c` is *valid* when the persistent tapes
/// (`TruthTape`/`StageTape` of `IncrementalSolver`) hold the final values
/// of component `c` for the current program — i.e. the component was
/// solved in some epoch and no later delta could have moved it.
///
/// This is what makes goal-directed queries (`IncrementalSolver::
/// QueryAtom`) cheap on repeat: a query solves the down-cone of its atom
/// once, marks those components valid, and a second query over an
/// overlapping cone serves every still-valid component straight from the
/// tape — zero evaluation, one byte test per cone member (and when *every*
/// component is valid, the query skips even the cone walk).
///
/// Invalidation is the mirror image of the delta path's dirtying and is
/// deliberately *lazy and change-pruned*, never a transitive sweep:
///
///  - A fact or rule delta invalidates exactly the components whose rule
///    set changed (the same dirty sets `CondensationRepair` and the
///    up-cone path already compute) — O(delta), not O(up-cone).
///  - When a later solve re-runs an invalid component and its values (or
///    stages) actually move, the re-solve invalidates the component's
///    direct dependents in turn (the same occurrence scan the up-cone
///    change pruning uses). Staleness therefore propagates exactly as far
///    as real value changes do, one solved component at a time, and a
///    delta whose effects die out locally never touches the memo beyond
///    its own cone.
///
/// The closure invariant that makes the laziness sound: a valid entry's
/// tape values are correct *provided every invalid component below it is
/// re-solved first (in dependency order) and dependents are invalidated
/// whenever a re-solve changes values*. Both query and up-cone passes
/// maintain exactly this discipline.
///
/// Component ids are renumbered by recondensation windows
/// (`DynamicCondensation`); `ApplyRepair` translates the validity map
/// through a repair — ids below the window keep their entries, ids above
/// shift by the window's size delta, and the window's entries follow
/// `CondensationRepair::old_to_new` when the repair produced a total map
/// (a window member whose membership didn't change keeps its validity at
/// its new id; merged and dirty members are dropped). Splits have no map
/// and drop the window wholesale.
///
/// Thread-safety: none. The parallel query/up-cone passes read validity
/// before the barrier and write it after — see the call sites in
/// incremental.cc.
class ComponentMemo {
 public:
  /// Lifetime counters for diagnostics and the serving-layer telemetry.
  struct Stats {
    uint64_t hits = 0;           ///< cone members served from the memo
    uint64_t misses = 0;         ///< cone members that had to re-solve
    uint64_t invalidations = 0;  ///< valid entries dropped by deltas/changes
    std::string ToString() const;
  };

  /// Number of components currently tracked.
  uint32_t size() const { return static_cast<uint32_t>(valid_.size()); }

  /// Monotone solve epoch: bumped on every invalidation event, recorded
  /// per entry by `MarkValid`. `EpochOf` is a diagnostics surface (tests
  /// assert that memo-hit queries do not advance entries' epochs).
  uint64_t epoch() const { return epoch_; }
  uint64_t EpochOf(uint32_t c) const {
    return c < stamp_.size() ? stamp_[c] : 0;
  }

  /// True iff component `c`'s tape values are served as final.
  bool Valid(uint32_t c) const { return c < valid_.size() && valid_[c] != 0; }

  /// True iff every tracked component is valid — the all-memo-hit fast
  /// path: a query can answer from the tape without walking its cone.
  bool AllValid() const { return invalid_count_ == 0; }

  /// Grows to `component_count` entries; new trailing components (spliced
  /// singletons for freshly interned atoms) start invalid.
  void Grow(uint32_t component_count) {
    if (component_count <= valid_.size()) return;
    invalid_count_ += component_count - static_cast<uint32_t>(valid_.size());
    valid_.resize(component_count, 0);
    stamp_.resize(component_count, 0);
  }

  /// Records that `c` was solved against the current program in the
  /// current epoch.
  void MarkValid(uint32_t c) {
    if (valid_[c] == 0) {
      valid_[c] = 1;
      --invalid_count_;
    }
    stamp_[c] = epoch_;
  }

  /// Marks every entry valid — a full solve just finalized every
  /// component.
  void MarkAllValid() {
    ++epoch_;
    for (uint32_t c = 0; c < valid_.size(); ++c) {
      valid_[c] = 1;
      stamp_[c] = epoch_;
    }
    invalid_count_ = 0;
  }

  /// Drops entry `c`. Returns true iff it was valid (the caller queues a
  /// re-solve marker only for newly invalidated components, keeping the
  /// pending set duplicate-free).
  bool Invalidate(uint32_t c) {
    if (c >= valid_.size() || valid_[c] == 0) return false;
    valid_[c] = 0;
    ++invalid_count_;
    ++stats_.invalidations;
    ++epoch_;
    return true;
  }

  /// Drops every entry (`InvalidateMemo` on the solver: the next query
  /// pays a cold cone, the next `Model()` a full solve). Keeps sizes.
  void InvalidateAll() {
    ++epoch_;
    for (uint32_t c = 0; c < valid_.size(); ++c) {
      if (valid_[c] != 0) ++stats_.invalidations;
      valid_[c] = 0;
    }
    invalid_count_ = static_cast<uint32_t>(valid_.size());
  }

  /// Translates the validity map through a condensation repair: ids below
  /// `rep.window_lo` are untouched, ids above the old window shift by
  /// `rep.id_shift()`, and window entries ride `rep.old_to_new` when the
  /// map is total (merged targets AND their sources' validity; `rep.dirty`
  /// is dropped at the end regardless) or are dropped wholesale on a
  /// split. `new_component_count` is the post-repair count. On a
  /// non-recondensing repair only `rep.dirty` is dropped.
  void ApplyRepair(const CondensationRepair& rep,
                   uint32_t new_component_count);

  void CountHit() { ++stats_.hits; }
  void CountMiss() { ++stats_.misses; }
  /// Bulk forms for the parallel query pass, which tallies hits/misses
  /// once after the barrier instead of per component.
  void CountHits(uint64_t n) { stats_.hits += n; }
  void CountMisses(uint64_t n) { stats_.misses += n; }
  const Stats& stats() const { return stats_; }

 private:
  std::vector<uint8_t> valid_;   ///< per component; 1 = served from memo
  std::vector<uint64_t> stamp_;  ///< per component: epoch of last solve
  uint32_t invalid_count_ = 0;
  uint64_t epoch_ = 0;
  Stats stats_;
};

}  // namespace gsls::solver

#endif  // GSLS_SOLVER_COMPONENT_MEMO_H_
