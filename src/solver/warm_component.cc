#include "solver/warm_component.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "obs/trace.h"
#include "util/strings.h"

namespace gsls::solver {

namespace {

/// From-scratch recount of one rule's `dead` / `undef_external` / `unsat`
/// against the live tape and mask — the audit oracle for the counters the
/// propagation loop maintains incrementally.
void ExpectedCounters(const RuleTable& t, LocalRule r, const TruthTape& tape,
                      const std::vector<uint8_t>* disabled, bool* dead,
                      uint32_t* undef_ext, uint32_t* unsat) {
  *dead = disabled != nullptr && (*disabled)[t.GlobalRule(r)] != 0;
  *undef_ext = 0;
  uint32_t internal = 0;
  for (AtomId b : t.ExtPos(r)) {
    if (tape.IsFalse(b)) *dead = true;
    else if (!tape.IsTrue(b)) ++*undef_ext;
  }
  for (AtomId b : t.ExtNeg(r)) {
    if (tape.IsTrue(b)) *dead = true;
    else if (!tape.IsFalse(b)) ++*undef_ext;
  }
  for (LocalAtom lb : t.PosBody(r)) {
    AtomId g = t.GlobalAtom(lb);
    if (tape.IsFalse(g)) *dead = true;
    else if (!tape.IsTrue(g)) ++internal;
  }
  for (LocalAtom lb : t.NegBody(r)) {
    AtomId g = t.GlobalAtom(lb);
    if (tape.IsTrue(g)) *dead = true;
    else if (!tape.IsFalse(g)) ++internal;
  }
  *unsat = internal + *undef_ext;
}

}  // namespace

void WarmComponent::RecordTrue(LocalAtom a, LocalRule r, TruthTape* values) {
  AtomId g = atoms_[a];
  if (values->IsTrue(g)) return;
  // A rule fires only with a wholly satisfied body, which never includes
  // an unfounded atom, so a fired head cannot have been falsified.
  assert(!values->IsFalse(g));
  values->SetTrue(g);
  support_->OnAtomTrue(a);
  batch_[a] = next_batch_++;
  firing_[a] = r;
  trail_.push_back(a);
  true_queue_.push_back(a);
}

void WarmComponent::RecordFalse(LocalAtom a, uint64_t batch,
                                TruthTape* values) {
  AtomId g = atoms_[a];
  if (values->IsFalse(g)) return;
  assert(!values->IsTrue(g));
  values->SetFalse(g);
  batch_[a] = batch;
  firing_[a] = kNoRule;
  trail_.push_back(a);
  false_queue_.push_back(a);
}

void WarmComponent::Kill(LocalRule r) {
  CompiledRule& rule = table_->rule(r);
  if (rule.dead) return;
  rule.dead = true;
  support_->OnRuleDead(r);
}

bool WarmComponent::Propagate(TruthTape* values, CancelCtx* cancel) {
  StridedCheckpoint tick(cancel);
  while (!true_queue_.empty() || !false_queue_.empty()) {
    if (tick.Tick()) return false;
    if (!true_queue_.empty()) {
      LocalAtom a = true_queue_.back();
      true_queue_.pop_back();
      for (LocalRule r : table_->PositiveOccurrences(a)) {
        CompiledRule& rule = table_->rule(r);
        if (!rule.dead && --rule.unsat == 0) RecordTrue(rule.head, r, values);
      }
      // `not a` is now false: those rules are unusable for good.
      for (LocalRule r : table_->NegativeOccurrences(a)) Kill(r);
    } else {
      LocalAtom a = false_queue_.back();
      false_queue_.pop_back();
      for (LocalRule r : table_->PositiveOccurrences(a)) Kill(r);
      // `not a` is now satisfied.
      for (LocalRule r : table_->NegativeOccurrences(a)) {
        CompiledRule& rule = table_->rule(r);
        if (!rule.dead && --rule.unsat == 0) RecordTrue(rule.head, r, values);
      }
    }
  }
  return true;
}

bool WarmComponent::RunToFixpoint(TruthTape* values, SolverDiagnostics* diag,
                                  CancelCtx* cancel) {
  while (true) {
    {
      GSLS_TRACE_SPAN("component.lfp", table_->rule_count());
      if (!Propagate(values, cancel)) return false;
    }
    if (!support_->HasPending()) break;
    ++diag->alternating_rounds;
    unfounded_.clear();
    {
      GSLS_TRACE_SPAN("component.unfounded", support_->floods());
      if (!support_->CollectUnfounded(&unfounded_, cancel)) return false;
    }
    diag->unfounded_falsified += unfounded_.size();
    if (!unfounded_.empty()) {
      // One flood's falsifications are mutually justified (the greatest
      // unfounded set falls together): they share one batch so an undo
      // can never split them.
      uint64_t fb = next_batch_++;
      for (LocalAtom a : unfounded_) RecordFalse(a, fb, values);
    }
  }
  return true;
}

bool WarmComponent::SolveFromScratch(const GroundProgram& gp,
                                     const AtomDependencyGraph& graph,
                                     uint32_t comp,
                                     const std::vector<uint8_t>* disabled,
                                     TruthTape* values, StageTape* stages,
                                     SolverDiagnostics* diag,
                                     CancelCtx* cancel) {
  // Mirrors `SolveComponent`: the uniform component-boundary checkpoint,
  // then the recursive-component accounting.
  if (cancel != nullptr && cancel->Checkpoint()) return false;
  GSLS_TRACE_SPAN("solve.component", comp);
  ++diag->recursive_components;
  if (graph.HasInternalNegation(comp)) ++diag->negation_components;

  table_ = std::make_unique<RuleTable>(gp, graph, comp, *values, disabled,
                                       cancel, /*keep_all=*/true);
  if (table_->aborted()) return false;  // tape untouched
  support_ = std::make_unique<SourceTracker>(table_.get());
  std::span<const AtomId> members = graph.Atoms(comp);
  atoms_.assign(members.begin(), members.end());
  candidate_count_ = 0;
  for (AtomId a : atoms_) candidate_count_ += gp.RulesFor(a).size();
  trail_.clear();
  batch_.assign(atoms_.size(), kNoBatch);
  firing_.assign(atoms_.size(), kNoRule);
  next_batch_ = 0;
  rule_stamp_.assign(table_->rule_count(), 0);
  stamp_ = 0;
  true_queue_.clear();
  false_queue_.clear();

  diag->rules_visited += table_->rule_count();

  unfounded_.clear();
  if (!support_->InitSources(&unfounded_, cancel)) return false;
  diag->unfounded_falsified += unfounded_.size();
  if (!unfounded_.empty()) {
    uint64_t fb = next_batch_++;
    for (LocalAtom a : unfounded_) RecordFalse(a, fb, values);
  }
  for (LocalRule r = 0; r < table_->rule_count(); ++r) {
    const CompiledRule& rule = table_->rule(r);
    if (!rule.dead && rule.unsat == 0) RecordTrue(rule.head, r, values);
  }
  if (!RunToFixpoint(values, diag, cancel)) {
    // Abort invariant parity with `SolveComponent`: the component reads
    // exactly as on entry — all undefined. The instance itself is
    // inconsistent now; the owner discards it.
    for (AtomId a : atoms_) values->SetUndefined(a);
    return false;
  }
  diag->unfounded_floods += support_->floods();
  diag->flood_sizes.MergeFrom(support_->flood_sizes());
  if (stages != nullptr) {
    ReconstructComponentStages(gp, graph, comp, disabled, *values, stages);
  }
  return true;
}

bool WarmComponent::BindingValid(const GroundProgram& gp,
                                 const AtomDependencyGraph& graph,
                                 uint32_t comp,
                                 const TruthTape& values) const {
  if (table_ == nullptr || support_ == nullptr) return false;
  std::span<const AtomId> members = graph.Atoms(comp);
  if (members.size() != atoms_.size()) return false;
  // Sequence (not multiset) equality: a recondensation that re-emitted the
  // members in a different Tarjan order changes every local id the trail
  // and the compiled bodies are keyed by.
  if (!std::equal(members.begin(), members.end(), atoms_.begin())) {
    return false;
  }
  // Rules are only appended to a `GroundProgram`, never removed, so a
  // candidate-count match means no new rule targets this component; mask
  // flips of retained rules are what `Resolve` patches.
  size_t candidates = 0;
  for (AtomId a : atoms_) candidates += gp.RulesFor(a).size();
  if (candidates != candidate_count_) return false;
  // Tape consistency: an out-of-band pass (a fresh full solve, a cold
  // re-solve that bypassed this entry) may have rewritten the component's
  // bytes; the tracker is then stale and the state must be discarded.
  for (LocalAtom a = 0; a < atoms_.size(); ++a) {
    SourceTracker::State s = support_->StateOf(a);
    switch (values.Value(atoms_[a])) {
      case TruthValue::kTrue:
        if (s != SourceTracker::State::kTrue) return false;
        break;
      case TruthValue::kFalse:
        if (s != SourceTracker::State::kFalse) return false;
        break;
      case TruthValue::kUndefined:
        if (s != SourceTracker::State::kSourced) return false;
        break;
    }
  }
  return true;
}

bool WarmComponent::Resolve(const GroundProgram& gp,
                            const AtomDependencyGraph& graph, uint32_t comp,
                            const std::vector<uint8_t>* disabled,
                            TruthTape* values, StageTape* stages,
                            SolverDiagnostics* diag, CancelCtx* cancel) {
  // Same uniform component-boundary checkpoint as `SolveComponent`.
  if (cancel != nullptr && cancel->Checkpoint()) return false;
  GSLS_TRACE_SPAN("solve.component.warm", comp);
  ++diag->recursive_components;
  if (graph.HasInternalNegation(comp)) ++diag->negation_components;
  const uint64_t floods_before = support_->floods();
  const uint64_t flood_sum_before = support_->flood_sizes().sum;
  true_queue_.clear();
  false_queue_.clear();

  // Phase 1: classify the drift against the snapshots — an O(rules) byte
  // scan of the mask plus the drifted externals' occurrence rows. Nothing
  // else in the component is touched.
  ++stamp_;
  recomputed_.clear();
  auto touch = [this](LocalRule r) {
    if (rule_stamp_[r] == stamp_) return;
    rule_stamp_[r] = stamp_;
    recomputed_.push_back(r);
  };
  for (LocalRule r = 0; r < table_->rule_count(); ++r) {
    uint8_t now = disabled != nullptr ? (*disabled)[table_->GlobalRule(r)] : 0;
    if (table_->DisabledSnapshot(r) != now) touch(r);
  }
  for (uint32_t i = 0; i < table_->external_count(); ++i) {
    if (table_->ExternalSnapshot(i) !=
        RuleTable::Code(*values, table_->ExternalAtom(i))) {
      for (LocalRule r : table_->ExternalOccurrences(i)) touch(r);
    }
  }

  // Phase 2: patch the touched rules (pre-undo tape) and collect the undo
  // threshold t*: the earliest batch whose justification the drift broke.
  uint64_t tstar = kNoBatch;
  const size_t drift_rules = recomputed_.size();
  for (size_t k = 0; k < drift_rules; ++k) {
    LocalRule r = recomputed_[k];
    CompiledRule& rule = table_->rule(r);
    const bool was_dead = rule.dead;
    table_->RecomputeRule(r, *values, disabled);
    if (!was_dead && rule.dead) support_->OnRuleDead(r);
    const bool now_fireable = !rule.dead && rule.unsat == 0;
    LocalAtom h = rule.head;
    AtomId hg = atoms_[h];
    // A true head whose firing rule no longer has a wholly satisfied
    // body: its justification broke.
    if (values->IsTrue(hg) && firing_[h] == r && !now_fireable) {
      tstar = std::min(tstar, batch_[h]);
    }
    // A revived rule under a false head: the falsification rested on all
    // of the head's rules being dead.
    if (was_dead && !rule.dead && values->IsFalse(hg)) {
      tstar = std::min(tstar, batch_[h]);
    }
  }

  // Phase 3: undo the trail suffix with batch >= t*. Suffix-only by
  // construction — batches are monotone along the trail, one flood shares
  // one batch, and every surviving decision's justification references
  // strictly smaller batches, so the survivors stay fully justified.
  size_t undone = 0;
  if (tstar != kNoBatch) {
    while (!trail_.empty() && batch_[trail_.back()] >= tstar) {
      LocalAtom a = trail_.back();
      trail_.pop_back();
      values->SetUndefined(atoms_[a]);
      batch_[a] = kNoBatch;
      firing_[a] = kNoRule;
      support_->OnAtomUndone(a);
      // Every adjacent rule's counters are recomputed below, once the
      // post-undo tape is final. The atom's own candidate rules are
      // touched too: a rule whose body survived the undo untouched can
      // still be fireable, and only phase 4's firing loop will push it
      // back into the now-undefined head — the unfounded flood re-sources
      // undefined atoms but never derives truth.
      for (LocalRule r : table_->RulesFor(a)) touch(r);
      for (LocalRule r : table_->PositiveOccurrences(a)) touch(r);
      for (LocalRule r : table_->NegativeOccurrences(a)) touch(r);
      ++undone;
    }
  }
  diag->warm_undone_atoms += undone;
  diag->rules_visited += recomputed_.size();

  // Phase 4: recompute every touched rule against the post-undo tape
  // (undo can only revive rules — it moves atoms to undefined, never
  // decides them — so no new deaths arise here), then fire the live
  // empty-remainder rules into the undone region.
  for (LocalRule r : recomputed_) {
    CompiledRule& rule = table_->rule(r);
    const bool was_dead = rule.dead;
    table_->RecomputeRule(r, *values, disabled);
    if (!was_dead && rule.dead) support_->OnRuleDead(r);
  }
  for (LocalRule r : recomputed_) {
    const CompiledRule& rule = table_->rule(r);
    if (!rule.dead && rule.unsat == 0 &&
        values->IsUndefined(atoms_[rule.head])) {
      RecordTrue(rule.head, r, values);
    }
  }

  // Phase 5: resume the alternating fixpoint. The first flood is seeded
  // from exactly the undone atoms and the heads whose sources died — the
  // delta's footprint — instead of `InitSources` over the component.
  if (!RunToFixpoint(values, diag, cancel)) return false;
  table_->RefreshSnapshots(*values, disabled);
  ++resolves_;
  ++diag->warm_hits;
  diag->unfounded_floods += support_->floods() - floods_before;
  diag->seeded_flood_sizes.Record(support_->flood_sizes().sum -
                                  flood_sum_before);
  if (stages != nullptr) {
    ReconstructComponentStages(gp, graph, comp, disabled, *values, stages);
  }
  return true;
}

bool WarmComponent::AuditInvariants(const GroundProgram& gp,
                                    const AtomDependencyGraph& graph,
                                    uint32_t comp,
                                    const std::vector<uint8_t>* disabled,
                                    const TruthTape& values,
                                    std::string* why) const {
  auto fail = [why](std::string reason) {
    if (why != nullptr) *why = std::move(reason);
    return false;
  };
  if (table_ == nullptr || support_ == nullptr) {
    return fail("warm entry has no table/tracker");
  }
  if (!BindingValid(gp, graph, comp, values)) {
    return fail("warm binding invalid (atom sequence, candidate count, or "
                "tape/tracker mismatch)");
  }
  const size_t n = atoms_.size();

  // Snapshots must be reconciled at quiescence — except an external slot
  // whose every occurrence is mask-disabled: a delta may change such an
  // atom without dirtying this component (disabled rules cannot move its
  // values, so the change-pruned up-cone rightly skips it), and the next
  // warm re-solve reconciles the drift. An *enabled* occurrence of a
  // stale external means the component should have re-solved: violation.
  for (uint32_t i = 0; i < table_->external_count(); ++i) {
    if (table_->ExternalSnapshot(i) ==
        RuleTable::Code(values, table_->ExternalAtom(i))) {
      continue;
    }
    for (LocalRule r : table_->ExternalOccurrences(i)) {
      const uint8_t dis =
          disabled != nullptr ? (*disabled)[table_->GlobalRule(r)] : 0;
      if (dis == 0) {
        return fail(StrCat("external snapshot stale at atom ",
                           table_->ExternalAtom(i),
                           " with enabled occurrence rule ",
                           table_->GlobalRule(r)));
      }
    }
  }
  for (LocalRule r = 0; r < table_->rule_count(); ++r) {
    uint8_t now = disabled != nullptr ? (*disabled)[table_->GlobalRule(r)] : 0;
    if (table_->DisabledSnapshot(r) != now) {
      return fail(
          StrCat("disabled snapshot stale at rule ", table_->GlobalRule(r)));
    }
  }

  // Cached counters: the dead flag must equal a from-scratch recount
  // exactly; live rules' unsat/undef_external likewise. Dead rules'
  // counters are allowed to be stale — the propagation loop never
  // decrements them and a revival recomputes them first.
  for (LocalRule r = 0; r < table_->rule_count(); ++r) {
    const CompiledRule& rule = table_->rule(r);
    bool dead;
    uint32_t undef_ext;
    uint32_t unsat;
    ExpectedCounters(*table_, r, values, disabled, &dead, &undef_ext, &unsat);
    if (rule.dead != dead) {
      return fail(StrCat("rule ", table_->GlobalRule(r), " dead flag is ",
                         rule.dead ? 1 : 0, " but recount says ",
                         dead ? 1 : 0));
    }
    if (!rule.dead &&
        (rule.unsat != unsat || rule.undef_external != undef_ext)) {
      return fail(StrCat("rule ", table_->GlobalRule(r),
                         " counters drifted: unsat=", rule.unsat,
                         " recount=", unsat));
    }
  }

  // Per-atom state: sources live and well-formed, firing rules still
  // satisfied, falsified atoms with every rule dead.
  for (LocalAtom a = 0; a < n; ++a) {
    switch (support_->StateOf(a)) {
      case SourceTracker::State::kSourced: {
        LocalRule s = support_->SourceOf(a);
        if (s == kNoRule) {
          return fail(StrCat("sourced atom ", atoms_[a], " has no source"));
        }
        const CompiledRule& rule = table_->rule(s);
        if (rule.head != a) {
          return fail(StrCat("source of atom ", atoms_[a],
                             " heads a different atom"));
        }
        if (rule.dead) {
          return fail(StrCat("source of atom ", atoms_[a], " is dead"));
        }
        for (LocalAtom b : table_->PosBody(s)) {
          SourceTracker::State bs = support_->StateOf(b);
          if (bs != SourceTracker::State::kSourced &&
              bs != SourceTracker::State::kTrue) {
            return fail(StrCat("source body of atom ", atoms_[a],
                               " is not supported"));
          }
        }
        break;
      }
      case SourceTracker::State::kUnsourced:
        return fail(StrCat("atom ", atoms_[a], " unsourced at quiescence"));
      case SourceTracker::State::kTrue: {
        LocalRule f = firing_[a];
        if (f == kNoRule || batch_[a] == kNoBatch) {
          return fail(StrCat("true atom ", atoms_[a],
                             " without firing rule or batch"));
        }
        const CompiledRule& rule = table_->rule(f);
        if (rule.head != a || rule.dead || rule.unsat != 0) {
          return fail(StrCat("firing rule of atom ", atoms_[a],
                             " no longer fires it"));
        }
        break;
      }
      case SourceTracker::State::kFalse: {
        for (LocalRule r : table_->RulesFor(a)) {
          if (!table_->rule(r).dead) {
            return fail(
                StrCat("false atom ", atoms_[a], " has a live rule"));
          }
        }
        break;
      }
    }
  }

  // Trail well-formedness: exactly the decided atoms, each once, batches
  // monotone non-decreasing in push order.
  std::vector<uint8_t> on_trail(n, 0);
  uint64_t prev = 0;
  bool first = true;
  for (LocalAtom a : trail_) {
    if (on_trail[a]) return fail(StrCat("atom ", atoms_[a], " twice on trail"));
    on_trail[a] = 1;
    if (batch_[a] == kNoBatch) {
      return fail(StrCat("trail atom ", atoms_[a], " without batch"));
    }
    if (!first && batch_[a] < prev) {
      return fail(StrCat("trail batches not monotone at atom ", atoms_[a]));
    }
    prev = batch_[a];
    first = false;
    if (values.IsUndefined(atoms_[a])) {
      return fail(StrCat("undecided atom ", atoms_[a], " on trail"));
    }
  }
  for (LocalAtom a = 0; a < n; ++a) {
    bool decided = !values.IsUndefined(atoms_[a]);
    if (decided && !on_trail[a]) {
      return fail(StrCat("decided atom ", atoms_[a], " missing from trail"));
    }
    if (!decided && batch_[a] != kNoBatch) {
      return fail(StrCat("undecided atom ", atoms_[a], " carries a batch"));
    }
  }

  // Source-pointer acyclicity: DFS over the sourced atoms following the
  // source rule's internal positive body (true atoms terminate chains).
  std::vector<uint8_t> color(n, 0);  // 0 white, 1 gray, 2 black
  std::vector<std::pair<LocalAtom, size_t>> stack;
  for (LocalAtom root = 0; root < n; ++root) {
    if (support_->StateOf(root) != SourceTracker::State::kSourced ||
        color[root] != 0) {
      continue;
    }
    color[root] = 1;
    stack.push_back({root, 0});
    while (!stack.empty()) {
      LocalAtom a = stack.back().first;
      std::span<const LocalAtom> body = table_->PosBody(support_->SourceOf(a));
      if (stack.back().second == body.size()) {
        color[a] = 2;
        stack.pop_back();
        continue;
      }
      LocalAtom b = body[stack.back().second++];
      if (support_->StateOf(b) != SourceTracker::State::kSourced) continue;
      if (color[b] == 1) {
        return fail(StrCat("source pointer cycle through atom ", atoms_[b]));
      }
      if (color[b] == 0) {
        color[b] = 1;
        stack.push_back({b, 0});
      }
    }
  }
  return true;
}

}  // namespace gsls::solver
