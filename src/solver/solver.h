#ifndef GSLS_SOLVER_SOLVER_H_
#define GSLS_SOLVER_SOLVER_H_

#include <cstdint>
#include <string>

#include "ground/ground_program.h"
#include "obs/histogram.h"
#include "util/cancel.h"
#include "wfs/wfs.h"

namespace gsls {

namespace obs {
class Gauge;
struct Telemetry;
}  // namespace obs

/// Per-run diagnostics of `SolveWfs`.
///
/// Adding a field? Update `MergeFrom` and `ToString`, then the
/// sizeof static_assert next to them in solver.cc — it exists so a new
/// counter that the parallel barrier would silently drop fails to
/// compile instead.
struct SolverDiagnostics {
  uint32_t component_count = 0;      ///< SCCs of the atom dependency graph
  uint32_t max_component_size = 0;   ///< atoms in the largest SCC
  uint32_t recursive_components = 0; ///< SCCs needing fixpoint iteration
  uint32_t negation_components = 0;  ///< SCCs recursing through negation
  uint64_t rules_visited = 0;        ///< compiled rule instances examined
  uint64_t unfounded_floods = 0;     ///< source-loss floods run
  uint64_t unfounded_falsified = 0;  ///< atoms falsified wholesale by floods
  uint64_t alternating_rounds = 0;   ///< component-local truth/unfounded rounds
  /// Warm-interior bookkeeping (solver/warm_component.h): dirty recursive
  /// components re-solved by patching persisted state instead of a cold
  /// compile + `InitSources`, and the times the warm entry had to be
  /// discarded (binding drift, recondensation, abort) and the cold path
  /// taken instead.
  uint64_t warm_hits = 0;
  uint64_t warm_cold_fallbacks = 0;
  /// Trail entries undone across all warm re-solves: the interior dual of
  /// `unfounded_falsified` — how much of a component a delta actually
  /// touched. Bounded by the seeded flood, not the component size.
  uint64_t warm_undone_atoms = 0;
  /// Atoms flooded per source-loss flood (candidate-set sizes): the
  /// distribution behind `unfounded_floods`, accumulated without atomics
  /// like every other field and merged bucket-wise at the barrier. The
  /// p99 here is what the dense-SCC interior work must shrink.
  obs::LocalHistogram flood_sizes;
  /// Flood sizes restricted to warm re-solves — the floods seeded from the
  /// delta's own atoms/rules rather than `InitSources` over the whole
  /// component. Comparing this distribution against `flood_sizes` is the
  /// direct measurement of the intra-component win.
  obs::LocalHistogram seeded_flood_sizes;

  /// Folds another accumulator into this one (sums, except
  /// `max_component_size`). The parallel scheduler gives every worker a
  /// private `SolverDiagnostics` and merges them once at the final
  /// barrier — no racy increments, no atomics on the hot path. Per-
  /// component work is schedule-independent, so the merged totals equal a
  /// sequential run's.
  void MergeFrom(const SolverDiagnostics& other);

  /// The "solver.diag.*" gauges, interned once so a per-delta publish
  /// costs relaxed stores instead of registry map lookups (the lookup
  /// path is mutexed and would dominate sub-microsecond delta solves).
  struct Channels {
    obs::Gauge* components = nullptr;
    obs::Gauge* max_component_size = nullptr;
    obs::Gauge* recursive_components = nullptr;
    obs::Gauge* negation_components = nullptr;
    obs::Gauge* rules_visited = nullptr;
    obs::Gauge* unfounded_floods = nullptr;
    obs::Gauge* unfounded_falsified = nullptr;
    obs::Gauge* alternating_rounds = nullptr;
    obs::Gauge* flood_size_p50 = nullptr;
    obs::Gauge* flood_size_p99 = nullptr;
    obs::Gauge* warm_hits = nullptr;
    obs::Gauge* warm_cold_fallbacks = nullptr;
    obs::Gauge* warm_undone_atoms = nullptr;
    obs::Gauge* seeded_flood_p50 = nullptr;
    obs::Gauge* seeded_flood_p99 = nullptr;
  };
  /// Interns the channels in `telemetry`'s registry (null-safe: returns
  /// all-null channels that `PublishTo` treats as a no-op).
  static Channels InternChannels(obs::Telemetry* telemetry);

  /// Mirrors every counter (and the flood-size percentiles) into the
  /// interned gauges — idempotent (gauges are set, not added), so it can
  /// run after every pass with cumulative values.
  void PublishTo(const Channels& ch) const;

  /// One-shot convenience for non-streaming callers (`SolveWfs`): interns
  /// and publishes. Null-safe.
  void PublishTo(obs::Telemetry* telemetry) const;

  std::string ToString() const;
};

/// Tuning knobs of the SCC-stratified solve, plumbed down from
/// `EngineOptions::solver` and `TabledOptions::solver`.
struct SolverOptions {
  /// Worker threads for the per-SCC schedule. `1` (the default) runs the
  /// sequential dependency-order loop, bit-for-bit identical to previous
  /// behavior. `0` means one worker per hardware thread. Anything else
  /// runs a work-stealing pool over the condensation DAG
  /// (solver/parallel.h): components are released the moment their
  /// predecessors are final, and the model is identical regardless of the
  /// schedule.
  unsigned num_threads = 1;
  /// Also reconstruct the V_P stage levels (Def. 2.4) into
  /// `WfsModel::true_stage`/`false_stage`, composed per component from the
  /// SCC schedule (solver/stages.h) right after each component's values
  /// finalize — on the sequential loop, the parallel DAG schedule, and the
  /// incremental up-cone re-solve alike, at any thread count. Off (the
  /// default) costs nothing: no tape is allocated and no per-component
  /// pass runs.
  bool compute_levels = false;
  /// Minimum atom count for a recursive component to keep warm interior
  /// state across deltas (`IncrementalSolver` only; one-shot `SolveWfs`
  /// never warms). Small components re-solve cold faster than the warm
  /// bookkeeping costs, and keeping them cold also keeps the fault
  /// injector's checkpoint numbering stable on the small fault-test
  /// programs. 0 disables warm state entirely. The threshold depends only
  /// on component shape, never on the schedule, so warm/cold decisions are
  /// identical at every thread count.
  uint32_t warm_min_atoms = 64;
  /// Telemetry sink (obs/metrics.h): when non-null, solve passes publish
  /// their diagnostics into its registry and the delta paths of
  /// `IncrementalSolver` record per-delta latency/cone/repair histograms
  /// there. Null (the default) skips every metrics cost — the
  /// instrumentation points guard on this pointer. Scoped tracing
  /// (obs/trace.h) is gated separately and process-globally; both engines
  /// plumb this field through untouched (`EngineOptions::solver`,
  /// `TabledOptions::solver`). Not owned; must outlive the solver.
  obs::Telemetry* telemetry = nullptr;
  /// Cooperative cancellation (util/cancel.h): when non-null, the solve
  /// polls this token at every component boundary and every
  /// `kCancelStride` iterations inside the long loops (lfp propagation,
  /// unfounded floods, recondensation windows, the parallel workers), and
  /// aborts crash-consistently — every component is either fully old or
  /// fully new, and `WfsModel::outcome` / `QueryAnswer::outcome` report
  /// `kCancelled`. Null (the default, with the other cancel fields unset)
  /// keeps the pipeline checkpoint-free: the detached path costs nothing
  /// (the bench_telemetry / bench_cancel overhead gates). Not owned; must
  /// outlive the solver; stays cancelled until `CancelToken::Reset`.
  CancelToken* cancel = nullptr;
  /// Absolute steady-clock deadline in ns (`SteadyNowNs` /
  /// `DeadlineAfterNs`), honored within one checkpoint interval; the pass
  /// aborts with `kDeadlineExceeded`. 0 (default) = none.
  uint64_t deadline_ns = 0;
  /// Deterministic work budget: maximum cancellation checkpoints per solve
  /// pass, aborting with `kDeadlineExceeded` — the wall-clock-free twin of
  /// `deadline_ns` for reproducible tests. 0 (default) = unlimited.
  uint64_t step_budget = 0;
  /// Deterministic fault injection over the same checkpoints ("trip at
  /// checkpoint k"): the abort-recovery test harness (tests/fault_test.cc).
  /// Null in production. Not owned.
  FaultInjector* fault = nullptr;
};

/// Computes the well-founded model by SCC-stratified evaluation (the
/// Lonc-Truszczyński decomposition): condense the atom-level dependency
/// graph (Tarjan, `AtomDependencyGraph`), then solve components in
/// dependency order, so every negative literal that reaches outside its
/// component is resolved against an already-final value. Non-recursive
/// atoms reduce to one 3-valued evaluation of their rules; positive-only
/// components reduce to a least-fixpoint pass with watched body counters;
/// only components that recurse through negation pay for the
/// component-local alternating fixpoint, driven by a source-pointer
/// unfounded-set detector (smodels/chuffed style, `SourceTracker`).
///
/// Near-linear when components are small — O(atoms + rules) plus the local
/// iteration inside each negative SCC — versus the globally quadratic
/// `ComputeWfs` / `ComputeWfsAlternating` (footnote 5), and returns the
/// identical model. `WfsModel::iterations` reports the total number of
/// component-local alternating rounds.
///
/// For programs that change by fact assertion/retraction, use
/// `IncrementalSolver` (solver/incremental.h) instead of re-running this
/// per delta: it keeps the condensation and the last model, re-solves only
/// the change-pruned up-cone of the delta's components through the same
/// per-SCC pipeline (solver/component_eval.h), and invalidates the
/// condensation lazily — fact deltas never add dependency edges, so only
/// an `Assert` interning a brand-new atom forces a rebuild.
WfsModel SolveWfs(const GroundProgram& gp, SolverDiagnostics* diag = nullptr);

/// As above with explicit options; `opts.num_threads != 1` schedules the
/// components on a work-stealing pool instead of the sequential loop.
WfsModel SolveWfs(const GroundProgram& gp, const SolverOptions& opts,
                  SolverDiagnostics* diag = nullptr);

}  // namespace gsls

#endif  // GSLS_SOLVER_SOLVER_H_
