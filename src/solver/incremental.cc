#include "solver/incremental.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <ostream>

#include "obs/trace.h"
#include "solver/component_eval.h"
#include "util/strings.h"

namespace gsls {

std::string IncrementalStats::ToString() const {
  return StrCat("deltas=", deltas, " rule_deltas=", rule_deltas,
                " full=", full_solves,
                " incremental=", incremental_solves,
                " rebuilds=", graph_rebuilds,
                " resolved=", components_resolved,
                " reused=", components_reused, " cutoffs=", cone_cutoffs,
                " queries=", queries, " fastpaths=", query_fastpaths,
                " aborted=", aborted_passes, " resumed=", resumed_passes);
}

IncrementalSolver::IncrementalSolver(GroundProgram gp, SolverOptions opts)
    : gp_(std::move(gp)), opts_(opts),
      threads_(solver::ResolveThreadCount(opts.num_threads)) {
  disabled_.assign(gp_.rule_count(), 0);
  if (opts_.telemetry != nullptr) {
    obs::MetricsRegistry& m = opts_.telemetry->metrics;
    tele_.delta_latency_us = m.GetHistogram("incremental.delta.latency_us");
    tele_.dirty_components =
        m.GetHistogram("incremental.delta.dirty_components");
    tele_.cone_components = m.GetHistogram("incremental.delta.cone_components");
    tele_.resolved_components =
        m.GetHistogram("incremental.delta.resolved_components");
    tele_.resolved_atoms = m.GetHistogram("incremental.delta.resolved_atoms");
    tele_.window_components = m.GetHistogram("condense.window_components");
    tele_.full_latency_us = m.GetHistogram("incremental.full.latency_us");
    tele_.diag = SolverDiagnostics::InternChannels(opts_.telemetry);
    tele_.program_atoms = m.GetGauge("program.atoms");
    tele_.program_rules = m.GetGauge("program.rules");
    tele_.deltas = m.GetGauge("incremental.deltas");
    tele_.full_solves = m.GetGauge("incremental.full_solves");
    tele_.incremental_solves = m.GetGauge("incremental.incremental_solves");
    tele_.components_resolved = m.GetGauge("incremental.components_resolved");
    tele_.components_reused = m.GetGauge("incremental.components_reused");
    tele_.cone_cutoffs = m.GetGauge("incremental.cone_cutoffs");
    tele_.graph_components = m.GetGauge("graph.components");
    tele_.cond_inserts = m.GetGauge("condense.inserts");
    tele_.cond_removals = m.GetGauge("condense.removals");
    tele_.cond_windows = m.GetGauge("condense.windows");
    tele_.cond_window_atoms = m.GetGauge("condense.window_atoms");
    tele_.cond_window_us = m.GetGauge("condense.window_us");
    tele_.cond_merges = m.GetGauge("condense.merges");
    tele_.cond_splits = m.GetGauge("condense.splits");
    tele_.query_latency_us = m.GetHistogram("query.latency_us");
    tele_.query_cone_components = m.GetHistogram("query.cone_components");
    tele_.query_cone_atoms = m.GetHistogram("query.cone_atoms");
    tele_.query_resolved_components =
        m.GetHistogram("query.resolved_components");
    tele_.query_memo_hits = m.GetHistogram("query.memo_hits");
    tele_.queries = m.GetGauge("query.count");
    tele_.query_fastpaths = m.GetGauge("query.fastpaths");
    tele_.memo_hits = m.GetGauge("query.memo.hits");
    tele_.memo_misses = m.GetGauge("query.memo.misses");
    tele_.memo_invalidations = m.GetGauge("query.memo.invalidations");
    tele_.cancel_aborts = m.GetCounter("cancel.aborts");
    tele_.cancel_deadline_exceeded = m.GetCounter("cancel.deadline_exceeded");
    tele_.cancel_resumes = m.GetCounter("cancel.resumes");
    tele_.cancel_checkpoints = m.GetCounter("cancel.checkpoints");
    tele_.cancel_resume_components =
        m.GetHistogram("cancel.resume_components");
    tele_.interior_warm_hits = m.GetGauge("interior.warm_hits");
    tele_.interior_cold_fallbacks = m.GetGauge("interior.cold_fallbacks");
    tele_.interior_seeded_flood_atoms =
        m.GetHistogram("interior.seeded_flood_atoms");
    tele_.interior_pk_region_components =
        m.GetHistogram("interior.pk_region_components");
  }
}

CancelCtx* IncrementalSolver::ConfigureCancel() {
  // Re-read the options every time: the Set* mutators (and the engines'
  // per-request deadlines) change them between passes.
  CancelToken* token = opts_.cancel;
  if (token == nullptr && opts_.fault != nullptr) token = &owned_token_;
  cancel_ctx_.set_token(token);
  cancel_ctx_.set_deadline_ns(opts_.deadline_ns);
  cancel_ctx_.set_step_budget(opts_.step_budget);
  cancel_ctx_.set_fault(opts_.fault);
  return cancel_ctx_.active() ? &cancel_ctx_ : nullptr;
}

CancelCtx* IncrementalSolver::BeginCancelPass() {
  CancelCtx* ctx = ConfigureCancel();
  if (ctx != nullptr) ctx->BeginPass();
  return ctx;
}

void IncrementalSolver::NoteOutcome(CancelCtx* cancel, uint64_t resolved) {
  const bool aborted = cancel != nullptr && cancel->aborted();
  if (opts_.telemetry != nullptr && tele_.cancel_checkpoints != nullptr) {
    if (cancel != nullptr) tele_.cancel_checkpoints->Add(cancel->steps());
    if (aborted) {
      tele_.cancel_aborts->Add(1);
      if (cancel->outcome() == SolveOutcome::kDeadlineExceeded) {
        tele_.cancel_deadline_exceeded->Add(1);
      }
    } else if (last_pass_aborted_) {
      tele_.cancel_resumes->Add(1);
      tele_.cancel_resume_components->Record(resolved);
    }
  }
  if (aborted) {
    ++stats_.aborted_passes;
    last_pass_aborted_ = true;
  } else if (last_pass_aborted_) {
    ++stats_.resumed_passes;
    last_pass_aborted_ = false;
  }
}

bool IncrementalSolver::Assert(const Term* fact) {
  return AssertAtom(gp_.InternAtom(fact));
}

bool IncrementalSolver::Retract(const Term* fact) {
  std::optional<AtomId> id = gp_.FindAtom(fact);
  if (!id.has_value()) return false;
  return RetractAtom(*id);
}

bool IncrementalSolver::AssertAtom(AtomId atom) {
  assert(atom < gp_.atom_count());
  std::optional<RuleId> unit = gp_.FindUnitRule(atom);
  if (unit.has_value()) {
    if (RuleEnabled(*unit)) return false;  // already an enabled fact
    disabled_[*unit] = 0;
  } else {
    gp_.AddRule(GroundRule{atom, {}, {}});
    disabled_.resize(gp_.rule_count(), 0);
  }
  MarkDirty(atom);
  return true;
}

bool IncrementalSolver::RetractAtom(AtomId atom) {
  if (atom >= gp_.atom_count()) return false;
  std::optional<RuleId> unit = gp_.FindUnitRule(atom);
  if (!unit.has_value() || !RuleEnabled(*unit)) return false;
  disabled_[*unit] = 1;
  MarkDirty(atom);
  return true;
}

bool IncrementalSolver::HasFact(AtomId atom) const {
  std::optional<RuleId> unit = gp_.FindUnitRule(atom);
  return unit.has_value() && RuleEnabled(*unit);
}

RuleId IncrementalSolver::AssertRule(GroundRule rule, bool* changed) {
  if (rule.pos.empty() && rule.neg.empty()) {
    // Unit rules are fact deltas: same path, same invariants (no edges).
    AtomId head = rule.head;
    bool did = AssertAtom(head);
    if (changed != nullptr) *changed = did;
    return *gp_.FindUnitRule(head);
  }
  size_t rules_before = gp_.rule_count();
  RuleId id = gp_.AddRule(std::move(rule));
  bool is_new = gp_.rule_count() != rules_before;
  if (!is_new && RuleEnabled(id)) {
    if (changed != nullptr) *changed = false;
    return id;  // the identical rule is already enabled
  }
  disabled_.resize(gp_.rule_count(), 0);
  disabled_[id] = 0;  // re-enable when it was a retracted duplicate
  ++stats_.rule_deltas;
  MarkDirty(gp_.rules()[id].head);
  if (cond_ != nullptr) {
    EnsureGraph();  // cover atoms interned since the last repair
    ApplyRepair(cond_->InsertRule(gp_, &disabled_, id, ConfigureCancel()));
  }
  if (changed != nullptr) *changed = true;
  return id;
}

RuleId IncrementalSolver::AssertRule(const Term* head,
                                     std::span<const Term* const> pos,
                                     std::span<const Term* const> neg,
                                     bool* changed) {
  GroundRule rule;
  rule.head = gp_.InternAtom(head);
  rule.pos.reserve(pos.size());
  rule.neg.reserve(neg.size());
  for (const Term* t : pos) rule.pos.push_back(gp_.InternAtom(t));
  for (const Term* t : neg) rule.neg.push_back(gp_.InternAtom(t));
  return AssertRule(std::move(rule), changed);
}

bool IncrementalSolver::RetractRule(RuleId r) {
  if (r >= gp_.rule_count() || !RuleEnabled(r)) return false;
  const GroundRule& rule = gp_.rules()[r];
  if (rule.pos.empty() && rule.neg.empty()) return RetractAtom(rule.head);
  disabled_.resize(gp_.rule_count(), 0);
  disabled_[r] = 1;
  ++stats_.rule_deltas;
  MarkDirty(rule.head);
  if (cond_ != nullptr) {
    EnsureGraph();
    ApplyRepair(cond_->RemoveRule(gp_, &disabled_, r, ConfigureCancel()));
  }
  return true;
}

void IncrementalSolver::MarkDirty(AtomId atom) {
  ++stats_.deltas;
  dirty_.push_back(atom);
}

void IncrementalSolver::ApplyRepair(const CondensationRepair& rep) {
  const AtomDependencyGraph& g = cond_->graph();
  // Translate the query memo through the repair (id shifts, window drop,
  // dirty invalidations) — but only once queries made it track anything.
  if (memo_.size() != 0) memo_.ApplyRepair(rep, g.component_count());
  if (rep.recondensed && tele_.window_components != nullptr) {
    tele_.window_components->Record(rep.new_window_size);
    if (rep.pk_region_components != 0) {
      tele_.interior_pk_region_components->Record(rep.pk_region_components);
    }
  }
  if (rep.recondensed && !warm_.empty()) {
    // A recondensation renumbered/re-grouped the window: warm interior
    // state is keyed by representative atom, so entries whose key no
    // longer leads its component (or whose component changed size) are
    // provably stale — discard them now rather than leaking them. Same-
    // key same-size survivors are re-checked atom-for-atom by
    // `BindingValid` on their next touch.
    std::lock_guard<std::mutex> lock(warm_mu_);
    std::erase_if(warm_, [&](const auto& kv) {
      std::span<const AtomId> atoms = g.Atoms(g.ComponentOf(kv.first));
      bool keep = !atoms.empty() && atoms[0] == kv.first &&
                  atoms.size() == kv.second->atom_count();
      if (!keep) ++diag_.warm_cold_fallbacks;
      return !keep;
    });
  }
  // Components are marked through a stable representative atom: later
  // deltas may renumber components again before `Model()` resolves them.
  for (uint32_t c : rep.dirty) {
    std::span<const AtomId> atoms = g.Atoms(c);
    if (!atoms.empty()) dirty_.push_back(atoms[0]);
  }
  if (dag_ == nullptr) return;
  if (!rep.recondensed) {
    // Edge-only delta — the streaming common case. Queue the edges; one
    // merge pass patches the DAG when the parallel path next reads it,
    // so a burst of N order-respecting deltas pays one splice, not N.
    pending_dag_edges_.insert(pending_dag_edges_.end(),
                              rep.new_edges.begin(), rep.new_edges.end());
    return;
  }
  // The repair renumbered component ids: queued edges (in pre-repair
  // ids) must land before the remap.
  FlushPendingDagEdges();
  if (rep.split()) {
    // A split fans one old id out to several; remapping rows is no longer
    // well defined, so the scheduling DAG rebuilds lazily.
    dag_.reset();
  } else {
    dag_->Splice(gp_, g, &disabled_, rep);
  }
}

void IncrementalSolver::FlushPendingDagEdges() {
  if (pending_dag_edges_.empty()) return;
  if (dag_ != nullptr) {
    CondensationRepair edges_only;
    edges_only.new_edges = std::move(pending_dag_edges_);
    dag_->Splice(gp_, cond_->graph(), &disabled_, edges_only);
  }
  pending_dag_edges_.clear();
}

void IncrementalSolver::EnsureGraph() {
  if (cond_ == nullptr) {
    cond_ = std::make_unique<DynamicCondensation>(gp_, &disabled_);
    dag_.reset();
    return;
  }
  if (cond_->graph().atom_count() == gp_.atom_count()) return;
  // Atoms interned since the last repair become trailing singleton
  // components — no rebuild, and the scheduling DAG just grows nodes.
  // They enter the tape undefined, so their components must solve once
  // (to false, until some delta derives them): mark them dirty.
  ++stats_.graph_rebuilds;
  for (AtomId a = static_cast<AtomId>(cond_->graph().atom_count());
       a < gp_.atom_count(); ++a) {
    dirty_.push_back(a);
  }
  cond_->AddAtoms(gp_.atom_count());
  if (dag_ != nullptr) {
    dag_->AppendIsolated(cond_->graph().component_count());
  }
}

void IncrementalSolver::EnsureParallelRuntime() {
  if (dag_ == nullptr) {
    dag_ = std::make_unique<solver::ComponentDag>(gp_, cond_->graph(),
                                                  &disabled_);
    pending_dag_edges_.clear();  // a fresh build already covers them
  } else {
    FlushPendingDagEdges();
  }
  if (pool_ == nullptr) {
    pool_ = std::make_unique<WorkStealingPool>(threads_);
  }
}

void IncrementalSolver::SyncMirror(uint32_t comp) {
  // SyncMirror runs for exactly the components a pass (re)finalized, so it
  // doubles as the resolve log's append point (always on the owner thread:
  // parallel passes call it from the post-barrier merge loop).
  const bool log = resolve_log_enabled_ && !resolve_log_.all_atoms;
  for (AtomId a : cond_->graph().Atoms(comp)) {
    if (log) {
      resolve_log_.atoms.push_back(a);
    }
    tape_.CopyAtomTo(a, &model_.model);
    if (opts_.compute_levels) {
      model_.true_stage[a] = stape_.true_stage[a];
      model_.false_stage[a] = stape_.false_stage[a];
    }
  }
}

const WfsModel& IncrementalSolver::Model() {
  solver::StageTape* stages = opts_.compute_levels ? &stape_ : nullptr;
  if (!solved_) {
    GSLS_TRACE_SPAN("solve.full", gp_.atom_count());
    const uint64_t t0 = opts_.telemetry != nullptr ? obs::NowNs() : 0;
    EnsureGraph();
    CancelCtx* cancel = BeginCancelPass();
    const uint64_t rounds_before = diag_.alternating_rounds;
    const uint32_t ncomp = cond_->graph().component_count();
    // Grown before the pass so per-component validity marks are in range
    // even when the pass aborts partway.
    memo_.Grow(ncomp);
    bool aborted = false;
    if (threads_ > 1) {
      EnsureParallelRuntime();
      std::vector<uint8_t> solved_comps;
      solver::ParallelSolveAllComponentsInto(
          gp_, cond_->graph(), *dag_, &disabled_, pool_.get(), &tape_, stages,
          &diag_, cancel, cancel != nullptr ? &solved_comps : nullptr);
      aborted = cancel != nullptr && cancel->aborted();
      if (aborted) {
        // Abort bookkeeping: finalized components are exact (memo-valid);
        // the rest kept their all-undefined reset state and queue — by
        // stable representative atom — for the next pass to resume.
        for (uint32_t c = 0; c < ncomp; ++c) {
          if (solved_comps[c] != 0) {
            memo_.MarkValid(c);
          } else {
            memo_.Invalidate(c);
            stale_reps_.push_back(cond_->graph().Atoms(c)[0]);
          }
        }
      }
    } else {
      uint32_t first_unsolved = solver::SolveAllComponentsInto(
          gp_, cond_->graph(), &disabled_, &tape_, stages, &diag_, cancel);
      aborted = first_unsolved != ncomp;
      if (aborted) {
        // Sequential order makes the split a prefix: [0, first_unsolved)
        // finalized, everything at or above stayed all-undefined.
        for (uint32_t c = 0; c < ncomp; ++c) {
          if (c < first_unsolved) {
            memo_.MarkValid(c);
          } else {
            memo_.Invalidate(c);
            stale_reps_.push_back(cond_->graph().Atoms(c)[0]);
          }
        }
      }
    }
    model_.model = tape_.ToInterpretation();
    if (opts_.compute_levels) {
      model_.true_stage = stape_.true_stage;
      model_.false_stage = stape_.false_stage;
      model_.has_levels = true;
    }
    model_.iterations =
        static_cast<uint32_t>(diag_.alternating_rounds - rounds_before);
    model_.outcome =
        cancel != nullptr ? cancel->outcome() : SolveOutcome::kCompleted;
    // `solved_` even on an abort: the finalized components carry exact
    // values (anytime semantics), and the next `Model()` resumes through
    // the incremental branch — exactly the queued remainder, never a
    // second from-scratch pass.
    solved_ = true;
    dirty_.clear();
    // The full branch writes the tape wholesale (no per-component
    // SyncMirror), so the resolve log can only be conservative here.
    if (resolve_log_enabled_) {
      resolve_log_.all_atoms = true;
    }
    if (!aborted) {
      // Everything just finalized: the query memo serves every component.
      memo_.MarkAllValid();
      stale_reps_.clear();
    }
    ++stats_.full_solves;
    NoteOutcome(cancel, ncomp - (aborted ? stale_reps_.size() : 0));
    if (opts_.telemetry != nullptr) {
      tele_.full_latency_us->Record((obs::NowNs() - t0) / 1000);
      PublishTelemetry();
    }
  } else if (!dirty_.empty() || !stale_reps_.empty()) {
    GSLS_TRACE_SPAN("solve.delta", stats_.incremental_solves);
    const uint64_t t0 = opts_.telemetry != nullptr ? obs::NowNs() : 0;
    EnsureGraph();
    CancelCtx* cancel = BeginCancelPass();
    // Components left stale by query passes (invalidated out-of-cone
    // dependents of re-solved changes) join the delta-dirty atoms: both
    // are "re-solve me, my tape values may be wrong" markers, and the
    // up-cone passes treat them identically.
    dirty_.insert(dirty_.end(), stale_reps_.begin(), stale_reps_.end());
    stale_reps_.clear();
    memo_.Grow(cond_->graph().component_count());
    const uint64_t resolved_before = stats_.components_resolved;
    const uint64_t warm_hits_before = diag_.warm_hits;
    const uint64_t seeded_flood_before = diag_.seeded_flood_sizes.sum;
    // The parallel cone schedules every component *reachable* from the
    // deltas (pruned re-solves, but still a release per cone member),
    // while the heap touches only components whose inputs actually
    // moved. A single-component delta — the latency-critical streaming
    // case — therefore always takes the heap; batched multi-component
    // deltas have the width the pool can use.
    bool multi_component = false;
    uint32_t first = cond_->graph().ComponentOf(dirty_.front());
    for (AtomId a : dirty_) {
      if (cond_->graph().ComponentOf(a) != first) {
        multi_component = true;
        break;
      }
    }
    if (threads_ > 1 && multi_component) {
      ResolveUpConeParallel(cancel);
    } else {
      ResolveUpCone(cancel);
    }
    const bool aborted = cancel != nullptr && cancel->aborted();
    if (!aborted) {
      // The pass re-solved every pending component and chased every
      // actual change; the tape is the full model again, so the memo is
      // too. (On an abort the resolve pass already marked exactly the
      // finalized components valid and queued the rest.)
      memo_.MarkAllValid();
    }
    model_.outcome =
        cancel != nullptr ? cancel->outcome() : SolveOutcome::kCompleted;
    NoteOutcome(cancel, stats_.components_resolved - resolved_before);
    if (opts_.telemetry != nullptr) {
      tele_.delta_latency_us->Record((obs::NowNs() - t0) / 1000);
      if (diag_.warm_hits != warm_hits_before) {
        // What this pass's warm re-solves actually flooded, summed over
        // the pass — the per-delta "how much of the SCC did the seed
        // touch" signal (per-resolve sizes live in the diagnostics
        // histogram; per-pass is the delta-latency-aligned view).
        tele_.interior_seeded_flood_atoms->Record(
            diag_.seeded_flood_sizes.sum - seeded_flood_before);
      }
      PublishTelemetry();
    }
  }
  return model_;
}

void IncrementalSolver::PublishTelemetry() {
  if (opts_.telemetry == nullptr) return;
  // Interned-pointer stores only (see TelemetryChannels): this runs after
  // every delta, so it must not touch the registry's mutexed name maps.
  diag_.PublishTo(tele_.diag);
  tele_.program_atoms->Set(static_cast<int64_t>(gp_.atom_count()));
  tele_.program_rules->Set(static_cast<int64_t>(gp_.rule_count()));
  tele_.deltas->Set(static_cast<int64_t>(stats_.deltas));
  tele_.full_solves->Set(static_cast<int64_t>(stats_.full_solves));
  tele_.incremental_solves->Set(
      static_cast<int64_t>(stats_.incremental_solves));
  tele_.components_resolved->Set(
      static_cast<int64_t>(stats_.components_resolved));
  tele_.components_reused->Set(
      static_cast<int64_t>(stats_.components_reused));
  tele_.cone_cutoffs->Set(static_cast<int64_t>(stats_.cone_cutoffs));
  tele_.queries->Set(static_cast<int64_t>(stats_.queries));
  tele_.query_fastpaths->Set(static_cast<int64_t>(stats_.query_fastpaths));
  tele_.interior_warm_hits->Set(static_cast<int64_t>(diag_.warm_hits));
  tele_.interior_cold_fallbacks->Set(
      static_cast<int64_t>(diag_.warm_cold_fallbacks));
  const solver::ComponentMemo::Stats& ms = memo_.stats();
  tele_.memo_hits->Set(static_cast<int64_t>(ms.hits));
  tele_.memo_misses->Set(static_cast<int64_t>(ms.misses));
  tele_.memo_invalidations->Set(static_cast<int64_t>(ms.invalidations));
  if (cond_ != nullptr) {
    tele_.graph_components->Set(
        static_cast<int64_t>(cond_->graph().component_count()));
    const DynamicCondensation::Stats& cs = cond_->stats();
    tele_.cond_inserts->Set(static_cast<int64_t>(cs.inserts));
    tele_.cond_removals->Set(static_cast<int64_t>(cs.removals));
    tele_.cond_windows->Set(static_cast<int64_t>(cs.windows));
    tele_.cond_window_atoms->Set(static_cast<int64_t>(cs.window_atoms));
    tele_.cond_window_us->Set(static_cast<int64_t>(cs.window_ns / 1000));
    tele_.cond_merges->Set(static_cast<int64_t>(cs.merges));
    tele_.cond_splits->Set(static_cast<int64_t>(cs.splits));
  }
}

void IncrementalSolver::DumpTelemetry(std::ostream& os) const {
  os << "incremental: " << stats_.ToString() << "\n";
  os << "diagnostics: " << diag_.ToString() << "\n";
  os << "query memo: " << memo_.stats().ToString() << "\n";
  if (cond_ != nullptr) {
    os << "condensation: " << cond_->stats().ToString() << "\n";
  }
  if (opts_.telemetry != nullptr) opts_.telemetry->metrics.WriteTable(os);
}

TruthValue IncrementalSolver::ValueOf(const Term* ground_atom) {
  std::optional<AtomId> id = gp_.FindAtom(ground_atom);
  if (!id.has_value()) return TruthValue::kFalse;
  return Model().model.Value(*id);
}

WfsModel IncrementalSolver::SolveFresh(SolverDiagnostics* diag) const {
  SolverDiagnostics scratch;
  if (diag == nullptr) diag = &scratch;
  *diag = SolverDiagnostics{};
  // Masked construction: the baseline condenses the enabled subprogram,
  // exactly what a non-incremental caller solving the mutated program
  // would build (and what the repaired condensation must agree with).
  AtomDependencyGraph graph(gp_, &disabled_);
  return solver::SolveAllComponents(gp_, graph, &disabled_,
                                    opts_.compute_levels, diag);
}

void IncrementalSolver::Mark(uint32_t comp) {
  if (marked_[comp] != 0) return;
  marked_[comp] = 1;
  heap_.push(comp);
}

bool IncrementalSolver::SolveEligibleComponent(uint32_t c,
                                               solver::StageTape* stages,
                                               SolverDiagnostics* diag,
                                               CancelCtx* cancel) {
  const AtomDependencyGraph& graph = cond_->graph();
  std::span<const AtomId> atoms = graph.Atoms(c);
  const AtomId rep = atoms[0];
  solver::WarmComponent* warm = nullptr;
  {
    std::lock_guard<std::mutex> lock(warm_mu_);
    auto it = warm_.find(rep);
    if (it != warm_.end()) warm = it->second.get();
  }
  if (warm != nullptr && warm->BindingValid(gp_, graph, c, tape_)) {
    // Warm path: the entry still describes this component and the tape
    // holds the quiescent model it recorded — patch, undo, seed, resume.
    if (warm->Resolve(gp_, graph, c, &disabled_, &tape_, stages, diag,
                      cancel)) {
      return true;
    }
    // Aborted mid-patch: the entry is inconsistent (partial undo/flood)
    // and must not be resumed against; the caller restores the tape
    // snapshot, so the next touch rebuilds from scratch.
    ++diag->warm_cold_fallbacks;
    std::lock_guard<std::mutex> lock(warm_mu_);
    warm_.erase(rep);
    return false;
  }
  if (warm != nullptr) {
    // Present but no longer provably consistent (recondensed membership,
    // new rules targeting the component, or an out-of-band solve moved
    // the tape under it): the audit contract says discard, never trust.
    ++diag->warm_cold_fallbacks;
    std::lock_guard<std::mutex> lock(warm_mu_);
    warm_.erase(rep);
  }
  auto fresh = std::make_unique<solver::WarmComponent>();
  for (AtomId a : atoms) tape_.SetUndefined(a);
  if (!fresh->SolveFromScratch(gp_, graph, c, &disabled_, &tape_, stages,
                               diag, cancel)) {
    return false;  // tape left all-undefined; entry dropped with `fresh`
  }
  std::lock_guard<std::mutex> lock(warm_mu_);
  warm_[rep] = std::move(fresh);
  return true;
}

/// The one copy of the per-component delta step shared by the sequential
/// heap, the parallel cone, and the query passes: snapshot old values,
/// re-solve (warm or cold), and invoke `flag(head_component)` for every
/// component owning a rule that mentions an atom whose value moved.
/// Returns whether anything moved.
///
/// With `stages` non-null the snapshot/compare covers the stage levels
/// too: a delta can advance a literal's stage without flipping any truth
/// value (e.g. asserting an already-derived atom as a fact pulls its stage
/// down to 1), and dependents' stages must follow — cutting the cone on
/// value equality alone would leave them stale.
///
/// A cancellation abort mid-solve restores the snapshot verbatim ("fully
/// old or fully new"), sets `*aborted`, runs no flagging, and returns
/// false — the caller queues the component for the resume pass.
template <typename FlagFn>
bool IncrementalSolver::ResolveComponentDelta(
    uint32_t c, solver::StageTape* stages, std::vector<TruthValue>* old_vals,
    std::vector<uint32_t>* old_stages, SolverDiagnostics* diag,
    CancelCtx* cancel, bool* aborted, FlagFn&& flag) {
  const AtomDependencyGraph& graph = cond_->graph();
  std::span<const AtomId> atoms = graph.Atoms(c);
  old_vals->clear();
  for (AtomId a : atoms) old_vals->push_back(tape_.Value(a));
  if (stages != nullptr) {
    old_stages->clear();
    for (AtomId a : atoms) {
      old_stages->push_back(stages->true_stage[a]);
      old_stages->push_back(stages->false_stage[a]);
    }
  }
  // Warm/cold dispatch is by component *shape* only (`Eligible`), never
  // by schedule, so every thread count takes identical paths and the
  // models stay bit-identical. The warm path reads the pre-delta tape
  // (no reset here — the undo is the point); the cold paths reset first.
  bool ok;
  if (solver::WarmComponent::Eligible(graph, c, opts_.warm_min_atoms)) {
    ok = SolveEligibleComponent(c, stages, diag, cancel);
  } else {
    for (AtomId a : atoms) tape_.SetUndefined(a);
    ok = solver::SolveComponent(gp_, graph, c, &disabled_, &tape_, stages,
                                diag, cancel);
  }
  if (!ok) {
    // The failed solve left the atoms all-undefined (cold/scratch) or
    // partially written (warm patch); the snapshot puts the pre-delta
    // values back either way. Stages were never touched (reconstruction
    // runs only after values finalize), so they still hold the old
    // levels — consistent with the restored values.
    for (size_t i = 0; i < atoms.size(); ++i) {
      tape_.SetValue(atoms[i], (*old_vals)[i]);
    }
    *aborted = true;
    return false;
  }

  bool changed = false;
  for (size_t i = 0; i < atoms.size(); ++i) {
    bool moved = tape_.Value(atoms[i]) != (*old_vals)[i];
    if (!moved && stages != nullptr) {
      moved = stages->true_stage[atoms[i]] != (*old_stages)[2 * i] ||
              stages->false_stage[atoms[i]] != (*old_stages)[2 * i + 1];
    }
    if (!moved) continue;
    changed = true;
    // Retracted rules stay in the occurrence index; their heads do not
    // depend on this atom anymore, so skip them instead of over-marking.
    for (RuleId r : gp_.PositiveOccurrences(atoms[i])) {
      if (!RuleEnabledIn(&disabled_, r)) continue;
      uint32_t hc = graph.ComponentOf(gp_.rules()[r].head);
      if (hc != c) flag(hc);
    }
    for (RuleId r : gp_.NegativeOccurrences(atoms[i])) {
      if (!RuleEnabledIn(&disabled_, r)) continue;
      uint32_t hc = graph.ComponentOf(gp_.rules()[r].head);
      if (hc != c) flag(hc);
    }
  }
  return changed;
}

void IncrementalSolver::ResolveUpCone(CancelCtx* cancel) {
  ++stats_.incremental_solves;
  const uint64_t rounds_before = diag_.alternating_rounds;
  const AtomDependencyGraph& graph = cond_->graph();
  const uint32_t ncomp = graph.component_count();
  // `Assert` of new atoms grew the program (and forced a graph rebuild):
  // the carried-over model keeps its values — atom ids are stable — and
  // the new atoms start undefined.
  model_.model.Resize(gp_.atom_count());
  tape_.Resize(gp_.atom_count());
  solver::StageTape* stages = opts_.compute_levels ? &stape_ : nullptr;
  if (stages != nullptr) {
    stape_.Resize(gp_.atom_count());
    model_.true_stage.resize(gp_.atom_count(), 0);
    model_.false_stage.resize(gp_.atom_count(), 0);
  }
  // Zeros between passes (every mark is cleared by its pop); only a graph
  // rebuild changes the component count.
  if (marked_.size() != ncomp) marked_.assign(ncomp, 0);

  for (AtomId a : dirty_) Mark(graph.ComponentOf(a));
  dirty_.clear();
  const uint64_t initial_marks = heap_.size();

  uint64_t resolved = 0;
  uint64_t resolved_atoms = 0;
  std::vector<TruthValue> old_vals;
  std::vector<uint32_t> old_stages;
  while (!heap_.empty()) {
    uint32_t c = heap_.top();
    heap_.pop();
    marked_[c] = 0;

    // Change-pruned cone: dependents recompute only when some input of
    // theirs actually moved. Dependent components always have a larger id
    // (dependency order), so the heap never revisits a popped component.
    bool aborted = false;
    bool changed =
        ResolveComponentDelta(c, stages, &old_vals, &old_stages, &diag_,
                              cancel, &aborted,
                              [&](uint32_t hc) { Mark(hc); });
    if (aborted) {
      // `c` was rolled back to its snapshot; it and every still-marked
      // component queue (by stable representative atom) for the resume
      // pass. Components already popped this pass are final and keep
      // their per-component validity marks.
      memo_.Invalidate(c);
      stale_reps_.push_back(graph.Atoms(c)[0]);
      while (!heap_.empty()) {
        uint32_t d = heap_.top();
        heap_.pop();
        marked_[d] = 0;
        memo_.Invalidate(d);
        stale_reps_.push_back(graph.Atoms(d)[0]);
      }
      break;
    }
    ++resolved;
    resolved_atoms += graph.Atoms(c).size();
    if (cancel != nullptr) memo_.MarkValid(c);
    SyncMirror(c);
    if (!changed) ++stats_.cone_cutoffs;
  }
  stats_.components_resolved += resolved;
  stats_.components_reused += ncomp - resolved;
  // Like a fresh solve, `iterations` reports this pass's alternating
  // rounds, not a lifetime total (`diagnostics()` keeps the cumulative).
  model_.iterations =
      static_cast<uint32_t>(diag_.alternating_rounds - rounds_before);
  if (opts_.telemetry != nullptr) {
    tele_.dirty_components->Record(initial_marks);
    // The heap visits exactly the components it re-solves, so the touched
    // cone and the resolved set coincide on this path.
    tele_.cone_components->Record(resolved);
    tele_.resolved_components->Record(resolved);
    tele_.resolved_atoms->Record(resolved_atoms);
  }
}

namespace {

/// One worker's accumulation for a parallel up-cone pass, cache-line
/// padded: private diagnostics, the components it re-solved (for the
/// mirror sync after the barrier), and scratch for old values.
struct alignas(64) ConeWorker {
  SolverDiagnostics diag;
  std::vector<uint32_t> resolved;
  uint64_t cutoffs = 0;
  std::vector<TruthValue> old_vals;
  std::vector<uint32_t> old_stages;
  /// Query passes only: out-of-cone components this worker's re-solves
  /// flagged as changed-input dependents; the memo writes are deferred to
  /// the barrier (the memo is not thread-safe).
  std::vector<uint32_t> flagged;
};

}  // namespace

void IncrementalSolver::ResolveUpConeParallel(CancelCtx* cancel) {
  ++stats_.incremental_solves;
  const uint64_t rounds_before = diag_.alternating_rounds;
  EnsureParallelRuntime();
  const AtomDependencyGraph& graph = cond_->graph();
  const uint32_t ncomp = graph.component_count();
  model_.model.Resize(gp_.atom_count());
  tape_.Resize(gp_.atom_count());
  solver::StageTape* stages = opts_.compute_levels ? &stape_ : nullptr;
  if (stages != nullptr) {
    stape_.Resize(gp_.atom_count());
    model_.true_stage.resize(gp_.atom_count(), 0);
    model_.false_stage.resize(gp_.atom_count(), 0);
  }
  gp_.EnsureOccurrenceIndex();  // workers must not race the lazy rebuild

  // The potentially-affected cone: everything reachable from the dirty
  // components in the condensation DAG, gathered breadth-first. The
  // change pruning of the sequential path survives as a per-component
  // flag: a released component re-solves only if it is dirty or some
  // predecessor's atoms actually changed; otherwise it just releases its
  // successors in turn. The per-component scratch persists across deltas
  // (zeros between passes, cleared cone-entry-wise below); only a graph
  // rebuild re-sizes it.
  if (in_cone_.size() != ncomp) {
    in_cone_.assign(ncomp, 0);
    cone_dirty_.assign(ncomp, 0);
    cone_pos_.assign(ncomp, 0);
  }
  std::vector<uint32_t>& cone = cone_;
  std::vector<uint8_t>& in_cone = in_cone_;
  std::vector<uint8_t>& is_dirty = cone_dirty_;
  std::vector<uint32_t>& cone_pos = cone_pos_;
  cone.clear();
  for (AtomId a : dirty_) {
    uint32_t c = graph.ComponentOf(a);
    is_dirty[c] = 1;
    if (!in_cone[c]) {
      in_cone[c] = 1;
      cone.push_back(c);
    }
  }
  dirty_.clear();
  const uint64_t initial_dirty = cone.size();
  for (size_t i = 0; i < cone.size(); ++i) {
    for (uint32_t s : dag_->Successors(cone[i])) {
      if (!in_cone[s]) {
        in_cone[s] = 1;
        cone.push_back(s);
      }
    }
  }

  // Ready-release counters restricted to the cone: a component waits only
  // for its in-cone predecessors (everything else is already final).
  for (uint32_t i = 0; i < cone.size(); ++i) cone_pos[cone[i]] = i;
  std::unique_ptr<std::atomic<uint32_t>[]> pending(
      new std::atomic<uint32_t>[cone.size()]);
  std::unique_ptr<std::atomic<uint8_t>[]> inputs_changed(
      new std::atomic<uint8_t>[cone.size()]);
  for (size_t i = 0; i < cone.size(); ++i) {
    pending[i].store(0, std::memory_order_relaxed);
    inputs_changed[i].store(0, std::memory_order_relaxed);
  }
  for (uint32_t c : cone) {
    for (uint32_t s : dag_->Successors(c)) {
      if (in_cone[s]) {
        pending[cone_pos[s]].fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  std::vector<uint32_t> seeds;
  for (uint32_t i = 0; i < cone.size(); ++i) {
    if (pending[i].load(std::memory_order_relaxed) == 0) {
      seeds.push_back(cone[i]);
    }
  }

  std::vector<ConeWorker> workers(pool_->size());
  solver::RunReadyReleaseSchedule(
      pool_.get(), seeds, pending.get(),
      [&](unsigned worker, uint32_t c) {
        ConeWorker& w = workers[worker];
        bool needs =
            is_dirty[c] != 0 ||
            inputs_changed[cone_pos[c]].load(std::memory_order_relaxed);
        if (!needs) return true;  // nothing moved below: release onwards
        // Same per-atom marking as the sequential heap, sinking into the
        // per-component flags. Relaxed is enough: the flag is read only
        // after this component's acq_rel release edge in the shared
        // scheduler.
        bool aborted = false;
        bool changed = ResolveComponentDelta(
            c, stages, &w.old_vals, &w.old_stages, &w.diag, cancel, &aborted,
            [&](uint32_t hc) {
              inputs_changed[cone_pos[hc]].store(1,
                                                 std::memory_order_relaxed);
            });
        if (aborted) return false;  // rolled back; successors unreleased
        w.resolved.push_back(c);
        if (!changed) ++w.cutoffs;
        return true;
      },
      [&](uint32_t c) { return dag_->Successors(c); },
      [&](uint32_t s) {
        return in_cone[s] ? cone_pos[s] : solver::kNoScheduleSlot;
      });

  const bool aborted = cancel != nullptr && cancel->aborted();
  uint64_t resolved = 0;
  uint64_t resolved_atoms = 0;
  std::vector<uint8_t> resolved_in_pass;
  if (aborted) resolved_in_pass.assign(cone.size(), 0);
  for (ConeWorker& w : workers) {
    diag_.MergeFrom(w.diag);
    resolved += w.resolved.size();
    stats_.cone_cutoffs += w.cutoffs;
    for (uint32_t c : w.resolved) {
      resolved_atoms += graph.Atoms(c).size();
      if (cancel != nullptr) memo_.MarkValid(c);
      if (aborted) resolved_in_pass[cone_pos[c]] = 1;
      SyncMirror(c);
    }
  }
  if (aborted) {
    // The abort drained the schedule mid-cone, and a processed-but-
    // skipped (inputs unchanged) member is indistinguishable from one
    // never released — so every cone member that did not finalize this
    // pass is conservatively queued for the resume. Over-marking is
    // sound: a re-solve against unchanged inputs reproduces its values
    // and cuts the cone right there.
    for (uint32_t i = 0; i < cone.size(); ++i) {
      if (resolved_in_pass[i] != 0) continue;
      uint32_t c = cone[i];
      memo_.Invalidate(c);
      stale_reps_.push_back(graph.Atoms(c)[0]);
    }
  }
  stats_.components_resolved += resolved;
  stats_.components_reused += ncomp - resolved;
  model_.iterations =
      static_cast<uint32_t>(diag_.alternating_rounds - rounds_before);
  if (opts_.telemetry != nullptr) {
    tele_.dirty_components->Record(initial_dirty);
    tele_.cone_components->Record(cone.size());
    tele_.resolved_components->Record(resolved);
    tele_.resolved_atoms->Record(resolved_atoms);
  }

  // Clear only what this pass touched, keeping the scratch zeroed for the
  // next delta without a full sweep.
  for (uint32_t c : cone) {
    in_cone[c] = 0;
    is_dirty[c] = 0;
  }
}

void IncrementalSolver::FoldDirtyIntoPending() {
  if (dirty_.empty()) return;
  const AtomDependencyGraph& graph = cond_->graph();
  // Unconditional pushes: a component can be invalid without being
  // pending (never solved, or conservatively dropped by a recondensation
  // window), and `Invalidate`'s return value cannot tell those apart.
  // Duplicates are harmless — consumers dedupe by component.
  for (AtomId a : dirty_) {
    memo_.Invalidate(graph.ComponentOf(a));
    stale_reps_.push_back(a);
  }
  dirty_.clear();
}

void IncrementalSolver::SolveDownCone(AtomId atom, QueryAnswer* out,
                                      CancelCtx* cancel) {
  const AtomDependencyGraph& graph = cond_->graph();
  const uint32_t ncomp = graph.component_count();
  solver::StageTape* stages = opts_.compute_levels ? &stape_ : nullptr;
  if (in_down_cone_.size() != ncomp) in_down_cone_.assign(ncomp, 0);
  std::vector<uint32_t>& cone = down_cone_;
  cone.clear();

  // The down-cone: every component the query's truth can depend on,
  // gathered by walking body atoms of enabled rules for each member atom
  // (the reverse of the scheduling DAG's edges). The walk cannot prune at
  // valid components: validity is conditional on everything below being
  // re-solved first (see solver/component_memo.h), so a stale component
  // deep under a valid one must still be found and re-run.
  const uint32_t qc = graph.ComponentOf(atom);
  cone.push_back(qc);
  in_down_cone_[qc] = 1;
  uint32_t stale = 0;
  for (size_t i = 0; i < cone.size(); ++i) {
    if (!memo_.Valid(cone[i])) ++stale;
    for (AtomId a : graph.Atoms(cone[i])) {
      for (RuleId r : gp_.RulesFor(a)) {
        if (!RuleEnabled(r)) continue;
        const GroundRule& rule = gp_.rules()[r];
        auto visit = [&](AtomId b) {
          uint32_t bc = graph.ComponentOf(b);
          if (in_down_cone_[bc] == 0) {
            in_down_cone_[bc] = 1;
            cone.push_back(bc);
          }
        };
        for (AtomId b : rule.pos) visit(b);
        for (AtomId b : rule.neg) visit(b);
      }
    }
  }
  // Dependency (ascending-id) order; ranks double as schedule slots.
  std::sort(cone.begin(), cone.end());
  for (uint32_t i = 0; i < cone.size(); ++i) in_down_cone_[cone[i]] = i + 1;

  out->cone_components = static_cast<uint32_t>(cone.size());
  uint64_t cone_atoms = 0;
  for (uint32_t c : cone) cone_atoms += graph.Atoms(c).size();
  out->cone_atoms = cone_atoms;

  if (stale == 0) {
    // Cone-local fast path: every relevant component is memoized, the
    // answer is already on the tape (stale components elsewhere in the
    // program cannot affect it).
    memo_.CountHits(cone.size());
    out->memo_hits = static_cast<uint32_t>(cone.size());
    stats_.components_reused += cone.size();
    for (uint32_t c : cone) in_down_cone_[c] = 0;
    return;
  }

  uint64_t resolved = 0;
  uint64_t resolved_atoms = 0;
  uint64_t cutoffs = 0;
  // Per cone rank: finalized this pass. Only the abort path reads it (the
  // conservative re-queue below), so it is built only under cancellation.
  std::vector<uint8_t> resolved_in_pass;
  if (cancel != nullptr) resolved_in_pass.assign(cone.size(), 0);
  std::vector<uint32_t> flagged;  ///< out-of-cone comps, deduped per pass
  auto flag_outside = [&](uint32_t hc) {
    if (std::find(flagged.begin(), flagged.end(), hc) != flagged.end()) {
      return;
    }
    flagged.push_back(hc);
    memo_.Invalidate(hc);
    // Pending marker by stable representative atom, like ApplyRepair:
    // component ids may shift again before anything consumes this.
    stale_reps_.push_back(graph.Atoms(hc)[0]);
  };

  if (threads_ > 1 && stale > 1) {
    // Cone-restricted parallel pass: the shared ready-release schedule
    // over the in-cone components, same discipline as the full parallel
    // solve and the up-cone delta pass. Memo reads happen before the
    // barrier (against the pre-pass state), memo writes after it — the
    // in-pass staleness signal is the `inputs_changed` atomics, exactly
    // like the up-cone's change pruning.
    EnsureParallelRuntime();
    gp_.EnsureOccurrenceIndex();  // workers must not race the lazy rebuild
    std::unique_ptr<std::atomic<uint32_t>[]> pending(
        new std::atomic<uint32_t>[cone.size()]);
    std::unique_ptr<std::atomic<uint8_t>[]> inputs_changed(
        new std::atomic<uint8_t>[cone.size()]);
    for (size_t i = 0; i < cone.size(); ++i) {
      pending[i].store(0, std::memory_order_relaxed);
      inputs_changed[i].store(0, std::memory_order_relaxed);
    }
    for (uint32_t c : cone) {
      for (uint32_t s : dag_->Successors(c)) {
        if (in_down_cone_[s] != 0) {
          pending[in_down_cone_[s] - 1].fetch_add(1,
                                                  std::memory_order_relaxed);
        }
      }
    }
    std::vector<uint32_t> seeds;
    for (uint32_t i = 0; i < cone.size(); ++i) {
      if (pending[i].load(std::memory_order_relaxed) == 0) {
        seeds.push_back(cone[i]);
      }
    }
    std::vector<ConeWorker> workers(pool_->size());
    solver::RunReadyReleaseSchedule(
        pool_.get(), seeds, pending.get(),
        [&](unsigned worker, uint32_t c) {
          ConeWorker& w = workers[worker];
          bool needs = !memo_.Valid(c) ||
                       inputs_changed[in_down_cone_[c] - 1].load(
                           std::memory_order_relaxed) != 0;
          if (!needs) return true;  // memo hit: just release successors
          bool aborted = false;
          bool changed = ResolveComponentDelta(
              c, stages, &w.old_vals, &w.old_stages, &w.diag, cancel,
              &aborted, [&](uint32_t hc) {
                uint32_t pos = in_down_cone_[hc];
                if (pos != 0) {
                  inputs_changed[pos - 1].store(1, std::memory_order_relaxed);
                } else {
                  w.flagged.push_back(hc);  // memo write deferred to barrier
                }
              });
          if (aborted) return false;  // rolled back; successors unreleased
          w.resolved.push_back(c);
          if (!changed) ++w.cutoffs;
          return true;
        },
        [&](uint32_t c) { return dag_->Successors(c); },
        [&](uint32_t s) {
          return in_down_cone_[s] != 0 ? in_down_cone_[s] - 1
                                       : solver::kNoScheduleSlot;
        });
    for (ConeWorker& w : workers) {
      diag_.MergeFrom(w.diag);
      cutoffs += w.cutoffs;
      resolved += w.resolved.size();
      for (uint32_t c : w.resolved) {
        resolved_atoms += graph.Atoms(c).size();
        memo_.MarkValid(c);
        if (!resolved_in_pass.empty()) {
          resolved_in_pass[in_down_cone_[c] - 1] = 1;
        }
        SyncMirror(c);
      }
      for (uint32_t hc : w.flagged) flag_outside(hc);
    }
    memo_.CountMisses(resolved);
    memo_.CountHits(cone.size() - resolved);
  } else {
    // Sequential pass: ascending component ids are dependency order, so
    // each re-solve reads final lower values — including the ones this
    // pass just produced.
    std::vector<uint8_t> inputs_changed(cone.size(), 0);
    std::vector<TruthValue> old_vals;
    std::vector<uint32_t> old_stages;
    for (uint32_t i = 0; i < cone.size(); ++i) {
      uint32_t c = cone[i];
      if (memo_.Valid(c) && inputs_changed[i] == 0) {
        memo_.CountHit();
        continue;
      }
      memo_.CountMiss();
      bool aborted = false;
      bool changed = ResolveComponentDelta(
          c, stages, &old_vals, &old_stages, &diag_, cancel, &aborted,
          [&](uint32_t hc) {
            uint32_t pos = in_down_cone_[hc];
            if (pos != 0) {
              inputs_changed[pos - 1] = 1;
            } else {
              flag_outside(hc);
            }
          });
      if (aborted) break;  // c rolled back and still memo-invalid
      ++resolved;
      resolved_atoms += graph.Atoms(c).size();
      memo_.MarkValid(c);
      if (!resolved_in_pass.empty()) resolved_in_pass[i] = 1;
      SyncMirror(c);
      if (!changed) ++cutoffs;
    }
  }

  if (cancel != nullptr && cancel->aborted()) {
    // Same conservative re-queue as the aborted up-cone: any cone member
    // not finalized this pass may have missed an inputs-changed signal
    // the abort swallowed, so its memo entry cannot be trusted. Members
    // finalized this pass (and their validity marks) stand.
    for (uint32_t i = 0; i < cone.size(); ++i) {
      if (resolved_in_pass[i] != 0) continue;
      uint32_t c = cone[i];
      memo_.Invalidate(c);
      stale_reps_.push_back(graph.Atoms(c)[0]);
    }
  }

  const uint64_t hits = cone.size() - resolved;
  stats_.components_resolved += resolved;
  stats_.components_reused += hits;
  stats_.cone_cutoffs += cutoffs;
  out->resolved_components = static_cast<uint32_t>(resolved);
  out->memo_hits = static_cast<uint32_t>(hits);

  for (uint32_t c : cone) in_down_cone_[c] = 0;
  // Everything this pass re-validated leaves the pending set; entries for
  // still-stale components (outside the cone) stay for the next query or
  // `Model()` to consume.
  std::erase_if(stale_reps_, [this, &graph](AtomId a) {
    return memo_.Valid(graph.ComponentOf(a));
  });
}

IncrementalSolver::QueryAnswer IncrementalSolver::QueryAtom(AtomId atom) {
  assert(atom < gp_.atom_count());
  GSLS_TRACE_SPAN("solve.query", stats_.queries);
  const uint64_t t0 = opts_.telemetry != nullptr ? obs::NowNs() : 0;
  ++stats_.queries;
  EnsureGraph();
  // Same carry-over resizing as the up-cone passes: new atoms (interned
  // by rule deltas since the last pass) enter undefined.
  model_.model.Resize(gp_.atom_count());
  tape_.Resize(gp_.atom_count());
  if (opts_.compute_levels) {
    stape_.Resize(gp_.atom_count());
    model_.true_stage.resize(gp_.atom_count(), 0);
    model_.false_stage.resize(gp_.atom_count(), 0);
  }
  memo_.Grow(cond_->graph().component_count());
  FoldDirtyIntoPending();

  QueryAnswer out;
  CancelCtx* cancel = BeginCancelPass();
  if (memo_.AllValid()) {
    // Global fast path: no component anywhere is stale, the tape holds
    // the full final model — answer without even walking the cone (and
    // without a checkpoint: a zero-work answer is exact even under a
    // cancelled token).
    ++stats_.query_fastpaths;
  } else {
    SolveDownCone(atom, &out, cancel);
  }
  out.outcome =
      cancel != nullptr ? cancel->outcome() : SolveOutcome::kCompleted;
  out.value = tape_.Value(atom);
  if (opts_.compute_levels) {
    out.true_stage = stape_.true_stage[atom];
    out.false_stage = stape_.false_stage[atom];
  }
  NoteOutcome(cancel, out.resolved_components);
  if (opts_.telemetry != nullptr) {
    tele_.query_latency_us->Record((obs::NowNs() - t0) / 1000);
    tele_.query_cone_components->Record(out.cone_components);
    tele_.query_cone_atoms->Record(out.cone_atoms);
    tele_.query_resolved_components->Record(out.resolved_components);
    tele_.query_memo_hits->Record(out.memo_hits);
    PublishTelemetry();
  }
  return out;
}

IncrementalSolver::QueryAnswer IncrementalSolver::QueryAtom(
    const Term* ground_atom) {
  std::optional<AtomId> id = gp_.FindAtom(ground_atom);
  if (!id.has_value()) {
    ++stats_.queries;
    ++stats_.query_fastpaths;
    QueryAnswer out;
    out.value = TruthValue::kFalse;
    if (opts_.compute_levels) out.false_stage = 1;
    return out;
  }
  return QueryAtom(*id);
}

void IncrementalSolver::InvalidateMemo() {
  memo_.InvalidateAll();
  // Warm interior state describes the tape the next pass will overwrite
  // from scratch; it would fail `BindingValid` afterwards anyway, so drop
  // it with the memo (this is the cache-drop lever, and the cold-cone
  // benches must measure truly cold solves).
  {
    std::lock_guard<std::mutex> lock(warm_mu_);
    warm_.clear();
  }
  // Everything is stale now; the finer-grained pending markers are
  // subsumed (the next `Model()` is a from-scratch solve, the next query
  // a cold cone), so drop them rather than re-solving piecemeal.
  stale_reps_.clear();
  dirty_.clear();
  solved_ = false;
}

IncrementalSolver::ResolveLog IncrementalSolver::TakeResolveLog() {
  ResolveLog out = std::move(resolve_log_);
  resolve_log_ = ResolveLog{};
  return out;
}

}  // namespace gsls
