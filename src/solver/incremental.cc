#include "solver/incremental.h"

#include <cassert>

#include "solver/component_eval.h"
#include "util/strings.h"

namespace gsls {

std::string IncrementalStats::ToString() const {
  return StrCat("deltas=", deltas, " full=", full_solves,
                " incremental=", incremental_solves,
                " rebuilds=", graph_rebuilds,
                " resolved=", components_resolved,
                " reused=", components_reused, " cutoffs=", cone_cutoffs);
}

IncrementalSolver::IncrementalSolver(GroundProgram gp) : gp_(std::move(gp)) {
  disabled_.assign(gp_.rule_count(), 0);
}

bool IncrementalSolver::Assert(const Term* fact) {
  return AssertAtom(gp_.InternAtom(fact));
}

bool IncrementalSolver::Retract(const Term* fact) {
  std::optional<AtomId> id = gp_.FindAtom(fact);
  if (!id.has_value()) return false;
  return RetractAtom(*id);
}

bool IncrementalSolver::AssertAtom(AtomId atom) {
  assert(atom < gp_.atom_count());
  std::optional<RuleId> unit = gp_.FindUnitRule(atom);
  if (unit.has_value()) {
    if (RuleEnabled(*unit)) return false;  // already an enabled fact
    disabled_[*unit] = 0;
  } else {
    gp_.AddRule(GroundRule{atom, {}, {}});
    disabled_.resize(gp_.rule_count(), 0);
  }
  MarkDirty(atom);
  return true;
}

bool IncrementalSolver::RetractAtom(AtomId atom) {
  if (atom >= gp_.atom_count()) return false;
  std::optional<RuleId> unit = gp_.FindUnitRule(atom);
  if (!unit.has_value() || !RuleEnabled(*unit)) return false;
  disabled_[*unit] = 1;
  MarkDirty(atom);
  return true;
}

bool IncrementalSolver::HasFact(AtomId atom) const {
  std::optional<RuleId> unit = gp_.FindUnitRule(atom);
  return unit.has_value() && RuleEnabled(*unit);
}

void IncrementalSolver::MarkDirty(AtomId atom) {
  ++stats_.deltas;
  dirty_.push_back(atom);
}

void IncrementalSolver::EnsureGraph() {
  if (graph_ != nullptr && graph_->atom_count() == gp_.atom_count()) return;
  if (graph_ != nullptr) ++stats_.graph_rebuilds;
  graph_ = std::make_unique<AtomDependencyGraph>(gp_);
}

const WfsModel& IncrementalSolver::Model() {
  if (!solved_) {
    EnsureGraph();
    model_ = solver::SolveAllComponents(gp_, *graph_, &disabled_, &diag_);
    solved_ = true;
    dirty_.clear();
    ++stats_.full_solves;
  } else if (!dirty_.empty()) {
    EnsureGraph();
    ResolveUpCone();
  }
  return model_;
}

TruthValue IncrementalSolver::ValueOf(const Term* ground_atom) {
  std::optional<AtomId> id = gp_.FindAtom(ground_atom);
  if (!id.has_value()) return TruthValue::kFalse;
  return Model().model.Value(*id);
}

WfsModel IncrementalSolver::SolveFresh(SolverDiagnostics* diag) const {
  SolverDiagnostics scratch;
  if (diag == nullptr) diag = &scratch;
  *diag = SolverDiagnostics{};
  AtomDependencyGraph graph(gp_);
  return solver::SolveAllComponents(gp_, graph, &disabled_, diag);
}

void IncrementalSolver::Mark(uint32_t comp) {
  if (marked_[comp] != 0) return;
  marked_[comp] = 1;
  heap_.push(comp);
}

void IncrementalSolver::ResolveUpCone() {
  ++stats_.incremental_solves;
  const uint64_t rounds_before = diag_.alternating_rounds;
  const uint32_t ncomp = graph_->component_count();
  // `Assert` of new atoms grew the program (and forced a graph rebuild):
  // the carried-over model keeps its values — atom ids are stable — and
  // the new atoms start undefined.
  model_.model.Resize(gp_.atom_count());
  // Zeros between passes (every mark is cleared by its pop); only a graph
  // rebuild changes the component count.
  if (marked_.size() != ncomp) marked_.assign(ncomp, 0);

  for (AtomId a : dirty_) Mark(graph_->ComponentOf(a));
  dirty_.clear();

  uint64_t resolved = 0;
  std::vector<TruthValue> old_vals;
  while (!heap_.empty()) {
    uint32_t c = heap_.top();
    heap_.pop();
    marked_[c] = 0;
    ++resolved;

    std::span<const AtomId> atoms = graph_->Atoms(c);
    old_vals.clear();
    for (AtomId a : atoms) old_vals.push_back(model_.model.Value(a));
    for (AtomId a : atoms) model_.model.SetUndefined(a);
    solver::SolveComponent(gp_, *graph_, c, &disabled_, &model_.model,
                           &diag_);

    // Change-pruned cone: dependents recompute only when some input of
    // theirs actually moved. Dependent components always have a larger id
    // (dependency order), so the heap never revisits a popped component.
    bool changed = false;
    for (size_t i = 0; i < atoms.size(); ++i) {
      if (model_.model.Value(atoms[i]) == old_vals[i]) continue;
      changed = true;
      for (RuleId r : gp_.PositiveOccurrences(atoms[i])) {
        uint32_t hc = graph_->ComponentOf(gp_.rules()[r].head);
        if (hc > c) Mark(hc);
      }
      for (RuleId r : gp_.NegativeOccurrences(atoms[i])) {
        uint32_t hc = graph_->ComponentOf(gp_.rules()[r].head);
        if (hc > c) Mark(hc);
      }
    }
    if (!changed) ++stats_.cone_cutoffs;
  }
  stats_.components_resolved += resolved;
  stats_.components_reused += ncomp - resolved;
  // Like a fresh solve, `iterations` reports this pass's alternating
  // rounds, not a lifetime total (`diagnostics()` keeps the cumulative).
  model_.iterations =
      static_cast<uint32_t>(diag_.alternating_rounds - rounds_before);
}

}  // namespace gsls
