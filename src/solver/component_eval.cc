#include "solver/component_eval.h"

#include <algorithm>
#include <cassert>

#include "obs/trace.h"
#include "solver/rule_table.h"
#include "solver/unfounded.h"

namespace gsls::solver {

TruthValue EvalNonRecursiveAtom(const GroundProgram& gp, AtomId atom,
                                const TruthTape& values,
                                const std::vector<uint8_t>* disabled,
                                uint64_t* rules_visited) {
  TruthValue out = TruthValue::kFalse;
  for (RuleId rid : gp.RulesFor(atom)) {
    if (disabled != nullptr && (*disabled)[rid]) continue;
    ++*rules_visited;
    const GroundRule& r = gp.rules()[rid];
    TruthValue body = TruthValue::kTrue;
    for (AtomId b : r.pos) {
      if (values.IsFalse(b)) {
        body = TruthValue::kFalse;
        break;
      }
      if (!values.IsTrue(b)) body = TruthValue::kUndefined;
    }
    if (body != TruthValue::kFalse) {
      for (AtomId b : r.neg) {
        if (values.IsTrue(b)) {
          body = TruthValue::kFalse;
          break;
        }
        if (!values.IsFalse(b)) body = TruthValue::kUndefined;
      }
    }
    if (body == TruthValue::kTrue) return TruthValue::kTrue;
    if (body == TruthValue::kUndefined) out = TruthValue::kUndefined;
  }
  return out;
}

namespace {

/// Drives one recursive component to its local well-founded fixpoint:
/// watched-counter truth propagation alternating with source-pointer
/// unfounded-set floods, writing decided atoms straight into the global
/// tape. Undecided atoms at quiescence are undefined.
class ComponentSolver {
 public:
  ComponentSolver(const GroundProgram& gp, const AtomDependencyGraph& graph,
                  uint32_t comp, const std::vector<uint8_t>* disabled,
                  TruthTape* values, SolverDiagnostics* diag,
                  CancelCtx* cancel)
      : table_(gp, graph, comp, *values, disabled, cancel), support_(&table_),
        values_(values), diag_(diag), cancel_(cancel) {}

  /// False iff a cancellation checkpoint aborted the pass mid-component;
  /// the tape then holds partial writes for this component (the caller
  /// restores them — see `SolveComponent`).
  bool Run() {
    // A trip during rule compilation left an empty table and an untouched
    // tape: abort exactly as at the component's entry checkpoint.
    if (table_.aborted()) return false;
    diag_->rules_visited += table_.rule_count();

    // Initial support closure on the pristine component; atoms with no
    // possible support (e.g. pure positive loops) fall out immediately.
    std::vector<LocalAtom> unfounded;
    if (!support_.InitSources(&unfounded, cancel_)) return false;
    diag_->unfounded_falsified += unfounded.size();
    for (LocalAtom a : unfounded) SetFalse(a);

    // Rules whose compiled body is empty are already satisfied.
    for (LocalRule r = 0; r < table_.rule_count(); ++r) {
      if (!table_.rule(r).dead && table_.rule(r).unsat == 0) {
        SetTrue(table_.rule(r).head);
      }
    }

    // Component-local alternating fixpoint: exhaust truth/false
    // propagation, then fold the next greatest-unfounded layer in, until
    // both are quiescent. The two phases trace as separate spans so a
    // timeline shows where a slow component spends its time.
    while (true) {
      {
        GSLS_TRACE_SPAN("component.lfp", table_.rule_count());
        if (!Propagate()) return false;
      }
      if (!support_.HasPending()) break;
      ++diag_->alternating_rounds;
      unfounded.clear();
      {
        GSLS_TRACE_SPAN("component.unfounded", support_.floods());
        if (!support_.CollectUnfounded(&unfounded, cancel_)) return false;
      }
      diag_->unfounded_falsified += unfounded.size();
      for (LocalAtom a : unfounded) SetFalse(a);
    }
    diag_->unfounded_floods += support_.floods();
    diag_->flood_sizes.MergeFrom(support_.flood_sizes());
    return true;
  }

 private:
  void SetTrue(LocalAtom a) {
    AtomId g = table_.GlobalAtom(a);
    if (values_->IsTrue(g)) return;
    // A rule fires only with a wholly true body, which never includes an
    // unfounded atom, so a fired head cannot have been falsified.
    assert(!values_->IsFalse(g));
    values_->SetTrue(g);
    support_.OnAtomTrue(a);
    true_queue_.push_back(a);
  }

  void SetFalse(LocalAtom a) {
    AtomId g = table_.GlobalAtom(a);
    if (values_->IsFalse(g)) return;
    assert(!values_->IsTrue(g));
    values_->SetFalse(g);
    false_queue_.push_back(a);
  }

  void Kill(LocalRule r) {
    CompiledRule& rule = table_.rule(r);
    if (rule.dead) return;
    rule.dead = true;
    support_.OnRuleDead(r);
  }

  bool Propagate() {
    // The lfp loop is the worst-case-quadratic interior of a dense SCC:
    // strided polling bounds abort latency to `kCancelStride` pops.
    StridedCheckpoint tick(cancel_);
    while (!true_queue_.empty() || !false_queue_.empty()) {
      if (tick.Tick()) return false;
      if (!true_queue_.empty()) {
        LocalAtom a = true_queue_.back();
        true_queue_.pop_back();
        for (LocalRule r : table_.PositiveOccurrences(a)) {
          CompiledRule& rule = table_.rule(r);
          if (!rule.dead && --rule.unsat == 0) SetTrue(rule.head);
        }
        // `not a` is now false: those rules are unusable for good.
        for (LocalRule r : table_.NegativeOccurrences(a)) Kill(r);
      } else {
        LocalAtom a = false_queue_.back();
        false_queue_.pop_back();
        for (LocalRule r : table_.PositiveOccurrences(a)) Kill(r);
        // `not a` is now satisfied.
        for (LocalRule r : table_.NegativeOccurrences(a)) {
          CompiledRule& rule = table_.rule(r);
          if (!rule.dead && --rule.unsat == 0) SetTrue(rule.head);
        }
      }
    }
    return true;
  }

  RuleTable table_;
  SourceTracker support_;
  TruthTape* values_;
  SolverDiagnostics* diag_;
  CancelCtx* cancel_;
  std::vector<LocalAtom> true_queue_;
  std::vector<LocalAtom> false_queue_;
};

}  // namespace

bool SolveRecursiveComponent(const GroundProgram& gp,
                             const AtomDependencyGraph& graph, uint32_t comp,
                             const std::vector<uint8_t>* disabled,
                             TruthTape* values, SolverDiagnostics* diag,
                             CancelCtx* cancel) {
  return ComponentSolver(gp, graph, comp, disabled, values, diag, cancel)
      .Run();
}

bool SolveComponent(const GroundProgram& gp, const AtomDependencyGraph& graph,
                    uint32_t comp, const std::vector<uint8_t>* disabled,
                    TruthTape* values, StageTape* stages,
                    SolverDiagnostics* diag, CancelCtx* cancel) {
  // The uniform component-boundary checkpoint: every schedule (sequential,
  // parallel, up-cone, down-cone) funnels through here, so "one checkpoint
  // per component processed" holds at any thread count — which is also
  // what makes the fault injector's checkpoint numbering deterministic.
  if (cancel != nullptr && cancel->Checkpoint()) return false;
  if (!graph.IsRecursive(comp)) {
    // Singleton without a self-loop: one 3-valued pass over its rules.
    AtomId a = graph.Atoms(comp)[0];
    switch (EvalNonRecursiveAtom(gp, a, *values, disabled,
                                 &diag->rules_visited)) {
      case TruthValue::kTrue: values->SetTrue(a); break;
      case TruthValue::kFalse: values->SetFalse(a); break;
      case TruthValue::kUndefined: break;
    }
  } else {
    GSLS_TRACE_SPAN("solve.component", comp);
    ++diag->recursive_components;
    if (graph.HasInternalNegation(comp)) ++diag->negation_components;
    if (!SolveRecursiveComponent(gp, graph, comp, disabled, values, diag,
                                 cancel)) {
      // Abort invariant ("fully old or fully new"): erase the partial
      // writes so the component reads exactly as on entry — all
      // undefined. Stages were not touched (reconstruction runs only
      // after values finalize).
      for (AtomId a : graph.Atoms(comp)) values->SetUndefined(a);
      return false;
    }
  }
  if (stages != nullptr) {
    ReconstructComponentStages(gp, graph, comp, disabled, *values, stages);
  }
  return true;
}

uint32_t SolveAllComponentsInto(const GroundProgram& gp,
                                const AtomDependencyGraph& graph,
                                const std::vector<uint8_t>* disabled,
                                TruthTape* values, StageTape* stages,
                                SolverDiagnostics* diag, CancelCtx* cancel) {
  values->Assign(gp.atom_count());
  if (stages != nullptr) stages->Assign(gp.atom_count());
  diag->component_count = graph.component_count();
  for (uint32_t c = 0; c < graph.component_count(); ++c) {
    diag->max_component_size =
        std::max(diag->max_component_size,
                 static_cast<uint32_t>(graph.Atoms(c).size()));
    if (!SolveComponent(gp, graph, c, disabled, values, stages, diag,
                        cancel)) {
      return c;
    }
  }
  return graph.component_count();
}

WfsModel SolveAllComponents(const GroundProgram& gp,
                            const AtomDependencyGraph& graph,
                            const std::vector<uint8_t>* disabled,
                            bool compute_levels, SolverDiagnostics* diag,
                            CancelCtx* cancel) {
  TruthTape values;
  StageTape stages;
  SolveAllComponentsInto(gp, graph, disabled, &values,
                         compute_levels ? &stages : nullptr, diag, cancel);
  WfsModel out;
  out.model = values.ToInterpretation();
  out.iterations = static_cast<uint32_t>(diag->alternating_rounds);
  if (cancel != nullptr) out.outcome = cancel->outcome();
  if (compute_levels) {
    out.true_stage = std::move(stages.true_stage);
    out.false_stage = std::move(stages.false_stage);
    out.has_levels = true;
  }
  return out;
}

}  // namespace gsls::solver
