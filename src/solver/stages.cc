#include "solver/stages.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <queue>
#include <span>
#include <vector>

#include "util/csr.h"

namespace gsls::solver {

namespace {

constexpr uint32_t kInf = UINT32_MAX;

/// Stage of a true atom all of whose body stages are final (non-recursive
/// singleton fast path): least over its firing rules of the rule's latest
/// body contribution. Returns kInf when no rule fires (impossible for a
/// true atom).
uint32_t TrueStageDirect(const GroundProgram& gp, AtomId a,
                         const std::vector<uint8_t>* disabled,
                         const TruthTape& values, const StageTape& st) {
  uint32_t out = kInf;
  for (RuleId rid : gp.RulesFor(a)) {
    if (disabled != nullptr && (*disabled)[rid]) continue;
    const GroundRule& r = gp.rules()[rid];
    uint32_t v = 1;
    bool fires = true;
    for (AtomId b : r.pos) {
      if (!values.IsTrue(b)) {
        fires = false;
        break;
      }
      v = std::max(v, st.true_stage[b]);
    }
    if (!fires) continue;
    for (AtomId b : r.neg) {
      if (!values.IsFalse(b)) {
        fires = false;
        break;
      }
      v = std::max(v, st.false_stage[b] + 1);
    }
    if (fires) out = std::min(out, v);
  }
  return out;
}

/// Stage of a false atom all of whose body stages are final: U_P needs a
/// witness of unusability for every rule, so the atom falls when its last
/// rule gains one — max over rules of the rule's earliest witness.
uint32_t FalseStageDirect(const GroundProgram& gp, AtomId a,
                          const std::vector<uint8_t>* disabled,
                          const TruthTape& values, const StageTape& st) {
  uint32_t out = 1;
  for (RuleId rid : gp.RulesFor(a)) {
    if (disabled != nullptr && (*disabled)[rid]) continue;
    const GroundRule& r = gp.rules()[rid];
    uint32_t w = kInf;
    for (AtomId b : r.pos) {
      if (values.IsFalse(b)) w = std::min(w, st.false_stage[b]);
    }
    for (AtomId b : r.neg) {
      if (values.IsTrue(b)) w = std::min(w, st.true_stage[b] + 1);
    }
    // Every rule of a false head has a witness; w is finite.
    assert(w != kInf);
    out = std::max(out, w);
  }
  return out;
}

/// Joint truth/falsity stage fixpoint of one recursive component.
///
/// Events are processed in increasing stage order off one min-heap:
///   - a *truth rule* becomes ready when its last symbolic (local) body
///     literal resolves; the first ready rule of a head, in stage order, is
///     the min over rules and fixes t(head) (label-setting — truth is
///     inductive, exactly like the T̃_P^ω closure it reconstructs);
///   - a *kill* retires a rule of a false head the moment a witness becomes
///     effective (a body literal's complement entered the model strictly
///     earlier, or a lower false pos atom reached its stage).
/// After the events of a stage α are drained, one counting unfounded-set
/// pass (the same discipline as the solver's source-pointer detector)
/// finds every still-unresolved false atom with no surviving support: they
/// fall *together* at α, which is the within-round coinduction of the
/// greatest unfounded set — positive loops whose last escape died at α are
/// falsified wholesale, not one at a time.
class ComponentStageSolver {
 public:
  ComponentStageSolver(const GroundProgram& gp,
                       const AtomDependencyGraph& graph, uint32_t comp,
                       const std::vector<uint8_t>* disabled,
                       const TruthTape& values, StageTape* stages)
      : gp_(gp), graph_(graph), disabled_(disabled), values_(values),
        st_(stages), atoms_(graph.Atoms(comp)) {}

  void Run() {
    const size_t m = atoms_.size();
    tloc_.assign(m, 0);
    floc_.assign(m, 0);
    Seed();
    BuildAdjacency(m);

    // The first V_P round needs no trigger: atoms with no rules and
    // unsupported positive loops fall at stage 1 even when no event fires.
    bool need_pass = true;
    uint32_t alpha = 1;
    while (true) {
      bool killed = false;
      while (!heap_.empty() && StageOf(heap_.top()) == alpha) {
        uint64_t ev = heap_.top();
        heap_.pop();
        uint32_t idx = static_cast<uint32_t>(ev) & ~kKillBit;
        if (static_cast<uint32_t>(ev) & kKillBit) {
          FalseRule& fr = false_rules_[idx];
          if (!fr.dead && floc_[fr.head] == 0) {
            fr.dead = true;
            killed = true;
          }
        } else {
          ResolveTrue(idx, alpha);
        }
      }
      if (need_pass || killed) FalsityPass(alpha);
      need_pass = false;
      if (heap_.empty()) break;
      alpha = StageOf(heap_.top());
    }

    for (size_t i = 0; i < m; ++i) {
      // Every decided atom resolved to a finite stage; undefined stay 0.
      assert(!values_.IsTrue(atoms_[i]) || tloc_[i] != 0);
      assert(!values_.IsFalse(atoms_[i]) || floc_[i] != 0);
      st_->true_stage[atoms_[i]] = tloc_[i];
      st_->false_stage[atoms_[i]] = floc_[i];
    }
  }

 private:
  /// A rule of a true head that fires in the final model: `cur` is the
  /// running max over resolved body contributions (lower components
  /// contribute their final stages up front), `pending` the count of local
  /// body literals still symbolic.
  struct TrueRule {
    uint32_t head;  ///< local index
    uint32_t cur;
    uint32_t pending;
  };
  /// A rule of a false head; dies when a witness of unusability becomes
  /// effective. `npos_local` counts its local false pos body atoms — the
  /// candidates for a same-stage (coinductive) witness, and the rule's
  /// pending count in each falsity pass.
  struct FalseRule {
    uint32_t head;  ///< local index
    uint32_t npos_local;
    bool dead;
  };

  /// Local-atom adjacency kinds, rows `atom * 4 + kind` of one flat CSR
  /// (`adj_`): what to notify when the atom's stage resolves.
  enum AdjKind : uint32_t {
    kPosFeed = 0,  ///< atom true  -> TrueRule with it in pos body
    kNegFeed = 1,  ///< atom false -> TrueRule with it in neg body
    kPosOcc = 2,   ///< atom false -> FalseRule with it in pos body
    kNegKill = 3,  ///< atom true  -> FalseRule with it in neg body
  };

  static constexpr uint32_t kKillBit = 0x80000000u;
  static uint32_t StageOf(uint64_t ev) {
    return static_cast<uint32_t>(ev >> 32);
  }
  void Push(uint32_t stage, uint32_t payload) {
    heap_.push((uint64_t{stage} << 32) | payload);
  }

  void AddEdge(uint32_t local_atom, AdjKind kind, uint32_t rule) {
    edges_.push_back((uint64_t{local_atom * 4 + kind} << 32) | rule);
  }

  /// Counting-sorts the seeded edges into the flat per-atom adjacency —
  /// the same two-pass zero-realloc build as every other solver index.
  void BuildAdjacency(size_t m) {
    adj_.Reset(4 * m);
    for (uint64_t e : edges_) adj_.CountAt(static_cast<uint32_t>(e >> 32));
    adj_.FinishCounting();
    for (uint64_t e : edges_) {
      adj_.Fill(static_cast<uint32_t>(e >> 32), static_cast<uint32_t>(e));
    }
    adj_.FinishFilling();
  }

  std::span<const uint32_t> Adj(uint32_t local_atom, AdjKind kind) const {
    return adj_.Row(local_atom * 4 + kind);
  }

  void Seed() {
    const uint32_t comp = graph_.ComponentOf(atoms_[0]);
    for (size_t i = 0; i < atoms_.size(); ++i) {
      AtomId g = atoms_[i];
      TruthValue v = values_.Value(g);
      if (v == TruthValue::kUndefined) continue;
      for (RuleId rid : gp_.RulesFor(g)) {
        if (disabled_ != nullptr && (*disabled_)[rid]) continue;
        const GroundRule& r = gp_.rules()[rid];
        if (v == TruthValue::kTrue) {
          SeedTrueRule(r, static_cast<uint32_t>(i), comp);
        } else {
          SeedFalseRule(r, static_cast<uint32_t>(i), comp);
        }
      }
      // A false atom with no enabled rules seeds nothing: it is unfounded
      // in the first round, and the stage-1 pass picks it up unsupported.
    }
  }

  void SeedTrueRule(const GroundRule& r, uint32_t head, uint32_t comp) {
    uint32_t cur = 1;
    uint32_t pending = 0;
    for (AtomId b : r.pos) {
      if (!values_.IsTrue(b)) return;  // rule never fires
    }
    for (AtomId b : r.neg) {
      if (!values_.IsFalse(b)) return;
    }
    uint32_t idx = static_cast<uint32_t>(true_rules_.size());
    for (AtomId b : r.pos) {
      if (graph_.ComponentOf(b) == comp) {
        ++pending;
        AddEdge(graph_.LocalIndexOf(b), kPosFeed, idx);
      } else {
        cur = std::max(cur, st_->true_stage[b]);
      }
    }
    for (AtomId b : r.neg) {
      if (graph_.ComponentOf(b) == comp) {
        ++pending;
        AddEdge(graph_.LocalIndexOf(b), kNegFeed, idx);
      } else {
        cur = std::max(cur, st_->false_stage[b] + 1);
      }
    }
    true_rules_.push_back(TrueRule{head, cur, pending});
    if (pending == 0) Push(cur, idx);
  }

  void SeedFalseRule(const GroundRule& r, uint32_t head, uint32_t comp) {
    uint32_t idx = static_cast<uint32_t>(false_rules_.size());
    uint32_t npos_local = 0;
    uint32_t static_kill = kInf;
    for (AtomId b : r.pos) {
      if (!values_.IsFalse(b)) continue;  // true/undefined: never a witness
      if (graph_.ComponentOf(b) == comp) {
        ++npos_local;
        AddEdge(graph_.LocalIndexOf(b), kPosOcc, idx);
      } else {
        static_kill = std::min(static_kill, st_->false_stage[b]);
      }
    }
    for (AtomId b : r.neg) {
      if (!values_.IsTrue(b)) continue;
      if (graph_.ComponentOf(b) == comp) {
        AddEdge(graph_.LocalIndexOf(b), kNegKill, idx);
      } else {
        static_kill = std::min(static_kill, st_->true_stage[b] + 1);
      }
    }
    false_rules_.push_back(FalseRule{head, npos_local, false});
    if (static_kill != kInf) Push(static_kill, idx | kKillBit);
  }

  void ResolveTrue(uint32_t rule, uint32_t stage) {
    uint32_t head = true_rules_[rule].head;
    if (tloc_[head] != 0) return;  // a cheaper rule already fixed the min
    tloc_[head] = stage;
    for (uint32_t tr : Adj(head, kPosFeed)) {
      TrueRule& t = true_rules_[tr];
      t.cur = std::max(t.cur, stage);
      if (--t.pending == 0) Push(t.cur, tr);
    }
    // `not head` is now refuted from the next round on: rules of false
    // heads leaning on it gain a witness at stage+1.
    for (uint32_t fk : Adj(head, kNegKill)) Push(stage + 1, fk | kKillBit);
  }

  /// One greatest-unfounded-set layer at stage `alpha`: counting supported
  /// check over the unresolved false atoms; whoever has no surviving rule
  /// whose local support chain stays inside the supported set falls now.
  void FalsityPass(uint32_t alpha) {
    const size_t m = atoms_.size();
    need_.assign(false_rules_.size(), 0);
    supported_.assign(m, 0);
    queue_.clear();

    auto support = [&](uint32_t a) {
      if (supported_[a] == 0) {
        supported_[a] = 1;
        queue_.push_back(a);
      }
    };
    for (uint32_t fr = 0; fr < false_rules_.size(); ++fr) {
      const FalseRule& f = false_rules_[fr];
      if (f.dead || floc_[f.head] != 0) continue;
      // Alive rules only reference unresolved local false atoms (a pos
      // witness resolving marks every rule over it dead), so the pending
      // count is just the seeded degree.
      need_[fr] = f.npos_local;
      if (need_[fr] == 0) support(f.head);
    }
    for (size_t qi = 0; qi < queue_.size(); ++qi) {
      uint32_t a = queue_[qi];
      for (uint32_t fr : Adj(a, kPosOcc)) {
        const FalseRule& f = false_rules_[fr];
        if (f.dead || floc_[f.head] != 0 || need_[fr] == 0) continue;
        if (--need_[fr] == 0) support(f.head);
      }
    }
    for (uint32_t i = 0; i < m; ++i) {
      if (floc_[i] == 0 && supported_[i] == 0 &&
          values_.IsFalse(atoms_[i])) {
        Fall(i, alpha);
      }
    }
  }

  void Fall(uint32_t atom, uint32_t alpha) {
    floc_[atom] = alpha;
    // A witness at `alpha` unusable-izes these rules for every later round
    // too; no event needed — deadness is checked before each pass.
    for (uint32_t fr : Adj(atom, kPosOcc)) false_rules_[fr].dead = true;
    // `not atom` holds from this round on: truth rules leaning on it
    // resolve that literal at alpha + 1.
    for (uint32_t tr : Adj(atom, kNegFeed)) {
      TrueRule& t = true_rules_[tr];
      t.cur = std::max(t.cur, alpha + 1);
      if (--t.pending == 0) Push(t.cur, tr);
    }
  }

  const GroundProgram& gp_;
  const AtomDependencyGraph& graph_;
  const std::vector<uint8_t>* disabled_;
  const TruthTape& values_;
  StageTape* st_;
  std::span<const AtomId> atoms_;

  std::vector<uint32_t> tloc_, floc_;  ///< resolved stages; 0 = pending
  std::vector<TrueRule> true_rules_;
  std::vector<FalseRule> false_rules_;
  std::vector<uint64_t> edges_;  ///< seeded (atom*4+kind, rule) pairs
  Csr<uint32_t> adj_;            ///< rows `atom*4+kind` (see AdjKind)
  std::priority_queue<uint64_t, std::vector<uint64_t>, std::greater<>> heap_;

  // Falsity-pass scratch, reused across stages.
  std::vector<uint32_t> need_;
  std::vector<uint8_t> supported_;
  std::vector<uint32_t> queue_;
};

}  // namespace

void ReconstructComponentStages(const GroundProgram& gp,
                                const AtomDependencyGraph& graph,
                                uint32_t comp,
                                const std::vector<uint8_t>* disabled,
                                const TruthTape& values, StageTape* stages) {
  std::span<const AtomId> atoms = graph.Atoms(comp);
  if (!graph.IsRecursive(comp)) {
    // Singleton without a self-loop: every body stage is final — one pass
    // over its rules, no machinery. The hot path on stratified chains.
    AtomId a = atoms[0];
    stages->true_stage[a] = 0;
    stages->false_stage[a] = 0;
    switch (values.Value(a)) {
      case TruthValue::kTrue: {
        uint32_t t = TrueStageDirect(gp, a, disabled, values, *stages);
        assert(t != kInf);
        stages->true_stage[a] = t;
        break;
      }
      case TruthValue::kFalse:
        stages->false_stage[a] = FalseStageDirect(gp, a, disabled, values,
                                                  *stages);
        break;
      case TruthValue::kUndefined: break;
    }
    return;
  }
  ComponentStageSolver(gp, graph, comp, disabled, values, stages).Run();
}

}  // namespace gsls::solver
