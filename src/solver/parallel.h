#ifndef GSLS_SOLVER_PARALLEL_H_
#define GSLS_SOLVER_PARALLEL_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "analysis/atom_dependency_graph.h"
#include "analysis/dynamic_condensation.h"
#include "ground/ground_program.h"
#include "solver/solver.h"
#include "solver/stages.h"
#include "solver/truth_tape.h"
#include "util/thread_pool.h"

namespace gsls::solver {

/// The condensation DAG in scheduling form: deduplicated successor lists
/// (flat CSR) plus per-component indegrees. Components at the same depth
/// share no edges and may run on different workers; a component is ready
/// the moment its last predecessor is final.
///
/// With a `disabled` mask the DAG covers the enabled subprogram — it must,
/// once rule retraction can leave a disabled rule's edge *ascending* under
/// a repaired condensation (a cycle in scheduling order would deadlock the
/// release counters). Fact deltas still reuse one DAG verbatim (unit rules
/// have no body and hence no edges), and rule deltas patch it in place:
/// `AppendIsolated` for newly interned atoms, `Splice` for a
/// `DynamicCondensation` repair. Edges of rules retracted *after*
/// construction may linger until the next splice touches them — they
/// descend under every later renumbering, so they only add conservative
/// ordering, never a cycle.
class ComponentDag {
 public:
  ComponentDag(const GroundProgram& gp, const AtomDependencyGraph& graph,
               const std::vector<uint8_t>* disabled = nullptr);

  uint32_t component_count() const {
    return static_cast<uint32_t>(indegree_.size());
  }
  /// Components with an edge from `c` (strictly larger ids, deduplicated).
  std::span<const uint32_t> Successors(uint32_t c) const {
    return succ_.Row(c);
  }
  /// Unique-predecessor counts; the scheduler's release counters start
  /// here.
  const std::vector<uint32_t>& indegrees() const { return indegree_; }

  /// Appends isolated components (no edges, indegree 0) so the DAG covers
  /// ids up to `new_component_count` — the scheduling mirror of
  /// `DynamicCondensation::AddAtoms`.
  void AppendIsolated(uint32_t new_component_count);

  /// Patches the DAG after a condensation repair, without rescanning the
  /// rule set: rows of components outside the repair window are kept and
  /// their targets remapped through `rep.old_to_new` (merged targets
  /// dedup), rows of the window's new components are recomputed from the
  /// occurrence index, and `rep.new_edges` are folded in. Requires
  /// `!rep.split()` — a split fans one old id out to several and the
  /// caller must rebuild instead.
  void Splice(const GroundProgram& gp, const AtomDependencyGraph& graph,
              const std::vector<uint8_t>* disabled,
              const CondensationRepair& rep);

 private:
  Csr<uint32_t> succ_;
  std::vector<uint32_t> indegree_;
};

/// Turns a `SolverOptions::num_threads` request into an actual worker
/// count (0 resolves to the hardware concurrency, minimum 1).
unsigned ResolveThreadCount(unsigned requested);

/// Sentinel for `SlotFn`: the successor takes no part in this schedule.
inline constexpr uint32_t kNoScheduleSlot = UINT32_MAX;

/// The ready-release engine shared by `ParallelSolveAllComponentsInto`
/// and the incremental up-cone re-solve — the one copy of the
/// race-sensitive discipline. Starting from `seeds` (components whose
/// scheduled predecessors are all final), each worker runs
/// `process(worker, comp)` — returning true iff the component finalized —
/// then walks `successors(comp)`: a successor mapping to `kNoScheduleSlot`
/// under `slot` is outside the schedule and skipped; otherwise its
/// `pending[slot(s)]` counter is decremented, and the worker that takes it
/// to zero owns the successor — continuing into the first such successor
/// inline (a chain of tiny components runs as a tight loop, no queue
/// round-trip) and queueing the rest.
///
/// A false return from `process` (a cancellation abort) releases nothing:
/// the component's successors keep their pending counts and are never
/// scheduled, so the aborted cone simply drains — workers finish the tasks
/// already queued (each of which re-checks the cancel context at its own
/// component boundary and returns false immediately) and the pool's final
/// barrier still closes. The caller reconstructs which components ran from
/// its own bookkeeping, not from the scheduler.
///
/// Memory ordering: `process` writes its component's results with plain
/// stores; the `acq_rel` on the decrement makes every such write visible
/// to whichever worker releases (and later processes) the successor, and
/// transitively to everything downstream. `pending` must start at each
/// scheduled component's count of scheduled predecessors.
template <typename Process, typename SuccessorsFn, typename SlotFn>
void RunReadyReleaseSchedule(WorkStealingPool* pool,
                             std::span<const uint32_t> seeds,
                             std::atomic<uint32_t>* pending,
                             Process&& process, SuccessorsFn&& successors,
                             SlotFn&& slot) {
  pool->Run(seeds, [&](unsigned worker, uint32_t task) {
    constexpr uint32_t kNone = UINT32_MAX;
    for (uint32_t c = task; c != kNone;) {
      if (!process(worker, c)) break;
      uint32_t next = kNone;
      for (uint32_t s : successors(c)) {
        uint32_t ps = slot(s);
        if (ps == kNoScheduleSlot) continue;
        if (pending[ps].fetch_sub(1, std::memory_order_acq_rel) == 1) {
          if (next == kNone) {
            next = s;
          } else {
            pool->Push(worker, s);
          }
        }
      }
      c = next;
    }
  });
}

/// Parallel SCC-stratified solve: every component solved exactly once by
/// some worker, released to any idle worker the moment its predecessors in
/// `dag` are final. Workers write decided values of their components into
/// disjoint bytes of `*values` (re-sized and reset here) — no atom is
/// written by two workers, and a component only reads atoms of components
/// the DAG ordered before it, so plain byte loads/stores plus the
/// release/acquire on the indegree counters are race-free. Each worker
/// accumulates a private `SolverDiagnostics`, merged into `*diag` after
/// the final barrier. The result is atom-for-atom the sequential model
/// (components only ever read final lower values, so schedule order is
/// unobservable).
///
/// With `stages` non-null, each worker also reconstructs its component's
/// V_P stage levels immediately after finalizing its values — the DAG
/// edges cover every rule-body reference, so the lower stages a component
/// reads are final under exactly the ordering that makes its value reads
/// safe, and distinct components write distinct `uint32_t` slots of the
/// tape. The levels are therefore thread-count invariant for the same
/// reason the model is.
///
/// Cancellation: with a non-null `cancel`, workers funnel through the
/// component-boundary checkpoint in `SolveComponent` and an aborting
/// component releases none of its successors, so the schedule drains.
/// `*solved` (when non-null; resized here, one byte per component) records
/// exactly which components finalized this pass — on a completed run it is
/// all-ones; after an abort the unset entries are the components still
/// holding their entry state (the abort invariant), which the incremental
/// caller turns into dirty/stale bookkeeping. The flag bytes are written
/// before the releasing decrement, so they are as race-free as the values.
void ParallelSolveAllComponentsInto(const GroundProgram& gp,
                                    const AtomDependencyGraph& graph,
                                    const ComponentDag& dag,
                                    const std::vector<uint8_t>* disabled,
                                    WorkStealingPool* pool, TruthTape* values,
                                    StageTape* stages, SolverDiagnostics* diag,
                                    CancelCtx* cancel = nullptr,
                                    std::vector<uint8_t>* solved = nullptr);

}  // namespace gsls::solver

#endif  // GSLS_SOLVER_PARALLEL_H_
