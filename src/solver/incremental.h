#ifndef GSLS_SOLVER_INCREMENTAL_H_
#define GSLS_SOLVER_INCREMENTAL_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <queue>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/atom_dependency_graph.h"
#include "analysis/dynamic_condensation.h"
#include "ground/ground_program.h"
#include "obs/metrics.h"
#include "solver/component_memo.h"
#include "solver/parallel.h"
#include "solver/solver.h"
#include "solver/stages.h"
#include "solver/truth_tape.h"
#include "solver/warm_component.h"
#include "util/thread_pool.h"
#include "wfs/wfs.h"

namespace gsls {

namespace check {
class SolverAuditor;  // invariant auditor (src/check/audit.h)
}  // namespace check

/// Counters describing how much work the incremental solver avoided.
struct IncrementalStats {
  uint64_t deltas = 0;              ///< Assert/Retract calls that changed state
  uint64_t rule_deltas = 0;         ///< non-unit AssertRule/RetractRule deltas
  uint64_t full_solves = 0;         ///< from-scratch solves (first `Model`)
  uint64_t incremental_solves = 0;  ///< up-cone re-solve passes
  uint64_t graph_rebuilds = 0;      ///< condensation extensions (new atoms)
  uint64_t components_resolved = 0; ///< components re-run across all passes
  uint64_t components_reused = 0;   ///< components kept verbatim across passes
  uint64_t cone_cutoffs = 0;        ///< re-solved components whose values held
  uint64_t queries = 0;             ///< goal-directed `QueryAtom` passes
  uint64_t query_fastpaths = 0;     ///< queries answered with no cone walk
  uint64_t aborted_passes = 0;      ///< solve/query passes stopped by cancel
  uint64_t resumed_passes = 0;      ///< completed passes right after an abort

  std::string ToString() const;
};

/// Delta-driven well-founded solving: `SolveWfs` for programs that change
/// by fact assertion/retraction, which is how heavy query traffic actually
/// arrives — small deltas against a mostly-stable ground program.
///
/// Owns a `GroundProgram`, its SCC condensation (`AtomDependencyGraph`),
/// and the last solved `WfsModel`. `Assert(fact)` enables (adding it if
/// needed) the unit rule `fact.`; `Retract(fact)` disables it via a
/// per-`RuleId` mask, so the rule set never shrinks and every index stays
/// valid. `Model()` then re-solves *only the up-cone of the changed atoms*
/// in the condensation DAG:
///
///   1. The components of the dirty atoms enter a min-heap keyed by
///      component id (= dependency order).
///   2. Components pop in increasing order; each one's atoms are reset to
///      undefined and the component is re-run through the exact same
///      per-SCC pipeline as `SolveWfs` (direct 3-valued evaluation /
///      watched-counter least fixpoint / alternating fixpoint with the
///      source-pointer unfounded-set detector), reading already-final
///      lower values — which now include the re-solved ones.
///   3. If the component's values all come back unchanged, the cone is cut
///      there: dependents are not marked (they would recompute from
///      identical inputs). Otherwise the components of the rules in which
///      a changed atom occurs are marked in turn.
///
/// Every component never reached by the marking keeps its statuses
/// verbatim — that is the entire saving, and it is exact: components are
/// final in dependency order, so a re-solved component sees the same
/// inputs a fresh `SolveWfs` over the mutated program would see.
///
/// With `SolverOptions::num_threads != 1`, deltas touching more than one
/// component replace the min-heap by the ready-release discipline of the
/// parallel scheduler (solver/parallel.h): the affected cone is computed
/// up front, every in-cone component is released once its in-cone
/// predecessors finished, and a released component re-solves only if one
/// of its inputs actually changed (the same change pruning, tracked by
/// per-component flags instead of heap membership). Single-component
/// deltas — the latency-critical streaming case, whose changes usually
/// die within a few components — keep the heap even when threaded: the
/// parallel cone pays a release per *reachable* component, the heap only
/// per component whose inputs moved. The model is identical either way.
///
/// Invalidation strategy: unit rules have no body, so fact deltas never
/// add or remove *edges* of the dependency graph — only `Assert` of a
/// never-registered atom adds a (necessarily isolated) node, spliced in as
/// a trailing singleton. Non-unit rule deltas (`AssertRule`/`RetractRule`)
/// do change edges; the condensation is then repaired *locally* by the
/// dynamic-SCC layer (analysis/dynamic_condensation.h): order-respecting
/// edges cost O(rule), and only a delta that can close or break a cycle
/// re-runs Tarjan over the affected id window, splicing merged or split
/// components back in place. The repair names exactly the components
/// whose compiled state (rule tables, tape values, stage slots) is stale;
/// they are marked dirty and the next `Model()` re-solves just their
/// change-pruned up-cone — the same pipeline fact deltas use. The
/// scheduling DAG of the parallel path is patched by the matching
/// `ComponentDag::Splice` (or rebuilt lazily after a split). Atom ids are
/// stable throughout, so the previous model always carries over.
///
/// Goal-directed queries: `QueryAtom` is the relevance dual of the delta
/// path. Where a delta re-solves the *up*-cone of the changed components
/// (everything that can depend on them), a query solves only the
/// *down*-cone of the query atom's component (everything its truth can
/// depend on) — the well-founded value of an atom is fully determined by
/// its relevant subprogram, so nothing outside the cone is ever touched
/// and query latency is proportional to the relevant-subprogram size,
/// not the program size. Solved components are memoized per component
/// (`solver::ComponentMemo`) and the two modes compose: a delta
/// invalidates exactly its dirty components, and the next query re-solves
/// only `down-cone(query) ∩ stale` — see the class comment in
/// solver/component_memo.h for the (lazy, change-pruned) invalidation
/// discipline, and docs/serving.md for the staleness contract.
class IncrementalSolver {
 public:
  /// Takes ownership of `gp`. Ground deltas — facts via
  /// `Assert`/`Retract`, arbitrary ground rules via
  /// `AssertRule`/`RetractRule` — mutate this program in place; deltas do
  /// not re-ground nonground clauses.
  explicit IncrementalSolver(GroundProgram gp, SolverOptions opts = {});

  const GroundProgram& program() const { return gp_; }
  const SolverOptions& options() const { return opts_; }

  /// Asserts the ground fact `fact.`, interning the atom if it was never
  /// registered. Returns true iff the program changed (false: it already
  /// was an enabled fact).
  bool Assert(const Term* fact);

  /// Retracts the fact `fact.` if its unit rule is currently enabled
  /// (whether from the base program or a previous `Assert`). Returns true
  /// iff the program changed. Derived truth survives retraction: only the
  /// unit rule is removed, never other rules deriving the atom.
  bool Retract(const Term* fact);

  /// `Assert`/`Retract` by already-known atom id (the no-hash-lookup fast
  /// path for delta streams over a fixed atom set).
  bool AssertAtom(AtomId atom);
  bool RetractAtom(AtomId atom);

  /// True iff `atom` currently has an enabled unit rule.
  bool HasFact(AtomId atom) const;

  /// True iff rule `r` is enabled (not retracted).
  bool RuleEnabled(RuleId r) const { return RuleEnabledIn(&disabled_, r); }

  /// Asserts an arbitrary ground rule (atom ids of this program; the body
  /// split by sign). Appends it to the program — or re-enables the
  /// identical retracted rule, `AddRule` deduplicates — and repairs the
  /// condensation locally. Returns the rule's id; `*changed` (when
  /// non-null) reports whether the program actually changed (false: the
  /// identical rule was already enabled). Unit rules take the fact path.
  RuleId AssertRule(GroundRule rule, bool* changed = nullptr);

  /// Term-level convenience: interns the (ground) atoms and asserts.
  RuleId AssertRule(const Term* head, std::span<const Term* const> pos,
                    std::span<const Term* const> neg,
                    bool* changed = nullptr);

  /// Retracts rule `r` — any rule, from the base program or a previous
  /// `AssertRule` — via the disabled mask; indexes never shrink. The
  /// head's component is re-condensed if the rule carried intra-component
  /// edges (it may split). Returns true iff the rule was enabled.
  bool RetractRule(RuleId r);

  /// The live condensation, or null before the first solve/repair forced
  /// its construction. Test and diagnostics surface.
  const AtomDependencyGraph* graph() const {
    return cond_ == nullptr ? nullptr : &cond_->graph();
  }
  /// Dynamic-SCC repair counters (null like `graph()`).
  const DynamicCondensation::Stats* condensation_stats() const {
    return cond_ == nullptr ? nullptr : &cond_->stats();
  }

  /// The well-founded model of the current program. Solves from scratch on
  /// first call, incrementally (affected up-cone only) after deltas, and
  /// returns the cache verbatim when nothing changed.
  ///
  /// With `SolverOptions::compute_levels`, the returned model also carries
  /// the V_P stage levels, maintained across deltas: each re-solved
  /// component reconstructs its stages right after its values (so only the
  /// re-solved up-cone pays), and the change pruning compares *stages as
  /// well as values* — a delta that moves an atom's stage without flipping
  /// its truth still re-solves dependents, so maintained levels stay
  /// atom-for-atom equal to a from-scratch leveled solve.
  const WfsModel& Model();

  /// Well-founded value of a ground atom in `Model()` (unregistered atoms
  /// are false — they have no derivation).
  TruthValue ValueOf(const Term* ground_atom);

  /// What one goal-directed query answered and what it cost.
  struct QueryAnswer {
    TruthValue value = TruthValue::kUndefined;
    /// How the cone pass ended. Anything but `kCompleted` means a
    /// cancellation checkpoint stopped the pass before the query atom's
    /// cone finalized: `value`/stages are then the pre-abort tape values,
    /// not necessarily current, and the unfinished cone members stay
    /// stale for the next query or `Model()` to settle (the abort
    /// protocol — see docs/serving.md).
    SolveOutcome outcome = SolveOutcome::kCompleted;
    /// V_P stage of the answering literal (Def. 2.4), 0 when the atom is
    /// undefined or the solver runs without `compute_levels`.
    uint32_t true_stage = 0;
    uint32_t false_stage = 0;
    /// Components in the query atom's down-cone (0 on the all-valid fast
    /// path, which answers without walking the cone).
    uint32_t cone_components = 0;
    /// Atoms across the cone's components.
    uint64_t cone_atoms = 0;
    /// Cone members that had to (re-)solve — stale or never solved.
    uint32_t resolved_components = 0;
    /// Cone members served verbatim from the component memo.
    uint32_t memo_hits = 0;
  };

  /// Goal-directed (down-cone) well-founded value of `atom`: walks the
  /// atoms/components the query's truth can depend on — the mirror image
  /// of the delta path's up-cone — and solves, in dependency order, only
  /// the cone members that are stale or were never solved; everything
  /// else is served from the per-component memo. Values (and stages,
  /// under `compute_levels`) are bit-identical to a full `Model()` solve
  /// restricted to the cone, at any thread count: with
  /// `SolverOptions::num_threads != 1` a multi-component cone runs on
  /// the work-stealing scheduler restricted to the cone, under the same
  /// ready-release discipline as the full parallel solve.
  ///
  /// Composition with deltas: `Assert`/`Retract`/`AssertRule`/
  /// `RetractRule` invalidate exactly the components whose rule set
  /// changed; a query then re-solves `down-cone(atom) ∩ stale`, and a
  /// re-solve whose values move invalidates its direct dependents in
  /// turn (change-pruned staleness propagation — see
  /// solver/component_memo.h). When every component is valid (steady
  /// query traffic, no deltas), the query is a pure tape lookup.
  ///
  /// Does not compute the full model and leaves components outside the
  /// cone untouched; a later `Model()` call settles everything still
  /// stale. Both orders are exact — queries and full solves can
  /// interleave freely with deltas.
  QueryAnswer QueryAtom(AtomId atom);

  /// Term-level convenience; unregistered atoms are false at stage 1
  /// (they have no derivation — no solving needed).
  QueryAnswer QueryAtom(const Term* ground_atom);

  /// Drops every memoized component result (and the cached full-model
  /// flag): the next `QueryAtom` pays a cold cone solve, the next
  /// `Model()` a full solve, both against the *retained* program and
  /// condensation. The serving layer's cache-drop lever; also what the
  /// query benches use to measure cold-cone latency.
  void InvalidateMemo();

  /// Cancellation plumbing, live between passes: every solve entry
  /// (`Model`, `QueryAtom`) re-reads these options, so a deadline or
  /// budget set here governs the *next* pass (and a cancelled token stops
  /// it at its first checkpoint). To resume after an abort, clear the
  /// stop condition (`CancelToken::Reset`, `SetDeadlineNs(0)`, ...) and
  /// call `Model()`/`QueryAtom` again — exactly the still-stale
  /// components re-solve (see `WfsModel::outcome`).
  void SetCancelToken(CancelToken* token) { opts_.cancel = token; }
  void SetDeadlineNs(uint64_t deadline_ns) { opts_.deadline_ns = deadline_ns; }
  void SetStepBudget(uint64_t step_budget) { opts_.step_budget = step_budget; }
  void SetFaultInjector(FaultInjector* fault) { opts_.fault = fault; }

  /// The per-component query memo (validity, epoch, hit/miss counters).
  /// Diagnostics and test surface.
  const solver::ComponentMemo& memo() const { return memo_; }

  // --- Snapshot export hooks (the MVCC serving layer, src/serve/) ---

  /// Read-only views of the primary stores the serving layer versions
  /// into copy-on-write pages: the flat truth tape, the V_P stage tape
  /// (`compute_levels` only), and the per-rule disabled mask. Stable
  /// between passes; a solve pass mutates them in place, so the serving
  /// writer reads them only after its own `Model()` call returns.
  const solver::TruthTape& tape() const { return tape_; }
  const solver::StageTape& stage_tape() const { return stape_; }
  const std::vector<uint8_t>& disabled_mask() const { return disabled_; }

  /// Atoms whose tape/stage entries a pass may have rewritten since the
  /// last `TakeResolveLog`, by stable atom id (component ids shift under
  /// recondensation windows, atom ids never do); `all_atoms` replaces the
  /// list when a from-scratch solve rewrote everything. Conservative by
  /// design — a component re-solved to identical values still logs its
  /// atoms — so "not logged" always means "byte-identical since the last
  /// take". Entries accumulate across aborted passes until taken: a
  /// publish after a resumed pass still covers every atom touched since
  /// the previous publish.
  struct ResolveLog {
    std::vector<AtomId> atoms;
    bool all_atoms = false;
  };

  /// Starts appending to the resolve log. Off by default: the log costs a
  /// push per re-solved atom and only the serving layer consumes it.
  void EnableResolveLog() { resolve_log_enabled_ = true; }

  /// Returns and clears the accumulated log (the serving writer's
  /// dirty-page source, drained once per completed publish).
  ResolveLog TakeResolveLog();

  /// From-scratch masked solve of the current program, including
  /// condensation construction — the exact work a non-incremental caller
  /// would pay per delta. Always sequential: the agreement oracle and
  /// bench baseline. Computes levels iff this solver was constructed with
  /// `compute_levels`, so it baselines the same work `Model()` maintains.
  WfsModel SolveFresh(SolverDiagnostics* diag = nullptr) const;

  const IncrementalStats& stats() const { return stats_; }
  /// Cumulative per-SCC pipeline diagnostics across all solve passes.
  const SolverDiagnostics& diagnostics() const { return diag_; }

  /// Human-readable telemetry dump: the avoided-work stats, the pipeline
  /// diagnostics, the condensation-repair stats, and — when this solver
  /// was constructed with `SolverOptions::telemetry` — the full metrics
  /// registry table (per-delta latency/cone/resolved histograms with
  /// p50/p90/p99 included).
  void DumpTelemetry(std::ostream& os) const;

 private:
  /// Read-only inspection of the private state (tapes, memo, stale set)
  /// by the invariant auditor — `check::AuditSolver` re-derives every
  /// maintained structure from scratch and compares (src/check/audit.h).
  friend class check::SolverAuditor;

  void EnsureGraph();
  void EnsureParallelRuntime();  ///< scheduling DAG + worker pool
  void MarkDirty(AtomId atom);
  void Mark(uint32_t comp);
  /// Sinks a condensation repair into the solver state: dirty components
  /// (by stable representative atom) and the scheduling-DAG patch.
  void ApplyRepair(const CondensationRepair& rep);
  /// Merges the queued edge-only DAG patches in one `Splice` pass.
  void FlushPendingDagEdges();
  /// Syncs `cancel_ctx_` from the current options; null when detached
  /// (every checkpoint downstream then stays a pointer test). A fault
  /// injector with no caller token borrows `owned_token_` so a trip
  /// persists across pass boundaries like an external Cancel would.
  CancelCtx* ConfigureCancel();
  /// `ConfigureCancel` plus `CancelCtx::BeginPass` — the solve entries.
  CancelCtx* BeginCancelPass();
  /// Pass epilogue: cancel telemetry (aborts, checkpoints, resume cost)
  /// and the abort/resume counters. `resolved` is the pass's re-solved
  /// component count — the cost a resume pays.
  void NoteOutcome(CancelCtx* cancel, uint64_t resolved);
  void ResolveUpCone(CancelCtx* cancel);
  void ResolveUpConeParallel(CancelCtx* cancel);
  /// The one copy of the per-component delta step, shared by the
  /// sequential heap, the parallel up-cone, and both query-cone passes:
  /// snapshot old values/stages, re-solve — *warm* when the component
  /// carries persisted evaluation state (solver/warm_component.h), cold
  /// through `SolveComponent` otherwise — and invoke `flag(head_comp)`
  /// for every out-of-component rule head whose input moved. Returns
  /// whether anything moved; an abort restores the snapshot verbatim and
  /// sets `*aborted`. Defined in incremental.cc (all instantiations live
  /// there). `diag` is per-caller (per-worker on the parallel paths).
  template <typename FlagFn>
  bool ResolveComponentDelta(uint32_t c, solver::StageTape* stages,
                             std::vector<TruthValue>* old_vals,
                             std::vector<uint32_t>* old_stages,
                             SolverDiagnostics* diag, CancelCtx* cancel,
                             bool* aborted, FlagFn&& flag);
  /// Warm half of `ResolveComponentDelta`, non-template so it compiles
  /// once: dispatches an `Eligible` component to its persisted
  /// `WarmComponent` (resolve when `BindingValid`, rebuild-from-scratch
  /// into a fresh entry otherwise), discarding the entry on any abort or
  /// invalid binding. Returns the solve outcome like `SolveComponent`.
  bool SolveEligibleComponent(uint32_t c, solver::StageTape* stages,
                              SolverDiagnostics* diag, CancelCtx* cancel);
  /// Moves `dirty_` (fact-delta atoms) into memo invalidations + the
  /// pending stale set, so query and model passes see one uniform
  /// "stale components" representation. Requires the graph.
  void FoldDirtyIntoPending();
  /// Solves the stale part of `atom`'s down-cone (sequential or
  /// cone-restricted parallel), marking re-solved components valid and
  /// invalidating dependents of actual changes. Fills `out`'s cost
  /// fields.
  void SolveDownCone(AtomId atom, QueryAnswer* out, CancelCtx* cancel);
  /// Copies the tape values of `comp`'s atoms into the `model_` mirror.
  void SyncMirror(uint32_t comp);
  /// Mirrors the cumulative stats/diagnostics into registry gauges after a
  /// solve pass. No-op without a telemetry sink.
  void PublishTelemetry();

  GroundProgram gp_;
  SolverOptions opts_;
  unsigned threads_;               ///< resolved worker count
  std::vector<uint8_t> disabled_;  ///< per RuleId; 1 = retracted
  std::unique_ptr<DynamicCondensation> cond_;  ///< live condensation
  std::unique_ptr<solver::ComponentDag> dag_;  ///< parallel path only
  std::unique_ptr<WorkStealingPool> pool_;     ///< parallel path only
  /// Cross-component edges from edge-only rule deltas, queued while the
  /// DAG exists but is not being read: the streaming case patches the DAG
  /// once per parallel use, not once per delta. Component ids in the
  /// queue are kept current — a recondensing repair flushes it first.
  std::vector<std::pair<uint32_t, uint32_t>> pending_dag_edges_;

  /// Primary truth store, persistent across deltas: the per-SCC pipeline
  /// reads and writes this flat tape; `model_` is the bit-packed mirror
  /// served to callers, re-synced only for re-solved components.
  solver::TruthTape tape_;
  /// Primary V_P stage store (`compute_levels` only), persistent like
  /// `tape_` and mirrored into `model_.true_stage`/`false_stage` per
  /// re-solved component by the same `SyncMirror`.
  solver::StageTape stape_;
  WfsModel model_;
  bool solved_ = false;
  std::vector<AtomId> dirty_;  ///< atoms whose fact set changed

  /// Persistent checkpoint context, re-synced from `opts_` at every pass
  /// entry (so the Set* mutators above take effect without rebuilds).
  CancelCtx cancel_ctx_;
  /// Fallback token attached when a fault injector is configured without
  /// a caller token: an injected trip then persists across passes through
  /// this token, exactly like an external Cancel.
  CancelToken owned_token_;
  /// The previous pass aborted — the next completed pass is a resume
  /// (its re-solved-component count is the recovery cost telemetry).
  bool last_pass_aborted_ = false;

  /// Persisted intra-component evaluation state for the large recursive
  /// components (`WarmComponent::Eligible`), keyed by the component's
  /// stable representative atom (`Atoms(c)[0]` — component ids shift
  /// under recondensation, atom ids never do). Entries are created on a
  /// component's first delta re-solve, reused while `BindingValid`, and
  /// discarded on aborts, invalid bindings, recondensations touching
  /// them, and `InvalidateMemo`. The mutex guards only the map itself:
  /// workers of a parallel pass touch disjoint components, so each
  /// `WarmComponent` stays thread-confined to whichever worker owns its
  /// component this pass.
  std::unordered_map<AtomId, std::unique_ptr<solver::WarmComponent>> warm_;
  std::mutex warm_mu_;

  /// Per-component query memo: which components' tape values are final
  /// for the current program. Sized/repaired alongside the condensation.
  solver::ComponentMemo memo_;
  /// Stale components awaiting re-solve, as stable representative atoms
  /// (`Atoms(c)[0]` — component ids shift under recondensation windows,
  /// atom ids never do). Fed by deltas (via FoldDirtyIntoPending) and by
  /// query passes that changed values out-of-cone dependents must see;
  /// consumed by both `Model()` (whole set) and `QueryAtom` (cone ∩ set).
  std::vector<AtomId> stale_reps_;
  /// Atoms whose tape entries passes may have rewritten since the last
  /// `TakeResolveLog` (appended by `SyncMirror`; see the public
  /// `ResolveLog` contract). Only populated after `EnableResolveLog`.
  ResolveLog resolve_log_;
  bool resolve_log_enabled_ = false;
  /// Scratch for SolveDownCone, persistent across queries like the
  /// up-cone scratch: per-component membership cleared per pass.
  std::vector<uint32_t> down_cone_;    ///< BFS order, then sorted ascending
  /// Per component: 0 = outside the cone, else rank-in-`down_cone_` + 1
  /// (one array doubles as membership flag and schedule-slot map).
  std::vector<uint32_t> in_down_cone_;

  // Up-cone worklist: marked components, popped in dependency order
  // (sequential path).
  std::vector<uint8_t> marked_;  ///< per component; mirrors heap membership
  std::priority_queue<uint32_t, std::vector<uint32_t>,
                      std::greater<uint32_t>>
      heap_;

  // Parallel up-cone scratch, persistent across deltas like `marked_` so
  // a small delta never pays Theta(component_count) re-zeroing: only the
  // entries of the previous pass's cone are cleared after each pass.
  std::vector<uint32_t> cone_;       ///< BFS order of the affected cone
  std::vector<uint8_t> in_cone_;     ///< per component
  std::vector<uint8_t> cone_dirty_;  ///< per component: holds a dirty atom
  std::vector<uint32_t> cone_pos_;   ///< per component: rank within cone_

  IncrementalStats stats_;
  SolverDiagnostics diag_;

  /// Registry channels recorded by the solve passes, interned once at
  /// construction (the registry's look-up-once contract: a per-delta map
  /// lookup would be measurable at streaming latencies). All null when
  /// `opts_.telemetry` is null — the hot paths guard on the sink pointer.
  struct TelemetryChannels {
    obs::Histogram* delta_latency_us = nullptr;
    obs::Histogram* dirty_components = nullptr;
    obs::Histogram* cone_components = nullptr;
    obs::Histogram* resolved_components = nullptr;
    obs::Histogram* resolved_atoms = nullptr;
    obs::Histogram* window_components = nullptr;
    obs::Histogram* full_latency_us = nullptr;
    // Gauges set by PublishTelemetry after every pass — interned here for
    // the same reason as the histograms: a registry map lookup is mutexed
    // and a streaming delta publishes ~27 values, which would otherwise
    // cost multiples of the solve itself at sub-microsecond latencies.
    SolverDiagnostics::Channels diag;
    obs::Gauge* program_atoms = nullptr;
    obs::Gauge* program_rules = nullptr;
    obs::Gauge* deltas = nullptr;
    obs::Gauge* full_solves = nullptr;
    obs::Gauge* incremental_solves = nullptr;
    obs::Gauge* components_resolved = nullptr;
    obs::Gauge* components_reused = nullptr;
    obs::Gauge* cone_cutoffs = nullptr;
    obs::Gauge* graph_components = nullptr;
    obs::Gauge* cond_inserts = nullptr;
    obs::Gauge* cond_removals = nullptr;
    obs::Gauge* cond_windows = nullptr;
    obs::Gauge* cond_window_atoms = nullptr;
    obs::Gauge* cond_window_us = nullptr;
    obs::Gauge* cond_merges = nullptr;
    obs::Gauge* cond_splits = nullptr;
    // Query-mode channels (the goal-directed serving surface).
    obs::Histogram* query_latency_us = nullptr;
    obs::Histogram* query_cone_components = nullptr;
    obs::Histogram* query_cone_atoms = nullptr;
    obs::Histogram* query_resolved_components = nullptr;
    obs::Histogram* query_memo_hits = nullptr;
    obs::Gauge* queries = nullptr;
    obs::Gauge* query_fastpaths = nullptr;
    obs::Gauge* memo_hits = nullptr;
    obs::Gauge* memo_misses = nullptr;
    obs::Gauge* memo_invalidations = nullptr;
    // Cancellation channels: abort counts, checkpoint volume, and what a
    // resume pass paid (re-solved components) to finish the interrupted
    // work.
    obs::Counter* cancel_aborts = nullptr;
    obs::Counter* cancel_deadline_exceeded = nullptr;
    obs::Counter* cancel_resumes = nullptr;
    obs::Counter* cancel_checkpoints = nullptr;
    obs::Histogram* cancel_resume_components = nullptr;
    // Warm-interior channels (intra-component incremental evaluation):
    // how often dirty components re-solved from persisted state vs fell
    // back cold, how much of a component each seeded flood actually
    // touched (per delta pass), and how narrow the Pearce–Kelly affected
    // region stayed (per cycle-closing recondensation).
    obs::Gauge* interior_warm_hits = nullptr;
    obs::Gauge* interior_cold_fallbacks = nullptr;
    obs::Histogram* interior_seeded_flood_atoms = nullptr;
    obs::Histogram* interior_pk_region_components = nullptr;
  };
  TelemetryChannels tele_;
};

}  // namespace gsls

#endif  // GSLS_SOLVER_INCREMENTAL_H_
