#ifndef GSLS_SOLVER_RULE_TABLE_H_
#define GSLS_SOLVER_RULE_TABLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "analysis/atom_dependency_graph.h"
#include "ground/ground_program.h"
#include "solver/truth_tape.h"
#include "util/cancel.h"
#include "util/csr.h"

namespace gsls::solver {

/// Dense id of an atom within one component (its rank in
/// `AtomDependencyGraph::Atoms`).
using LocalAtom = uint32_t;
/// Dense id of a rule within one `RuleTable`.
using LocalRule = uint32_t;

inline constexpr LocalRule kNoRule = UINT32_MAX;

/// A ground rule restricted to one strongly connected component. External
/// body literals (atoms of lower components, whose well-founded values are
/// final by the scheduling order) are partially evaluated at compile time:
/// a decided-true positive or decided-false negative is dropped, a
/// decided-false positive or decided-true negative suppresses the rule
/// entirely, and externals that ended *undefined* are folded into
/// `undef_external` — they can never fire the rule but keep it usable as
/// support.
///
/// The internal body literals themselves live in the `RuleTable`'s shared
/// pool (`PosBody`/`NegBody` spans), not here: one contiguous array for
/// the whole component keeps the propagation loop and the source-pointer
/// floods on linear memory and makes the rule record a fixed-size POD.
struct CompiledRule {
  LocalAtom head = 0;
  uint32_t pos_begin = 0;  ///< start of internal positives in the body pool
  uint32_t neg_begin = 0;  ///< end of positives == start of negatives
  uint32_t body_end = 0;   ///< end of negatives
  uint32_t undef_external = 0;

  /// Watched truth counter: body literals not yet satisfied (internal
  /// positives not yet true + internal negatives not yet false + undefined
  /// externals, which never satisfy). The rule fires its head true when
  /// this reaches 0.
  uint32_t unsat = 0;
  /// Some body literal became false (positive atom falsified / negative
  /// atom derived true): the rule can neither fire nor support.
  bool dead = false;
};

/// The live rules of one component, with watched counters and dense
/// occurrence indexes — the component-local mirror of `GroundProgram`'s
/// rule indexes that the propagation loop and the source-pointer detector
/// run on. All storage is flat: one body-literal pool plus three CSR
/// indexes (`util/csr.h`), built in two counting passes with zero per-rule
/// reallocation.
class RuleTable {
 public:
  /// Compiles the rules whose head lies in component `comp` of `graph`,
  /// reading already-final lower-component values from `global`. Rules
  /// suppressed by a false external witness are not added at all, and
  /// neither are rules flagged in the optional `disabled` mask (one byte
  /// per global `RuleId`; how `IncrementalSolver` hides retracted facts).
  /// Compilation itself is cancellable: it ticks `cancel` every stride,
  /// and on a trip resets to a valid *empty* table with `aborted()` set —
  /// no tape byte has been written at that point, so the caller can treat
  /// it exactly like an abort at the component's entry checkpoint.
  /// With `keep_all` true, the table is compiled for *warm reuse* across
  /// deltas (solver/warm_component.h): every candidate rule is retained —
  /// disabled and externally-suppressed rules included, carried with
  /// `CompiledRule::dead` set — together with its global `RuleId`, its
  /// external body literals (global ids, in a separate pool), a snapshot
  /// of the disabled-mask bytes, and a sorted external-atom index with a
  /// value snapshot and an occurrence CSR. A later delta then *patches*
  /// this table (`RecomputeRule`) instead of recompiling it: mask flips
  /// and external drift map to exactly the touched rules. The default
  /// (false) path is byte-for-byte the historical compile.
  RuleTable(const GroundProgram& gp, const AtomDependencyGraph& graph,
            uint32_t comp, const TruthTape& global,
            const std::vector<uint8_t>* disabled = nullptr,
            CancelCtx* cancel = nullptr, bool keep_all = false);

  /// True iff a cancellation checkpoint tripped mid-compile; the table is
  /// then empty and must not be solved.
  bool aborted() const { return aborted_; }

  size_t atom_count() const { return atoms_.size(); }
  size_t rule_count() const { return rules_.size(); }

  AtomId GlobalAtom(LocalAtom a) const { return atoms_[a]; }

  CompiledRule& rule(LocalRule r) { return rules_[r]; }
  const CompiledRule& rule(LocalRule r) const { return rules_[r]; }

  /// Internal positive body atoms of `r` (a slice of the shared pool).
  std::span<const LocalAtom> PosBody(LocalRule r) const {
    const CompiledRule& c = rules_[r];
    return std::span<const LocalAtom>(body_.data() + c.pos_begin,
                                      c.neg_begin - c.pos_begin);
  }
  /// Internal negative body atoms of `r`.
  std::span<const LocalAtom> NegBody(LocalRule r) const {
    const CompiledRule& c = rules_[r];
    return std::span<const LocalAtom>(body_.data() + c.neg_begin,
                                      c.body_end - c.neg_begin);
  }

  /// Rules whose head is `a`.
  std::span<const LocalRule> RulesFor(LocalAtom a) const {
    return rules_for_.Row(a);
  }
  /// Rules where `a` occurs in a positive body position.
  std::span<const LocalRule> PositiveOccurrences(LocalAtom a) const {
    return pos_occ_.Row(a);
  }
  /// Rules where `a` occurs in a negative body position.
  std::span<const LocalRule> NegativeOccurrences(LocalAtom a) const {
    return neg_occ_.Row(a);
  }

  // --- keep-all extensions (valid only when compiled with keep_all) ---

  bool keep_all() const { return keep_all_; }

  /// Global `RuleId` of local rule `r`.
  RuleId GlobalRule(LocalRule r) const { return rids_[r]; }

  /// External (lower-component) positive / negative body atoms of `r`, as
  /// global ids. Empty spans in default mode (externals are partially
  /// evaluated away there).
  std::span<const AtomId> ExtPos(LocalRule r) const {
    const ExtSpan& e = ext_spans_[r];
    return std::span<const AtomId>(ext_pool_.data() + e.pos_begin,
                                   e.neg_begin - e.pos_begin);
  }
  std::span<const AtomId> ExtNeg(LocalRule r) const {
    const ExtSpan& e = ext_spans_[r];
    return std::span<const AtomId>(ext_pool_.data() + e.neg_begin,
                                   e.end - e.neg_begin);
  }

  /// Sorted distinct external atoms of the component, with the tape-value
  /// snapshot (`TruthValue` as a byte) they were last reconciled against
  /// and the local rules each occurs in. The warm patcher diffs the
  /// snapshot against the live tape to find exactly the drifted rules.
  size_t external_count() const { return ext_atoms_.size(); }
  AtomId ExternalAtom(uint32_t i) const { return ext_atoms_[i]; }
  uint8_t ExternalSnapshot(uint32_t i) const { return ext_vals_[i]; }
  std::span<const LocalRule> ExternalOccurrences(uint32_t i) const {
    return ext_occ_.Row(i);
  }

  /// Disabled-mask byte of `GlobalRule(r)` as of the last reconcile.
  uint8_t DisabledSnapshot(LocalRule r) const { return disabled_snap_[r]; }

  /// Tape value of `a` encoded as the snapshot byte.
  static uint8_t Code(const TruthTape& tape, AtomId a) {
    return static_cast<uint8_t>(tape.Value(a));
  }

  /// Recomputes `rule(r)`'s `dead` / `undef_external` / `unsat` from the
  /// current mask, the live tape values of its external literals, and the
  /// live tape values of its internal literals — the at-rest counter
  /// values the solve loop's decrements would have produced. Keep-all
  /// only.
  void RecomputeRule(LocalRule r, const TruthTape& global,
                     const std::vector<uint8_t>* disabled);

  /// Re-reconciles the external-value and disabled-mask snapshots against
  /// the live tape and mask (after a patch classified the drift).
  void RefreshSnapshots(const TruthTape& global,
                        const std::vector<uint8_t>* disabled);

 private:
  struct ExtSpan {
    uint32_t pos_begin = 0;
    uint32_t neg_begin = 0;
    uint32_t end = 0;
  };

  /// The keep-all compile (see the constructor comment). Same two-pass
  /// CSR layout as the default path, plus the retained-rule metadata.
  void CompileKeepAll(const GroundProgram& gp,
                      const AtomDependencyGraph& graph, uint32_t comp,
                      const TruthTape& global,
                      const std::vector<uint8_t>* disabled, CancelCtx* cancel);

  /// Resets to a coherent empty table (no rules, empty CSR rows) after a
  /// mid-compile cancellation trip.
  void AbortCompile();

  bool aborted_ = false;
  bool keep_all_ = false;
  std::vector<AtomId> atoms_;  ///< local id -> global id
  std::vector<CompiledRule> rules_;
  std::vector<LocalAtom> body_;  ///< shared pool: [pos | neg] per rule
  Csr<LocalRule> rules_for_;
  Csr<LocalRule> pos_occ_;
  Csr<LocalRule> neg_occ_;

  // Keep-all metadata (empty in default mode).
  std::vector<RuleId> rids_;          ///< local rule -> global rule
  std::vector<AtomId> ext_pool_;      ///< [ext pos | ext neg] per rule
  std::vector<ExtSpan> ext_spans_;    ///< per rule, into ext_pool_
  std::vector<uint8_t> disabled_snap_;  ///< per rule: mask byte snapshot
  std::vector<AtomId> ext_atoms_;     ///< sorted distinct external atoms
  std::vector<uint8_t> ext_vals_;     ///< per ext atom: value snapshot
  Csr<LocalRule> ext_occ_;            ///< ext atom index -> rules
};

}  // namespace gsls::solver

#endif  // GSLS_SOLVER_RULE_TABLE_H_
