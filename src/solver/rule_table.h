#ifndef GSLS_SOLVER_RULE_TABLE_H_
#define GSLS_SOLVER_RULE_TABLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "analysis/atom_dependency_graph.h"
#include "ground/ground_program.h"
#include "wfs/interpretation.h"

namespace gsls::solver {

/// Dense id of an atom within one component (its rank in
/// `AtomDependencyGraph::Atoms`).
using LocalAtom = uint32_t;
/// Dense id of a rule within one `RuleTable`.
using LocalRule = uint32_t;

inline constexpr LocalRule kNoRule = UINT32_MAX;

/// A ground rule restricted to one strongly connected component. External
/// body literals (atoms of lower components, whose well-founded values are
/// final by the scheduling order) are partially evaluated at compile time:
/// a decided-true positive or decided-false negative is dropped, a
/// decided-false positive or decided-true negative suppresses the rule
/// entirely, and externals that ended *undefined* are folded into
/// `undef_external` — they can never fire the rule but keep it usable as
/// support.
struct CompiledRule {
  LocalAtom head = 0;
  std::vector<LocalAtom> pos;  ///< positive body atoms inside the component
  std::vector<LocalAtom> neg;  ///< negative body atoms inside the component
  uint32_t undef_external = 0;

  /// Watched truth counter: body literals not yet satisfied (internal
  /// positives not yet true + internal negatives not yet false + undefined
  /// externals, which never satisfy). The rule fires its head true when
  /// this reaches 0.
  uint32_t unsat = 0;
  /// Some body literal became false (positive atom falsified / negative
  /// atom derived true): the rule can neither fire nor support.
  bool dead = false;
};

/// The live rules of one component, with watched counters and dense
/// occurrence indexes — the component-local mirror of `GroundProgram`'s
/// rule indexes that the propagation loop and the source-pointer detector
/// run on.
class RuleTable {
 public:
  /// Compiles the rules whose head lies in component `comp` of `graph`,
  /// reading already-final lower-component values from `global`. Rules
  /// suppressed by a false external witness are not added at all, and
  /// neither are rules flagged in the optional `disabled` mask (one byte
  /// per global `RuleId`; how `IncrementalSolver` hides retracted facts).
  RuleTable(const GroundProgram& gp, const AtomDependencyGraph& graph,
            uint32_t comp, const Interpretation& global,
            const std::vector<uint8_t>* disabled = nullptr);

  size_t atom_count() const { return atoms_.size(); }
  size_t rule_count() const { return rules_.size(); }

  AtomId GlobalAtom(LocalAtom a) const { return atoms_[a]; }

  CompiledRule& rule(LocalRule r) { return rules_[r]; }
  const CompiledRule& rule(LocalRule r) const { return rules_[r]; }

  /// Rules whose head is `a`.
  std::span<const LocalRule> RulesFor(LocalAtom a) const {
    return rules_for_[a];
  }
  /// Rules where `a` occurs in a positive body position.
  std::span<const LocalRule> PositiveOccurrences(LocalAtom a) const {
    return pos_occ_[a];
  }
  /// Rules where `a` occurs in a negative body position.
  std::span<const LocalRule> NegativeOccurrences(LocalAtom a) const {
    return neg_occ_[a];
  }

 private:
  std::vector<AtomId> atoms_;  ///< local id -> global id
  std::vector<CompiledRule> rules_;
  std::vector<std::vector<LocalRule>> rules_for_;
  std::vector<std::vector<LocalRule>> pos_occ_;
  std::vector<std::vector<LocalRule>> neg_occ_;
};

}  // namespace gsls::solver

#endif  // GSLS_SOLVER_RULE_TABLE_H_
