#ifndef GSLS_SOLVER_RULE_TABLE_H_
#define GSLS_SOLVER_RULE_TABLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "analysis/atom_dependency_graph.h"
#include "ground/ground_program.h"
#include "solver/truth_tape.h"
#include "util/cancel.h"
#include "util/csr.h"

namespace gsls::solver {

/// Dense id of an atom within one component (its rank in
/// `AtomDependencyGraph::Atoms`).
using LocalAtom = uint32_t;
/// Dense id of a rule within one `RuleTable`.
using LocalRule = uint32_t;

inline constexpr LocalRule kNoRule = UINT32_MAX;

/// A ground rule restricted to one strongly connected component. External
/// body literals (atoms of lower components, whose well-founded values are
/// final by the scheduling order) are partially evaluated at compile time:
/// a decided-true positive or decided-false negative is dropped, a
/// decided-false positive or decided-true negative suppresses the rule
/// entirely, and externals that ended *undefined* are folded into
/// `undef_external` — they can never fire the rule but keep it usable as
/// support.
///
/// The internal body literals themselves live in the `RuleTable`'s shared
/// pool (`PosBody`/`NegBody` spans), not here: one contiguous array for
/// the whole component keeps the propagation loop and the source-pointer
/// floods on linear memory and makes the rule record a fixed-size POD.
struct CompiledRule {
  LocalAtom head = 0;
  uint32_t pos_begin = 0;  ///< start of internal positives in the body pool
  uint32_t neg_begin = 0;  ///< end of positives == start of negatives
  uint32_t body_end = 0;   ///< end of negatives
  uint32_t undef_external = 0;

  /// Watched truth counter: body literals not yet satisfied (internal
  /// positives not yet true + internal negatives not yet false + undefined
  /// externals, which never satisfy). The rule fires its head true when
  /// this reaches 0.
  uint32_t unsat = 0;
  /// Some body literal became false (positive atom falsified / negative
  /// atom derived true): the rule can neither fire nor support.
  bool dead = false;
};

/// The live rules of one component, with watched counters and dense
/// occurrence indexes — the component-local mirror of `GroundProgram`'s
/// rule indexes that the propagation loop and the source-pointer detector
/// run on. All storage is flat: one body-literal pool plus three CSR
/// indexes (`util/csr.h`), built in two counting passes with zero per-rule
/// reallocation.
class RuleTable {
 public:
  /// Compiles the rules whose head lies in component `comp` of `graph`,
  /// reading already-final lower-component values from `global`. Rules
  /// suppressed by a false external witness are not added at all, and
  /// neither are rules flagged in the optional `disabled` mask (one byte
  /// per global `RuleId`; how `IncrementalSolver` hides retracted facts).
  /// Compilation itself is cancellable: it ticks `cancel` every stride,
  /// and on a trip resets to a valid *empty* table with `aborted()` set —
  /// no tape byte has been written at that point, so the caller can treat
  /// it exactly like an abort at the component's entry checkpoint.
  RuleTable(const GroundProgram& gp, const AtomDependencyGraph& graph,
            uint32_t comp, const TruthTape& global,
            const std::vector<uint8_t>* disabled = nullptr,
            CancelCtx* cancel = nullptr);

  /// True iff a cancellation checkpoint tripped mid-compile; the table is
  /// then empty and must not be solved.
  bool aborted() const { return aborted_; }

  size_t atom_count() const { return atoms_.size(); }
  size_t rule_count() const { return rules_.size(); }

  AtomId GlobalAtom(LocalAtom a) const { return atoms_[a]; }

  CompiledRule& rule(LocalRule r) { return rules_[r]; }
  const CompiledRule& rule(LocalRule r) const { return rules_[r]; }

  /// Internal positive body atoms of `r` (a slice of the shared pool).
  std::span<const LocalAtom> PosBody(LocalRule r) const {
    const CompiledRule& c = rules_[r];
    return std::span<const LocalAtom>(body_.data() + c.pos_begin,
                                      c.neg_begin - c.pos_begin);
  }
  /// Internal negative body atoms of `r`.
  std::span<const LocalAtom> NegBody(LocalRule r) const {
    const CompiledRule& c = rules_[r];
    return std::span<const LocalAtom>(body_.data() + c.neg_begin,
                                      c.body_end - c.neg_begin);
  }

  /// Rules whose head is `a`.
  std::span<const LocalRule> RulesFor(LocalAtom a) const {
    return rules_for_.Row(a);
  }
  /// Rules where `a` occurs in a positive body position.
  std::span<const LocalRule> PositiveOccurrences(LocalAtom a) const {
    return pos_occ_.Row(a);
  }
  /// Rules where `a` occurs in a negative body position.
  std::span<const LocalRule> NegativeOccurrences(LocalAtom a) const {
    return neg_occ_.Row(a);
  }

 private:
  /// Resets to a coherent empty table (no rules, empty CSR rows) after a
  /// mid-compile cancellation trip.
  void AbortCompile();

  bool aborted_ = false;
  std::vector<AtomId> atoms_;  ///< local id -> global id
  std::vector<CompiledRule> rules_;
  std::vector<LocalAtom> body_;  ///< shared pool: [pos | neg] per rule
  Csr<LocalRule> rules_for_;
  Csr<LocalRule> pos_occ_;
  Csr<LocalRule> neg_occ_;
};

}  // namespace gsls::solver

#endif  // GSLS_SOLVER_RULE_TABLE_H_
