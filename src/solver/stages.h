#ifndef GSLS_SOLVER_STAGES_H_
#define GSLS_SOLVER_STAGES_H_

#include <cstdint>
#include <vector>

#include "analysis/atom_dependency_graph.h"
#include "ground/ground_program.h"
#include "solver/truth_tape.h"

namespace gsls::solver {

/// Flat per-atom store of the V_P stage levels (Def. 2.4): for every
/// literal of the well-founded model, the least iteration of V_P at which
/// it appears. 0 means "no stage" (the atom is undefined, or the literal of
/// that sign is not in the model) — the same convention as `WfsStages`.
///
/// Like `TruthTape`, entries of different atoms are distinct memory
/// locations, so parallel workers reconstructing the stages of disjoint
/// components write disjoint `uint32_t` slots with plain stores; the
/// release/acquire edges of the component schedule order them exactly as
/// they order the truth bytes. No per-worker side copy or merge step is
/// needed.
struct StageTape {
  std::vector<uint32_t> true_stage;   ///< per atom; 0 if not true
  std::vector<uint32_t> false_stage;  ///< per atom; 0 if not false

  /// Resets to `atom_count` atoms, all stageless.
  void Assign(size_t atom_count) {
    true_stage.assign(atom_count, 0);
    false_stage.assign(atom_count, 0);
  }

  /// Grows to `atom_count` atoms; new atoms are stageless.
  void Resize(size_t atom_count) {
    true_stage.resize(atom_count, 0);
    false_stage.resize(atom_count, 0);
  }

  size_t size() const { return true_stage.size(); }
};

/// Reconstructs the global V_P stages of one component's atoms from the SCC
/// schedule, after the component has been solved: `values` holds the final
/// truth values of the component and of everything below it, and `*stages`
/// holds the final stages of every lower component. Overwrites exactly the
/// entries of `comp`'s atoms (undefined atoms get 0/0).
///
/// This is the Lonc-Truszczyński composition: stages satisfy the local
/// fixpoint equations
///
///   t(a) = min over a's rules of  max(1, max_pos t(b), max_neg f(b)+1)
///   f(a) = max(1, max over a's rules of
///              min(min over false pos b of f(b),
///                  min over true  neg b of t(b)+1))
///
/// where body atoms of lower components contribute their already-final
/// stages as per-rule offsets and only intra-component references stay
/// symbolic — positive edges carry stages unchanged (T̃_P^ω closes
/// positively within one V_P round) and negative edges add one (a literal
/// only becomes usable the round after its complement settled). Truth is
/// inductive and resolves by label-setting in increasing stage order;
/// falsity is coinductive *within* a round (U_P is the greatest unfounded
/// set), so atoms whose remaining support is a positive loop fall together
/// — detected by the same counting unfounded-set pass the solver's
/// source-pointer detector runs, here once per distinct stage.
///
/// Cost is near-linear in the component's rules per distinct stage value
/// that occurs inside the component, and zero allocation on the
/// non-recursive singleton fast path — versus the globally quadratic
/// `ComputeWfsStages`, which this reconstruction agrees with atom-for-atom
/// (tests/stages_test.cc, bench_levels_vs_stages).
void ReconstructComponentStages(const GroundProgram& gp,
                                const AtomDependencyGraph& graph,
                                uint32_t comp,
                                const std::vector<uint8_t>* disabled,
                                const TruthTape& values, StageTape* stages);

}  // namespace gsls::solver

#endif  // GSLS_SOLVER_STAGES_H_
