#ifndef GSLS_SOLVER_TRUTH_TAPE_H_
#define GSLS_SOLVER_TRUTH_TAPE_H_

#include <cstdint>
#include <vector>

#include "wfs/interpretation.h"

namespace gsls::solver {

/// Flat byte-per-atom truth store — the solver-internal representation of
/// the evolving model. One load decides an atom (versus two bit probes in
/// `Interpretation`), and, unlike a bit-packed set, bytes of *different*
/// atoms are distinct memory locations: parallel workers finalize disjoint
/// components in place with no write contention and no word-level races
/// (C++ guarantees bytes are separate objects). Converted to an
/// `Interpretation` once per solve, at the barrier.
class TruthTape {
 public:
  TruthTape() = default;
  explicit TruthTape(size_t atom_count) { Assign(atom_count); }

  /// Resets to `atom_count` atoms, all undefined.
  void Assign(size_t atom_count) {
    values_.assign(atom_count, static_cast<uint8_t>(TruthValue::kUndefined));
  }

  /// Grows to `atom_count` atoms; new atoms are undefined.
  void Resize(size_t atom_count) {
    values_.resize(atom_count, static_cast<uint8_t>(TruthValue::kUndefined));
  }

  size_t size() const { return values_.size(); }

  TruthValue Value(AtomId a) const {
    return static_cast<TruthValue>(values_[a]);
  }
  bool IsTrue(AtomId a) const { return Value(a) == TruthValue::kTrue; }
  bool IsFalse(AtomId a) const { return Value(a) == TruthValue::kFalse; }
  bool IsUndefined(AtomId a) const {
    return Value(a) == TruthValue::kUndefined;
  }

  void SetTrue(AtomId a) {
    values_[a] = static_cast<uint8_t>(TruthValue::kTrue);
  }
  void SetFalse(AtomId a) {
    values_[a] = static_cast<uint8_t>(TruthValue::kFalse);
  }
  void SetUndefined(AtomId a) {
    values_[a] = static_cast<uint8_t>(TruthValue::kUndefined);
  }
  /// Direct store of any value — the abort path restoring a snapshot.
  void SetValue(AtomId a, TruthValue v) {
    values_[a] = static_cast<uint8_t>(v);
  }

  /// The tape as a bit-packed `Interpretation` (the public model type).
  Interpretation ToInterpretation() const {
    Interpretation out(values_.size());
    for (AtomId a = 0; a < values_.size(); ++a) CopyAtomTo(a, &out);
    return out;
  }

  /// Overwrites `out`'s value of `a` with the tape's (the incremental
  /// solver syncs just the re-solved atoms of its persistent mirror).
  void CopyAtomTo(AtomId a, Interpretation* out) const {
    out->SetUndefined(a);  // clear the stale bit before flipping the other
    switch (Value(a)) {
      case TruthValue::kTrue: out->SetTrue(a); break;
      case TruthValue::kFalse: out->SetFalse(a); break;
      case TruthValue::kUndefined: break;
    }
  }

 private:
  std::vector<uint8_t> values_;
};

}  // namespace gsls::solver

#endif  // GSLS_SOLVER_TRUTH_TAPE_H_
