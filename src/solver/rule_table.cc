#include "solver/rule_table.h"

namespace gsls::solver {

RuleTable::RuleTable(const GroundProgram& gp, const AtomDependencyGraph& graph,
                     uint32_t comp, const TruthTape& global,
                     const std::vector<uint8_t>* disabled, CancelCtx* cancel) {
  StridedCheckpoint tick(cancel);
  std::span<const AtomId> members = graph.Atoms(comp);
  atoms_.assign(members.begin(), members.end());
  uint32_t n = static_cast<uint32_t>(atoms_.size());

  // Pass 1: partially evaluate every candidate rule against the final
  // lower-component values, recording which survive and how many internal
  // literals each keeps. Nothing is stored per-rule yet except the
  // fixed-size records — all degree counts land in the CSR builders.
  struct Probe {
    RuleId rid;
    LocalAtom head;
    uint32_t npos;
    uint32_t nneg;
    uint32_t undef_external;
  };
  std::vector<Probe> kept;
  size_t candidates = 0;
  for (LocalAtom local = 0; local < n; ++local) {
    candidates += gp.RulesFor(atoms_[local]).size();
  }
  kept.reserve(candidates);

  rules_for_.Reset(n);
  uint32_t body_total = 0;
  for (LocalAtom local = 0; local < n; ++local) {
    if (tick.Tick()) { AbortCompile(); return; }
    for (RuleId rid : gp.RulesFor(atoms_[local])) {
      if (disabled != nullptr && (*disabled)[rid]) continue;
      const GroundRule& r = gp.rules()[rid];
      Probe probe{rid, local, 0, 0, 0};
      bool suppressed = false;
      for (AtomId b : r.pos) {
        if (graph.ComponentOf(b) == comp) {
          ++probe.npos;
        } else if (global.IsFalse(b)) {
          suppressed = true;  // false witness: the rule can never matter
          break;
        } else if (!global.IsTrue(b)) {
          ++probe.undef_external;
        }
      }
      if (!suppressed) {
        for (AtomId b : r.neg) {
          if (graph.ComponentOf(b) == comp) {
            ++probe.nneg;
          } else if (global.IsTrue(b)) {
            suppressed = true;
            break;
          } else if (!global.IsFalse(b)) {
            ++probe.undef_external;
          }
        }
      }
      if (suppressed) continue;
      rules_for_.CountAt(local);
      body_total += probe.npos + probe.nneg;
      kept.push_back(probe);
    }
  }

  // Sizes are now exact: lay out the rule records and the body pool, then
  // fill the pool in a second scan of the kept bodies (suppression is
  // already decided, so this scan only classifies internal vs external).
  rules_.resize(kept.size());
  body_.resize(body_total);
  rules_for_.FinishCounting();
  pos_occ_.Reset(n);
  neg_occ_.Reset(n);
  uint32_t cursor = 0;
  for (LocalRule id = 0; id < kept.size(); ++id) {
    if (tick.Tick()) { AbortCompile(); return; }
    const Probe& probe = kept[id];
    const GroundRule& r = gp.rules()[probe.rid];
    CompiledRule& compiled = rules_[id];
    compiled.head = probe.head;
    compiled.undef_external = probe.undef_external;
    compiled.unsat = probe.npos + probe.nneg + probe.undef_external;
    compiled.pos_begin = cursor;
    for (AtomId b : r.pos) {
      if (graph.ComponentOf(b) != comp) continue;
      LocalAtom lb = graph.LocalIndexOf(b);
      body_[cursor++] = lb;
      pos_occ_.CountAt(lb);
    }
    compiled.neg_begin = cursor;
    for (AtomId b : r.neg) {
      if (graph.ComponentOf(b) != comp) continue;
      LocalAtom lb = graph.LocalIndexOf(b);
      body_[cursor++] = lb;
      neg_occ_.CountAt(lb);
    }
    compiled.body_end = cursor;
    rules_for_.Fill(probe.head, id);
  }
  rules_for_.FinishFilling();

  // Occurrence payloads come straight off the flat pool — no third body
  // scan of the ground program.
  pos_occ_.FinishCounting();
  neg_occ_.FinishCounting();
  for (LocalRule id = 0; id < rules_.size(); ++id) {
    if (tick.Tick()) { AbortCompile(); return; }
    for (LocalAtom b : PosBody(id)) pos_occ_.Fill(b, id);
    for (LocalAtom b : NegBody(id)) neg_occ_.Fill(b, id);
  }
  pos_occ_.FinishFilling();
  neg_occ_.FinishFilling();
}

void RuleTable::AbortCompile() {
  aborted_ = true;
  rules_.clear();
  body_.clear();
  const uint32_t n = static_cast<uint32_t>(atoms_.size());
  // All-empty CSR rows: Reset + FinishCounting with no counts leaves every
  // Row() a valid empty span, so a consumer that ignores `aborted()` still
  // sees a coherent (just empty) component.
  rules_for_.Reset(n);
  rules_for_.FinishCounting();
  pos_occ_.Reset(n);
  pos_occ_.FinishCounting();
  neg_occ_.Reset(n);
  neg_occ_.FinishCounting();
}

}  // namespace gsls::solver
