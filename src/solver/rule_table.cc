#include "solver/rule_table.h"

namespace gsls::solver {

RuleTable::RuleTable(const GroundProgram& gp, const AtomDependencyGraph& graph,
                     uint32_t comp, const Interpretation& global,
                     const std::vector<uint8_t>* disabled) {
  std::span<const AtomId> members = graph.Atoms(comp);
  atoms_.assign(members.begin(), members.end());
  rules_for_.resize(atoms_.size());
  pos_occ_.resize(atoms_.size());
  neg_occ_.resize(atoms_.size());

  for (LocalAtom local = 0; local < atoms_.size(); ++local) {
    for (RuleId rid : gp.RulesFor(atoms_[local])) {
      if (disabled != nullptr && (*disabled)[rid]) continue;
      const GroundRule& r = gp.rules()[rid];
      CompiledRule compiled;
      compiled.head = local;
      bool suppressed = false;
      for (AtomId b : r.pos) {
        if (graph.ComponentOf(b) == comp) {
          compiled.pos.push_back(graph.LocalIndexOf(b));
        } else if (global.IsFalse(b)) {
          suppressed = true;  // false witness: the rule can never matter
          break;
        } else if (!global.IsTrue(b)) {
          ++compiled.undef_external;
        }
      }
      if (!suppressed) {
        for (AtomId b : r.neg) {
          if (graph.ComponentOf(b) == comp) {
            compiled.neg.push_back(graph.LocalIndexOf(b));
          } else if (global.IsTrue(b)) {
            suppressed = true;
            break;
          } else if (!global.IsFalse(b)) {
            ++compiled.undef_external;
          }
        }
      }
      if (suppressed) continue;
      compiled.unsat = static_cast<uint32_t>(compiled.pos.size() +
                                             compiled.neg.size()) +
                       compiled.undef_external;
      LocalRule id = static_cast<LocalRule>(rules_.size());
      rules_for_[local].push_back(id);
      for (LocalAtom b : compiled.pos) pos_occ_[b].push_back(id);
      for (LocalAtom b : compiled.neg) neg_occ_[b].push_back(id);
      rules_.push_back(std::move(compiled));
    }
  }
}

}  // namespace gsls::solver
