#include "solver/rule_table.h"

#include <algorithm>

namespace gsls::solver {

RuleTable::RuleTable(const GroundProgram& gp, const AtomDependencyGraph& graph,
                     uint32_t comp, const TruthTape& global,
                     const std::vector<uint8_t>* disabled, CancelCtx* cancel,
                     bool keep_all) {
  StridedCheckpoint tick(cancel);
  std::span<const AtomId> members = graph.Atoms(comp);
  atoms_.assign(members.begin(), members.end());
  if (keep_all) {
    keep_all_ = true;
    CompileKeepAll(gp, graph, comp, global, disabled, cancel);
    return;
  }
  uint32_t n = static_cast<uint32_t>(atoms_.size());

  // Pass 1: partially evaluate every candidate rule against the final
  // lower-component values, recording which survive and how many internal
  // literals each keeps. Nothing is stored per-rule yet except the
  // fixed-size records — all degree counts land in the CSR builders.
  struct Probe {
    RuleId rid;
    LocalAtom head;
    uint32_t npos;
    uint32_t nneg;
    uint32_t undef_external;
  };
  std::vector<Probe> kept;
  size_t candidates = 0;
  for (LocalAtom local = 0; local < n; ++local) {
    candidates += gp.RulesFor(atoms_[local]).size();
  }
  kept.reserve(candidates);

  rules_for_.Reset(n);
  uint32_t body_total = 0;
  for (LocalAtom local = 0; local < n; ++local) {
    if (tick.Tick()) { AbortCompile(); return; }
    for (RuleId rid : gp.RulesFor(atoms_[local])) {
      if (disabled != nullptr && (*disabled)[rid]) continue;
      const GroundRule& r = gp.rules()[rid];
      Probe probe{rid, local, 0, 0, 0};
      bool suppressed = false;
      for (AtomId b : r.pos) {
        if (graph.ComponentOf(b) == comp) {
          ++probe.npos;
        } else if (global.IsFalse(b)) {
          suppressed = true;  // false witness: the rule can never matter
          break;
        } else if (!global.IsTrue(b)) {
          ++probe.undef_external;
        }
      }
      if (!suppressed) {
        for (AtomId b : r.neg) {
          if (graph.ComponentOf(b) == comp) {
            ++probe.nneg;
          } else if (global.IsTrue(b)) {
            suppressed = true;
            break;
          } else if (!global.IsFalse(b)) {
            ++probe.undef_external;
          }
        }
      }
      if (suppressed) continue;
      rules_for_.CountAt(local);
      body_total += probe.npos + probe.nneg;
      kept.push_back(probe);
    }
  }

  // Sizes are now exact: lay out the rule records and the body pool, then
  // fill the pool in a second scan of the kept bodies (suppression is
  // already decided, so this scan only classifies internal vs external).
  rules_.resize(kept.size());
  body_.resize(body_total);
  rules_for_.FinishCounting();
  pos_occ_.Reset(n);
  neg_occ_.Reset(n);
  uint32_t cursor = 0;
  for (LocalRule id = 0; id < kept.size(); ++id) {
    if (tick.Tick()) { AbortCompile(); return; }
    const Probe& probe = kept[id];
    const GroundRule& r = gp.rules()[probe.rid];
    CompiledRule& compiled = rules_[id];
    compiled.head = probe.head;
    compiled.undef_external = probe.undef_external;
    compiled.unsat = probe.npos + probe.nneg + probe.undef_external;
    compiled.pos_begin = cursor;
    for (AtomId b : r.pos) {
      if (graph.ComponentOf(b) != comp) continue;
      LocalAtom lb = graph.LocalIndexOf(b);
      body_[cursor++] = lb;
      pos_occ_.CountAt(lb);
    }
    compiled.neg_begin = cursor;
    for (AtomId b : r.neg) {
      if (graph.ComponentOf(b) != comp) continue;
      LocalAtom lb = graph.LocalIndexOf(b);
      body_[cursor++] = lb;
      neg_occ_.CountAt(lb);
    }
    compiled.body_end = cursor;
    rules_for_.Fill(probe.head, id);
  }
  rules_for_.FinishFilling();

  // Occurrence payloads come straight off the flat pool — no third body
  // scan of the ground program.
  pos_occ_.FinishCounting();
  neg_occ_.FinishCounting();
  for (LocalRule id = 0; id < rules_.size(); ++id) {
    if (tick.Tick()) { AbortCompile(); return; }
    for (LocalAtom b : PosBody(id)) pos_occ_.Fill(b, id);
    for (LocalAtom b : NegBody(id)) neg_occ_.Fill(b, id);
  }
  pos_occ_.FinishFilling();
  neg_occ_.FinishFilling();
}

void RuleTable::CompileKeepAll(const GroundProgram& gp,
                               const AtomDependencyGraph& graph, uint32_t comp,
                               const TruthTape& global,
                               const std::vector<uint8_t>* disabled,
                               CancelCtx* cancel) {
  StridedCheckpoint tick(cancel);
  const uint32_t n = static_cast<uint32_t>(atoms_.size());

  // Pass 1 over every candidate — nothing is suppressed or skipped; a
  // disabled rule or a false external witness only sets `dead`, keeping
  // the record patchable when a later delta revives it. The body scans
  // therefore always run to the end, so the internal/external counts here
  // match pass 2's fills exactly.
  struct Probe {
    RuleId rid;
    LocalAtom head;
    uint32_t npos;
    uint32_t nneg;
    uint32_t undef_external;
    bool dead;
  };
  std::vector<Probe> kept;
  size_t candidates = 0;
  for (LocalAtom local = 0; local < n; ++local) {
    candidates += gp.RulesFor(atoms_[local]).size();
  }
  kept.reserve(candidates);

  rules_for_.Reset(n);
  uint32_t body_total = 0;
  uint32_t ext_total = 0;
  for (LocalAtom local = 0; local < n; ++local) {
    if (tick.Tick()) { AbortCompile(); return; }
    for (RuleId rid : gp.RulesFor(atoms_[local])) {
      const GroundRule& r = gp.rules()[rid];
      Probe probe{rid, local, 0, 0, 0, false};
      uint32_t ext = 0;
      for (AtomId b : r.pos) {
        if (graph.ComponentOf(b) == comp) {
          ++probe.npos;
        } else {
          ++ext;
          if (global.IsFalse(b)) probe.dead = true;
          else if (!global.IsTrue(b)) ++probe.undef_external;
        }
      }
      for (AtomId b : r.neg) {
        if (graph.ComponentOf(b) == comp) {
          ++probe.nneg;
        } else {
          ++ext;
          if (global.IsTrue(b)) probe.dead = true;
          else if (!global.IsFalse(b)) ++probe.undef_external;
        }
      }
      if (disabled != nullptr && (*disabled)[rid]) probe.dead = true;
      rules_for_.CountAt(local);
      body_total += probe.npos + probe.nneg;
      ext_total += ext;
      kept.push_back(probe);
    }
  }

  rules_.resize(kept.size());
  rids_.resize(kept.size());
  ext_spans_.resize(kept.size());
  disabled_snap_.assign(kept.size(), 0);
  body_.resize(body_total);
  ext_pool_.resize(ext_total);
  rules_for_.FinishCounting();
  pos_occ_.Reset(n);
  neg_occ_.Reset(n);
  uint32_t cursor = 0;
  uint32_t ext_cursor = 0;
  for (LocalRule id = 0; id < kept.size(); ++id) {
    if (tick.Tick()) { AbortCompile(); return; }
    const Probe& probe = kept[id];
    const GroundRule& r = gp.rules()[probe.rid];
    CompiledRule& compiled = rules_[id];
    compiled.head = probe.head;
    compiled.undef_external = probe.undef_external;
    // At-rest counters: every internal literal is undefined at the start
    // of a component solve, so this is the same value the default compile
    // produces for a live rule. Dead rules keep the at-rest value too —
    // a revival recomputes them (`RecomputeRule`) before they re-enter
    // the game, because the propagation loop never decrements dead rules.
    compiled.unsat = probe.npos + probe.nneg + probe.undef_external;
    compiled.dead = probe.dead;
    rids_[id] = probe.rid;
    disabled_snap_[id] = disabled != nullptr ? (*disabled)[probe.rid] : 0;
    ExtSpan& ext = ext_spans_[id];
    compiled.pos_begin = cursor;
    ext.pos_begin = ext_cursor;
    for (AtomId b : r.pos) {
      if (graph.ComponentOf(b) == comp) {
        LocalAtom lb = graph.LocalIndexOf(b);
        body_[cursor++] = lb;
        pos_occ_.CountAt(lb);
      } else {
        ext_pool_[ext_cursor++] = b;
      }
    }
    compiled.neg_begin = cursor;
    ext.neg_begin = ext_cursor;
    for (AtomId b : r.neg) {
      if (graph.ComponentOf(b) == comp) {
        LocalAtom lb = graph.LocalIndexOf(b);
        body_[cursor++] = lb;
        neg_occ_.CountAt(lb);
      } else {
        ext_pool_[ext_cursor++] = b;
      }
    }
    compiled.body_end = cursor;
    ext.end = ext_cursor;
    rules_for_.Fill(probe.head, id);
  }
  rules_for_.FinishFilling();

  pos_occ_.FinishCounting();
  neg_occ_.FinishCounting();
  for (LocalRule id = 0; id < rules_.size(); ++id) {
    if (tick.Tick()) { AbortCompile(); return; }
    for (LocalAtom b : PosBody(id)) pos_occ_.Fill(b, id);
    for (LocalAtom b : NegBody(id)) neg_occ_.Fill(b, id);
  }
  pos_occ_.FinishFilling();
  neg_occ_.FinishFilling();

  // External-atom index: sorted distinct atoms, value snapshot, and the
  // occurrence CSR the drift diff walks.
  ext_atoms_.assign(ext_pool_.begin(), ext_pool_.end());
  std::sort(ext_atoms_.begin(), ext_atoms_.end());
  ext_atoms_.erase(std::unique(ext_atoms_.begin(), ext_atoms_.end()),
                   ext_atoms_.end());
  ext_vals_.resize(ext_atoms_.size());
  for (uint32_t i = 0; i < ext_atoms_.size(); ++i) {
    ext_vals_[i] = Code(global, ext_atoms_[i]);
  }
  auto ext_index = [this](AtomId a) {
    return static_cast<uint32_t>(
        std::lower_bound(ext_atoms_.begin(), ext_atoms_.end(), a) -
        ext_atoms_.begin());
  };
  ext_occ_.Reset(ext_atoms_.size());
  for (LocalRule id = 0; id < rules_.size(); ++id) {
    const ExtSpan& e = ext_spans_[id];
    for (uint32_t k = e.pos_begin; k < e.end; ++k) {
      ext_occ_.CountAt(ext_index(ext_pool_[k]));
    }
  }
  ext_occ_.FinishCounting();
  for (LocalRule id = 0; id < rules_.size(); ++id) {
    if (tick.Tick()) { AbortCompile(); return; }
    const ExtSpan& e = ext_spans_[id];
    for (uint32_t k = e.pos_begin; k < e.end; ++k) {
      ext_occ_.Fill(ext_index(ext_pool_[k]), id);
    }
  }
  ext_occ_.FinishFilling();
}

void RuleTable::RecomputeRule(LocalRule r, const TruthTape& global,
                              const std::vector<uint8_t>* disabled) {
  CompiledRule& rule = rules_[r];
  bool dead = disabled != nullptr && (*disabled)[rids_[r]] != 0;
  uint32_t undef_ext = 0;
  for (AtomId b : ExtPos(r)) {
    if (global.IsFalse(b)) dead = true;
    else if (!global.IsTrue(b)) ++undef_ext;
  }
  for (AtomId b : ExtNeg(r)) {
    if (global.IsTrue(b)) dead = true;
    else if (!global.IsFalse(b)) ++undef_ext;
  }
  uint32_t unsat = 0;
  for (LocalAtom lb : PosBody(r)) {
    AtomId g = atoms_[lb];
    if (global.IsFalse(g)) dead = true;
    else if (!global.IsTrue(g)) ++unsat;
  }
  for (LocalAtom lb : NegBody(r)) {
    AtomId g = atoms_[lb];
    if (global.IsTrue(g)) dead = true;
    else if (!global.IsFalse(g)) ++unsat;
  }
  rule.dead = dead;
  rule.undef_external = undef_ext;
  rule.unsat = unsat + undef_ext;
}

void RuleTable::RefreshSnapshots(const TruthTape& global,
                                 const std::vector<uint8_t>* disabled) {
  for (uint32_t i = 0; i < ext_atoms_.size(); ++i) {
    ext_vals_[i] = Code(global, ext_atoms_[i]);
  }
  for (LocalRule r = 0; r < rids_.size(); ++r) {
    disabled_snap_[r] = disabled != nullptr ? (*disabled)[rids_[r]] : 0;
  }
}

void RuleTable::AbortCompile() {
  aborted_ = true;
  rules_.clear();
  body_.clear();
  rids_.clear();
  ext_pool_.clear();
  ext_spans_.clear();
  disabled_snap_.clear();
  ext_atoms_.clear();
  ext_vals_.clear();
  ext_occ_.Reset(0);
  ext_occ_.FinishCounting();
  const uint32_t n = static_cast<uint32_t>(atoms_.size());
  // All-empty CSR rows: Reset + FinishCounting with no counts leaves every
  // Row() a valid empty span, so a consumer that ignores `aborted()` still
  // sees a coherent (just empty) component.
  rules_for_.Reset(n);
  rules_for_.FinishCounting();
  pos_occ_.Reset(n);
  pos_occ_.FinishCounting();
  neg_occ_.Reset(n);
  neg_occ_.FinishCounting();
}

}  // namespace gsls::solver
