#ifndef GSLS_SOLVER_UNFOUNDED_H_
#define GSLS_SOLVER_UNFOUNDED_H_

#include <cstdint>
#include <vector>

#include "obs/histogram.h"
#include "solver/rule_table.h"
#include "util/cancel.h"

namespace gsls::solver {

/// Source-pointer unfounded-set detection for one component (the
/// smodels / chuffed technique). Every atom not yet decided keeps a
/// *source*: a live rule whose internal positive body atoms are themselves
/// sourced, in an acyclic chain bottoming out at rules with no internal
/// positives. When propagation kills an atom's source, the tracker floods
/// the candidate unfounded set — the atoms whose support chains ran
/// through the loss — then resupports what it can from the surviving rules
/// and hands back the rest, which is exactly the component-local greatest
/// unfounded set with respect to the current interpretation and is
/// falsified wholesale by the caller.
class SourceTracker {
 public:
  enum class State : uint8_t {
    kSourced,    ///< has a valid source rule
    kUnsourced,  ///< lost its source; pending or mid-flood
    kTrue,       ///< decided true; permanently supported
    kFalse,      ///< decided false; out of the game
  };

  explicit SourceTracker(RuleTable* table);

  /// Assigns initial sources by a counting closure over the live rules.
  /// Atoms with no possible support at all are appended to `*unfounded`
  /// (the caller falsifies them before propagation starts).
  ///
  /// A non-null `cancel` is polled every `kCancelStride` closure steps;
  /// false means the pass aborted mid-closure. The tracker's state is then
  /// inconsistent — the caller abandons the whole component (its tape
  /// writes are rolled back by `SolveComponent`), so no recovery of the
  /// tracker itself is needed: it dies with the component solve.
  bool InitSources(std::vector<LocalAtom>* unfounded,
                   CancelCtx* cancel = nullptr);

  /// Reacts to `rule` dying: if it was some atom's source, that atom is
  /// queued for the next flood.
  void OnRuleDead(LocalRule rule);

  /// Marks `a` decided true. A true atom was derived by a rule whose body
  /// is wholly true, which can never die, so its support is permanent and
  /// it is exempt from future floods.
  void OnAtomTrue(LocalAtom a);

  /// Reverts `a` to undecided with no source — the warm-interior undo
  /// (solver/warm_component.h) popping a trail suffix. The atom is queued
  /// pending so the next `CollectUnfounded` flood either resupports it
  /// from the surviving rules or falsifies it for real.
  void OnAtomUndone(LocalAtom a);

  /// Read-only views for the warm patcher and the state auditor
  /// (check/audit.cc): the source-pointer graph they walk for liveness
  /// and acyclicity.
  State StateOf(LocalAtom a) const { return state_[a]; }
  LocalRule SourceOf(LocalAtom a) const { return source_[a]; }

  /// True if some atom lost its source since the last collection.
  bool HasPending() const { return !pending_.empty(); }

  /// Floods the candidate unfounded set from the pending source losses,
  /// resupports every candidate that still has a well-founded support
  /// chain, and appends the genuinely unfounded rest to `*unfounded`.
  ///
  /// Cancellation as in `InitSources`: the flood and resupport loops are
  /// strided-polled, false abandons the component mid-flood.
  bool CollectUnfounded(std::vector<LocalAtom>* unfounded,
                        CancelCtx* cancel = nullptr);

  /// Number of floods run (diagnostics).
  uint64_t floods() const { return floods_; }

  /// Candidate-set size of every flood run so far: the distribution behind
  /// `floods()`. Non-atomic by design — a tracker is thread-confined to
  /// its component's worker, and the caller merges this into the worker's
  /// `SolverDiagnostics::flood_sizes` at end of component.
  const obs::LocalHistogram& flood_sizes() const { return flood_sizes_; }

 private:
  void Resupport(LocalAtom a, LocalRule r);

  RuleTable* table_;
  std::vector<LocalRule> source_;  ///< per atom; kNoRule when invalid
  std::vector<State> state_;       ///< per atom
  std::vector<LocalAtom> pending_;
  uint64_t floods_ = 0;
  obs::LocalHistogram flood_sizes_;

  // Flood scratch, reused across calls.
  std::vector<LocalAtom> cand_;
  std::vector<LocalAtom> flood_stack_;
  std::vector<LocalAtom> ready_;
  std::vector<uint32_t> cand_unmet_;  ///< per rule; valid for cand heads only
};

}  // namespace gsls::solver

#endif  // GSLS_SOLVER_UNFOUNDED_H_
