#ifndef GSLS_SOLVER_WARM_COMPONENT_H_
#define GSLS_SOLVER_WARM_COMPONENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/atom_dependency_graph.h"
#include "ground/ground_program.h"
#include "solver/rule_table.h"
#include "solver/solver.h"
#include "solver/stages.h"
#include "solver/truth_tape.h"
#include "solver/unfounded.h"
#include "util/cancel.h"

namespace gsls::solver {

inline constexpr uint64_t kNoBatch = UINT64_MAX;

/// Persistent intra-component evaluation state: the warm dual of the
/// component-level change pruning `IncrementalSolver` already does. One
/// instance lives per large recursive component (keyed by its first member
/// atom) and survives across deltas, keeping
///
///   * the component's keep-all `RuleTable` (every candidate retained, so
///     mask flips and external drift are counter patches, not recompiles),
///   * the `SourceTracker` with its live source pointers, and
///   * a decision trail: every decided atom in decision order, with a
///     monotone batch stamp and, for true atoms, the rule that fired it.
///
/// A delta then re-solves the component by *patching*: classify the drift
/// against the table's snapshots, undo the smallest trail suffix whose
/// justifications the drift invalidated, seed the unfounded flood from
/// exactly the undone atoms and killed rules, and resume the alternating
/// fixpoint — instead of a cold compile + `InitSources` over the whole
/// component.
///
/// Soundness rests on two invariants, both audited (`AuditInvariants`,
/// called from `check::SolverAuditor`):
///
///   * Justification monotonicity: the batch of every atom justifying a
///     decision (the firing rule's satisfied body for a true atom; the
///     dead rules' false witnesses for a false atom) is strictly smaller
///     than the decision's own batch, and one flood's falsifications share
///     one batch (they are mutually justified — a partial flood undo would
///     be unsound). Undoing a *suffix* of the trail by batch therefore
///     leaves every survivor fully justified, and the alternating fixpoint
///     restarted from that sound under-approximation converges to the same
///     well-founded model a cold solve computes.
///   * Warm state is provably consistent or discarded: the owner re-binds
///     an entry only after `BindingValid` (same atom sequence, same
///     candidate rule count, tape consistent with the tracker) and throws
///     the entry away on any abort or recondensation touching it.
class WarmComponent {
 public:
  /// Whether `comp` should carry warm state at all: recursive and at least
  /// `warm_min_atoms` atoms (0 disables). Depends only on component shape,
  /// never on the schedule, so warm/cold decisions are identical at every
  /// thread count.
  static bool Eligible(const AtomDependencyGraph& graph, uint32_t comp,
                       uint32_t warm_min_atoms) {
    return warm_min_atoms != 0 && graph.IsRecursive(comp) &&
           graph.Atoms(comp).size() >= warm_min_atoms;
  }

  /// Cold-compiles the keep-all table and runs the full alternating
  /// fixpoint with trail recording — `SolveComponent`'s contract (entry
  /// checkpoint, all atoms undefined on entry, tape reset to undefined on
  /// abort), producing the same values and stages plus a reusable warm
  /// state. False iff the pass aborted; the instance is then inconsistent
  /// and must be discarded.
  bool SolveFromScratch(const GroundProgram& gp,
                        const AtomDependencyGraph& graph, uint32_t comp,
                        const std::vector<uint8_t>* disabled,
                        TruthTape* values, StageTape* stages,
                        SolverDiagnostics* diag, CancelCtx* cancel);

  /// True iff this warm state still describes component `comp`: identical
  /// atom sequence (a recondensation that reordered or re-grouped members
  /// invalidates the local ids), identical candidate-rule count (rules are
  /// only ever appended to `gp`, so count equality means no new rule
  /// targets this component — mask flips of retained rules stay patchable),
  /// and a tape consistent with the tracker state (guards against
  /// out-of-band solves having rewritten the component's bytes).
  bool BindingValid(const GroundProgram& gp, const AtomDependencyGraph& graph,
                    uint32_t comp, const TruthTape& values) const;

  /// Warm re-solve: patch, undo, seed, resume (see class comment). On
  /// entry the tape holds the previous quiescent model for this component
  /// and final post-delta values for every lower component; `disabled` is
  /// the post-delta mask. False iff the pass aborted — the tape may hold
  /// partial writes (the caller restores its snapshot) and the instance
  /// must be discarded.
  bool Resolve(const GroundProgram& gp, const AtomDependencyGraph& graph,
               uint32_t comp, const std::vector<uint8_t>* disabled,
               TruthTape* values, StageTape* stages, SolverDiagnostics* diag,
               CancelCtx* cancel);

  /// Deep consistency check of the persisted state against the live tape
  /// and mask, for `check::SolverAuditor`: tracker/tape agreement, source
  /// pointers live and acyclic, live-rule counters equal to a from-scratch
  /// recount, snapshots reconciled, trail batches monotone with every
  /// decision justified. Returns false and sets `*why` (when non-null) to
  /// a one-line reason on the first violation.
  bool AuditInvariants(const GroundProgram& gp,
                       const AtomDependencyGraph& graph, uint32_t comp,
                       const std::vector<uint8_t>* disabled,
                       const TruthTape& values, std::string* why) const;

  size_t atom_count() const { return atoms_.size(); }
  uint64_t resolves() const { return resolves_; }

 private:
  void RecordTrue(LocalAtom a, LocalRule r, TruthTape* values);
  void RecordFalse(LocalAtom a, uint64_t batch, TruthTape* values);
  void Kill(LocalRule r);
  bool Propagate(TruthTape* values, CancelCtx* cancel);
  /// The shared alternating loop (lfp propagation x unfounded floods),
  /// from whatever queues/pending are seeded. False on abort.
  bool RunToFixpoint(TruthTape* values, SolverDiagnostics* diag,
                     CancelCtx* cancel);

  std::unique_ptr<RuleTable> table_;     ///< keep-all compile
  std::unique_ptr<SourceTracker> support_;
  std::vector<AtomId> atoms_;            ///< binding: the compiled sequence
  size_t candidate_count_ = 0;           ///< binding: gp rule count then

  std::vector<LocalAtom> trail_;         ///< decided atoms, decision order
  std::vector<uint64_t> batch_;          ///< per atom; kNoBatch if undecided
  std::vector<LocalRule> firing_;        ///< per atom; rule that fired it
  uint64_t next_batch_ = 0;
  uint64_t resolves_ = 0;

  // Solve/patch scratch, reused across calls.
  std::vector<LocalAtom> true_queue_;
  std::vector<LocalAtom> false_queue_;
  std::vector<LocalAtom> unfounded_;
  std::vector<LocalRule> recomputed_;    ///< rules patched this resolve
  std::vector<uint32_t> rule_stamp_;     ///< dedup epoch per rule
  uint32_t stamp_ = 0;
};

}  // namespace gsls::solver

#endif  // GSLS_SOLVER_WARM_COMPONENT_H_
