#include "solver/component_memo.h"

#include <algorithm>

#include "util/strings.h"

namespace gsls::solver {

std::string ComponentMemo::Stats::ToString() const {
  return StrCat("hits=", hits, " misses=", misses,
                " invalidations=", invalidations);
}

void ComponentMemo::ApplyRepair(const CondensationRepair& rep,
                                uint32_t new_component_count) {
  if (!rep.recondensed) {
    for (uint32_t c : rep.dirty) Invalidate(c);
    return;
  }
  // The repair renumbered ids: below the window verbatim, the window
  // translated through `old_to_new` when the repair produced a total map
  // (insertions: merges and pure permutations — membership of a non-dirty
  // window member is unchanged, so its tape bytes are still final and its
  // validity rides along to the new id; a merged target carries validity
  // only if every source did, and is in `rep.dirty` anyway), dropped
  // wholesale otherwise (splits fan out and have no map), above the
  // window shifted by the size delta.
  std::vector<uint8_t> valid(new_component_count, 0);
  std::vector<uint64_t> stamp(new_component_count, 0);
  const uint32_t lo = rep.window_lo;
  for (uint32_t c = 0; c < lo && c < valid_.size(); ++c) {
    valid[c] = valid_[c];
    stamp[c] = stamp_[c];
  }
  if (!rep.split() && rep.old_to_new.size() == rep.old_window_size) {
    std::vector<uint8_t> seen(rep.new_window_size, 0);
    for (uint32_t i = 0;
         i < rep.old_window_size && lo + i < valid_.size(); ++i) {
      const uint32_t nc = rep.old_to_new[i];
      if (nc == UINT32_MAX || nc < lo || nc >= lo + rep.new_window_size) {
        continue;
      }
      if (!seen[nc - lo]) {
        seen[nc - lo] = 1;
        valid[nc] = valid_[lo + i];
        stamp[nc] = stamp_[lo + i];
      } else {
        valid[nc] &= valid_[lo + i];
        stamp[nc] = std::min(stamp[nc], stamp_[lo + i]);
      }
    }
  }
  const int64_t shift = rep.id_shift();
  for (uint32_t c = lo + rep.old_window_size; c < valid_.size(); ++c) {
    const int64_t nc = static_cast<int64_t>(c) + shift;
    valid[nc] = valid_[c];
    stamp[nc] = stamp_[c];
  }
  uint32_t invalid = 0;
  for (uint32_t c = 0; c < new_component_count; ++c) {
    if (valid[c] == 0) ++invalid;
  }
  stats_.invalidations +=
      (size() - invalid_count_) > (new_component_count - invalid)
          ? (size() - invalid_count_) - (new_component_count - invalid)
          : 0;
  valid_ = std::move(valid);
  stamp_ = std::move(stamp);
  invalid_count_ = invalid;
  ++epoch_;
  for (uint32_t c : rep.dirty) Invalidate(c);
}

}  // namespace gsls::solver
