#ifndef GSLS_SOLVER_COMPONENT_EVAL_H_
#define GSLS_SOLVER_COMPONENT_EVAL_H_

#include <cstdint>
#include <vector>

#include "analysis/atom_dependency_graph.h"
#include "ground/ground_program.h"
#include "solver/solver.h"
#include "solver/stages.h"
#include "solver/truth_tape.h"
#include "util/cancel.h"

namespace gsls::solver {

/// The per-component evaluation primitives of `SolveWfs`, factored out so
/// the full solver, the delta-driven `IncrementalSolver`, and the parallel
/// scheduler (solver/parallel.h) run the exact same machinery. Every entry
/// point takes an optional `disabled` mask (one byte per `RuleId`; nonzero
/// = the rule does not exist for this solve), which is how retracted facts
/// are hidden without rebuilding the `GroundProgram`.
///
/// All evaluation reads and writes a `TruthTape` — the flat byte-per-atom
/// model store — rather than the bit-packed `Interpretation`: one load per
/// atom on the hot path, and disjoint components touch disjoint bytes, so
/// workers finalizing different components never share a memory location.

/// Direct 3-valued evaluation of a non-recursive atom: every body literal
/// refers to a lower component, so its value is final, and the atom is
/// just the disjunction of its rules' body conjunctions. O(rules) with no
/// fixpoint machinery — this is the hot path on stratified chains.
TruthValue EvalNonRecursiveAtom(const GroundProgram& gp, AtomId atom,
                                const TruthTape& values,
                                const std::vector<uint8_t>* disabled,
                                uint64_t* rules_visited);

/// Drives one recursive component to its local well-founded fixpoint:
/// watched-counter truth propagation alternating with source-pointer
/// unfounded-set floods, writing decided atoms straight into `*values`.
/// Undecided atoms at quiescence are undefined. Every atom of the
/// component must be undefined in `*values` on entry; lower components
/// must be final.
///
/// With a non-null `cancel`, the propagation and flood loops poll it every
/// `kCancelStride` steps; false means the solve aborted mid-component and
/// the tape may hold partial writes for this component's atoms — the
/// caller must restore them (which `SolveComponent` does).
bool SolveRecursiveComponent(const GroundProgram& gp,
                             const AtomDependencyGraph& graph, uint32_t comp,
                             const std::vector<uint8_t>* disabled,
                             TruthTape* values, SolverDiagnostics* diag,
                             CancelCtx* cancel = nullptr);

/// Solves component `comp` into `*values` (dispatching on
/// `graph.IsRecursive`), assuming its atoms are undefined and all lower
/// components final. The single-component step shared by `SolveWfs`, the
/// incremental up-cone re-solve, and the parallel scheduler's workers
/// (each worker passes its own private `diag`; see
/// `SolverDiagnostics::MergeFrom`).
///
/// When `stages` is non-null, the component's global V_P stage levels are
/// reconstructed into it right after its values finalize
/// (`ReconstructComponentStages`, solver/stages.h) — which requires the
/// stages of every lower component to be final in `*stages`, the exact
/// invariant the dependency-order (and DAG-release) schedules already
/// guarantee for the values. Null skips every levels cost.
///
/// A non-null `cancel` is polled once at entry (this is the uniform
/// component-boundary checkpoint of every schedule) and strided inside the
/// recursive loops. Returns false iff the pass aborted before this
/// component finalized; the component's tape (and stage) entries are then
/// exactly as on entry — all-undefined — so the abort invariant "fully old
/// or fully new" reduces to the caller restoring its own snapshot (the
/// delta path) or nothing at all (the from-scratch path).
bool SolveComponent(const GroundProgram& gp, const AtomDependencyGraph& graph,
                    uint32_t comp, const std::vector<uint8_t>* disabled,
                    TruthTape* values, StageTape* stages,
                    SolverDiagnostics* diag, CancelCtx* cancel = nullptr);

/// Sequential SCC-stratified solve over an already-built condensation:
/// every component in dependency order, into `*values` (which is re-sized
/// and reset to all-undefined), with V_P stages into `*stages` when
/// non-null (re-sized and reset likewise). The deterministic single-thread
/// schedule.
///
/// Returns the first component left unsolved — `graph.component_count()`
/// on a completed pass. A non-null `cancel` can abort between (and inside)
/// components; components at or above the returned index keep their
/// all-undefined reset state.
uint32_t SolveAllComponentsInto(const GroundProgram& gp,
                                const AtomDependencyGraph& graph,
                                const std::vector<uint8_t>* disabled,
                                TruthTape* values, StageTape* stages,
                                SolverDiagnostics* diag,
                                CancelCtx* cancel = nullptr);

/// `SolveAllComponentsInto` plus conversion of the tape into the public
/// `WfsModel` (including `WfsModel::outcome` when `cancel` is attached).
/// `SolveWfs` is this plus graph construction; `IncrementalSolver` calls
/// it for `SolveFresh` baselines.
WfsModel SolveAllComponents(const GroundProgram& gp,
                            const AtomDependencyGraph& graph,
                            const std::vector<uint8_t>* disabled,
                            bool compute_levels, SolverDiagnostics* diag,
                            CancelCtx* cancel = nullptr);

}  // namespace gsls::solver

#endif  // GSLS_SOLVER_COMPONENT_EVAL_H_
