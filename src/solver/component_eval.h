#ifndef GSLS_SOLVER_COMPONENT_EVAL_H_
#define GSLS_SOLVER_COMPONENT_EVAL_H_

#include <cstdint>
#include <vector>

#include "analysis/atom_dependency_graph.h"
#include "ground/ground_program.h"
#include "solver/solver.h"
#include "wfs/interpretation.h"

namespace gsls::solver {

/// The per-component evaluation primitives of `SolveWfs`, factored out so
/// the full solver and the delta-driven `IncrementalSolver` run the exact
/// same machinery. Every entry point takes an optional `disabled` mask
/// (one byte per `RuleId`; nonzero = the rule does not exist for this
/// solve), which is how retracted facts are hidden without rebuilding the
/// `GroundProgram`.

/// Direct 3-valued evaluation of a non-recursive atom: every body literal
/// refers to a lower component, so its value is final, and the atom is
/// just the disjunction of its rules' body conjunctions. O(rules) with no
/// fixpoint machinery — this is the hot path on stratified chains.
TruthValue EvalNonRecursiveAtom(const GroundProgram& gp, AtomId atom,
                                const Interpretation& interp,
                                const std::vector<uint8_t>* disabled,
                                uint64_t* rules_visited);

/// Drives one recursive component to its local well-founded fixpoint:
/// watched-counter truth propagation alternating with source-pointer
/// unfounded-set floods, writing decided atoms straight into `*global`.
/// Undecided atoms at quiescence are undefined. Every atom of the
/// component must be undefined in `*global` on entry; lower components
/// must be final.
void SolveRecursiveComponent(const GroundProgram& gp,
                             const AtomDependencyGraph& graph, uint32_t comp,
                             const std::vector<uint8_t>* disabled,
                             Interpretation* global, SolverDiagnostics* diag);

/// Solves component `comp` into `*global` (dispatching on
/// `graph.IsRecursive`), assuming its atoms are undefined and all lower
/// components final. The single-component step shared by `SolveWfs` and
/// the incremental up-cone re-solve.
void SolveComponent(const GroundProgram& gp, const AtomDependencyGraph& graph,
                    uint32_t comp, const std::vector<uint8_t>* disabled,
                    Interpretation* global, SolverDiagnostics* diag);

/// Full SCC-stratified solve over an already-built condensation: every
/// component in dependency order. `SolveWfs` is this plus graph
/// construction; `IncrementalSolver` calls it for the initial solve and
/// for `SolveFresh` baselines.
WfsModel SolveAllComponents(const GroundProgram& gp,
                            const AtomDependencyGraph& graph,
                            const std::vector<uint8_t>* disabled,
                            SolverDiagnostics* diag);

}  // namespace gsls::solver

#endif  // GSLS_SOLVER_COMPONENT_EVAL_H_
