#include "solver/unfounded.h"

#include <cassert>

namespace gsls::solver {

SourceTracker::SourceTracker(RuleTable* table) : table_(table) {
  source_.assign(table_->atom_count(), kNoRule);
  state_.assign(table_->atom_count(), State::kUnsourced);
  cand_unmet_.assign(table_->rule_count(), 0);
}

bool SourceTracker::InitSources(std::vector<LocalAtom>* unfounded,
                                CancelCtx* cancel) {
  // Counting closure over all (live) rules: an atom is supportable when
  // some rule for it has every internal positive body atom already
  // supportable. The completing rule becomes the source; assignment in
  // closure order keeps the source chains acyclic.
  StridedCheckpoint tick(cancel);
  // Dead rules cannot support. The default compile drops suppressed rules
  // and starts every survivor live, so the check is vacuous there; a
  // keep-all table (solver/warm_component.h) retains disabled and
  // suppressed rules with `dead` set, and they must not source anything.
  for (LocalRule r = 0; r < table_->rule_count(); ++r) {
    cand_unmet_[r] = static_cast<uint32_t>(table_->PosBody(r).size());
  }
  ready_.clear();
  for (LocalRule r = 0; r < table_->rule_count(); ++r) {
    if (table_->rule(r).dead || cand_unmet_[r] != 0) continue;
    LocalAtom head = table_->rule(r).head;
    if (state_[head] == State::kUnsourced) {
      Resupport(head, r);
      ready_.push_back(head);
    }
  }
  size_t qi = 0;
  while (qi < ready_.size()) {
    if (tick.Tick()) return false;
    LocalAtom a = ready_[qi++];
    for (LocalRule r : table_->PositiveOccurrences(a)) {
      if (table_->rule(r).dead) continue;
      if (cand_unmet_[r] == 0 || --cand_unmet_[r] != 0) continue;
      LocalAtom head = table_->rule(r).head;
      if (state_[head] == State::kUnsourced) {
        Resupport(head, r);
        ready_.push_back(head);
      }
    }
  }
  for (LocalAtom a = 0; a < table_->atom_count(); ++a) {
    if (state_[a] == State::kUnsourced) {
      state_[a] = State::kFalse;
      unfounded->push_back(a);
    }
  }
  return true;
}

void SourceTracker::OnRuleDead(LocalRule rule) {
  LocalAtom head = table_->rule(rule).head;
  if (state_[head] != State::kSourced || source_[head] != rule) return;
  source_[head] = kNoRule;
  state_[head] = State::kUnsourced;
  pending_.push_back(head);
}

void SourceTracker::OnAtomTrue(LocalAtom a) {
  assert(state_[a] != State::kFalse);
  state_[a] = State::kTrue;
}

void SourceTracker::OnAtomUndone(LocalAtom a) {
  // `OnAtomTrue` leaves `source_` holding whatever rule last sourced the
  // atom before it was decided — stale by now — so an undo must clear it
  // explicitly, not just flip the state byte.
  source_[a] = kNoRule;
  state_[a] = State::kUnsourced;
  pending_.push_back(a);
}

void SourceTracker::Resupport(LocalAtom a, LocalRule r) {
  source_[a] = r;
  state_[a] = State::kSourced;
}

bool SourceTracker::CollectUnfounded(std::vector<LocalAtom>* unfounded,
                                     CancelCtx* cancel) {
  ++floods_;
  StridedCheckpoint tick(cancel);

  // Phase 1: flood the candidate set — every atom whose support chain runs
  // through a lost source. Atoms decided true meanwhile are exempt.
  cand_.clear();
  flood_stack_.clear();
  for (LocalAtom a : pending_) {
    if (state_[a] == State::kUnsourced) flood_stack_.push_back(a);
  }
  pending_.clear();
  while (!flood_stack_.empty()) {
    if (tick.Tick()) return false;
    LocalAtom a = flood_stack_.back();
    flood_stack_.pop_back();
    cand_.push_back(a);
    for (LocalRule r : table_->PositiveOccurrences(a)) {
      LocalAtom head = table_->rule(r).head;
      if (state_[head] == State::kSourced && source_[head] == r) {
        source_[head] = kNoRule;
        state_[head] = State::kUnsourced;
        flood_stack_.push_back(head);
      }
    }
  }

  flood_sizes_.Record(cand_.size());

  // Phase 2: resupport by a counting closure restricted to the candidates.
  // Counts are computed against the frozen candidate set first (no
  // candidate is resupported until every count exists), so the later
  // decrements are exact.
  for (LocalAtom a : cand_) {
    for (LocalRule r : table_->RulesFor(a)) {
      if (table_->rule(r).dead) continue;
      uint32_t unmet = 0;
      for (LocalAtom b : table_->PosBody(r)) {
        if (state_[b] == State::kUnsourced) ++unmet;
      }
      cand_unmet_[r] = unmet;
    }
  }
  ready_.clear();
  for (LocalAtom a : cand_) {
    if (state_[a] != State::kUnsourced) continue;
    for (LocalRule r : table_->RulesFor(a)) {
      if (table_->rule(r).dead || cand_unmet_[r] != 0) continue;
      Resupport(a, r);
      ready_.push_back(a);
      break;
    }
  }
  size_t qi = 0;
  while (qi < ready_.size()) {
    if (tick.Tick()) return false;
    LocalAtom b = ready_[qi++];
    for (LocalRule r : table_->PositiveOccurrences(b)) {
      if (table_->rule(r).dead) continue;
      LocalAtom head = table_->rule(r).head;
      // Heads outside the candidate set are sourced or decided; their
      // counters were never initialized and must not be touched.
      if (state_[head] != State::kUnsourced) continue;
      if (cand_unmet_[r] == 0 || --cand_unmet_[r] != 0) continue;
      Resupport(head, r);
      ready_.push_back(head);
    }
  }

  // Phase 3: what could not be resupported is unfounded — falsified
  // wholesale by the caller.
  for (LocalAtom a : cand_) {
    if (state_[a] == State::kUnsourced) {
      state_[a] = State::kFalse;
      unfounded->push_back(a);
    }
  }
  return true;
}

}  // namespace gsls::solver
