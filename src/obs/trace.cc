#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iomanip>

#include "util/strings.h"

namespace gsls::obs {

namespace {

/// Fixed-point microseconds with 3 decimals ("12.007"), the timestamp
/// format the trace viewers expect.
void WriteMicros(std::ostream& os, uint64_t ns) {
  os << ns / 1000 << '.' << std::setw(3) << std::setfill('0') << ns % 1000
     << std::setfill(' ');
}

}  // namespace

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();  // never destroyed
  return *recorder;
}

void TraceRecorder::Enable(size_t ring_capacity) {
  ring_capacity_.store(std::max<size_t>(ring_capacity, 16),
                       std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lk(rings_mu_);
  for (auto& ring : rings_) ring->next = 0;
}

TraceRecorder::Ring& TraceRecorder::CurrentRing() {
  // Cached per thread; the recorder is the never-destroyed process
  // singleton, so the pointer cannot dangle, and a ring outlives its
  // thread (a dead worker's events stay exportable).
  static thread_local Ring* tl_ring = nullptr;
  if (tl_ring == nullptr) {
    std::lock_guard<std::mutex> lk(rings_mu_);
    rings_.push_back(std::make_unique<Ring>(
        ring_capacity_.load(std::memory_order_relaxed),
        static_cast<uint32_t>(rings_.size())));
    tl_ring = rings_.back().get();
  }
  return *tl_ring;
}

void TraceRecorder::RecordSpan(const char* name, uint64_t id,
                               uint64_t start_ns, uint64_t dur_ns) {
  Ring& ring = CurrentRing();
  TraceEvent& e = ring.events[ring.next % ring.events.size()];
  e.name = name;
  e.id = id;
  e.start_ns = start_ns;
  e.dur_ns = dur_ns;
  e.instant = false;
  ++ring.next;
}

void TraceRecorder::RecordInstant(const char* name, uint64_t id) {
  Ring& ring = CurrentRing();
  TraceEvent& e = ring.events[ring.next % ring.events.size()];
  e.name = name;
  e.id = id;
  e.start_ns = NowNs();
  e.dur_ns = 0;
  e.instant = true;
  ++ring.next;
}

void TraceRecorder::SetCurrentThreadName(std::string name) {
  Ring& ring = CurrentRing();
  std::lock_guard<std::mutex> lk(rings_mu_);
  ring.name = std::move(name);
}

size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lk(rings_mu_);
  size_t n = 0;
  for (const auto& ring : rings_) {
    n += std::min(ring->next, ring->events.size());
  }
  return n;
}

uint64_t TraceRecorder::dropped_count() const {
  std::lock_guard<std::mutex> lk(rings_mu_);
  uint64_t n = 0;
  for (const auto& ring : rings_) {
    if (ring->next > ring->events.size()) {
      n += ring->next - ring->events.size();
    }
  }
  return n;
}

void TraceRecorder::WriteChromeTrace(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(rings_mu_);
  // Rebase timestamps to the earliest buffered event so the viewer opens
  // at t=0 instead of hours of steady-clock uptime.
  uint64_t t0 = UINT64_MAX;
  for (const auto& ring : rings_) {
    size_t n = std::min(ring->next, ring->events.size());
    for (size_t i = 0; i < n; ++i) {
      t0 = std::min(t0, ring->events[i].start_ns);
    }
  }
  if (t0 == UINT64_MAX) t0 = 0;

  os << "{\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) os << ',';
    first = false;
  };
  for (const auto& ring : rings_) {
    std::string name =
        ring->name.empty() ? StrCat("thread-", ring->tid) : ring->name;
    comma();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << ring->tid << ",\"args\":{\"name\":\"" << name << "\"}}";
    size_t n = std::min(ring->next, ring->events.size());
    // Oldest-first within the ring: after wraparound the oldest surviving
    // slot is `next % capacity`.
    size_t begin = ring->next > ring->events.size()
                       ? ring->next % ring->events.size()
                       : 0;
    for (size_t i = 0; i < n; ++i) {
      const TraceEvent& e = ring->events[(begin + i) % ring->events.size()];
      comma();
      // Microsecond fixed-point with 3 decimals, as the viewers expect.
      os << "{\"name\":\"" << e.name << "\",\"ph\":\""
         << (e.instant ? 'i' : 'X') << "\",\"pid\":1,\"tid\":" << ring->tid
         << ",\"ts\":";
      WriteMicros(os, e.start_ns - t0);
      if (e.instant) {
        os << ",\"s\":\"t\"";
      } else {
        os << ",\"dur\":";
        WriteMicros(os, e.dur_ns);
      }
      os << ",\"args\":{\"id\":" << e.id << "}}";
    }
  }
  os << "]}";
}

bool TraceRecorder::WriteChromeTraceFile(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  WriteChromeTrace(f);
  return static_cast<bool>(f);
}

TraceFlagGuard::TraceFlagGuard(int* argc, char** argv) {
  constexpr const char* kFlag = "--trace=";
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      path_ = argv[i] + std::strlen(kFlag);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  if (!path_.empty()) TraceRecorder::Global().Enable();
}

TraceFlagGuard::~TraceFlagGuard() {
  if (path_.empty()) return;
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Disable();
  if (rec.WriteChromeTraceFile(path_)) {
    std::fprintf(stderr, "trace: wrote %zu events to %s (%llu dropped)\n",
                 rec.event_count(), path_.c_str(),
                 static_cast<unsigned long long>(rec.dropped_count()));
  } else {
    std::fprintf(stderr, "trace: FAILED to write %s\n", path_.c_str());
  }
}

}  // namespace gsls::obs
