#ifndef GSLS_OBS_HISTOGRAM_H_
#define GSLS_OBS_HISTOGRAM_H_

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

namespace gsls::obs {

/// Bucketing shared by `LocalHistogram` (plain, mergeable) and the
/// registry's atomic `Histogram`: fixed power-of-two buckets, so recording
/// is one `bit_width` plus one increment and two histograms merge by adding
/// buckets — no per-sample storage, no allocation, bounded error. Bucket
/// `b` holds the values of bit width `b` (bucket 0 holds exactly 0; bucket
/// `b >= 1` holds [2^(b-1), 2^b - 1]); values past the last bucket clamp
/// into it. 40 buckets cover [0, 2^39), enough for microsecond latencies
/// of ~6 days and any structural count this solver can produce.
inline constexpr uint32_t kHistogramBuckets = 40;

inline constexpr uint32_t HistogramBucketOf(uint64_t v) {
  uint32_t b = static_cast<uint32_t>(std::bit_width(v));
  return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
}

/// Inclusive upper bound of bucket `b` (0 for bucket 0).
inline constexpr uint64_t HistogramBucketUpper(uint32_t b) {
  return b == 0 ? 0 : (uint64_t{1} << b) - 1;
}

/// A fixed-bucket latency/size histogram without atomics: the per-worker
/// accumulation type (embedded in `SolverDiagnostics`), merged at the
/// scheduler's barrier exactly like the plain counters around it, and the
/// snapshot type percentile extraction runs on. POD-like on purpose —
/// value-copyable, zero-initialized by `{}`.
struct LocalHistogram {
  uint64_t buckets[kHistogramBuckets] = {};
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  ///< meaningful only when count > 0
  uint64_t max = 0;

  void Record(uint64_t v) {
    ++buckets[HistogramBucketOf(v)];
    ++count;
    sum += v;
    min = count == 1 ? v : std::min(min, v);
    max = std::max(max, v);
  }

  void MergeFrom(const LocalHistogram& other) {
    if (other.count == 0) return;
    for (uint32_t b = 0; b < kHistogramBuckets; ++b) {
      buckets[b] += other.buckets[b];
    }
    min = count == 0 ? other.min : std::min(min, other.min);
    max = std::max(max, other.max);
    count += other.count;
    sum += other.sum;
  }

  /// The `p`-th percentile (p in [0, 100]): the upper bound of the bucket
  /// holding the sample of rank ceil(p/100 * count), clamped into
  /// [min, max] so an empty histogram reports 0, a single sample reports
  /// itself exactly, and no percentile exceeds an observed value. Within a
  /// populated bucket the answer is exact up to the bucket's factor-of-two
  /// width.
  uint64_t Percentile(double p) const {
    if (count == 0) return 0;
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(count)));
    rank = std::max<uint64_t>(1, std::min(rank, count));
    uint64_t seen = 0;
    for (uint32_t b = 0; b < kHistogramBuckets; ++b) {
      seen += buckets[b];
      if (seen >= rank) {
        return std::clamp(HistogramBucketUpper(b), min, max);
      }
    }
    return max;
  }

  uint64_t p50() const { return Percentile(50); }
  uint64_t p90() const { return Percentile(90); }
  uint64_t p99() const { return Percentile(99); }
  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

}  // namespace gsls::obs

#endif  // GSLS_OBS_HISTOGRAM_H_
