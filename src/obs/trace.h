#ifndef GSLS_OBS_TRACE_H_
#define GSLS_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace gsls::obs {

/// Monotonic nanoseconds (steady clock) — the trace timebase.
inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One completed span or instant in a thread's ring. `name` must be a
/// string with static storage duration (the macro sites pass literals);
/// the ring stores the pointer, never a copy.
struct TraceEvent {
  const char* name = nullptr;
  uint64_t id = 0;        ///< component id, delta number, ... (args.id)
  uint64_t start_ns = 0;  ///< NowNs() at open
  uint64_t dur_ns = 0;    ///< 0 for instant events
  bool instant = false;
};

/// Scoped tracing with per-thread ring buffers, exported as Chrome
/// trace-event JSON (`chrome://tracing` / https://ui.perfetto.dev): each
/// registered thread renders as its own timeline row, so a parallel solve
/// shows per-worker component spans, idle gaps, and steal instants.
///
/// Process-global by design (`TraceRecorder::Global()`): instrumentation
/// points sit in hot solver loops that cannot carry a recorder pointer,
/// and span guards must find their sink in O(1) from any thread. Gated
/// twice — at compile time (`GSLS_OBS_NO_TRACE` turns every `GSLS_TRACE_*`
/// macro into a no-op, for builds that want provably zero cost) and at
/// runtime (`Enable`/`Disable`; disabled, a span guard is one relaxed
/// atomic load and a predictable branch).
///
/// Writes are thread-affine and wait-free: each thread owns a fixed-size
/// ring (oldest events overwritten once full — recent history wins) and
/// only registration takes a lock, once per thread. Export is meant for
/// quiescence (after a solve / pool barrier, which establishes the needed
/// happens-before); exporting while writers are active yields a torn but
/// memory-safe trace.
class TraceRecorder {
 public:
  static TraceRecorder& Global();

  /// Enables recording. `ring_capacity` is per thread, in events, applied
  /// to rings created after the call (existing rings keep their size).
  void Enable(size_t ring_capacity = kDefaultRingCapacity);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops all buffered events (rings stay registered).
  void Clear();

  void RecordSpan(const char* name, uint64_t id, uint64_t start_ns,
                  uint64_t dur_ns);
  void RecordInstant(const char* name, uint64_t id);

  /// Names the calling thread's timeline row ("worker-3"); defaults to
  /// "thread-<tid>".
  void SetCurrentThreadName(std::string name);

  /// Buffered events across all rings (dropped-by-wraparound excluded).
  size_t event_count() const;
  /// Events lost to ring wraparound across all rings.
  uint64_t dropped_count() const;

  /// Chrome trace-event JSON: `{"traceEvents":[...]}` with complete ("X")
  /// spans and instant ("i") events, timestamps in microseconds rebased to
  /// the earliest buffered event. Call at quiescence.
  void WriteChromeTrace(std::ostream& os) const;
  /// As above into `path`; returns false when the file cannot be written.
  bool WriteChromeTraceFile(const std::string& path) const;

  static constexpr size_t kDefaultRingCapacity = 1 << 15;

 private:
  struct Ring {
    explicit Ring(size_t capacity, uint32_t tid)
        : events(capacity), tid(tid) {}
    std::vector<TraceEvent> events;
    size_t next = 0;  ///< monotone; slot = next % capacity
    uint32_t tid;
    std::string name;
  };

  TraceRecorder() = default;
  Ring& CurrentRing();

  std::atomic<bool> enabled_{false};
  std::atomic<size_t> ring_capacity_{kDefaultRingCapacity};
  mutable std::mutex rings_mu_;  ///< registration and export only
  std::vector<std::unique_ptr<Ring>> rings_;
};

/// RAII span guard: opens on construction (when tracing is enabled),
/// records a complete event on destruction. Cheap enough to put around
/// every component solve; free (one load + branch) when disabled.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, uint64_t id = 0) {
    if (TraceRecorder::Global().enabled()) {
      name_ = name;
      id_ = id;
      start_ = NowNs();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      TraceRecorder::Global().RecordSpan(name_, id_, start_,
                                         NowNs() - start_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t id_ = 0;
  uint64_t start_ = 0;
};

/// Strips `--trace=FILE` from a bench main's argv (before
/// `benchmark::Initialize` rejects it), enables the global recorder when
/// present, and writes the Chrome trace to FILE on destruction — every
/// `bench_*` binary wraps its main in one of these, so any bench run can
/// emit a trace artifact.
class TraceFlagGuard {
 public:
  TraceFlagGuard(int* argc, char** argv);
  ~TraceFlagGuard();
  TraceFlagGuard(const TraceFlagGuard&) = delete;
  TraceFlagGuard& operator=(const TraceFlagGuard&) = delete;

  bool active() const { return !path_.empty(); }

 private:
  std::string path_;
};

// Span macros: compiled out entirely under GSLS_OBS_NO_TRACE, otherwise a
// runtime-gated RAII guard. The name must be a string literal.
#ifndef GSLS_OBS_NO_TRACE
#define GSLS_TRACE_CONCAT_(a, b) a##b
#define GSLS_TRACE_CONCAT(a, b) GSLS_TRACE_CONCAT_(a, b)
#define GSLS_TRACE_SPAN(name, id)                 \
  ::gsls::obs::TraceSpan GSLS_TRACE_CONCAT(       \
      gsls_trace_span_, __COUNTER__)((name), (id))
#define GSLS_TRACE_INSTANT(name, id)                                   \
  do {                                                                 \
    if (::gsls::obs::TraceRecorder::Global().enabled()) {              \
      ::gsls::obs::TraceRecorder::Global().RecordInstant((name), (id)); \
    }                                                                  \
  } while (false)
#else
#define GSLS_TRACE_SPAN(name, id) ((void)0)
#define GSLS_TRACE_INSTANT(name, id) ((void)0)
#endif

}  // namespace gsls::obs

#endif  // GSLS_OBS_TRACE_H_
