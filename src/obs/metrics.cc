#include "obs/metrics.h"

#include <iomanip>

namespace gsls::obs {

void Histogram::Record(uint64_t v) {
  buckets_[HistogramBucketOf(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void Histogram::MergeFrom(const LocalHistogram& other) {
  if (other.count == 0) return;
  for (uint32_t b = 0; b < kHistogramBuckets; ++b) {
    if (other.buckets[b] != 0) {
      buckets_[b].fetch_add(other.buckets[b], std::memory_order_relaxed);
    }
  }
  count_.fetch_add(other.count, std::memory_order_relaxed);
  sum_.fetch_add(other.sum, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (other.min < cur && !min_.compare_exchange_weak(
                                cur, other.min, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (other.max > cur && !max_.compare_exchange_weak(
                                cur, other.max, std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

LocalHistogram Histogram::Snapshot() const {
  LocalHistogram out;
  for (uint32_t b = 0; b < kHistogramBuckets; ++b) {
    out.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  uint64_t mn = min_.load(std::memory_order_relaxed);
  out.min = mn == UINT64_MAX ? 0 : mn;
  out.max = max_.load(std::memory_order_relaxed);
  return out;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = hists_.find(name);
  if (it == hists_.end()) {
    it = hists_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

namespace {

/// Minimal JSON string escaping (names are ASCII identifiers in practice,
/// but the exporter must never emit malformed JSON regardless).
void WriteJsonString(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << std::hex << std::setw(2) << std::setfill('0')
             << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void MetricsRegistry::WriteJson(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(mu_);
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ',';
    first = false;
    WriteJsonString(os, name);
    os << ':' << c->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ',';
    first = false;
    WriteJsonString(os, name);
    os << ':' << g->value();
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : hists_) {
    if (!first) os << ',';
    first = false;
    WriteJsonString(os, name);
    LocalHistogram s = h->Snapshot();
    os << ":{\"count\":" << s.count << ",\"sum\":" << s.sum
       << ",\"min\":" << s.min << ",\"max\":" << s.max
       << ",\"p50\":" << s.p50() << ",\"p90\":" << s.p90()
       << ",\"p99\":" << s.p99() << '}';
  }
  os << "}}";
}

void MetricsRegistry::WriteTable(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [name, c] : counters_) {
    os << "  " << std::left << std::setw(44) << name << ' ' << c->value()
       << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    os << "  " << std::left << std::setw(44) << name << ' ' << g->value()
       << '\n';
  }
  if (!hists_.empty()) {
    os << "  " << std::left << std::setw(44) << "histogram" << std::right
       << std::setw(8) << "count" << std::setw(12) << "mean" << std::setw(10)
       << "p50" << std::setw(10) << "p90" << std::setw(10) << "p99"
       << std::setw(12) << "max" << '\n';
    for (const auto& [name, h] : hists_) {
      LocalHistogram s = h->Snapshot();
      os << "  " << std::left << std::setw(44) << name << std::right
         << std::setw(8) << s.count << std::setw(12) << std::fixed
         << std::setprecision(1) << s.mean() << std::setw(10) << s.p50()
         << std::setw(10) << s.p90() << std::setw(10) << s.p99()
         << std::setw(12) << s.max << '\n';
    }
    os.unsetf(std::ios::fixed);
  }
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : hists_) h->Reset();
}

}  // namespace gsls::obs
