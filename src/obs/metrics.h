#ifndef GSLS_OBS_METRICS_H_
#define GSLS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

#include "obs/histogram.h"

namespace gsls::obs {

/// Monotone event counter. `Add` is lock-free (one relaxed fetch_add), so
/// any thread — pool workers included — may bump a shared counter on a
/// non-hot path without coordination. Totals read while writers are active
/// are eventually consistent; read at a barrier they are exact.
class Counter {
 public:
  void Add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (e.g. "components in the live
/// condensation"). Signed so deltas can go down.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Thread-safe fixed-bucket histogram: the atomic twin of
/// `LocalHistogram`, sharing its bucketing (obs/histogram.h) so per-worker
/// local histograms fold into a registry histogram bucket-for-bucket.
/// `Record` is a handful of relaxed atomic ops — fine per delta, per
/// flood, or per repair; not meant for per-rule inner loops (accumulate a
/// `LocalHistogram` there and `MergeFrom` at the barrier, the
/// `SolverDiagnostics` pattern). Percentiles read via `Snapshot`, exact at
/// quiescence.
class Histogram {
 public:
  void Record(uint64_t v);
  void MergeFrom(const LocalHistogram& other);
  void Reset();

  /// A consistent-enough copy for percentile extraction (exact when no
  /// writer is active; at worst a sample ahead/behind under concurrency).
  LocalHistogram Snapshot() const;

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> buckets_[kHistogramBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// Named metrics, registered on first use and stable for the registry's
/// lifetime: `Get*` interns the name under a mutex and returns a pointer
/// the caller may cache and bump lock-free forever after (the hot-path
/// contract — look up once, increment often). Each kind is its own
/// namespace: `GetCounter("x")` and `GetHistogram("x")` are distinct
/// metrics (conventionally, don't do that).
///
/// Export: `WriteJson` (machine-readable snapshot, one object with
/// "counters"/"gauges"/"histograms" keys) and `WriteTable` (aligned
/// human-readable dump, histograms with count/mean/p50/p90/p99).
class MetricsRegistry {
 public:
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  void WriteJson(std::ostream& os) const;
  void WriteTable(std::ostream& os) const;

  /// Zeroes every registered metric (pointers stay valid).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> hists_;
};

/// The telemetry sink a solver run reports into, plumbed down as
/// `SolverOptions::telemetry`. Null (the default) disables every metrics
/// cost — instrumentation points guard on the pointer. Scoped tracing is
/// orthogonal and process-global (obs/trace.h): a `Telemetry` object
/// selects *what aggregates where*, the trace recorder captures *when* —
/// so a bench can trace without a registry and a server can meter without
/// tracing.
///
/// Channel families published by `IncrementalSolver` (interned once at
/// solver construction; pointers stay valid for the registry's lifetime):
///   - `incremental.delta.*` — per-delta latency and dirty/cone/resolved
///     component histograms, plus `incremental.*` avoided-work gauges;
///   - `query.*` — per-`QueryAtom` latency/cone/resolved/memo-hit
///     histograms and memo hit/miss/invalidation gauges (docs/serving.md
///     documents the serving-side meaning of each);
///   - `solver.diag.*` — per-pass pipeline diagnostics
///     (`SolverDiagnostics`).
struct Telemetry {
  MetricsRegistry metrics;
};

}  // namespace gsls::obs

#endif  // GSLS_OBS_METRICS_H_
