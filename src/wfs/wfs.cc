#include "wfs/wfs.h"

namespace gsls {

WfsModel ComputeWfs(const GroundProgram& gp) {
  WfsModel out;
  size_t n = gp.atom_count();
  Interpretation current(n);
  while (true) {
    Interpretation next = WpStep(gp, current);
    // W_P is monotonic and the iteration starts at ∅, so the sequence is
    // increasing; union keeps that explicit under finite precision.
    next.mutable_true_set().UnionWith(current.true_set());
    next.mutable_false_set().UnionWith(current.false_set());
    ++out.iterations;
    if (next == current) break;
    current = std::move(next);
  }
  out.model = std::move(current);
  return out;
}

WfsStages ComputeWfsStages(const GroundProgram& gp) {
  WfsStages out;
  size_t n = gp.atom_count();
  out.true_stage.assign(n, 0);
  out.false_stage.assign(n, 0);
  Interpretation current(n);
  uint32_t alpha = 0;
  while (true) {
    ++alpha;
    DenseBitset derived = TpStar(gp, current);
    DenseBitset unfounded = GreatestUnfoundedSet(gp, current);
    Interpretation next(n);
    next.mutable_true_set().UnionWith(derived);
    next.mutable_true_set().UnionWith(current.true_set());
    next.mutable_false_set().UnionWith(unfounded);
    next.mutable_false_set().UnionWith(current.false_set());
    for (AtomId a = 0; a < n; ++a) {
      if (next.IsTrue(a) && out.true_stage[a] == 0) out.true_stage[a] = alpha;
      if (next.IsFalse(a) && out.false_stage[a] == 0) {
        out.false_stage[a] = alpha;
      }
    }
    if (next == current) {
      out.iterations = alpha;
      break;
    }
    current = std::move(next);
  }
  // Stages recorded for literals never added must read 0; literals added on
  // the final (unchanged) iteration were already present earlier, so their
  // recorded stage is their first appearance. The extra no-change round is
  // not a stage.
  out.model = std::move(current);
  return out;
}

/// S(I): least fixpoint of positive derivation where a negative literal
/// `not q` holds iff q is not in `assumed_true`.
DenseBitset PositiveClosureAssuming(const GroundProgram& gp,
                                    const DenseBitset& assumed_true) {
  size_t n = gp.atom_count();
  DenseBitset derived(n);
  std::vector<uint32_t> unmet(gp.rule_count(), 0);
  std::vector<AtomId> queue;
  auto derive = [&](AtomId a) {
    if (!derived.Test(a)) {
      derived.Set(a);
      queue.push_back(a);
    }
  };
  for (RuleId rid = 0; rid < gp.rule_count(); ++rid) {
    const GroundRule& r = gp.rules()[rid];
    bool enabled = true;
    for (AtomId a : r.neg) {
      if (assumed_true.Test(a)) {
        enabled = false;
        break;
      }
    }
    if (!enabled) {
      unmet[rid] = UINT32_MAX;
      continue;
    }
    unmet[rid] = static_cast<uint32_t>(r.pos.size());
    if (r.pos.empty()) derive(r.head);
  }
  size_t qi = 0;
  while (qi < queue.size()) {
    AtomId a = queue[qi++];
    for (RuleId rid : gp.PositiveOccurrences(a)) {
      if (unmet[rid] == UINT32_MAX || unmet[rid] == 0) continue;
      if (--unmet[rid] == 0) derive(gp.rules()[rid].head);
    }
  }
  return derived;
}

WfsModel ComputeWfsAlternating(const GroundProgram& gp) {
  WfsModel out;
  size_t n = gp.atom_count();
  DenseBitset under(n);  // K: underestimate of true atoms
  DenseBitset over(n);   // S(K): overestimate (true or undefined)
  while (true) {
    ++out.iterations;
    over = PositiveClosureAssuming(gp, under);
    DenseBitset next_under = PositiveClosureAssuming(gp, over);
    if (next_under == under) break;
    under = std::move(next_under);
  }
  out.model = Interpretation(n);
  out.model.mutable_true_set().UnionWith(under);
  for (AtomId a = 0; a < n; ++a) {
    if (!over.Test(a)) out.model.SetFalse(a);
  }
  return out;
}

std::string DescribeModelDifference(const GroundProgram& gp,
                                    const Interpretation& lhs,
                                    const Interpretation& rhs) {
  std::string out;
  for (AtomId a = 0; a < gp.atom_count(); ++a) {
    TruthValue l = lhs.Value(a);
    TruthValue r = rhs.Value(a);
    if (l == r) continue;
    out += gp.store().ToString(gp.AtomTerm(a));
    out += ": ";
    out += TruthValueName(l);
    out += " vs ";
    out += TruthValueName(r);
    out += "\n";
  }
  return out;
}

bool IsTwoValuedModel(const GroundProgram& gp, const Interpretation& total) {
  for (const GroundRule& r : gp.rules()) {
    if (total.IsTrue(r.head)) continue;
    bool body_true = true;
    for (AtomId a : r.pos) {
      if (!total.IsTrue(a)) {
        body_true = false;
        break;
      }
    }
    if (body_true) {
      for (AtomId a : r.neg) {
        if (total.IsTrue(a)) {
          body_true = false;
          break;
        }
      }
    }
    if (body_true) return false;
  }
  return true;
}

}  // namespace gsls
