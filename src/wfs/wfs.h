#ifndef GSLS_WFS_WFS_H_
#define GSLS_WFS_WFS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ground/ground_program.h"
#include "util/cancel.h"
#include "wfs/interpretation.h"
#include "wfs/operators.h"

namespace gsls {

/// The well-founded partial model of a finite ground program, with
/// iteration diagnostics and (when requested) the V_P stage levels.
struct WfsModel {
  Interpretation model;
  /// Number of outer iterations until the fixpoint closed.
  uint32_t iterations = 0;

  /// How the solve that produced this model ended. Anything other than
  /// `kCompleted` means the pass hit a cancellation checkpoint
  /// (`SolverOptions::cancel`/`deadline_ns`/`step_budget`) and the model
  /// is partial: components finalized before the abort carry their exact
  /// well-founded values, the rest keep their previous values (undefined
  /// on a from-scratch solve). `IncrementalSolver::Model` resumes exactly
  /// the remaining work on the next call once the stop condition clears.
  SolveOutcome outcome = SolveOutcome::kCompleted;

  /// Global-tree stage levels (Def. 2.4 / Cor. 4.6), per atom, 0 when the
  /// literal of that sign is not in the model. Filled only when the solve
  /// was asked for them (`SolverOptions::compute_levels`), in which case
  /// they are reconstructed from the SCC schedule (solver/stages.h) and
  /// agree atom-for-atom with the `ComputeWfsStages` oracle.
  std::vector<uint32_t> true_stage;
  std::vector<uint32_t> false_stage;
  bool has_levels = false;

  TruthValue Value(AtomId a) const { return model.Value(a); }
};

/// Stages of Def. 2.4: for each literal in the well-founded model, the
/// least (finite, successor) iteration of V_P at which it appears. Stage 0
/// means "not in the model" (undefined atom).
struct WfsStages {
  Interpretation model;
  std::vector<uint32_t> true_stage;   ///< per atom; 0 if not true.
  std::vector<uint32_t> false_stage;  ///< per atom; 0 if not false.
  uint32_t iterations = 0;
};

/// Computes M_WF(P) by iterating W_P(I) = T_P(I) ∪ ¬·U_P(I) from ∅
/// (Def. 2.3). Quadratic worst case (each round is linear, at most
/// |atoms|+1 rounds). `SolveWfs` (src/solver/) computes the same model
/// SCC-stratified in near-linear time and is the production hot path;
/// the iterations here stay as the executable definition and oracle.
WfsModel ComputeWfs(const GroundProgram& gp);

/// Computes M_WF(P) by iterating V_P(I) = T̃_P^ω(I) ∪ ¬·U_P(I) from ∅
/// (Def. 2.4 / Lemma 2.1), recording the stage of every literal. The
/// stages are what Corollary 4.6 relates to global-tree levels.
///
/// Test/bench oracle only: no production path uses this quadratic,
/// inherently sequential iteration anymore. `SolveWfs` / `IncrementalSolver`
/// with `SolverOptions::compute_levels` reconstruct the identical stages
/// from the SCC schedule (solver/stages.h) — near-linear, parallel, and
/// maintained incrementally across fact deltas — and both engines read
/// their levels from there. The executable definition stays here as the
/// agreement reference (tests/stages_test.cc, bench_levels_vs_stages).
WfsStages ComputeWfsStages(const GroundProgram& gp);

/// Computes M_WF(P) by Van Gelder's alternating fixpoint (the polynomial
/// bottom-up algorithm the paper's footnote 5 refers to):
/// S(I) = lfp of positive derivation with negatives read against I;
/// the true set is the least fixpoint of S∘S, the false set the complement
/// of its S-image.
WfsModel ComputeWfsAlternating(const GroundProgram& gp);

/// True iff `total` (which must be total) satisfies every rule of `gp`
/// two-valued: head true, or some positive body atom false, or some
/// negative body atom true.
bool IsTwoValuedModel(const GroundProgram& gp, const Interpretation& total);

/// Renders the atoms on which two partial interpretations disagree, as
/// `atom: lhs-value vs rhs-value` lines — the debugging companion of the
/// model-agreement tests and benches. Empty when the models are equal.
std::string DescribeModelDifference(const GroundProgram& gp,
                                    const Interpretation& lhs,
                                    const Interpretation& rhs);

/// Least fixpoint of positive derivation where `not q` is read as
/// "q not in assumed_true": the Gelfond-Lifschitz reduct closure. This is
/// the S operator of the alternating fixpoint; it is also the stability
/// check (M is a stable model iff PositiveClosureAssuming(gp, M) == M).
DenseBitset PositiveClosureAssuming(const GroundProgram& gp,
                                    const DenseBitset& assumed_true);

}  // namespace gsls

#endif  // GSLS_WFS_WFS_H_
