#ifndef GSLS_WFS_INTERPRETATION_H_
#define GSLS_WFS_INTERPRETATION_H_

#include <cassert>
#include <string>

#include "ground/ground_program.h"
#include "util/bitset.h"

namespace gsls {

/// Three-valued truth value of a ground atom in a partial interpretation.
enum class TruthValue : uint8_t { kFalse = 0, kUndefined = 1, kTrue = 2 };

const char* TruthValueName(TruthValue v);

/// A consistent set of ground literals over a `GroundProgram`'s atoms
/// (Def. 1.7): an atom may appear positively, negatively, or not at all.
class Interpretation {
 public:
  Interpretation() = default;
  explicit Interpretation(size_t atom_count)
      : true_(atom_count), false_(atom_count) {}

  size_t atom_count() const { return true_.size(); }

  bool IsTrue(AtomId a) const { return true_.Test(a); }
  bool IsFalse(AtomId a) const { return false_.Test(a); }
  bool IsUndefined(AtomId a) const { return !IsTrue(a) && !IsFalse(a); }

  TruthValue Value(AtomId a) const {
    if (IsTrue(a)) return TruthValue::kTrue;
    if (IsFalse(a)) return TruthValue::kFalse;
    return TruthValue::kUndefined;
  }

  void SetTrue(AtomId a) { true_.Set(a); }
  void SetFalse(AtomId a) { false_.Set(a); }

  /// Forgets the value of `a` (back to undefined). The incremental solver
  /// uses this to reset the atoms of a component before re-solving it.
  void SetUndefined(AtomId a) {
    true_.Reset(a);
    false_.Reset(a);
  }

  /// Grows to `atom_count` atoms; new atoms are undefined. Growth only —
  /// atom registries never shrink, and `DenseBitset::Resize` would leave
  /// stale bits behind a shrink.
  void Resize(size_t atom_count) {
    assert(atom_count >= true_.size());
    true_.Resize(atom_count);
    false_.Resize(atom_count);
  }

  const DenseBitset& true_set() const { return true_; }
  const DenseBitset& false_set() const { return false_; }
  DenseBitset& mutable_true_set() { return true_; }
  DenseBitset& mutable_false_set() { return false_; }

  /// Number of atoms with a defined (true or false) value.
  size_t defined_count() const { return true_.Count() + false_.Count(); }

  /// True iff no atom is both true and false.
  bool IsConsistent() const { return !true_.Intersects(false_); }

  /// True iff every atom is either true or false (total interpretation).
  bool IsTotal() const { return defined_count() == atom_count(); }

  /// Set-inclusion on literal sets: this ⊆ other.
  bool IsSubsetOf(const Interpretation& other) const {
    return true_.IsSubsetOf(other.true_set()) &&
           false_.IsSubsetOf(other.false_set());
  }

  bool operator==(const Interpretation& other) const {
    return true_ == other.true_ && false_ == other.false_;
  }

  /// Renders as `{p, not q, r?}` where `?` marks undefined atoms (only when
  /// `show_undefined`).
  std::string ToString(const GroundProgram& gp,
                       bool show_undefined = false) const;

 private:
  DenseBitset true_;
  DenseBitset false_;
};

}  // namespace gsls

#endif  // GSLS_WFS_INTERPRETATION_H_
