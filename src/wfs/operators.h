#ifndef GSLS_WFS_OPERATORS_H_
#define GSLS_WFS_OPERATORS_H_

#include "ground/ground_program.h"
#include "util/bitset.h"
#include "wfs/interpretation.h"

namespace gsls {

/// One application of the immediate-consequence transformation T_P
/// (Def. 2.3): the atoms p with an instantiated rule whose body literals
/// are all in `interp`.
DenseBitset TpStep(const GroundProgram& gp, const Interpretation& interp);

/// Closure of the extended transformation T̃_P (T̃_P(I) = T_P(I) ∪ I)
/// iterated to fixpoint: the positive atoms derivable from `interp` by
/// positive forward chaining with negative literals looked up in `interp`.
/// Linear-time counting implementation.
DenseBitset TpStar(const GroundProgram& gp, const Interpretation& interp);

/// The greatest unfounded set U_P(I) (Defs. 2.1-2.2) of `gp` with respect
/// to `interp`, computed as the complement of the least set of atoms with a
/// rule that has no witness of unusability. Linear-time counting
/// implementation over all registered atoms.
DenseBitset GreatestUnfoundedSet(const GroundProgram& gp,
                                 const Interpretation& interp);

/// One application of W_P(I) = T_P(I) ∪ ¬·U_P(I) (Def. 2.3).
Interpretation WpStep(const GroundProgram& gp, const Interpretation& interp);

/// Checks Def. 2.1 directly: is `candidate` an unfounded set of `gp` with
/// respect to `interp`? (Quadratic; used by tests and assertions.)
bool IsUnfoundedSet(const GroundProgram& gp, const Interpretation& interp,
                    const DenseBitset& candidate);

}  // namespace gsls

#endif  // GSLS_WFS_OPERATORS_H_
