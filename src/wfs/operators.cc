#include "wfs/operators.h"

#include <vector>

namespace gsls {

DenseBitset TpStep(const GroundProgram& gp, const Interpretation& interp) {
  DenseBitset out(gp.atom_count());
  for (const GroundRule& r : gp.rules()) {
    bool fires = true;
    for (AtomId a : r.pos) {
      if (!interp.IsTrue(a)) {
        fires = false;
        break;
      }
    }
    if (fires) {
      for (AtomId a : r.neg) {
        if (!interp.IsFalse(a)) {
          fires = false;
          break;
        }
      }
    }
    if (fires) out.Set(r.head);
  }
  return out;
}

DenseBitset TpStar(const GroundProgram& gp, const Interpretation& interp) {
  // Counting algorithm: unmet[r] = number of positive body atoms of rule r
  // not yet derived. Rules whose negative body is not satisfied by `interp`
  // are disabled outright.
  size_t n = gp.atom_count();
  DenseBitset derived(n);
  std::vector<uint32_t> unmet(gp.rule_count(), 0);
  std::vector<AtomId> queue;

  auto derive = [&](AtomId a) {
    if (!derived.Test(a)) {
      derived.Set(a);
      queue.push_back(a);
    }
  };

  for (RuleId rid = 0; rid < gp.rule_count(); ++rid) {
    const GroundRule& r = gp.rules()[rid];
    bool enabled = true;
    for (AtomId a : r.neg) {
      if (!interp.IsFalse(a)) {
        enabled = false;
        break;
      }
    }
    if (!enabled) {
      unmet[rid] = UINT32_MAX;  // never fires
      continue;
    }
    // Positive atoms already true in `interp` count as met only when
    // derived here? No: T̃ starts from I, so atoms true in I are available.
    uint32_t count = 0;
    for (AtomId a : r.pos) {
      if (!interp.IsTrue(a)) ++count;
    }
    unmet[rid] = count;
    if (count == 0) derive(r.head);
  }
  // Atoms true in `interp` are part of T̃'s start set.
  for (AtomId a = 0; a < n; ++a) {
    if (interp.IsTrue(a)) derive(a);
  }
  // But rules counted interp-true atoms as met already; only propagate
  // derivations of atoms that were NOT true in interp.
  size_t qi = 0;
  while (qi < queue.size()) {
    AtomId a = queue[qi++];
    if (interp.IsTrue(a)) continue;  // already discounted in unmet[]
    for (RuleId rid : gp.PositiveOccurrences(a)) {
      if (unmet[rid] == UINT32_MAX || unmet[rid] == 0) continue;
      // A rule may mention `a` several times positively, but bodies are
      // deduplicated by AddRule, so one decrement per occurrence list entry
      // is exact.
      if (--unmet[rid] == 0) derive(gp.rules()[rid].head);
    }
  }
  return derived;
}

DenseBitset GreatestUnfoundedSet(const GroundProgram& gp,
                                 const Interpretation& interp) {
  // The complement of U_P(I) is the least set S such that p ∈ S whenever
  // some rule for p has (a) no body literal whose complement is in I and
  // (b) all positive body atoms in S. Compute S by counting, then invert.
  size_t n = gp.atom_count();
  DenseBitset supported(n);
  std::vector<uint32_t> unmet(gp.rule_count(), 0);
  std::vector<AtomId> queue;

  auto support = [&](AtomId a) {
    if (!supported.Test(a)) {
      supported.Set(a);
      queue.push_back(a);
    }
  };

  for (RuleId rid = 0; rid < gp.rule_count(); ++rid) {
    const GroundRule& r = gp.rules()[rid];
    bool enabled = true;
    // (a) no witness of type 1: complement of a body literal in I.
    for (AtomId a : r.pos) {
      if (interp.IsFalse(a)) {
        enabled = false;
        break;
      }
    }
    if (enabled) {
      for (AtomId a : r.neg) {
        if (interp.IsTrue(a)) {
          enabled = false;
          break;
        }
      }
    }
    if (!enabled) {
      unmet[rid] = UINT32_MAX;
      continue;
    }
    unmet[rid] = static_cast<uint32_t>(r.pos.size());
    if (r.pos.empty()) support(r.head);
  }
  size_t qi = 0;
  while (qi < queue.size()) {
    AtomId a = queue[qi++];
    for (RuleId rid : gp.PositiveOccurrences(a)) {
      if (unmet[rid] == UINT32_MAX || unmet[rid] == 0) continue;
      if (--unmet[rid] == 0) support(gp.rules()[rid].head);
    }
  }
  DenseBitset unfounded(n);
  for (AtomId a = 0; a < n; ++a) {
    if (!supported.Test(a)) unfounded.Set(a);
  }
  return unfounded;
}

Interpretation WpStep(const GroundProgram& gp, const Interpretation& interp) {
  Interpretation out(gp.atom_count());
  DenseBitset derived = TpStep(gp, interp);
  out.mutable_true_set().UnionWith(derived);
  DenseBitset unfounded = GreatestUnfoundedSet(gp, interp);
  out.mutable_false_set().UnionWith(unfounded);
  return out;
}

bool IsUnfoundedSet(const GroundProgram& gp, const Interpretation& interp,
                    const DenseBitset& candidate) {
  for (AtomId p = 0; p < gp.atom_count(); ++p) {
    if (!candidate.Test(p)) continue;
    for (RuleId rid : gp.RulesFor(p)) {
      const GroundRule& r = gp.rules()[rid];
      bool has_witness = false;
      for (AtomId a : r.pos) {
        if (interp.IsFalse(a) || candidate.Test(a)) {
          has_witness = true;
          break;
        }
      }
      if (!has_witness) {
        for (AtomId a : r.neg) {
          if (interp.IsTrue(a)) {
            has_witness = true;
            break;
          }
        }
      }
      if (!has_witness) return false;
    }
  }
  return true;
}

}  // namespace gsls
