#ifndef GSLS_WFS_PERFECT_H_
#define GSLS_WFS_PERFECT_H_

#include "analysis/dependency_graph.h"
#include "ground/ground_program.h"
#include "util/status.h"
#include "wfs/interpretation.h"

namespace gsls {

/// Evaluates the perfect model of a *stratified* program by iterated
/// fixpoint over the strata (Apt-Blair-Walker / Przymusinski). `gp` must be
/// a grounding of the program that `strat` was computed from. Fails with
/// FailedPrecondition if `strat.stratified` is false.
///
/// On stratified programs the perfect model coincides with the well-founded
/// model (which is total there) — the cross-check used by the tests.
Result<Interpretation> ComputePerfectModel(const GroundProgram& gp,
                                           const Stratification& strat);

}  // namespace gsls

#endif  // GSLS_WFS_PERFECT_H_
