#include "wfs/interpretation.h"

#include "util/strings.h"

namespace gsls {

const char* TruthValueName(TruthValue v) {
  switch (v) {
    case TruthValue::kTrue: return "true";
    case TruthValue::kFalse: return "false";
    case TruthValue::kUndefined: return "undefined";
  }
  return "?";
}

std::string Interpretation::ToString(const GroundProgram& gp,
                                     bool show_undefined) const {
  std::vector<std::string> parts;
  for (AtomId a = 0; a < gp.atom_count() && a < atom_count(); ++a) {
    if (IsTrue(a)) {
      parts.push_back(gp.store().ToString(gp.AtomTerm(a)));
    } else if (IsFalse(a)) {
      parts.push_back(StrCat("not ", gp.store().ToString(gp.AtomTerm(a))));
    } else if (show_undefined) {
      parts.push_back(StrCat(gp.store().ToString(gp.AtomTerm(a)), "?"));
    }
  }
  return StrCat("{", StrJoin(parts, ", "), "}");
}

}  // namespace gsls
