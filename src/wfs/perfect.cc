#include "wfs/perfect.h"

#include <vector>

namespace gsls {

Result<Interpretation> ComputePerfectModel(const GroundProgram& gp,
                                           const Stratification& strat) {
  if (!strat.stratified) {
    return Status::FailedPrecondition("program is not stratified");
  }
  size_t n = gp.atom_count();
  std::vector<int> atom_stratum(n, 0);
  for (AtomId a = 0; a < n; ++a) {
    auto it = strat.strata.find(gp.AtomTerm(a)->functor());
    // Atoms of predicates absent from the dependency graph (possible after
    // restriction) sit at stratum 0.
    atom_stratum[a] = it == strat.strata.end() ? 0 : it->second;
  }
  Interpretation model(n);
  int stratum_count = strat.stratum_count == 0 ? 1 : strat.stratum_count;
  for (int s = 0; s < stratum_count; ++s) {
    // Least fixpoint of the rules whose head lies in stratum s, with body
    // literals of lower strata read from `model`. Stratification guarantees
    // negative body literals refer only to strictly lower strata and
    // positive ones to strata <= s.
    std::vector<uint32_t> unmet(gp.rule_count(), UINT32_MAX);
    std::vector<AtomId> queue;
    DenseBitset derived(n);
    auto derive = [&](AtomId a) {
      if (!derived.Test(a)) {
        derived.Set(a);
        queue.push_back(a);
      }
    };
    for (RuleId rid = 0; rid < gp.rule_count(); ++rid) {
      const GroundRule& r = gp.rules()[rid];
      if (atom_stratum[r.head] != s) continue;
      bool enabled = true;
      for (AtomId a : r.neg) {
        if (!model.IsFalse(a)) {  // lower stratum, already decided
          enabled = false;
          break;
        }
      }
      if (enabled) {
        for (AtomId a : r.pos) {
          if (atom_stratum[a] < s && !model.IsTrue(a)) {
            enabled = false;
            break;
          }
        }
      }
      if (!enabled) continue;
      uint32_t count = 0;
      for (AtomId a : r.pos) {
        if (atom_stratum[a] == s) ++count;
      }
      unmet[rid] = count;
      if (count == 0) derive(r.head);
    }
    size_t qi = 0;
    while (qi < queue.size()) {
      AtomId a = queue[qi++];
      for (RuleId rid : gp.PositiveOccurrences(a)) {
        if (unmet[rid] == UINT32_MAX || unmet[rid] == 0) continue;
        if (--unmet[rid] == 0) derive(gp.rules()[rid].head);
      }
    }
    // Close the stratum: derived atoms true, the rest of the stratum false.
    for (AtomId a = 0; a < n; ++a) {
      if (atom_stratum[a] != s) continue;
      if (derived.Test(a)) {
        model.SetTrue(a);
      } else {
        model.SetFalse(a);
      }
    }
  }
  return model;
}

}  // namespace gsls
