#ifndef GSLS_LANG_LITERAL_H_
#define GSLS_LANG_LITERAL_H_

#include <string>
#include <vector>

#include "term/term.h"
#include "term/term_store.h"

namespace gsls {

/// A positive or negative literal over an atom. The atom is a term whose
/// root functor is the predicate symbol.
struct Literal {
  const Term* atom = nullptr;
  bool positive = true;

  static Literal Pos(const Term* a) { return Literal{a, true}; }
  static Literal Neg(const Term* a) { return Literal{a, false}; }

  /// The literal with opposite sign on the same atom.
  Literal Complement() const { return Literal{atom, !positive}; }

  /// Predicate symbol of the underlying atom.
  FunctorId predicate() const { return atom->functor(); }

  bool ground() const { return atom->ground(); }

  /// Pointer-based equality (atoms are hash-consed).
  friend bool operator==(const Literal& a, const Literal& b) {
    return a.atom == b.atom && a.positive == b.positive;
  }

  /// `p(t)` or `not p(t)`.
  std::string ToString(const TermStore& store) const;
};

/// A goal / query body: conjunction of literals. The paper's `<- Q`.
using Goal = std::vector<Literal>;

/// Renders `l1, l2, ..., ln` (or `true` when empty).
std::string GoalToString(const TermStore& store, const Goal& goal);

/// Hash functor for literals (combines atom identity and sign).
struct LiteralHash {
  size_t operator()(const Literal& l) const {
    return l.atom->hash() * 2 + (l.positive ? 1 : 0);
  }
};

}  // namespace gsls

#endif  // GSLS_LANG_LITERAL_H_
