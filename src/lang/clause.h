#ifndef GSLS_LANG_CLAUSE_H_
#define GSLS_LANG_CLAUSE_H_

#include <string>
#include <vector>

#include "lang/literal.h"
#include "term/substitution.h"
#include "term/term_store.h"

namespace gsls {

/// A normal program clause `A <- L1, ..., Ln` (Def. 1.1). Facts have an
/// empty body. All variables are implicitly universally quantified.
struct Clause {
  const Term* head = nullptr;
  std::vector<Literal> body;

  FunctorId predicate() const { return head->functor(); }

  bool IsFact() const { return body.empty(); }

  /// True iff head and all body literals are variable-free.
  bool ground() const;

  /// Variables occurring anywhere in the clause, in first-occurrence order.
  std::vector<VarId> Variables() const;

  /// `head :- body.` or `head.` for facts.
  std::string ToString(const TermStore& store) const;
};

/// Collects the variables of `t` into `out` in first-occurrence order
/// (no duplicates).
void CollectVars(const Term* t, std::vector<VarId>* out);

/// Returns a variant of `clause` whose variables are fresh in `store`
/// (standardizing apart, used before each resolution step).
Clause RenameApart(TermStore& store, const Clause& clause);

/// Applies `s` to every atom of `clause`.
Clause ApplyToClause(TermStore& store, const Substitution& s,
                     const Clause& clause);

/// Applies `s` to every literal of `goal`.
Goal ApplyToGoal(TermStore& store, const Substitution& s, const Goal& goal);

/// A clause is range-restricted ("allowed", Sec. 6) when every variable in
/// the head or in a negative body literal also occurs in some positive body
/// literal. Allowed programs with allowed queries never flounder.
bool IsRangeRestricted(const Clause& clause);

}  // namespace gsls

#endif  // GSLS_LANG_CLAUSE_H_
