#include "lang/clause.h"

#include <algorithm>
#include <unordered_set>

#include "util/strings.h"

namespace gsls {

void CollectVars(const Term* t, std::vector<VarId>* out) {
  if (t->ground()) return;
  if (t->IsVar()) {
    if (std::find(out->begin(), out->end(), t->var()) == out->end()) {
      out->push_back(t->var());
    }
    return;
  }
  for (const Term* a : t->args()) CollectVars(a, out);
}

bool Clause::ground() const {
  if (!head->ground()) return false;
  for (const Literal& l : body) {
    if (!l.ground()) return false;
  }
  return true;
}

std::vector<VarId> Clause::Variables() const {
  std::vector<VarId> vars;
  CollectVars(head, &vars);
  for (const Literal& l : body) CollectVars(l.atom, &vars);
  return vars;
}

std::string Clause::ToString(const TermStore& store) const {
  if (body.empty()) return StrCat(store.ToString(head), ".");
  return StrCat(store.ToString(head), " :- ", GoalToString(store, body), ".");
}

Clause RenameApart(TermStore& store, const Clause& clause) {
  std::vector<VarId> vars = clause.Variables();
  if (vars.empty()) return clause;
  Substitution renaming;
  for (VarId v : vars) {
    renaming.Bind(v, store.NewVar(store.VarName(v)));
  }
  return ApplyToClause(store, renaming, clause);
}

Clause ApplyToClause(TermStore& store, const Substitution& s,
                     const Clause& clause) {
  Clause out;
  out.head = s.Apply(store, clause.head);
  out.body.reserve(clause.body.size());
  for (const Literal& l : clause.body) {
    out.body.push_back(Literal{s.Apply(store, l.atom), l.positive});
  }
  return out;
}

Goal ApplyToGoal(TermStore& store, const Substitution& s, const Goal& goal) {
  Goal out;
  out.reserve(goal.size());
  for (const Literal& l : goal) {
    out.push_back(Literal{s.Apply(store, l.atom), l.positive});
  }
  return out;
}

bool IsRangeRestricted(const Clause& clause) {
  std::vector<VarId> positive_vars;
  for (const Literal& l : clause.body) {
    if (l.positive) CollectVars(l.atom, &positive_vars);
  }
  std::unordered_set<VarId> allowed(positive_vars.begin(),
                                    positive_vars.end());
  std::vector<VarId> constrained;
  CollectVars(clause.head, &constrained);
  for (const Literal& l : clause.body) {
    if (!l.positive) CollectVars(l.atom, &constrained);
  }
  for (VarId v : constrained) {
    if (allowed.find(v) == allowed.end()) return false;
  }
  return true;
}

}  // namespace gsls
