#ifndef GSLS_LANG_PROGRAM_H_
#define GSLS_LANG_PROGRAM_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lang/clause.h"
#include "term/term_store.h"

namespace gsls {

/// A normal logic program: a finite set of clauses over a `TermStore`
/// (Def. 1.1). The program does not own the store; the store must outlive
/// the program.
class Program {
 public:
  explicit Program(TermStore* store) : store_(store) {}

  TermStore& store() const { return *store_; }

  /// Appends a clause (invalidates no iterators into `clauses()`; the
  /// per-predicate index is maintained incrementally).
  void AddClause(Clause clause);

  const std::vector<Clause>& clauses() const { return clauses_; }
  size_t size() const { return clauses_.size(); }

  /// Indexes of clauses whose head predicate is `pred` (possibly empty).
  const std::vector<size_t>& ClausesFor(FunctorId pred) const;

  /// All predicate symbols appearing in heads or bodies.
  std::vector<FunctorId> Predicates() const;

  /// All constants appearing in the program, in first-appearance order.
  /// If the program has none, the Herbrand universe convention (Def. 1.2)
  /// says to act as if one extra constant existed; callers handle that.
  std::vector<const Term*> Constants() const;

  /// All function symbols of arity >= 1 appearing in the program.
  std::vector<FunctorId> FunctionSymbols() const;

  /// True iff no function symbols of arity >= 1 appear (Datalog with
  /// negation) — the class for which global SLS-resolution can be made
  /// effective by memoing (Sec. 7).
  bool IsFunctionFree() const { return FunctionSymbols().empty(); }

  /// True iff some clause has a negative body literal.
  bool HasNegation() const;

  /// True iff every clause is range-restricted.
  bool IsRangeRestricted() const;

  /// One clause per line.
  std::string ToString() const;

 private:
  void ScanAtomSymbols(const Term* t,
                       std::vector<const Term*>* constants,
                       std::unordered_set<const Term*>* seen_consts,
                       std::vector<FunctorId>* functions,
                       std::unordered_set<FunctorId>* seen_funcs) const;

  TermStore* store_;
  std::vector<Clause> clauses_;
  std::unordered_map<FunctorId, std::vector<size_t>> by_predicate_;
  std::vector<size_t> empty_;
};

}  // namespace gsls

#endif  // GSLS_LANG_PROGRAM_H_
