#include "lang/lexer.h"

#include <cctype>

#include "util/strings.h"

namespace gsls {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kName: return "name";
    case TokenKind::kVariable: return "variable";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kImplies: return "':-'";
    case TokenKind::kQuery: return "'?-'";
    case TokenKind::kNot: return "'not'";
    case TokenKind::kEof: return "end of input";
  }
  return "?";
}

Result<std::vector<Token>> Lex(std::string_view src) {
  std::vector<Token> tokens;
  int line = 1;
  int col = 1;
  size_t i = 0;
  auto push = [&](TokenKind k, std::string text, int l, int c) {
    tokens.push_back(Token{k, std::move(text), l, c});
  };
  while (i < src.size()) {
    char ch = src[i];
    if (ch == '\n') {
      ++line;
      col = 1;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(ch))) {
      ++col;
      ++i;
      continue;
    }
    if (ch == '%') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    int tl = line, tc = col;
    if (ch == '(') {
      push(TokenKind::kLParen, "(", tl, tc);
      ++i;
      ++col;
      continue;
    }
    if (ch == ')') {
      push(TokenKind::kRParen, ")", tl, tc);
      ++i;
      ++col;
      continue;
    }
    if (ch == ',') {
      push(TokenKind::kComma, ",", tl, tc);
      ++i;
      ++col;
      continue;
    }
    if (ch == '.') { push(TokenKind::kDot, ".", tl, tc); ++i; ++col; continue; }
    if (ch == ':' && i + 1 < src.size() && src[i + 1] == '-') {
      push(TokenKind::kImplies, ":-", tl, tc);
      i += 2;
      col += 2;
      continue;
    }
    if (ch == '?' && i + 1 < src.size() && src[i + 1] == '-') {
      push(TokenKind::kQuery, "?-", tl, tc);
      i += 2;
      col += 2;
      continue;
    }
    if (ch == '\\' && i + 1 < src.size() && src[i + 1] == '+') {
      push(TokenKind::kNot, "\\+", tl, tc);
      i += 2;
      col += 2;
      continue;
    }
    if (ch == '\'') {
      // Quoted atom: '...'; no escapes beyond '' for a literal quote.
      size_t j = i + 1;
      std::string text;
      bool closed = false;
      while (j < src.size()) {
        if (src[j] == '\'') {
          if (j + 1 < src.size() && src[j + 1] == '\'') {
            text.push_back('\'');
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        if (src[j] == '\n') break;
        text.push_back(src[j]);
        ++j;
      }
      if (!closed) {
        return Status::InvalidArgument(
            StrCat("unterminated quoted atom at line ", tl, " col ", tc));
      }
      push(TokenKind::kName, std::move(text), tl, tc);
      col += static_cast<int>(j - i);
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(ch))) {
      size_t j = i;
      while (j < src.size() &&
             std::isdigit(static_cast<unsigned char>(src[j]))) {
        ++j;
      }
      push(TokenKind::kName, std::string(src.substr(i, j - i)), tl, tc);
      col += static_cast<int>(j - i);
      i = j;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(ch)) || ch == '_') {
      size_t j = i;
      while (j < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[j])) ||
              src[j] == '_')) {
        ++j;
      }
      std::string text(src.substr(i, j - i));
      col += static_cast<int>(j - i);
      i = j;
      if (text == "not") {
        push(TokenKind::kNot, std::move(text), tl, tc);
      } else if (std::isupper(static_cast<unsigned char>(text[0])) ||
                 text[0] == '_') {
        push(TokenKind::kVariable, std::move(text), tl, tc);
      } else {
        push(TokenKind::kName, std::move(text), tl, tc);
      }
      continue;
    }
    return Status::InvalidArgument(
        StrCat("unexpected character '", std::string(1, ch), "' at line ",
               line, " col ", col));
  }
  push(TokenKind::kEof, "", line, col);
  return tokens;
}

}  // namespace gsls
