#include "lang/literal.h"

#include "util/strings.h"

namespace gsls {

std::string Literal::ToString(const TermStore& store) const {
  if (positive) return store.ToString(atom);
  return StrCat("not ", store.ToString(atom));
}

std::string GoalToString(const TermStore& store, const Goal& goal) {
  if (goal.empty()) return "true";
  std::vector<std::string> parts;
  parts.reserve(goal.size());
  for (const Literal& l : goal) parts.push_back(l.ToString(store));
  return StrJoin(parts, ", ");
}

}  // namespace gsls
