#include "lang/program.h"

#include <algorithm>

#include "util/strings.h"

namespace gsls {

void Program::AddClause(Clause clause) {
  by_predicate_[clause.predicate()].push_back(clauses_.size());
  clauses_.push_back(std::move(clause));
}

const std::vector<size_t>& Program::ClausesFor(FunctorId pred) const {
  auto it = by_predicate_.find(pred);
  return it == by_predicate_.end() ? empty_ : it->second;
}

std::vector<FunctorId> Program::Predicates() const {
  std::vector<FunctorId> out;
  std::unordered_set<FunctorId> seen;
  auto add = [&](FunctorId f) {
    if (seen.insert(f).second) out.push_back(f);
  };
  for (const Clause& c : clauses_) {
    add(c.predicate());
    for (const Literal& l : c.body) add(l.predicate());
  }
  return out;
}

void Program::ScanAtomSymbols(
    const Term* t, std::vector<const Term*>* constants,
    std::unordered_set<const Term*>* seen_consts,
    std::vector<FunctorId>* functions,
    std::unordered_set<FunctorId>* seen_funcs) const {
  // `t` is an argument term (not an atom root).
  if (t->IsVar()) return;
  if (t->IsConstant()) {
    if (seen_consts->insert(t).second) constants->push_back(t);
    return;
  }
  if (seen_funcs->insert(t->functor()).second) {
    functions->push_back(t->functor());
  }
  for (const Term* a : t->args()) {
    ScanAtomSymbols(a, constants, seen_consts, functions, seen_funcs);
  }
}

std::vector<const Term*> Program::Constants() const {
  std::vector<const Term*> constants;
  std::unordered_set<const Term*> seen_consts;
  std::vector<FunctorId> functions;
  std::unordered_set<FunctorId> seen_funcs;
  for (const Clause& c : clauses_) {
    for (const Term* a : c.head->args()) {
      ScanAtomSymbols(a, &constants, &seen_consts, &functions, &seen_funcs);
    }
    for (const Literal& l : c.body) {
      for (const Term* a : l.atom->args()) {
        ScanAtomSymbols(a, &constants, &seen_consts, &functions, &seen_funcs);
      }
    }
  }
  return constants;
}

std::vector<FunctorId> Program::FunctionSymbols() const {
  std::vector<const Term*> constants;
  std::unordered_set<const Term*> seen_consts;
  std::vector<FunctorId> functions;
  std::unordered_set<FunctorId> seen_funcs;
  for (const Clause& c : clauses_) {
    for (const Term* a : c.head->args()) {
      ScanAtomSymbols(a, &constants, &seen_consts, &functions, &seen_funcs);
    }
    for (const Literal& l : c.body) {
      for (const Term* a : l.atom->args()) {
        ScanAtomSymbols(a, &constants, &seen_consts, &functions, &seen_funcs);
      }
    }
  }
  return functions;
}

bool Program::HasNegation() const {
  for (const Clause& c : clauses_) {
    for (const Literal& l : c.body) {
      if (!l.positive) return true;
    }
  }
  return false;
}

bool Program::IsRangeRestricted() const {
  return std::all_of(clauses_.begin(), clauses_.end(),
                     [](const Clause& c) {
                       return gsls::IsRangeRestricted(c);
                     });
}

std::string Program::ToString() const {
  std::string out;
  for (const Clause& c : clauses_) {
    out += c.ToString(*store_);
    out += '\n';
  }
  return out;
}

}  // namespace gsls
