#include "lang/transforms.h"

namespace gsls {

Program AugmentProgram(const Program& program) {
  TermStore& store = program.store();
  Program out(&store);
  for (const Clause& c : program.clauses()) out.AddClause(c);
  const Term* c = store.MakeConstant(kAugConstantName);
  const Term* fc = store.MakeApp(kAugFunctionName, {c});
  Clause aug;
  aug.head = store.MakeApp(kAugPredicateName, {fc});
  out.AddClause(std::move(aug));
  return out;
}

Program AddTermGuard(const Program& program) {
  TermStore& store = program.store();
  Program out(&store);
  // Guard every original clause.
  for (const Clause& c : program.clauses()) {
    Clause guarded = c;
    for (VarId v : c.Variables()) {
      guarded.body.push_back(
          Literal::Pos(store.MakeApp(kTermGuardName, {store.Var(v)})));
    }
    out.AddClause(std::move(guarded));
  }
  // term(c) for each constant (or a synthetic one if P has none,
  // following the Def. 1.2 convention).
  std::vector<const Term*> constants = program.Constants();
  if (constants.empty()) {
    constants.push_back(store.MakeConstant("$k"));
  }
  for (const Term* c : constants) {
    Clause fact;
    fact.head = store.MakeApp(kTermGuardName, {c});
    out.AddClause(std::move(fact));
  }
  // term(f(X1,...,Xn)) :- term(X1), ..., term(Xn).
  for (FunctorId f : program.FunctionSymbols()) {
    uint32_t arity = store.symbols().FunctorArity(f);
    std::vector<const Term*> vars;
    vars.reserve(arity);
    for (uint32_t i = 0; i < arity; ++i) vars.push_back(store.NewVar("X"));
    Clause rule;
    const Term* fx = store.MakeCompound(f, vars);
    rule.head = store.MakeApp(kTermGuardName, {fx});
    for (const Term* v : vars) {
      rule.body.push_back(Literal::Pos(store.MakeApp(kTermGuardName, {v})));
    }
    out.AddClause(std::move(rule));
  }
  return out;
}

Goal GuardGoal(const Program& program, TermStore& store, const Goal& goal) {
  (void)program;
  Goal out = goal;
  std::vector<VarId> vars;
  for (const Literal& l : goal) CollectVars(l.atom, &vars);
  for (VarId v : vars) {
    out.push_back(Literal::Pos(store.MakeApp(kTermGuardName, {store.Var(v)})));
  }
  return out;
}

}  // namespace gsls
