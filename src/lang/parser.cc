#include "lang/parser.h"

#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <vector>

#include "lang/lexer.h"
#include "util/strings.h"

namespace gsls {

namespace {

/// Recursive-descent parser over the token stream. One `VarScope` per
/// clause/query maps source variable names to store variables; `_` is fresh
/// at each occurrence.
class Parser {
 public:
  Parser(TermStore& store, std::vector<Token> tokens)
      : store_(store), tokens_(std::move(tokens)) {}

  Result<Program> ParseProgramAll() {
    Program program(&store_);
    while (!Check(TokenKind::kEof)) {
      var_scope_.clear();
      Result<Clause> clause = ParseClause();
      if (!clause.ok()) return clause.status();
      program.AddClause(std::move(clause.value()));
    }
    return program;
  }

  Result<Goal> ParseQueryAll() {
    var_scope_.clear();
    if (Check(TokenKind::kQuery)) Advance();
    Goal goal;
    if (Check(TokenKind::kEof)) return goal;
    if (Check(TokenKind::kDot)) {
      Advance();
      return ExpectEof(std::move(goal));
    }
    while (true) {
      Result<Literal> lit = ParseLiteral();
      if (!lit.ok()) return lit.status();
      goal.push_back(lit.value());
      if (Check(TokenKind::kComma)) {
        Advance();
        continue;
      }
      break;
    }
    if (Check(TokenKind::kDot)) Advance();
    return ExpectEof(std::move(goal));
  }

  Result<const Term*> ParseTermAll() {
    var_scope_.clear();
    Result<const Term*> t = ParseTermInner();
    if (!t.ok()) return t.status();
    if (!Check(TokenKind::kEof)) {
      return Err<const Term*>("expected end of input");
    }
    return t;
  }

 private:
  template <typename T>
  Status ErrStatus(std::string_view message) const {
    const Token& t = Peek();
    return Status::InvalidArgument(StrCat(message, " at line ", t.line,
                                          " col ", t.column, " (got ",
                                          TokenKindName(t.kind),
                                          t.text.empty() ? "" : " '",
                                          t.text,
                                          t.text.empty() ? "" : "'", ")"));
  }
  template <typename T>
  Result<T> Err(std::string_view message) const {
    return ErrStatus<T>(message);
  }

  template <typename T>
  Result<T> ExpectEof(T value) {
    if (!Check(TokenKind::kEof)) return Err<T>("expected end of input");
    return value;
  }

  const Token& Peek() const { return tokens_[pos_]; }
  bool Check(TokenKind k) const { return Peek().kind == k; }
  const Token& Advance() { return tokens_[pos_++]; }

  Result<Clause> ParseClause() {
    Result<const Term*> head = ParseAtom();
    if (!head.ok()) return head.status();
    Clause clause;
    clause.head = head.value();
    if (Check(TokenKind::kImplies)) {
      Advance();
      while (true) {
        Result<Literal> lit = ParseLiteral();
        if (!lit.ok()) return lit.status();
        clause.body.push_back(lit.value());
        if (Check(TokenKind::kComma)) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (!Check(TokenKind::kDot)) return Err<Clause>("expected '.'");
    Advance();
    return clause;
  }

  Result<Literal> ParseLiteral() {
    bool positive = true;
    if (Check(TokenKind::kNot)) {
      Advance();
      positive = false;
      // Allow `not (atom)` as well as `not atom`.
      if (Check(TokenKind::kLParen)) {
        Advance();
        Result<const Term*> atom = ParseAtom();
        if (!atom.ok()) return atom.status();
        if (!Check(TokenKind::kRParen)) return Err<Literal>("expected ')'");
        Advance();
        return Literal{atom.value(), positive};
      }
    }
    Result<const Term*> atom = ParseAtom();
    if (!atom.ok()) return atom.status();
    return Literal{atom.value(), positive};
  }

  /// Atoms and terms share one grammar: name, optionally followed by a
  /// parenthesized argument list. An atom cannot be a bare variable.
  Result<const Term*> ParseAtom() {
    if (!Check(TokenKind::kName)) {
      return Err<const Term*>("expected predicate name");
    }
    return ParseTermInner();
  }

  Result<const Term*> ParseTermInner() {
    if (Check(TokenKind::kVariable)) {
      const std::string& name = Advance().text;
      return VarFor(name);
    }
    if (!Check(TokenKind::kName)) {
      return Err<const Term*>("expected term");
    }
    std::string name = Advance().text;
    std::vector<const Term*> args;
    if (Check(TokenKind::kLParen)) {
      Advance();
      while (true) {
        Result<const Term*> arg = ParseTermInner();
        if (!arg.ok()) return arg.status();
        args.push_back(arg.value());
        if (Check(TokenKind::kComma)) {
          Advance();
          continue;
        }
        break;
      }
      if (!Check(TokenKind::kRParen)) return Err<const Term*>("expected ')'");
      Advance();
    }
    return store_.MakeApp(name, args);
  }

  const Term* VarFor(const std::string& name) {
    if (name == "_") return store_.NewVar("_");
    auto it = var_scope_.find(name);
    if (it != var_scope_.end()) return it->second;
    const Term* v = store_.NewVar(name);
    var_scope_.emplace(name, v);
    return v;
  }

  TermStore& store_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::unordered_map<std::string, const Term*> var_scope_;
};

}  // namespace

Result<Program> ParseProgram(TermStore& store, std::string_view src) {
  Result<std::vector<Token>> tokens = Lex(src);
  if (!tokens.ok()) return tokens.status();
  Parser parser(store, std::move(tokens.value()));
  return parser.ParseProgramAll();
}

Result<Goal> ParseQuery(TermStore& store, std::string_view src) {
  Result<std::vector<Token>> tokens = Lex(src);
  if (!tokens.ok()) return tokens.status();
  Parser parser(store, std::move(tokens.value()));
  return parser.ParseQueryAll();
}

Result<const Term*> ParseTerm(TermStore& store, std::string_view src) {
  Result<std::vector<Token>> tokens = Lex(src);
  if (!tokens.ok()) return tokens.status();
  Parser parser(store, std::move(tokens.value()));
  return parser.ParseTermAll();
}

namespace {
[[noreturn]] void DieOnParse(const Status& status) {
  std::fprintf(stderr, "parse error: %s\n", status.ToString().c_str());
  std::abort();
}
}  // namespace

Program MustParseProgram(TermStore& store, std::string_view src) {
  Result<Program> r = ParseProgram(store, src);
  if (!r.ok()) DieOnParse(r.status());
  return std::move(r.value());
}

Goal MustParseQuery(TermStore& store, std::string_view src) {
  Result<Goal> r = ParseQuery(store, src);
  if (!r.ok()) DieOnParse(r.status());
  return std::move(r.value());
}

const Term* MustParseTerm(TermStore& store, std::string_view src) {
  Result<const Term*> r = ParseTerm(store, src);
  if (!r.ok()) DieOnParse(r.status());
  return r.value();
}

}  // namespace gsls
