#ifndef GSLS_LANG_PARSER_H_
#define GSLS_LANG_PARSER_H_

#include <string_view>

#include "lang/program.h"
#include "util/status.h"

namespace gsls {

/// Parses a whole program in Prolog-like syntax:
///
/// ```prolog
/// % facts and rules
/// edge(a, b).
/// win(X) :- move(X, Y), not win(Y).
/// ```
///
/// `not` and `\+` both negate; variables start with an uppercase letter or
/// `_`; `_` alone is an anonymous (always fresh) variable; `%` comments run
/// to end of line. Integers lex as constants. Variable scope is one clause.
Result<Program> ParseProgram(TermStore& store, std::string_view src);

/// Parses a single query: either `?- l1, ..., ln.` or the bare literal list
/// `l1, ..., ln.` (trailing dot optional). Variables of the same name are
/// shared across the query.
Result<Goal> ParseQuery(TermStore& store, std::string_view src);

/// Parses a single term, e.g. `f(a, g(X))`. Variables are freshly
/// allocated per call.
Result<const Term*> ParseTerm(TermStore& store, std::string_view src);

/// Convenience for tests and examples ONLY: parses or abort()s with the
/// parse error message (via the internal `DieOnParse`). Production and
/// fuzzing callers must use the `Result`-returning entry points above —
/// `Must*` turns every malformed input into process death, which is a
/// crash report under a fuzzer and an outage behind a serving endpoint.
Program MustParseProgram(TermStore& store, std::string_view src);
Goal MustParseQuery(TermStore& store, std::string_view src);
const Term* MustParseTerm(TermStore& store, std::string_view src);

}  // namespace gsls

#endif  // GSLS_LANG_PARSER_H_
