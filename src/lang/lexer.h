#ifndef GSLS_LANG_LEXER_H_
#define GSLS_LANG_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace gsls {

/// Token kinds for the Prolog-like surface syntax.
enum class TokenKind {
  kName,      ///< lowercase identifier, quoted atom, or integer: `foo`, `0`
  kVariable,  ///< uppercase/underscore identifier: `X`, `_G1`, `_`
  kLParen,
  kRParen,
  kComma,
  kDot,
  kImplies,   ///< `:-`
  kQuery,     ///< `?-`
  kNot,       ///< `not` or `\+`
  kEof,
};

/// A lexed token with source position (1-based line/column).
struct Token {
  TokenKind kind;
  std::string text;
  int line;
  int column;
};

/// Splits `src` into tokens. `%` starts a line comment. Returns
/// InvalidArgument on an unrecognized character.
Result<std::vector<Token>> Lex(std::string_view src);

/// Printable name for a token kind (for diagnostics).
const char* TokenKindName(TokenKind kind);

}  // namespace gsls

#endif  // GSLS_LANG_LEXER_H_
