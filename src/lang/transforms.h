#ifndef GSLS_LANG_TRANSFORMS_H_
#define GSLS_LANG_TRANSFORMS_H_

#include "lang/program.h"

namespace gsls {

/// Builds the augmented program P' of Def. 6.1: adds the fact
/// `'$aug'('$f'('$c'))` where the predicate `'$aug'`, function `'$f'`, and
/// constant `'$c'` appear nowhere in P. Augmentation guarantees the
/// Herbrand universe contains infinitely many terms absent from P, which is
/// what Theorem 6.2(3) needs to return most-general answers for universal
/// queries (Example 6.1).
Program AugmentProgram(const Program& program);

/// Names used by `AugmentProgram`.
inline constexpr const char* kAugPredicateName = "$aug";
inline constexpr const char* kAugFunctionName = "$f";
inline constexpr const char* kAugConstantName = "$c";

/// Applies the floundering guard of Sec. 6: defines `term/1` to enumerate
/// the Herbrand universe (one fact per constant, one rule per function
/// symbol) and adds `term(X)` to each clause body for every variable `X` of
/// the clause. Returns the guarded program. `GuardGoal` performs the same
/// addition on a query. Guarded programs/queries never flounder, and the
/// transformation does not change the well-founded model restricted to the
/// original predicates.
Program AddTermGuard(const Program& program);
Goal GuardGoal(const Program& program, TermStore& store, const Goal& goal);

/// Name of the guard predicate.
inline constexpr const char* kTermGuardName = "term";

}  // namespace gsls

#endif  // GSLS_LANG_TRANSFORMS_H_
