#ifndef GSLS_STABLE_STABLE_H_
#define GSLS_STABLE_STABLE_H_

#include <vector>

#include "ground/ground_program.h"
#include "util/bitset.h"
#include "util/status.h"
#include "wfs/interpretation.h"

namespace gsls {

/// Options for stable-model enumeration.
struct StableOptions {
  size_t max_atoms = 24;        ///< Refuse larger programs (2^n search).
  size_t max_models = SIZE_MAX; ///< Stop after this many models.
};

/// True iff `candidate` (a set of true atoms) is a stable model of `gp`:
/// the least model of the Gelfond-Lifschitz reduct of `gp` by `candidate`
/// equals `candidate`.
bool IsStableModel(const GroundProgram& gp, const DenseBitset& candidate);

/// Enumerates all stable models by exhaustive candidate search with the
/// GL-reduct check. Exponential: intended for the cross-validation tests of
/// the related-work relationship the paper discusses (every well-founded
/// true atom is in every stable model; every well-founded false atom is in
/// none; if the well-founded model is total it is the unique stable model).
Result<std::vector<DenseBitset>> EnumerateStableModels(
    const GroundProgram& gp, const StableOptions& opts = {});

}  // namespace gsls

#endif  // GSLS_STABLE_STABLE_H_
