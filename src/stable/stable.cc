#include "stable/stable.h"

#include "util/strings.h"
#include "wfs/wfs.h"

namespace gsls {

bool IsStableModel(const GroundProgram& gp, const DenseBitset& candidate) {
  DenseBitset closure = PositiveClosureAssuming(gp, candidate);
  return closure == candidate;
}

Result<std::vector<DenseBitset>> EnumerateStableModels(
    const GroundProgram& gp, const StableOptions& opts) {
  size_t n = gp.atom_count();
  if (n > opts.max_atoms) {
    return Status::ResourceExhausted(
        StrCat("program has ", n, " atoms; stable enumeration capped at ",
               opts.max_atoms));
  }
  std::vector<DenseBitset> models;
  uint64_t limit = uint64_t{1} << n;
  for (uint64_t mask = 0; mask < limit; ++mask) {
    DenseBitset candidate(n);
    for (size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1) candidate.Set(i);
    }
    if (IsStableModel(gp, candidate)) {
      models.push_back(std::move(candidate));
      if (models.size() >= opts.max_models) break;
    }
  }
  return models;
}

}  // namespace gsls
