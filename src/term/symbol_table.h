#ifndef GSLS_TERM_SYMBOL_TABLE_H_
#define GSLS_TERM_SYMBOL_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace gsls {

/// Index of an interned name in a `SymbolTable`.
using SymbolId = uint32_t;

/// Index of an interned (name, arity) pair in a `SymbolTable`. Functors
/// identify both function symbols and predicate symbols, Prolog-style:
/// `p/1` and `p/2` are distinct functors.
using FunctorId = uint32_t;

/// Sentinel for "no functor".
inline constexpr FunctorId kInvalidFunctor = UINT32_MAX;

/// Interns names and (name, arity) functor pairs, assigning dense ids.
/// Lookups by id are O(1); interning is amortized O(length).
class SymbolTable {
 public:
  /// Interns `name`, returning its id (stable across calls).
  SymbolId InternName(std::string_view name);

  /// Interns the functor `name/arity`.
  FunctorId InternFunctor(std::string_view name, uint32_t arity);

  /// Returns the functor id for `name/arity` if already interned, else
  /// `kInvalidFunctor`.
  FunctorId FindFunctor(std::string_view name, uint32_t arity) const;

  /// Name for an interned symbol id.
  const std::string& NameOf(SymbolId id) const { return names_[id]; }

  /// Name part of a functor.
  const std::string& FunctorName(FunctorId id) const {
    return names_[functors_[id].name];
  }
  /// Arity part of a functor.
  uint32_t FunctorArity(FunctorId id) const { return functors_[id].arity; }
  /// "name/arity" rendering of a functor.
  std::string FunctorToString(FunctorId id) const;

  size_t name_count() const { return names_.size(); }
  size_t functor_count() const { return functors_.size(); }

 private:
  struct FunctorKey {
    SymbolId name;
    uint32_t arity;
    bool operator==(const FunctorKey&) const = default;
  };
  struct FunctorKeyHash {
    size_t operator()(const FunctorKey& k) const {
      return std::hash<uint64_t>()((uint64_t(k.name) << 32) | k.arity);
    }
  };

  std::vector<std::string> names_;
  std::unordered_map<std::string, SymbolId> name_ids_;
  std::vector<FunctorKey> functors_;
  std::unordered_map<FunctorKey, FunctorId, FunctorKeyHash> functor_ids_;
};

}  // namespace gsls

#endif  // GSLS_TERM_SYMBOL_TABLE_H_
