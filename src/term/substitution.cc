#include "term/substitution.h"

#include <algorithm>
#include <vector>

#include "util/strings.h"

namespace gsls {

const Term* Substitution::Walk(const Term* t) const {
  while (t->IsVar()) {
    const Term* next = Lookup(t->var());
    if (next == nullptr) return t;
    t = next;
  }
  return t;
}

namespace {

const Term* ApplyRec(const Substitution& s, TermStore& store, const Term* t,
                     std::unordered_map<const Term*, const Term*>& memo) {
  t = s.Walk(t);
  if (t->ground() || t->IsVar()) return t;
  auto it = memo.find(t);
  if (it != memo.end()) return it->second;
  std::vector<const Term*> args;
  args.reserve(t->arity());
  bool changed = false;
  for (const Term* a : t->args()) {
    const Term* na = ApplyRec(s, store, a, memo);
    changed = changed || (na != a);
    args.push_back(na);
  }
  const Term* out = changed ? store.MakeCompound(t->functor(), args) : t;
  memo.emplace(t, out);
  return out;
}

}  // namespace

const Term* Substitution::Apply(TermStore& store, const Term* t) const {
  if (bindings_.empty() || t->ground()) return t;
  std::unordered_map<const Term*, const Term*> memo;
  return ApplyRec(*this, store, t, memo);
}

Substitution Substitution::ComposeWith(TermStore& store,
                                       const Substitution& other) const {
  Substitution out;
  for (const auto& [var, term] : bindings_) {
    const Term* applied = other.Apply(store, term);
    // Drop trivial bindings X -> X introduced by composition.
    if (applied->IsVar() && applied->var() == var) continue;
    out.Bind(var, applied);
  }
  for (const auto& [var, term] : other.bindings()) {
    if (bindings_.find(var) == bindings_.end()) out.Bind(var, term);
  }
  return out;
}

std::string Substitution::ToString(const TermStore& store) const {
  std::vector<std::pair<VarId, const Term*>> items(bindings_.begin(),
                                                   bindings_.end());
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::string> parts;
  parts.reserve(items.size());
  for (const auto& [var, term] : items) {
    parts.push_back(
        StrCat(store.VarName(var), " -> ", store.ToString(term)));
  }
  return StrCat("{", StrJoin(parts, ", "), "}");
}

namespace {

/// Whether variable `v` occurs in `t` under substitution `s`.
bool Occurs(const Substitution& s, VarId v, const Term* t) {
  t = s.Walk(t);
  if (t->IsVar()) return t->var() == v;
  if (t->ground()) return false;
  for (const Term* a : t->args()) {
    if (Occurs(s, v, a)) return true;
  }
  return false;
}

}  // namespace

bool Unify(const Term* a, const Term* b, Substitution* subst) {
  std::vector<std::pair<const Term*, const Term*>> stack;
  stack.emplace_back(a, b);
  while (!stack.empty()) {
    auto [x, y] = stack.back();
    stack.pop_back();
    x = subst->Walk(x);
    y = subst->Walk(y);
    if (x == y) continue;  // Same pointer: hash-consed equal terms or var.
    if (x->IsVar()) {
      if (Occurs(*subst, x->var(), y)) return false;
      subst->Bind(x->var(), y);
      continue;
    }
    if (y->IsVar()) {
      if (Occurs(*subst, y->var(), x)) return false;
      subst->Bind(y->var(), x);
      continue;
    }
    if (x->functor() != y->functor()) return false;
    for (uint32_t i = 0; i < x->arity(); ++i) {
      stack.emplace_back(x->arg(i), y->arg(i));
    }
  }
  return true;
}

bool Match(const Term* pattern, const Term* t, Substitution* subst) {
  std::vector<std::pair<const Term*, const Term*>> stack;
  stack.emplace_back(pattern, t);
  while (!stack.empty()) {
    auto [p, x] = stack.back();
    stack.pop_back();
    p = subst->Walk(p);
    if (p == x) continue;
    if (p->IsVar()) {
      subst->Bind(p->var(), x);
      continue;
    }
    if (x->IsVar() || p->functor() != x->functor()) return false;
    for (uint32_t i = 0; i < p->arity(); ++i) {
      stack.emplace_back(p->arg(i), x->arg(i));
    }
  }
  return true;
}

bool MoreGeneralOn(TermStore& store, const Substitution& general,
                   const Substitution& specific, const Term* reference) {
  const Term* g = general.Apply(store, reference);
  const Term* s = specific.Apply(store, reference);
  Substitution gamma;
  return Match(g, s, &gamma);
}

}  // namespace gsls
