#ifndef GSLS_TERM_SUBSTITUTION_H_
#define GSLS_TERM_SUBSTITUTION_H_

#include <string>
#include <unordered_map>

#include "term/term.h"
#include "term/term_store.h"

namespace gsls {

/// A (triangular) substitution: a finite map from variables to terms.
/// Bindings may reference other bound variables; `Apply` and `Walk`
/// dereference chains. Substitutions produced by `Unify` are idempotent
/// after full application.
class Substitution {
 public:
  Substitution() = default;

  /// Binds `var := t`. Overwrites any existing binding (callers that need
  /// mgu semantics should only bind unbound variables, as `Unify` does).
  void Bind(VarId var, const Term* t) { bindings_[var] = t; }

  /// The binding of `var`, or nullptr if unbound.
  const Term* Lookup(VarId var) const {
    auto it = bindings_.find(var);
    return it == bindings_.end() ? nullptr : it->second;
  }

  /// Dereferences `t` through variable bindings until it is a compound or
  /// an unbound variable. Does not descend into compound arguments.
  const Term* Walk(const Term* t) const;

  /// Applies the substitution fully: every bound variable occurrence in `t`
  /// is replaced, recursively, producing a term in `store`.
  const Term* Apply(TermStore& store, const Term* t) const;

  bool empty() const { return bindings_.empty(); }
  size_t size() const { return bindings_.size(); }
  const std::unordered_map<VarId, const Term*>& bindings() const {
    return bindings_;
  }

  /// Composition: returns sigma with `sigma(t) == other(this(t))` for all t
  /// (apply `this` first, then `other`), as used for computed answer
  /// substitutions along a derivation branch.
  Substitution ComposeWith(TermStore& store, const Substitution& other) const;

  /// Renders as `{X -> f(a), Y -> Z}` (sorted by variable id).
  std::string ToString(const TermStore& store) const;

 private:
  std::unordered_map<VarId, const Term*> bindings_;
};

/// Computes the most general unifier of `a` and `b`, extending `subst`
/// in place. Performs the occurs check (required for soundness of
/// SLS-resolution). Returns false (leaving `subst` in an unspecified but
/// valid state) if the terms do not unify; callers that need rollback
/// should copy the substitution first.
bool Unify(const Term* a, const Term* b, Substitution* subst);

/// One-way matching: finds `subst` extending the given one with
/// `subst(pattern) == t`, treating variables of `t` as constants.
bool Match(const Term* pattern, const Term* t, Substitution* subst);

/// True iff `general` is at least as general as `specific` on the variables
/// of `reference`: there is a substitution gamma with
/// `gamma(general(reference)) == specific(reference)`.
bool MoreGeneralOn(TermStore& store, const Substitution& general,
                   const Substitution& specific, const Term* reference);

}  // namespace gsls

#endif  // GSLS_TERM_SUBSTITUTION_H_
