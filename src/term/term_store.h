#ifndef GSLS_TERM_TERM_STORE_H_
#define GSLS_TERM_TERM_STORE_H_

#include <initializer_list>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "term/symbol_table.h"
#include "term/term.h"
#include "util/arena.h"

namespace gsls {

/// Creates, interns, and owns all terms for one logic program universe.
///
/// All term memory is arena-managed: a `TermStore` must outlive every
/// `const Term*` it hands out. Hash-consing guarantees that two structurally
/// equal terms built through the same store are the identical pointer.
class TermStore {
 public:
  TermStore() = default;
  TermStore(const TermStore&) = delete;
  TermStore& operator=(const TermStore&) = delete;

  /// The symbol/functor tables backing this store.
  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }

  /// Allocates a fresh variable with a printable name hint. Each call
  /// returns a distinct variable term.
  const Term* NewVar(std::string_view name_hint = "_G");

  /// Returns the variable term for an existing id (requires `id` was
  /// produced by this store).
  const Term* Var(VarId id) const { return vars_[id]; }

  /// Printable name of a variable id.
  const std::string& VarName(VarId id) const { return var_names_[id]; }

  /// Number of variables allocated so far.
  uint32_t var_count() const { return static_cast<uint32_t>(vars_.size()); }

  /// Interns the compound `functor(args...)`. `functor`'s arity must equal
  /// `args.size()`.
  const Term* MakeCompound(FunctorId functor,
                           std::span<const Term* const> args);

  /// Convenience: interns `name(args...)`.
  const Term* MakeApp(std::string_view name,
                      std::initializer_list<const Term*> args);
  const Term* MakeApp(std::string_view name,
                      std::span<const Term* const> args);

  /// Convenience: interns the constant `name`.
  const Term* MakeConstant(std::string_view name) { return MakeApp(name, {}); }

  /// Renders a term using this store's symbol names (variables print by
  /// name, e.g. `X`, `_G12`).
  std::string ToString(const Term* t) const;

  /// Number of distinct interned compound terms.
  size_t interned_count() const { return interned_.size(); }
  /// Arena bytes consumed by term nodes.
  size_t arena_bytes() const { return arena_.bytes_allocated(); }

 private:
  struct TermPtrHash {
    size_t operator()(const Term* t) const { return t->hash(); }
  };
  struct TermShallowEq {
    // Children are already canonical, so equality is shallow.
    bool operator()(const Term* a, const Term* b) const {
      if (a->kind() != b->kind() || a->arity() != b->arity()) return false;
      if (a->IsVar()) return a->var() == b->var();
      if (a->functor() != b->functor()) return false;
      for (uint32_t i = 0; i < a->arity(); ++i) {
        if (a->arg(i) != b->arg(i)) return false;
      }
      return true;
    }
  };

  void AppendTermString(const Term* t, std::string* out) const;

  Arena arena_;
  SymbolTable symbols_;
  std::vector<const Term*> vars_;
  std::vector<std::string> var_names_;
  std::unordered_set<const Term*, TermPtrHash, TermShallowEq> interned_;
};

}  // namespace gsls

#endif  // GSLS_TERM_TERM_STORE_H_
