#include "term/symbol_table.h"

#include "util/strings.h"

namespace gsls {

SymbolId SymbolTable::InternName(std::string_view name) {
  auto it = name_ids_.find(std::string(name));
  if (it != name_ids_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(names_.back(), id);
  return id;
}

FunctorId SymbolTable::InternFunctor(std::string_view name, uint32_t arity) {
  FunctorKey key{InternName(name), arity};
  auto it = functor_ids_.find(key);
  if (it != functor_ids_.end()) return it->second;
  FunctorId id = static_cast<FunctorId>(functors_.size());
  functors_.push_back(key);
  functor_ids_.emplace(key, id);
  return id;
}

FunctorId SymbolTable::FindFunctor(std::string_view name,
                                   uint32_t arity) const {
  auto nit = name_ids_.find(std::string(name));
  if (nit == name_ids_.end()) return kInvalidFunctor;
  auto fit = functor_ids_.find(FunctorKey{nit->second, arity});
  if (fit == functor_ids_.end()) return kInvalidFunctor;
  return fit->second;
}

std::string SymbolTable::FunctorToString(FunctorId id) const {
  return StrCat(FunctorName(id), "/", FunctorArity(id));
}

}  // namespace gsls
