#include "term/term_store.h"

#include <cassert>

#include "util/strings.h"

namespace gsls {

namespace {

uint64_t HashCombine(uint64_t h, uint64_t v) {
  // 64-bit variant of boost::hash_combine with a stronger mix.
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4);
  h *= 0xff51afd7ed558ccdULL;
  return h ^ (h >> 33);
}

}  // namespace

const Term* TermStore::NewVar(std::string_view name_hint) {
  VarId id = static_cast<VarId>(vars_.size());
  Term* t = new (arena_.Allocate(sizeof(Term), alignof(Term))) Term();
  t->kind_ = Term::Kind::kVar;
  t->ground_ = false;
  t->id_ = id;
  t->arity_ = 0;
  t->depth_ = 1;
  t->var_count_ = 1;
  t->hash_ = HashCombine(0x5aul, id);
  t->args_ = nullptr;
  vars_.push_back(t);
  if (name_hint == "_G") {
    var_names_.push_back(StrCat("_G", id));
  } else {
    var_names_.emplace_back(name_hint);
  }
  return t;
}

const Term* TermStore::MakeCompound(FunctorId functor,
                                    std::span<const Term* const> args) {
  assert(symbols_.FunctorArity(functor) == args.size());
  // Build a probe node on the stack referencing the caller's argument
  // array; only copy into the arena if the term is new.
  Term probe;
  probe.kind_ = Term::Kind::kCompound;
  probe.id_ = functor;
  probe.arity_ = static_cast<uint32_t>(args.size());
  probe.args_ = args.data();
  uint64_t h = HashCombine(0xc0ul, functor);
  bool ground = true;
  uint32_t depth = 1;
  uint32_t var_count = 0;
  for (const Term* a : args) {
    h = HashCombine(h, a->hash());
    ground = ground && a->ground();
    if (a->depth() + 1 > depth) depth = a->depth() + 1;
    var_count += a->var_count();
  }
  probe.hash_ = h;
  probe.ground_ = ground;
  probe.depth_ = depth;
  probe.var_count_ = var_count;

  auto it = interned_.find(&probe);
  if (it != interned_.end()) return *it;

  const Term** arg_copy = nullptr;
  if (!args.empty()) {
    arg_copy = arena_.AllocateArray<const Term*>(args.size());
    for (size_t i = 0; i < args.size(); ++i) arg_copy[i] = args[i];
  }
  Term* t = new (arena_.Allocate(sizeof(Term), alignof(Term))) Term();
  *t = probe;
  t->args_ = arg_copy;
  interned_.insert(t);
  return t;
}

const Term* TermStore::MakeApp(std::string_view name,
                               std::initializer_list<const Term*> args) {
  return MakeApp(name,
                 std::span<const Term* const>(args.begin(), args.size()));
}

const Term* TermStore::MakeApp(std::string_view name,
                               std::span<const Term* const> args) {
  FunctorId f =
      symbols_.InternFunctor(name, static_cast<uint32_t>(args.size()));
  return MakeCompound(f, args);
}

void TermStore::AppendTermString(const Term* t, std::string* out) const {
  if (t->IsVar()) {
    out->append(VarName(t->var()));
    return;
  }
  out->append(symbols_.FunctorName(t->functor()));
  if (t->arity() > 0) {
    out->push_back('(');
    for (uint32_t i = 0; i < t->arity(); ++i) {
      if (i > 0) out->push_back(',');
      AppendTermString(t->arg(i), out);
    }
    out->push_back(')');
  }
}

std::string TermStore::ToString(const Term* t) const {
  std::string out;
  AppendTermString(t, &out);
  return out;
}

}  // namespace gsls
