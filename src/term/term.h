#ifndef GSLS_TERM_TERM_H_
#define GSLS_TERM_TERM_H_

#include <cstdint>
#include <span>

#include "term/symbol_table.h"

namespace gsls {

/// Identifier of a logic variable. Variable ids are global within a
/// `TermStore`; standardizing clauses apart allocates fresh ids.
using VarId = uint32_t;

/// An immutable first-order term: either a variable or a compound
/// `f(t1,...,tn)` (constants are arity-0 compounds).
///
/// Terms are created only by `TermStore`, which arena-allocates and
/// *hash-conses* them: within one store, structurally equal terms are the
/// same pointer, so equality is pointer comparison and per-term metadata
/// (groundness, depth, hash) is computed once. Terms are trivially
/// destructible and are reclaimed only when the owning store is destroyed.
class Term {
 public:
  enum class Kind : uint8_t { kVar, kCompound };

  Kind kind() const { return kind_; }
  bool IsVar() const { return kind_ == Kind::kVar; }
  bool IsCompound() const { return kind_ == Kind::kCompound; }
  /// A constant is a compound of arity 0.
  bool IsConstant() const { return IsCompound() && arity_ == 0; }

  /// Variable id; requires `IsVar()`.
  VarId var() const { return id_; }
  /// Functor id; requires `IsCompound()`.
  FunctorId functor() const { return id_; }
  uint32_t arity() const { return arity_; }
  /// Argument subterms; requires `IsCompound()`.
  std::span<const Term* const> args() const {
    return std::span<const Term* const>(args_, arity_);
  }
  const Term* arg(uint32_t i) const { return args_[i]; }

  /// True iff the term contains no variables.
  bool ground() const { return ground_; }
  /// 1 for variables and constants; 1 + max(child depth) otherwise.
  uint32_t depth() const { return depth_; }
  /// Structural hash, precomputed at interning time.
  uint64_t hash() const { return hash_; }
  /// Number of variable occurrences (with multiplicity).
  uint32_t var_count() const { return var_count_; }

 private:
  friend class TermStore;
  Term() = default;

  Kind kind_;
  bool ground_;
  uint32_t id_;        // VarId or FunctorId depending on kind_.
  uint32_t arity_;
  uint32_t depth_;
  uint32_t var_count_;
  uint64_t hash_;
  const Term* const* args_;
};

}  // namespace gsls

#endif  // GSLS_TERM_TERM_H_
