#include "serve/server.h"

#include <cassert>
#include <iterator>
#include <utility>

#include "obs/trace.h"
#include "util/cancel.h"
#include "wfs/wfs.h"

namespace gsls::serve {

// --- DeltaQueue -----------------------------------------------------------

uint64_t DeltaQueue::Push(DeltaOp op) {
  std::unique_lock<std::mutex> l(mu_);
  not_full_.wait(l, [&] { return items_.size() < capacity_ || closed_; });
  if (closed_) return 0;
  op.seq = next_seq_++;
  const uint64_t seq = op.seq;
  items_.push_back(std::move(op));
  l.unlock();
  not_empty_.notify_one();
  return seq;
}

bool DeltaQueue::DrainInto(std::vector<DeltaOp>* out, size_t max_batch) {
  out->clear();
  std::unique_lock<std::mutex> l(mu_);
  not_empty_.wait(l, [&] { return !items_.empty() || closed_; });
  if (items_.empty()) return false;  // closed and dry
  if (items_.size() <= max_batch) {
    out->swap(items_);
  } else {
    out->assign(std::make_move_iterator(items_.begin()),
                std::make_move_iterator(items_.begin() + max_batch));
    items_.erase(items_.begin(), items_.begin() + max_batch);
  }
  l.unlock();
  not_full_.notify_all();
  return true;
}

void DeltaQueue::Close() {
  {
    std::lock_guard<std::mutex> l(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

size_t DeltaQueue::depth() const {
  std::lock_guard<std::mutex> l(mu_);
  return items_.size();
}

uint64_t DeltaQueue::last_seq() const {
  std::lock_guard<std::mutex> l(mu_);
  return next_seq_ - 1;
}

// --- ServingSolver --------------------------------------------------------

ServingSolver::ServingSolver(std::unique_ptr<IncrementalSolver> solver,
                             ServeOptions opts)
    : solver_(std::move(solver)),
      opts_(opts),
      queue_(opts.queue_capacity) {
  if (opts_.telemetry != nullptr) {
    obs::MetricsRegistry& m = opts_.telemetry->metrics;
    tele_.epoch = m.GetGauge("serve.epoch");
    tele_.queue_depth = m.GetGauge("serve.queue_depth");
    tele_.epoch_lag = m.GetGauge("serve.epoch_lag");
    tele_.pinned_readers = m.GetGauge("serve.pinned_readers");
    tele_.batch_deltas = m.GetHistogram("serve.batch_deltas");
    tele_.publish_us = m.GetHistogram("serve.publish_us");
    tele_.pages_cloned = m.GetHistogram("serve.pages_cloned");
    tele_.read_latency_ns = m.GetHistogram("serve.read.latency_ns");
    tele_.reads = m.GetCounter("serve.read.count");
    tele_.reclaimed = m.GetCounter("serve.reclaimed_snapshots");
    tele_.recycled_pages = m.GetCounter("serve.recycled_pages");
    tele_.aborted = m.GetCounter("serve.aborted_passes");
  }
  solver_->EnableResolveLog();
  const WfsModel& m0 = solver_->Model();
  // The serving contract publishes only completed models; the initial
  // solve runs before any token/deadline should be armed.
  assert(m0.outcome == SolveOutcome::kCompleted &&
         "initial solve must complete before serving starts");
  (void)m0;
  PublishCurrent(/*seq=*/0, /*batch_size=*/0);
  paused_ = opts_.start_paused;
  writer_ = std::thread(&ServingSolver::WriterLoop, this);
}

ServingSolver::~ServingSolver() { Stop(); }

uint64_t ServingSolver::Assert(const Term* fact) {
  DeltaOp op;
  op.kind = DeltaOp::Kind::kAssertFact;
  op.fact = fact;
  return Submit(std::move(op));
}

uint64_t ServingSolver::Retract(const Term* fact) {
  DeltaOp op;
  op.kind = DeltaOp::Kind::kRetractFact;
  op.fact = fact;
  return Submit(std::move(op));
}

uint64_t ServingSolver::Assert(Clause rule) {
  DeltaOp op;
  op.kind = DeltaOp::Kind::kAssertRule;
  op.rule = std::move(rule);
  return Submit(std::move(op));
}

uint64_t ServingSolver::Retract(Clause rule) {
  DeltaOp op;
  op.kind = DeltaOp::Kind::kRetractRule;
  op.rule = std::move(rule);
  return Submit(std::move(op));
}

uint64_t ServingSolver::Submit(DeltaOp op) {
  const uint64_t seq = queue_.Push(std::move(op));
  if (tele_.queue_depth != nullptr) {
    tele_.queue_depth->Set(static_cast<int64_t>(queue_.depth()));
  }
  return seq;
}

void ServingSolver::Flush() {
  const uint64_t target = queue_.last_seq();
  std::unique_lock<std::mutex> l(pub_mu_);
  pub_cv_.wait(l, [&] { return published_seq_ >= target; });
}

void ServingSolver::Pause() {
  std::unique_lock<std::mutex> l(ctl_mu_);
  paused_ = true;
  ctl_cv_.wait(l, [&] { return !writer_in_batch_; });
}

void ServingSolver::Resume() {
  {
    std::lock_guard<std::mutex> l(ctl_mu_);
    paused_ = false;
  }
  ctl_cv_.notify_all();
}

void ServingSolver::Stop() {
  {
    std::lock_guard<std::mutex> l(ctl_mu_);
    stopping_ = true;
    paused_ = false;
  }
  ctl_cv_.notify_all();
  queue_.Close();
  if (writer_.joinable()) writer_.join();
}

SnapshotAnswer ServingSolver::Read(const EpochStore::ReaderHandle& h,
                                   const Term* ground_atom,
                                   uint64_t* epoch_out, uint64_t* seq_out) {
  const uint64_t t0 = opts_.telemetry != nullptr ? obs::NowNs() : 0;
  SnapshotAnswer ans;
  uint64_t epoch = 0;
  uint64_t seq = 0;
  {
    EpochStore::ReadGuard g(epochs_, h);
    ans = g->Query(ground_atom);
    epoch = g.epoch();
    seq = g->seq();
  }
  if (epoch_out != nullptr) *epoch_out = epoch;
  if (seq_out != nullptr) *seq_out = seq;
  if (opts_.telemetry != nullptr) {
    tele_.reads->Add(1);
    tele_.read_latency_ns->Record(obs::NowNs() - t0);
  }
  return ans;
}

ServingSolver::Stats ServingSolver::stats() const {
  std::lock_guard<std::mutex> l(pub_mu_);
  return stats_;
}

uint64_t ServingSolver::published_seq() const {
  std::lock_guard<std::mutex> l(pub_mu_);
  return published_seq_;
}

void ServingSolver::WriterLoop() {
  std::vector<DeltaOp> batch;
  for (;;) {
    // Gate on pause *before* draining: a paused writer must leave the
    // queue accumulating so `Resume` folds everything pending into one
    // batch (the deterministic-batching lever start_paused exists for).
    {
      std::unique_lock<std::mutex> l(ctl_mu_);
      ctl_cv_.wait(l, [&] { return !paused_ || stopping_; });
    }
    if (!queue_.DrainInto(&batch, opts_.max_batch)) break;
    {
      std::unique_lock<std::mutex> l(ctl_mu_);
      // A Pause() that landed between the gate and the drain wins: hold
      // the drained batch until resumed. `writer_in_batch_` flips under
      // the same lock acquisition that observes `!paused_`, so `Pause`
      // can never return while a batch is (about to be) in flight.
      ctl_cv_.wait(l, [&] { return !paused_ || stopping_; });
      writer_in_batch_ = true;
    }
    // Each delta only marks dirty state; the single Model() below pays
    // one change-pruned cone re-solve for the entire batch.
    for (const DeltaOp& op : batch) {
      ApplyDelta(*solver_, op);
    }
    const WfsModel& m = solver_->Model();
    if (m.outcome == SolveOutcome::kCompleted) {
      PublishCurrent(batch.back().seq, batch.size());
      tape_consistent_ = true;
    } else {
      // Nothing publishes: readers keep the last consistent epoch. The
      // folded deltas and resolve log carry into the next pass.
      tape_consistent_ = false;
      std::lock_guard<std::mutex> l(pub_mu_);
      ++stats_.aborted_passes;
      if (tele_.aborted != nullptr) tele_.aborted->Add(1);
    }
    {
      std::lock_guard<std::mutex> l(ctl_mu_);
      writer_in_batch_ = false;
    }
    ctl_cv_.notify_all();
  }
}

void ServingSolver::PublishCurrent(uint64_t seq, size_t batch_size) {
  const uint64_t t0 = opts_.telemetry != nullptr ? obs::NowNs() : 0;
  IncrementalSolver::ResolveLog log = solver_->TakeResolveLog();
  const uint64_t cloned_before = builder_.stats().pages_cloned;
  const uint64_t epoch = epochs_.current_epoch() + 1;
  std::shared_ptr<const Snapshot> snap =
      builder_.Build(*solver_, std::move(log), epoch, seq);
  epochs_.Publish(std::move(snap));

  std::vector<std::shared_ptr<const Snapshot>> dead =
      epochs_.DrainReclaimable();
  const uint64_t recycled_before = builder_.stats().pages_recycled;
  for (std::shared_ptr<const Snapshot>& s : dead) {
    builder_.Recycle(std::move(s));
  }
  const uint64_t recycled = builder_.stats().pages_recycled - recycled_before;

  {
    std::lock_guard<std::mutex> l(pub_mu_);
    published_seq_ = seq;
    ++stats_.epochs_published;
    if (batch_size > 0) {
      ++stats_.batches;
      stats_.deltas_applied += batch_size;
      if (batch_size > stats_.max_batch) stats_.max_batch = batch_size;
    }
    stats_.reclaimed_snapshots += dead.size();
    stats_.recycled_pages += recycled;
  }
  pub_cv_.notify_all();

  if (opts_.telemetry != nullptr) {
    tele_.epoch->Set(static_cast<int64_t>(epoch));
    tele_.queue_depth->Set(static_cast<int64_t>(queue_.depth()));
    const uint64_t min_pin = epochs_.MinPinned();
    tele_.epoch_lag->Set(static_cast<int64_t>(
        min_pin == EpochStore::kNotPinned ? 0 : epoch - min_pin));
    tele_.pinned_readers->Set(
        static_cast<int64_t>(epochs_.pinned_readers()));
    if (batch_size > 0) tele_.batch_deltas->Record(batch_size);
    tele_.pages_cloned->Record(builder_.stats().pages_cloned -
                               cloned_before);
    tele_.publish_us->Record((obs::NowNs() - t0) / 1000);
    if (!dead.empty()) tele_.reclaimed->Add(dead.size());
    if (recycled > 0) tele_.recycled_pages->Add(recycled);
  }
}

}  // namespace gsls::serve
