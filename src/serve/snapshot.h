#ifndef GSLS_SERVE_SNAPSHOT_H_
#define GSLS_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "solver/incremental.h"
#include "wfs/interpretation.h"

namespace gsls {
namespace check {
class ServingAuditor;
}  // namespace check

namespace serve {

/// Atoms per copy-on-write page. Small enough that a point delta clones
/// little (one page is ~1KB of values + 8KB of stages), large enough that
/// a snapshot of a million-atom program is ~1000 pointers.
inline constexpr uint32_t kPageAtoms = 1024;

/// One immutable page of the versioned tapes: the truth byte and (when the
/// solver computes levels) the Def. 2.4 stage slots of up to `kPageAtoms`
/// consecutive atom ids. Consecutive snapshots share untouched pages via
/// `shared_ptr`; a batch that re-solves nothing on a page costs nothing
/// for it.
struct Page {
  std::vector<uint8_t> values;        ///< byte-per-atom `TruthValue`
  std::vector<uint32_t> true_stage;   ///< empty unless levels are exported
  std::vector<uint32_t> false_stage;  ///< empty unless levels are exported
};

/// Immutable term → atom-id index carried by every snapshot so readers
/// never touch the writer-mutated `GroundProgram` registry (its
/// `unordered_map` is not safe to probe while the writer interns).
/// Copy-on-intern: rebuilt only by a publish whose batch registered new
/// atoms, shared by every other publish.
struct AtomIndex {
  std::unordered_map<const Term*, AtomId> ids;
  std::vector<const Term*> terms;  ///< id → hash-consed term

  std::optional<AtomId> Find(const Term* t) const {
    auto it = ids.find(t);
    if (it == ids.end()) return std::nullopt;
    return it->second;
  }
};

/// What a point read against a snapshot reports. `registered == false`
/// means the atom was outside this epoch's relevant instantiation — by
/// the engine convention it is false (failed) at stage 1, no solving.
struct SnapshotAnswer {
  TruthValue value = TruthValue::kFalse;
  uint32_t true_stage = 0;
  uint32_t false_stage = 0;
  bool registered = false;
};

/// One published epoch: an immutable, internally consistent image of the
/// well-founded model (and, with levels, the exact Def. 2.4 stages) of
/// the program state after the delta tagged `seq` was folded in. Readers
/// hold a raw pointer while pinned (see `EpochStore`); the object is kept
/// alive by the store until no pin can reach it.
class Snapshot {
 public:
  uint64_t epoch() const { return epoch_; }
  /// Sequence number of the last delta folded into this image (0 for the
  /// initial publish). The oracle-replay tests key on this: rebuilding
  /// the base program plus deltas [1, seq] and fresh-solving must
  /// reproduce every byte below.
  uint64_t seq() const { return seq_; }
  size_t atom_count() const { return atom_count_; }
  bool has_levels() const { return has_levels_; }
  const AtomIndex& index() const { return *index_; }

  TruthValue Value(AtomId a) const {
    const Page& p = *pages_[a / kPageAtoms];
    return static_cast<TruthValue>(p.values[a % kPageAtoms]);
  }

  SnapshotAnswer Query(AtomId a) const {
    SnapshotAnswer out;
    if (a >= atom_count_) {
      // Interned after this epoch published: unregistered here.
      out.value = TruthValue::kFalse;
      out.false_stage = 1;
      out.registered = false;
      return out;
    }
    out.registered = true;
    const Page& p = *pages_[a / kPageAtoms];
    const uint32_t i = a % kPageAtoms;
    out.value = static_cast<TruthValue>(p.values[i]);
    if (has_levels_) {
      out.true_stage = p.true_stage[i];
      out.false_stage = p.false_stage[i];
    }
    return out;
  }

  /// Point read by (hash-consed) term. Unregistered atoms are false at
  /// stage 1 — identical to `IncrementalSolver::QueryAtom(const Term*)`.
  SnapshotAnswer Query(const Term* ground_atom) const {
    std::optional<AtomId> id = index_->Find(ground_atom);
    if (!id.has_value()) {
      SnapshotAnswer out;
      out.value = TruthValue::kFalse;
      out.false_stage = 1;
      out.registered = false;
      return out;
    }
    return Query(*id);
  }

  size_t page_count() const { return pages_.size(); }

 private:
  friend class SnapshotBuilder;
  friend class gsls::check::ServingAuditor;

  uint64_t epoch_ = 0;
  uint64_t seq_ = 0;
  size_t atom_count_ = 0;
  bool has_levels_ = false;
  std::vector<std::shared_ptr<Page>> pages_;
  std::shared_ptr<const AtomIndex> index_;
};

/// Writer-owned snapshot factory. Clones exactly the pages the solver's
/// resolve log touched (plus growth), shares the rest with the previous
/// build, and recycles pages of reclaimed snapshots through a bounded
/// free pool — a retired epoch's tapes re-enter circulation only once
/// provably unreachable (`use_count() == 1`), which the serving audit
/// re-checks.
class SnapshotBuilder {
 public:
  struct Stats {
    uint64_t pages_cloned = 0;
    uint64_t pages_shared = 0;
    uint64_t pages_recycled = 0;
    uint64_t pool_hits = 0;
    uint64_t index_rebuilds = 0;
  };

  /// Builds the snapshot for `epoch`/`seq` from the solver's current
  /// tapes. Call only between solver passes (the writer, after its
  /// `Model()` returned `kCompleted`).
  std::shared_ptr<const Snapshot> Build(const IncrementalSolver& solver,
                                        IncrementalSolver::ResolveLog log,
                                        uint64_t epoch, uint64_t seq);

  /// Returns a retired snapshot's now-exclusive pages to the free pool.
  /// Pages still shared with a live snapshot are left untouched; the
  /// snapshot object itself must be uniquely owned by the caller (it is
  /// destroyed here).
  void Recycle(std::shared_ptr<const Snapshot> retired);

  const Stats& stats() const { return stats_; }

 private:
  friend class gsls::check::ServingAuditor;

  static constexpr size_t kMaxPoolPages = 4096;

  std::shared_ptr<Page> AllocPage();

  std::shared_ptr<const Snapshot> prev_;
  std::shared_ptr<const AtomIndex> index_;
  std::vector<std::shared_ptr<Page>> pool_;
  Stats stats_;
};

}  // namespace serve
}  // namespace gsls

#endif  // GSLS_SERVE_SNAPSHOT_H_
