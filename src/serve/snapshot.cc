#include "serve/snapshot.h"

#include <algorithm>
#include <utility>

#include "ground/ground_program.h"
#include "solver/stages.h"
#include "solver/truth_tape.h"

namespace gsls::serve {

std::shared_ptr<Page> SnapshotBuilder::AllocPage() {
  if (!pool_.empty()) {
    std::shared_ptr<Page> p = std::move(pool_.back());
    pool_.pop_back();
    ++stats_.pool_hits;
    return p;
  }
  return std::make_shared<Page>();
}

std::shared_ptr<const Snapshot> SnapshotBuilder::Build(
    const IncrementalSolver& solver, IncrementalSolver::ResolveLog log,
    uint64_t epoch, uint64_t seq) {
  const solver::TruthTape& tape = solver.tape();
  const solver::StageTape& stape = solver.stage_tape();
  const bool levels = stape.size() == tape.size() && tape.size() > 0;
  const size_t atom_count = tape.size();
  const size_t npages = (atom_count + kPageAtoms - 1) / kPageAtoms;
  const size_t prev_atoms = prev_ != nullptr ? prev_->atom_count_ : 0;
  const bool from_scratch = prev_ == nullptr || log.all_atoms ||
                            prev_->has_levels_ != levels;

  // A page must be re-materialized when an atom on it was re-solved, when
  // its coverage changed (growth moves the partial tail page), or when
  // there is no previous build to share with.
  std::vector<uint8_t> dirty(npages, from_scratch ? 1 : 0);
  if (!from_scratch) {
    for (AtomId a : log.atoms) {
      if (a < atom_count) dirty[a / kPageAtoms] = 1;
    }
    if (atom_count != prev_atoms) {
      // Tail pages beyond the old count are new; the old partial tail
      // page (if any) changed size.
      const size_t first_new = prev_atoms / kPageAtoms;
      for (size_t p = first_new; p < npages; ++p) dirty[p] = 1;
    }
  }

  auto snap = std::make_shared<Snapshot>();
  snap->epoch_ = epoch;
  snap->seq_ = seq;
  snap->atom_count_ = atom_count;
  snap->has_levels_ = levels;
  snap->pages_.resize(npages);

  for (size_t p = 0; p < npages; ++p) {
    if (dirty[p] == 0) {
      snap->pages_[p] = prev_->pages_[p];
      ++stats_.pages_shared;
      continue;
    }
    const AtomId base = static_cast<AtomId>(p * kPageAtoms);
    const uint32_t span = static_cast<uint32_t>(
        std::min<size_t>(kPageAtoms, atom_count - base));
    std::shared_ptr<Page> page = AllocPage();
    page->values.resize(span);
    for (uint32_t i = 0; i < span; ++i) {
      page->values[i] = static_cast<uint8_t>(tape.Value(base + i));
    }
    if (levels) {
      page->true_stage.assign(stape.true_stage.begin() + base,
                              stape.true_stage.begin() + base + span);
      page->false_stage.assign(stape.false_stage.begin() + base,
                               stape.false_stage.begin() + base + span);
    } else {
      page->true_stage.clear();
      page->false_stage.clear();
    }
    snap->pages_[p] = std::move(page);
    ++stats_.pages_cloned;
  }

  // Copy-on-intern: the index is rebuilt only when the atom universe
  // moved, so steady-state publishes share one immutable map.
  if (index_ == nullptr || index_->terms.size() != atom_count) {
    const GroundProgram& gp = solver.program();
    auto index = std::make_shared<AtomIndex>();
    index->terms.resize(atom_count);
    index->ids.reserve(atom_count);
    for (AtomId a = 0; a < atom_count; ++a) {
      const Term* t = gp.AtomTerm(a);
      index->terms[a] = t;
      index->ids.emplace(t, a);
    }
    index_ = std::move(index);
    ++stats_.index_rebuilds;
  }
  snap->index_ = index_;

  prev_ = snap;
  return snap;
}

void SnapshotBuilder::Recycle(std::shared_ptr<const Snapshot> retired) {
  if (retired == nullptr || retired.use_count() != 1) {
    return;  // still reachable somewhere — never reuse its pages
  }
  std::vector<std::shared_ptr<Page>> pages = retired->pages_;
  retired.reset();  // the snapshot dies; its own page refs are released
  for (std::shared_ptr<Page>& p : pages) {
    if (p.use_count() == 1 && pool_.size() < kMaxPoolPages) {
      pool_.push_back(std::move(p));
      ++stats_.pages_recycled;
    }
  }
}

}  // namespace gsls::serve
