#include "serve/delta.h"

#include <optional>
#include <utility>
#include <vector>

#include "ground/ground_program.h"

namespace gsls::serve {

RuleId AssertClause(IncrementalSolver& inc, const Clause& rule,
                    bool* changed) {
  std::vector<const Term*> pos;
  std::vector<const Term*> neg;
  pos.reserve(rule.body.size());
  for (const Literal& l : rule.body) {
    (l.positive ? pos : neg).push_back(l.atom);
  }
  return inc.AssertRule(rule.head, pos, neg, changed);
}

bool RetractClause(IncrementalSolver& inc, const Clause& rule) {
  if (rule.IsFact()) {
    return inc.Retract(rule.head);
  }
  const GroundProgram& gp = inc.program();
  const std::optional<AtomId> head = gp.FindAtom(rule.head);
  if (!head.has_value()) return false;
  GroundRule ground;
  ground.head = *head;
  for (const Literal& l : rule.body) {
    const std::optional<AtomId> a = gp.FindAtom(l.atom);
    if (!a.has_value()) return false;  // unknown atom: no such rule exists
    (l.positive ? ground.pos : ground.neg).push_back(*a);
  }
  const std::optional<RuleId> id = gp.FindRule(std::move(ground));
  if (!id.has_value()) return false;
  return inc.RetractRule(*id);
}

bool ApplyDelta(IncrementalSolver& inc, const DeltaOp& op) {
  switch (op.kind) {
    case DeltaOp::Kind::kAssertFact:
      return inc.Assert(op.fact);
    case DeltaOp::Kind::kRetractFact:
      return inc.Retract(op.fact);
    case DeltaOp::Kind::kAssertRule: {
      bool changed = false;
      AssertClause(inc, op.rule, &changed);
      return changed;
    }
    case DeltaOp::Kind::kRetractRule:
      return RetractClause(inc, op.rule);
  }
  return false;
}

}  // namespace gsls::serve
