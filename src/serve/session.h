#ifndef GSLS_SERVE_SESSION_H_
#define GSLS_SERVE_SESSION_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "core/engine.h"  // GoalStatus — the unified status vocabulary
#include "core/ordinal.h"
#include "ground/grounder.h"
#include "serve/server.h"
#include "solver/incremental.h"
#include "util/status.h"

namespace gsls {

/// Options for `Session::Open`.
struct SessionOptions {
  GroundingOptions grounding;
  /// Solver knobs (threads, telemetry, cancellation, warm interiors).
  /// `solver.compute_levels` is overridden by `compute_levels` below.
  SolverOptions solver;
  /// Def. 2.4 stage levels on every answer (≈1.2x solve overhead).
  bool compute_levels = true;
  /// Concurrent serving mode: reads hit immutable MVCC snapshots while a
  /// writer thread batches deltas (src/serve/server.h). Off: the session
  /// is a synchronous single-owner facade with zero extra threads.
  bool serving = false;
  serve::ServeOptions serve;
};

/// The one result struct every query surface now returns — value, Def. 2.4
/// stage, outcome, and cost counters, replacing the three divergent shapes
/// (`TabledEngine::RelevantAnswer`, `GlobalSlsEngine`'s `GoalStatus`,
/// `IncrementalSolver::QueryAnswer`).
struct SessionAnswer {
  TruthValue value = TruthValue::kFalse;
  /// The Thm 4.7 correspondence applied to `value` — `kSuccessful` /
  /// `kFailed` / `kIndeterminate` — or `kUnknown` when the pass aborted
  /// (`outcome != kCompleted`; never a fabricated answer).
  GoalStatus status = GoalStatus::kUnknown;
  SolveOutcome outcome = SolveOutcome::kCompleted;
  /// Exact Def. 2.4 stages (when levels are computed).
  uint32_t true_stage = 0;
  uint32_t false_stage = 0;
  /// Cor. 4.6 level of the decided answer, when levels are computed.
  std::optional<Ordinal> level;
  /// Serving mode: which epoch/delta-prefix answered. Direct mode: 0.
  uint64_t epoch = 0;
  uint64_t seq = 0;
  /// Cost counters (direct mode; serving reads are pure snapshot lookups
  /// and report zeros).
  uint32_t cone_components = 0;
  uint32_t resolved_components = 0;
  uint32_t memo_hits = 0;
  uint64_t cone_atoms = 0;
};

/// The unified entry point to the system: open a program (or adopt a
/// solver), stream `Assert`/`Retract` deltas, point-`Query` atoms, and
/// take whole-model `Snapshot`s — one API over what used to be three
/// (`TabledEngine::SolveRelevant`, `GlobalSlsEngine::StatusOfRelevant`,
/// raw `IncrementalSolver::QueryAtom`). Both engines are now thin
/// adapters over this facade.
///
/// Delta vocabulary (the consolidated overload set — docs/serving.md has
/// the migration table from the old `AssertAtom`/`AssertFact`/... zoo):
///
///   session.Assert(fact);        // ground fact, hash-consed Term*
///   session.Retract(fact);
///   session.Assert(clause);      // ground Clause -> Result<RuleId>
///   session.Retract(clause);     // content-addressed
///
/// Direct mode (default) is a synchronous single-owner wrapper: deltas
/// apply immediately, queries pay `down-cone ∩ dirty`. Serving mode runs
/// the MVCC layer: deltas enqueue to the batching writer, queries read
/// the pinned epoch's immutable snapshot.
class Session {
 public:
  /// Grounds `program` (relevant instantiation) and opens a session on it.
  static Result<Session> Open(const Program& program,
                              SessionOptions opts = {});

  /// Wraps an already-built solver (the engines' adapter path). The
  /// solver's configured options win over `opts.solver`.
  static Session Adopt(std::unique_ptr<IncrementalSolver> solver,
                       SessionOptions opts = {});

  Session(Session&&) noexcept;
  Session& operator=(Session&&) noexcept;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  ~Session();

  // --- deltas (the consolidated vocabulary) ---

  /// Asserts/retracts the ground fact `fact.`. Direct mode returns
  /// whether the program changed; serving mode returns true once the
  /// delta is enqueued (application is asynchronous — `Flush` to wait).
  bool Assert(const Term* fact);
  bool Retract(const Term* fact);

  /// Asserts the ground clause. Direct mode returns its rule id and
  /// reports `*changed`; serving mode enqueues and returns id 0 (the
  /// retraction handle is the clause itself, content-addressed).
  /// Nonground clauses are `InvalidArgument` — deltas never re-ground.
  Result<RuleId> Assert(const Clause& rule, bool* changed = nullptr);
  /// Content-addressed retraction of the identical clause. Direct mode
  /// returns whether the program changed; serving mode, once enqueued.
  bool Retract(const Clause& rule);

  // --- queries ---

  /// Point query by hash-consed ground atom. Atoms outside the relevant
  /// instantiation are false (failed) at stage 1 — every surface shares
  /// this convention now.
  SessionAnswer Query(const Term* ground_atom);
  /// By already-known atom id (no hash lookup).
  SessionAnswer Query(AtomId atom);

  /// Serving mode: blocks until every delta submitted before the call is
  /// published. Direct mode: no-op (deltas are synchronous).
  void Flush();

  /// An immutable whole-model image. Serving mode: the current published
  /// epoch (no solving). Direct mode: built on demand from the settled
  /// solver (pays a `Model()` if deltas are pending).
  std::shared_ptr<const serve::Snapshot> SnapshotNow();

  // --- composition / escape hatches ---

  bool serving() const { return server_ != nullptr; }
  /// The underlying solver. Serving mode: writer-owned — quiesce first
  /// (`server()->Pause()`), as the audit does.
  IncrementalSolver& solver() {
    return server_ != nullptr ? *server_solver_ : *direct_;
  }
  const IncrementalSolver& solver() const {
    return server_ != nullptr ? *server_solver_ : *direct_;
  }
  serve::ServingSolver* server() { return server_.get(); }

  /// Cancellation passthrough (direct mode; see docs/serving.md for the
  /// serving-mode interaction).
  void SetDeadlineNs(uint64_t deadline_ns);
  void SetStepBudget(uint64_t step_budget);

 private:
  Session(std::unique_ptr<IncrementalSolver> solver, SessionOptions opts);

  SessionAnswer FromQueryAnswer(
      const IncrementalSolver::QueryAnswer& qa) const;
  SessionAnswer FromSnapshotAnswer(const serve::SnapshotAnswer& sa,
                                   uint64_t epoch, uint64_t seq) const;

  SessionOptions opts_;
  /// Direct mode: the owned solver. Serving mode: null (the server owns).
  std::unique_ptr<IncrementalSolver> direct_;
  std::unique_ptr<serve::ServingSolver> server_;
  /// Raw view of the server-owned solver (diagnostics; quiesce first).
  IncrementalSolver* server_solver_ = nullptr;
  /// Serving mode: the facade's own reader slot. `Query` through it is
  /// single-threaded per Session; concurrent reader fleets register their
  /// own handles via `server()`.
  serve::EpochStore::ReaderHandle reader_;
};

}  // namespace gsls

#endif  // GSLS_SERVE_SESSION_H_
