#ifndef GSLS_SERVE_DELTA_H_
#define GSLS_SERVE_DELTA_H_

#include <cstdint>

#include "lang/clause.h"
#include "solver/incremental.h"

namespace gsls::serve {

/// The consolidated delta vocabulary. Everything the system can change
/// between queries is one of these four shapes — a ground fact or a
/// ground clause, asserted or retracted. The facade (`gsls::Session`),
/// the serving writer, and the engines' adapters all speak this; the
/// historical `AssertAtom`/`AssertFact`/`Assert(Term)`/id-based spellings
/// are thin compatibility shims over it (see docs/serving.md for the
/// migration table).
struct DeltaOp {
  enum class Kind : uint8_t {
    kAssertFact,
    kRetractFact,
    kAssertRule,
    kRetractRule,
  };

  Kind kind = Kind::kAssertFact;
  const Term* fact = nullptr;  ///< fact kinds (hash-consed ground atom)
  Clause rule;                 ///< rule kinds (ground clause)
  uint64_t seq = 0;            ///< assigned at enqueue; 1-based
};

/// Splits a ground clause's body by literal sign and asserts it (unit
/// clauses take the fact path). Returns the rule id; `*changed` (when
/// non-null) reports whether the program moved. The one definition of
/// the clause → solver conversion shared by every entry point.
RuleId AssertClause(IncrementalSolver& inc, const Clause& rule,
                    bool* changed = nullptr);

/// Content-addressed retraction of the rule identical to `rule`. Atoms
/// the program never registered mean no such rule exists — nothing to
/// retract. Returns true iff the program changed.
bool RetractClause(IncrementalSolver& inc, const Clause& rule);

/// Applies one queued delta; returns whether the program changed.
bool ApplyDelta(IncrementalSolver& inc, const DeltaOp& op);

}  // namespace gsls::serve

#endif  // GSLS_SERVE_DELTA_H_
