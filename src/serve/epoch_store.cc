#include "serve/epoch_store.h"

#include <cassert>
#include <thread>

namespace gsls::serve {

void EpochStore::ReaderHandle::Release() {
  if (store_ == nullptr) return;
  Slot& s = store_->slots_[slot_];
  s.pin.store(kNotPinned, std::memory_order_release);
  s.used.store(0, std::memory_order_release);
  store_ = nullptr;
}

EpochStore::ReaderHandle EpochStore::RegisterReader() {
  ReaderHandle h;
  for (size_t i = 0; i < kMaxReaders; ++i) {
    uint8_t expect = 0;
    if (slots_[i].used.compare_exchange_strong(expect, 1,
                                               std::memory_order_acq_rel)) {
      h.store_ = this;
      h.slot_ = i;
      return h;
    }
  }
  return h;  // invalid: table full
}

EpochStore::Pinned EpochStore::Pin(const ReaderHandle& h) {
  assert(h.valid() && h.store_ == this);
  Slot& s = slots_[h.slot_];
  uint64_t e = epoch_.load(std::memory_order_seq_cst);
  for (;;) {
    s.pin.store(e, std::memory_order_seq_cst);
    const uint64_t now = epoch_.load(std::memory_order_seq_cst);
    if (now == e) break;
    e = now;  // publish raced the pin; re-pin at the newer epoch
  }
  assert(e >= 1 && "Pin before the first publish");
  // Safe only after a successful revalidation: the slot for `e` cannot be
  // overwritten or cleared while our pin is visible (see class comment).
  const Snapshot* snap = ring_[e % kRingSize].get();
  return Pinned{e, snap};
}

void EpochStore::Unpin(const ReaderHandle& h) {
  assert(h.valid() && h.store_ == this);
  slots_[h.slot_].pin.store(kNotPinned, std::memory_order_seq_cst);
}

void EpochStore::Publish(std::shared_ptr<const Snapshot> snap) {
  const uint64_t e = snap->epoch();
  assert(e == current_epoch() + 1 && "epochs publish in sequence");
  if (e >= kRingSize) {
    // A reader pinned kRingSize epochs back still reaches this slot;
    // wait for it rather than yank its snapshot.
    while (MinPinned() <= e - kRingSize) {
      std::this_thread::yield();
    }
  }
  if (current_ != nullptr) {
    retired_.emplace_back(current_->epoch(), current_);
  }
  ring_[e % kRingSize] = snap;
  current_ = std::move(snap);
  epoch_.store(e, std::memory_order_seq_cst);
}

uint64_t EpochStore::MinPinned() const {
  uint64_t min = kNotPinned;
  for (const Slot& s : slots_) {
    if (s.used.load(std::memory_order_acquire) == 0) continue;
    const uint64_t p = s.pin.load(std::memory_order_seq_cst);
    if (p < min) min = p;
  }
  return min;
}

size_t EpochStore::pinned_readers() const {
  size_t n = 0;
  for (const Slot& s : slots_) {
    if (s.used.load(std::memory_order_acquire) != 0 &&
        s.pin.load(std::memory_order_acquire) != kNotPinned) {
      ++n;
    }
  }
  return n;
}

std::vector<std::shared_ptr<const Snapshot>> EpochStore::DrainReclaimable() {
  std::vector<std::shared_ptr<const Snapshot>> out;
  const uint64_t min = MinPinned();
  while (!retired_.empty() && retired_.front().first < min) {
    auto [e, snap] = std::move(retired_.front());
    retired_.pop_front();
    // After the scan above, no reader can newly pin an epoch below `min`
    // (its revalidating load would see a newer epoch), so the ring slot
    // is unreachable and safe for the writer to clear.
    std::shared_ptr<const Snapshot>& slot = ring_[e % kRingSize];
    if (slot != nullptr && slot->epoch() == e) {
      slot.reset();
    }
    reclaim_log_.push_back(ReclaimRecord{e, min});
    if (reclaim_log_.size() > kMaxReclaimLog) reclaim_log_.pop_front();
    out.push_back(std::move(snap));
  }
  return out;
}

}  // namespace gsls::serve
