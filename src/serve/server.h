#ifndef GSLS_SERVE_SERVER_H_
#define GSLS_SERVE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/delta.h"
#include "serve/epoch_store.h"
#include "serve/snapshot.h"
#include "solver/incremental.h"

namespace gsls {
namespace check {
class ServingAuditor;
}  // namespace check

namespace serve {

/// Bounded MPSC delta queue between callers and the serving writer.
/// `Push` blocks while full (backpressure, never unbounded memory);
/// `DrainInto` hands the writer everything pending at once — the batching
/// lever: N queued deltas become one cone re-solve.
class DeltaQueue {
 public:
  explicit DeltaQueue(size_t capacity) : capacity_(capacity) {}

  /// Enqueues `op`, blocking while the queue is full. Returns the
  /// sequence number assigned (1-based, dense). Returns 0 if closed.
  uint64_t Push(DeltaOp op);

  /// Blocks until at least one delta is pending (or the queue closes),
  /// then moves every pending delta — up to `max_batch` — into `*out`
  /// (cleared first). Returns false iff closed and drained dry.
  bool DrainInto(std::vector<DeltaOp>* out, size_t max_batch);

  void Close();
  size_t depth() const;
  uint64_t last_seq() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<DeltaOp> items_;
  uint64_t next_seq_ = 1;
  bool closed_ = false;
};

struct ServeOptions {
  /// Delta-queue bound; `Assert`/`Retract` block when reached.
  size_t queue_capacity = 1024;
  /// Largest batch folded into one publish.
  size_t max_batch = 4096;
  /// `serve.*` channels land here (may be the same registry the solver
  /// publishes its `delta.*`/`query.*` channels into). Null: no-op.
  obs::Telemetry* telemetry = nullptr;
  /// Start with the writer paused (deltas queue but do not apply until
  /// `Resume`) — the deterministic-batching lever for tests and audits.
  bool start_paused = false;
};

/// The MVCC serving layer: snapshot-isolated readers over a batching
/// delta writer (the tentpole of the concurrent-serving roadmap item).
///
/// One writer thread drains the bounded delta queue, batch-applies the
/// drained deltas (each only marks dirty state), pays **one** cone
/// re-solve via `Model()` for the whole batch, and — when the pass
/// completes — publishes an immutable `Snapshot` as the next epoch.
/// Readers pin an epoch (`EpochStore::ReadGuard`) and run point queries
/// against its snapshot: no lock, no solver access, bit-identical to a
/// fresh solve of that epoch's program state.
///
/// Consistency contract (docs/serving.md): a snapshot is never stale
/// *within itself* — it is exactly the well-founded model after delta
/// `seq()` — and only ever lags the writer by whole batches. Aborted
/// passes (cancellation/deadline on the wrapped solver) publish nothing;
/// the resolve log and folded deltas carry over, so the next completed
/// pass publishes a snapshot covering them.
class ServingSolver {
 public:
  /// Takes ownership of a solver whose initial `Model()` pass must run to
  /// completion (do not arm a cancel token/deadline before construction);
  /// the resulting model is published as epoch 1 before any reader or
  /// writer activity.
  explicit ServingSolver(std::unique_ptr<IncrementalSolver> solver,
                         ServeOptions opts = {});
  ~ServingSolver();

  ServingSolver(const ServingSolver&) = delete;
  ServingSolver& operator=(const ServingSolver&) = delete;

  // --- delta intake (any thread; blocks on a full queue) ---

  /// The consolidated vocabulary: facts and ground clauses, asserted and
  /// retracted. Returns the delta's sequence number (0: already stopped).
  uint64_t Assert(const Term* fact);
  uint64_t Retract(const Term* fact);
  uint64_t Assert(Clause rule);
  uint64_t Retract(Clause rule);
  uint64_t Submit(DeltaOp op);

  /// Returns once every delta submitted before the call is published
  /// (visible to new pins). A latched cancel token on the wrapped solver
  /// can delay this indefinitely — see the abort note above.
  void Flush();

  /// Pauses the writer between batches: queued deltas accumulate but are
  /// not applied until `Resume`. Returns only once the writer is idle —
  /// the quiesce lever for audits and deterministic batching tests.
  void Pause();
  void Resume();

  /// Drains the queue, publishes what completes, and joins the writer.
  /// Idempotent; the destructor calls it.
  void Stop();

  // --- reader surface ---

  EpochStore::ReaderHandle RegisterReader() {
    return epochs_.RegisterReader();
  }
  EpochStore& epochs() { return epochs_; }

  /// Convenience point read: pin → query → unpin, with read telemetry.
  /// `epoch_out`/`seq_out` (optional) report which epoch answered.
  SnapshotAnswer Read(const EpochStore::ReaderHandle& h,
                      const Term* ground_atom, uint64_t* epoch_out = nullptr,
                      uint64_t* seq_out = nullptr);

  // --- quiesced diagnostics ---

  struct Stats {
    uint64_t epochs_published = 0;
    uint64_t batches = 0;           ///< completed writer batches
    uint64_t deltas_applied = 0;
    uint64_t max_batch = 0;         ///< largest single batch folded
    uint64_t aborted_passes = 0;    ///< batches whose Model() aborted
    uint64_t reclaimed_snapshots = 0;
    uint64_t recycled_pages = 0;
  };
  Stats stats() const;

  /// Highest sequence number folded into a published snapshot.
  uint64_t published_seq() const;
  size_t queue_depth() const { return queue_.depth(); }

  /// The wrapped solver. Reads race the writer unless paused/stopped —
  /// `Pause()` first (the audit does).
  const IncrementalSolver& solver() const { return *solver_; }
  const SnapshotBuilder& builder() const { return builder_; }

 private:
  friend class gsls::check::ServingAuditor;

  struct Channels {
    obs::Gauge* epoch = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Gauge* epoch_lag = nullptr;
    obs::Gauge* pinned_readers = nullptr;
    obs::Histogram* batch_deltas = nullptr;
    obs::Histogram* publish_us = nullptr;
    obs::Histogram* pages_cloned = nullptr;
    obs::Histogram* read_latency_ns = nullptr;
    obs::Counter* reads = nullptr;
    obs::Counter* reclaimed = nullptr;
    obs::Counter* recycled_pages = nullptr;
    obs::Counter* aborted = nullptr;
  };

  void WriterLoop();
  /// Builds + publishes the snapshot for the writer's current solver
  /// state, reclaims, and updates telemetry. Writer thread (and ctor).
  void PublishCurrent(uint64_t seq, size_t batch_size);

  std::unique_ptr<IncrementalSolver> solver_;
  ServeOptions opts_;
  Channels tele_;

  DeltaQueue queue_;
  EpochStore epochs_;
  SnapshotBuilder builder_;

  // Writer control plane.
  mutable std::mutex ctl_mu_;
  std::condition_variable ctl_cv_;
  bool paused_ = false;
  bool stopping_ = false;
  bool writer_in_batch_ = false;
  /// Writer-only (audit reads it quiesced): true iff the solver's tapes
  /// match the published snapshot — false between an aborted pass and the
  /// next completed publish, when the tapes hold folded-but-unpublished
  /// state the audit must not compare against.
  bool tape_consistent_ = true;

  // Publish plane (stats + the Flush barrier).
  mutable std::mutex pub_mu_;
  std::condition_variable pub_cv_;
  uint64_t published_seq_ = 0;
  Stats stats_;

  std::thread writer_;
};

}  // namespace serve
}  // namespace gsls

#endif  // GSLS_SERVE_SERVER_H_
