#include "serve/session.h"

#include <utility>

#include "serve/delta.h"

namespace gsls {

namespace {

GoalStatus StatusFromValue(TruthValue v) {
  switch (v) {
    case TruthValue::kTrue: return GoalStatus::kSuccessful;
    case TruthValue::kFalse: return GoalStatus::kFailed;
    case TruthValue::kUndefined: return GoalStatus::kIndeterminate;
  }
  return GoalStatus::kUnknown;
}

}  // namespace

Session::Session(std::unique_ptr<IncrementalSolver> solver,
                 SessionOptions opts)
    : opts_(std::move(opts)) {
  if (opts_.serving) {
    server_solver_ = solver.get();
    server_ = std::make_unique<serve::ServingSolver>(std::move(solver),
                                                     opts_.serve);
    reader_ = server_->RegisterReader();
  } else {
    direct_ = std::move(solver);
  }
}

Session::Session(Session&&) noexcept = default;
Session& Session::operator=(Session&&) noexcept = default;
Session::~Session() = default;

Result<Session> Session::Open(const Program& program, SessionOptions opts) {
  SolverOptions sopts = opts.solver;
  sopts.compute_levels = opts.compute_levels;
  if (opts.serving && opts.serve.telemetry == nullptr) {
    // One registry serves both the solver's delta.*/query.* channels and
    // the layer's serve.* channels unless the caller split them.
    opts.serve.telemetry = sopts.telemetry;
  }
  Result<GroundProgram> gp = GroundRelevant(program, opts.grounding);
  if (!gp.ok()) return gp.status();
  auto solver =
      std::make_unique<IncrementalSolver>(std::move(gp.value()), sopts);
  return Session(std::move(solver), std::move(opts));
}

Session Session::Adopt(std::unique_ptr<IncrementalSolver> solver,
                       SessionOptions opts) {
  return Session(std::move(solver), std::move(opts));
}

bool Session::Assert(const Term* fact) {
  if (server_ != nullptr) return server_->Assert(fact) != 0;
  return direct_->Assert(fact);
}

bool Session::Retract(const Term* fact) {
  if (server_ != nullptr) return server_->Retract(fact) != 0;
  return direct_->Retract(fact);
}

Result<RuleId> Session::Assert(const Clause& rule, bool* changed) {
  if (!rule.ground()) {
    return Status::InvalidArgument(
        "Assert(Clause) requires a ground clause: deltas never re-ground");
  }
  if (server_ != nullptr) {
    const bool queued = server_->Assert(rule) != 0;
    if (changed != nullptr) *changed = queued;
    // The id is assigned asynchronously by the writer; the clause itself
    // is the content-addressed handle for `Retract(Clause)`.
    return RuleId{0};
  }
  return serve::AssertClause(*direct_, rule, changed);
}

bool Session::Retract(const Clause& rule) {
  if (server_ != nullptr) return server_->Retract(rule) != 0;
  return serve::RetractClause(*direct_, rule);
}

SessionAnswer Session::FromQueryAnswer(
    const IncrementalSolver::QueryAnswer& qa) const {
  SessionAnswer out;
  out.value = qa.value;
  out.outcome = qa.outcome;
  out.status = qa.outcome == SolveOutcome::kCompleted
                   ? StatusFromValue(qa.value)
                   : GoalStatus::kUnknown;
  out.true_stage = qa.true_stage;
  out.false_stage = qa.false_stage;
  if (out.status == GoalStatus::kSuccessful && qa.true_stage > 0) {
    out.level = Ordinal::Finite(qa.true_stage);
  } else if (out.status == GoalStatus::kFailed && qa.false_stage > 0) {
    out.level = Ordinal::Finite(qa.false_stage);
  }
  out.cone_components = qa.cone_components;
  out.resolved_components = qa.resolved_components;
  out.memo_hits = qa.memo_hits;
  out.cone_atoms = qa.cone_atoms;
  return out;
}

SessionAnswer Session::FromSnapshotAnswer(const serve::SnapshotAnswer& sa,
                                          uint64_t epoch,
                                          uint64_t seq) const {
  SessionAnswer out;
  out.value = sa.value;
  out.outcome = SolveOutcome::kCompleted;  // only completed models publish
  out.status = StatusFromValue(sa.value);
  out.true_stage = sa.true_stage;
  out.false_stage = sa.false_stage;
  if (out.status == GoalStatus::kSuccessful && sa.true_stage > 0) {
    out.level = Ordinal::Finite(sa.true_stage);
  } else if (out.status == GoalStatus::kFailed && sa.false_stage > 0) {
    out.level = Ordinal::Finite(sa.false_stage);
  }
  out.epoch = epoch;
  out.seq = seq;
  return out;
}

SessionAnswer Session::Query(const Term* ground_atom) {
  if (server_ != nullptr) {
    uint64_t epoch = 0;
    uint64_t seq = 0;
    serve::SnapshotAnswer sa = server_->Read(reader_, ground_atom, &epoch,
                                             &seq);
    return FromSnapshotAnswer(sa, epoch, seq);
  }
  return FromQueryAnswer(direct_->QueryAtom(ground_atom));
}

SessionAnswer Session::Query(AtomId atom) {
  if (server_ != nullptr) {
    serve::EpochStore::ReadGuard g(server_->epochs(), reader_);
    return FromSnapshotAnswer(g->Query(atom), g.epoch(), g->seq());
  }
  return FromQueryAnswer(direct_->QueryAtom(atom));
}

void Session::Flush() {
  if (server_ != nullptr) server_->Flush();
}

std::shared_ptr<const serve::Snapshot> Session::SnapshotNow() {
  if (server_ != nullptr) {
    serve::EpochStore::ReadGuard g(server_->epochs(), reader_);
    // Re-acquire shared ownership for the caller: the guard's pin keeps
    // the ring slot alive while we copy the shared_ptr out of it.
    return server_->epochs().SnapshotAt(g.epoch());
  }
  direct_->Model();
  IncrementalSolver::ResolveLog log;
  log.all_atoms = true;
  serve::SnapshotBuilder builder;
  return builder.Build(*direct_, std::move(log), /*epoch=*/0,
                       /*seq=*/direct_->stats().deltas);
}

void Session::SetDeadlineNs(uint64_t deadline_ns) {
  solver().SetDeadlineNs(deadline_ns);
}

void Session::SetStepBudget(uint64_t step_budget) {
  solver().SetStepBudget(step_budget);
}

}  // namespace gsls
