#ifndef GSLS_SERVE_EPOCH_STORE_H_
#define GSLS_SERVE_EPOCH_STORE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "serve/snapshot.h"

namespace gsls {
namespace check {
class ServingAuditor;
}  // namespace check

namespace serve {

/// MVCC epoch store: one writer publishes immutable `Snapshot`s under
/// monotonically increasing epochs; many readers pin an epoch and read its
/// snapshot through a raw pointer — no lock, no shared_ptr refcount
/// traffic on the read path. Retired snapshots are reclaimed only once
/// every pinned epoch has moved past them (epoch-based reclamation).
///
/// The pin protocol (all `seq_cst`, so the standard EBR total-order
/// argument applies and TSan sees every edge):
///
///   reader: e = epoch.load(); loop { slot.pin = e; if (epoch.load() == e)
///           break; e = epoch.load(); }   — publish-then-revalidate
///   writer: publish = ring[e+1 % R] = snap; epoch.store(e+1)
///           reclaim = min = min(slot.pin…); free everything < min
///
/// If the writer's min-pin scan misses a reader's pin store, that store —
/// and therefore the reader's revalidating epoch load — is ordered after
/// the scan, so the reader re-pins at an epoch the scan's reclaim horizon
/// keeps alive. Ring slots of reclaimed epochs are cleared by the same
/// reasoning: no reader can still reach them.
class EpochStore {
 public:
  /// Sentinel pin value: slot holds no epoch.
  static constexpr uint64_t kNotPinned = ~uint64_t{0};
  /// Fixed reader-slot table; registration beyond this fails (serving
  /// fleets want bounded scan cost, not unbounded readers per process).
  static constexpr size_t kMaxReaders = 64;
  /// Published-snapshot ring depth — how far a pinned reader may lag the
  /// writer before the writer must wait for it.
  static constexpr size_t kRingSize = 256;

  /// A registered reader slot. One handle per thread; `Pin`/`Unpin` on
  /// the same handle must not race with themselves.
  class ReaderHandle {
   public:
    ReaderHandle() = default;
    ReaderHandle(ReaderHandle&& o) noexcept
        : store_(o.store_), slot_(o.slot_) {
      o.store_ = nullptr;
    }
    ReaderHandle& operator=(ReaderHandle&& o) noexcept {
      if (this != &o) {
        Release();
        store_ = o.store_;
        slot_ = o.slot_;
        o.store_ = nullptr;
      }
      return *this;
    }
    ReaderHandle(const ReaderHandle&) = delete;
    ReaderHandle& operator=(const ReaderHandle&) = delete;
    ~ReaderHandle() { Release(); }

    bool valid() const { return store_ != nullptr; }

   private:
    friend class EpochStore;
    void Release();

    EpochStore* store_ = nullptr;
    size_t slot_ = 0;
  };

  /// Claims a reader slot; the handle unregisters itself on destruction.
  /// Returns an invalid handle when all `kMaxReaders` slots are taken.
  ReaderHandle RegisterReader();

  struct Pinned {
    uint64_t epoch = 0;
    const Snapshot* snapshot = nullptr;
  };

  /// Pins the current epoch for `h` and returns its snapshot. The pointer
  /// stays valid until `Unpin`. Requires at least one publish.
  Pinned Pin(const ReaderHandle& h);
  void Unpin(const ReaderHandle& h);

  /// RAII pin for one read.
  class ReadGuard {
   public:
    ReadGuard(EpochStore& store, const ReaderHandle& h)
        : store_(&store), h_(&h), pinned_(store.Pin(h)) {}
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;
    ~ReadGuard() { store_->Unpin(*h_); }

    uint64_t epoch() const { return pinned_.epoch; }
    const Snapshot* operator->() const { return pinned_.snapshot; }
    const Snapshot& operator*() const { return *pinned_.snapshot; }

   private:
    EpochStore* store_;
    const ReaderHandle* h_;
    Pinned pinned_;
  };

  // --- single-writer surface (plus quiesced diagnostics) ---

  /// Publishes `snap` as epoch `current_epoch() + 1` (which `snap->epoch()`
  /// must equal). Blocks (yielding) while a reader pinned `kRingSize`
  /// epochs back would have its slot overwritten.
  void Publish(std::shared_ptr<const Snapshot> snap);

  /// The lowest currently pinned epoch, or `kNotPinned` when no reader is
  /// pinned (everything retired is then reclaimable).
  uint64_t MinPinned() const;

  /// Removes and returns every retired snapshot no pin can reach
  /// (epoch < MinPinned), clearing their ring slots. Writer-only.
  std::vector<std::shared_ptr<const Snapshot>> DrainReclaimable();

  uint64_t current_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }
  /// Shared ownership of epoch `e`'s snapshot. Safe only while the caller
  /// holds a pin at `e` — the pin keeps the ring slot from being cleared
  /// or overwritten under the copy.
  std::shared_ptr<const Snapshot> SnapshotAt(uint64_t e) const {
    return ring_[e % kRingSize];
  }
  /// The latest published snapshot (writer thread or quiesced callers).
  std::shared_ptr<const Snapshot> Current() const { return current_; }

  size_t retired_count() const { return retired_.size(); }
  size_t pinned_readers() const;

  /// Audit trail: every reclaim records the epoch freed and the min-pin
  /// horizon that justified it (`epoch < min_pin` is the audited
  /// invariant). Bounded; oldest entries are dropped.
  struct ReclaimRecord {
    uint64_t epoch = 0;
    uint64_t min_pin = 0;
  };
  const std::deque<ReclaimRecord>& reclaim_log() const {
    return reclaim_log_;
  }

 private:
  friend class gsls::check::ServingAuditor;

  static constexpr size_t kMaxReclaimLog = 65536;

  struct alignas(64) Slot {
    std::atomic<uint64_t> pin{kNotPinned};
    std::atomic<uint8_t> used{0};
  };

  std::array<Slot, kMaxReaders> slots_;
  std::atomic<uint64_t> epoch_{0};
  /// ring_[e % kRingSize] holds epoch e's snapshot from publish until
  /// reclaim (or until overwritten at e + kRingSize, which the publish
  /// wait makes unreachable while pinned).
  std::array<std::shared_ptr<const Snapshot>, kRingSize> ring_;
  std::shared_ptr<const Snapshot> current_;
  /// FIFO of superseded snapshots awaiting the reclaim horizon.
  std::deque<std::pair<uint64_t, std::shared_ptr<const Snapshot>>> retired_;
  std::deque<ReclaimRecord> reclaim_log_;
};

}  // namespace serve
}  // namespace gsls

#endif  // GSLS_SERVE_EPOCH_STORE_H_
