#ifndef GSLS_CHECK_AUDIT_H_
#define GSLS_CHECK_AUDIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "solver/incremental.h"

namespace gsls::check {

/// Outcome of one `AuditSolver` pass: every violated invariant as a
/// human-readable failure line, plus coverage counters so a test can
/// assert the audit actually exercised something.
struct AuditReport {
  std::vector<std::string> failures;

  /// Memo-valid components whose fixpoint was re-verified by an
  /// independent re-solve.
  uint32_t components_checked = 0;
  /// Memo-valid components skipped because some input component is stale
  /// (their values are only promised *after* the stale inputs re-solve,
  /// in dependency order — the memo's closure invariant).
  uint32_t components_skipped = 0;
  /// The condensation was compared against a from-scratch Tarjan build.
  bool graph_audited = false;
  /// Persisted warm-component entries whose invariants (binding, counter
  /// recounts, source acyclicity, trail justification) were re-derived.
  uint32_t warm_entries_checked = 0;

  bool ok() const { return failures.empty(); }
  /// "ok" or the failure lines, newline-joined — test assertion messages.
  std::string ToString() const;
};

/// Re-derives every structure the incremental solver maintains and
/// compares it against the maintained state — the crash-consistency half
/// of the abort protocol's test story (ISSUE: audit after an abort, then
/// after the resumed solve). All checks are read-only; the solver is not
/// advanced, no memo entry or tape byte moves.
///
/// Invariants verified:
///  1. Condensation vs fresh Tarjan over the same enabled subprogram:
///     identical atom partition and per-component flags, and the
///     maintained ids form a valid dependency order (every enabled rule's
///     body component <= its head component). Numbering itself may differ
///     — both are topological orders of the same DAG.
///  2. CSR well-formedness of the maintained condensation: `ComponentOf`,
///     `LocalIndexOf`, and the component slices form a bijection over the
///     covered atoms.
///  3. Fixpoint on clean components: every memo-valid component whose
///     inputs are all valid is independently re-solved on a scratch tape;
///     values (and V_P stages, under `compute_levels`) must come back
///     bit-identical. An aborted pass that left a half-written component
///     marked valid fails here.
///  4. Memo/stale-set consistency: every queued stale representative
///     names an *invalid* component (nothing is both served-as-final and
///     pending re-solve).
///  5. Mirror and stage consistency: for valid components, the bit-packed
///     public model (and its stage vectors) agree with the primary tapes,
///     and stage slots are sign-consistent with the truth values
///     (true => true_stage >= 1, false_stage == 0; symmetrically for
///     false; undefined => 0/0).
///  6. Persisted warm-interior state (`solver::WarmComponent`): every
///     entry in the warm store is keyed by its component's representative
///     atom and passes `AuditInvariants` against the live tape and mask —
///     cached rule counters equal a from-scratch recount, source pointers
///     are live and acyclic, snapshots are reconciled, and the decision
///     trail is batch-monotone with every decision justified. This is the
///     "provably consistent or discarded" half of the warm-start
///     contract; the discard half is exercised by abort/recondensation
///     tests.
///
/// Cost: one fresh Tarjan plus one re-solve per clean component — meant
/// for tests and fault drills, not production serving paths.
AuditReport AuditSolver(const IncrementalSolver& solver);

/// Implementation vehicle for `AuditSolver` — the class the solver
/// befriends. Use the free function.
class SolverAuditor {
 public:
  static AuditReport Audit(const IncrementalSolver& solver);
};

inline AuditReport AuditSolver(const IncrementalSolver& solver) {
  return SolverAuditor::Audit(solver);
}

}  // namespace gsls::check

#endif  // GSLS_CHECK_AUDIT_H_
