#ifndef GSLS_CHECK_AUDIT_H_
#define GSLS_CHECK_AUDIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "solver/incremental.h"

namespace gsls::serve {
class ServingSolver;
}  // namespace gsls::serve

namespace gsls::check {

/// Outcome of one `AuditSolver` pass: every violated invariant as a
/// human-readable failure line, plus coverage counters so a test can
/// assert the audit actually exercised something.
struct AuditReport {
  std::vector<std::string> failures;

  /// Memo-valid components whose fixpoint was re-verified by an
  /// independent re-solve.
  uint32_t components_checked = 0;
  /// Memo-valid components skipped because some input component is stale
  /// (their values are only promised *after* the stale inputs re-solve,
  /// in dependency order — the memo's closure invariant).
  uint32_t components_skipped = 0;
  /// The condensation was compared against a from-scratch Tarjan build.
  bool graph_audited = false;
  /// Persisted warm-component entries whose invariants (binding, counter
  /// recounts, source acyclicity, trail justification) were re-derived.
  uint32_t warm_entries_checked = 0;

  // --- serving-layer coverage (`AuditServing` only) ---

  /// The MVCC serving invariants below were exercised.
  bool serving_audited = false;
  /// Atoms whose published-snapshot value (and stages) were compared
  /// byte-for-byte against the quiesced solver's tapes. 0 when the last
  /// writer pass aborted (tapes then legitimately lead the snapshot).
  uint64_t serving_atoms_checked = 0;
  /// Free-pool pages whose unreachability (`use_count() == 1`) was
  /// re-verified — a retired epoch's tapes must be provably unreachable
  /// before any reuse.
  uint32_t serving_pool_pages_checked = 0;
  /// Reclaim-log records re-checked against the EBR horizon invariant
  /// (reclaimed epoch < min pinned epoch at reclaim time).
  uint32_t serving_reclaims_checked = 0;

  bool ok() const { return failures.empty(); }
  /// "ok" or the failure lines, newline-joined — test assertion messages.
  std::string ToString() const;
};

/// Re-derives every structure the incremental solver maintains and
/// compares it against the maintained state — the crash-consistency half
/// of the abort protocol's test story (ISSUE: audit after an abort, then
/// after the resumed solve). All checks are read-only; the solver is not
/// advanced, no memo entry or tape byte moves.
///
/// Invariants verified:
///  1. Condensation vs fresh Tarjan over the same enabled subprogram:
///     identical atom partition and per-component flags, and the
///     maintained ids form a valid dependency order (every enabled rule's
///     body component <= its head component). Numbering itself may differ
///     — both are topological orders of the same DAG.
///  2. CSR well-formedness of the maintained condensation: `ComponentOf`,
///     `LocalIndexOf`, and the component slices form a bijection over the
///     covered atoms.
///  3. Fixpoint on clean components: every memo-valid component whose
///     inputs are all valid is independently re-solved on a scratch tape;
///     values (and V_P stages, under `compute_levels`) must come back
///     bit-identical. An aborted pass that left a half-written component
///     marked valid fails here.
///  4. Memo/stale-set consistency: every queued stale representative
///     names an *invalid* component (nothing is both served-as-final and
///     pending re-solve).
///  5. Mirror and stage consistency: for valid components, the bit-packed
///     public model (and its stage vectors) agree with the primary tapes,
///     and stage slots are sign-consistent with the truth values
///     (true => true_stage >= 1, false_stage == 0; symmetrically for
///     false; undefined => 0/0).
///  6. Persisted warm-interior state (`solver::WarmComponent`): every
///     entry in the warm store is keyed by its component's representative
///     atom and passes `AuditInvariants` against the live tape and mask —
///     cached rule counters equal a from-scratch recount, source pointers
///     are live and acyclic, snapshots are reconciled, and the decision
///     trail is batch-monotone with every decision justified. This is the
///     "provably consistent or discarded" half of the warm-start
///     contract; the discard half is exercised by abort/recondensation
///     tests.
///
/// Cost: one fresh Tarjan plus one re-solve per clean component — meant
/// for tests and fault drills, not production serving paths.
AuditReport AuditSolver(const IncrementalSolver& solver);

/// Audits the MVCC serving layer (src/serve/) on top of the full solver
/// audit. Quiesces the writer (`Pause`) for the duration, then `Resume`s —
/// safe to interleave with live readers and delta producers.
///
/// Serving invariants verified:
///  1. Published-snapshot fidelity: every atom's truth value (and V_P
///     stages, when levels are exported) in the current epoch's snapshot
///     equals the quiesced solver's tapes byte-for-byte. Combined with
///     the solver audit's independent per-component re-solve (check 3 of
///     `AuditSolver`), this is the "published snapshot is bit-identical
///     to a fresh solve of the epoch's program state" gate. Skipped (not
///     failed) while an aborted pass leaves the tapes legitimately ahead
///     of the snapshot.
///  2. Snapshot index fidelity: the copy-on-intern term index is a
///     bijection consistent with the ground program's atom registry.
///  3. Reclamation safety: every page in the builder's free pool is
///     exclusively owned (`use_count() == 1`) — a retired epoch's tapes
///     are unreachable before reuse; every reclaim-log record shows the
///     freed epoch strictly below the min-pin horizon that justified it.
///  4. Pin/ring integrity: every pinned reader's epoch is published, at
///     most the current epoch, and its ring slot still holds the matching
///     snapshot (reclaim never clears a slot a pin can reach).
AuditReport AuditServing(serve::ServingSolver& server);

/// Implementation vehicle for `AuditSolver`/`AuditServing` — the class
/// the solver and serving layer befriend. Use the free functions.
class SolverAuditor {
 public:
  static AuditReport Audit(const IncrementalSolver& solver);
};

class ServingAuditor {
 public:
  static AuditReport Audit(serve::ServingSolver& server);
};

inline AuditReport AuditSolver(const IncrementalSolver& solver) {
  return SolverAuditor::Audit(solver);
}

inline AuditReport AuditServing(serve::ServingSolver& server) {
  return ServingAuditor::Audit(server);
}

}  // namespace gsls::check

#endif  // GSLS_CHECK_AUDIT_H_
