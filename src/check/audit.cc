#include "check/audit.h"

#include <cstddef>

#include "analysis/atom_dependency_graph.h"
#include "serve/server.h"
#include "solver/component_eval.h"
#include "solver/stages.h"
#include "solver/truth_tape.h"
#include "util/strings.h"

namespace gsls::check {

namespace {

/// Failure lines beyond this are one corrupted structure reported many
/// times over; the cap keeps a broken-invariant test log readable.
constexpr size_t kMaxFailures = 32;

void Fail(AuditReport* report, std::string message) {
  if (report->failures.size() < kMaxFailures) {
    report->failures.push_back(std::move(message));
  }
}

int ValueInt(TruthValue v) { return static_cast<int>(v); }

}  // namespace

std::string AuditReport::ToString() const {
  if (ok()) return "ok";
  std::string out;
  for (const std::string& f : failures) {
    out += f;
    out += '\n';
  }
  return out;
}

AuditReport SolverAuditor::Audit(const IncrementalSolver& s) {
  AuditReport report;
  if (s.cond_ == nullptr) return report;  // nothing built, nothing to break
  const AtomDependencyGraph& g = s.cond_->graph();
  const GroundProgram& gp = s.gp_;
  const uint32_t ncomp = g.component_count();
  const size_t covered = g.atom_count();

  // -- 2. CSR well-formedness of the maintained condensation ------------
  if (covered > gp.atom_count()) {
    Fail(&report, StrCat("graph covers ", covered, " atoms but the program "
                         "registers only ", gp.atom_count()));
  }
  size_t member_total = 0;
  for (uint32_t c = 0; c < ncomp; ++c) member_total += g.Atoms(c).size();
  if (member_total != covered) {
    Fail(&report, StrCat("component slices hold ", member_total,
                         " atoms, graph covers ", covered));
  }
  for (AtomId a = 0; a < covered; ++a) {
    const uint32_t c = g.ComponentOf(a);
    if (c >= ncomp) {
      Fail(&report, StrCat("atom ", a, ": component ", c, " out of range"));
      continue;
    }
    const std::span<const AtomId> atoms = g.Atoms(c);
    const uint32_t rank = g.LocalIndexOf(a);
    if (rank >= atoms.size() || atoms[rank] != a) {
      Fail(&report, StrCat("atom ", a, ": CSR slice of component ", c,
                           " does not list it at rank ", rank));
    }
  }

  // -- 1. Condensation vs fresh Tarjan ----------------------------------
  // Only when the maintained graph covers every registered atom (between
  // an atom-interning delta and the next solve it legitimately lags; the
  // next pass grows it before any component runs).
  if (covered == gp.atom_count()) {
    report.graph_audited = true;
    AtomDependencyGraph fresh(gp, &s.disabled_);
    if (fresh.component_count() != ncomp) {
      Fail(&report, StrCat("maintained condensation has ", ncomp,
                           " components, fresh Tarjan finds ",
                           fresh.component_count()));
    } else {
      for (uint32_t c = 0; c < ncomp; ++c) {
        const std::span<const AtomId> atoms = g.Atoms(c);
        if (atoms.empty()) {
          Fail(&report, StrCat("component ", c, " is empty"));
          continue;
        }
        const uint32_t fc = fresh.ComponentOf(atoms[0]);
        if (fresh.Atoms(fc).size() != atoms.size()) {
          Fail(&report, StrCat("component ", c, " has ", atoms.size(),
                               " atoms, its fresh counterpart ", fc, " has ",
                               fresh.Atoms(fc).size()));
        }
        for (AtomId a : atoms) {
          if (fresh.ComponentOf(a) != fc) {
            Fail(&report, StrCat("atoms ", atoms[0], " and ", a,
                                 " share maintained component ", c,
                                 " but not a fresh component"));
            break;
          }
        }
        if (g.IsRecursive(c) != fresh.IsRecursive(fc) ||
            g.HasInternalNegation(c) != fresh.HasInternalNegation(fc)) {
          Fail(&report, StrCat("component ", c, ": flags recursive=",
                               g.IsRecursive(c), " neg=",
                               g.HasInternalNegation(c),
                               " disagree with fresh build (recursive=",
                               fresh.IsRecursive(fc), " neg=",
                               fresh.HasInternalNegation(fc), ")"));
        }
      }
    }
    // Maintained ids must be *a* dependency order (not necessarily the
    // fresh one): every enabled rule's body sits at or below its head.
    const std::vector<GroundRule>& rules = gp.rules();
    for (RuleId r = 0; r < rules.size(); ++r) {
      if (!RuleEnabledIn(&s.disabled_, r)) continue;
      const uint32_t hc = g.ComponentOf(rules[r].head);
      for (AtomId b : rules[r].pos) {
        if (g.ComponentOf(b) > hc) {
          Fail(&report, StrCat("rule ", r, ": positive body atom ", b,
                               " in component ", g.ComponentOf(b),
                               " above head component ", hc));
        }
      }
      for (AtomId b : rules[r].neg) {
        if (g.ComponentOf(b) > hc) {
          Fail(&report, StrCat("rule ", r, ": negative body atom ", b,
                               " in component ", g.ComponentOf(b),
                               " above head component ", hc));
        }
      }
    }
  }

  // -- 4. Memo / stale-set consistency ----------------------------------
  if (s.memo_.size() > ncomp) {
    Fail(&report, StrCat("memo tracks ", s.memo_.size(), " components, "
                         "condensation has ", ncomp));
  }
  for (AtomId rep : s.stale_reps_) {
    if (rep >= covered) {
      Fail(&report, StrCat("stale representative ", rep,
                           " outside the condensation"));
      continue;
    }
    const uint32_t c = g.ComponentOf(rep);
    if (s.memo_.Valid(c)) {
      Fail(&report, StrCat("component ", c, " (rep ", rep,
                           ") is queued stale yet memo-valid"));
    }
  }

  // -- 6. persisted warm component state --------------------------------
  // The warm-interior contract: an entry in the warm store is either
  // provably consistent with the live tape and mask, or it must have been
  // discarded. `WarmComponent::AuditInvariants` re-derives every piece —
  // live-rule counters vs a from-scratch recount, source pointers live and
  // acyclic, trail batches monotone with every decision justified.
  for (const auto& [key, entry] : s.warm_) {
    if (entry == nullptr) {
      Fail(&report, StrCat("warm entry for atom ", key, " is null"));
      continue;
    }
    if (key >= covered) {
      Fail(&report, StrCat("warm entry keyed by atom ", key,
                           " outside the condensation"));
      continue;
    }
    const uint32_t c = g.ComponentOf(key);
    const std::span<const AtomId> watoms = g.Atoms(c);
    if (watoms.empty() || watoms[0] != key) {
      Fail(&report, StrCat("warm entry keyed by atom ", key,
                           " which is not component ", c,
                           "'s representative"));
      continue;
    }
    std::string why;
    if (!entry->AuditInvariants(gp, g, c, &s.disabled_, s.tape_, &why)) {
      Fail(&report, StrCat("warm state of component ", c, " (rep ", key,
                           "): ", why));
      continue;
    }
    ++report.warm_entries_checked;
  }

  if (!s.solved_) return report;

  // Fact deltas fold into the memo lazily (`FoldDirtyIntoPending` at the
  // next solve entry), so between a delta and its solve a component
  // holding a `dirty_` atom is memo-valid yet already has a changed rule
  // set — legitimately so, because every read path folds first. The
  // audit's fixpoint check must treat those components (and components
  // fed by them) as pending, not corrupted.
  std::vector<uint8_t> pending(ncomp, 0);
  for (AtomId a : s.dirty_) {
    if (a < covered) pending[g.ComponentOf(a)] = 1;
  }
  auto effectively_valid = [&](uint32_t c) {
    return s.memo_.Valid(c) && pending[c] == 0;
  };

  // -- 3 + 5. Fixpoint, mirror, and stage checks on clean components ----
  const bool levels = s.opts_.compute_levels;
  solver::TruthTape scratch_tape = s.tape_;
  solver::StageTape scratch_stages = s.stape_;
  SolverDiagnostics scratch_diag;
  for (uint32_t c = 0; c < ncomp; ++c) {
    if (!effectively_valid(c)) continue;
    const std::span<const AtomId> atoms = g.Atoms(c);
    bool in_bounds = true;
    for (AtomId a : atoms) {
      if (a >= s.tape_.size()) {
        Fail(&report, StrCat("valid component ", c, " atom ", a,
                             " beyond the tape (", s.tape_.size(), ")"));
        in_bounds = false;
      }
    }
    if (!in_bounds) continue;

    // -- 5. mirror + stage-sign consistency (cheap, every valid comp) --
    for (AtomId a : atoms) {
      const TruthValue v = s.tape_.Value(a);
      if (a < s.model_.model.atom_count() && s.model_.model.Value(a) != v) {
        Fail(&report, StrCat("atom ", a, ": mirror value ",
                             ValueInt(s.model_.model.Value(a)),
                             " != tape value ", ValueInt(v)));
      }
      if (!levels || a >= s.stape_.size()) continue;
      const uint32_t ts = s.stape_.true_stage[a];
      const uint32_t fs = s.stape_.false_stage[a];
      const bool sign_ok = (v == TruthValue::kTrue && ts >= 1 && fs == 0) ||
                           (v == TruthValue::kFalse && fs >= 1 && ts == 0) ||
                           (v == TruthValue::kUndefined && ts == 0 && fs == 0);
      if (!sign_ok) {
        Fail(&report, StrCat("atom ", a, ": stages (", ts, ",", fs,
                             ") inconsistent with value ", ValueInt(v)));
      }
      if (s.model_.has_levels && a < s.model_.true_stage.size() &&
          (s.model_.true_stage[a] != ts || s.model_.false_stage[a] != fs)) {
        Fail(&report, StrCat("atom ", a, ": mirror stages (",
                             s.model_.true_stage[a], ",",
                             s.model_.false_stage[a], ") != tape stages (",
                             ts, ",", fs, ")"));
      }
    }

    // -- 3. fixpoint re-check, inputs permitting ----------------------
    // The memo's closure invariant only promises c's values once every
    // stale component below it re-solved, so a valid component with a
    // stale input is skipped, not failed.
    bool inputs_clean = true;
    for (AtomId a : atoms) {
      for (RuleId r : gp.RulesFor(a)) {
        if (!RuleEnabledIn(&s.disabled_, r)) continue;
        const GroundRule& rule = gp.rules()[r];
        for (AtomId b : rule.pos) {
          const uint32_t bc = g.ComponentOf(b);
          if (bc != c && !effectively_valid(bc)) inputs_clean = false;
        }
        for (AtomId b : rule.neg) {
          const uint32_t bc = g.ComponentOf(b);
          if (bc != c && !effectively_valid(bc)) inputs_clean = false;
        }
        if (!inputs_clean) break;
      }
      if (!inputs_clean) break;
    }
    if (!inputs_clean) {
      ++report.components_skipped;
      continue;
    }

    for (AtomId a : atoms) scratch_tape.SetUndefined(a);
    solver::SolveComponent(gp, g, c, &s.disabled_, &scratch_tape,
                           levels ? &scratch_stages : nullptr, &scratch_diag);
    for (AtomId a : atoms) {
      if (scratch_tape.Value(a) != s.tape_.Value(a)) {
        Fail(&report, StrCat("component ", c, " is not a fixpoint: atom ", a,
                             " re-solves to ",
                             ValueInt(scratch_tape.Value(a)), ", tape holds ",
                             ValueInt(s.tape_.Value(a))));
      }
      if (levels && (scratch_stages.true_stage[a] != s.stape_.true_stage[a] ||
                     scratch_stages.false_stage[a] !=
                         s.stape_.false_stage[a])) {
        Fail(&report, StrCat("component ", c, ": atom ", a,
                             " stages re-solve to (",
                             scratch_stages.true_stage[a], ",",
                             scratch_stages.false_stage[a],
                             "), tape holds (", s.stape_.true_stage[a], ",",
                             s.stape_.false_stage[a], ")"));
      }
    }
    // Restore the scratch slots so each component is checked against the
    // maintained state independently — a (legitimate or buggy) deviation
    // in one component must not cascade into its dependents' checks.
    for (AtomId a : atoms) {
      scratch_tape.SetValue(a, s.tape_.Value(a));
      if (levels) {
        scratch_stages.true_stage[a] = s.stape_.true_stage[a];
        scratch_stages.false_stage[a] = s.stape_.false_stage[a];
      }
    }
    ++report.components_checked;
  }
  return report;
}

AuditReport ServingAuditor::Audit(serve::ServingSolver& server) {
  // Quiesce the writer: between batches the tapes, builder, and epoch
  // store are stable; live readers only pin/read immutable snapshots.
  server.Pause();
  const IncrementalSolver& s = *server.solver_;
  AuditReport report = SolverAuditor::Audit(s);
  report.serving_audited = true;

  const serve::EpochStore& store = server.epochs_;
  const std::shared_ptr<const serve::Snapshot>& snap = store.current_;
  if (snap == nullptr) {
    Fail(&report, "serving: no published snapshot");
    server.Resume();
    return report;
  }
  const uint64_t current_epoch = store.current_epoch();
  if (snap->epoch_ != current_epoch) {
    Fail(&report, StrCat("serving: current snapshot epoch ", snap->epoch_,
                         " != published epoch ", current_epoch));
  }

  // 1. Published-snapshot fidelity against the quiesced tapes. With the
  // solver audit's independent per-component re-solve above, equality
  // here certifies the snapshot bit-identical to a fresh solve of the
  // epoch's program state. An aborted pass leaves the tapes legitimately
  // ahead (folded, unpublished deltas): skip, do not fail.
  if (server.tape_consistent_) {
    const solver::TruthTape& tape = s.tape();
    const solver::StageTape& stape = s.stage_tape();
    if (snap->atom_count_ != tape.size()) {
      Fail(&report, StrCat("serving: snapshot covers ", snap->atom_count_,
                           " atoms, tape holds ", tape.size()));
    } else {
      for (size_t a = 0; a < snap->atom_count_; ++a) {
        const AtomId id = static_cast<AtomId>(a);
        const serve::SnapshotAnswer got = snap->Query(id);
        if (got.value != tape.Value(id)) {
          Fail(&report,
               StrCat("serving: snapshot value of atom ", a, " is ",
                      ValueInt(got.value), ", tape says ",
                      ValueInt(tape.Value(id))));
          continue;
        }
        if (snap->has_levels_ &&
            (got.true_stage != stape.true_stage[id] ||
             got.false_stage != stape.false_stage[id])) {
          Fail(&report,
               StrCat("serving: snapshot stages of atom ", a, " are (",
                      got.true_stage, ", ", got.false_stage,
                      "), tape says (", stape.true_stage[id], ", ",
                      stape.false_stage[id], ")"));
          continue;
        }
        ++report.serving_atoms_checked;
      }
    }

    // 2. Copy-on-intern index fidelity against the atom registry.
    const GroundProgram& gp = s.program();
    if (snap->index_ == nullptr) {
      Fail(&report, "serving: snapshot carries no atom index");
    } else if (snap->index_->terms.size() != snap->atom_count_) {
      Fail(&report, StrCat("serving: index covers ",
                           snap->index_->terms.size(), " atoms, snapshot ",
                           snap->atom_count_));
    } else {
      for (size_t a = 0; a < snap->atom_count_; ++a) {
        const AtomId id = static_cast<AtomId>(a);
        const Term* t = snap->index_->terms[a];
        if (t != gp.AtomTerm(id)) {
          Fail(&report, StrCat("serving: index term of atom ", a,
                               " disagrees with the registry"));
        } else if (auto found = snap->index_->Find(t);
                   !found.has_value() || *found != id) {
          Fail(&report,
               StrCat("serving: index lookup of atom ", a,
                      " does not round-trip"));
        }
      }
    }
  }

  // 3. Reclamation safety: pooled pages are exclusively owned, and every
  // recorded reclaim was justified by the EBR horizon.
  for (const std::shared_ptr<serve::Page>& p : server.builder_.pool_) {
    if (p.use_count() != 1) {
      Fail(&report, StrCat("serving: pooled page reachable elsewhere "
                           "(use_count ",
                           p.use_count(), ")"));
    }
    ++report.serving_pool_pages_checked;
  }
  for (const serve::EpochStore::ReclaimRecord& r : store.reclaim_log_) {
    if (r.epoch >= r.min_pin) {
      Fail(&report, StrCat("serving: epoch ", r.epoch,
                           " reclaimed at min-pin horizon ", r.min_pin));
    }
    ++report.serving_reclaims_checked;
  }

  // 4. Pin/ring integrity: every live pin names a published epoch whose
  // ring slot still holds the matching snapshot.
  for (const auto& slot : store.slots_) {
    if (slot.used.load(std::memory_order_acquire) == 0) continue;
    const uint64_t pin = slot.pin.load(std::memory_order_seq_cst);
    if (pin == serve::EpochStore::kNotPinned) continue;
    if (pin == 0 || pin > current_epoch) {
      Fail(&report, StrCat("serving: reader pinned unpublished epoch ",
                           pin, " (current ", current_epoch, ")"));
      continue;
    }
    const std::shared_ptr<const serve::Snapshot>& ringed =
        store.ring_[pin % serve::EpochStore::kRingSize];
    if (ringed == nullptr) {
      Fail(&report, StrCat("serving: ring slot of pinned epoch ", pin,
                           " was cleared"));
    } else if (ringed->epoch_ != pin) {
      Fail(&report, StrCat("serving: ring slot of pinned epoch ", pin,
                           " holds epoch ", ringed->epoch_));
    }
  }

  server.Resume();
  return report;
}

}  // namespace gsls::check
