#ifndef GSLS_WORKLOAD_GENERATORS_H_
#define GSLS_WORKLOAD_GENERATORS_H_

#include <string>

#include "util/rng.h"

namespace gsls::workload {

/// Source text of Example 3.1 (Van Gelder's ordinal program; Figures 1-4).
/// `0` plays the ordinal w; integers i are s^i(0).
const char* VanGelderProgram();

/// Source text of Example 3.2 (positivistic-rule counterexample):
/// M_WF = {s, not p, not q, not r}.
const char* Example32Program();

/// Source text of Example 3.3 (negatively-parallel counterexample):
/// M_WF contains {s, not q}; the p(f^k(a)) family is undefined.
const char* Example33Program();

/// `s^i(0)` as source text.
std::string IntTerm(int i);

/// win/move game on a simple chain n1 -> n2 -> ... -> nK (alternating
/// won/lost, stage depth K).
std::string GameChain(int length);

/// win/move game on a cycle of length K plus a tail escape (mixes won,
/// lost, and drawn positions).
std::string GameCycleWithTail(int cycle, int tail);

/// Random win/move game over `n` nodes with edge probability `edge_pct`%.
std::string RandomGame(Rng& rng, int n, int edge_pct);

/// `blocks` disjoint random win/move games of `nodes` positions each
/// (edge probability `edge_pct`%, constants prefixed per block): one
/// program whose atom-level condensation is a wide forest of independent
/// recursive components. The parallel scheduler's natural workload —
/// every block can run on a different worker.
std::string GameForest(Rng& rng, int blocks, int nodes, int edge_pct);

/// win/move game on a w x h grid, moves right/down (long stage chains).
std::string GameGrid(int w, int h);

/// Random propositional normal program.
std::string RandomPropositional(Rng& rng, int num_preds, int num_rules,
                                int max_body);

/// Transitive closure with negated complement over a random digraph:
/// stratified two-layer program (reach + unreachable).
std::string ReachabilityWithNegation(Rng& rng, int n, int edge_pct);

}  // namespace gsls::workload

#endif  // GSLS_WORKLOAD_GENERATORS_H_
