#include "workload/generators.h"

#include "util/strings.h"

namespace gsls::workload {

const char* VanGelderProgram() {
  return R"(
      e(s(0), s(s(0))).
      e(s(X), s(s(Y))) :- e(X, s(Y)).
      e(s(0), 0).
      e(s(X), 0) :- e(X, 0).
      w(X) :- not u(X).
      u(X) :- e(Y, X), not w(Y).
  )";
}

const char* Example32Program() {
  return R"(
      p :- q, not r.
      q :- r, not p.
      r :- p, not q.
      s :- not p, not q, not r.
  )";
}

const char* Example33Program() {
  return R"(
      q :- not p(a), not s.
      s.
      p(X) :- not p(f(X)).
  )";
}

std::string IntTerm(int i) {
  std::string t = "0";
  for (int k = 0; k < i; ++k) t = "s(" + t + ")";
  return t;
}

std::string GameChain(int length) {
  std::string src = "win(X) :- move(X, Y), not win(Y).\n";
  for (int i = 1; i < length; ++i) {
    src += StrCat("move(n", i, ", n", i + 1, ").\n");
  }
  return src;
}

std::string GameCycleWithTail(int cycle, int tail) {
  std::string src = "win(X) :- move(X, Y), not win(Y).\n";
  for (int i = 0; i < cycle; ++i) {
    src += StrCat("move(c", i, ", c", (i + 1) % cycle, ").\n");
  }
  src += StrCat("move(c0, t1).\n");
  for (int i = 1; i < tail; ++i) {
    src += StrCat("move(t", i, ", t", i + 1, ").\n");
  }
  return src;
}

std::string RandomGame(Rng& rng, int n, int edge_pct) {
  std::string src = "win(X) :- move(X, Y), not win(Y).\n";
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j && rng.Chance(static_cast<uint64_t>(edge_pct), 100)) {
        src += StrCat("move(n", i, ", n", j, ").\n");
      }
    }
  }
  return src;
}

std::string GameForest(Rng& rng, int blocks, int nodes, int edge_pct) {
  std::string src = "win(X) :- move(X, Y), not win(Y).\n";
  for (int b = 0; b < blocks; ++b) {
    for (int i = 0; i < nodes; ++i) {
      for (int j = 0; j < nodes; ++j) {
        if (i != j && rng.Chance(static_cast<uint64_t>(edge_pct), 100)) {
          src += StrCat("move(b", b, "_n", i, ", b", b, "_n", j, ").\n");
        }
      }
    }
  }
  return src;
}

std::string GameGrid(int w, int h) {
  std::string src = "win(X) :- move(X, Y), not win(Y).\n";
  for (int x = 0; x < w; ++x) {
    for (int y = 0; y < h; ++y) {
      if (x + 1 < w) {
        src += StrCat("move(g", x, "_", y, ", g", x + 1, "_", y, ").\n");
      }
      if (y + 1 < h) {
        src += StrCat("move(g", x, "_", y, ", g", x, "_", y + 1, ").\n");
      }
    }
  }
  return src;
}

std::string RandomPropositional(Rng& rng, int num_preds, int num_rules,
                                int max_body) {
  std::string src;
  for (int r = 0; r < num_rules; ++r) {
    int head = rng.UniformInt(0, num_preds - 1);
    int body_len = rng.UniformInt(0, max_body);
    src += StrCat("p", head);
    if (body_len > 0) {
      src += " :- ";
      for (int i = 0; i < body_len; ++i) {
        if (i > 0) src += ", ";
        if (rng.Chance(2, 5)) src += "not ";
        src += StrCat("p", rng.UniformInt(0, num_preds - 1));
      }
    }
    src += ".\n";
  }
  return src;
}

std::string ReachabilityWithNegation(Rng& rng, int n, int edge_pct) {
  std::string src =
      "reach(X, Y) :- edge(X, Y).\n"
      "reach(X, Y) :- edge(X, Z), reach(Z, Y).\n"
      "node(X) :- edge(X, Y).\n"
      "node(Y) :- edge(X, Y).\n"
      "unreachable(X, Y) :- node(X), node(Y), not reach(X, Y).\n";
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j && rng.Chance(static_cast<uint64_t>(edge_pct), 100)) {
        src += StrCat("edge(v", i, ", v", j, ").\n");
      }
    }
  }
  return src;
}

}  // namespace gsls::workload
