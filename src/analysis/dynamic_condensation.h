#ifndef GSLS_ANALYSIS_DYNAMIC_CONDENSATION_H_
#define GSLS_ANALYSIS_DYNAMIC_CONDENSATION_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "analysis/atom_dependency_graph.h"
#include "ground/ground_program.h"
#include "util/cancel.h"

namespace gsls {

/// What one rule-level repair did to the condensation — enough for
/// `IncrementalSolver` to mark exactly the affected components dirty and
/// for `ComponentDag::Splice` to patch the scheduling DAG without a
/// from-scratch rebuild.
struct CondensationRepair {
  /// A window of component ids was re-condensed (local Tarjan). When
  /// false, membership and ids are untouched everywhere.
  bool recondensed = false;
  uint32_t window_lo = 0;        ///< first id of the window (unchanged)
  uint32_t old_window_size = 0;  ///< components in the window before
  uint32_t new_window_size = 0;  ///< components in the window after

  /// Per old window id `window_lo + i`: the new id of the component its
  /// atoms landed in. Well defined for insertions (edges only merge
  /// components, never split them); on a split (`new_window_size >
  /// old_window_size`) the old component fans out and this map is not
  /// produced — the scheduling DAG must rebuild instead of splice.
  std::vector<uint32_t> old_to_new;

  /// Cross-component dependency edges introduced by the rule, as
  /// (body component, head component) pairs in *final* ids. Always
  /// descending (`first < second`); empty for removals.
  std::vector<std::pair<uint32_t, uint32_t>> new_edges;

  /// Components (final ids) whose values may have changed and must be
  /// re-solved: the rule's head component plus every component whose
  /// membership changed (merged or split). Dependents are *not* listed —
  /// the solver's change-pruned cone discovers them. This same set drives
  /// the query memo's invalidation (`solver::ComponentMemo`): fact and
  /// rule deltas compose with goal-directed queries for free because both
  /// consumers key off this one dirty set.
  std::vector<uint32_t> dirty;

  /// Components in the Pearce–Kelly affected region of a cycle-closing
  /// insertion — the true forward/backward frontier re-Tarjaned instead of
  /// the whole id window (see `InsertRule`). 0 when the repair did not
  /// narrow (edge-only inserts, removals). Feeds the `interior.pk_region`
  /// telemetry histogram.
  uint32_t pk_region_components = 0;

  bool split() const { return new_window_size > old_window_size; }
  bool merged() const { return new_window_size < old_window_size; }

  /// Signed shift applied to every component id above the window
  /// (merge-negative, split-positive). Consumers holding per-component
  /// state outside the window — the scheduling DAG's rows, the query
  /// memo's validity map (`solver::ComponentMemo::ApplyRepair`) —
  /// translate their ids by exactly this.
  int64_t id_shift() const {
    return static_cast<int64_t>(new_window_size) -
           static_cast<int64_t>(old_window_size);
  }
};

/// Dynamic SCC maintenance over a `GroundProgram` that changes one rule at
/// a time: the mutable owner of an `AtomDependencyGraph` whose dense
/// component ids stay in dependency order (every enabled rule's body atom
/// lies in a component with id <= its head's) across arbitrary
/// `AssertRule`/`RetractRule` deltas — the invariant every downstream
/// consumer (the sequential min-heap, the parallel DAG release, stage
/// reconstruction) schedules by.
///
/// Repairs are *localized*: a rule edge that respects the current order
/// (body component <= head component) costs O(rule); only an order
/// violation — a body component above the head's, the one way a delta can
/// create or extend a cycle — triggers a re-run of Tarjan over the id
/// window [head component, max body component], whose atoms sit in one
/// contiguous slice of the component CSR. Any path closing a cycle through
/// the new edge descends through ids inside that window, so components
/// outside it keep membership and id verbatim; the window's components are
/// renumbered in the local Tarjan emission order and spliced back, and
/// ids above shift by the (merge-negative, split-positive) size delta in
/// one linear pass. Retracting a rule can only split the head's own
/// component (removing cross-component edges relaxes order constraints but
/// never changes membership), so its window is that single component.
///
/// The condensation tracks the *enabled* subprogram: callers flip the
/// per-`RuleId` disabled mask first and then report the delta here.
/// Compiled per-component state is invalidated exactly as narrowly as the
/// repair: `CondensationRepair::dirty` names the components whose
/// `RuleTable` compilations and tape values the solver must redo; every
/// other component's state stays live.
class DynamicCondensation {
 public:
  /// Builds the initial condensation of the enabled subprogram.
  DynamicCondensation(const GroundProgram& gp,
                      const std::vector<uint8_t>* disabled);

  /// The live condensation. Ids remain in dependency order after every
  /// repair; the reference is stable, its contents change under repairs.
  const AtomDependencyGraph& graph() const { return graph_; }

  /// Appends singleton components for atoms [graph().atom_count(),
  /// new_atom_count) — atoms interned since the last repair. They carry no
  /// rules yet, so a trailing id is always order-correct; a later
  /// `InsertRule` mentioning them repairs the order if needed.
  void AddAtoms(size_t new_atom_count);

  /// Repairs the condensation after rule `r` of `gp` was enabled (newly
  /// added, or its disabled-mask byte cleared). Every atom of the rule
  /// must already be covered (`AddAtoms`).
  ///
  /// Cancellation (`cancel` non-null): a recondensation window polls the
  /// ctx every `kCancelStride` steps, but — unlike the solve loops — it
  /// always *completes structurally*: a half-spliced condensation has no
  /// consistent state to roll back to, so the checkpoints latch the
  /// outcome (and count toward fault/step budgets) while the window runs
  /// to the end. The abort then lands at the next solve-side checkpoint;
  /// windows are O(affected slice), so the added latency is bounded by
  /// the repair the caller already asked for.
  CondensationRepair InsertRule(const GroundProgram& gp,
                                const std::vector<uint8_t>* disabled,
                                RuleId r, CancelCtx* cancel = nullptr);

  /// Repairs the condensation after rule `r` of `gp` was disabled. Only
  /// the head's component can change (it may split). Cancellation as in
  /// `InsertRule`: latch-only, the window always completes.
  CondensationRepair RemoveRule(const GroundProgram& gp,
                                const std::vector<uint8_t>* disabled,
                                RuleId r, CancelCtx* cancel = nullptr);

  /// Counters describing how local the repairs stayed.
  struct Stats {
    uint64_t inserts = 0;        ///< InsertRule calls
    uint64_t removals = 0;       ///< RemoveRule calls
    uint64_t windows = 0;        ///< repairs that re-ran Tarjan
    uint64_t window_atoms = 0;   ///< atoms visited across all windows
    uint64_t window_ns = 0;      ///< wall time inside re-Tarjan windows
    uint64_t merges = 0;         ///< windows that merged components
    uint64_t splits = 0;         ///< windows that split a component
    uint64_t pk_regions = 0;       ///< inserts repaired by PK narrowing
    uint64_t pk_region_comps = 0;  ///< components across all PK regions

    std::string ToString() const;
  };
  const Stats& stats() const { return stats_; }

 private:
  /// Re-runs Tarjan over the induced subgraph of components [lo, hi]
  /// (enabled rules only, edges leaving the window ignored), splices the
  /// resulting components back into ids lo.., shifts ids above by the size
  /// delta, and recomputes the window's recursion/negation flags.
  void RecondenseWindow(const GroundProgram& gp,
                        const std::vector<uint8_t>* disabled, uint32_t lo,
                        uint32_t hi, CondensationRepair* out,
                        CancelCtx* cancel);

  /// Pearce–Kelly narrowed repair for a cycle-closing insertion of rule
  /// `r` with head component `ch` and max body component `cmax > ch`.
  /// Instead of re-Tarjaning the whole id window [ch, cmax], computes the
  /// true affected region: F = components forward-reachable from `ch`
  /// within ids <= cmax, B = components backward-reachable from the rule's
  /// violating body components within ids >= ch (the new rule's own edges
  /// excluded from both searches). Every new cycle passes through the new
  /// edge, hence through `ch`, so the merged SCC — if any — is exactly
  /// F ∩ B at component granularity, with every member component absorbed
  /// whole; no Tarjan run is needed. The region is renumbered as
  /// [sorted(B \ M), merged M, sorted(F \ M)] over the region's own id
  /// slots — a placement every mixed edge tolerates, since F members only
  /// move later and B members only earlier — and components outside the
  /// region keep membership and id verbatim, which is what lets the
  /// solver's per-component warm state (`solver::WarmComponent`) survive
  /// repairs that the full-window rewrite would have evicted.
  void NarrowedInsertRepair(const GroundProgram& gp,
                            const std::vector<uint8_t>* disabled, RuleId r,
                            uint32_t ch, uint32_t cmax,
                            CondensationRepair* out, CancelCtx* cancel);

  AtomDependencyGraph graph_;

  // Window scratch, reused across repairs. All Tarjan state is local to
  // the window (dense window-local atom indices), so no per-atom global
  // array needs resetting between repairs.
  std::vector<AtomId> old_window_atoms_;  ///< pre-repair window slice
  std::vector<AtomId> new_atoms_;         ///< re-grouped window slice
  std::vector<uint32_t> new_offsets_;     ///< prefix sizes of new comps

  // Pearce–Kelly frontier scratch. Epoch-stamped marks over *component*
  // ids (a repair touches one in-window region; stamping beats clearing).
  std::vector<uint32_t> pk_f_;      ///< forward-mark epoch per component
  std::vector<uint32_t> pk_b_;      ///< backward-mark epoch per component
  std::vector<uint32_t> pk_stack_;  ///< BFS worklist of component ids
  std::vector<uint32_t> pk_seq_b_;  ///< region ids in B \ M, ascending
  std::vector<uint32_t> pk_seq_m_;  ///< region ids in M = F ∩ B, ascending
  std::vector<uint32_t> pk_seq_f_;  ///< region ids in F \ M, ascending
  std::vector<uint8_t> pk_neg_;     ///< per emitted comp: internal_neg flag
  std::vector<uint8_t> pk_rec_;     ///< per emitted comp: recursive flag
  uint32_t pk_epoch_ = 0;

  Stats stats_;
};

}  // namespace gsls

#endif  // GSLS_ANALYSIS_DYNAMIC_CONDENSATION_H_
