#include "analysis/dependency_graph.h"

#include <algorithm>

namespace gsls {

DependencyGraph::DependencyGraph(const Program& program) {
  std::unordered_set<FunctorId> seen;
  auto add_pred = [&](FunctorId f) {
    if (seen.insert(f).second) predicates_.push_back(f);
  };
  for (const Clause& c : program.clauses()) {
    add_pred(c.predicate());
    for (const Literal& l : c.body) {
      add_pred(l.predicate());
      Edge e{c.predicate(), l.predicate(), l.positive};
      edges_.push_back(e);
      out_edges_[c.predicate()].push_back(e);
    }
  }
}

const std::vector<DependencyGraph::Edge>& DependencyGraph::EdgesFrom(
    FunctorId pred) const {
  auto it = out_edges_.find(pred);
  return it == out_edges_.end() ? no_edges_ : it->second;
}

namespace {

/// Iterative Tarjan SCC over predicate ids.
class TarjanScc {
 public:
  explicit TarjanScc(const DependencyGraph& graph) : graph_(graph) {}

  std::vector<std::vector<FunctorId>> Run() {
    for (FunctorId p : graph_.predicates()) {
      if (index_.find(p) == index_.end()) Visit(p);
    }
    return components_;
  }

 private:
  struct Frame {
    FunctorId pred;
    size_t edge_pos;
  };

  void Visit(FunctorId root) {
    std::vector<Frame> frames;
    frames.push_back(Frame{root, 0});
    Begin(root);
    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto& edges = graph_.EdgesFrom(f.pred);
      if (f.edge_pos < edges.size()) {
        FunctorId next = edges[f.edge_pos++].to;
        auto it = index_.find(next);
        if (it == index_.end()) {
          Begin(next);
          frames.push_back(Frame{next, 0});
        } else if (on_stack_.count(next) > 0) {
          lowlink_[f.pred] = std::min(lowlink_[f.pred], index_[next]);
        }
        continue;
      }
      // Finished this node.
      FunctorId done = f.pred;
      frames.pop_back();
      if (!frames.empty()) {
        lowlink_[frames.back().pred] =
            std::min(lowlink_[frames.back().pred], lowlink_[done]);
      }
      if (lowlink_[done] == index_[done]) {
        std::vector<FunctorId> component;
        while (true) {
          FunctorId w = stack_.back();
          stack_.pop_back();
          on_stack_.erase(w);
          component.push_back(w);
          if (w == done) break;
        }
        components_.push_back(std::move(component));
      }
    }
  }

  void Begin(FunctorId p) {
    index_[p] = counter_;
    lowlink_[p] = counter_;
    ++counter_;
    stack_.push_back(p);
    on_stack_.insert(p);
  }

  const DependencyGraph& graph_;
  size_t counter_ = 0;
  std::unordered_map<FunctorId, size_t> index_;
  std::unordered_map<FunctorId, size_t> lowlink_;
  std::vector<FunctorId> stack_;
  std::unordered_set<FunctorId> on_stack_;
  std::vector<std::vector<FunctorId>> components_;
};

}  // namespace

std::vector<std::vector<FunctorId>>
DependencyGraph::StronglyConnectedComponents() const {
  return TarjanScc(*this).Run();
}

std::unordered_map<FunctorId, size_t> DependencyGraph::ComponentIds() const {
  std::unordered_map<FunctorId, size_t> ids;
  auto components = StronglyConnectedComponents();
  for (size_t i = 0; i < components.size(); ++i) {
    for (FunctorId p : components[i]) ids[p] = i;
  }
  return ids;
}

bool DependencyGraph::HasNegativeCycle() const {
  auto ids = ComponentIds();
  for (const Edge& e : edges_) {
    if (!e.positive && ids[e.from] == ids[e.to]) return true;
  }
  return false;
}

bool DependencyGraph::IsAcyclic() const {
  auto components = StronglyConnectedComponents();
  for (const auto& comp : components) {
    if (comp.size() > 1) return false;
  }
  // Single-node components may still have self loops.
  for (const Edge& e : edges_) {
    if (e.from == e.to) return false;
  }
  return true;
}

std::unordered_set<FunctorId> DependencyGraph::ReachableFrom(
    const std::vector<FunctorId>& roots) const {
  std::unordered_set<FunctorId> seen;
  std::vector<FunctorId> work;
  for (FunctorId r : roots) {
    if (seen.insert(r).second) work.push_back(r);
  }
  while (!work.empty()) {
    FunctorId p = work.back();
    work.pop_back();
    for (const Edge& e : EdgesFrom(p)) {
      if (seen.insert(e.to).second) work.push_back(e.to);
    }
  }
  return seen;
}

Stratification Stratify(const Program& program) {
  DependencyGraph graph(program);
  Stratification out;
  auto components = graph.StronglyConnectedComponents();
  auto ids = graph.ComponentIds();
  for (const auto& e : graph.edges()) {
    if (!e.positive && ids[e.from] == ids[e.to]) {
      out.stratified = false;
      return out;
    }
  }
  out.stratified = true;
  // Components are in reverse topological order (callees first), so a
  // single left-to-right pass computes strata:
  //   stratum(C) = max over edges C -> D of (stratum(D) + (edge negative)).
  std::vector<int> comp_stratum(components.size(), 0);
  for (size_t i = 0; i < components.size(); ++i) {
    int s = 0;
    for (FunctorId p : components[i]) {
      for (const auto& e : graph.EdgesFrom(p)) {
        size_t target = ids[e.to];
        if (target == i) continue;
        int need = comp_stratum[target] + (e.positive ? 0 : 1);
        s = std::max(s, need);
      }
    }
    comp_stratum[i] = s;
  }
  int max_stratum = 0;
  for (size_t i = 0; i < components.size(); ++i) {
    for (FunctorId p : components[i]) {
      out.strata[p] = comp_stratum[i];
    }
    max_stratum = std::max(max_stratum, comp_stratum[i]);
  }
  out.stratum_count = components.empty() ? 0 : max_stratum + 1;
  return out;
}

}  // namespace gsls
