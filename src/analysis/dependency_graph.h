#ifndef GSLS_ANALYSIS_DEPENDENCY_GRAPH_H_
#define GSLS_ANALYSIS_DEPENDENCY_GRAPH_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lang/program.h"

namespace gsls {

/// The predicate dependency graph of a program: one node per predicate,
/// an edge p -> q (with a sign) for every clause with head predicate p and
/// body literal on predicate q. Used for stratification (Apt-Blair-Walker),
/// acyclicity checks (Sec. 7 effectiveness classes), and relevance closure.
class DependencyGraph {
 public:
  struct Edge {
    FunctorId from;
    FunctorId to;
    bool positive;
  };

  explicit DependencyGraph(const Program& program);

  const std::vector<FunctorId>& predicates() const { return predicates_; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Outgoing edges of `pred` (empty if unknown predicate).
  const std::vector<Edge>& EdgesFrom(FunctorId pred) const;

  /// Strongly connected components, via Tarjan. Returns one vector of
  /// predicates per component, in reverse topological order (callees before
  /// callers).
  std::vector<std::vector<FunctorId>> StronglyConnectedComponents() const;

  /// Component id of each predicate, matching the order returned by
  /// `StronglyConnectedComponents`.
  std::unordered_map<FunctorId, size_t> ComponentIds() const;

  /// True iff some edge inside one SCC is negative (i.e. the program has
  /// recursion through negation at the predicate level).
  bool HasNegativeCycle() const;

  /// True iff the graph has no cycle at all, self-loops included —
  /// strictly: every SCC is a single predicate without a self edge. Such
  /// programs have no recursion of either sign at the predicate level, so
  /// global SLS-resolution terminates on them whenever grounding does
  /// (function symbols may still appear, but only non-recursively).
  bool IsAcyclic() const;

  /// Predicates reachable from `roots` (following either sign), including
  /// the roots themselves when they appear in the program.
  std::unordered_set<FunctorId> ReachableFrom(
      const std::vector<FunctorId>& roots) const;

 private:
  std::vector<FunctorId> predicates_;
  std::vector<Edge> edges_;
  std::unordered_map<FunctorId, std::vector<Edge>> out_edges_;
  std::vector<Edge> no_edges_;
};

/// Stratification analysis results.
struct Stratification {
  /// True iff the program is stratified: no negative edge within an SCC of
  /// the dependency graph.
  bool stratified = false;
  /// If stratified: stratum index per predicate, 0-based; predicates only
  /// depend positively on their own stratum and (either sign) on lower ones.
  std::unordered_map<FunctorId, int> strata;
  /// Number of strata (0 if not stratified).
  int stratum_count = 0;
};

/// Computes stratification of `program` (Apt-Blair-Walker). Stratified
/// programs are locally stratified, and on them the well-founded model is
/// total and coincides with the perfect model (Przymusinski).
Stratification Stratify(const Program& program);

}  // namespace gsls

#endif  // GSLS_ANALYSIS_DEPENDENCY_GRAPH_H_
