#include "analysis/dynamic_condensation.h"

#include <algorithm>
#include <cassert>

#include "obs/trace.h"
#include "util/strings.h"

namespace gsls {

std::string DynamicCondensation::Stats::ToString() const {
  return StrCat("inserts=", inserts, " removals=", removals,
                " windows=", windows, " window_atoms=", window_atoms,
                " window_us=", window_ns / 1000, " merges=", merges,
                " splits=", splits, " pk_regions=", pk_regions,
                " pk_region_comps=", pk_region_comps);
}

DynamicCondensation::DynamicCondensation(
    const GroundProgram& gp, const std::vector<uint8_t>* disabled)
    : graph_(gp, disabled) {}

void DynamicCondensation::AddAtoms(size_t new_atom_count) {
  AtomDependencyGraph& g = graph_;
  for (AtomId a = static_cast<AtomId>(g.comp_of_.size()); a < new_atom_count;
       ++a) {
    g.comp_of_.push_back(g.component_count());
    g.local_of_.push_back(0);
    g.comp_atoms_.push_back(a);
    g.comp_offsets_.push_back(static_cast<uint32_t>(g.comp_atoms_.size()));
    g.internal_neg_.push_back(0);
    g.recursive_.push_back(0);
  }
}

void DynamicCondensation::RecondenseWindow(
    const GroundProgram& gp, const std::vector<uint8_t>* disabled,
    uint32_t lo, uint32_t hi, CondensationRepair* out, CancelCtx* cancel) {
  // Latch-only cancellation: the ticks below poll the ctx (latching the
  // outcome and counting toward fault/step budgets) but their return value
  // is deliberately ignored — a window must always complete structurally,
  // since a half-spliced condensation has no consistent rollback state.
  // The latched abort takes effect at the caller's next solve checkpoint.
  StridedCheckpoint tick(cancel);
  AtomDependencyGraph& g = graph_;
  const uint32_t old_k = hi - lo + 1;
  const uint32_t abegin = g.comp_offsets_[lo];
  const uint32_t aend = g.comp_offsets_[hi + 1];
  const uint32_t w = aend - abegin;

  GSLS_TRACE_SPAN("condense.window", w);
  const uint64_t t0 = obs::NowNs();

  out->recondensed = true;
  out->window_lo = lo;
  out->old_window_size = old_k;
  out->old_to_new.assign(old_k, UINT32_MAX);
  ++stats_.windows;
  stats_.window_atoms += w;

  old_window_atoms_.assign(g.comp_atoms_.begin() + abegin,
                           g.comp_atoms_.begin() + aend);

  // Window-local dense index of an atom: its component's slice offset plus
  // its rank inside the component. Valid only against the pre-repair
  // arrays, so the whole local adjacency is materialized before anything
  // mutates.
  auto local_index = [&](AtomId b) {
    return g.comp_offsets_[g.comp_of_[b]] - abegin + g.local_of_[b];
  };
  auto in_window = [&](AtomId b) {
    uint32_t c = g.comp_of_[b];
    return c >= lo && c <= hi;
  };

  // Induced-subgraph adjacency (two counting passes, window-local ids).
  // Edges to atoms below the window are final dependencies and cannot lie
  // on a window cycle; edges above the window cannot exist — every enabled
  // rule except the delta respects the order, and the delta's endpoints
  // define the window.
  std::vector<uint32_t> adj_off(w + 1, 0);
  for (uint32_t i = 0; i < w; ++i) {
    (void)tick.Tick();
    for (RuleId rid : gp.RulesFor(old_window_atoms_[i])) {
      if (!RuleEnabledIn(disabled, rid)) continue;
      const GroundRule& r = gp.rules()[rid];
      for (AtomId b : r.pos) {
        if (in_window(b)) ++adj_off[i + 1];
      }
      for (AtomId b : r.neg) {
        if (in_window(b)) ++adj_off[i + 1];
      }
    }
  }
  for (uint32_t i = 0; i < w; ++i) adj_off[i + 1] += adj_off[i];
  std::vector<uint32_t> adj_tgt(adj_off[w]);
  std::vector<uint32_t> cursor(adj_off.begin(), adj_off.end() - 1);
  for (uint32_t i = 0; i < w; ++i) {
    (void)tick.Tick();
    for (RuleId rid : gp.RulesFor(old_window_atoms_[i])) {
      if (!RuleEnabledIn(disabled, rid)) continue;
      const GroundRule& r = gp.rules()[rid];
      for (AtomId b : r.pos) {
        if (in_window(b)) adj_tgt[cursor[i]++] = local_index(b);
      }
      for (AtomId b : r.neg) {
        if (in_window(b)) adj_tgt[cursor[i]++] = local_index(b);
      }
    }
  }

  // Iterative Tarjan over the window-local graph — the same callees-first
  // emission as the full builder, so new ids lo.. are in dependency order
  // among themselves (and relative to the untouched outside: everything a
  // window component depends on outside the window sits below `lo`,
  // everything depending on it sits above `hi`).
  new_atoms_.clear();
  new_offsets_.assign(1, 0);
  std::vector<uint32_t> index(w, UINT32_MAX);
  std::vector<uint32_t> lowlink(w, 0);
  std::vector<bool> on_stack(w, false);
  std::vector<uint32_t> stack;
  struct Frame {
    uint32_t node;
    uint32_t edge;
  };
  std::vector<Frame> frames;
  uint32_t counter = 0;
  uint32_t ncomp = 0;
  // Membership-change tracking: a new component that merges several old
  // ones, or an old one split across several new ones, must be re-solved.
  std::vector<uint8_t> changed;
  std::vector<uint32_t> first_old;

  for (uint32_t root = 0; root < w; ++root) {
    if (index[root] != UINT32_MAX) continue;
    index[root] = lowlink[root] = counter++;
    stack.push_back(root);
    on_stack[root] = true;
    frames.push_back(Frame{root, adj_off[root]});
    while (!frames.empty()) {
      (void)tick.Tick();
      Frame& f = frames.back();
      if (f.edge < adj_off[f.node + 1]) {
        uint32_t next = adj_tgt[f.edge++];
        if (index[next] == UINT32_MAX) {
          index[next] = lowlink[next] = counter++;
          stack.push_back(next);
          on_stack[next] = true;
          frames.push_back(Frame{next, adj_off[next]});
        } else if (on_stack[next]) {
          lowlink[f.node] = std::min(lowlink[f.node], index[next]);
        }
        continue;
      }
      uint32_t done = f.node;
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().node] =
            std::min(lowlink[frames.back().node], lowlink[done]);
      }
      if (lowlink[done] == index[done]) {
        uint32_t nc = ncomp++;
        changed.push_back(0);
        first_old.push_back(UINT32_MAX);
        uint32_t rank = 0;
        while (true) {
          uint32_t v = stack.back();
          stack.pop_back();
          on_stack[v] = false;
          AtomId atom = old_window_atoms_[v];
          uint32_t oldc = g.comp_of_[atom];
          if (first_old[nc] == UINT32_MAX) {
            first_old[nc] = oldc;
          } else if (first_old[nc] != oldc) {
            changed[nc] = 1;  // merged atoms of distinct old components
          }
          uint32_t& slot = out->old_to_new[oldc - lo];
          if (slot == UINT32_MAX) {
            slot = lo + nc;
          } else if (slot != lo + nc) {
            // The old component split across new ones: both sides changed.
            changed[nc] = 1;
            changed[slot - lo] = 1;
          }
          g.comp_of_[atom] = lo + nc;
          g.local_of_[atom] = rank++;
          new_atoms_.push_back(atom);
          if (v == done) break;
        }
        new_offsets_.push_back(static_cast<uint32_t>(new_atoms_.size()));
      }
    }
  }

  const uint32_t new_k = ncomp;
  out->new_window_size = new_k;
  const int64_t delta = static_cast<int64_t>(new_k) - old_k;
  if (delta < 0) ++stats_.merges;
  if (delta > 0) ++stats_.splits;

  // Splice: rewrite the window slice (same atoms, new grouping), resize
  // the per-component arrays by `delta`, and shift the component ids of
  // every atom above the window. Offsets above the window keep their
  // values — the window's atom total is unchanged.
  std::copy(new_atoms_.begin(), new_atoms_.end(),
            g.comp_atoms_.begin() + abegin);
  if (delta < 0) {
    g.comp_offsets_.erase(g.comp_offsets_.begin() + lo + 1 + new_k,
                          g.comp_offsets_.begin() + lo + 1 + old_k);
    g.internal_neg_.erase(g.internal_neg_.begin() + lo + new_k,
                          g.internal_neg_.begin() + lo + old_k);
    g.recursive_.erase(g.recursive_.begin() + lo + new_k,
                       g.recursive_.begin() + lo + old_k);
  } else if (delta > 0) {
    g.comp_offsets_.insert(g.comp_offsets_.begin() + lo + 1 + old_k,
                           static_cast<size_t>(delta), 0);
    g.internal_neg_.insert(g.internal_neg_.begin() + lo + old_k,
                           static_cast<size_t>(delta), 0);
    g.recursive_.insert(g.recursive_.begin() + lo + old_k,
                        static_cast<size_t>(delta), 0);
  }
  for (uint32_t i = 1; i <= new_k; ++i) {
    g.comp_offsets_[lo + i] = abegin + new_offsets_[i];
  }
  if (delta != 0) {
    for (size_t p = aend; p < g.comp_atoms_.size(); ++p) {
      g.comp_of_[g.comp_atoms_[p]] =
          static_cast<uint32_t>(g.comp_of_[g.comp_atoms_[p]] + delta);
    }
  }

  // Exact flags for the new window components (the builder's rule, window
  // heads only — intra-component edges are all that flags describe).
  for (uint32_t i = 0; i < new_k; ++i) {
    g.internal_neg_[lo + i] = 0;
    g.recursive_[lo + i] =
        (new_offsets_[i + 1] - new_offsets_[i] > 1) ? 1 : 0;
  }
  for (AtomId a : new_atoms_) {
    uint32_t hc = g.comp_of_[a];
    for (RuleId rid : gp.RulesFor(a)) {
      if (!RuleEnabledIn(disabled, rid)) continue;
      const GroundRule& r = gp.rules()[rid];
      for (AtomId b : r.pos) {
        if (g.comp_of_[b] == hc) g.recursive_[hc] = 1;
      }
      for (AtomId b : r.neg) {
        if (g.comp_of_[b] == hc) {
          g.internal_neg_[hc] = 1;
          g.recursive_[hc] = 1;
        }
      }
    }
  }

  for (uint32_t nc = 0; nc < new_k; ++nc) {
    if (changed[nc]) out->dirty.push_back(lo + nc);
  }
  stats_.window_ns += obs::NowNs() - t0;
}

void DynamicCondensation::NarrowedInsertRepair(
    const GroundProgram& gp, const std::vector<uint8_t>* disabled, RuleId r,
    uint32_t ch, uint32_t cmax, CondensationRepair* out, CancelCtx* cancel) {
  // Latch-only cancellation, as in RecondenseWindow: the repair always
  // completes structurally.
  StridedCheckpoint tick(cancel);
  AtomDependencyGraph& g = graph_;
  const uint32_t old_k = cmax - ch + 1;
  const uint32_t abegin = g.comp_offsets_[ch];
  const uint32_t aend = g.comp_offsets_[cmax + 1];

  GSLS_TRACE_SPAN("condense.pk_region", old_k);
  const uint64_t t0 = obs::NowNs();

  out->recondensed = true;
  out->window_lo = ch;
  out->old_window_size = old_k;
  out->old_to_new.assign(old_k, UINT32_MAX);
  ++stats_.windows;
  ++stats_.pk_regions;

  if (++pk_epoch_ == 0) {  // uint32 wrap: stale marks would alias
    std::fill(pk_f_.begin(), pk_f_.end(), 0);
    std::fill(pk_b_.begin(), pk_b_.end(), 0);
    pk_epoch_ = 1;
  }
  const uint32_t epoch = pk_epoch_;
  if (pk_f_.size() < g.component_count()) pk_f_.resize(g.component_count(), 0);
  if (pk_b_.size() < g.component_count()) pk_b_.resize(g.component_count(), 0);

  const GroundRule& rule = gp.rules()[r];

  // Forward frontier F: components reachable from `ch` through enabled
  // rules other than `r`, restricted to ids <= cmax. Ids only ascend along
  // dependency edges, so F sits inside [ch, cmax] by construction.
  pk_stack_.clear();
  pk_f_[ch] = epoch;
  pk_stack_.push_back(ch);
  while (!pk_stack_.empty()) {
    (void)tick.Tick();
    uint32_t c = pk_stack_.back();
    pk_stack_.pop_back();
    for (AtomId a : g.Atoms(c)) {
      auto visit_head = [&](RuleId rid) {
        if (rid == r || !RuleEnabledIn(disabled, rid)) return;
        uint32_t hc = g.comp_of_[gp.rules()[rid].head];
        if (hc <= cmax && pk_f_[hc] != epoch) {
          pk_f_[hc] = epoch;
          pk_stack_.push_back(hc);
        }
      };
      for (RuleId rid : gp.PositiveOccurrences(a)) visit_head(rid);
      for (RuleId rid : gp.NegativeOccurrences(a)) visit_head(rid);
    }
  }

  // Backward frontier B: components reaching a violating body component of
  // `r` (body ids > ch) through enabled rules other than `r`, restricted to
  // ids >= ch. All seeds are <= cmax and ids ascend along edges, so B sits
  // inside [ch, cmax] too — and cmax itself is a seed, so the affected
  // region spans exactly the classical window's id range; the narrowing is
  // in *work* (no Tarjan over window atoms) and *membership churn* (only
  // F ∩ B merges), not in the id span.
  pk_stack_.clear();
  auto seed_b = [&](AtomId b) {
    uint32_t cb = g.comp_of_[b];
    if (cb > ch && pk_b_[cb] != epoch) {
      pk_b_[cb] = epoch;
      pk_stack_.push_back(cb);
    }
  };
  for (AtomId b : rule.pos) seed_b(b);
  for (AtomId b : rule.neg) seed_b(b);
  while (!pk_stack_.empty()) {
    (void)tick.Tick();
    uint32_t c = pk_stack_.back();
    pk_stack_.pop_back();
    for (AtomId a : g.Atoms(c)) {
      for (RuleId rid : gp.RulesFor(a)) {
        if (rid == r || !RuleEnabledIn(disabled, rid)) continue;
        const GroundRule& rr = gp.rules()[rid];
        auto visit_body = [&](AtomId b) {
          uint32_t cb = g.comp_of_[b];
          if (cb >= ch && pk_b_[cb] != epoch) {
            pk_b_[cb] = epoch;
            pk_stack_.push_back(cb);
          }
        };
        for (AtomId b : rr.pos) visit_body(b);
        for (AtomId b : rr.neg) visit_body(b);
      }
    }
  }

  // Classify the window's ids. Every new cycle passes through the new
  // edges' shared head component `ch`, so the merged SCC — if any — is
  // exactly M = F ∩ B at component granularity, every member absorbed
  // whole; membership outside M is untouched and no Tarjan run is needed.
  pk_seq_b_.clear();
  pk_seq_m_.clear();
  pk_seq_f_.clear();
  for (uint32_t c = ch; c <= cmax; ++c) {
    const bool in_f = pk_f_[c] == epoch;
    const bool in_b = pk_b_[c] == epoch;
    if (in_f && in_b) {
      pk_seq_m_.push_back(c);
    } else if (in_b) {
      pk_seq_b_.push_back(c);
    } else if (in_f) {
      pk_seq_f_.push_back(c);
    }
    if (in_f || in_b) {
      stats_.window_atoms += g.Atoms(c).size();
    }
  }
  const uint32_t k = static_cast<uint32_t>(pk_seq_b_.size());
  const uint32_t m = static_cast<uint32_t>(pk_seq_f_.size());
  const uint32_t region =
      k + m + static_cast<uint32_t>(pk_seq_m_.size());
  out->pk_region_components = region;
  stats_.pk_region_comps += region;
  const bool merge = !pk_seq_m_.empty();
  // A merge happens iff ch reaches a violating body component, i.e. ch
  // itself is backward-marked; and then |M| >= 2 (ch plus that body).
  assert(merge == (pk_b_[ch] == epoch));
  assert(!merge || pk_seq_m_.size() >= 2);
  assert(pk_seq_m_.empty() || pk_seq_m_.front() == ch);

  // Renumber by walking the window's id slots in ascending order. Region
  // slots are refilled from the queue [sorted(B \ M), merged M,
  // sorted(F \ M)] with B∪M entries at the earliest region slots and F
  // entries at the *latest* region slots (the |M|-1 freed slots collapse
  // in the middle); non-region slots re-emit their own component. This
  // placement keeps every edge class order-valid: B members only move
  // earlier (j-th smallest B id lands on the j-th smallest region id),
  // F members only move later, in-window successors of F∪M members are
  // again in F (forward closure) and in-window predecessors of B∪M
  // members are again in B (backward closure), so a non-region component
  // only ever feeds F members placed at later slots or consumes B members
  // placed at earlier ones.
  new_atoms_.clear();
  new_offsets_.assign(1, 0);
  pk_neg_.clear();
  pk_rec_.clear();
  uint32_t emitted = 0;
  uint32_t merged_new = UINT32_MAX;
  auto emit_single = [&](uint32_t oldc) {
    out->old_to_new[oldc - ch] = ch + emitted;
    for (AtomId a : g.Atoms(oldc)) new_atoms_.push_back(a);
    new_offsets_.push_back(static_cast<uint32_t>(new_atoms_.size()));
    pk_neg_.push_back(g.internal_neg_[oldc]);
    pk_rec_.push_back(g.recursive_[oldc]);
    ++emitted;
  };
  uint32_t region_seen = 0;
  for (uint32_t c = ch; c <= cmax; ++c) {
    (void)tick.Tick();
    if (pk_f_[c] != epoch && pk_b_[c] != epoch) {
      emit_single(c);
      continue;
    }
    ++region_seen;
    if (region_seen <= k) {
      emit_single(pk_seq_b_[region_seen - 1]);
    } else if (region_seen > region - m) {
      emit_single(pk_seq_f_[region_seen - (region - m) - 1]);
    } else if (region_seen == k + 1 && merge) {
      // The merged component, in ascending old-id order (each old
      // component is an atom-level SCC and the new edges close a cycle
      // through all of them, so the concatenation is one SCC).
      merged_new = ch + emitted;
      for (uint32_t oldc : pk_seq_m_) {
        out->old_to_new[oldc - ch] = merged_new;
        for (AtomId a : g.Atoms(oldc)) new_atoms_.push_back(a);
      }
      new_offsets_.push_back(static_cast<uint32_t>(new_atoms_.size()));
      pk_neg_.push_back(0);  // recomputed below, post-splice
      pk_rec_.push_back(1);  // >= 2 merged components: cycle by definition
      ++emitted;
    }
    // Remaining middle region slots are the |M|-1 ids freed by the merge.
  }

  const uint32_t new_k = emitted;
  out->new_window_size = new_k;
  const int64_t delta = static_cast<int64_t>(new_k) - old_k;
  assert(delta <= 0);  // insertions only merge, never split
  if (delta < 0) ++stats_.merges;

  // Splice, as in RecondenseWindow: same atoms in the window slice under a
  // new grouping, per-component arrays resized by `delta`, component ids
  // above the window shifted.
  std::copy(new_atoms_.begin(), new_atoms_.end(),
            g.comp_atoms_.begin() + abegin);
  if (delta < 0) {
    g.comp_offsets_.erase(g.comp_offsets_.begin() + ch + 1 + new_k,
                          g.comp_offsets_.begin() + ch + 1 + old_k);
    g.internal_neg_.erase(g.internal_neg_.begin() + ch + new_k,
                          g.internal_neg_.begin() + ch + old_k);
    g.recursive_.erase(g.recursive_.begin() + ch + new_k,
                       g.recursive_.begin() + ch + old_k);
  }
  for (uint32_t i = 1; i <= new_k; ++i) {
    g.comp_offsets_[ch + i] = abegin + new_offsets_[i];
  }
  for (uint32_t i = 0; i < new_k; ++i) {
    g.internal_neg_[ch + i] = pk_neg_[i];
    g.recursive_[ch + i] = pk_rec_[i];
    uint32_t rank = 0;
    for (uint32_t p = new_offsets_[i]; p < new_offsets_[i + 1]; ++p) {
      g.comp_of_[new_atoms_[p]] = ch + i;
      g.local_of_[new_atoms_[p]] = rank++;
    }
  }
  if (delta != 0) {
    for (size_t p = aend; p < g.comp_atoms_.size(); ++p) {
      g.comp_of_[g.comp_atoms_[p]] =
          static_cast<uint32_t>(g.comp_of_[g.comp_atoms_[p]] + delta);
    }
  }

  // Non-merged components carried their flags verbatim — valid for every
  // pre-existing rule (membership is unchanged), but the new rule itself
  // may add an intra-component edge to its head's component (a body atom
  // in the head's own component, next to the violating higher body), so
  // tighten those flags here exactly like the order-respecting branch of
  // InsertRule does.
  {
    const uint32_t hc = g.comp_of_[rule.head];
    for (AtomId b : rule.pos) {
      if (g.comp_of_[b] == hc) g.recursive_[hc] = 1;
    }
    for (AtomId b : rule.neg) {
      if (g.comp_of_[b] == hc) {
        g.internal_neg_[hc] = 1;
        g.recursive_[hc] = 1;
      }
    }
  }

  // Exact flags for the merged component (the new rule `r` included —
  // its neg body atoms may be the very edge that makes the merge
  // negation-recursive). Non-merged components carried their flags.
  if (merge) {
    uint8_t neg = 0;
    for (AtomId a : g.Atoms(merged_new)) {
      for (RuleId rid : gp.RulesFor(a)) {
        if (!RuleEnabledIn(disabled, rid)) continue;
        for (AtomId b : gp.rules()[rid].neg) {
          if (g.comp_of_[b] == merged_new) neg = 1;
        }
      }
    }
    g.internal_neg_[merged_new] = neg;
    out->dirty.push_back(merged_new);
  }
  stats_.window_ns += obs::NowNs() - t0;
}

CondensationRepair DynamicCondensation::InsertRule(
    const GroundProgram& gp, const std::vector<uint8_t>* disabled, RuleId r,
    CancelCtx* cancel) {
  ++stats_.inserts;
  CondensationRepair out;
  const GroundRule& rule = gp.rules()[r];
  AtomDependencyGraph& g = graph_;
  assert(rule.head < g.comp_of_.size());
  uint32_t ch = g.comp_of_[rule.head];
  uint32_t cmax = ch;
  for (AtomId b : rule.pos) cmax = std::max(cmax, g.comp_of_[b]);
  for (AtomId b : rule.neg) cmax = std::max(cmax, g.comp_of_[b]);
  if (cmax > ch) {
    // The delta's head now depends on a component ordered after it — the
    // one way a rule insertion can close a cycle or break the id order.
    // Any closing path descends through ids in [ch, cmax], but only the
    // Pearce–Kelly affected region (forward frontier of ch ∩ backward
    // frontier of the violating bodies) can actually change membership;
    // the narrowed repair renumbers without re-running Tarjan and leaves
    // every component outside the region untouched.
    NarrowedInsertRepair(gp, disabled, r, ch, cmax, &out, cancel);
  } else {
    // Order-respecting edges: membership and ids hold everywhere; only the
    // head component's recursion flags can tighten.
    for (AtomId b : rule.pos) {
      if (g.comp_of_[b] == ch) g.recursive_[ch] = 1;
    }
    for (AtomId b : rule.neg) {
      if (g.comp_of_[b] == ch) {
        g.internal_neg_[ch] = 1;
        g.recursive_[ch] = 1;
      }
    }
  }

  uint32_t hc = g.comp_of_[rule.head];
  out.dirty.push_back(hc);
  for (AtomId b : rule.pos) {
    uint32_t bc = g.comp_of_[b];
    if (bc != hc) out.new_edges.emplace_back(bc, hc);
  }
  for (AtomId b : rule.neg) {
    uint32_t bc = g.comp_of_[b];
    if (bc != hc) out.new_edges.emplace_back(bc, hc);
  }
  std::sort(out.new_edges.begin(), out.new_edges.end());
  out.new_edges.erase(std::unique(out.new_edges.begin(), out.new_edges.end()),
                      out.new_edges.end());
  return out;
}

CondensationRepair DynamicCondensation::RemoveRule(
    const GroundProgram& gp, const std::vector<uint8_t>* disabled, RuleId r,
    CancelCtx* cancel) {
  ++stats_.removals;
  CondensationRepair out;
  const GroundRule& rule = gp.rules()[r];
  AtomDependencyGraph& g = graph_;
  assert(!RuleEnabledIn(disabled, r));
  uint32_t ch = g.comp_of_[rule.head];
  bool intra = false;
  for (AtomId b : rule.pos) intra = intra || g.comp_of_[b] == ch;
  for (AtomId b : rule.neg) intra = intra || g.comp_of_[b] == ch;
  if (intra) {
    // The retracted rule carried intra-component edges: the head's
    // component may no longer be strongly connected. Removing
    // cross-component edges, by contrast, never changes membership and
    // only relaxes order constraints, which stay satisfied.
    RecondenseWindow(gp, disabled, ch, ch, &out, cancel);
  }
  out.dirty.push_back(g.comp_of_[rule.head]);
  return out;
}

}  // namespace gsls
