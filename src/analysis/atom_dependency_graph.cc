#include "analysis/atom_dependency_graph.h"

#include <algorithm>

namespace gsls {

namespace {

/// Flat CSR adjacency: successors of a head atom are the body atoms (both
/// signs) of its rules, with multiplicity — Tarjan is indifferent to
/// duplicate edges and skipping deduplication keeps construction linear.
/// Rules flagged in the optional `disabled` mask contribute no edges.
struct Adjacency {
  std::vector<uint32_t> offsets;
  std::vector<AtomId> targets;

  Adjacency(const GroundProgram& gp, const std::vector<uint8_t>* disabled) {
    size_t n = gp.atom_count();
    offsets.assign(n + 1, 0);
    for (RuleId id = 0; id < gp.rule_count(); ++id) {
      if (!RuleEnabledIn(disabled, id)) continue;
      const GroundRule& r = gp.rules()[id];
      offsets[r.head + 1] +=
          static_cast<uint32_t>(r.pos.size() + r.neg.size());
    }
    for (size_t i = 0; i < n; ++i) offsets[i + 1] += offsets[i];
    targets.resize(offsets[n]);
    std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (RuleId id = 0; id < gp.rule_count(); ++id) {
      if (!RuleEnabledIn(disabled, id)) continue;
      const GroundRule& r = gp.rules()[id];
      for (AtomId a : r.pos) targets[cursor[r.head]++] = a;
      for (AtomId a : r.neg) targets[cursor[r.head]++] = a;
    }
  }
};

}  // namespace

AtomDependencyGraph::AtomDependencyGraph(
    const GroundProgram& gp, const std::vector<uint8_t>* disabled) {
  size_t n = gp.atom_count();
  Adjacency adj(gp, disabled);

  comp_of_.assign(n, UINT32_MAX);
  local_of_.assign(n, 0);
  comp_offsets_.assign(1, 0);

  // Iterative Tarjan. Components are completed callees-first, so numbering
  // them in emission order yields the dependency order documented in the
  // header (every cross-component edge points to a smaller id).
  std::vector<uint32_t> index(n, UINT32_MAX);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<AtomId> stack;
  struct Frame {
    AtomId atom;
    uint32_t edge;
  };
  std::vector<Frame> frames;
  uint32_t counter = 0;

  for (AtomId root = 0; root < n; ++root) {
    if (index[root] != UINT32_MAX) continue;
    index[root] = lowlink[root] = counter++;
    stack.push_back(root);
    on_stack[root] = true;
    frames.push_back(Frame{root, adj.offsets[root]});
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.edge < adj.offsets[f.atom + 1]) {
        AtomId next = adj.targets[f.edge++];
        if (index[next] == UINT32_MAX) {
          index[next] = lowlink[next] = counter++;
          stack.push_back(next);
          on_stack[next] = true;
          frames.push_back(Frame{next, adj.offsets[next]});
        } else if (on_stack[next]) {
          lowlink[f.atom] = std::min(lowlink[f.atom], index[next]);
        }
        continue;
      }
      AtomId done = f.atom;
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().atom] =
            std::min(lowlink[frames.back().atom], lowlink[done]);
      }
      if (lowlink[done] == index[done]) {
        uint32_t comp = static_cast<uint32_t>(comp_offsets_.size() - 1);
        uint32_t rank = 0;
        while (true) {
          AtomId w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          comp_of_[w] = comp;
          local_of_[w] = rank++;
          comp_atoms_.push_back(w);
          if (w == done) break;
        }
        comp_offsets_.push_back(static_cast<uint32_t>(comp_atoms_.size()));
      }
    }
  }

  internal_neg_.assign(component_count(), 0);
  recursive_.assign(component_count(), 0);
  for (uint32_t c = 0; c < component_count(); ++c) {
    if (comp_offsets_[c + 1] - comp_offsets_[c] > 1) recursive_[c] = 1;
  }
  for (RuleId id = 0; id < gp.rule_count(); ++id) {
    if (!RuleEnabledIn(disabled, id)) continue;
    const GroundRule& r = gp.rules()[id];
    uint32_t head_comp = comp_of_[r.head];
    for (AtomId a : r.pos) {
      if (comp_of_[a] == head_comp) recursive_[head_comp] = 1;
    }
    for (AtomId a : r.neg) {
      if (comp_of_[a] == head_comp) {
        internal_neg_[head_comp] = 1;
        recursive_[head_comp] = 1;
      }
    }
  }
}

bool AtomDependencyGraph::IsLocallyStratified() const {
  return std::none_of(internal_neg_.begin(), internal_neg_.end(),
                      [](uint8_t f) { return f != 0; });
}

bool AtomDependencyGraph::IsAcyclic() const {
  return std::none_of(recursive_.begin(), recursive_.end(),
                      [](uint8_t f) { return f != 0; });
}

}  // namespace gsls
