#ifndef GSLS_ANALYSIS_ATOM_DEPENDENCY_GRAPH_H_
#define GSLS_ANALYSIS_ATOM_DEPENDENCY_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "ground/ground_program.h"

namespace gsls {

/// The atom-level dependency graph of a ground program, condensed into
/// strongly connected components: one node per registered ground atom, an
/// edge head -> body atom (of either sign) for every ground rule.
///
/// The predicate-level `DependencyGraph` over-approximates recursion on
/// nonground programs; this graph is exact on a grounding and is what the
/// SCC-stratified solver (src/solver/) schedules on. Construction is a
/// single iterative Tarjan pass: O(atoms + body literals).
///
/// With a `disabled` mask (one byte per `RuleId`, nonzero = the rule does
/// not exist), the graph is the condensation of the *enabled* subprogram —
/// the view `DynamicCondensation` (analysis/dynamic_condensation.h)
/// maintains under rule-level deltas, and the baseline
/// `IncrementalSolver::SolveFresh` builds from scratch.
class AtomDependencyGraph {
 public:
  explicit AtomDependencyGraph(const GroundProgram& gp,
                               const std::vector<uint8_t>* disabled = nullptr);

  /// Number of strongly connected components. Every registered atom is in
  /// exactly one component (isolated atoms form singletons).
  uint32_t component_count() const {
    return static_cast<uint32_t>(comp_offsets_.size() - 1);
  }

  /// Number of atoms the graph was built over. A `GroundProgram` that has
  /// since interned more atoms makes this condensation stale (fact deltas
  /// never add dependency *edges* — unit rules have no body — so staleness
  /// is exactly an atom-count mismatch and rebuilds can be lazy).
  size_t atom_count() const { return comp_of_.size(); }

  /// Component of `atom`. Components are numbered in dependency order:
  /// every body atom of a rule whose head lies in component c belongs to a
  /// component with id <= c, with equality exactly for intra-component
  /// recursion. Processing components in increasing id order therefore
  /// sees every lower (callee) component decided first.
  uint32_t ComponentOf(AtomId atom) const { return comp_of_[atom]; }

  /// Rank of `atom` within `Atoms(ComponentOf(atom))`; gives each solver
  /// pass dense component-local ids for free.
  uint32_t LocalIndexOf(AtomId atom) const { return local_of_[atom]; }

  /// Atoms of component `c`.
  std::span<const AtomId> Atoms(uint32_t c) const {
    return std::span<const AtomId>(comp_atoms_.data() + comp_offsets_[c],
                                   comp_offsets_[c + 1] - comp_offsets_[c]);
  }

  /// True iff some rule has its head and a *negative* body atom both in
  /// `c`: the component recurses through negation and needs the
  /// component-local alternating treatment.
  bool HasInternalNegation(uint32_t c) const { return internal_neg_[c] != 0; }

  /// True iff `c` contains more than one atom or an intra-component edge
  /// of either sign (a self-loop); such components need fixpoint
  /// iteration, while the rest reduce to direct 3-valued rule evaluation.
  bool IsRecursive(uint32_t c) const { return recursive_[c] != 0; }

  /// True iff no component has internal negation: exactly local
  /// stratification of the ground program (Przymusinski), on which the
  /// well-founded model is total.
  bool IsLocallyStratified() const;

  /// True iff every component is a single atom without a self-loop — the
  /// paper's "acyclic programs" effectiveness class (Sec. 7).
  bool IsAcyclic() const;

 private:
  /// The dynamic-SCC layer repairs this condensation in place on rule
  /// deltas (windowed re-Tarjan + splice) instead of reconstructing it.
  friend class DynamicCondensation;

  AtomDependencyGraph() = default;  ///< for DynamicCondensation only

  std::vector<uint32_t> comp_of_;    ///< per atom
  std::vector<uint32_t> local_of_;   ///< per atom: rank within component
  std::vector<uint32_t> comp_offsets_;  ///< CSR offsets into comp_atoms_
  std::vector<AtomId> comp_atoms_;      ///< members, grouped by component
  std::vector<uint8_t> internal_neg_;   ///< per component
  std::vector<uint8_t> recursive_;      ///< per component
};

}  // namespace gsls

#endif  // GSLS_ANALYSIS_ATOM_DEPENDENCY_GRAPH_H_
