#include "ground/herbrand.h"

#include "util/strings.h"

namespace gsls {

Result<std::vector<const Term*>> EnumerateUniverse(
    const Program& program, const UniverseOptions& opts) {
  TermStore& store = program.store();
  std::vector<const Term*> universe = program.Constants();
  if (universe.empty()) {
    universe.push_back(store.MakeConstant("$k"));
  }
  std::vector<FunctorId> functions = program.FunctionSymbols();
  if (functions.empty() || opts.max_term_depth <= 1) {
    if (universe.size() > opts.max_terms) {
      return Status::ResourceExhausted(
          StrCat("universe exceeds max_terms=", opts.max_terms));
    }
    return universe;
  }

  // Frontier construction: depth d+1 terms have at least one depth-d child.
  std::vector<const Term*> previous_depths = universe;  // depth <= d
  std::vector<const Term*> frontier = universe;         // depth == d
  for (uint32_t depth = 2; depth <= opts.max_term_depth; ++depth) {
    std::vector<const Term*> next;
    for (FunctorId f : functions) {
      uint32_t arity = store.symbols().FunctorArity(f);
      // Enumerate argument tuples over previous_depths with at least one
      // argument from the frontier.
      std::vector<const Term*> args(arity, nullptr);
      std::vector<size_t> idx(arity, 0);
      // Simple odometer over previous_depths^arity.
      while (true) {
        bool uses_frontier = false;
        for (uint32_t i = 0; i < arity; ++i) {
          args[i] = previous_depths[idx[i]];
          if (args[i]->depth() == depth - 1) uses_frontier = true;
        }
        if (uses_frontier) {
          next.push_back(store.MakeCompound(f, args));
          if (previous_depths.size() + next.size() > opts.max_terms) {
            return Status::ResourceExhausted(
                StrCat("universe exceeds max_terms=", opts.max_terms,
                       " at depth ", depth));
          }
        }
        // Advance odometer.
        uint32_t pos = 0;
        for (; pos < arity; ++pos) {
          if (++idx[pos] < previous_depths.size()) break;
          idx[pos] = 0;
        }
        if (pos == arity) break;
        if (arity == 0) break;
      }
      if (arity == 0) continue;
    }
    previous_depths.insert(previous_depths.end(), next.begin(), next.end());
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  return previous_depths;
}

}  // namespace gsls
