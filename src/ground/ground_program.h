#ifndef GSLS_GROUND_GROUND_PROGRAM_H_
#define GSLS_GROUND_GROUND_PROGRAM_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "lang/program.h"
#include "term/term_store.h"

namespace gsls {

/// Dense id of a ground atom within one `GroundProgram`.
using AtomId = uint32_t;

/// Dense id of a ground rule within one `GroundProgram`.
using RuleId = uint32_t;

/// A ground (instantiated) rule with body split by sign.
struct GroundRule {
  AtomId head;
  std::vector<AtomId> pos;
  std::vector<AtomId> neg;
};

/// A finite fragment of the Herbrand instantiation of a program (Def. 1.5):
/// ground atoms with dense ids, ground rules, and the occurrence indexes
/// needed by linear-time fixpoint algorithms.
class GroundProgram {
 public:
  explicit GroundProgram(TermStore* store) : store_(store) {}

  TermStore& store() const { return *store_; }

  /// Interns `atom` (must be ground), returning its dense id.
  AtomId InternAtom(const Term* atom);

  /// The id of `atom` if present.
  std::optional<AtomId> FindAtom(const Term* atom) const;

  const Term* AtomTerm(AtomId id) const { return atom_terms_[id]; }
  size_t atom_count() const { return atom_terms_.size(); }

  /// Adds a rule (deduplicated: an identical rule is added once). Returns
  /// the id of the rule — the existing one when `rule` was a duplicate.
  RuleId AddRule(GroundRule rule);

  /// The id of the unit rule `atom.` (empty body) if one exists. A fact
  /// delta (`IncrementalSolver::Assert`/`Retract`) toggles exactly this
  /// rule.
  std::optional<RuleId> FindUnitRule(AtomId atom) const;

  const std::vector<GroundRule>& rules() const { return rules_; }
  size_t rule_count() const { return rules_.size(); }

  /// Ids of the rules whose head is `atom`.
  const std::vector<RuleId>& RulesFor(AtomId atom) const;

  /// Ids of the rules where `atom` occurs in a positive body position.
  const std::vector<RuleId>& PositiveOccurrences(AtomId atom) const;
  /// Ids of the rules where `atom` occurs in a negative body position.
  const std::vector<RuleId>& NegativeOccurrences(AtomId atom) const;

  /// One `head :- body.` line per rule.
  std::string ToString() const;

  /// True iff the atom-level dependency graph has no cycle containing a
  /// negative edge. For ground programs this is exactly local
  /// stratification (Przymusinski); on such programs the well-founded model
  /// is total and equals the perfect model.
  bool IsLocallyStratified() const;

  /// True iff the atom-level dependency graph (both signs) is acyclic —
  /// the paper's "acyclic programs" effectiveness class (Sec. 7).
  bool IsAtomAcyclic() const;

 private:
  void EnsureIndex(AtomId atom);

  TermStore* store_;
  std::vector<const Term*> atom_terms_;
  std::unordered_map<const Term*, AtomId> atom_ids_;
  std::vector<GroundRule> rules_;
  std::unordered_map<uint64_t, std::vector<RuleId>> rule_dedup_;
  std::vector<std::vector<RuleId>> rules_for_;
  std::vector<std::vector<RuleId>> pos_occ_;
  std::vector<std::vector<RuleId>> neg_occ_;
};

}  // namespace gsls

#endif  // GSLS_GROUND_GROUND_PROGRAM_H_
