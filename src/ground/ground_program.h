#ifndef GSLS_GROUND_GROUND_PROGRAM_H_
#define GSLS_GROUND_GROUND_PROGRAM_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "lang/program.h"
#include "term/term_store.h"
#include "util/csr.h"

namespace gsls {

/// Dense id of a ground atom within one `GroundProgram`.
using AtomId = uint32_t;

/// Dense id of a ground rule within one `GroundProgram`.
using RuleId = uint32_t;

/// A ground (instantiated) rule with body split by sign.
struct GroundRule {
  AtomId head;
  std::vector<AtomId> pos;
  std::vector<AtomId> neg;
};

/// True iff rule `r` is enabled under an optional per-`RuleId` disabled
/// mask (nonzero byte = retracted; out-of-range ids are enabled). The one
/// definition of the mask convention `IncrementalSolver` maintains and
/// every masked consumer (condensation, scheduling DAG, per-SCC
/// evaluation) reads.
inline bool RuleEnabledIn(const std::vector<uint8_t>* disabled, RuleId r) {
  return disabled == nullptr || r >= disabled->size() || (*disabled)[r] == 0;
}

/// A finite fragment of the Herbrand instantiation of a program (Def. 1.5):
/// ground atoms with dense ids, ground rules, and the occurrence indexes
/// needed by linear-time fixpoint algorithms.
class GroundProgram {
 public:
  explicit GroundProgram(TermStore* store) : store_(store) {}

  TermStore& store() const { return *store_; }

  /// Interns `atom` (must be ground), returning its dense id.
  AtomId InternAtom(const Term* atom);

  /// The id of `atom` if present.
  std::optional<AtomId> FindAtom(const Term* atom) const;

  const Term* AtomTerm(AtomId id) const { return atom_terms_[id]; }
  size_t atom_count() const { return atom_terms_.size(); }

  /// Adds a rule (deduplicated: an identical rule is added once). Returns
  /// the id of the rule — the existing one when `rule` was a duplicate.
  RuleId AddRule(GroundRule rule);

  /// The id of the unit rule `atom.` (empty body) if one exists. A fact
  /// delta (`IncrementalSolver::Assert`/`Retract`) toggles exactly this
  /// rule.
  std::optional<RuleId> FindUnitRule(AtomId atom) const;

  /// The id of the rule identical to `rule` (body order irrelevant), if
  /// present — content-addressed lookup over the dedup index, used to
  /// re-target rule deltas after a re-ground.
  std::optional<RuleId> FindRule(GroundRule rule) const;

  const std::vector<GroundRule>& rules() const { return rules_; }
  size_t rule_count() const { return rules_.size(); }

  /// Ids of the rules whose head is `atom`, in increasing rule id.
  ///
  /// The three index accessors serve spans into a flat CSR index (one
  /// offsets + payload pair per index, `util/csr.h`) that is maintained
  /// lazily: `AddRule` over already-indexed atoms — a first-time fact from
  /// `IncrementalSolver::Assert`, or a non-unit delta from `AssertRule` —
  /// queues a cheap row merge (one counting pass per affected index, no
  /// rule rescan), and only a rule mentioning a never-indexed atom goes
  /// fully stale; the first lookup afterwards pays the deferred work once.
  /// Spans are invalidated by the next `AddRule`.
  /// Concurrent const lookups are safe even when the first one triggers
  /// the rebuild (it runs under an internal mutex behind an atomic
  /// freshness check); mutation (`AddRule`/`InternAtom`) still requires
  /// exclusive access, as before.
  std::span<const RuleId> RulesFor(AtomId atom) const;

  /// Ids of the rules where `atom` occurs in a positive body position.
  std::span<const RuleId> PositiveOccurrences(AtomId atom) const;
  /// Ids of the rules where `atom` occurs in a negative body position.
  std::span<const RuleId> NegativeOccurrences(AtomId atom) const;

  /// Materializes the occurrence index now if it is stale, so subsequent
  /// index reads are pure loads (the parallel solver calls this before
  /// fanning out to keep workers from serializing on the rebuild mutex).
  void EnsureOccurrenceIndex() const;

  /// One `head :- body.` line per rule.
  std::string ToString() const;

  /// True iff the atom-level dependency graph has no cycle containing a
  /// negative edge. For ground programs this is exactly local
  /// stratification (Przymusinski); on such programs the well-founded model
  /// is total and equals the perfect model.
  bool IsLocallyStratified() const;

  /// True iff the atom-level dependency graph (both signs) is acyclic —
  /// the paper's "acyclic programs" effectiveness class (Sec. 7).
  bool IsAtomAcyclic() const;

 private:
  enum class IndexState : uint8_t {
    kStale,        ///< full two-pass rebuild needed
    kPendingRows,  ///< valid base + queued per-rule row appends
    kFresh,        ///< serves reads as-is
  };

  /// Applies the queued rule appends as one counting pass per affected
  /// index (`rules_for_` always; the occurrence indexes only when some
  /// queued rule has a body). Pending ids all exceed every indexed id and
  /// arrive in id order, so appending keeps rows id-sorted. Caller holds
  /// `sync_->mu`.
  void MergePendingRows() const;
  void RebuildOccurrenceIndex() const;  ///< caller holds `sync_->mu`

  TermStore* store_;
  std::vector<const Term*> atom_terms_;
  std::unordered_map<const Term*, AtomId> atom_ids_;
  std::vector<GroundRule> rules_;
  std::unordered_map<uint64_t, std::vector<RuleId>> rule_dedup_;
  /// Unit rule per atom (at most one exists: `AddRule` deduplicates).
  /// Maintained eagerly so fact deltas never touch the lazy index.
  std::unordered_map<AtomId, RuleId> unit_rule_;

  // Lazy flat occurrence index (see `RulesFor`). Boxed synchronization
  // keeps `GroundProgram` movable (a moved-from program is unusable, and
  // never used).
  struct IndexSync {
    std::mutex mu;
    std::atomic<IndexState> state{IndexState::kStale};
  };
  mutable Csr<RuleId> rules_for_;
  mutable Csr<RuleId> pos_occ_;
  mutable Csr<RuleId> neg_occ_;
  mutable std::vector<RuleId> pending_rows_;
  mutable bool pending_has_body_ = false;
  mutable std::unique_ptr<IndexSync> sync_ = std::make_unique<IndexSync>();
};

}  // namespace gsls

#endif  // GSLS_GROUND_GROUND_PROGRAM_H_
