#ifndef GSLS_GROUND_GROUNDER_H_
#define GSLS_GROUND_GROUNDER_H_

#include "ground/ground_program.h"
#include "ground/herbrand.h"
#include "lang/program.h"
#include "util/status.h"

namespace gsls {

/// Options for `GroundRelevant` / `FullyInstantiate`.
struct GroundingOptions {
  UniverseOptions universe;
  size_t max_rules = 2'000'000;  ///< Hard cap on emitted ground rules.
  size_t max_atoms = 1'000'000;  ///< Hard cap on registered ground atoms.
  /// Rule instances whose atoms have argument terms deeper than this are
  /// dropped (0 = use `universe.max_term_depth`). Function symbols in rule
  /// heads would otherwise let the derivation escape every universe bound;
  /// for function-free programs the cap is irrelevant. Truncation makes
  /// the grounding a sound under-approximation for goals whose derivations
  /// stay within the bound.
  uint32_t max_atom_arg_depth = 0;
};

/// Produces the *relevant* finite fragment of the Herbrand instantiation:
/// only rule instances whose positive body atoms are all derivable when
/// every negative literal is assumed true (a standard over-approximation:
/// the emitted fragment provably contains every rule instance that can
/// matter to the well-founded model, because atoms outside the
/// over-approximation are false in it). Variables not bound by positive
/// body matching (in heads or negative literals of non-range-restricted
/// clauses) are enumerated over the bounded universe.
///
/// For function-free programs with `max_term_depth == 1` this is exact:
/// the well-founded model of the result, extended with falsehood for all
/// unregistered atoms, is the well-founded model of `program`.
Result<GroundProgram> GroundRelevant(const Program& program,
                                     const GroundingOptions& opts);

/// The brute-force Herbrand instantiation (Def. 1.5) over the bounded
/// universe: every clause instantiated in every possible way. Exponential;
/// intended for cross-validating `GroundRelevant` on small programs.
Result<GroundProgram> FullyInstantiate(const Program& program,
                                       const GroundingOptions& opts);

/// Restricts `gp` to the rules relevant to `roots`: the least set of atoms
/// containing every registered atom that unifies with a root atom and
/// closed under "body atoms of rules for relevant atoms". Atom ids are
/// re-assigned in the result.
GroundProgram RestrictToRelevant(const GroundProgram& gp,
                                 const std::vector<const Term*>& roots);

}  // namespace gsls

#endif  // GSLS_GROUND_GROUNDER_H_
