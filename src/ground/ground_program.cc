#include "ground/ground_program.h"

#include <algorithm>
#include <cassert>

#include "analysis/atom_dependency_graph.h"
#include "util/strings.h"

namespace gsls {

AtomId GroundProgram::InternAtom(const Term* atom) {
  assert(atom->ground());
  auto it = atom_ids_.find(atom);
  if (it != atom_ids_.end()) return it->second;
  AtomId id = static_cast<AtomId>(atom_terms_.size());
  atom_terms_.push_back(atom);
  atom_ids_.emplace(atom, id);
  return id;
}

std::optional<AtomId> GroundProgram::FindAtom(const Term* atom) const {
  auto it = atom_ids_.find(atom);
  if (it == atom_ids_.end()) return std::nullopt;
  return it->second;
}

namespace {
uint64_t RuleFingerprint(const GroundRule& r) {
  uint64_t h = r.head * 0x9e3779b97f4a7c15ULL + 1;
  for (AtomId a : r.pos) h = h * 0xff51afd7ed558ccdULL + a + 0x100;
  for (AtomId a : r.neg) h = h * 0xc4ceb9fe1a85ec53ULL + a + 0x200;
  return h;
}
}  // namespace

RuleId GroundProgram::AddRule(GroundRule rule) {
  // Normalize body order for deduplication (body literal order is
  // semantically irrelevant in a ground rule).
  std::sort(rule.pos.begin(), rule.pos.end());
  rule.pos.erase(std::unique(rule.pos.begin(), rule.pos.end()),
                 rule.pos.end());
  std::sort(rule.neg.begin(), rule.neg.end());
  rule.neg.erase(std::unique(rule.neg.begin(), rule.neg.end()),
                 rule.neg.end());

  uint64_t fp = RuleFingerprint(rule);
  auto& bucket = rule_dedup_[fp];
  for (RuleId id : bucket) {
    const GroundRule& existing = rules_[id];
    if (existing.head == rule.head && existing.pos == rule.pos &&
        existing.neg == rule.neg) {
      return id;
    }
  }
  RuleId id = static_cast<RuleId>(rules_.size());
  bucket.push_back(id);

  EnsureIndex(rule.head);
  rules_for_[rule.head].push_back(id);
  for (AtomId a : rule.pos) {
    EnsureIndex(a);
    pos_occ_[a].push_back(id);
  }
  for (AtomId a : rule.neg) {
    EnsureIndex(a);
    neg_occ_[a].push_back(id);
  }
  rules_.push_back(std::move(rule));
  return id;
}

std::optional<RuleId> GroundProgram::FindUnitRule(AtomId atom) const {
  for (RuleId rid : RulesFor(atom)) {
    const GroundRule& r = rules_[rid];
    if (r.pos.empty() && r.neg.empty()) return rid;
  }
  return std::nullopt;
}

void GroundProgram::EnsureIndex(AtomId atom) {
  size_t need = static_cast<size_t>(atom) + 1;
  if (rules_for_.size() < atom_terms_.size()) {
    rules_for_.resize(atom_terms_.size());
    pos_occ_.resize(atom_terms_.size());
    neg_occ_.resize(atom_terms_.size());
  }
  if (rules_for_.size() < need) {
    rules_for_.resize(need);
    pos_occ_.resize(need);
    neg_occ_.resize(need);
  }
}

const std::vector<RuleId>& GroundProgram::RulesFor(AtomId atom) const {
  static const std::vector<RuleId> kEmpty;
  if (atom >= rules_for_.size()) return kEmpty;
  return rules_for_[atom];
}

const std::vector<RuleId>& GroundProgram::PositiveOccurrences(
    AtomId atom) const {
  static const std::vector<RuleId> kEmpty;
  if (atom >= pos_occ_.size()) return kEmpty;
  return pos_occ_[atom];
}

const std::vector<RuleId>& GroundProgram::NegativeOccurrences(
    AtomId atom) const {
  static const std::vector<RuleId> kEmpty;
  if (atom >= neg_occ_.size()) return kEmpty;
  return neg_occ_[atom];
}

std::string GroundProgram::ToString() const {
  std::string out;
  for (const GroundRule& r : rules_) {
    out += store_->ToString(atom_terms_[r.head]);
    if (!r.pos.empty() || !r.neg.empty()) {
      out += " :- ";
      bool first = true;
      for (AtomId a : r.pos) {
        if (!first) out += ", ";
        first = false;
        out += store_->ToString(atom_terms_[a]);
      }
      for (AtomId a : r.neg) {
        if (!first) out += ", ";
        first = false;
        out += "not ";
        out += store_->ToString(atom_terms_[a]);
      }
    }
    out += ".\n";
  }
  return out;
}

bool GroundProgram::IsLocallyStratified() const {
  return AtomDependencyGraph(*this).IsLocallyStratified();
}

bool GroundProgram::IsAtomAcyclic() const {
  return AtomDependencyGraph(*this).IsAcyclic();
}

}  // namespace gsls
