#include "ground/ground_program.h"

#include <algorithm>
#include <cassert>

#include "analysis/atom_dependency_graph.h"
#include "util/strings.h"

namespace gsls {

AtomId GroundProgram::InternAtom(const Term* atom) {
  assert(atom->ground());
  auto it = atom_ids_.find(atom);
  if (it != atom_ids_.end()) return it->second;
  AtomId id = static_cast<AtomId>(atom_terms_.size());
  atom_terms_.push_back(atom);
  atom_ids_.emplace(atom, id);
  return id;
}

std::optional<AtomId> GroundProgram::FindAtom(const Term* atom) const {
  auto it = atom_ids_.find(atom);
  if (it == atom_ids_.end()) return std::nullopt;
  return it->second;
}

namespace {
uint64_t RuleFingerprint(const GroundRule& r) {
  uint64_t h = r.head * 0x9e3779b97f4a7c15ULL + 1;
  for (AtomId a : r.pos) h = h * 0xff51afd7ed558ccdULL + a + 0x100;
  for (AtomId a : r.neg) h = h * 0xc4ceb9fe1a85ec53ULL + a + 0x200;
  return h;
}

/// Body order is semantically irrelevant in a ground rule; `AddRule` and
/// `FindRule` normalize before hashing/comparing.
void NormalizeBody(GroundRule* rule) {
  std::sort(rule->pos.begin(), rule->pos.end());
  rule->pos.erase(std::unique(rule->pos.begin(), rule->pos.end()),
                  rule->pos.end());
  std::sort(rule->neg.begin(), rule->neg.end());
  rule->neg.erase(std::unique(rule->neg.begin(), rule->neg.end()),
                  rule->neg.end());
}
}  // namespace

RuleId GroundProgram::AddRule(GroundRule rule) {
  NormalizeBody(&rule);
  uint64_t fp = RuleFingerprint(rule);
  auto& bucket = rule_dedup_[fp];
  for (RuleId id : bucket) {
    const GroundRule& existing = rules_[id];
    if (existing.head == rule.head && existing.pos == rule.pos &&
        existing.neg == rule.neg) {
      return id;
    }
  }
  RuleId id = static_cast<RuleId>(rules_.size());
  bucket.push_back(id);
  bool unit = rule.pos.empty() && rule.neg.empty();
  if (unit) unit_rule_.emplace(rule.head, id);
  // AddRule requires exclusive access, so the state transitions are plain
  // stores. A rule over already-indexed atoms only appends to existing
  // rows, which queues a cheap merge — the hot path for both
  // `IncrementalSolver::Assert` of a first-time fact and non-unit
  // `AssertRule` deltas, neither of which may pay a full O(program)
  // rebuild. Only a rule mentioning a never-indexed atom goes stale.
  IndexState state = sync_->state.load(std::memory_order_relaxed);
  if (state != IndexState::kStale) {
    bool indexed = rule.head < rules_for_.rows();
    for (AtomId a : rule.pos) indexed = indexed && a < rules_for_.rows();
    for (AtomId a : rule.neg) indexed = indexed && a < rules_for_.rows();
    if (indexed) {
      pending_rows_.push_back(id);
      pending_has_body_ = pending_has_body_ || !unit;
      sync_->state.store(IndexState::kPendingRows,
                         std::memory_order_relaxed);
    } else {
      pending_rows_.clear();
      pending_has_body_ = false;
      sync_->state.store(IndexState::kStale, std::memory_order_relaxed);
    }
  }
  rules_.push_back(std::move(rule));
  return id;
}

std::optional<RuleId> GroundProgram::FindUnitRule(AtomId atom) const {
  auto it = unit_rule_.find(atom);
  if (it == unit_rule_.end()) return std::nullopt;
  return it->second;
}

std::optional<RuleId> GroundProgram::FindRule(GroundRule rule) const {
  NormalizeBody(&rule);
  auto it = rule_dedup_.find(RuleFingerprint(rule));
  if (it == rule_dedup_.end()) return std::nullopt;
  for (RuleId id : it->second) {
    const GroundRule& existing = rules_[id];
    if (existing.head == rule.head && existing.pos == rule.pos &&
        existing.neg == rule.neg) {
      return id;
    }
  }
  return std::nullopt;
}

void GroundProgram::RebuildOccurrenceIndex() const {
  // Two-pass counting build over all rules (util/csr.h): degrees, prefix
  // sum, fill. Rules are visited in id order both times, so every row
  // lists its rules in increasing id — the order the nested-vector index
  // produced, which the solver's deterministic scheduling relies on.
  uint32_t n = static_cast<uint32_t>(atom_terms_.size());
  rules_for_.Reset(n);
  pos_occ_.Reset(n);
  neg_occ_.Reset(n);
  for (const GroundRule& r : rules_) {
    rules_for_.CountAt(r.head);
    for (AtomId a : r.pos) pos_occ_.CountAt(a);
    for (AtomId a : r.neg) neg_occ_.CountAt(a);
  }
  rules_for_.FinishCounting();
  pos_occ_.FinishCounting();
  neg_occ_.FinishCounting();
  for (RuleId id = 0; id < rules_.size(); ++id) {
    const GroundRule& r = rules_[id];
    rules_for_.Fill(r.head, id);
    for (AtomId a : r.pos) pos_occ_.Fill(a, id);
    for (AtomId a : r.neg) neg_occ_.Fill(a, id);
  }
  rules_for_.FinishFilling();
  pos_occ_.FinishFilling();
  neg_occ_.FinishFilling();
  pending_rows_.clear();
  pending_has_body_ = false;
}

namespace {

/// Rebuilds `*index` with the queued appends folded in: one counting pass
/// over the old payload plus the queue, old items first per row so rows
/// stay id-sorted (pending ids all exceed indexed ids).
template <typename PerRule>
void MergeRows(Csr<RuleId>* index, const std::vector<RuleId>& pending,
               PerRule&& rows_of) {
  uint32_t rows = static_cast<uint32_t>(index->rows());
  Csr<RuleId> merged;
  merged.Reset(rows);
  for (uint32_t a = 0; a < rows; ++a) {
    merged.AddCount(a, static_cast<uint32_t>(index->Row(a).size()));
  }
  for (RuleId id : pending) {
    rows_of(id, [&](AtomId a) { merged.CountAt(a); });
  }
  merged.FinishCounting();
  for (uint32_t a = 0; a < rows; ++a) {
    for (RuleId id : index->Row(a)) merged.Fill(a, id);
  }
  for (RuleId id : pending) {
    rows_of(id, [&](AtomId a) { merged.Fill(a, id); });
  }
  merged.FinishFilling();
  *index = std::move(merged);
}

}  // namespace

void GroundProgram::MergePendingRows() const {
  MergeRows(&rules_for_, pending_rows_, [&](RuleId id, auto&& emit) {
    emit(rules_[id].head);
  });
  // Unit-only queues (fact churn) leave the occurrence indexes untouched.
  if (pending_has_body_) {
    MergeRows(&pos_occ_, pending_rows_, [&](RuleId id, auto&& emit) {
      for (AtomId a : rules_[id].pos) emit(a);
    });
    MergeRows(&neg_occ_, pending_rows_, [&](RuleId id, auto&& emit) {
      for (AtomId a : rules_[id].neg) emit(a);
    });
  }
  pending_rows_.clear();
  pending_has_body_ = false;
}

void GroundProgram::EnsureOccurrenceIndex() const {
  if (sync_->state.load(std::memory_order_acquire) == IndexState::kFresh) {
    return;
  }
  std::lock_guard<std::mutex> lk(sync_->mu);
  switch (sync_->state.load(std::memory_order_relaxed)) {
    case IndexState::kFresh: return;  // lost the race to another reader
    case IndexState::kPendingRows: MergePendingRows(); break;
    case IndexState::kStale: RebuildOccurrenceIndex(); break;
  }
  sync_->state.store(IndexState::kFresh, std::memory_order_release);
}

std::span<const RuleId> GroundProgram::RulesFor(AtomId atom) const {
  EnsureOccurrenceIndex();
  // Atoms interned after the rebuild have no rules yet.
  if (atom >= rules_for_.rows()) return {};
  return rules_for_.Row(atom);
}

std::span<const RuleId> GroundProgram::PositiveOccurrences(AtomId atom) const {
  EnsureOccurrenceIndex();
  if (atom >= pos_occ_.rows()) return {};
  return pos_occ_.Row(atom);
}

std::span<const RuleId> GroundProgram::NegativeOccurrences(AtomId atom) const {
  EnsureOccurrenceIndex();
  if (atom >= neg_occ_.rows()) return {};
  return neg_occ_.Row(atom);
}

std::string GroundProgram::ToString() const {
  std::string out;
  for (const GroundRule& r : rules_) {
    out += store_->ToString(atom_terms_[r.head]);
    if (!r.pos.empty() || !r.neg.empty()) {
      out += " :- ";
      bool first = true;
      for (AtomId a : r.pos) {
        if (!first) out += ", ";
        first = false;
        out += store_->ToString(atom_terms_[a]);
      }
      for (AtomId a : r.neg) {
        if (!first) out += ", ";
        first = false;
        out += "not ";
        out += store_->ToString(atom_terms_[a]);
      }
    }
    out += ".\n";
  }
  return out;
}

bool GroundProgram::IsLocallyStratified() const {
  return AtomDependencyGraph(*this).IsLocallyStratified();
}

bool GroundProgram::IsAtomAcyclic() const {
  return AtomDependencyGraph(*this).IsAcyclic();
}

}  // namespace gsls
