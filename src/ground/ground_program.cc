#include "ground/ground_program.h"

#include <algorithm>
#include <cassert>

#include "util/strings.h"

namespace gsls {

AtomId GroundProgram::InternAtom(const Term* atom) {
  assert(atom->ground());
  auto it = atom_ids_.find(atom);
  if (it != atom_ids_.end()) return it->second;
  AtomId id = static_cast<AtomId>(atom_terms_.size());
  atom_terms_.push_back(atom);
  atom_ids_.emplace(atom, id);
  return id;
}

std::optional<AtomId> GroundProgram::FindAtom(const Term* atom) const {
  auto it = atom_ids_.find(atom);
  if (it == atom_ids_.end()) return std::nullopt;
  return it->second;
}

namespace {
uint64_t RuleFingerprint(const GroundRule& r) {
  uint64_t h = r.head * 0x9e3779b97f4a7c15ULL + 1;
  for (AtomId a : r.pos) h = h * 0xff51afd7ed558ccdULL + a + 0x100;
  for (AtomId a : r.neg) h = h * 0xc4ceb9fe1a85ec53ULL + a + 0x200;
  return h;
}
}  // namespace

void GroundProgram::AddRule(GroundRule rule) {
  // Normalize body order for deduplication (body literal order is
  // semantically irrelevant in a ground rule).
  std::sort(rule.pos.begin(), rule.pos.end());
  rule.pos.erase(std::unique(rule.pos.begin(), rule.pos.end()),
                 rule.pos.end());
  std::sort(rule.neg.begin(), rule.neg.end());
  rule.neg.erase(std::unique(rule.neg.begin(), rule.neg.end()),
                 rule.neg.end());

  uint64_t fp = RuleFingerprint(rule);
  auto& bucket = rule_dedup_[fp];
  for (RuleId id : bucket) {
    const GroundRule& existing = rules_[id];
    if (existing.head == rule.head && existing.pos == rule.pos &&
        existing.neg == rule.neg) {
      return;
    }
  }
  RuleId id = static_cast<RuleId>(rules_.size());
  bucket.push_back(id);

  EnsureIndex(rule.head);
  rules_for_[rule.head].push_back(id);
  for (AtomId a : rule.pos) {
    EnsureIndex(a);
    pos_occ_[a].push_back(id);
  }
  for (AtomId a : rule.neg) {
    EnsureIndex(a);
    neg_occ_[a].push_back(id);
  }
  rules_.push_back(std::move(rule));
}

void GroundProgram::EnsureIndex(AtomId atom) {
  size_t need = static_cast<size_t>(atom) + 1;
  if (rules_for_.size() < atom_terms_.size()) {
    rules_for_.resize(atom_terms_.size());
    pos_occ_.resize(atom_terms_.size());
    neg_occ_.resize(atom_terms_.size());
  }
  if (rules_for_.size() < need) {
    rules_for_.resize(need);
    pos_occ_.resize(need);
    neg_occ_.resize(need);
  }
}

const std::vector<RuleId>& GroundProgram::RulesFor(AtomId atom) const {
  static const std::vector<RuleId> kEmpty;
  if (atom >= rules_for_.size()) return kEmpty;
  return rules_for_[atom];
}

const std::vector<RuleId>& GroundProgram::PositiveOccurrences(
    AtomId atom) const {
  static const std::vector<RuleId> kEmpty;
  if (atom >= pos_occ_.size()) return kEmpty;
  return pos_occ_[atom];
}

const std::vector<RuleId>& GroundProgram::NegativeOccurrences(
    AtomId atom) const {
  static const std::vector<RuleId> kEmpty;
  if (atom >= neg_occ_.size()) return kEmpty;
  return neg_occ_[atom];
}

std::string GroundProgram::ToString() const {
  std::string out;
  for (const GroundRule& r : rules_) {
    out += store_->ToString(atom_terms_[r.head]);
    if (!r.pos.empty() || !r.neg.empty()) {
      out += " :- ";
      bool first = true;
      for (AtomId a : r.pos) {
        if (!first) out += ", ";
        first = false;
        out += store_->ToString(atom_terms_[a]);
      }
      for (AtomId a : r.neg) {
        if (!first) out += ", ";
        first = false;
        out += "not ";
        out += store_->ToString(atom_terms_[a]);
      }
    }
    out += ".\n";
  }
  return out;
}

namespace {

/// Iterative Tarjan over atom ids; returns component id per atom.
std::vector<uint32_t> AtomSccIds(const GroundProgram& gp, bool* has_neg_in_scc,
                                 bool* has_any_cycle) {
  size_t n = gp.atom_count();
  // Adjacency: head -> body atoms (either sign), built once.
  std::vector<std::vector<std::pair<AtomId, bool>>> adj(n);
  for (const GroundRule& r : gp.rules()) {
    for (AtomId a : r.pos) adj[r.head].emplace_back(a, true);
    for (AtomId a : r.neg) adj[r.head].emplace_back(a, false);
  }
  std::vector<uint32_t> comp(n, UINT32_MAX);
  std::vector<uint32_t> index(n, UINT32_MAX);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<AtomId> stack;
  uint32_t counter = 0;
  uint32_t comp_count = 0;
  std::vector<size_t> comp_size;

  struct Frame {
    AtomId atom;
    size_t pos;
  };
  for (AtomId root = 0; root < n; ++root) {
    if (index[root] != UINT32_MAX) continue;
    std::vector<Frame> frames{{root, 0}};
    index[root] = lowlink[root] = counter++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.pos < adj[f.atom].size()) {
        AtomId next = adj[f.atom][f.pos++].first;
        if (index[next] == UINT32_MAX) {
          index[next] = lowlink[next] = counter++;
          stack.push_back(next);
          on_stack[next] = true;
          frames.push_back({next, 0});
        } else if (on_stack[next]) {
          lowlink[f.atom] = std::min(lowlink[f.atom], index[next]);
        }
        continue;
      }
      AtomId done = f.atom;
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().atom] =
            std::min(lowlink[frames.back().atom], lowlink[done]);
      }
      if (lowlink[done] == index[done]) {
        size_t size = 0;
        while (true) {
          AtomId w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          comp[w] = comp_count;
          ++size;
          if (w == done) break;
        }
        comp_size.push_back(size);
        ++comp_count;
      }
    }
  }
  *has_neg_in_scc = false;
  *has_any_cycle = false;
  for (size_t c = 0; c < comp_size.size(); ++c) {
    if (comp_size[c] > 1) *has_any_cycle = true;
  }
  for (const GroundRule& r : gp.rules()) {
    for (AtomId a : r.pos) {
      if (a == r.head) *has_any_cycle = true;  // positive self-loop
    }
    for (AtomId a : r.neg) {
      if (comp[a] == comp[r.head]) {
        *has_neg_in_scc = true;
        if (a == r.head) *has_any_cycle = true;
      }
    }
  }
  return comp;
}

}  // namespace

bool GroundProgram::IsLocallyStratified() const {
  bool neg_in_scc = false;
  bool any_cycle = false;
  AtomSccIds(*this, &neg_in_scc, &any_cycle);
  return !neg_in_scc;
}

bool GroundProgram::IsAtomAcyclic() const {
  bool neg_in_scc = false;
  bool any_cycle = false;
  AtomSccIds(*this, &neg_in_scc, &any_cycle);
  return !any_cycle && !neg_in_scc;
}

}  // namespace gsls
