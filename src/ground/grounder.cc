#include "ground/grounder.h"

#include <deque>
#include <unordered_set>

#include "term/substitution.h"
#include "util/strings.h"

namespace gsls {

namespace {

/// Shared instantiation machinery for the relevant grounder.
class RelevantGrounder {
 public:
  RelevantGrounder(const Program& program, const GroundingOptions& opts)
      : program_(program),
        store_(program.store()),
        opts_(opts),
        ground_(&program.store()) {}

  Result<GroundProgram> Run() {
    Result<std::vector<const Term*>> universe =
        EnumerateUniverse(program_, opts_.universe);
    if (!universe.ok()) return universe.status();
    universe_ = std::move(universe.value());

    // Seed: instantiate every clause against the (initially empty) derived
    // set; clauses with no positive body fire immediately.
    for (size_t ci = 0; ci < program_.clauses().size(); ++ci) {
      Substitution empty;
      Status s = MatchBody(ci, /*delta_pos=*/SIZE_MAX, nullptr, 0, empty);
      if (!s.ok()) return s;
    }
    // Propagate.
    while (!queue_.empty()) {
      const Term* atom = queue_.front();
      queue_.pop_front();
      for (size_t ci = 0; ci < program_.clauses().size(); ++ci) {
        const Clause& clause = program_.clauses()[ci];
        for (size_t li = 0; li < clause.body.size(); ++li) {
          if (!clause.body[li].positive) continue;
          if (clause.body[li].predicate() != atom->functor()) continue;
          Substitution empty;
          Status s = MatchBody(ci, li, atom, 0, empty);
          if (!s.ok()) return s;
        }
      }
    }
    return std::move(ground_);
  }

 private:
  /// Recursively matches the positive body literals of clause `ci` against
  /// derived atoms. Literal index `delta_pos` (if != SIZE_MAX) is pinned to
  /// `delta_atom`; all other positive literals range over the full derived
  /// set. `next` is the next body position to process.
  Status MatchBody(size_t ci, size_t delta_pos, const Term* delta_atom,
                   size_t next, const Substitution& subst) {
    const Clause& clause = program_.clauses()[ci];
    if (next == clause.body.size()) {
      return EmitRule(clause, subst);
    }
    const Literal& lit = clause.body[next];
    if (!lit.positive) {
      // Negative literals do not constrain the over-approximation.
      return MatchBody(ci, delta_pos, delta_atom, next + 1, subst);
    }
    if (next == delta_pos) {
      Substitution extended = subst;
      if (Unify(lit.atom, delta_atom, &extended)) {
        Status s = MatchBody(ci, delta_pos, delta_atom, next + 1, extended);
        if (!s.ok()) return s;
      }
      return Status::Ok();
    }
    const Term* walked = subst.Apply(store_, lit.atom);
    auto it = derived_by_pred_.find(walked->functor());
    if (it == derived_by_pred_.end()) return Status::Ok();
    // Iterate by index: EmitRule may extend the per-predicate vectors.
    const std::vector<const Term*>& candidates = it->second;
    for (size_t i = 0; i < candidates.size(); ++i) {
      const Term* cand = candidates[i];
      Substitution extended = subst;
      if (Unify(lit.atom, cand, &extended)) {
        Status s = MatchBody(ci, delta_pos, delta_atom, next + 1, extended);
        if (!s.ok()) return s;
      }
    }
    return Status::Ok();
  }

  /// Grounds the remaining free variables of the clause over the universe
  /// and emits every completion.
  Status EmitRule(const Clause& clause, const Substitution& subst) {
    Clause grounded = ApplyToClause(store_, subst, clause);
    std::vector<VarId> free_vars = grounded.Variables();
    if (free_vars.empty()) {
      return AddGroundRule(grounded);
    }
    // Odometer over universe^free_vars.
    std::vector<size_t> idx(free_vars.size(), 0);
    while (true) {
      Substitution completion;
      for (size_t i = 0; i < free_vars.size(); ++i) {
        completion.Bind(free_vars[i], universe_[idx[i]]);
      }
      Status s = AddGroundRule(ApplyToClause(store_, completion, grounded));
      if (!s.ok()) return s;
      size_t pos = 0;
      for (; pos < free_vars.size(); ++pos) {
        if (++idx[pos] < universe_.size()) break;
        idx[pos] = 0;
      }
      if (pos == free_vars.size()) break;
    }
    return Status::Ok();
  }

  Status AddGroundRule(const Clause& clause) {
    // Depth cap: drop instances mentioning terms beyond the bound (keeps
    // the derivation finite when rule heads contain function symbols).
    uint32_t cap = opts_.max_atom_arg_depth != 0
                       ? opts_.max_atom_arg_depth
                       : opts_.universe.max_term_depth;
    auto too_deep = [cap](const Term* atom) {
      for (const Term* arg : atom->args()) {
        if (arg->depth() > cap) return true;
      }
      return false;
    };
    if (too_deep(clause.head)) return Status::Ok();
    for (const Literal& l : clause.body) {
      if (too_deep(l.atom)) return Status::Ok();
    }
    if (ground_.rule_count() >= opts_.max_rules) {
      return Status::ResourceExhausted(
          StrCat("grounding exceeds max_rules=", opts_.max_rules));
    }
    GroundRule rule;
    rule.head = ground_.InternAtom(clause.head);
    for (const Literal& l : clause.body) {
      AtomId id = ground_.InternAtom(l.atom);
      (l.positive ? rule.pos : rule.neg).push_back(id);
    }
    if (ground_.atom_count() > opts_.max_atoms) {
      return Status::ResourceExhausted(
          StrCat("grounding exceeds max_atoms=", opts_.max_atoms));
    }
    ground_.AddRule(std::move(rule));
    Derive(clause.head);
    return Status::Ok();
  }

  void Derive(const Term* atom) {
    if (!derived_.insert(atom).second) return;
    derived_by_pred_[atom->functor()].push_back(atom);
    queue_.push_back(atom);
  }

  const Program& program_;
  TermStore& store_;
  GroundingOptions opts_;
  GroundProgram ground_;
  std::vector<const Term*> universe_;
  std::unordered_set<const Term*> derived_;
  std::unordered_map<FunctorId, std::vector<const Term*>> derived_by_pred_;
  std::deque<const Term*> queue_;
};

}  // namespace

Result<GroundProgram> GroundRelevant(const Program& program,
                                     const GroundingOptions& opts) {
  return RelevantGrounder(program, opts).Run();
}

Result<GroundProgram> FullyInstantiate(const Program& program,
                                       const GroundingOptions& opts) {
  Result<std::vector<const Term*>> universe =
      EnumerateUniverse(program, opts.universe);
  if (!universe.ok()) return universe.status();
  TermStore& store = program.store();
  GroundProgram out(&store);
  for (const Clause& clause : program.clauses()) {
    std::vector<VarId> vars = clause.Variables();
    std::vector<size_t> idx(vars.size(), 0);
    while (true) {
      Substitution s;
      for (size_t i = 0; i < vars.size(); ++i) {
        s.Bind(vars[i], universe.value()[idx[i]]);
      }
      Clause grounded = ApplyToClause(store, s, clause);
      if (out.rule_count() >= opts.max_rules) {
        return Status::ResourceExhausted(
            StrCat("instantiation exceeds max_rules=", opts.max_rules));
      }
      GroundRule rule;
      rule.head = out.InternAtom(grounded.head);
      for (const Literal& l : grounded.body) {
        AtomId id = out.InternAtom(l.atom);
        (l.positive ? rule.pos : rule.neg).push_back(id);
      }
      out.AddRule(std::move(rule));
      if (vars.empty()) break;
      size_t pos = 0;
      for (; pos < vars.size(); ++pos) {
        if (++idx[pos] < universe.value().size()) break;
        idx[pos] = 0;
      }
      if (pos == vars.size()) break;
    }
  }
  return out;
}

GroundProgram RestrictToRelevant(const GroundProgram& gp,
                                 const std::vector<const Term*>& roots) {
  TermStore& store = gp.store();
  // Find seed atoms: registered atoms unifying with some root.
  std::vector<bool> relevant(gp.atom_count(), false);
  std::vector<AtomId> work;
  auto mark = [&](AtomId id) {
    if (!relevant[id]) {
      relevant[id] = true;
      work.push_back(id);
    }
  };
  for (const Term* root : roots) {
    if (root->ground()) {
      if (auto id = gp.FindAtom(root)) mark(*id);
      continue;
    }
    for (AtomId id = 0; id < gp.atom_count(); ++id) {
      if (gp.AtomTerm(id)->functor() != root->functor()) continue;
      Substitution s;
      if (Unify(root, gp.AtomTerm(id), &s)) mark(id);
    }
  }
  while (!work.empty()) {
    AtomId a = work.back();
    work.pop_back();
    for (RuleId rid : gp.RulesFor(a)) {
      const GroundRule& r = gp.rules()[rid];
      for (AtomId b : r.pos) mark(b);
      for (AtomId b : r.neg) mark(b);
    }
  }
  GroundProgram out(&store);
  // Preserve atom registration for every relevant atom (even ruleless ones,
  // so queries about them resolve to ids).
  for (AtomId id = 0; id < gp.atom_count(); ++id) {
    if (relevant[id]) out.InternAtom(gp.AtomTerm(id));
  }
  for (const GroundRule& r : gp.rules()) {
    if (!relevant[r.head]) continue;
    GroundRule nr;
    nr.head = out.InternAtom(gp.AtomTerm(r.head));
    for (AtomId b : r.pos) nr.pos.push_back(out.InternAtom(gp.AtomTerm(b)));
    for (AtomId b : r.neg) nr.neg.push_back(out.InternAtom(gp.AtomTerm(b)));
    out.AddRule(std::move(nr));
  }
  return out;
}

}  // namespace gsls
