#ifndef GSLS_GROUND_HERBRAND_H_
#define GSLS_GROUND_HERBRAND_H_

#include <vector>

#include "lang/program.h"
#include "util/status.h"

namespace gsls {

/// Options bounding Herbrand universe enumeration. With function symbols
/// the universe is infinite (Def. 1.2); callers choose a term-depth bound
/// and a hard cap on the number of terms.
struct UniverseOptions {
  uint32_t max_term_depth = 1;  ///< 1 = constants only (function-free case).
  size_t max_terms = 100000;    ///< Hard cap; exceeding it is an error.
};

/// Enumerates the ground terms of the Herbrand universe of `program` up to
/// the configured depth, smallest depth first. If the program has no
/// constants, a synthetic constant `$k` is used, following the Def. 1.2
/// convention. Fails with ResourceExhausted if `max_terms` is exceeded.
Result<std::vector<const Term*>> EnumerateUniverse(const Program& program,
                                                   const UniverseOptions& opts);

}  // namespace gsls

#endif  // GSLS_GROUND_HERBRAND_H_
