#ifndef GSLS_CORE_ORDINAL_H_
#define GSLS_CORE_ORDINAL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gsls {

/// A countable ordinal in Cantor normal form with finite exponents:
/// `w^k_1 * c_1 + ... + w^k_m * c_m` with `k_1 > ... > k_m >= 0` and
/// coefficients `c_i >= 1`. This covers every level a global tree can take
/// in this library (Example 3.1's `<- w(0)` has level w+2) while keeping
/// arithmetic exact and cheap.
class Ordinal {
 public:
  /// Zero.
  Ordinal() = default;

  static Ordinal Finite(uint64_t n);
  static Ordinal Omega() { return OmegaPower(1); }
  /// w^k.
  static Ordinal OmegaPower(uint32_t k);
  /// w^k * c (c >= 1; c == 0 yields zero).
  static Ordinal OmegaTerm(uint32_t k, uint64_t c);

  bool IsZero() const { return terms_.empty(); }
  bool IsFinite() const {
    return terms_.empty() || (terms_.size() == 1 && terms_[0].exponent == 0);
  }
  /// Value when finite; requires `IsFinite()`.
  uint64_t FiniteValue() const;

  /// A successor ordinal ends in a finite part > 0; limit ordinals
  /// (including 0 by the paper's convention in Def. 2.4) do not.
  bool IsSuccessor() const {
    return !terms_.empty() && terms_.back().exponent == 0;
  }
  bool IsLimit() const { return !IsSuccessor(); }

  /// Ordinal addition (associative, left-absorbing: n + w == w).
  Ordinal operator+(const Ordinal& other) const;
  Ordinal Successor() const { return *this + Finite(1); }

  /// The predecessor of a successor ordinal; requires `IsSuccessor()`.
  Ordinal Predecessor() const;

  /// Comparison is the canonical ordinal order.
  std::strong_ordering operator<=>(const Ordinal& other) const;
  bool operator==(const Ordinal& other) const = default;

  /// Least upper bound of two ordinals (their maximum).
  static Ordinal Lub(const Ordinal& a, const Ordinal& b) {
    return a < b ? b : a;
  }

  /// The least ordinal strictly greater than every element of an infinite
  /// strictly increasing family {f(n)} whose terms are all below w^(k+1):
  /// callers use this to express analytic limits such as
  /// lub{2n : n in N} = w. `witness_exponent` is the exponent k+1 of the
  /// resulting w-power.
  static Ordinal LimitOfStrictlyIncreasing(uint32_t witness_exponent = 1) {
    return OmegaPower(witness_exponent);
  }

  /// Renders e.g. `0`, `17`, `w`, `w*2+3`, `w^2+w*4+1`.
  std::string ToString() const;

 private:
  struct Term {
    uint32_t exponent;
    uint64_t coefficient;
    bool operator==(const Term&) const = default;
  };
  // Invariant: exponents strictly decreasing, coefficients >= 1.
  std::vector<Term> terms_;
};

}  // namespace gsls

#endif  // GSLS_CORE_ORDINAL_H_
