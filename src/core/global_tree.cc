#include "core/global_tree.h"

#include <unordered_set>

#include "util/strings.h"

namespace gsls {

namespace {

class Builder {
 public:
  Builder(const Program& program, const GlobalTreeOptions& opts)
      : program_(program), opts_(opts) {}

  std::unique_ptr<GlobalNode> BuildTreeNode(const Goal& goal,
                                            size_t neg_depth) {
    auto node = std::make_unique<GlobalNode>();
    node->kind = GlobalNodeKind::kTree;
    node->goal = goal;
    ++node_count_;
    if (node_count_ >= opts_.max_nodes ||
        neg_depth > opts_.max_negation_depth) {
      node->status = GoalStatus::kUnknown;
      return node;
    }
    node->slp = std::make_unique<SlpTree>(
        SlpTree::Build(program_, goal, opts_.slp));
    bool any_unknown = node->slp->truncated();
    bool any_success = false, any_floundered = false, any_indet = false;
    Ordinal min_success;
    bool have_min = false;
    bool min_exact = true;
    Ordinal lub;
    bool lub_exact = true;
    for (const SlpNode* leaf : node->slp->ActiveLeaves()) {
      auto child = BuildNegationNode(leaf->goal, neg_depth);
      switch (child->status) {
        case GoalStatus::kSuccessful:
          any_success = true;
          if (!have_min || child->level < min_success) {
            min_success = child->level;
            min_exact = child->level_exact;
          }
          have_min = true;
          break;
        case GoalStatus::kFailed:
          lub = Ordinal::Lub(lub, child->level);
          lub_exact = lub_exact && child->level_exact;
          break;
        case GoalStatus::kFloundered:
          any_floundered = true;
          break;
        case GoalStatus::kIndeterminate:
          any_indet = true;
          break;
        case GoalStatus::kUnknown:
          any_unknown = true;
          break;
      }
      node->children.push_back(std::move(child));
    }
    // Tree-node status calculus (Def. 3.3 rule 3).
    if (any_success) {
      node->status = GoalStatus::kSuccessful;
      node->level = min_success + Ordinal::Finite(1);
      node->level_exact = min_exact && !any_unknown;
    } else if (any_unknown) {
      node->status = GoalStatus::kUnknown;
    } else if (any_floundered) {
      node->status = GoalStatus::kFloundered;
    } else if (any_indet) {
      node->status = GoalStatus::kIndeterminate;
    } else {
      node->status = GoalStatus::kFailed;
      node->level = lub + Ordinal::Finite(1);
      node->level_exact = lub_exact;
    }
    return node;
  }

 private:
  std::unique_ptr<GlobalNode> BuildNegationNode(const Goal& leaf,
                                                size_t neg_depth) {
    auto node = std::make_unique<GlobalNode>();
    node->kind = GlobalNodeKind::kNegation;
    node->goal = leaf;
    ++node_count_;
    bool any_success = false, any_floundered = false, any_indet = false,
         any_unknown = false;
    Ordinal min_success;
    bool have_min = false, min_exact = true;
    Ordinal lub;
    bool lub_exact = true;
    for (const Literal& l : leaf) {
      if (!l.atom->ground()) {
        auto ng = std::make_unique<GlobalNode>();
        ng->kind = GlobalNodeKind::kNonground;
        ng->goal = Goal{l};
        ng->status = GoalStatus::kFloundered;
        ++node_count_;
        any_floundered = true;
        node->children.push_back(std::move(ng));
        continue;
      }
      std::unique_ptr<GlobalNode> child;
      if (path_.count(l.atom) > 0) {
        // Negative loop: this subgoal is already being expanded above us;
        // the derivation recurses through negation indefinitely.
        child = std::make_unique<GlobalNode>();
        child->kind = GlobalNodeKind::kTree;
        child->goal = Goal{Literal::Pos(l.atom)};
        child->status = GoalStatus::kIndeterminate;
        ++node_count_;
      } else {
        path_.insert(l.atom);
        child = BuildTreeNode(Goal{Literal::Pos(l.atom)}, neg_depth + 1);
        path_.erase(l.atom);
      }
      switch (child->status) {
        case GoalStatus::kSuccessful:
          any_success = true;
          if (!have_min || child->level < min_success) {
            min_success = child->level;
            min_exact = child->level_exact;
          }
          have_min = true;
          break;
        case GoalStatus::kFailed:
          lub = Ordinal::Lub(lub, child->level);
          lub_exact = lub_exact && child->level_exact;
          break;
        case GoalStatus::kFloundered:
          any_floundered = true;
          break;
        case GoalStatus::kIndeterminate:
          any_indet = true;
          break;
        case GoalStatus::kUnknown:
          any_unknown = true;
          break;
      }
      node->children.push_back(std::move(child));
    }
    // Negation-node status calculus (Def. 3.3 rule 2).
    if (any_success) {
      node->status = GoalStatus::kFailed;
      node->level = min_success;
      node->level_exact = min_exact && !any_unknown;
    } else if (any_unknown) {
      node->status = GoalStatus::kUnknown;
    } else if (any_floundered) {
      node->status = GoalStatus::kFloundered;
    } else if (any_indet) {
      node->status = GoalStatus::kIndeterminate;
    } else {
      node->status = GoalStatus::kSuccessful;
      node->level = lub;
      node->level_exact = lub_exact;
    }
    return node;
  }

 public:
  size_t node_count() const { return node_count_; }

 private:
  const Program& program_;
  const GlobalTreeOptions& opts_;
  size_t node_count_ = 0;
  std::unordered_set<const Term*> path_;
};

void Render(const GlobalNode* node, const TermStore& store, int indent,
            std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  switch (node->kind) {
    case GlobalNodeKind::kTree:
      out->append(StrCat("<- ", GoalToString(store, node->goal)));
      break;
    case GlobalNodeKind::kNegation:
      out->append(StrCat("(neg) ", GoalToString(store, node->goal)));
      break;
    case GlobalNodeKind::kNonground:
      out->append(StrCat("(nonground) ", GoalToString(store, node->goal)));
      break;
  }
  out->append(StrCat("   [", GoalStatusName(node->status)));
  if (node->status == GoalStatus::kSuccessful ||
      node->status == GoalStatus::kFailed) {
    out->append(StrCat(", level ", node->level.ToString(),
                       node->level_exact ? "" : " (inexact)"));
  }
  out->append("]\n");
  for (const auto& c : node->children) Render(c.get(), store, indent + 1, out);
}

}  // namespace

GlobalTree GlobalTree::Build(const Program& program, const Goal& root,
                             GlobalTreeOptions opts) {
  Builder builder(program, opts);
  GlobalTree tree;
  tree.root_ = builder.BuildTreeNode(root, 0);
  tree.node_count_ = builder.node_count();
  return tree;
}

std::string GlobalTree::ToString(const TermStore& store) const {
  std::string out;
  Render(root_.get(), store, 0, &out);
  return out;
}

}  // namespace gsls
